package tracex

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// fakeRemoteTier is a scriptable RemoteTier: it records every fetch and
// answers from a fixed signature or error.
type fakeRemoteTier struct {
	fetches atomic.Int64
	sig     *Signature
	err     error
}

func (f *fakeRemoteTier) FetchSignature(ctx context.Context, app string, cores int, machine string, opt CollectOptions) (*Signature, error) {
	f.fetches.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f.sig, f.err
}

// TestEngineRemoteTierHit pins the tier order with a responsive peer: a
// cold request is served from the remote tier with Provenance "peer", the
// fetched signature is written through to the local disk store, and a
// repeat request is a memory hit without another fetch.
func TestEngineRemoteTierHit(t *testing.T) {
	app := testApp(t, "stencil3d")
	target := testMachine(t, "bluewaters")

	// Collect the "peer's" signature once with a plain engine.
	donor := NewEngine()
	sig, err := donor.CollectSignature(context.Background(), app, 16, target, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	defer donor.Close()

	rt := &fakeRemoteTier{sig: sig}
	e := NewEngine(WithStore(t.TempDir()), WithRemoteTier(rt))
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	got, prov, err := e.CollectSignatureFrom(context.Background(), app, 16, target, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if prov != FromPeer {
		t.Fatalf("provenance = %q, want %q", prov, FromPeer)
	}
	if got != sig {
		t.Error("remote-tier hit did not return the fetched signature")
	}
	if n := rt.fetches.Load(); n != 1 {
		t.Errorf("remote tier saw %d fetches, want 1", n)
	}
	st := e.Stats()
	if st.PeerFetches != 1 || st.PeerHits != 1 {
		t.Errorf("stats: PeerFetches=%d PeerHits=%d, want 1/1", st.PeerFetches, st.PeerHits)
	}
	if st.StorePuts != 1 {
		t.Errorf("peer hit wrote %d store entries, want 1 (write-through)", st.StorePuts)
	}
	// Repeat: memory hit, no second fetch.
	if _, prov, err = e.CollectSignatureFrom(context.Background(), app, 16, target, smallOpt); err != nil || prov != FromMemory {
		t.Fatalf("repeat = %q, %v, want memory hit", prov, err)
	}
	if n := rt.fetches.Load(); n != 1 {
		t.Errorf("repeat request fetched again (%d total)", n)
	}
	// A restarted engine over the same store dir must warm-start from disk
	// without touching the remote tier: write-through really persisted.
	e2 := NewEngine(WithStore(e.Store().Dir()), WithRemoteTier(rt))
	defer e2.Close()
	if _, prov, err = e2.CollectSignatureFrom(context.Background(), app, 16, target, smallOpt); err != nil || prov != FromDisk {
		t.Fatalf("warm restart = %q, %v, want disk hit", prov, err)
	}
	if n := rt.fetches.Load(); n != 1 {
		t.Errorf("disk-tier hit consulted the remote tier (%d fetches)", n)
	}
}

// TestEngineRemoteTierFallback pins graceful degradation: a failing remote
// tier never fails the request — the engine collects locally.
func TestEngineRemoteTierFallback(t *testing.T) {
	app := testApp(t, "stencil3d")
	target := testMachine(t, "bluewaters")
	rt := &fakeRemoteTier{err: errors.New("peer unreachable")}
	e := NewEngine(WithRemoteTier(rt))
	defer e.Close()

	sig, prov, err := e.CollectSignatureFrom(context.Background(), app, 16, target, smallOpt)
	if err != nil {
		t.Fatalf("peer failure leaked: %v", err)
	}
	if prov != FromCollected || sig == nil {
		t.Fatalf("fallback provenance = %q, want %q", prov, FromCollected)
	}
	st := e.Stats()
	if st.PeerFetches != 1 || st.PeerHits != 0 {
		t.Errorf("stats: PeerFetches=%d PeerHits=%d, want 1/0", st.PeerFetches, st.PeerHits)
	}
}

// TestEngineRemoteTierDisabled pins ContextWithoutRemoteTier: a delegated
// request collects strictly locally, never consulting the remote tier.
func TestEngineRemoteTierDisabled(t *testing.T) {
	app := testApp(t, "stencil3d")
	target := testMachine(t, "bluewaters")
	rt := &fakeRemoteTier{err: errors.New("must not be called")}
	e := NewEngine(WithRemoteTier(rt))
	defer e.Close()

	ctx := ContextWithoutRemoteTier(context.Background())
	_, prov, err := e.CollectSignatureFrom(ctx, app, 16, target, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if prov != FromCollected {
		t.Fatalf("provenance = %q, want %q", prov, FromCollected)
	}
	if n := rt.fetches.Load(); n != 0 {
		t.Errorf("delegated request consulted the remote tier %d times", n)
	}
}

// TestEngineRemoteTierCancellation pins that a cancelled context surfaces
// ctx.Err() rather than falling through to a local collection.
func TestEngineRemoteTierCancellation(t *testing.T) {
	app := testApp(t, "stencil3d")
	target := testMachine(t, "bluewaters")
	rt := &fakeRemoteTier{}
	e := NewEngine(WithRemoteTier(rt))
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.CollectSignatureFrom(ctx, app, 16, target, smallOpt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
