package tracex

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"tracex/internal/store"
)

// TestStoreKeyLegacyOptHash pins backward compatibility of store keys: for
// the exact model, optIdentity must reproduce the pre-Model `%+v` rendering
// of the normalized collector configuration byte for byte, so stores
// written before the Model field existed keep resolving under their
// original keys.
func TestStoreKeyLegacyOptHash(t *testing.T) {
	// The legacy identity string was fmt.Sprintf("%+v", normalized) over a
	// struct with exactly these fields in this order.
	legacy := struct {
		SampleRefs      int
		MaxWarmRefs     int
		Workers         int
		BatchSize       int
		SharedHierarchy bool
	}{SampleRefs: 20_000, MaxWarmRefs: 60_000}
	opt := CollectOptions{SampleRefs: 20_000, MaxWarmRefs: 60_000, Workers: 5, BatchSize: 99}
	if got, want := optIdentity(opt.Normalized()), fmt.Sprintf("%+v", legacy); got != want {
		t.Errorf("optIdentity(exact) = %q, want legacy rendering %q", got, want)
	}
	// The exact model spelled out explicitly hashes identically to the
	// implicit default...
	exact := opt
	exact.Model = ModelExact
	m := testMachine(t, "bluewaters")
	if StoreKey("a", 8, m, opt) != StoreKey("a", 8, m, exact) {
		t.Error("explicit exact model changed the store key")
	}
	// ...while the analytical model is a distinct identity.
	ana := opt
	ana.Model = ModelAnalytical
	if StoreKey("a", 8, m, opt) == StoreKey("a", 8, m, ana) {
		t.Error("analytical model shares the exact model's store key")
	}
}

// TestReuseStoreKeyMachineFree pins the redesigned identity: reuse profiles
// are keyed without any machine component, and neither the cache model nor
// the execution knobs change which stored profile a request resolves to.
func TestReuseStoreKeyMachineFree(t *testing.T) {
	opt := CollectOptions{SampleRefs: 20_000, MaxWarmRefs: 60_000}
	k := ReuseStoreKey("uh3d", 256, opt)
	if k.Machine != "" || k.MachineFP != "" {
		t.Errorf("reuse key carries machine identity: %+v", k)
	}
	if k.Kind != store.KindReuse {
		t.Errorf("reuse key kind = %q, want %q", k.Kind, store.KindReuse)
	}
	variant := opt
	variant.Model = ModelAnalytical
	variant.Workers = 7
	variant.BatchSize = 512
	if ReuseStoreKey("uh3d", 256, variant) != k {
		t.Error("model/scheduling knobs changed the reuse profile key")
	}
	shape := opt
	shape.SampleRefs = 40_000
	if ReuseStoreKey("uh3d", 256, shape) == k {
		t.Error("sample length did not change the reuse profile key")
	}
}

// TestEngineAnalyticalProvenance: a collection under the analytical model
// reports FromAnalytical on the first request (the per-geometry signature
// is derived, not simulated) and FromMemory once memoized.
func TestEngineAnalyticalProvenance(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	ctx := context.Background()
	opt := smallOpt
	opt.Model = ModelAnalytical

	sig, prov, err := e.CollectSignatureFrom(ctx, app, 64, cfg, opt)
	if err != nil {
		t.Fatalf("CollectSignatureFrom: %v", err)
	}
	if prov != FromAnalytical {
		t.Errorf("first collection provenance %q, want %q", prov, FromAnalytical)
	}
	if err := sig.Validate(); err != nil {
		t.Fatalf("derived signature invalid: %v", err)
	}
	if sig.Machine != cfg.Name {
		t.Errorf("signature machine %q, want %q", sig.Machine, cfg.Name)
	}
	if _, prov, err = e.CollectSignatureFrom(ctx, app, 64, cfg, opt); err != nil || prov != FromMemory {
		t.Errorf("second collection: prov=%q err=%v, want memory hit", prov, err)
	}

	// A second geometry reuses the recorded profile: the reuse memo is hit,
	// no second recording runs.
	if _, prov, err = e.CollectSignatureFrom(ctx, app, 64, testMachine(t, "kraken"), opt); err != nil || prov != FromAnalytical {
		t.Errorf("second geometry: prov=%q err=%v, want %q", prov, err, FromAnalytical)
	}
	st := e.Stats()
	if st.ReuseCollections != 1 {
		t.Errorf("ReuseCollections = %d, want 1 (one profile serves both geometries)", st.ReuseCollections)
	}
	if st.ReuseHits == 0 {
		t.Error("ReuseHits = 0, want at least one memo hit")
	}

	// A prefetcher-enabled target cannot be served analytically.
	if _, _, err := e.CollectSignatureFrom(ctx, app, 64, testMachine(t, "bluewaters+pf"), opt); !errors.Is(err, ErrModelUnsupported) {
		t.Errorf("prefetch target under analytical model: %v, want ErrModelUnsupported", err)
	}
}

// TestEngineCollectReuseTiering: the reuse profile flows through the same
// memo → disk → collect tiers as signatures, surviving an engine restart.
func TestEngineCollectReuseTiering(t *testing.T) {
	dir := t.TempDir()
	app := testApp(t, "stencil3d")
	ctx := context.Background()

	e1 := NewEngine(WithStore(dir))
	if err := e1.Err(); err != nil {
		t.Fatal(err)
	}
	rs1, prov, err := e1.CollectReuse(ctx, app, 64, smallOpt)
	if err != nil {
		t.Fatalf("CollectReuse: %v", err)
	}
	if prov != FromCollected {
		t.Errorf("cold collection provenance %q, want %q", prov, FromCollected)
	}
	if _, prov, err = e1.CollectReuse(ctx, app, 64, smallOpt); err != nil || prov != FromMemory {
		t.Errorf("warm collection: prov=%q err=%v, want memory hit", prov, err)
	}
	e1.Close()

	// A new engine over the same store warm-starts from disk.
	e2 := NewEngine(WithStore(dir))
	if err := e2.Err(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rs2, prov, err := e2.CollectReuse(ctx, app, 64, smallOpt)
	if err != nil {
		t.Fatalf("CollectReuse after restart: %v", err)
	}
	if prov != FromDisk {
		t.Errorf("restart collection provenance %q, want %q", prov, FromDisk)
	}
	if len(rs1.Blocks) != len(rs2.Blocks) {
		t.Fatalf("profile changed across restart: %d vs %d blocks", len(rs1.Blocks), len(rs2.Blocks))
	}
	for i := range rs1.Blocks {
		if rs1.Blocks[i].Hist.Refs != rs2.Blocks[i].Hist.Refs {
			t.Errorf("block %d histogram changed across restart", rs1.Blocks[i].ID)
		}
	}
}

// TestEngineWithCacheModel: the engine-level default model applies to
// collections that leave Model unset, and an unknown model is a
// configuration error surfaced by Err.
func TestEngineWithCacheModel(t *testing.T) {
	e := NewEngine(WithCacheModel(ModelAnalytical))
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, prov, err := e.CollectSignatureFrom(context.Background(), testApp(t, "stencil3d"), 64, testMachine(t, "bluewaters"), smallOpt)
	if err != nil {
		t.Fatalf("CollectSignatureFrom: %v", err)
	}
	if prov != FromAnalytical {
		t.Errorf("provenance %q under engine default analytical model, want %q", prov, FromAnalytical)
	}
	// An explicit exact request overrides the engine default.
	exact := smallOpt
	exact.Model = ModelExact
	if _, prov, err = e.CollectSignatureFrom(context.Background(), testApp(t, "stencil3d"), 64, testMachine(t, "bluewaters"), exact); err != nil || prov != FromCollected {
		t.Errorf("explicit exact: prov=%q err=%v, want %q", prov, err, FromCollected)
	}

	if err := NewEngine(WithCacheModel("bogus")).Err(); err == nil {
		t.Error("unknown cache model accepted")
	}
}
