package tracex

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// storeTestOpts keeps collections fast while staying above the warm-up
// needs of the simulated regions.
var storeTestOpts = CollectOptions{SampleRefs: 30_000, MaxWarmRefs: 100_000}

// TestEngineWarmStartFromDisk is the tentpole contract: a fresh engine
// (a restarted process) over the same store directory serves a repeat
// collection from disk without re-simulating.
func TestEngineWarmStartFromDisk(t *testing.T) {
	dir := t.TempDir()
	app, err := LoadApp("stencil3d")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadMachine("bluewaters")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	e1 := NewEngine(WithStore(dir))
	if err := e1.Err(); err != nil {
		t.Fatalf("engine config: %v", err)
	}
	sig1, prov, err := e1.CollectSignatureFrom(ctx, app, 64, cfg, storeTestOpts)
	if err != nil {
		t.Fatalf("first collection: %v", err)
	}
	if prov != FromCollected {
		t.Errorf("first collection provenance %q", prov)
	}
	// Same engine, same request: the memory tier answers.
	_, prov, err = e1.CollectSignatureFrom(ctx, app, 64, cfg, storeTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if prov != FromMemory {
		t.Errorf("repeat collection provenance %q", prov)
	}
	st1 := e1.Stats()
	if st1.StorePuts != 1 || st1.StoreMisses != 1 {
		t.Errorf("first engine store stats: puts=%d misses=%d", st1.StorePuts, st1.StoreMisses)
	}

	// A fresh engine over the same directory — the "restarted process".
	e2 := NewEngine(WithStore(dir))
	if err := e2.Err(); err != nil {
		t.Fatal(err)
	}
	sig2, prov, err := e2.CollectSignatureFrom(ctx, app, 64, cfg, storeTestOpts)
	if err != nil {
		t.Fatalf("warm-start collection: %v", err)
	}
	if prov != FromDisk {
		t.Fatalf("warm-start provenance %q, want %q", prov, FromDisk)
	}
	if !reflect.DeepEqual(sig1, sig2) {
		t.Error("disk-served signature differs from the collected one")
	}
	st2 := e2.Stats()
	if st2.StoreHits != 1 || st2.StorePuts != 0 || st2.Collections != 1 {
		t.Errorf("warm-start stats: %+v", st2)
	}

	// Different options are a different identity: no false sharing.
	narrower := storeTestOpts
	narrower.SampleRefs = 20_000
	_, prov, err = e2.CollectSignatureFrom(ctx, app, 64, cfg, narrower)
	if err != nil {
		t.Fatal(err)
	}
	if prov != FromCollected {
		t.Errorf("different options served from %q", prov)
	}
}

// TestEngineStoreAccessors pins Store() exposure and the store-less default.
func TestEngineStoreAccessors(t *testing.T) {
	plain := NewEngine()
	if plain.Store() != nil {
		t.Error("store-less engine exposes a store")
	}
	dir := t.TempDir()
	e := NewEngine(WithStore(dir))
	if e.Store() == nil {
		t.Fatal("WithStore engine has no store")
	}
	if e.Store().Dir() != dir {
		t.Errorf("store dir %q", e.Store().Dir())
	}
}

// TestWithStoreBadDirPoisonsEngine: an unusable store directory surfaces as
// a configuration error naming the path, on every call.
func TestWithStoreBadDirPoisonsEngine(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(file, "store")
	e := NewEngine(WithStore(bad))
	err := e.Err()
	if err == nil {
		t.Fatal("engine over an uncreatable store reports no error")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("error does not name the path: %v", err)
	}
	app, _ := LoadApp("stencil3d")
	cfg, _ := LoadMachine("bluewaters")
	if _, _, err := e.CollectSignatureFrom(context.Background(), app, 64, cfg, storeTestOpts); err == nil {
		t.Error("poisoned engine served a collection")
	}
}

// TestStoreKeyDiscriminates pins the exported key derivation: identical
// inputs agree; any identity change produces a different key.
func TestStoreKeyDiscriminates(t *testing.T) {
	cfg, err := LoadMachine("bluewaters")
	if err != nil {
		t.Fatal(err)
	}
	base := StoreKey("uh3d", 512, cfg, CollectOptions{})
	if again := StoreKey("uh3d", 512, cfg, CollectOptions{}); again != base {
		t.Error("identical inputs produced different keys")
	}
	if k := StoreKey("uh3d", 1024, cfg, CollectOptions{}); k == base {
		t.Error("core count not discriminated")
	}
	if k := StoreKey("uh3d", 512, cfg, CollectOptions{SampleRefs: 9}); k == base {
		t.Error("options not discriminated")
	}
	other := cfg
	other.Prefetch = !other.Prefetch
	if k := StoreKey("uh3d", 512, other, CollectOptions{}); k == base {
		t.Error("machine configuration not discriminated")
	}
	if base.App != "uh3d" || base.Machine != cfg.Name || base.Cores != 512 {
		t.Errorf("key lost its human-readable identity: %+v", base)
	}
}
