package tracex

import (
	"context"

	"tracex/internal/cache"
	"tracex/internal/calibrate"
	"tracex/internal/memsim"
	"tracex/internal/pebil"
)

// Machine-calibration re-exports: solving the machine-profile inverse
// problem (fit uncertain machine parameters to observed timings), the
// fitted-model methodology of the paper's reference [27].
type (
	// Observation pairs cache accounting with an observed execution time.
	Observation = calibrate.Observation
	// CalibrationResult reports a calibration run.
	CalibrationResult = calibrate.Result
	// MachineParameter names a tunable machine parameter.
	MachineParameter = calibrate.Parameter
	// ParameterBounds is a parameter's legal search interval.
	ParameterBounds = calibrate.Bounds
	// CacheCounters is a cache-simulator accounting snapshot.
	CacheCounters = cache.Counters
)

// Tunable machine parameters.
const (
	ParamMLP          = calibrate.MLP
	ParamMemBandwidth = calibrate.MemBandwidth
	ParamMemLatency   = calibrate.MemLatency
)

// CalibrateMachine tunes the listed parameters of cfg so the memory timing
// model reproduces the observations. A nil bounds map uses the defaults.
func CalibrateMachine(cfg MachineConfig, obs []Observation, params []MachineParameter,
	bounds map[MachineParameter]ParameterBounds) (*CalibrationResult, error) {
	return calibrate.Calibrate(cfg, obs, params, bounds)
}

// ObserveBlocks produces calibration observations for every block of the
// application at one core count on the given machine: the block's sampled
// cache accounting paired with its detailed-model execution time. In a
// real deployment the times would come from hardware measurement; here the
// detailed simulator plays that role.
func ObserveBlocks(app *App, cores int, cfg MachineConfig, opt CollectOptions) ([]Observation, error) {
	counters, err := pebil.DefaultCollector().Counters(context.Background(), app, cores, cfg, opt)
	if err != nil {
		return nil, err
	}
	model, err := memsim.New(cfg)
	if err != nil {
		return nil, err
	}
	snaps := make([]cache.Counters, len(counters))
	for i := range counters {
		snaps[i] = counters[i].Counters
	}
	cycles, err := model.BlockCycles(snaps)
	if err != nil {
		return nil, err
	}
	obs := make([]Observation, 0, len(counters))
	for i := range counters {
		obs = append(obs, Observation{Counters: snaps[i], Seconds: model.Seconds(cycles[i])})
	}
	return obs, nil
}
