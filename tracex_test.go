package tracex

import (
	"context"
	"math"
	"testing"
)

// fastCollect keeps test-time simulation modest while staying above the
// steady-state warm-up needs of the multi-megabyte random regions.
var fastCollect = CollectOptions{SampleRefs: 200_000, MaxWarmRefs: 1_000_000}

func TestLoadersAndLists(t *testing.T) {
	if len(Apps()) != 5 || len(Machines()) != 7 {
		t.Fatalf("Apps=%v Machines=%v", Apps(), Machines())
	}
	for _, name := range Apps() {
		if _, err := LoadApp(name); err != nil {
			t.Errorf("LoadApp(%s): %v", name, err)
		}
	}
	for _, name := range Machines() {
		if _, err := LoadMachine(name); err != nil {
			t.Errorf("LoadMachine(%s): %v", name, err)
		}
	}
	if _, err := LoadApp("x"); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := LoadMachine("x"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestBuildProfile(t *testing.T) {
	cfg, _ := LoadMachine("opteron2")
	prof, err := BuildProfile(cfg)
	if err != nil {
		t.Fatalf("BuildProfile: %v", err)
	}
	if err := prof.Validate(); err != nil {
		t.Fatalf("profile invalid: %v", err)
	}
}

// TestTableIPipeline runs the paper's headline experiment end to end at a
// reduced scale (stencil3d at 512 cores extrapolated from 64/128/256):
// the prediction made from the extrapolated trace must closely agree with
// the prediction made from the collected trace, and both must be within a
// sane band of the detailed-simulation "measured" runtime.
func TestTableIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	app, err := LoadApp("stencil3d")
	if err != nil {
		t.Fatal(err)
	}
	target, _ := LoadMachine("bluewaters")
	prof, err := BuildProfile(target)
	if err != nil {
		t.Fatal(err)
	}
	inputs, err := CollectInputs(app, []int{64, 128, 256}, target, fastCollect)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extrapolate(inputs, 512, ExtrapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	collected, err := CollectSignature(app, 512, target, fastCollect)
	if err != nil {
		t.Fatal(err)
	}
	predExtrap, err := DefaultEngine().Predict(context.Background(),
		PredictRequest{Signature: res.Signature, Profile: prof, App: app})
	if err != nil {
		t.Fatalf("Predict(extrapolated): %v", err)
	}
	predColl, err := DefaultEngine().Predict(context.Background(),
		PredictRequest{Signature: collected, Profile: prof, App: app})
	if err != nil {
		t.Fatalf("Predict(collected): %v", err)
	}
	measured, err := Measure(app, 512, target, fastCollect)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	t.Logf("extrapolated prediction: %.3f s", predExtrap.Runtime)
	t.Logf("collected prediction:    %.3f s", predColl.Runtime)
	t.Logf("measured (detailed sim): %.3f s", measured.Runtime)
	if predExtrap.Runtime <= 0 || predColl.Runtime <= 0 || measured.Runtime <= 0 {
		t.Fatal("non-positive runtimes")
	}
	// The paper's core result: the extrapolated trace predicts what the
	// collected trace predicts.
	if d := math.Abs(predExtrap.Runtime-predColl.Runtime) / predColl.Runtime; d > 0.05 {
		t.Errorf("extrapolated vs collected predictions differ by %.1f%%", d*100)
	}
	// Both estimators agree with the detailed simulation to first order.
	if d := math.Abs(predColl.Runtime-measured.Runtime) / measured.Runtime; d > 0.25 {
		t.Errorf("collected prediction off measured by %.1f%%", d*100)
	}
}

func TestPredictValidation(t *testing.T) {
	app, _ := LoadApp("stencil3d")
	target, _ := LoadMachine("bluewaters")
	other, _ := LoadMachine("kraken")
	prof, err := BuildProfile(other)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := CollectSignature(app, 64, target, CollectOptions{SampleRefs: 20_000, MaxWarmRefs: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DefaultEngine().Predict(context.Background(),
		PredictRequest{Signature: sig, Profile: prof, App: app}); err == nil {
		t.Error("machine mismatch accepted")
	}
}

func TestMeasureDeterministic(t *testing.T) {
	app, _ := LoadApp("stencil3d")
	target, _ := LoadMachine("bluewaters")
	opt := CollectOptions{SampleRefs: 50_000, MaxWarmRefs: 100_000}
	a, err := Measure(app, 64, target, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(app, 64, target, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime {
		t.Errorf("Measure not deterministic: %g vs %g", a.Runtime, b.Runtime)
	}
}
