// Benchmarks for the Engine orchestrator: the serial-vs-parallel
// CollectInputs comparison (the engine's fan-out should beat one worker on
// any multi-core runner) and the cache-hit fast path.
package tracex_test

import (
	"context"
	"testing"

	"tracex"
)

// benchCollectOpt keeps one collection cheap enough to repeat while leaving
// enough simulation work for the pool to amortize goroutine overhead.
// Per-block parallelism is pinned to 1 so the engine's worker pool is the
// only concurrency under test.
var benchCollectOpt = tracex.CollectOptions{
	SampleRefs:  60_000,
	MaxWarmRefs: 150_000,
	Workers:     1,
}

var benchInputCounts = []int{64, 96, 128, 192, 256}

// benchCollectInputs measures CollectInputs on an engine with the given
// worker count (0 keeps the engine's one-worker-per-CPU default). Caching
// is disabled so every iteration simulates.
func benchCollectInputs(b *testing.B, workers int) {
	app, err := tracex.LoadApp("stencil3d")
	if err != nil {
		b.Fatal(err)
	}
	target, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		b.Fatal(err)
	}
	opts := []tracex.EngineOption{tracex.WithCacheSize(0)}
	if workers > 0 {
		opts = append(opts, tracex.WithParallelism(workers))
	}
	eng := tracex.NewEngine(opts...)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.CollectInputs(ctx, app, benchInputCounts, target, benchCollectOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectInputsSerial is the one-worker baseline.
func BenchmarkCollectInputsSerial(b *testing.B) { benchCollectInputs(b, 1) }

// BenchmarkCollectInputsEngine uses the default pool (one worker per CPU);
// compare against BenchmarkCollectInputsSerial on a multi-core runner.
func BenchmarkCollectInputsEngine(b *testing.B) { benchCollectInputs(b, 0) }

// BenchmarkCollectSignatureCached measures the memoized fast path: every
// iteration after the first is a cache hit with zero simulation.
func BenchmarkCollectSignatureCached(b *testing.B) {
	app, err := tracex.LoadApp("stencil3d")
	if err != nil {
		b.Fatal(err)
	}
	target, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		b.Fatal(err)
	}
	eng := tracex.NewEngine()
	ctx := context.Background()
	if _, err := eng.CollectSignature(ctx, app, 64, target, benchCollectOpt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.CollectSignature(ctx, app, 64, target, benchCollectOpt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := eng.Stats(); st.Collections != 1 {
		b.Fatalf("cached benchmark ran %d collections", st.Collections)
	}
}
