package tracex

import (
	"context"
	"fmt"
	"sort"
)

// This file implements the held-out-core-count calibration harness for
// prediction intervals: for each (application, machine) cell, signatures
// are collected at a ladder of core counts, the largest count is held out,
// the rest are extrapolated to it with model-averaging uncertainty, and the
// resulting runtime intervals are scored against the prediction from the
// actually-collected held-out signature. The fraction of cells whose 90%
// interval covers the held-out runtime is the empirical coverage — a
// calibrated posterior lands near 0.9. `make bench-uncert` records the
// full matrix in BENCH_uncert.json; TestCalibrationCoverage pins the
// acceptance band on a reduced matrix.

// CalibrationConfig parameterizes Engine.CalibrateIntervals. Zero-valued
// fields take the defaults described on each field.
type CalibrationConfig struct {
	// Apps names the applications to calibrate over. Default: uh3d,
	// stencil3d, cgsolve.
	Apps []string
	// Machines names the target machines. Default: kraken, bluewaters.
	Machines []string
	// Counts maps an application to its core-count ladder (the largest is
	// held out, the rest are the extrapolation inputs). Apps missing from
	// the map use a default ladder inside the app's defined core range.
	// Each ladder needs at least 3 counts (2 inputs + 1 held out).
	Counts map[string][]int
	// Collect tunes signature collection (sample length, cache model, ...).
	Collect CollectOptions
	// Levels are the interval levels to calibrate. Default:
	// DefaultIntervalLevels() — the 50%, 90% and 95% bands.
	Levels []float64
}

// CalibrationBand is one interval of a calibration cell, annotated with
// whether it covered the held-out runtime.
type CalibrationBand struct {
	Level   float64 `json:"level"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Covered bool    `json:"covered"`
}

// CalibrationCell is one (application, machine) trial of the held-out
// calibration protocol. Predicted is the extrapolated prediction's runtime
// at the held-out count; Actual is the prediction from the
// actually-collected held-out signature (the harness's ground truth).
type CalibrationCell struct {
	App          string            `json:"app"`
	Machine      string            `json:"machine"`
	InputCores   []int             `json:"input_cores"`
	HeldOutCores int               `json:"held_out_cores"`
	Predicted    float64           `json:"predicted_seconds"`
	Actual       float64           `json:"actual_seconds"`
	Bands        []CalibrationBand `json:"bands"`
}

// LevelCoverage aggregates one interval level across all cells.
// MeanRelWidth is the mean of (hi-lo)/actual across cells: how wide the
// bands are relative to the runtime they bracket.
type LevelCoverage struct {
	Level        float64 `json:"level"`
	Covered      int     `json:"covered"`
	Cells        int     `json:"cells"`
	Fraction     float64 `json:"fraction"`
	MeanRelWidth float64 `json:"mean_rel_width"`
}

// CalibrationReport is the result of Engine.CalibrateIntervals.
type CalibrationReport struct {
	Cells    []CalibrationCell `json:"cells"`
	Coverage []LevelCoverage   `json:"coverage"`
}

// CoverageAt returns the empirical coverage fraction at the given level, or
// -1 when the level was not calibrated.
func (r *CalibrationReport) CoverageAt(level float64) float64 {
	for _, c := range r.Coverage {
		if c.Level == level {
			return c.Fraction
		}
	}
	return -1
}

// defaultCalibrationCounts returns a 4-step core-count ladder inside the
// app's defined range.
func defaultCalibrationCounts(app string) []int {
	switch app {
	case "uh3d":
		return []int{1024, 2048, 4096, 8192}
	case "specfem3d":
		return []int{64, 128, 256, 512}
	default: // stencil3d, stencil3dweak, cgsolve: defined from 8 cores up
		return []int{8, 16, 32, 64}
	}
}

// CalibrateIntervals runs the held-out-core-count calibration protocol and
// reports per-level empirical coverage. Collections go through the engine's
// caches, so repeated calibrations (or a calibration after a study over the
// same counts) reuse prior simulations.
func (e *Engine) CalibrateIntervals(ctx context.Context, cfg CalibrationConfig) (*CalibrationReport, error) {
	apps := cfg.Apps
	if len(apps) == 0 {
		apps = []string{"uh3d", "stencil3d", "cgsolve"}
	}
	machines := cfg.Machines
	if len(machines) == 0 {
		machines = []string{"kraken", "bluewaters"}
	}
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = DefaultIntervalLevels()
	}

	rep := &CalibrationReport{}
	for _, appName := range apps {
		app, err := LoadApp(appName)
		if err != nil {
			return nil, err
		}
		counts := cfg.Counts[appName]
		if len(counts) == 0 {
			counts = defaultCalibrationCounts(appName)
		}
		if len(counts) < 3 {
			return nil, fmt.Errorf("tracex: calibration for %s needs at least 3 core counts (2 inputs + 1 held out), got %v", appName, counts)
		}
		counts = append([]int(nil), counts...)
		sort.Ints(counts)
		inputCores, heldOut := counts[:len(counts)-1], counts[len(counts)-1]
		for _, machineName := range machines {
			mc, err := LoadMachine(machineName)
			if err != nil {
				return nil, err
			}
			cell, err := e.calibrateCell(ctx, app, mc, inputCores, heldOut, cfg.Collect, levels)
			if err != nil {
				return nil, fmt.Errorf("tracex: calibrating %s on %s: %w", appName, machineName, err)
			}
			rep.Cells = append(rep.Cells, *cell)
		}
	}

	for _, level := range levels {
		lc := LevelCoverage{Level: level}
		for _, cell := range rep.Cells {
			for _, b := range cell.Bands {
				if b.Level != level {
					continue
				}
				lc.Cells++
				if b.Covered {
					lc.Covered++
				}
				if cell.Actual > 0 {
					lc.MeanRelWidth += (b.Hi - b.Lo) / cell.Actual
				}
			}
		}
		if lc.Cells > 0 {
			lc.Fraction = float64(lc.Covered) / float64(lc.Cells)
			lc.MeanRelWidth /= float64(lc.Cells)
		}
		rep.Coverage = append(rep.Coverage, lc)
	}
	return rep, nil
}

// calibrateCell runs one (app, machine) trial: collect the ladder,
// extrapolate the inputs to the held-out count with uncertainty, and score
// each interval against the held-out signature's prediction.
func (e *Engine) calibrateCell(ctx context.Context, app *App, mc MachineConfig, inputCores []int, heldOut int, copt CollectOptions, levels []float64) (*CalibrationCell, error) {
	inputs := make([]*Signature, 0, len(inputCores))
	for _, cores := range inputCores {
		sig, err := e.CollectSignature(ctx, app, cores, mc, copt)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, sig)
	}
	heldSig, err := e.CollectSignature(ctx, app, heldOut, mc, copt)
	if err != nil {
		return nil, err
	}

	ex, err := e.Extrapolate(ctx, inputs, heldOut, ExtrapOptions{Intervals: true})
	if err != nil {
		return nil, err
	}
	pred, err := e.Predict(ctx, PredictRequest{
		Signature: ex.Signature, App: app, Intervals: true, IntervalLevels: levels,
	})
	if err != nil {
		return nil, err
	}
	if len(pred.Intervals) == 0 {
		return nil, fmt.Errorf("extrapolated prediction carries no intervals")
	}
	actual, err := e.Predict(ctx, PredictRequest{Signature: heldSig, App: app})
	if err != nil {
		return nil, err
	}

	cell := &CalibrationCell{
		App: app.Name(), Machine: mc.Name,
		InputCores: append([]int(nil), inputCores...), HeldOutCores: heldOut,
		Predicted: pred.Runtime, Actual: actual.Runtime,
	}
	for _, iv := range pred.Intervals {
		cell.Bands = append(cell.Bands, CalibrationBand{
			Level: iv.Level, Lo: iv.Lo, Hi: iv.Hi,
			Covered: iv.Lo <= actual.Runtime && actual.Runtime <= iv.Hi,
		})
	}
	return cell, nil
}
