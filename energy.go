package tracex

import (
	"tracex/internal/energy"
	"tracex/internal/psins"
)

// Energy-model re-exports: the paper motivates its feature vector as
// capturing what matters "for both performance and energy"; these wrap the
// internal/energy package over the dominant task of a signature.
type (
	// EnergyModel holds linear power-model coefficients for a machine.
	EnergyModel = energy.Model
	// EnergyReport is a per-task energy estimate.
	EnergyReport = energy.Report
	// FrequencyPoint is one entry of a DVFS sweep.
	FrequencyPoint = energy.FrequencyPoint
)

// DefaultEnergyModel returns plausible power coefficients for cfg.
func DefaultEnergyModel(cfg MachineConfig) EnergyModel { return energy.DefaultModel(cfg) }

// convolveDominant convolves the signature's dominant task with the profile.
func convolveDominant(sig *Signature, prof *Profile) (*Trace, *psins.Computation, error) {
	dom := sig.DominantTrace()
	comp, err := psins.Convolve(dom, prof)
	if err != nil {
		return nil, nil, err
	}
	return dom, comp, nil
}

// EstimateEnergy prices the dominant task's computation energy from a
// signature (collected or extrapolated) and a machine profile.
func EstimateEnergy(sig *Signature, prof *Profile, m EnergyModel) (*EnergyReport, error) {
	dom, comp, err := convolveDominant(sig, prof)
	if err != nil {
		return nil, err
	}
	return energy.Estimate(dom, comp, m)
}

// DVFSSweep evaluates the dominant task's time, energy and energy-delay
// product across relative core frequencies (memory time is frequency-
// invariant, compute time scales as 1/f, dynamic power as f³).
func DVFSSweep(sig *Signature, prof *Profile, m EnergyModel, scales []float64) ([]FrequencyPoint, error) {
	dom, comp, err := convolveDominant(sig, prof)
	if err != nil {
		return nil, err
	}
	return energy.DVFSSweep(dom, comp, m, scales)
}

// OptimalFrequency returns the sweep points minimizing energy and
// energy-delay product.
func OptimalFrequency(points []FrequencyPoint) (minEnergy, minEDP FrequencyPoint) {
	return energy.OptimalFrequency(points)
}
