package synthapp

import (
	"fmt"
	"math"

	"tracex/internal/addrgen"
)

// seedFor derives a deterministic PRNG seed for a block's stream.
func seedFor(blockID uint64, p int) int64 {
	return int64(blockID)*1_000_003 + int64(p)
}

// SPECFEM3D returns the proxy for SPECFEM3D_GLOBE, the spectral-element
// seismic wave propagation code. The paper traces it at 96, 384 and 1536
// cores and extrapolates to 6144. Its blocks:
//
//   - compute_element_forces: the dominant stencil sweep over the rank's
//     spectral elements; reference count decreases linearly as strong
//     scaling removes work, working set shrinks slowly (always beyond LLC).
//   - flux_lookup_table: a fixed-size interpolation table shared by all
//     element computations; constant work and a constant ~24 KB footprint —
//     the Table III block whose residency depends on the candidate L1 size.
//   - assemble_global: gather into the global system; the dominant task's
//     share grows logarithmically with core count (Figure 5 behaviour) over
//     a footprint that drains toward the caches as P rises.
//   - attenuation_boundary: boundary attenuation terms that die off
//     exponentially as the domain is partitioned more finely.
//   - seismogram_pack: trace output packing; negligible work (below the
//     0.1 % influence threshold).
func SPECFEM3D() *App {
	return &App{
		name:         "specfem3d",
		classFactors: []float64{1.0, 0.97, 0.94, 0.91},
		steps:        2,
		haloBytes: func(p int) uint64 {
			return uint64(expDecay(2.0e6, 8192, p)) + 4096
		},
		allreduceBytes: 64,
		minCores:       64,
		maxCores:       8192,
		blocks: []blockDef{
			{
				spec: BlockSpec{
					ID: 1, Func: "compute_element_forces", File: "compute_forces.f90", Line: 112,
					FPPerRef: 1.8, AddFrac: 0.5, MulFrac: 0.45, DivFrac: 0.05,
					LoadFrac: 0.72, BytesPerRef: 8, ILP: 2.8,
				},
				refs: func(p int) float64 {
					return (6.0e10 - 2.5e6*float64(p)) * jitter(p, 1, 0.004)
				},
				ws: func(p int) float64 { return expDecay(64<<20, 32768, p) },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					cells := uint64(expDecay(64<<20, 32768, p) / 8)
					n := uint64(math.Cbrt(float64(cells)))
					if n < 8 {
						n = 8
					}
					return addrgen.NewStencil3D(base, n, n, n, 8)
				},
			},
			{
				spec: BlockSpec{
					ID: 2, Func: "flux_lookup_table", File: "flux_table.f90", Line: 58,
					FPPerRef: 1.1, AddFrac: 0.6, MulFrac: 0.4,
					LoadFrac: 0.95, BytesPerRef: 8, ILP: 1.6,
				},
				refs: func(p int) float64 { return 4.0e9 * jitter(p, 2, 0.003) },
				ws:   func(p int) float64 { return 24 << 10 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					// 8 KiB streamed coefficients + 16 KiB randomly indexed
					// table: resident in a 56 KB L1, thrashing a 12 KB one.
					seq, err := addrgen.NewStride(base, 8, 8<<10)
					if err != nil {
						return nil, err
					}
					tbl, err := addrgen.NewRandom(base+(1<<20), 16<<10, 8, seedFor(2, p))
					if err != nil {
						return nil, err
					}
					return addrgen.NewMix(seq, tbl, 2, 1)
				},
			},
			{
				spec: BlockSpec{
					ID: 3, Func: "assemble_global", File: "assemble.f90", Line: 204,
					FPPerRef: 0.6, AddFrac: 0.8, MulFrac: 0.2,
					LoadFrac: 0.55, BytesPerRef: 8, ILP: 1.4,
				},
				refs: func(p int) float64 {
					return (1.5e9 + 2.2e8*math.Log(float64(p))) * jitter(p, 3, 0.005)
				},
				ws: func(p int) float64 { return 8<<10 + 320<<10 + 30<<20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					// A resident index buffer streamed alongside random
					// gathers that concentrate logarithmically onto the
					// rank-local 320 KiB portion of the global array as the
					// problem strong-scales.
					idx, err := addrgen.NewStride(base, 8, 8<<10)
					if err != nil {
						return nil, err
					}
					hot, err := addrgen.NewRandom(base+(1<<28), 320<<10, 8, seedFor(3, p))
					if err != nil {
						return nil, err
					}
					cold, err := addrgen.NewRandom(base+(1<<30), 30<<20, 8, seedFor(3, p)+1)
					if err != nil {
						return nil, err
					}
					gather, err := addrgen.NewBiased(hot, cold, hotFraction(-0.343, 0.108, p))
					if err != nil {
						return nil, err
					}
					return addrgen.NewMix(idx, gather, 1, 3)
				},
			},
			{
				spec: BlockSpec{
					ID: 4, Func: "attenuation_boundary", File: "attenuation.f90", Line: 77,
					FPPerRef: 2.2, AddFrac: 0.45, MulFrac: 0.45, DivFrac: 0.1,
					LoadFrac: 0.66, BytesPerRef: 8, ILP: 2.2,
				},
				refs: func(p int) float64 {
					return 8.0e9 * math.Exp(-float64(p)/6000) * jitter(p, 4, 0.004)
				},
				ws: func(p int) float64 { return 1 << 20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewStride(base, 8, 1<<20)
				},
			},
			{
				spec: BlockSpec{
					ID: 5, Func: "seismogram_pack", File: "write_seismograms.f90", Line: 31,
					FPPerRef: 0.1, AddFrac: 1.0,
					LoadFrac: 0.5, BytesPerRef: 8, ILP: 1.0,
				},
				refs: func(p int) float64 { return 5.0e6 * jitter(p, 5, 0.01) },
				ws:   func(p int) float64 { return 2 << 20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewRandom(base, 2<<20, 8, seedFor(5, p))
				},
			},
		},
	}
}

// UH3D returns the proxy for UH3D, the UCSD global magnetosphere code that
// treats ions as particles and electrons as a fluid. The paper traces it at
// 1024, 2048 and 4096 cores and extrapolates to 8192. Its blocks:
//
//   - particle_push: the particle advance — a sequential walk over the
//     particle list gathering fields from a grid whose per-rank footprint
//     shrinks under strong scaling.
//   - field_update: the fluid/field solve — a streaming kernel with a
//     randomly-indexed region that drains into L3 (and the upper caches)
//     as the core count rises; this is the Table II block.
//   - current_deposit: charge/current deposition whose locality
//     concentrates linearly with core count (Figure 4's linearly rising L2
//     hit rate) as more of the deposit targets the rank-local tile.
//   - sort_particles: a periodic particle reorder streaming a large
//     constant buffer.
//   - field_diagnostics: tiny diagnostic reductions (below the influence
//     threshold).
func UH3D() *App {
	return &App{
		name:         "uh3d",
		classFactors: []float64{1.0, 0.96, 0.93, 0.89},
		steps:        2,
		haloBytes: func(p int) uint64 {
			return uint64(expDecay(1.2e6, 8192, p)) + 2048
		},
		allreduceBytes: 128,
		// The logarithmic field_update law turns positive above ~830
		// cores; UH3D runs are defined from 1024 up.
		minCores: 1024,
		maxCores: 16384,
		blocks: []blockDef{
			{
				spec: BlockSpec{
					ID: 11, Func: "particle_push", File: "push.F", Line: 145,
					FPPerRef: 1.5, AddFrac: 0.55, MulFrac: 0.4, DivFrac: 0.05,
					LoadFrac: 0.7, BytesPerRef: 8, ILP: 2.4,
				},
				refs: func(p int) float64 {
					return (2.8e10 - 1.2e6*float64(p)) * jitter(p, 11, 0.004)
				},
				ws: func(p int) float64 { return 8<<20 + 320<<10 + 40<<20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					// One sequential particle-list reference per three grid
					// gathers; the gathers concentrate logarithmically onto
					// the rank-local 320 KiB grid tile under strong scaling.
					particles, err := addrgen.NewStride(base, 8, 8<<20)
					if err != nil {
						return nil, err
					}
					hot, err := addrgen.NewRandom(base+(1<<28), 320<<10, 8, seedFor(11, p))
					if err != nil {
						return nil, err
					}
					cold, err := addrgen.NewRandom(base+(1<<30), 40<<20, 8, seedFor(11, p)+1)
					if err != nil {
						return nil, err
					}
					grid, err := addrgen.NewBiased(hot, cold, hotFraction(-0.72, 0.13, p))
					if err != nil {
						return nil, err
					}
					return addrgen.NewMix(particles, grid, 1, 3)
				},
			},
			{
				spec: BlockSpec{
					ID: 12, Func: "field_update", File: "field.F", Line: 89,
					FPPerRef: 1.9, AddFrac: 0.5, MulFrac: 0.45, DivFrac: 0.05,
					LoadFrac: 0.68, BytesPerRef: 8, ILP: 2.6,
				},
				refs: func(p int) float64 {
					return (-4.4e10 + 6.55e9*math.Log(float64(p))) * jitter(p, 12, 0.004)
				},
				ws: func(p int) float64 { return 16<<10 + 320<<10 + 40<<20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					// 7 streaming references through a resident 16 KiB tile
					// per 1 random field reference; the field references
					// concentrate logarithmically onto an L3-resident
					// 320 KiB tile as the core count rises — the mechanism
					// behind Table II's rising L3 hit rate.
					tile, err := addrgen.NewStride(base, 8, 16<<10)
					if err != nil {
						return nil, err
					}
					hot, err := addrgen.NewRandom(base+(1<<28), 320<<10, 8, seedFor(12, p))
					if err != nil {
						return nil, err
					}
					cold, err := addrgen.NewRandom(base+(1<<30), 40<<20, 8, seedFor(12, p)+1)
					if err != nil {
						return nil, err
					}
					field, err := addrgen.NewBiased(hot, cold, hotFraction(-1.053, 0.178, p))
					if err != nil {
						return nil, err
					}
					return addrgen.NewMix(tile, field, 7, 1)
				},
			},
			{
				spec: BlockSpec{
					ID: 13, Func: "current_deposit", File: "deposit.F", Line: 52,
					FPPerRef: 0.9, AddFrac: 0.85, MulFrac: 0.15,
					LoadFrac: 0.45, BytesPerRef: 8, ILP: 1.5,
				},
				refs: func(p int) float64 {
					return (3.0e10 - 1.5e6*float64(p)) * jitter(p, 13, 0.005)
				},
				ws: func(p int) float64 { return 4<<10 + 16<<10 + 40<<20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					// A resident 4 KiB accumulation tile streamed three
					// references out of four; the fourth lands in either a
					// 16 KiB L2-resident hot region or the 40 MiB cold grid,
					// with the hot fraction growing linearly with core count
					// (the rank-local share of the deposits): the source of
					// Figure 4's linearly rising L2 hit rate.
					tile, err := addrgen.NewStride(base, 8, 4<<10)
					if err != nil {
						return nil, err
					}
					hot, err := addrgen.NewRandom(base+(1<<28), 16<<10, 8, seedFor(13, p))
					if err != nil {
						return nil, err
					}
					cold, err := addrgen.NewRandom(base+(1<<30), 40<<20, 8, seedFor(13, p)+1)
					if err != nil {
						return nil, err
					}
					frac := 0.10 + 3.5e-5*float64(p)
					if frac > 0.95 {
						frac = 0.95
					}
					biased, err := addrgen.NewBiased(hot, cold, frac)
					if err != nil {
						return nil, err
					}
					return addrgen.NewMix(tile, biased, 3, 1)
				},
			},
			{
				spec: BlockSpec{
					ID: 14, Func: "sort_particles", File: "sort.F", Line: 23,
					FPPerRef: 0.2, AddFrac: 1.0,
					LoadFrac: 0.5, BytesPerRef: 8, ILP: 1.8,
				},
				refs: func(p int) float64 { return 6.0e9 * jitter(p, 14, 0.003) },
				ws:   func(p int) float64 { return 12 << 20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewStride(base, 8, 12<<20)
				},
			},
			{
				spec: BlockSpec{
					ID: 15, Func: "field_diagnostics", File: "diag.F", Line: 17,
					FPPerRef: 1.0, AddFrac: 1.0,
					LoadFrac: 0.9, BytesPerRef: 8, ILP: 1.2,
				},
				refs: func(p int) float64 { return 8.0e6 * jitter(p, 15, 0.01) },
				ws:   func(p int) float64 { return 512 << 10 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewStride(base, 8, 512<<10)
				},
			},
		},
	}
}

// Stencil3D returns a small generic three-block stencil application used by
// the quickstart example and as a neutral third workload: a stencil sweep, a
// halo pack and a residual reduction.
func Stencil3D() *App {
	return &App{
		name:            "stencil3d",
		classFactors:    []float64{1.0, 0.95},
		steps:           2,
		nonblockingHalo: true,
		haloBytes: func(p int) uint64 {
			return uint64(expDecay(512<<10, 4096, p)) + 1024
		},
		allreduceBytes: 8,
		minCores:       8,
		maxCores:       16384,
		blocks: []blockDef{
			{
				spec: BlockSpec{
					ID: 21, Func: "stencil_sweep", File: "sweep.c", Line: 40,
					FPPerRef: 1.2, AddFrac: 0.6, MulFrac: 0.4,
					LoadFrac: 0.75, BytesPerRef: 8, ILP: 2.0,
				},
				refs: func(p int) float64 {
					return (2.0e9 - 5.0e4*float64(p)) * jitter(p, 21, 0.004)
				},
				ws: func(p int) float64 { return expDecay(32<<20, 16384, p) },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					cells := uint64(expDecay(32<<20, 16384, p) / 8)
					n := uint64(math.Cbrt(float64(cells)))
					if n < 8 {
						n = 8
					}
					return addrgen.NewStencil3D(base, n, n, n, 8)
				},
			},
			{
				spec: BlockSpec{
					ID: 22, Func: "halo_pack", File: "halo.c", Line: 12,
					FPPerRef: 0.1, AddFrac: 1.0,
					LoadFrac: 0.5, BytesPerRef: 8, ILP: 1.5,
				},
				refs: func(p int) float64 {
					return (2.0e7 + 4.0e6*math.Log(float64(p))) * jitter(p, 22, 0.005)
				},
				ws: func(p int) float64 { return 4 << 20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewStride(base, 8, 4<<20)
				},
			},
			{
				spec: BlockSpec{
					ID: 23, Func: "residual_norm", File: "norm.c", Line: 66,
					FPPerRef: 2.0, AddFrac: 0.5, MulFrac: 0.5,
					LoadFrac: 1.0, BytesPerRef: 8, ILP: 3.0,
				},
				refs: func(p int) float64 { return 1.0e8 * jitter(p, 23, 0.003) },
				ws:   func(p int) float64 { return 2 << 20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewStride(base, 8, 2<<20)
				},
			},
		},
	}
}

// Stencil3DWeak returns the weak-scaled variant of Stencil3D: the per-rank
// subdomain is held constant as the core count grows (the global problem
// grows with P). The paper's Future Work flags weak scaling as "of
// interest" and possibly challenging; in this regime most per-rank feature
// elements are constant — trivially canonical — while the residual growth
// comes from collective depth and boundary bookkeeping, which scale
// logarithmically.
func Stencil3DWeak() *App {
	return &App{
		name:            "stencil3dweak",
		classFactors:    []float64{1.0, 0.95},
		steps:           2,
		nonblockingHalo: true,
		haloBytes: func(p int) uint64 {
			return 256 << 10 // constant per-rank surface under weak scaling
		},
		allreduceBytes: 8,
		minCores:       8,
		maxCores:       16384,
		blocks: []blockDef{
			{
				spec: BlockSpec{
					ID: 31, Func: "stencil_sweep", File: "sweep.c", Line: 40,
					FPPerRef: 1.2, AddFrac: 0.6, MulFrac: 0.4,
					LoadFrac: 0.75, BytesPerRef: 8, ILP: 2.0,
				},
				// Constant per-rank work: the defining weak-scaling trait.
				refs: func(p int) float64 { return 1.6e9 * jitter(p, 31, 0.004) },
				ws:   func(p int) float64 { return 24 << 20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					const n = 145 // ≈24 MiB of 8-byte cells
					return addrgen.NewStencil3D(base, n, n, n, 8)
				},
			},
			{
				spec: BlockSpec{
					ID: 32, Func: "halo_pack", File: "halo.c", Line: 12,
					FPPerRef: 0.1, AddFrac: 1.0,
					LoadFrac: 0.5, BytesPerRef: 8, ILP: 1.5,
				},
				refs: func(p int) float64 { return 4.0e7 * jitter(p, 32, 0.004) },
				ws:   func(p int) float64 { return 4 << 20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewStride(base, 8, 4<<20)
				},
			},
			{
				spec: BlockSpec{
					ID: 33, Func: "global_reduce_prep", File: "norm.c", Line: 66,
					FPPerRef: 2.0, AddFrac: 0.5, MulFrac: 0.5,
					LoadFrac: 1.0, BytesPerRef: 8, ILP: 3.0,
				},
				// Reduction bookkeeping grows with tree depth: log P.
				refs: func(p int) float64 {
					return (5.0e7 + 2.0e7*math.Log(float64(p))) * jitter(p, 33, 0.004)
				},
				ws: func(p int) float64 { return 2 << 20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewStride(base, 8, 2<<20)
				},
			},
		},
	}
}

// CGSolve returns a sparse conjugate-gradient solver proxy — the
// gather-dominated workload family (SpMV plus vector kernels) that
// complements the stencil and particle proxies. Strong scaling shrinks the
// per-rank matrix slice; the SpMV's x-vector gathers concentrate onto the
// rank-local block (log law) while the vector kernels shed work linearly.
func CGSolve() *App {
	return &App{
		name:            "cgsolve",
		classFactors:    []float64{1.0, 0.97, 0.93},
		steps:           2,
		nonblockingHalo: true,
		haloBytes: func(p int) uint64 {
			return uint64(expDecay(512<<10, 8192, p)) + 1024
		},
		// Two inner products per CG iteration: allreduce-heavy.
		allreduceBytes: 16,
		minCores:       8,
		maxCores:       16384,
		blocks: []blockDef{
			{
				spec: BlockSpec{
					ID: 41, Func: "spmv", File: "spmv.c", Line: 31,
					FPPerRef: 1.0, AddFrac: 0.5, MulFrac: 0.5,
					LoadFrac: 0.85, BytesPerRef: 8, ILP: 1.8,
				},
				refs: func(p int) float64 {
					return (3.0e9 - 8.0e4*float64(p)) * jitter(p, 41, 0.004)
				},
				ws: func(p int) float64 { return 8<<10 + 320<<10 + 24<<20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					// Column indices stream; x-vector gathers concentrate
					// logarithmically onto the rank-local 320 KiB block.
					idx, err := addrgen.NewStride(base, 8, 8<<10)
					if err != nil {
						return nil, err
					}
					hot, err := addrgen.NewRandom(base+(1<<28), 320<<10, 8, seedFor(41, p))
					if err != nil {
						return nil, err
					}
					cold, err := addrgen.NewRandom(base+(1<<30), 24<<20, 8, seedFor(41, p)+1)
					if err != nil {
						return nil, err
					}
					gather, err := addrgen.NewBiased(hot, cold, hotFraction(-0.2, 0.09, p))
					if err != nil {
						return nil, err
					}
					return addrgen.NewMix(idx, gather, 1, 2)
				},
			},
			{
				spec: BlockSpec{
					ID: 42, Func: "axpy", File: "vector.c", Line: 12,
					FPPerRef: 0.67, AddFrac: 0.5, MulFrac: 0.5,
					LoadFrac: 0.67, BytesPerRef: 8, ILP: 3.2,
				},
				refs: func(p int) float64 {
					return (1.2e9 - 3.0e4*float64(p)) * jitter(p, 42, 0.003)
				},
				ws: func(p int) float64 { return 16 << 20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewStride(base, 8, 16<<20)
				},
			},
			{
				spec: BlockSpec{
					ID: 43, Func: "dot_product", File: "vector.c", Line: 58,
					FPPerRef: 1.0, AddFrac: 0.5, MulFrac: 0.5,
					LoadFrac: 1.0, BytesPerRef: 8, ILP: 3.5,
				},
				refs: func(p int) float64 {
					return (6.0e8 - 1.5e4*float64(p)) * jitter(p, 43, 0.003)
				},
				ws: func(p int) float64 { return 8 << 20 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewStride(base, 8, 8<<20)
				},
			},
			{
				spec: BlockSpec{
					ID: 44, Func: "jacobi_precond", File: "precond.c", Line: 9,
					FPPerRef: 1.5, AddFrac: 0.4, MulFrac: 0.4, DivFrac: 0.2,
					LoadFrac: 0.7, BytesPerRef: 8, ILP: 2.0,
				},
				// Preconditioner setup amortizes: logarithmic growth of the
				// dominant task's share.
				refs: func(p int) float64 {
					return (1.0e8 + 4.0e7*math.Log(float64(p))) * jitter(p, 44, 0.004)
				},
				ws: func(p int) float64 { return 96 << 10 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewStride(base, 8, 96<<10)
				},
			},
			{
				spec: BlockSpec{
					ID: 45, Func: "residual_log", File: "monitor.c", Line: 5,
					FPPerRef: 0.5, AddFrac: 1.0,
					LoadFrac: 0.9, BytesPerRef: 8, ILP: 1.0,
				},
				refs: func(p int) float64 { return 4.0e5 * jitter(p, 45, 0.01) },
				ws:   func(p int) float64 { return 256 << 10 },
				newGen: func(p int, base uint64) (addrgen.Generator, error) {
					return addrgen.NewStride(base, 8, 256<<10)
				},
			},
		},
	}
}

// ByName returns a proxy application by name.
func ByName(name string) (*App, error) {
	switch name {
	case "specfem3d":
		return SPECFEM3D(), nil
	case "uh3d":
		return UH3D(), nil
	case "stencil3d":
		return Stencil3D(), nil
	case "stencil3dweak":
		return Stencil3DWeak(), nil
	case "cgsolve":
		return CGSolve(), nil
	}
	return nil, fmt.Errorf("synthapp: unknown application %q (have specfem3d, uh3d, stencil3d, stencil3dweak, cgsolve)", name)
}

// Names lists the available proxy applications.
func Names() []string {
	return []string{"specfem3d", "uh3d", "stencil3d", "stencil3dweak", "cgsolve"}
}
