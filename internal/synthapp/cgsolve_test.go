package synthapp

import "testing"

func TestCGSolveEndToEndShape(t *testing.T) {
	app := CGSolve()
	if _, err := app.Work(8); err != nil {
		t.Fatalf("Work(min): %v", err)
	}
	prog, err := app.Program(64)
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	// CG is allreduce-heavy: collectives on every rank.
	colls := 0
	for _, e := range prog.Ranks[0] {
		if e.Kind.IsCollective() {
			colls++
		}
	}
	if colls == 0 {
		t.Error("cgsolve program has no collectives")
	}
	// SpMV dominates the reference counts.
	works, err := app.Work(1024)
	if err != nil {
		t.Fatal(err)
	}
	if works[0].Spec.Func != "spmv" {
		t.Fatalf("first block is %s", works[0].Spec.Func)
	}
	for _, w := range works[1:] {
		if w.Refs > works[0].Refs {
			t.Errorf("%s out-references spmv", w.Spec.Func)
		}
	}
}
