package synthapp

import (
	"math"
	"testing"

	"tracex/internal/addrgen"
)

func TestByNameAndNames(t *testing.T) {
	for _, name := range Names() {
		app, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if app.Name() != name {
			t.Errorf("app name %s != %s", app.Name(), name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestBlockSpecsValid(t *testing.T) {
	for _, name := range Names() {
		app, _ := ByName(name)
		seen := map[uint64]bool{}
		for _, s := range app.Blocks() {
			if err := s.Validate(); err != nil {
				t.Errorf("%s/%s: %v", name, s.Func, err)
			}
			if seen[s.ID] {
				t.Errorf("%s: duplicate block ID %d", name, s.ID)
			}
			seen[s.ID] = true
		}
	}
}

func TestBlockSpecValidateRejectsBad(t *testing.T) {
	good := BlockSpec{ID: 1, Func: "f", FPPerRef: 1, AddFrac: 0.5, MulFrac: 0.5,
		LoadFrac: 0.5, BytesPerRef: 8, ILP: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bads := []BlockSpec{
		{ID: 0, Func: "f", FPPerRef: 1, BytesPerRef: 8, ILP: 1},
		{ID: 1, Func: "f", FPPerRef: -1, BytesPerRef: 8, ILP: 1},
		{ID: 1, Func: "f", FPPerRef: 1, BytesPerRef: 0, ILP: 1},
		{ID: 1, Func: "f", FPPerRef: 1, BytesPerRef: 8, ILP: 0},
		{ID: 1, Func: "f", FPPerRef: 1, AddFrac: 0.9, MulFrac: 0.3, BytesPerRef: 8, ILP: 1},
		{ID: 1, Func: "f", FPPerRef: 1, LoadFrac: 1.5, BytesPerRef: 8, ILP: 1},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestCoreRangeEnforced(t *testing.T) {
	app := SPECFEM3D()
	min, max := app.CoreRange()
	if _, err := app.Work(min - 1); err == nil {
		t.Error("below-range core count accepted")
	}
	if _, err := app.Work(max + 1); err == nil {
		t.Error("above-range core count accepted")
	}
	if _, err := app.Program(min - 1); err == nil {
		t.Error("Program below range accepted")
	}
}

func TestWorkShapes(t *testing.T) {
	for _, name := range Names() {
		app, _ := ByName(name)
		min, _ := app.CoreRange()
		works, err := app.Work(min)
		if err != nil {
			t.Fatalf("%s.Work(%d): %v", name, min, err)
		}
		if len(works) != len(app.Blocks()) {
			t.Fatalf("%s: %d works for %d blocks", name, len(works), len(works))
		}
		for _, w := range works {
			if w.Refs <= 0 {
				t.Errorf("%s/%s: refs %g", name, w.Spec.Func, w.Refs)
			}
			if w.WorkingSetBytes <= 0 {
				t.Errorf("%s/%s: working set %g", name, w.Spec.Func, w.WorkingSetBytes)
			}
			if w.Gen == nil {
				t.Errorf("%s/%s: nil generator", name, w.Spec.Func)
			}
		}
	}
}

func TestWorkDeterministic(t *testing.T) {
	a1, _ := ByName("uh3d")
	a2, _ := ByName("uh3d")
	w1, err := a1.Work(2048)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := a2.Work(2048)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1 {
		if w1[i].Refs != w2[i].Refs {
			t.Errorf("block %d refs differ across constructions", i)
		}
		s1 := addrgen.Fill(w1[i].Gen, nil, 100)
		s2 := addrgen.Fill(w2[i].Gen, nil, 100)
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Fatalf("block %d stream diverges at %d", i, j)
			}
		}
	}
}

func TestLoadFactorsAndClasses(t *testing.T) {
	app := UH3D()
	if app.NumClasses() < 2 {
		t.Fatalf("NumClasses = %d", app.NumClasses())
	}
	if app.LoadFactor(0) != 1.0 {
		t.Errorf("rank 0 load factor %g, want 1 (dominant)", app.LoadFactor(0))
	}
	for r := 0; r < 32; r++ {
		f := app.LoadFactor(r)
		if f <= 0 || f > 1 {
			t.Errorf("rank %d load factor %g", r, f)
		}
		if app.ClassOf(r) != r%app.NumClasses() {
			t.Errorf("rank %d class %d", r, app.ClassOf(r))
		}
	}
}

func TestRefsLawsBehaveAcrossPaperCounts(t *testing.T) {
	// SPECFEM3D: compute_element_forces decreases, assemble_global grows.
	app := SPECFEM3D()
	counts := []int{96, 384, 1536, 6144}
	var forces, assemble []float64
	for _, p := range counts {
		ws, err := app.Work(p)
		if err != nil {
			t.Fatalf("Work(%d): %v", p, err)
		}
		forces = append(forces, ws[0].Refs)
		assemble = append(assemble, ws[2].Refs)
	}
	for i := 1; i < len(counts); i++ {
		if forces[i] >= forces[i-1] {
			t.Errorf("compute_element_forces refs not decreasing: %v", forces)
		}
		if assemble[i] <= assemble[i-1] {
			t.Errorf("assemble_global refs not increasing: %v", assemble)
		}
	}
}

func TestUH3DFieldUpdateLocalityConcentrates(t *testing.T) {
	// Under strong scaling the field_update block keeps a constant
	// footprint but concentrates a growing (logarithmic) fraction of its
	// references onto the resident tile — the mechanism behind Table II's
	// rising hit rates.
	app := UH3D()
	var prevWS, prevFrac float64
	for i, p := range []int{1024, 2048, 4096, 8192} {
		ws, err := app.Work(p)
		if err != nil {
			t.Fatalf("Work(%d): %v", p, err)
		}
		cur := ws[1].WorkingSetBytes // field_update
		if i > 0 && cur != prevWS {
			t.Errorf("field_update working set changed at p=%d: %g vs %g", p, cur, prevWS)
		}
		prevWS = cur
		frac := hotFraction(-1.053, 0.178, p)
		if frac <= prevFrac {
			t.Errorf("hot fraction not increasing at p=%d: %g ≤ %g", p, frac, prevFrac)
		}
		prevFrac = frac
	}
}

func TestHotFractionClamped(t *testing.T) {
	if got := hotFraction(-100, 0, 1024); got != 0 {
		t.Errorf("negative law not clamped to 0: %g", got)
	}
	if got := hotFraction(100, 0, 1024); got != 0.95 {
		t.Errorf("oversized law not clamped to 0.95: %g", got)
	}
	if got := hotFraction(0, 0.1, 7); got <= 0 || got >= 0.95 {
		t.Errorf("interior law clamped unexpectedly: %g", got)
	}
}

func TestInfluenceStructure(t *testing.T) {
	// The diagnostic blocks must be tiny relative to the app total.
	for _, name := range []string{"specfem3d", "uh3d"} {
		app, _ := ByName(name)
		min, _ := app.CoreRange()
		works, err := app.Work(min * 16)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, w := range works {
			total += w.Refs
		}
		last := works[len(works)-1]
		if ratio := last.Refs / total; ratio > 0.001 {
			t.Errorf("%s/%s influence %g, want <0.1%%", name, last.Spec.Func, ratio)
		}
		// And the first block is dominant enough to matter.
		if ratio := works[0].Refs / total; ratio < 0.05 {
			t.Errorf("%s/%s influence %g too small", name, works[0].Spec.Func, ratio)
		}
	}
}

func TestProgramStructure(t *testing.T) {
	app := Stencil3D()
	prog, err := app.Program(64)
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	if prog.NumRanks() != 64 {
		t.Fatalf("NumRanks = %d", prog.NumRanks())
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	// Per-rank compute shares per block must sum to 1 across the steps.
	shares := map[uint64]float64{}
	for _, e := range prog.Ranks[0] {
		if e.Kind.String() == "compute" {
			shares[e.BlockID] += e.Share
		}
	}
	for id, s := range shares {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("block %d shares sum to %g", id, s)
		}
	}
	if prog.TotalMessages() == 0 {
		t.Error("no halo messages generated")
	}
}

func TestProgramSingleRank(t *testing.T) {
	app := Stencil3D()
	prog, err := app.Program(8)
	if err != nil {
		t.Fatalf("Program(8): %v", err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	for _, p := range []int{96, 1024, 8192} {
		for id := uint64(1); id < 30; id++ {
			j := jitter(p, id, 0.005)
			if j < 0.995 || j > 1.005 {
				t.Errorf("jitter(%d,%d) = %g out of band", p, id, j)
			}
			if j != jitter(p, id, 0.005) {
				t.Error("jitter not deterministic")
			}
		}
	}
}

func TestExpDecay(t *testing.T) {
	if got := expDecay(100, 1000, 0); got != 100 {
		t.Errorf("expDecay at 0 = %g", got)
	}
	if got := expDecay(100, 1000, 1000); math.Abs(got-100/math.E) > 1e-9 {
		t.Errorf("expDecay at tau = %g", got)
	}
}

func TestAllAppsProgramsValidateAcrossCounts(t *testing.T) {
	for _, name := range Names() {
		app, _ := ByName(name)
		min, max := app.CoreRange()
		counts := []int{min, min * 2, min * 8}
		if max < min*8 {
			counts = []int{min, max}
		}
		for _, p := range counts {
			prog, err := app.Program(p)
			if err != nil {
				t.Fatalf("%s.Program(%d): %v", name, p, err)
			}
			if err := prog.Validate(); err != nil {
				t.Errorf("%s at %d cores: %v", name, p, err)
			}
			works, err := app.Work(p)
			if err != nil {
				t.Fatalf("%s.Work(%d): %v", name, p, err)
			}
			// Every compute event references a defined block.
			blocks := map[uint64]bool{}
			for _, w := range works {
				blocks[w.Spec.ID] = true
			}
			for _, e := range prog.Ranks[0] {
				if e.Kind.String() == "compute" && !blocks[e.BlockID] {
					t.Errorf("%s: event references unknown block %d", name, e.BlockID)
				}
			}
		}
	}
}
