// Package synthapp defines the synthetic strong-scaled proxy applications
// that stand in for the paper's SPECFEM3D_GLOBE and UH3D production codes
// (which require Kraken-class hardware and production datasets). Each proxy
// consists of basic blocks — kernels with a memory access pattern, a
// floating-point intensity and an instruction-level parallelism — whose
// per-rank workloads (reference counts, working sets, locality mixes) evolve
// with the core count the way the paper's measurements show the dominant
// task's features evolving: constant, linear, logarithmic or exponential
// trends with small deterministic perturbations, plus working sets that
// drain into deeper cache levels as the problem strong-scales (Table II) and
// fixed-size lookup structures that straddle candidate L1 sizes (Table III).
//
// Every workload is deterministic: the same (app, core count, block) always
// produces the same sampled address stream.
package synthapp

import (
	"fmt"
	"math"

	"tracex/internal/addrgen"
	"tracex/internal/mpi"
)

// BlockSpec is the static description of one basic block.
type BlockSpec struct {
	// ID is the block's stable identifier across core counts.
	ID uint64
	// Func, File and Line give the block's synthetic source location.
	Func string
	File string
	Line int
	// FPPerRef is the number of floating-point operations per memory
	// reference.
	FPPerRef float64
	// AddFrac, MulFrac and DivFrac split the FP work by class; they sum
	// to at most 1.
	AddFrac, MulFrac, DivFrac float64
	// LoadFrac is the fraction of memory references that are loads.
	LoadFrac float64
	// BytesPerRef is the payload size of one reference.
	BytesPerRef float64
	// ILP is the block's instruction-level parallelism.
	ILP float64
}

// Validate checks the spec.
func (s BlockSpec) Validate() error {
	if s.ID == 0 {
		return fmt.Errorf("synthapp: block %q has zero ID", s.Func)
	}
	if s.FPPerRef < 0 || s.BytesPerRef <= 0 || s.ILP <= 0 {
		return fmt.Errorf("synthapp: block %s has bad rates", s.Func)
	}
	if s.AddFrac < 0 || s.MulFrac < 0 || s.DivFrac < 0 || s.AddFrac+s.MulFrac+s.DivFrac > 1+1e-9 {
		return fmt.Errorf("synthapp: block %s FP composition invalid", s.Func)
	}
	if s.LoadFrac < 0 || s.LoadFrac > 1 {
		return fmt.Errorf("synthapp: block %s load fraction %g", s.Func, s.LoadFrac)
	}
	return nil
}

// blockDef couples a spec with the block's workload laws.
type blockDef struct {
	spec BlockSpec
	// refs returns the dominant rank's memory reference count at core
	// count p.
	refs func(p int) float64
	// newGen builds the block's pattern-faithful address stream at core
	// count p, placed at the given base address.
	newGen func(p int, base uint64) (addrgen.Generator, error)
	// ws returns the block's working-set size in bytes at core count p.
	ws func(p int) float64
}

// Work is the dominant rank's workload for one block at one core count.
type Work struct {
	// Spec is the block's static description.
	Spec BlockSpec
	// Refs is the total number of memory references the rank executes.
	Refs float64
	// WorkingSetBytes is the block's data footprint.
	WorkingSetBytes float64
	// Gen produces the block's sampled address stream.
	Gen addrgen.Generator
}

// App is a synthetic proxy application.
type App struct {
	name   string
	blocks []blockDef
	// classFactors scale per-rank work; classFactors[0] = 1 is the
	// dominant class. Ranks are assigned round-robin.
	classFactors []float64
	// steps is the number of timesteps the event trace spans.
	steps int
	// haloBytes is the per-face halo payload at core count p.
	haloBytes func(p int) uint64
	// nonblockingHalo selects Isend/Irecv/Wait halo exchanges instead of
	// blocking Send/Recv pairs.
	nonblockingHalo bool
	// allreduceBytes is the per-step reduction payload.
	allreduceBytes uint64
	// minCores and maxCores bound the validated core-count range of the
	// workload laws.
	minCores, maxCores int
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

// Blocks returns the static block specs in ID order.
func (a *App) Blocks() []BlockSpec {
	out := make([]BlockSpec, len(a.blocks))
	for i, b := range a.blocks {
		out[i] = b.spec
	}
	return out
}

// CoreRange returns the inclusive core-count range the app's workload laws
// are defined over.
func (a *App) CoreRange() (min, max int) { return a.minCores, a.maxCores }

// NumClasses returns the number of load-imbalance classes.
func (a *App) NumClasses() int { return len(a.classFactors) }

// ClassOf returns the load class of a rank (round-robin assignment).
func (a *App) ClassOf(rank int) int { return rank % len(a.classFactors) }

// LoadFactor returns the rank's relative compute weight; rank 0 (class 0)
// is the dominant, most heavily loaded task with factor 1.
func (a *App) LoadFactor(rank int) float64 { return a.classFactors[a.ClassOf(rank)] }

// checkCores validates a core count against the app's defined range.
func (a *App) checkCores(p int) error {
	if p < a.minCores || p > a.maxCores {
		return fmt.Errorf("synthapp: %s defined for %d..%d cores, got %d",
			a.name, a.minCores, a.maxCores, p)
	}
	return nil
}

// Work returns the dominant rank's per-block workload at core count p.
// Other ranks execute the same blocks scaled by their LoadFactor.
func (a *App) Work(p int) ([]Work, error) {
	if err := a.checkCores(p); err != nil {
		return nil, err
	}
	out := make([]Work, 0, len(a.blocks))
	for i := range a.blocks {
		b := &a.blocks[i]
		base := b.spec.ID << 32 // disjoint address regions per block
		gen, err := b.newGen(p, base)
		if err != nil {
			return nil, fmt.Errorf("synthapp: %s block %s at p=%d: %w", a.name, b.spec.Func, p, err)
		}
		refs := b.refs(p)
		if refs <= 0 {
			return nil, fmt.Errorf("synthapp: %s block %s has non-positive refs %g at p=%d",
				a.name, b.spec.Func, refs, p)
		}
		out = append(out, Work{
			Spec:            b.spec,
			Refs:            refs,
			WorkingSetBytes: b.ws(p),
			Gen:             gen,
		})
	}
	return out, nil
}

// Program builds the replayable MPI event trace at core count p: steps
// timesteps, each computing every block on every rank followed by a 3D halo
// exchange and an allreduce.
func (a *App) Program(p int) (*mpi.Program, error) {
	if err := a.checkCores(p); err != nil {
		return nil, err
	}
	g, err := mpi.NewGrid3D(p)
	if err != nil {
		return nil, err
	}
	b := mpi.NewBuilder(a.name, p)
	share := 1.0 / float64(a.steps)
	for step := 0; step < a.steps; step++ {
		for i := range a.blocks {
			b.ComputeAll(a.blocks[i].spec.ID, share)
		}
		if p > 1 {
			if a.nonblockingHalo {
				b.HaloExchange3DNonblocking(g, a.haloBytes(p), 1000*step)
			} else {
				b.HaloExchange3D(g, a.haloBytes(p), 1000*step)
			}
		}
		b.Allreduce(a.allreduceBytes)
	}
	return b.Build()
}

// jitter is a small deterministic multiplicative perturbation applied to
// workload laws so canonical-form fits carry realistic residuals instead of
// being exact. Amplitude amp is the relative half-range.
func jitter(p int, blockID uint64, amp float64) float64 {
	return 1 + amp*math.Sin(1.7*float64(blockID)+2.9*math.Log(float64(p)))
}

// expDecay returns w0·e^(-p/tau).
func expDecay(w0 float64, tau float64, p int) float64 {
	return w0 * math.Exp(-float64(p)/tau)
}

// hotFraction returns a+b·ln p clamped into [0, 0.95]: the fraction of a
// block's random references that land in its cache-resident "hot" region.
// Strong scaling concentrates each rank's accesses onto its local tile, so
// the fraction grows with the core count; making it logarithmic in p gives
// the block cumulative hit rates of the form offset + c·ln p — exactly the
// logarithmic canonical form the paper's measurements show (Figure 5) —
// while the block's working set stays constant.
func hotFraction(a, b float64, p int) float64 {
	f := a + b*math.Log(float64(p))
	if f < 0 {
		f = 0
	}
	if f > 0.95 {
		f = 0.95
	}
	return f
}
