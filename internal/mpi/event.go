// Package mpi models the MPI layer of a parallel application as replayable
// per-rank event traces: compute segments referencing basic blocks,
// point-to-point messages, and collectives. It is the substrate the PSiNS
// replay simulator consumes and the PSiNSTracer-style lightweight profiler
// summarizes, standing in for a real MPI implementation and the paper's
// event tracing tools.
package mpi

import "fmt"

// EventKind enumerates the event types a rank's trace may contain.
type EventKind int

// Event kinds. Compute segments carry a basic-block reference; Send/Recv
// are blocking eager point-to-point operations; Isend/Irecv post
// non-blocking operations completed by a matching Wait; the collectives
// synchronize all ranks of the program.
const (
	Compute EventKind = iota
	Send
	Recv
	Isend
	Irecv
	Wait
	Barrier
	Allreduce
	Bcast
	Alltoall
	Reduce
	Allgather
)

var kindNames = map[EventKind]string{
	Compute:   "compute",
	Send:      "send",
	Recv:      "recv",
	Isend:     "isend",
	Irecv:     "irecv",
	Wait:      "wait",
	Barrier:   "barrier",
	Allreduce: "allreduce",
	Bcast:     "bcast",
	Alltoall:  "alltoall",
	Reduce:    "reduce",
	Allgather: "allgather",
}

// String returns the kind's name.
func (k EventKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// IsCollective reports whether the kind synchronizes all ranks.
func (k EventKind) IsCollective() bool {
	switch k {
	case Barrier, Allreduce, Bcast, Alltoall, Reduce, Allgather:
		return true
	}
	return false
}

// Event is one entry in a rank's event trace.
type Event struct {
	// Kind selects which of the remaining fields are meaningful.
	Kind EventKind
	// Peer is the other rank for Send/Recv and the root for Bcast.
	Peer int
	// Tag disambiguates point-to-point message streams.
	Tag int
	// Bytes is the message payload size for communication events.
	Bytes uint64
	// BlockID names the basic block a Compute segment executes.
	BlockID uint64
	// Share is the fraction of the block's total per-rank work performed
	// in this compute segment (a block split across phases has several
	// segments whose shares sum to 1).
	Share float64
	// Request identifies a non-blocking operation within its rank: an
	// Isend/Irecv posts request r, the matching Wait carries the same r.
	Request int
}

// Validate checks an event in the context of a program with n ranks, from
// the perspective of rank self.
func (e Event) Validate(self, n int) error {
	switch e.Kind {
	case Compute:
		if e.Share <= 0 || e.Share > 1 {
			return fmt.Errorf("mpi: compute share %g outside (0,1]", e.Share)
		}
	case Send, Recv, Isend, Irecv:
		if e.Peer < 0 || e.Peer >= n {
			return fmt.Errorf("mpi: %s peer %d out of range [0,%d)", e.Kind, e.Peer, n)
		}
		if e.Peer == self {
			return fmt.Errorf("mpi: %s to self (rank %d)", e.Kind, self)
		}
		if e.Bytes == 0 {
			return fmt.Errorf("mpi: zero-byte %s", e.Kind)
		}
	case Wait:
		// Request pairing is checked program-wide in Program.Validate.
	case Bcast, Reduce:
		if e.Peer < 0 || e.Peer >= n {
			return fmt.Errorf("mpi: %s root %d out of range", e.Kind, e.Peer)
		}
		if e.Bytes == 0 {
			return fmt.Errorf("mpi: zero-byte %s", e.Kind)
		}
	case Allreduce, Alltoall, Allgather:
		if e.Bytes == 0 {
			return fmt.Errorf("mpi: zero-byte %s", e.Kind)
		}
	case Barrier:
		// No payload fields.
	default:
		return fmt.Errorf("mpi: unknown event kind %d", int(e.Kind))
	}
	return nil
}

// Program is a complete replayable application: one event trace per rank.
type Program struct {
	// App names the application the program represents.
	App string
	// Ranks[r] is the ordered event trace of rank r.
	Ranks [][]Event
}

// NumRanks returns the number of ranks in the program.
func (p *Program) NumRanks() int { return len(p.Ranks) }

// Validate checks every event and the structural sanity of the program:
// matching send/recv multisets per (src,dst,tag) pair and equal collective
// counts across ranks (necessary conditions for deadlock-free replay).
func (p *Program) Validate() error {
	n := len(p.Ranks)
	if n == 0 {
		return fmt.Errorf("mpi: program has no ranks")
	}
	type chanKey struct{ src, dst, tag int }
	sends := map[chanKey]int{}
	recvs := map[chanKey]int{}
	collectives := make([]int, n)
	for r, evs := range p.Ranks {
		posted := map[int]bool{} // outstanding non-blocking requests
		for i, e := range evs {
			if err := e.Validate(r, n); err != nil {
				return fmt.Errorf("mpi: rank %d event %d: %w", r, i, err)
			}
			switch e.Kind {
			case Send:
				sends[chanKey{r, e.Peer, e.Tag}]++
			case Recv:
				recvs[chanKey{e.Peer, r, e.Tag}]++
			case Isend:
				sends[chanKey{r, e.Peer, e.Tag}]++
				if posted[e.Request] {
					return fmt.Errorf("mpi: rank %d reuses outstanding request %d", r, e.Request)
				}
				posted[e.Request] = true
			case Irecv:
				recvs[chanKey{e.Peer, r, e.Tag}]++
				if posted[e.Request] {
					return fmt.Errorf("mpi: rank %d reuses outstanding request %d", r, e.Request)
				}
				posted[e.Request] = true
			case Wait:
				if !posted[e.Request] {
					return fmt.Errorf("mpi: rank %d waits on unposted request %d", r, e.Request)
				}
				delete(posted, e.Request)
			default:
				if e.Kind.IsCollective() {
					collectives[r]++
				}
			}
		}
		if len(posted) > 0 {
			return fmt.Errorf("mpi: rank %d finishes with %d unwaited requests", r, len(posted))
		}
	}
	for k, ns := range sends {
		if recvs[k] != ns {
			return fmt.Errorf("mpi: %d sends but %d recvs on channel %d→%d tag %d",
				ns, recvs[k], k.src, k.dst, k.tag)
		}
	}
	for k, nr := range recvs {
		if _, ok := sends[k]; !ok && nr > 0 {
			return fmt.Errorf("mpi: %d recvs with no sends on channel %d→%d tag %d",
				nr, k.src, k.dst, k.tag)
		}
	}
	for r := 1; r < n; r++ {
		if collectives[r] != collectives[0] {
			return fmt.Errorf("mpi: rank %d has %d collectives, rank 0 has %d",
				r, collectives[r], collectives[0])
		}
	}
	return nil
}

// TotalMessages counts point-to-point sends (blocking and non-blocking) in
// the program.
func (p *Program) TotalMessages() int {
	var n int
	for _, evs := range p.Ranks {
		for _, e := range evs {
			if e.Kind == Send || e.Kind == Isend {
				n++
			}
		}
	}
	return n
}

// TotalBytes sums point-to-point payload bytes in the program.
func (p *Program) TotalBytes() uint64 {
	var b uint64
	for _, evs := range p.Ranks {
		for _, e := range evs {
			if e.Kind == Send || e.Kind == Isend {
				b += e.Bytes
			}
		}
	}
	return b
}
