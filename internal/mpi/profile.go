package mpi

// RankSummary is the lightweight per-rank profile produced without a full
// replay: aggregate compute shares per basic block and communication
// volumes. It is the analog of the paper's PSiNSTracer-based MPI profiling
// library used to identify the most computationally demanding task.
type RankSummary struct {
	// Rank is the MPI rank the summary describes.
	Rank int
	// ComputeShare maps basic-block ID to the total share of that block's
	// work this rank executes.
	ComputeShare map[uint64]float64
	// Messages is the number of point-to-point sends the rank issues.
	Messages int
	// SendBytes and RecvBytes are the rank's point-to-point volumes.
	SendBytes, RecvBytes uint64
	// Collectives counts collective operations the rank participates in.
	Collectives int
}

// Profile summarizes every rank of the program.
func Profile(p *Program) []RankSummary {
	out := make([]RankSummary, len(p.Ranks))
	for r, evs := range p.Ranks {
		s := RankSummary{Rank: r, ComputeShare: map[uint64]float64{}}
		for _, e := range evs {
			switch e.Kind {
			case Compute:
				s.ComputeShare[e.BlockID] += e.Share
			case Send:
				s.Messages++
				s.SendBytes += e.Bytes
			case Recv:
				s.RecvBytes += e.Bytes
			default:
				if e.Kind.IsCollective() {
					s.Collectives++
				}
			}
		}
		out[r] = s
	}
	return out
}

// DominantRank returns the rank with the greatest total compute weight,
// where weight converts one block share into comparable work units (for
// example, the block's memory-operation count). Ties resolve to the lowest
// rank. It returns 0 for an empty program.
func DominantRank(p *Program, weight func(blockID uint64, share float64) float64) int {
	best, bestW := 0, -1.0
	for r, evs := range p.Ranks {
		var w float64
		for _, e := range evs {
			if e.Kind == Compute {
				w += weight(e.BlockID, e.Share)
			}
		}
		if w > bestW {
			best, bestW = r, w
		}
	}
	return best
}
