package mpi

import "testing"

func TestNonblockingEventValidation(t *testing.T) {
	cases := []struct {
		name string
		e    Event
		ok   bool
	}{
		{"good isend", Event{Kind: Isend, Peer: 1, Bytes: 8, Request: 0}, true},
		{"good irecv", Event{Kind: Irecv, Peer: 2, Bytes: 8, Request: 3}, true},
		{"isend to self", Event{Kind: Isend, Peer: 0, Bytes: 8}, false},
		{"zero-byte irecv", Event{Kind: Irecv, Peer: 1}, false},
		{"good wait", Event{Kind: Wait, Request: 1}, true},
	}
	for _, c := range cases {
		err := c.e.Validate(0, 4)
		if c.ok && err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestProgramValidateNonblockingPairing(t *testing.T) {
	// Wait without a posted request.
	p := &Program{App: "x", Ranks: [][]Event{
		{{Kind: Wait, Request: 0}},
		{},
	}}
	if err := p.Validate(); err == nil {
		t.Error("wait on unposted request accepted")
	}
	// Unwaited request at program end.
	p = &Program{App: "x", Ranks: [][]Event{
		{{Kind: Isend, Peer: 1, Tag: 0, Bytes: 8, Request: 0}},
		{{Kind: Recv, Peer: 0, Tag: 0, Bytes: 8}},
	}}
	if err := p.Validate(); err == nil {
		t.Error("unwaited isend accepted")
	}
	// Request id reused while outstanding.
	p = &Program{App: "x", Ranks: [][]Event{
		{
			{Kind: Isend, Peer: 1, Tag: 0, Bytes: 8, Request: 0},
			{Kind: Isend, Peer: 1, Tag: 1, Bytes: 8, Request: 0},
			{Kind: Wait, Request: 0},
		},
		{
			{Kind: Recv, Peer: 0, Tag: 0, Bytes: 8},
			{Kind: Recv, Peer: 0, Tag: 1, Bytes: 8},
		},
	}}
	if err := p.Validate(); err == nil {
		t.Error("reused outstanding request accepted")
	}
	// Request id legally reused after its Wait.
	p = &Program{App: "x", Ranks: [][]Event{
		{
			{Kind: Isend, Peer: 1, Tag: 0, Bytes: 8, Request: 0},
			{Kind: Wait, Request: 0},
			{Kind: Isend, Peer: 1, Tag: 1, Bytes: 8, Request: 0},
			{Kind: Wait, Request: 0},
		},
		{
			{Kind: Recv, Peer: 0, Tag: 0, Bytes: 8},
			{Kind: Recv, Peer: 0, Tag: 1, Bytes: 8},
		},
	}}
	if err := p.Validate(); err != nil {
		t.Errorf("legal request reuse rejected: %v", err)
	}
	// Isend/Irecv participate in the send/recv multiset balance.
	p = &Program{App: "x", Ranks: [][]Event{
		{
			{Kind: Isend, Peer: 1, Tag: 0, Bytes: 8, Request: 0},
			{Kind: Wait, Request: 0},
		},
		{
			{Kind: Irecv, Peer: 0, Tag: 0, Bytes: 8, Request: 0},
			{Kind: Wait, Request: 0},
		},
	}}
	if err := p.Validate(); err != nil {
		t.Errorf("balanced nonblocking pair rejected: %v", err)
	}
	if p.TotalMessages() != 1 || p.TotalBytes() != 8 {
		t.Errorf("nonblocking message not counted: %d msgs %d bytes",
			p.TotalMessages(), p.TotalBytes())
	}
}

func TestNonblockingHaloTagsMatch(t *testing.T) {
	// The nonblocking halo's Irecv tags must pair with the neighbors'
	// Isend tags: Validate's multiset check proves it for a 3D grid where
	// every direction occurs.
	g, err := NewGrid3D(64)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewBuilder("nb", 64).HaloExchange3DNonblocking(g, 1024, 500).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Every rank's waits equal its posts.
	for r, evs := range prog.Ranks {
		posts, waits := 0, 0
		for _, e := range evs {
			switch e.Kind {
			case Isend, Irecv:
				posts++
			case Wait:
				waits++
			}
		}
		if posts != waits {
			t.Fatalf("rank %d: %d posts vs %d waits", r, posts, waits)
		}
	}
}

func TestNonblockingKindNames(t *testing.T) {
	if Isend.String() != "isend" || Irecv.String() != "irecv" || Wait.String() != "wait" {
		t.Error("nonblocking kind names wrong")
	}
	for _, k := range []EventKind{Isend, Irecv, Wait} {
		if k.IsCollective() {
			t.Errorf("%s misclassified as collective", k)
		}
	}
}
