package mpi

import (
	"fmt"
	"math"
)

// Builder incrementally constructs a Program. Methods that add
// communication patterns keep the per-rank event sequences deadlock-free
// under eager-send semantics (sends never block; receives are posted after
// the matching sends exist somewhere in the program).
type Builder struct {
	prog Program
	err  error
}

// NewBuilder returns a Builder for an application with n ranks.
func NewBuilder(app string, n int) *Builder {
	b := &Builder{prog: Program{App: app, Ranks: make([][]Event, n)}}
	if n <= 0 {
		b.err = fmt.Errorf("mpi: builder needs ≥1 rank, got %d", n)
	}
	return b
}

// Err returns the first error encountered while building.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Compute appends a compute segment executing share of block blockID on
// rank r.
func (b *Builder) Compute(r int, blockID uint64, share float64) *Builder {
	if b.err != nil {
		return b
	}
	if r < 0 || r >= len(b.prog.Ranks) {
		b.fail("mpi: compute on rank %d of %d", r, len(b.prog.Ranks))
		return b
	}
	b.prog.Ranks[r] = append(b.prog.Ranks[r], Event{Kind: Compute, BlockID: blockID, Share: share})
	return b
}

// ComputeAll appends the same compute segment on every rank.
func (b *Builder) ComputeAll(blockID uint64, share float64) *Builder {
	for r := range b.prog.Ranks {
		b.Compute(r, blockID, share)
	}
	return b
}

// SendRecv appends a matched message: a Send on src and a Recv on dst.
func (b *Builder) SendRecv(src, dst, tag int, bytes uint64) *Builder {
	if b.err != nil {
		return b
	}
	n := len(b.prog.Ranks)
	if src < 0 || src >= n || dst < 0 || dst >= n || src == dst {
		b.fail("mpi: bad message %d→%d in %d ranks", src, dst, n)
		return b
	}
	b.prog.Ranks[src] = append(b.prog.Ranks[src], Event{Kind: Send, Peer: dst, Tag: tag, Bytes: bytes})
	b.prog.Ranks[dst] = append(b.prog.Ranks[dst], Event{Kind: Recv, Peer: src, Tag: tag, Bytes: bytes})
	return b
}

// Collective appends the same collective event on every rank.
func (b *Builder) Collective(kind EventKind, root int, bytes uint64) *Builder {
	if b.err != nil {
		return b
	}
	if !kind.IsCollective() {
		b.fail("mpi: %s is not a collective", kind)
		return b
	}
	for r := range b.prog.Ranks {
		b.prog.Ranks[r] = append(b.prog.Ranks[r], Event{Kind: kind, Peer: root, Bytes: bytes})
	}
	return b
}

// Allreduce appends an allreduce of the given payload on every rank.
func (b *Builder) Allreduce(bytes uint64) *Builder { return b.Collective(Allreduce, 0, bytes) }

// Barrier appends a barrier on every rank.
func (b *Builder) Barrier() *Builder { return b.Collective(Barrier, 0, 0) }

// Grid3D describes a 3D cartesian decomposition of the rank space, used to
// generate nearest-neighbor (halo exchange) communication.
type Grid3D struct {
	Px, Py, Pz int
}

// NewGrid3D factors n ranks into a near-cubic 3D grid.
func NewGrid3D(n int) (Grid3D, error) {
	if n <= 0 {
		return Grid3D{}, fmt.Errorf("mpi: grid over %d ranks", n)
	}
	// Find the factorization px ≤ py ≤ pz minimizing pz-px with px·py·pz = n.
	best := Grid3D{1, 1, n}
	for px := 1; px*px*px <= n; px++ {
		if n%px != 0 {
			continue
		}
		rem := n / px
		for py := px; py*py <= rem; py++ {
			if rem%py != 0 {
				continue
			}
			pz := rem / py
			if pz-px < best.Pz-best.Px {
				best = Grid3D{px, py, pz}
			}
		}
	}
	return best, nil
}

// Size returns the total rank count of the grid.
func (g Grid3D) Size() int { return g.Px * g.Py * g.Pz }

// Coords returns the cartesian coordinates of rank r.
func (g Grid3D) Coords(r int) (x, y, z int) {
	x = r % g.Px
	y = (r / g.Px) % g.Py
	z = r / (g.Px * g.Py)
	return
}

// Rank returns the rank at the given coordinates.
func (g Grid3D) Rank(x, y, z int) int { return (z*g.Py+y)*g.Px + x }

// SurfaceFraction estimates the ratio of halo surface to subdomain volume
// for a cubic problem of total volume cells decomposed over the grid: the
// per-rank halo bytes scale as (cells/P)^(2/3).
func (g Grid3D) SurfaceFraction(totalCells float64) float64 {
	per := totalCells / float64(g.Size())
	if per <= 0 {
		return 0
	}
	return math.Pow(per, 2.0/3.0) / per
}

// HaloExchange3D appends a face-neighbor exchange over the grid: every rank
// sends faceBytes to each existing neighbor in ±x, ±y, ±z and receives the
// same. Tags encode the direction so message streams stay ordered.
func (b *Builder) HaloExchange3D(g Grid3D, faceBytes uint64, baseTag int) *Builder {
	if b.err != nil {
		return b
	}
	if g.Size() != len(b.prog.Ranks) {
		b.fail("mpi: grid %dx%dx%d covers %d ranks, program has %d",
			g.Px, g.Py, g.Pz, g.Size(), len(b.prog.Ranks))
		return b
	}
	type dir struct {
		dx, dy, dz int
	}
	dirs := []dir{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}}
	for r := 0; r < g.Size(); r++ {
		x, y, z := g.Coords(r)
		for di, d := range dirs {
			nx, ny, nz := x+d.dx, y+d.dy, z+d.dz
			if nx < 0 || nx >= g.Px || ny < 0 || ny >= g.Py || nz < 0 || nz >= g.Pz {
				continue
			}
			b.SendRecv(r, g.Rank(nx, ny, nz), baseTag+di, faceBytes)
		}
	}
	return b
}

// HaloExchange3DNonblocking appends the same face-neighbor exchange as
// HaloExchange3D but with the canonical non-blocking structure: every rank
// first posts all its Irecvs, then all its Isends, then Waits on every
// request — the overlap-friendly pattern production stencil codes use.
func (b *Builder) HaloExchange3DNonblocking(g Grid3D, faceBytes uint64, baseTag int) *Builder {
	if b.err != nil {
		return b
	}
	if g.Size() != len(b.prog.Ranks) {
		b.fail("mpi: grid %dx%dx%d covers %d ranks, program has %d",
			g.Px, g.Py, g.Pz, g.Size(), len(b.prog.Ranks))
		return b
	}
	type dir struct{ dx, dy, dz int }
	dirs := []dir{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}}
	for r := 0; r < g.Size(); r++ {
		x, y, z := g.Coords(r)
		req := 0
		var waits []Event
		// Post receives first (direction di of the neighbor's send is the
		// opposite direction index: di^1 flips the low bit of each pair).
		for di, d := range dirs {
			nx, ny, nz := x+d.dx, y+d.dy, z+d.dz
			if nx < 0 || nx >= g.Px || ny < 0 || ny >= g.Py || nz < 0 || nz >= g.Pz {
				continue
			}
			peer := g.Rank(nx, ny, nz)
			b.prog.Ranks[r] = append(b.prog.Ranks[r], Event{
				Kind: Irecv, Peer: peer, Tag: baseTag + (di ^ 1), Bytes: faceBytes, Request: req,
			})
			waits = append(waits, Event{Kind: Wait, Request: req})
			req++
		}
		// Then sends.
		for di, d := range dirs {
			nx, ny, nz := x+d.dx, y+d.dy, z+d.dz
			if nx < 0 || nx >= g.Px || ny < 0 || ny >= g.Py || nz < 0 || nz >= g.Pz {
				continue
			}
			peer := g.Rank(nx, ny, nz)
			b.prog.Ranks[r] = append(b.prog.Ranks[r], Event{
				Kind: Isend, Peer: peer, Tag: baseTag + di, Bytes: faceBytes, Request: req,
			})
			waits = append(waits, Event{Kind: Wait, Request: req})
			req++
		}
		b.prog.Ranks[r] = append(b.prog.Ranks[r], waits...)
	}
	return b
}

// Ring appends a ring exchange: each rank sends bytes to (r+1) mod n.
func (b *Builder) Ring(bytes uint64, tag int) *Builder {
	if b.err != nil {
		return b
	}
	n := len(b.prog.Ranks)
	if n < 2 {
		return b // a 1-rank ring is a no-op
	}
	for r := 0; r < n; r++ {
		b.SendRecv(r, (r+1)%n, tag, bytes)
	}
	return b
}

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	p := b.prog
	return &p, nil
}
