package mpi

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventKindString(t *testing.T) {
	if Compute.String() != "compute" || Allreduce.String() != "allreduce" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(EventKind(99).String(), "99") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestIsCollective(t *testing.T) {
	for _, k := range []EventKind{Barrier, Allreduce, Bcast, Alltoall} {
		if !k.IsCollective() {
			t.Errorf("%s should be collective", k)
		}
	}
	for _, k := range []EventKind{Compute, Send, Recv} {
		if k.IsCollective() {
			t.Errorf("%s should not be collective", k)
		}
	}
}

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name string
		e    Event
		ok   bool
	}{
		{"good compute", Event{Kind: Compute, BlockID: 1, Share: 0.5}, true},
		{"zero share", Event{Kind: Compute, BlockID: 1, Share: 0}, false},
		{"share above one", Event{Kind: Compute, Share: 1.5}, false},
		{"good send", Event{Kind: Send, Peer: 1, Bytes: 64}, true},
		{"send to self", Event{Kind: Send, Peer: 0, Bytes: 64}, false},
		{"send out of range", Event{Kind: Send, Peer: 8, Bytes: 64}, false},
		{"zero-byte send", Event{Kind: Send, Peer: 1}, false},
		{"good recv", Event{Kind: Recv, Peer: 2, Bytes: 8}, true},
		{"good barrier", Event{Kind: Barrier}, true},
		{"good allreduce", Event{Kind: Allreduce, Bytes: 8}, true},
		{"zero allreduce", Event{Kind: Allreduce}, false},
		{"bcast bad root", Event{Kind: Bcast, Peer: -1, Bytes: 8}, false},
		{"unknown kind", Event{Kind: EventKind(42)}, false},
	}
	for _, c := range cases {
		err := c.e.Validate(0, 4)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestBuilderSimpleProgram(t *testing.T) {
	p, err := NewBuilder("demo", 2).
		ComputeAll(1, 1.0).
		SendRecv(0, 1, 7, 1024).
		Allreduce(8).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.NumRanks() != 2 {
		t.Fatalf("NumRanks = %d", p.NumRanks())
	}
	if p.TotalMessages() != 1 || p.TotalBytes() != 1024 {
		t.Errorf("messages=%d bytes=%d", p.TotalMessages(), p.TotalBytes())
	}
	// Rank 0: compute, send, allreduce. Rank 1: compute, recv, allreduce.
	if p.Ranks[0][1].Kind != Send || p.Ranks[1][1].Kind != Recv {
		t.Errorf("unexpected event sequence")
	}
}

func TestBuilderErrorsStick(t *testing.T) {
	b := NewBuilder("demo", 2).Compute(5, 1, 1.0) // bad rank
	if b.Err() == nil {
		t.Fatal("bad rank accepted")
	}
	// Subsequent calls keep the first error.
	b.ComputeAll(1, 1.0).SendRecv(0, 1, 0, 8)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should fail")
	}
	if _, err := NewBuilder("demo", 0).Build(); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewBuilder("demo", 2).SendRecv(0, 0, 0, 8).Build(); err == nil {
		t.Error("self message accepted")
	}
	if _, err := NewBuilder("demo", 2).Collective(Send, 0, 8).Build(); err == nil {
		t.Error("non-collective kind accepted by Collective")
	}
}

func TestProgramValidateCatchesImbalance(t *testing.T) {
	// Hand-built program with a send that has no matching recv.
	p := &Program{App: "x", Ranks: [][]Event{
		{{Kind: Send, Peer: 1, Tag: 0, Bytes: 8}},
		{},
	}}
	if err := p.Validate(); err == nil {
		t.Error("unmatched send accepted")
	}
	// Mismatched collective counts.
	p = &Program{App: "x", Ranks: [][]Event{
		{{Kind: Barrier}},
		{},
	}}
	if err := p.Validate(); err == nil {
		t.Error("collective imbalance accepted")
	}
	// Recv with no send.
	p = &Program{App: "x", Ranks: [][]Event{
		{},
		{{Kind: Recv, Peer: 0, Tag: 3, Bytes: 8}},
	}}
	if err := p.Validate(); err == nil {
		t.Error("orphan recv accepted")
	}
	if err := (&Program{}).Validate(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestNewGrid3DFactorizations(t *testing.T) {
	cases := []struct {
		n          int
		px, py, pz int
	}{
		{1, 1, 1, 1},
		{8, 2, 2, 2},
		{64, 4, 4, 4},
		{96, 4, 4, 6},
		{1024, 8, 8, 16},
		{6144, 16, 16, 24},
		{8192, 16, 16, 32},
		{7, 1, 1, 7}, // prime: degenerate grid
	}
	for _, c := range cases {
		g, err := NewGrid3D(c.n)
		if err != nil {
			t.Fatalf("NewGrid3D(%d): %v", c.n, err)
		}
		if g.Size() != c.n {
			t.Errorf("grid for %d has size %d", c.n, g.Size())
		}
		if g.Px != c.px || g.Py != c.py || g.Pz != c.pz {
			t.Errorf("grid for %d = %dx%dx%d, want %dx%dx%d",
				c.n, g.Px, g.Py, g.Pz, c.px, c.py, c.pz)
		}
	}
	if _, err := NewGrid3D(0); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestGrid3DCoordsRankRoundTrip(t *testing.T) {
	g, _ := NewGrid3D(24)
	for r := 0; r < 24; r++ {
		x, y, z := g.Coords(r)
		if got := g.Rank(x, y, z); got != r {
			t.Errorf("round trip for rank %d gave %d", r, got)
		}
	}
}

func TestSurfaceFraction(t *testing.T) {
	g, _ := NewGrid3D(8)
	// 8^3 cells over 8 ranks: 64 cells each, surface fraction 64^(2/3)/64 = 16/64.
	got := g.SurfaceFraction(512)
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("SurfaceFraction = %g, want 0.25", got)
	}
	if g.SurfaceFraction(0) != 0 {
		t.Error("zero cells should give zero fraction")
	}
}

func TestHaloExchange3D(t *testing.T) {
	g, _ := NewGrid3D(8) // 2x2x2
	p, err := NewBuilder("halo", 8).HaloExchange3D(g, 4096, 100).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Every rank in a 2x2x2 grid has exactly 3 neighbors: 24 messages.
	if got := p.TotalMessages(); got != 24 {
		t.Errorf("TotalMessages = %d, want 24", got)
	}
	if got := p.TotalBytes(); got != 24*4096 {
		t.Errorf("TotalBytes = %d", got)
	}
}

func TestHaloExchange3DBoundaryRanksFewerNeighbors(t *testing.T) {
	g, _ := NewGrid3D(27) // 3x3x3
	p, err := NewBuilder("halo", 27).HaloExchange3D(g, 64, 0).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sums := Profile(p)
	corner := sums[g.Rank(0, 0, 0)]
	center := sums[g.Rank(1, 1, 1)]
	if corner.Messages != 3 {
		t.Errorf("corner sends %d messages, want 3", corner.Messages)
	}
	if center.Messages != 6 {
		t.Errorf("center sends %d messages, want 6", center.Messages)
	}
}

func TestHaloExchangeGridMismatch(t *testing.T) {
	g, _ := NewGrid3D(8)
	if _, err := NewBuilder("halo", 4).HaloExchange3D(g, 64, 0).Build(); err == nil {
		t.Error("grid/rank mismatch accepted")
	}
}

func TestRing(t *testing.T) {
	p, err := NewBuilder("ring", 4).Ring(256, 5).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.TotalMessages() != 4 {
		t.Errorf("messages = %d, want 4", p.TotalMessages())
	}
	// Single-rank ring: no messages, still valid.
	p, err = NewBuilder("ring", 1).Compute(0, 1, 1).Ring(256, 5).Build()
	if err != nil {
		t.Fatalf("1-rank Build: %v", err)
	}
	if p.TotalMessages() != 0 {
		t.Error("1-rank ring generated messages")
	}
}

func TestProfile(t *testing.T) {
	p, err := NewBuilder("demo", 3).
		Compute(0, 10, 0.5).
		Compute(0, 10, 0.5).
		Compute(1, 10, 1.0).
		Compute(2, 11, 1.0).
		SendRecv(0, 1, 0, 100).
		SendRecv(2, 1, 0, 50).
		Barrier().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sums := Profile(p)
	if sums[0].ComputeShare[10] != 1.0 {
		t.Errorf("rank 0 share = %g", sums[0].ComputeShare[10])
	}
	if sums[0].SendBytes != 100 || sums[1].RecvBytes != 150 {
		t.Errorf("volumes: send0=%d recv1=%d", sums[0].SendBytes, sums[1].RecvBytes)
	}
	if sums[1].Collectives != 1 {
		t.Errorf("collectives = %d", sums[1].Collectives)
	}
}

func TestDominantRank(t *testing.T) {
	p, err := NewBuilder("demo", 3).
		Compute(0, 1, 1.0).
		Compute(1, 1, 1.0).
		Compute(1, 2, 1.0). // rank 1 does extra work
		Compute(2, 1, 1.0).
		Barrier().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	weight := func(blockID uint64, share float64) float64 { return share }
	if got := DominantRank(p, weight); got != 1 {
		t.Errorf("DominantRank = %d, want 1", got)
	}
	// Tie: lowest rank wins.
	p2, _ := NewBuilder("demo", 2).ComputeAll(1, 1.0).Build()
	if got := DominantRank(p2, weight); got != 0 {
		t.Errorf("tie DominantRank = %d, want 0", got)
	}
}

// Property: programs built from random mixtures of builder patterns always
// validate (the builder maintains the structural invariants).
func TestBuilderAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := []int{1, 2, 4, 8, 12, 27}[r.Intn(6)]
		b := NewBuilder("p", n)
		g, err := NewGrid3D(n)
		if err != nil {
			return false
		}
		for step := 0; step < 1+r.Intn(6); step++ {
			switch r.Intn(4) {
			case 0:
				b.ComputeAll(uint64(r.Intn(5)+1), r.Float64()*0.9+0.1)
			case 1:
				b.HaloExchange3D(g, uint64(r.Intn(4096)+1), step*10)
			case 2:
				b.Allreduce(uint64(r.Intn(64) + 1))
			case 3:
				b.Ring(uint64(r.Intn(1024)+1), step*10+7)
			}
		}
		p, err := b.Build()
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
