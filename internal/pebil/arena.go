package pebil

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"tracex/internal/cache"
	"tracex/internal/machine"
)

// ErrArenaClosed reports a collection submitted after Close.
var ErrArenaClosed = errors.New("pebil: worker arena closed")

// scratch is the per-worker reusable state: the address slab shared by the
// warm and sample phases, and the cache simulator from the previous work
// unit, reused (after a Flush) whenever the next unit targets the same
// hierarchy. Reuse makes the steady-state allocation count of a collection
// zero once every worker has seen the target geometry.
type scratch struct {
	buf []uint64
	sim *cache.Simulator
	// simLevels/simPrefetch record the geometry sim was built for.
	simLevels   []cache.LevelConfig
	simPrefetch bool
	// rec is the worker's reuse-distance recorder, reused (after a Reset)
	// across reuse-collection work units.
	rec *cache.ReuseRecorder
}

// slab returns the worker's address buffer resized to n.
func (s *scratch) slab(n int) []uint64 {
	if cap(s.buf) < n {
		s.buf = make([]uint64, n)
	}
	return s.buf[:n]
}

// simulator returns a flushed simulator for the target hierarchy, reusing
// the worker's previous one when the geometry matches. A flushed simulator
// is indistinguishable from a fresh one (cache.Simulator.Flush resets
// contents, counters, tick and prefetcher state).
func (s *scratch) simulator(target machine.Config) (*cache.Simulator, error) {
	if s.sim != nil && s.simPrefetch == target.Prefetch && sameLevels(s.simLevels, target.Caches) {
		s.sim.Flush()
		return s.sim, nil
	}
	sim, err := cache.NewSimulatorOpts(target.Caches, cache.Options{NextLinePrefetch: target.Prefetch})
	if err != nil {
		return nil, err
	}
	s.sim = sim
	s.simLevels = append(s.simLevels[:0], target.Caches...)
	s.simPrefetch = target.Prefetch
	return sim, nil
}

// recorder returns a reset reuse-distance recorder with capacity for n
// references, reusing the worker's previous one when the line size matches.
func (s *scratch) recorder(lineSize, n int) (*cache.ReuseRecorder, error) {
	if s.rec != nil && s.rec.LineSize() == lineSize {
		s.rec.Reset(n)
		return s.rec, nil
	}
	rec, err := cache.NewReuseRecorder(lineSize, n)
	if err != nil {
		return nil, err
	}
	s.rec = rec
	return rec, nil
}

func sameLevels(a, b []cache.LevelConfig) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Arena is a reusable pool of collection workers. Each worker goroutine
// owns a scratch (address slab plus reusable simulator) for its lifetime,
// so concurrent collections share the pool without sharing mutable state.
// An Arena is safe for concurrent use; Close drains it.
type Arena struct {
	workers int
	jobs    chan func(*scratch)
	wg      sync.WaitGroup
	mu      sync.RWMutex
	closed  bool
}

// NewArena starts an arena of the given size; n ≤ 0 means one worker per
// CPU.
func NewArena(n int) *Arena {
	cfg := CollectorConfig{Workers: n}.withDefaults()
	a := &Arena{workers: cfg.Workers, jobs: make(chan func(*scratch))}
	a.wg.Add(a.workers)
	for i := 0; i < a.workers; i++ {
		go func() {
			defer a.wg.Done()
			var s scratch
			for job := range a.jobs {
				job(&s)
			}
		}()
	}
	return a
}

// Workers returns the pool size.
func (a *Arena) Workers() int { return a.workers }

// Close stops accepting work, waits for in-flight jobs to finish and
// releases the worker goroutines. It is idempotent.
func (a *Arena) Close() {
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		close(a.jobs)
	}
	a.mu.Unlock()
	a.wg.Wait()
}

// submit hands one job to the pool, failing fast when the arena is closed
// or ctx is cancelled before a worker frees up.
func (a *Arena) submit(ctx context.Context, job func(*scratch)) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return ErrArenaClosed
	}
	select {
	case a.jobs <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run executes n work units on the arena with at most concurrency of them
// in flight, calling unit(i, s) for every i in [0, n). Units are handed out
// through a shared index counter to long-lived runner jobs, so one worker
// processes many units back to back and its scratch amortizes across them.
// Results must be written into caller-owned slots indexed by unit, which
// keeps the reduction order-independent. The returned error prefers a real
// unit failure over the cancellations it may have triggered in siblings.
func (a *Arena) run(ctx context.Context, concurrency, n int, unit func(i int, s *scratch) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if concurrency > n {
		concurrency = n
	}
	if concurrency > a.workers {
		concurrency = a.workers
	}
	if concurrency < 1 {
		concurrency = 1
	}
	var next atomic.Int64
	errs := make([]error, n)
	var wg sync.WaitGroup
	runner := func(s *scratch) {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = unit(i, s)
		}
	}
	var submitErr error
	submitted := 0
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		if err := a.submit(ctx, runner); err != nil {
			wg.Done()
			submitErr = err
			break
		}
		submitted++
	}
	wg.Wait()
	if submitted == 0 {
		return submitErr
	}
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ctxErr = err
			continue
		}
		return err
	}
	if ctxErr != nil {
		return ctxErr
	}
	return submitErr
}
