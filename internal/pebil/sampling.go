package pebil

import (
	"fmt"
	"strconv"
	"strings"
)

// SamplingMode selects how the collector budgets simulated references per
// block. The zero value means "unset": the legacy SampleRefs/MaxWarmRefs
// fields (or their defaults) apply, exactly as before the SamplingPolicy
// redesign.
type SamplingMode string

const (
	// SamplingModeFixed simulates a fixed per-block budget: MaxWarmRefs
	// warm-up references (capped by the working set) followed by
	// SampleRefs measured references. This is the paper's original
	// collection discipline.
	SamplingModeFixed SamplingMode = "fixed"
	// SamplingModeAdaptive stratifies sampling per block: a warm-up that
	// stops when chunk hit rates stabilize, a pilot pass that estimates
	// per-block variance by batch means, and Neyman-style refinement
	// rounds until every block's relative standard error falls under
	// TargetRelErr. Near-identical blocks (k-means over pilot reuse
	// histograms) are refined only through a cluster representative. The
	// collected signature carries per-element measurement variances
	// (trace.SignatureUncertainty), which Predict's interval path
	// consumes.
	SamplingModeAdaptive SamplingMode = "adaptive"
)

// Default adaptive-policy tuning constants. Zero-valued adaptive fields
// take these at execution time.
const (
	// DefaultTargetRelErr is the per-block relative standard error target:
	// the batch-means SE of each level's cumulative hit rate, relative to
	// the level's miss rate (runtime sensitivity scales with misses), must
	// fall under it.
	DefaultTargetRelErr = 0.05
	// DefaultPilotRefs is the per-block pilot sample length the variance
	// estimate starts from.
	DefaultPilotRefs = 20_000
	// DefaultMinRefs is the smallest per-block measured sample an
	// adaptive collection settles for, converged or not.
	DefaultMinRefs = 20_000
	// DefaultMaxRefs caps the per-block measured sample of an adaptive
	// collection. It equals DefaultSampleRefs so an adaptive collection
	// never simulates more than the fixed default would.
	DefaultMaxRefs = DefaultSampleRefs
)

// SamplingPolicy is the typed replacement for the raw SampleRefs and
// MaxWarmRefs knobs on CollectorConfig: one value that says how the
// collector spends simulated references. It is a flat comparable struct
// (not an interface) because CollectorConfig participates in the engine's
// memoization keys; Mode selects which field group applies.
//
// The zero SamplingPolicy means "unset" and defers to the deprecated
// SampleRefs/MaxWarmRefs fields on CollectorConfig, which convert to a
// fixed policy — existing configurations keep their byte-identical store
// keys (pinned by test).
type SamplingPolicy struct {
	// Mode selects fixed or adaptive budgeting ("" = unset).
	Mode SamplingMode

	// SampleRefs and MaxWarmRefs apply in fixed mode (0 = the
	// DefaultSampleRefs / DefaultMaxWarmRefs defaults). They must be zero
	// in adaptive mode.
	SampleRefs  int
	MaxWarmRefs int

	// TargetRelErr is the adaptive convergence target: the batch-means
	// standard error of each level's cumulative hit rate, relative to the
	// level's miss rate, must fall under it (0 = DefaultTargetRelErr).
	TargetRelErr float64
	// PilotRefs is the per-block pilot sample length (0 = DefaultPilotRefs).
	PilotRefs int
	// MinRefs and MaxRefs bound the per-block measured sample after
	// refinement (0 = DefaultMinRefs / DefaultMaxRefs).
	MinRefs int
	MaxRefs int
	// ClusterBlocks enables k-means clustering over pilot reuse
	// histograms: blocks whose pilot behavior matches a cluster
	// representative skip their own refinement and copy the
	// representative's measured rates with inflated variance.
	// AdaptiveSampling and ParseSamplingPolicy enable it by default.
	ClusterBlocks bool
}

// FixedSampling returns a fixed policy with the given per-block sample
// length and warm-up cap (≤ 0 selects the respective default).
func FixedSampling(sampleRefs, maxWarmRefs int) SamplingPolicy {
	return SamplingPolicy{Mode: SamplingModeFixed, SampleRefs: sampleRefs, MaxWarmRefs: maxWarmRefs}
}

// AdaptiveSampling returns an adaptive policy targeting the given relative
// standard error (≤ 0 selects DefaultTargetRelErr), with block clustering
// enabled and every other knob at its default.
func AdaptiveSampling(targetRelErr float64) SamplingPolicy {
	if targetRelErr <= 0 {
		targetRelErr = DefaultTargetRelErr
	}
	return SamplingPolicy{Mode: SamplingModeAdaptive, TargetRelErr: targetRelErr, ClusterBlocks: true}
}

// IsAdaptive reports whether the policy selects adaptive budgeting.
func (p SamplingPolicy) IsAdaptive() bool { return p.Mode == SamplingModeAdaptive }

// Validate checks the policy's internal consistency. Zero values are valid
// (they select defaults); fields of the other mode's group must be zero.
func (p SamplingPolicy) Validate() error {
	switch p.Mode {
	case "":
		if p != (SamplingPolicy{}) {
			return fmt.Errorf("pebil: sampling policy has fields set but no Mode")
		}
		return nil
	case SamplingModeFixed:
		if p.TargetRelErr != 0 || p.PilotRefs != 0 || p.MinRefs != 0 || p.MaxRefs != 0 || p.ClusterBlocks {
			return fmt.Errorf("pebil: fixed sampling policy sets adaptive fields")
		}
		if p.SampleRefs < 0 {
			return fmt.Errorf("pebil: negative SampleRefs %d", p.SampleRefs)
		}
		if p.MaxWarmRefs < 0 {
			return fmt.Errorf("pebil: negative MaxWarmRefs %d", p.MaxWarmRefs)
		}
		return nil
	case SamplingModeAdaptive:
		if p.SampleRefs != 0 || p.MaxWarmRefs != 0 {
			return fmt.Errorf("pebil: adaptive sampling policy sets fixed fields (SampleRefs/MaxWarmRefs)")
		}
		if p.TargetRelErr < 0 || p.TargetRelErr > 1 {
			return fmt.Errorf("pebil: TargetRelErr %g outside (0, 1]", p.TargetRelErr)
		}
		if p.PilotRefs < 0 || p.MinRefs < 0 || p.MaxRefs < 0 {
			return fmt.Errorf("pebil: negative adaptive sampling bounds (pilot=%d min=%d max=%d)",
				p.PilotRefs, p.MinRefs, p.MaxRefs)
		}
		n := p.normalizedAdaptive()
		if n.MinRefs > n.MaxRefs {
			return fmt.Errorf("pebil: adaptive MinRefs %d exceeds MaxRefs %d", n.MinRefs, n.MaxRefs)
		}
		if n.PilotRefs > n.MaxRefs {
			return fmt.Errorf("pebil: adaptive PilotRefs %d exceeds MaxRefs %d", n.PilotRefs, n.MaxRefs)
		}
		return nil
	default:
		return fmt.Errorf("pebil: unknown sampling mode %q (want %q or %q)",
			p.Mode, SamplingModeFixed, SamplingModeAdaptive)
	}
}

// normalizedAdaptive fills adaptive defaults. Mode and ClusterBlocks are
// kept as given.
func (p SamplingPolicy) normalizedAdaptive() SamplingPolicy {
	if p.TargetRelErr == 0 {
		p.TargetRelErr = DefaultTargetRelErr
	}
	if p.PilotRefs == 0 {
		p.PilotRefs = DefaultPilotRefs
	}
	if p.MinRefs == 0 {
		p.MinRefs = DefaultMinRefs
	}
	if p.MaxRefs == 0 {
		p.MaxRefs = DefaultMaxRefs
	}
	return p
}

// Normalized returns the policy with defaults filled: fixed policies gain
// the default sample length and warm cap, adaptive policies the default
// pilot/min/max bounds and error target. Two policies with equal
// Normalized forms produce identical collections.
func (p SamplingPolicy) Normalized() SamplingPolicy {
	switch p.Mode {
	case SamplingModeFixed:
		if p.SampleRefs <= 0 {
			p.SampleRefs = DefaultSampleRefs
		}
		if p.MaxWarmRefs <= 0 {
			p.MaxWarmRefs = DefaultMaxWarmRefs
		}
		return p
	case SamplingModeAdaptive:
		return p.normalizedAdaptive()
	default:
		return p
	}
}

// String renders the normalized policy in the canonical parseable form,
// e.g. "fixed:400000,warm=2000000" or
// "adaptive:0.05,pilot=20000,min=20000,max=400000,cluster=on". It is the
// wire echo of the policy a collection actually ran with;
// ParseSamplingPolicy(p.String()) round-trips. The zero policy renders "".
func (p SamplingPolicy) String() string {
	switch p.Mode {
	case SamplingModeFixed:
		n := p.Normalized()
		return fmt.Sprintf("fixed:%d,warm=%d", n.SampleRefs, n.MaxWarmRefs)
	case SamplingModeAdaptive:
		n := p.Normalized()
		cluster := "off"
		if n.ClusterBlocks {
			cluster = "on"
		}
		return fmt.Sprintf("adaptive:%s,pilot=%d,min=%d,max=%d,cluster=%s",
			strconv.FormatFloat(n.TargetRelErr, 'g', -1, 64), n.PilotRefs, n.MinRefs, n.MaxRefs, cluster)
	default:
		return ""
	}
}

// ParseSamplingPolicy parses the user-facing policy syntax shared by the
// -sampling CLI flags and the "sampling" wire field:
//
//	fixed[:SAMPLE][,warm=WARM]
//	adaptive[:RELERR][,pilot=N][,min=N][,max=N][,cluster=on|off]
//
// e.g. "fixed:400000" or "adaptive:0.05". Adaptive clustering defaults to
// on. The empty string parses to the zero (unset) policy, which defers to
// the caller's default.
func ParseSamplingPolicy(s string) (SamplingPolicy, error) {
	if s == "" {
		return SamplingPolicy{}, nil
	}
	head, opts, hasOpts := strings.Cut(s, ",")
	mode, arg, hasArg := strings.Cut(head, ":")
	var p SamplingPolicy
	switch SamplingMode(mode) {
	case SamplingModeFixed:
		p.Mode = SamplingModeFixed
		if hasArg {
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 {
				return SamplingPolicy{}, fmt.Errorf("pebil: sampling %q: bad sample length %q", s, arg)
			}
			p.SampleRefs = n
		}
	case SamplingModeAdaptive:
		p.Mode = SamplingModeAdaptive
		p.ClusterBlocks = true
		if hasArg {
			r, err := strconv.ParseFloat(arg, 64)
			if err != nil || r <= 0 || r > 1 {
				return SamplingPolicy{}, fmt.Errorf("pebil: sampling %q: bad relative error target %q", s, arg)
			}
			p.TargetRelErr = r
		}
	default:
		return SamplingPolicy{}, fmt.Errorf("pebil: sampling %q: unknown mode %q (want %q or %q)",
			s, mode, SamplingModeFixed, SamplingModeAdaptive)
	}
	if !hasOpts {
		return p, nil
	}
	for _, opt := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return SamplingPolicy{}, fmt.Errorf("pebil: sampling %q: option %q is not key=value", s, opt)
		}
		atoi := func() (int, error) {
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return 0, fmt.Errorf("pebil: sampling %q: bad %s value %q", s, key, val)
			}
			return n, nil
		}
		var err error
		switch {
		case key == "warm" && p.Mode == SamplingModeFixed:
			p.MaxWarmRefs, err = atoi()
		case key == "pilot" && p.Mode == SamplingModeAdaptive:
			p.PilotRefs, err = atoi()
		case key == "min" && p.Mode == SamplingModeAdaptive:
			p.MinRefs, err = atoi()
		case key == "max" && p.Mode == SamplingModeAdaptive:
			p.MaxRefs, err = atoi()
		case key == "cluster" && p.Mode == SamplingModeAdaptive:
			switch val {
			case "on":
				p.ClusterBlocks = true
			case "off":
				p.ClusterBlocks = false
			default:
				err = fmt.Errorf("pebil: sampling %q: cluster must be on or off, got %q", s, val)
			}
		default:
			return SamplingPolicy{}, fmt.Errorf("pebil: sampling %q: unknown option %q for %s mode", s, key, p.Mode)
		}
		if err != nil {
			return SamplingPolicy{}, err
		}
	}
	if err := p.Validate(); err != nil {
		return SamplingPolicy{}, err
	}
	return p, nil
}

// Budget returns the warm-up and measured reference counts a fixed-policy
// collection simulates for one block: the warm-up touches the working set
// once (capped at the warm limit), the sample is the configured length
// capped at the block's full reference count, never below one. It is the
// single definition of the fixed budget, shared by the exact collector,
// the reuse-distance recorder and the golden-test oracle.
func (c CollectorConfig) Budget(refs, workingSetBytes float64) (warm, sample int) {
	cfg := c.withDefaults()
	warm = int(workingSetBytes / 8)
	if warm > cfg.MaxWarmRefs {
		warm = cfg.MaxWarmRefs
	}
	sample = cfg.SampleRefs
	if full := int(refs); full < sample {
		sample = full // tiny blocks are simulated exactly
	}
	if sample < 1 {
		sample = 1
	}
	return warm, sample
}
