package pebil

import (
	"context"

	"math"
	"testing"

	"tracex/internal/machine"
	"tracex/internal/synthapp"
)

func TestSharedHierarchyCollection(t *testing.T) {
	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	opt := CollectorConfig{SampleRefs: 120_000, MaxWarmRefs: 1_200_000, SharedHierarchy: true}
	cs, err := collectCounters(context.Background(), app, 1024, bw, opt)
	if err != nil {
		t.Fatalf("CollectCounters(shared): %v", err)
	}
	if len(cs) != len(app.Blocks()) {
		t.Fatalf("got %d blocks", len(cs))
	}
	var totalSample uint64
	for _, c := range cs {
		totalSample += c.Counters.Refs
		// Accounting balances per block.
		var hits uint64
		for _, h := range c.Counters.LevelHits {
			hits += h
		}
		if hits+c.Counters.MemAccesses != c.Counters.Refs {
			t.Errorf("block %s accounting unbalanced", c.Spec.Func)
		}
	}
	// Samples distribute by weight: the dominant block receives the most.
	var maxRefs, maxSample uint64
	for _, c := range cs {
		if uint64(c.Refs) > maxRefs {
			maxRefs = uint64(c.Refs)
			maxSample = c.Counters.Refs
		}
	}
	for _, c := range cs {
		if c.Counters.Refs > maxSample {
			t.Errorf("block %s out-sampled the dominant block", c.Spec.Func)
		}
	}
	_ = totalSample
}

func TestSharedVsPrivateContention(t *testing.T) {
	// Shared-hierarchy rates must be at most the private steady-state
	// rates for cache-resident blocks (contention can only evict), and the
	// difference must be modest for this workload (the resident tiles are
	// small next to the hierarchy).
	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	base := CollectorConfig{SampleRefs: 120_000, MaxWarmRefs: 1_200_000}
	shared := base
	shared.SharedHierarchy = true
	priv, err := collectCounters(context.Background(), app, 1024, bw, base)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := collectCounters(context.Background(), app, 1024, bw, shared)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := range priv {
		total += priv[i].Refs
	}
	for i := range priv {
		pr := priv[i].Counters.CumulativeHitRates()
		sr := sh[i].Counters.CumulativeHitRates()
		// L1 rates: shared ≤ private + small sampling slack.
		if sr[0] > pr[0]+0.03 {
			t.Errorf("%s: shared L1 %.3f above private %.3f", priv[i].Spec.Func, sr[0], pr[0])
		}
		// Influential blocks keep their residency (their tiles are revisited
		// often enough to survive); tiny blocks legitimately lose theirs —
		// that is exactly the contention effect shared collection models.
		if priv[i].Refs/total > 0.01 && math.Abs(sr[0]-pr[0]) > 0.30 {
			t.Errorf("%s: shared L1 %.3f far from private %.3f", priv[i].Spec.Func, sr[0], pr[0])
		}
	}
}

func TestSharedHierarchySignature(t *testing.T) {
	app := synthapp.Stencil3D()
	bw := machine.BlueWatersP1()
	opt := CollectorConfig{SampleRefs: 60_000, MaxWarmRefs: 300_000, SharedHierarchy: true}
	sig, err := collect(context.Background(), app, 64, bw, nil, opt)
	if err != nil {
		t.Fatalf("Collect(shared): %v", err)
	}
	if err := sig.Validate(); err != nil {
		t.Fatalf("shared signature invalid: %v", err)
	}
}
