// Package pebil emulates the role of the PEBIL binary-instrumentation
// platform in the paper's pipeline (Figure 2): it "instruments" a synthetic
// application, streams each basic block's memory addresses through a cache
// simulator mimicking the target system, and produces the summary trace
// files (application signature) that the extrapolation methodology and the
// PSiNS convolution consume.
//
// Where real PEBIL observes an executable's address stream (terabytes per
// hour, processed on the fly), this package draws a bounded, pattern-
// faithful sample from each block's deterministic address generator and
// scales the counts: hit rates converge quickly for the pattern families
// the proxies use, and the full reference counts come from the workload
// laws rather than from the sample length.
//
// Collection is parallel and batch-oriented: a Collector shards the
// per-block simulations across a reusable worker Arena, and each worker
// streams addresses in slabs (CollectorConfig.BatchSize) from the
// generators into cache.Simulator.AccessBatch through a per-worker
// reusable buffer, so the steady state allocates nothing and pays one
// interface dispatch per slab rather than per reference.
package pebil

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tracex/internal/addrgen"
	"tracex/internal/cache"
	"tracex/internal/machine"
	"tracex/internal/obs"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

// ErrEmptyWorkload reports a workload with no references at all.
var ErrEmptyWorkload = errors.New("pebil: workload has no references")

// ctxCheckMask throttles cancellation polling in the sequential
// shared-hierarchy loop: the context is consulted every ctxCheckMask+1
// references. The batched path polls once per slab instead.
const ctxCheckMask = 1<<16 - 1

// BlockCounters couples one block's workload with its sampled cache
// accounting on the target system, for the application's dominant rank.
type BlockCounters struct {
	// Spec is the block's static description.
	Spec synthapp.BlockSpec
	// Refs is the dominant rank's full memory reference count.
	Refs float64
	// WorkingSetBytes is the block's data footprint.
	WorkingSetBytes float64
	// Counters is the sampled cache accounting (Counters.Refs is the
	// sample size, not the full count).
	Counters cache.Counters
}

// Collector runs signature collections on a reusable worker arena. It is
// safe for concurrent use: workers keep per-goroutine scratch (address
// slabs, reusable simulators) and concurrent collections share the pool.
// Close the Collector when done to release the workers.
type Collector struct {
	arena *Arena
	base  CollectorConfig
}

// NewCollector builds a Collector whose arena is sized by WithWorkers
// (default: one worker per CPU). The remaining options become the
// collector's base configuration, used whenever a collection is invoked
// with a zero CollectorConfig.
func NewCollector(opts ...CollectorOption) (*Collector, error) {
	cfg, err := NewCollectorConfig(opts...)
	if err != nil {
		return nil, err
	}
	return &Collector{arena: NewArena(cfg.Workers), base: cfg}, nil
}

// Config returns the collector's base configuration as given (without
// defaults filled).
func (c *Collector) Config() CollectorConfig { return c.base }

// Workers returns the size of the collector's arena.
func (c *Collector) Workers() int { return c.arena.Workers() }

// Close drains the arena: it waits for in-flight work units and releases
// the worker goroutines. Collections submitted after Close fail with
// ErrArenaClosed. Close is idempotent.
func (c *Collector) Close() { c.arena.Close() }

// defaultCollector is the process-wide pool used by callers without an
// Engine (tools, experiments, calibration).
var defaultCollector struct {
	once sync.Once
	c    *Collector
}

// DefaultCollector returns a lazily-created process-wide Collector with
// default configuration. It is never closed.
func DefaultCollector() *Collector {
	defaultCollector.once.Do(func() {
		defaultCollector.c, _ = NewCollector()
	})
	return defaultCollector.c
}

// resolve merges a per-call configuration with the collector base and
// validates it: a zero cfg selects the collector's base configuration.
func (c *Collector) resolve(cfg CollectorConfig) (CollectorConfig, error) {
	if cfg == (CollectorConfig{}) {
		cfg = c.base
	}
	if err := cfg.Validate(); err != nil {
		return CollectorConfig{}, err
	}
	return cfg.withDefaults(), nil
}

// Counters simulates the dominant rank's workload of app at core count p
// against the target machine's cache structure, returning per-block sampled
// counters. Counters always runs the exact simulator — it is the fidelity
// oracle the analytical model is validated against — regardless of
// cfg.Model. Each block is one work unit on the arena: a worker warms a
// (reused) simulator to steady state and then takes a counted sample,
// streaming addresses in batches. With an adaptive sampling policy the
// warm-up, pilot and refinement passes of adaptiveCollect replace the
// fixed budget (the measurement uncertainty is only surfaced through
// Collect). Results land in slots indexed by block, so any worker
// interleaving yields bit-identical output. Cancelling ctx stops the
// simulations promptly and returns ctx.Err().
func (c *Collector) Counters(ctx context.Context, app *synthapp.App, p int, target machine.Config, cfg CollectorConfig) ([]BlockCounters, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	cfg, err := c.resolve(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Sampling.IsAdaptive() {
		out, _, err := c.adaptiveCollect(ctx, app, p, target, cfg)
		return out, err
	}
	sp := obs.From(ctx).StartSpan("pebil.collect", fmt.Sprintf("%s@%d", app.Name(), p))
	defer sp.End()
	works, err := app.Work(p)
	if err != nil {
		return nil, err
	}
	if cfg.SharedHierarchy {
		obs.From(ctx).Gauge("pebil.workers").Set(1)
		return collectShared(ctx, works, target, cfg)
	}
	concurrency := cfg.Workers
	if concurrency > c.arena.Workers() {
		concurrency = c.arena.Workers()
	}
	if concurrency > len(works) {
		concurrency = len(works)
	}
	if concurrency < 1 {
		concurrency = 1
	}
	obs.From(ctx).Gauge("pebil.workers").Set(float64(concurrency))
	out := make([]BlockCounters, len(works))
	err = c.arena.run(ctx, concurrency, len(works), func(i int, s *scratch) error {
		bc, err := simulateBlock(ctx, &works[i], target, cfg, s)
		if err != nil {
			return err
		}
		out[i] = bc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// streamRefs drives n references from gen through sim in slabs of len(buf),
// checking for cancellation once per slab. It returns the number of slab
// flushes so callers can batch the pebil.batch_flushes metric update.
func streamRefs(ctx context.Context, sim *cache.Simulator, gen addrgen.Generator, buf []uint64, n int) (uint64, error) {
	var flushes uint64
	for n > 0 {
		if err := ctx.Err(); err != nil {
			return flushes, err
		}
		k := len(buf)
		if k > n {
			k = n
		}
		addrgen.FillBatch(gen, buf[:k])
		sim.AccessBatch(buf[:k])
		n -= k
		flushes++
	}
	return flushes, nil
}

// simulateBlock runs one block's sampled stream through the worker's
// simulator. Metric updates are batched — one Add per phase, never one per
// streamed address — so instrumentation stays off the per-reference path.
func simulateBlock(ctx context.Context, w *synthapp.Work, target machine.Config, cfg CollectorConfig, s *scratch) (BlockCounters, error) {
	m := obs.From(ctx)
	sim, err := s.simulator(target)
	if err != nil {
		return BlockCounters{}, err
	}
	buf := s.slab(cfg.BatchSize)
	// Warm-up: touch the working set once (capped). For working sets far
	// beyond the hierarchy the cap is harmless — steady state is
	// miss-dominated and reached as soon as the caches fill.
	warm, sample := cfg.Budget(w.Refs, w.WorkingSetBytes)
	warmStart := time.Now()
	flushes, err := streamRefs(ctx, sim, w.Gen, buf, warm)
	if err != nil {
		return BlockCounters{}, err
	}
	m.Counter("pebil.warm_refs").Add(uint64(warm))
	m.Histogram("pebil.block_warm_seconds").Observe(time.Since(warmStart).Seconds())
	sim.ResetCounters()
	sampleStart := time.Now()
	sampleFlushes, err := streamRefs(ctx, sim, w.Gen, buf, sample)
	flushes += sampleFlushes
	if err != nil {
		return BlockCounters{}, err
	}
	m.Counter("pebil.sample_refs").Add(uint64(sample))
	m.Counter("pebil.batch_flushes").Add(flushes)
	m.Histogram("pebil.block_sample_seconds").Observe(time.Since(sampleStart).Seconds())
	m.Counter("pebil.blocks").Inc()
	return BlockCounters{
		Spec:            w.Spec,
		Refs:            w.Refs,
		WorkingSetBytes: w.WorkingSetBytes,
		Counters:        sim.Counters(),
	}, nil
}

// featureVector converts sampled counters into the trace feature vector for
// a rank with the given load factor.
func featureVector(bc *BlockCounters, loadFactor float64) trace.FeatureVector {
	memOps := bc.Refs * loadFactor
	fpOps := memOps * bc.Spec.FPPerRef
	pfPerRef := 0.0
	if bc.Counters.Refs > 0 {
		pfPerRef = float64(bc.Counters.PrefetchFills) / float64(bc.Counters.Refs)
	}
	return trace.FeatureVector{
		FPOps:           fpOps,
		FPAdd:           fpOps * bc.Spec.AddFrac,
		FPMul:           fpOps * bc.Spec.MulFrac,
		FPDivSqrt:       fpOps * bc.Spec.DivFrac,
		MemOps:          memOps,
		Loads:           memOps * bc.Spec.LoadFrac,
		Stores:          memOps * (1 - bc.Spec.LoadFrac),
		BytesPerRef:     bc.Spec.BytesPerRef,
		HitRates:        bc.Counters.CumulativeHitRates(),
		WorkingSetBytes: bc.WorkingSetBytes,
		ILP:             bc.Spec.ILP,
		PrefetchPerRef:  pfPerRef,
	}
}

// Collect produces the application signature of app at core count p against
// the target machine: one trace file per requested rank. A nil ranks slice
// collects the paper's default — one representative rank per load class,
// always including the dominant rank 0. Per-rank trace assembly is sharded
// across the arena as well; each rank's trace is an affine scaling of the
// dominant rank's block counters, so the (rank, block) unit grid reduces to
// block simulation units plus cheap per-rank assembly units. Cancelling ctx
// stops the underlying simulations promptly and returns ctx.Err().
//
// With cfg.Model == ModelAnalytical the hit rates come from a collected
// reuse-distance signature through the analytical cache model instead of
// per-geometry simulation (see CollectReuse and SignatureFromReuse).
//
// With an adaptive sampling policy (SamplingModeAdaptive) the returned
// signature additionally carries trace.SignatureUncertainty: per-block
// measurement variances of the sampled elements (hit rates and prefetch
// fills per reference), which Predict's interval machinery consumes.
func (c *Collector) Collect(ctx context.Context, app *synthapp.App, p int, target machine.Config, ranks []int, cfg CollectorConfig) (*trace.Signature, error) {
	rcfg, err := c.resolve(cfg)
	if err != nil {
		return nil, err
	}
	if rcfg.Model == ModelAnalytical {
		rs, err := c.CollectReuse(ctx, app, p, cfg)
		if err != nil {
			return nil, err
		}
		return SignatureFromReuse(rs, app, target, ranks, cache.Analytical{})
	}
	var counters []BlockCounters
	var unc *trace.SignatureUncertainty
	if rcfg.Sampling.IsAdaptive() {
		if err := target.Validate(); err != nil {
			return nil, err
		}
		counters, unc, err = c.adaptiveCollect(ctx, app, p, target, rcfg)
	} else {
		counters, err = c.Counters(ctx, app, p, target, cfg)
	}
	if err != nil {
		return nil, err
	}
	if ranks == nil {
		for r := 0; r < app.NumClasses() && r < p; r++ {
			ranks = append(ranks, r) // ClassOf is round-robin: rank r is class r
		}
	}
	seen := map[int]bool{}
	for _, r := range ranks {
		if r < 0 || r >= p {
			return nil, fmt.Errorf("pebil: %w: rank %d of %d cores", trace.ErrRankOutOfRange, r, p)
		}
		if seen[r] {
			return nil, fmt.Errorf("pebil: duplicate rank %d requested", r)
		}
		seen[r] = true
	}
	traces := make([]trace.Trace, len(ranks))
	err = c.arena.run(ctx, rcfg.Workers, len(ranks), func(i int, _ *scratch) error {
		r := ranks[i]
		tr := trace.Trace{
			App:       app.Name(),
			CoreCount: p,
			Rank:      r,
			Machine:   target.Name,
			Levels:    len(target.Caches),
		}
		lf := app.LoadFactor(r)
		tr.Blocks = make([]trace.Block, 0, len(counters))
		for j := range counters {
			bc := &counters[j]
			tr.Blocks = append(tr.Blocks, trace.Block{
				ID:   bc.Spec.ID,
				Func: bc.Spec.Func,
				File: bc.Spec.File,
				Line: bc.Spec.Line,
				FV:   featureVector(bc, lf),
			})
		}
		tr.SortBlocks()
		traces[i] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	sig := &trace.Signature{App: app.Name(), CoreCount: p, Machine: target.Name, Traces: traces, Uncertainty: unc}
	if err := sig.Validate(); err != nil {
		return nil, fmt.Errorf("pebil: produced invalid signature: %w", err)
	}
	return sig, nil
}
