// Package pebil emulates the role of the PEBIL binary-instrumentation
// platform in the paper's pipeline (Figure 2): it "instruments" a synthetic
// application, streams each basic block's memory addresses through a cache
// simulator mimicking the target system, and produces the summary trace
// files (application signature) that the extrapolation methodology and the
// PSiNS convolution consume.
//
// Where real PEBIL observes an executable's address stream (terabytes per
// hour, processed on the fly), this package draws a bounded, pattern-
// faithful sample from each block's deterministic address generator and
// scales the counts: hit rates converge quickly for the pattern families
// the proxies use, and the full reference counts come from the workload
// laws rather than from the sample length.
package pebil

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"tracex/internal/cache"
	"tracex/internal/machine"
	"tracex/internal/obs"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

// Options tunes the signature collection.
type Options struct {
	// SampleRefs is the number of references simulated per block
	// (default 400 000).
	SampleRefs int
	// MaxWarmRefs caps the cache warm-up stream per block
	// (default 2 000 000; random patterns over multi-megabyte regions
	// need a long warm-up before the last-level cache reaches steady
	// state).
	MaxWarmRefs int
	// Parallelism bounds concurrent per-block simulations; ≤0 means one
	// worker per CPU.
	Parallelism int
	// SharedHierarchy interleaves every block's address stream through one
	// cache simulator (the paper's Figure 2 processes the task's single
	// address stream on the fly), so blocks contend for cache capacity.
	// The default simulates each block against a private hierarchy, which
	// measures steady-state per-kernel rates. Shared collection is
	// sequential (one simulator).
	SharedHierarchy bool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.SampleRefs <= 0 {
		o.SampleRefs = 400_000
	}
	if o.MaxWarmRefs <= 0 {
		o.MaxWarmRefs = 2_000_000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Normalized returns the options with defaults filled and execution-only
// knobs cleared: Parallelism schedules the same simulations across more or
// fewer workers without changing any result, so it is zeroed. Two option
// values with equal Normalized forms produce identical signatures, which
// makes the normalized value a safe memoization key component.
func (o Options) Normalized() Options {
	o = o.withDefaults()
	o.Parallelism = 0
	return o
}

// ErrEmptyWorkload reports a workload with no references at all.
var ErrEmptyWorkload = errors.New("pebil: workload has no references")

// ctxCheckMask throttles cancellation polling in the simulation loops: the
// context is consulted every ctxCheckMask+1 references, often enough to
// stop within a fraction of a millisecond without measurable overhead.
const ctxCheckMask = 1<<16 - 1

// BlockCounters couples one block's workload with its sampled cache
// accounting on the target system, for the application's dominant rank.
type BlockCounters struct {
	// Spec is the block's static description.
	Spec synthapp.BlockSpec
	// Refs is the dominant rank's full memory reference count.
	Refs float64
	// WorkingSetBytes is the block's data footprint.
	WorkingSetBytes float64
	// Counters is the sampled cache accounting (Counters.Refs is the
	// sample size, not the full count).
	Counters cache.Counters
}

// CollectCounters simulates the dominant rank's workload of app at core
// count p against the target machine's cache structure, returning per-block
// sampled counters. Each block runs on a fresh simulator (steady-state
// warm-up, then a counted sample), and blocks are simulated concurrently.
// Cancelling ctx stops the simulations promptly and returns ctx.Err().
func CollectCounters(ctx context.Context, app *synthapp.App, p int, target machine.Config, opt Options) ([]BlockCounters, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	sp := obs.From(ctx).StartSpan("pebil.collect", fmt.Sprintf("%s@%d", app.Name(), p))
	defer sp.End()
	works, err := app.Work(p)
	if err != nil {
		return nil, err
	}
	if opt.SharedHierarchy {
		return collectShared(ctx, works, target, opt)
	}
	out := make([]BlockCounters, len(works))
	errs := make([]error, len(works))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Parallelism)
	for i := range works {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if errs[i] = ctx.Err(); errs[i] != nil {
				return // cancelled while queued behind other blocks
			}
			out[i], errs[i] = simulateBlock(ctx, &works[i], target, opt)
		}(i)
	}
	wg.Wait()
	// Prefer a real simulation failure over the cancellations it may have
	// triggered in sibling blocks, falling back to the context error.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ctxErr = err
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// simulateBlock runs one block's sampled stream through a fresh simulator.
// Metric updates are batched — one Add per phase, never one per streamed
// address — so instrumentation stays off the per-reference path.
func simulateBlock(ctx context.Context, w *synthapp.Work, target machine.Config, opt Options) (BlockCounters, error) {
	m := obs.From(ctx)
	sim, err := cache.NewSimulatorOpts(target.Caches, cache.Options{NextLinePrefetch: target.Prefetch})
	if err != nil {
		return BlockCounters{}, err
	}
	// Warm-up: touch the working set once (capped). For working sets far
	// beyond the hierarchy the cap is harmless — steady state is
	// miss-dominated and reached as soon as the caches fill.
	warm := int(w.WorkingSetBytes / 8)
	if warm > opt.MaxWarmRefs {
		warm = opt.MaxWarmRefs
	}
	warmStart := time.Now()
	for i := 0; i < warm; i++ {
		if i&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return BlockCounters{}, err
			}
		}
		sim.Access(w.Gen.Next())
	}
	m.Counter("pebil.warm_refs").Add(uint64(warm))
	m.Histogram("pebil.block_warm_seconds").Observe(time.Since(warmStart).Seconds())
	sim.ResetCounters()
	sample := opt.SampleRefs
	if full := int(w.Refs); full < sample {
		sample = full // tiny blocks are simulated exactly
	}
	if sample < 1 {
		sample = 1
	}
	sampleStart := time.Now()
	for i := 0; i < sample; i++ {
		if i&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return BlockCounters{}, err
			}
		}
		sim.Access(w.Gen.Next())
	}
	m.Counter("pebil.sample_refs").Add(uint64(sample))
	m.Histogram("pebil.block_sample_seconds").Observe(time.Since(sampleStart).Seconds())
	m.Counter("pebil.blocks").Inc()
	return BlockCounters{
		Spec:            w.Spec,
		Refs:            w.Refs,
		WorkingSetBytes: w.WorkingSetBytes,
		Counters:        sim.Counters(),
	}, nil
}

// featureVector converts sampled counters into the trace feature vector for
// a rank with the given load factor.
func featureVector(bc *BlockCounters, loadFactor float64) trace.FeatureVector {
	memOps := bc.Refs * loadFactor
	fpOps := memOps * bc.Spec.FPPerRef
	pfPerRef := 0.0
	if bc.Counters.Refs > 0 {
		pfPerRef = float64(bc.Counters.PrefetchFills) / float64(bc.Counters.Refs)
	}
	return trace.FeatureVector{
		FPOps:           fpOps,
		FPAdd:           fpOps * bc.Spec.AddFrac,
		FPMul:           fpOps * bc.Spec.MulFrac,
		FPDivSqrt:       fpOps * bc.Spec.DivFrac,
		MemOps:          memOps,
		Loads:           memOps * bc.Spec.LoadFrac,
		Stores:          memOps * (1 - bc.Spec.LoadFrac),
		BytesPerRef:     bc.Spec.BytesPerRef,
		HitRates:        bc.Counters.CumulativeHitRates(),
		WorkingSetBytes: bc.WorkingSetBytes,
		ILP:             bc.Spec.ILP,
		PrefetchPerRef:  pfPerRef,
	}
}

// Collect produces the application signature of app at core count p against
// the target machine: one trace file per requested rank. A nil ranks slice
// collects the paper's default — one representative rank per load class,
// always including the dominant rank 0. Cancelling ctx stops the underlying
// simulations promptly and returns ctx.Err().
func Collect(ctx context.Context, app *synthapp.App, p int, target machine.Config, ranks []int, opt Options) (*trace.Signature, error) {
	counters, err := CollectCounters(ctx, app, p, target, opt)
	if err != nil {
		return nil, err
	}
	if ranks == nil {
		for c := 0; c < app.NumClasses() && c < p; c++ {
			ranks = append(ranks, c) // ClassOf is round-robin: rank c is class c
		}
	}
	sig := &trace.Signature{App: app.Name(), CoreCount: p, Machine: target.Name}
	seen := map[int]bool{}
	for _, r := range ranks {
		if r < 0 || r >= p {
			return nil, fmt.Errorf("pebil: %w: rank %d of %d cores", trace.ErrRankOutOfRange, r, p)
		}
		if seen[r] {
			return nil, fmt.Errorf("pebil: duplicate rank %d requested", r)
		}
		seen[r] = true
		tr := trace.Trace{
			App:       app.Name(),
			CoreCount: p,
			Rank:      r,
			Machine:   target.Name,
			Levels:    len(target.Caches),
		}
		lf := app.LoadFactor(r)
		for i := range counters {
			bc := &counters[i]
			tr.Blocks = append(tr.Blocks, trace.Block{
				ID:   bc.Spec.ID,
				Func: bc.Spec.Func,
				File: bc.Spec.File,
				Line: bc.Spec.Line,
				FV:   featureVector(bc, lf),
			})
		}
		tr.SortBlocks()
		sig.Traces = append(sig.Traces, tr)
	}
	if err := sig.Validate(); err != nil {
		return nil, fmt.Errorf("pebil: produced invalid signature: %w", err)
	}
	return sig, nil
}
