package pebil

import (
	"context"
	"errors"
	"math"
	"testing"

	"tracex/internal/cache"
	"tracex/internal/machine"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

// collectReuse runs one reuse collection on a throwaway collector.
func collectReuse(ctx context.Context, app *synthapp.App, p int, cfg CollectorConfig) (*trace.ReuseSignature, error) {
	c, err := NewCollector()
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.CollectReuse(ctx, app, p, cfg)
}

// TestAnalyticalFidelityGolden pins the analytical cache model against the
// exact simulator: across the seed workloads and three real hierarchies,
// every block's per-level cumulative hit rate derived from one reuse
// signature must stay within fidelityBound of the simulated rate. The bound
// was measured empirically: the collections are deterministic and the worst
// error across the grid below is 0.092, at blocks whose regularly-strided
// footprint sits right at a level's capacity — the binomial set-conflict
// correction smears that residency edge, while set-aligned strides resolve
// it exactly. A regression in the recorder, the histogram bucketing or the
// binomial correction trips the pinned bound.
func TestAnalyticalFidelityGolden(t *testing.T) {
	const fidelityBound = 0.10
	apps := []*synthapp.App{synthapp.UH3D(), synthapp.SPECFEM3D(), synthapp.CGSolve()}
	geoms := []machine.Config{machine.BlueWatersP1(), machine.Kraken(), machine.XE6()}
	cores := map[string]int{"uh3d": 1024, "specfem3d": 96, "cgsolve": 256}
	worst := 0.0
	for _, app := range apps {
		p := cores[app.Name()]
		rs, err := collectReuse(context.Background(), app, p, fastOpt)
		if err != nil {
			t.Fatalf("CollectReuse(%s): %v", app.Name(), err)
		}
		for _, sys := range geoms {
			exact, err := collect(context.Background(), app, p, sys, []int{0}, fastOpt)
			if err != nil {
				t.Fatalf("Collect(%s, %s): %v", app.Name(), sys.Name, err)
			}
			derived, err := SignatureFromReuse(rs, app, sys, []int{0}, nil)
			if err != nil {
				t.Fatalf("SignatureFromReuse(%s, %s): %v", app.Name(), sys.Name, err)
			}
			eb := exact.DominantTrace().BlockByID()
			for _, db := range derived.DominantTrace().Blocks {
				want := eb[db.ID]
				if want == nil {
					t.Fatalf("%s/%s: block %d missing from exact signature", app.Name(), sys.Name, db.ID)
				}
				for l := range db.FV.HitRates {
					diff := math.Abs(db.FV.HitRates[l] - want.FV.HitRates[l])
					if diff > worst {
						worst = diff
					}
					if diff > fidelityBound {
						t.Errorf("%s/%s block %s level %d: analytical %.4f vs exact %.4f (|Δ|=%.4f > %.2f)",
							app.Name(), sys.Name, db.Func, l, db.FV.HitRates[l], want.FV.HitRates[l], diff, fidelityBound)
					}
				}
			}
		}
	}
	t.Logf("worst per-level hit-rate error across grid: %.4f (bound %.2f)", worst, fidelityBound)
}

func TestCollectReuseDeterministicAcrossWorkers(t *testing.T) {
	app := synthapp.Stencil3D()
	o1 := fastOpt
	o1.Workers = 1
	o2 := fastOpt
	o2.Workers = 8
	a, err := collectReuse(context.Background(), app, 64, o1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := collectReuse(context.Background(), app, 64, o2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		ha, hb := a.Blocks[i].Hist, b.Blocks[i].Hist
		if ha.Refs != hb.Refs || ha.Cold != hb.Cold {
			t.Errorf("block %d accounting differs across parallelism", a.Blocks[i].ID)
		}
		for j := range ha.Counts {
			if j < len(hb.Counts) && ha.Counts[j] != hb.Counts[j] {
				t.Errorf("block %d bucket %d differs across parallelism", a.Blocks[i].ID, j)
			}
		}
	}
}

func TestCollectReuseRejectsSharedHierarchy(t *testing.T) {
	app := synthapp.Stencil3D()
	cfg := fastOpt
	cfg.SharedHierarchy = true
	if _, err := collectReuse(context.Background(), app, 64, cfg); !errors.Is(err, cache.ErrModelUnsupported) {
		t.Errorf("shared-hierarchy collection: %v, want ErrModelUnsupported", err)
	}
}

func TestSignatureFromReuseValidation(t *testing.T) {
	app := synthapp.Stencil3D()
	bw := machine.BlueWatersP1()
	rs, err := collectReuse(context.Background(), app, 64, fastOpt)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := SignatureFromReuse(nil, app, bw, nil, nil); err == nil {
		t.Error("nil reuse signature accepted")
	}
	if _, err := SignatureFromReuse(rs, nil, bw, nil, nil); err == nil {
		t.Error("nil application accepted")
	}
	if _, err := SignatureFromReuse(rs, synthapp.UH3D(), bw, nil, nil); !errors.Is(err, trace.ErrMachineMismatch) {
		t.Errorf("app mismatch: %v, want ErrMachineMismatch", err)
	}
	if _, err := SignatureFromReuse(rs, app, machine.WithPrefetch(bw), nil, nil); !errors.Is(err, cache.ErrModelUnsupported) {
		t.Errorf("prefetcher target: %v, want ErrModelUnsupported", err)
	}
	if _, err := SignatureFromReuse(rs, app, bw, []int{64}, nil); !errors.Is(err, trace.ErrRankOutOfRange) {
		t.Errorf("out-of-range rank: %v, want ErrRankOutOfRange", err)
	}
	if _, err := SignatureFromReuse(rs, app, bw, []int{1, 1}, nil); err == nil {
		t.Error("duplicate rank accepted")
	}

	// Default ranks mirror exact collection: one per load class, validating.
	sig, err := SignatureFromReuse(rs, app, bw, nil, nil)
	if err != nil {
		t.Fatalf("SignatureFromReuse: %v", err)
	}
	if err := sig.Validate(); err != nil {
		t.Fatalf("derived signature invalid: %v", err)
	}
	if len(sig.Traces) != app.NumClasses() {
		t.Errorf("got %d traces, want one per class (%d)", len(sig.Traces), app.NumClasses())
	}
	if sig.Machine != bw.Name {
		t.Errorf("machine = %q, want %q", sig.Machine, bw.Name)
	}
}
