package pebil

import (
	"context"
	"reflect"
	"testing"

	"tracex/internal/cache"
	"tracex/internal/machine"
	"tracex/internal/synthapp"
)

// referenceCounters is the frozen serial collection algorithm: a fresh
// simulator per block, one Access per generated address, no batching and no
// worker pool. It reimplements the pre-arena code path verbatim so the
// golden equivalence test fails if the parallel batched pipeline ever
// drifts from it.
func referenceCounters(t *testing.T, app *synthapp.App, p int, target machine.Config, cfg CollectorConfig) []BlockCounters {
	t.Helper()
	works, err := app.Work(p)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]BlockCounters, len(works))
	for i := range works {
		w := &works[i]
		sim, err := cache.NewSimulatorOpts(target.Caches, cache.Options{NextLinePrefetch: target.Prefetch})
		if err != nil {
			t.Fatal(err)
		}
		warm, sample := cfg.Budget(w.Refs, w.WorkingSetBytes)
		for j := 0; j < warm; j++ {
			sim.Access(w.Gen.Next())
		}
		sim.ResetCounters()
		for j := 0; j < sample; j++ {
			sim.Access(w.Gen.Next())
		}
		out[i] = BlockCounters{
			Spec:            w.Spec,
			Refs:            w.Refs,
			WorkingSetBytes: w.WorkingSetBytes,
			Counters:        sim.Counters(),
		}
	}
	return out
}

// TestGoldenEquivalenceWithSerialPath is the acceptance gate for the
// parallel batched pipeline: on the Table-1 applications, every field of
// every block's counters must be bit-identical to the serial reference —
// across worker counts, batch sizes, and with the prefetcher on.
func TestGoldenEquivalenceWithSerialPath(t *testing.T) {
	cfg := CollectorConfig{SampleRefs: 50_000, MaxWarmRefs: 150_000}
	cases := []struct {
		app    *synthapp.App
		cores  int
		target machine.Config
	}{
		{synthapp.SPECFEM3D(), 96, machine.BlueWatersP1()},
		{synthapp.UH3D(), 1024, machine.BlueWatersP1()},
		{synthapp.SPECFEM3D(), 384, machine.WithPrefetch(machine.SandyBridge())},
	}
	col, err := NewCollector(WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	for _, tc := range cases {
		want := referenceCounters(t, tc.app, tc.cores, tc.target, cfg)
		for _, run := range []CollectorConfig{
			{SampleRefs: cfg.SampleRefs, MaxWarmRefs: cfg.MaxWarmRefs, Workers: 8, BatchSize: 4096},
			{SampleRefs: cfg.SampleRefs, MaxWarmRefs: cfg.MaxWarmRefs, Workers: 2, BatchSize: 1009},
		} {
			got, err := col.Counters(context.Background(), tc.app, tc.cores, tc.target, run)
			if err != nil {
				t.Fatalf("%s@%d on %s: %v", tc.app.Name(), tc.cores, tc.target.Name, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s@%d on %s: parallel path (workers=%d batch=%d) diverges from serial reference",
					tc.app.Name(), tc.cores, tc.target.Name, run.Workers, run.BatchSize)
			}
		}
	}
}

// BenchmarkCollect contrasts the serial unbatched configuration with the
// batched and parallel ones on a Table-1 workload. The serial sub-benchmark
// is the pre-redesign cost model (one worker, one address per call);
// batched isolates the slab win; parallel adds the arena sharding
// (wall-clock gains require GOMAXPROCS > 1).
func BenchmarkCollect(b *testing.B) {
	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	base := CollectorConfig{SampleRefs: 100_000, MaxWarmRefs: 200_000}
	runs := []struct {
		name string
		cfg  CollectorConfig
	}{
		{"serial", CollectorConfig{SampleRefs: base.SampleRefs, MaxWarmRefs: base.MaxWarmRefs, Workers: 1, BatchSize: 1}},
		{"batched", CollectorConfig{SampleRefs: base.SampleRefs, MaxWarmRefs: base.MaxWarmRefs, Workers: 1}},
		{"parallel", CollectorConfig{SampleRefs: base.SampleRefs, MaxWarmRefs: base.MaxWarmRefs}},
	}
	for _, run := range runs {
		b.Run(run.name, func(b *testing.B) {
			col, err := NewCollector()
			if err != nil {
				b.Fatal(err)
			}
			defer col.Close()
			var refs int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs, err := col.Counters(context.Background(), app, 2048, bw, run.cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range cs {
					refs += int64(c.Counters.Refs)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(refs)/float64(b.N), "sample-refs/op")
			}
		})
	}
}
