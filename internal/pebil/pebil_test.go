package pebil

import (
	"context"

	"math"
	"testing"

	"tracex/internal/machine"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

// fastOpt keeps unit-test simulation cheap.
var fastOpt = CollectorConfig{SampleRefs: 60_000, MaxWarmRefs: 120_000}

// collectCounters and collect run one collection on a throwaway collector,
// standing in for the removed package-level convenience functions.
func collectCounters(ctx context.Context, app *synthapp.App, p int, m machine.Config, cfg CollectorConfig) ([]BlockCounters, error) {
	c, err := NewCollector()
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Counters(ctx, app, p, m, cfg)
}

func collect(ctx context.Context, app *synthapp.App, p int, m machine.Config, ranks []int, cfg CollectorConfig) (*trace.Signature, error) {
	c, err := NewCollector()
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Collect(ctx, app, p, m, ranks, cfg)
}

func TestCollectCountersBasics(t *testing.T) {
	app := synthapp.Stencil3D()
	bw := machine.BlueWatersP1()
	cs, err := collectCounters(context.Background(), app, 64, bw, fastOpt)
	if err != nil {
		t.Fatalf("CollectCounters: %v", err)
	}
	if len(cs) != len(app.Blocks()) {
		t.Fatalf("got %d blocks", len(cs))
	}
	for _, c := range cs {
		if c.Counters.Refs == 0 {
			t.Errorf("block %s has empty sample", c.Spec.Func)
		}
		rates := c.Counters.CumulativeHitRates()
		if len(rates) != len(bw.Caches) {
			t.Errorf("block %s has %d rates", c.Spec.Func, len(rates))
		}
		for i := 1; i < len(rates); i++ {
			if rates[i] < rates[i-1] {
				t.Errorf("block %s rates not monotone: %v", c.Spec.Func, rates)
			}
		}
	}
}

func TestCollectCountersDeterministicAcrossParallelism(t *testing.T) {
	app := synthapp.Stencil3D()
	bw := machine.BlueWatersP1()
	o1 := fastOpt
	o1.Workers = 1
	o2 := fastOpt
	o2.Workers = 8
	a, err := collectCounters(context.Background(), app, 64, bw, o1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := collectCounters(context.Background(), app, 64, bw, o2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Counters.Refs != b[i].Counters.Refs ||
			a[i].Counters.MemAccesses != b[i].Counters.MemAccesses {
			t.Errorf("block %d counters differ across parallelism", i)
		}
		for l := range a[i].Counters.LevelHits {
			if a[i].Counters.LevelHits[l] != b[i].Counters.LevelHits[l] {
				t.Errorf("block %d level %d hits differ", i, l)
			}
		}
	}
}

func TestCollectSignatureDefaultRanks(t *testing.T) {
	app := synthapp.SPECFEM3D()
	bw := machine.BlueWatersP1()
	sig, err := collect(context.Background(), app, 96, bw, nil, fastOpt)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if err := sig.Validate(); err != nil {
		t.Fatalf("signature invalid: %v", err)
	}
	if len(sig.Traces) != app.NumClasses() {
		t.Errorf("got %d traces, want one per class (%d)", len(sig.Traces), app.NumClasses())
	}
	// The dominant trace is rank 0 (class factor 1.0).
	if d := sig.DominantTrace(); d == nil || d.Rank != 0 {
		t.Errorf("dominant trace rank = %v, want 0", d)
	}
}

func TestCollectScalesByLoadFactor(t *testing.T) {
	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	sig, err := collect(context.Background(), app, 1024, bw, []int{0, 1}, fastOpt)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	f := app.LoadFactor(1)
	for i := range sig.Traces[0].Blocks {
		b0 := sig.Traces[0].Blocks[i].FV
		b1 := sig.Traces[1].Blocks[i].FV
		if math.Abs(b1.MemOps-f*b0.MemOps) > 1e-6*b0.MemOps {
			t.Errorf("block %d: rank1 mem ops %g, want %g×%g", i, b1.MemOps, f, b0.MemOps)
		}
		// Hit rates are pattern properties: identical across classes.
		for l := range b0.HitRates {
			if b0.HitRates[l] != b1.HitRates[l] {
				t.Errorf("block %d hit rates differ across classes", i)
			}
		}
	}
}

func TestCollectRankValidation(t *testing.T) {
	app := synthapp.Stencil3D()
	bw := machine.BlueWatersP1()
	if _, err := collect(context.Background(), app, 64, bw, []int{64}, fastOpt); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := collect(context.Background(), app, 64, bw, []int{1, 1}, fastOpt); err == nil {
		t.Error("duplicate rank accepted")
	}
	bad := bw
	bad.ClockGHz = 0
	if _, err := collect(context.Background(), app, 64, bad, nil, fastOpt); err == nil {
		t.Error("invalid machine accepted")
	}
	if _, err := collect(context.Background(), app, 1, bw, nil, fastOpt); err != nil {
		// 1 core is below stencil3d's range: expected failure.
		return
	}
}

func TestTableIIIResidencyContrast(t *testing.T) {
	// The SPECFEM3D flux_lookup_table block: resident (≥99 %) in the 56 KB
	// L1, thrashing (≤92 %) in the 12 KB L1, and essentially constant
	// across core counts on both.
	app := synthapp.SPECFEM3D()
	counts := []int{96, 384, 1536, 6144}
	for _, sys := range []machine.Config{machine.SystemA12KB(), machine.SystemB56KB()} {
		var rates []float64
		for _, p := range counts {
			cs, err := collectCounters(context.Background(), app, p, sys, fastOpt)
			if err != nil {
				t.Fatalf("CollectCounters(%s, %d): %v", sys.Name, p, err)
			}
			var found bool
			for _, c := range cs {
				if c.Spec.Func == "flux_lookup_table" {
					rates = append(rates, c.Counters.CumulativeHitRates()[0])
					found = true
				}
			}
			if !found {
				t.Fatal("flux_lookup_table missing")
			}
		}
		for i := 1; i < len(rates); i++ {
			if math.Abs(rates[i]-rates[0]) > 0.02 {
				t.Errorf("%s: L1 rate varies with cores: %v", sys.Name, rates)
			}
		}
		if sys.Name == "systemA-12KB-L1" {
			if rates[0] > 0.93 {
				t.Errorf("12KB L1 rate %.3f, want thrashing (<0.93)", rates[0])
			}
		} else if rates[0] < 0.99 {
			t.Errorf("56KB L1 rate %.3f, want resident (≥0.99)", rates[0])
		}
	}
}

func TestTableIIHitRatesRiseWithCoreCount(t *testing.T) {
	// The UH3D field_update block: as the core count rises the shrinking
	// field region drains into L3 — cumulative L3 hit rate rises while L1
	// stays flat.
	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	// Steady-state rates for multi-megabyte random regions need the full
	// warm-up, unlike the other tests.
	steadyOpt := CollectorConfig{SampleRefs: 400_000, MaxWarmRefs: 2_000_000}
	var l1, l3 []float64
	for _, p := range []int{1024, 2048, 4096, 8192} {
		cs, err := collectCounters(context.Background(), app, p, bw, steadyOpt)
		if err != nil {
			t.Fatalf("CollectCounters(%d): %v", p, err)
		}
		for _, c := range cs {
			if c.Spec.Func == "field_update" {
				r := c.Counters.CumulativeHitRates()
				l1 = append(l1, r[0])
				l3 = append(l3, r[2])
			}
		}
	}
	for i := 1; i < len(l1); i++ {
		if math.Abs(l1[i]-l1[0]) > 0.02 {
			t.Errorf("L1 rate drifts: %v", l1)
		}
		if l3[i] < l3[i-1]-0.005 {
			t.Errorf("L3 rate not rising: %v", l3)
		}
	}
	if l3[len(l3)-1]-l3[0] < 0.02 {
		t.Errorf("L3 rise too small: %v", l3)
	}
}

func BenchmarkCollectCounters(b *testing.B) {
	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := collectCounters(context.Background(), app, 2048, bw, fastOpt); err != nil {
			b.Fatal(err)
		}
	}
}
