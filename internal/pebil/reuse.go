package pebil

import (
	"context"
	"fmt"
	"sort"
	"time"

	"tracex/internal/addrgen"
	"tracex/internal/cache"
	"tracex/internal/machine"
	"tracex/internal/obs"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

// ReuseLineSize is the cache-line granularity reuse-distance signatures are
// collected at. Every predefined machine uses 64-byte lines; the analytical
// model rejects hierarchies whose line size differs from the signature's.
const ReuseLineSize = 64

// CollectReuse records the machine-independent reuse-distance signature of
// app's dominant rank at core count p: for each basic block, the LRU
// stack-distance histogram of its sampled address stream at ReuseLineSize
// granularity. Collection mirrors exact collection phase for phase — the
// same warm-up stream primes the recorder's tracked-line state, then the
// same sample length is recorded — so a derived signature is comparable to
// a simulated one reference for reference. Blocks shard across the arena
// exactly like Counters units. Cancelling ctx stops the recording promptly
// and returns ctx.Err().
func (c *Collector) CollectReuse(ctx context.Context, app *synthapp.App, p int, cfg CollectorConfig) (*trace.ReuseSignature, error) {
	cfg, err := c.resolve(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.SharedHierarchy {
		return nil, fmt.Errorf("pebil: shared-hierarchy collection %w (blocks contend for one cache; use the exact model)",
			cache.ErrModelUnsupported)
	}
	if cfg.Sampling.IsAdaptive() {
		return nil, fmt.Errorf("pebil: adaptive sampling %w (reuse recording has no per-block error bound; use a fixed policy)",
			cache.ErrModelUnsupported)
	}
	sp := obs.From(ctx).StartSpan("pebil.reuse", fmt.Sprintf("%s@%d", app.Name(), p))
	defer sp.End()
	works, err := app.Work(p)
	if err != nil {
		return nil, err
	}
	concurrency := cfg.Workers
	if concurrency > c.arena.Workers() {
		concurrency = c.arena.Workers()
	}
	if concurrency > len(works) {
		concurrency = len(works)
	}
	if concurrency < 1 {
		concurrency = 1
	}
	obs.From(ctx).Gauge("pebil.workers").Set(float64(concurrency))
	blocks := make([]trace.ReuseBlock, len(works))
	err = c.arena.run(ctx, concurrency, len(works), func(i int, s *scratch) error {
		rb, err := recordBlock(ctx, &works[i], cfg, s)
		if err != nil {
			return err
		}
		blocks[i] = rb
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID < blocks[j].ID })
	rs := &trace.ReuseSignature{
		App:       app.Name(),
		CoreCount: p,
		LineSize:  ReuseLineSize,
		Blocks:    blocks,
	}
	if err := rs.Validate(); err != nil {
		return nil, fmt.Errorf("pebil: produced invalid reuse signature: %w", err)
	}
	return rs, nil
}

// recordBlock measures one block's reuse-distance histogram on the worker's
// recorder, phase-matched to simulateBlock: warm min(ws/8, MaxWarmRefs)
// references unrecorded, then record min(SampleRefs, Refs).
func recordBlock(ctx context.Context, w *synthapp.Work, cfg CollectorConfig, s *scratch) (trace.ReuseBlock, error) {
	m := obs.From(ctx)
	warm, sample := cfg.Budget(w.Refs, w.WorkingSetBytes)
	rec, err := s.recorder(ReuseLineSize, warm+sample)
	if err != nil {
		return trace.ReuseBlock{}, err
	}
	buf := s.slab(cfg.BatchSize)
	start := time.Now()
	hist := trace.ReuseHistogram{LineSize: ReuseLineSize}
	record := func(n int, into *trace.ReuseHistogram) error {
		for n > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			k := len(buf)
			if k > n {
				k = n
			}
			addrgen.FillBatch(w.Gen, buf[:k])
			if into == nil {
				rec.Warm(buf[:k])
			} else {
				rec.Record(buf[:k], into)
			}
			n -= k
		}
		return nil
	}
	if err := record(warm, nil); err != nil {
		return trace.ReuseBlock{}, err
	}
	if err := record(sample, &hist); err != nil {
		return trace.ReuseBlock{}, err
	}
	m.Counter("pebil.reuse_warm_refs").Add(uint64(warm))
	m.Counter("pebil.reuse_sample_refs").Add(uint64(sample))
	m.Counter("pebil.reuse_blocks").Inc()
	m.Histogram("pebil.block_reuse_seconds").Observe(time.Since(start).Seconds())
	return trace.ReuseBlock{
		ID:              w.Spec.ID,
		Func:            w.Spec.Func,
		File:            w.Spec.File,
		Line:            w.Spec.Line,
		Refs:            w.Refs,
		WorkingSetBytes: w.WorkingSetBytes,
		FPPerRef:        w.Spec.FPPerRef,
		AddFrac:         w.Spec.AddFrac,
		MulFrac:         w.Spec.MulFrac,
		DivFrac:         w.Spec.DivFrac,
		LoadFrac:        w.Spec.LoadFrac,
		BytesPerRef:     w.Spec.BytesPerRef,
		ILP:             w.Spec.ILP,
		Hist:            hist,
	}, nil
}

// reuseFeatureVector assembles the trace feature vector of one reuse block
// for a rank with the given load factor, using model-derived hit rates.
// The analytical model has no prefetcher, so PrefetchPerRef is zero.
func reuseFeatureVector(b *trace.ReuseBlock, rates []float64, loadFactor float64) trace.FeatureVector {
	memOps := b.Refs * loadFactor
	fpOps := memOps * b.FPPerRef
	return trace.FeatureVector{
		FPOps:           fpOps,
		FPAdd:           fpOps * b.AddFrac,
		FPMul:           fpOps * b.MulFrac,
		FPDivSqrt:       fpOps * b.DivFrac,
		MemOps:          memOps,
		Loads:           memOps * b.LoadFrac,
		Stores:          memOps * (1 - b.LoadFrac),
		BytesPerRef:     b.BytesPerRef,
		HitRates:        append([]float64(nil), rates...),
		WorkingSetBytes: b.WorkingSetBytes,
		ILP:             b.ILP,
	}
}

// SignatureFromReuse assembles the application signature for the target
// geometry from a collected reuse-distance signature: the model converts
// each block's histogram into per-level hit rates, and per-rank traces are
// assembled exactly as in exact collection (every rank executes the same
// blocks scaled by its load factor). A nil ranks slice selects one
// representative rank per load class, always including the dominant rank 0;
// a nil model selects cache.Analytical. The app must be the one the
// signature was collected from (it supplies the load-class structure).
//
// Prefetcher-enabled targets fail with cache.ErrModelUnsupported: the
// analytical model cannot reproduce stream-prefetch traffic, and silently
// dropping it would bias predictions. Use the exact model there.
func SignatureFromReuse(rs *trace.ReuseSignature, app *synthapp.App, target machine.Config, ranks []int, model cache.Model) (*trace.Signature, error) {
	if rs == nil {
		return nil, fmt.Errorf("pebil: nil reuse signature")
	}
	if app == nil {
		return nil, fmt.Errorf("pebil: nil application")
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	if app.Name() != rs.App {
		return nil, fmt.Errorf("pebil: %w: reuse signature is for %q, application is %q",
			trace.ErrMachineMismatch, rs.App, app.Name())
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if target.Prefetch {
		return nil, fmt.Errorf("pebil: target %s has a hardware prefetcher, %w (use the exact model)",
			target.Name, cache.ErrModelUnsupported)
	}
	if model == nil {
		model = cache.Analytical{}
	}
	p := rs.CoreCount
	rates := make([][]float64, len(rs.Blocks))
	for i := range rs.Blocks {
		r, err := model.Rates(&rs.Blocks[i].Hist, target.Caches)
		if err != nil {
			return nil, fmt.Errorf("pebil: block %d (%s) on %s: %w",
				rs.Blocks[i].ID, rs.Blocks[i].Func, target.Name, err)
		}
		rates[i] = r
	}
	if ranks == nil {
		for r := 0; r < app.NumClasses() && r < p; r++ {
			ranks = append(ranks, r) // ClassOf is round-robin: rank r is class r
		}
	}
	seen := map[int]bool{}
	for _, r := range ranks {
		if r < 0 || r >= p {
			return nil, fmt.Errorf("pebil: %w: rank %d of %d cores", trace.ErrRankOutOfRange, r, p)
		}
		if seen[r] {
			return nil, fmt.Errorf("pebil: duplicate rank %d requested", r)
		}
		seen[r] = true
	}
	traces := make([]trace.Trace, len(ranks))
	for i, r := range ranks {
		tr := trace.Trace{
			App:       rs.App,
			CoreCount: p,
			Rank:      r,
			Machine:   target.Name,
			Levels:    len(target.Caches),
		}
		lf := app.LoadFactor(r)
		tr.Blocks = make([]trace.Block, 0, len(rs.Blocks))
		for j := range rs.Blocks {
			b := &rs.Blocks[j]
			tr.Blocks = append(tr.Blocks, trace.Block{
				ID:   b.ID,
				Func: b.Func,
				File: b.File,
				Line: b.Line,
				FV:   reuseFeatureVector(b, rates[j], lf),
			})
		}
		tr.SortBlocks()
		traces[i] = tr
	}
	sig := &trace.Signature{App: rs.App, CoreCount: p, Machine: target.Name, Traces: traces}
	if err := sig.Validate(); err != nil {
		return nil, fmt.Errorf("pebil: derived invalid signature: %w", err)
	}
	return sig, nil
}
