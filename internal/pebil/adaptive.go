package pebil

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"tracex/internal/addrgen"
	"tracex/internal/cache"
	"tracex/internal/cluster"
	"tracex/internal/machine"
	"tracex/internal/obs"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

// Tuning constants of the adaptive collection loop. They shape results, so
// they are compile-time constants rather than policy fields: changing one
// is a semantic change that must bump collection identities.
const (
	// adaptiveWarmChunk is the first warm-up window length. Windows double
	// (each next window spans the whole stream so far) and the warm-up
	// stops when a window's hit rates move less than adaptiveWarmTol from
	// the previous window's — instead of always touching the full working
	// set up to the MaxWarmRefs cap, which dominates collection cost for
	// multi-megabyte working sets. Doubling is what makes the detector
	// safe against slow drift: a per-reference drift too small to trip a
	// fixed-size chunk accumulates across a window that doubles, so a
	// still-filling cache keeps warming while a genuinely steady one stops
	// after ~two windows.
	adaptiveWarmChunk = 1 << 16
	// adaptiveWarmTol is the stability criterion: every level's
	// window-local cumulative hit rate must move less than this (absolute)
	// between consecutive doubling windows. Stopping at a just-under-tol
	// delta leaves a residual bias well under tol (the window rate has
	// already absorbed most of the drift); the remainder is priced into
	// the reported variances via warmBias. Cold-start traps where rates
	// sit flat while the cache is still filling are handled by the fill
	// floor, not by this tolerance.
	adaptiveWarmTol = 0.01
	// adaptiveWarmTransition is the window-delta spike that marks a
	// capacity transition: the stream outgrew some level and its eviction
	// churn reached the hit rates. After one, stability across a doubling
	// is trusted even below the fill floor (see warmAndPilot).
	adaptiveWarmTransition = 0.015
	// pilotSegments is the number of equal batch-means segments the pilot
	// splits into; segment means estimate the per-block sampling variance
	// with pilotSegments-1 degrees of freedom.
	pilotSegments = 16
	// maxRefineRounds bounds the Neyman refinement loop; a block still
	// unconverged after the last round keeps its (truthfully wide)
	// variance estimate.
	maxRefineRounds = 8
	// missRateFloor floors the miss rate the relative-error target is
	// taken against, so near-perfect hit rates don't demand unbounded
	// samples.
	missRateFloor = 0.02
	// minClusterBlocks disables clustering for tiny block sets where a
	// representative cannot save anything.
	minClusterBlocks = 4
	// clusterRateTol is the maximum absolute pilot hit-rate difference (any
	// level, and prefetch fills per reference) between a cluster member
	// and its representative for the member to skip refinement.
	clusterRateTol = 0.01
	// clusterVarInflation scales a representative's variance when copied
	// to a skipped member, on top of the squared pilot-rate gap, so copied
	// rates honestly report more uncertainty than measured ones.
	clusterVarInflation = 2.0
	// clusterSeed seeds the deterministic k-means.
	clusterSeed = 1
	// clusterMaxIter bounds the Lloyd iterations.
	clusterMaxIter = 50
)

// reuseFeatureEdges are the stack-distance thresholds (in cache lines) the
// pilot reuse histogram is summarized at for clustering: the CDF at these
// points spans L1-sized through LLC-sized footprints.
var reuseFeatureEdges = []float64{16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// adaptiveBlock is one block's collection state. It is owned by the
// collection (indexed by block), not by worker scratch, so results are
// independent of worker interleaving: every phase streams a
// deterministically-sized extension of the block's own address stream
// through the block's own simulator.
type adaptiveBlock struct {
	sim *cache.Simulator
	// warm is the number of warm-up references streamed.
	warm int
	// full is the block's full reference count (≥ 1), maxRefs the sample
	// cap min(policy MaxRefs, full).
	full    int
	maxRefs int
	// segL is the batch-means segment length; segRates[s] holds segment
	// s's per-level cumulative hit rates, segPF its prefetch fills per
	// reference.
	segL     int
	segRates [][]float64
	segPF    []float64
	// lastCum/lastPF snapshot the simulator accounting at the last segment
	// (or warm chunk) boundary.
	lastCum []uint64
	lastPF  uint64
	// exact marks blocks whose full stream fits in the pilot budget; they
	// are simulated exactly and carry zero variance.
	exact bool
	// warmBias bounds the residual hit-rate drift a truncated warm-up may
	// have left behind: the stability tolerance times the number of
	// doubling windows the stop skipped. Zero for a full warm-up. Its
	// square is added to every reported element variance.
	warmBias float64
	// pilotRates/pilotPF freeze the pilot-only means for cluster-skip
	// decisions and copied-variance inflation.
	pilotRates []float64
	pilotPF    float64
	// feat is the clustering feature point (nil when clustering is off or
	// the block is exact).
	feat []float64
	// skipped marks a cluster member that copies representative rep's
	// refined rates instead of refining itself.
	skipped bool
	rep     int
	// pendingSegs is the segment count the current refinement round
	// allocated to this block (consumed by refine).
	pendingSegs int
	// flushes accumulates slab flushes for the batched metrics update.
	flushes uint64
}

// sampled returns the number of measured (non-warm-up) references.
func (st *adaptiveBlock) sampled() int {
	if st.exact {
		return st.full
	}
	return len(st.segRates) * st.segL
}

// boundary reads the simulator accounting since the last boundary, advances
// the snapshot, and returns the interval's per-level cumulative hit rates
// and prefetch fills per reference over n references.
func (st *adaptiveBlock) boundary(n int) (rates []float64, pf float64) {
	c := st.sim.Counters()
	rates = make([]float64, len(c.LevelHits))
	var cum uint64
	for i, h := range c.LevelHits {
		cum += h
		rates[i] = float64(cum-st.lastCum[i]) / float64(n)
		st.lastCum[i] = cum
	}
	pf = float64(c.PrefetchFills-st.lastPF) / float64(n)
	st.lastPF = c.PrefetchFills
	return rates, pf
}

// record closes one batch-means segment of n references.
func (st *adaptiveBlock) record(n int) {
	rates, pf := st.boundary(n)
	st.segRates = append(st.segRates, rates)
	st.segPF = append(st.segPF, pf)
}

// levelStats returns the per-level mean and sample variance of the segment
// cumulative hit rates. With equal-length segments the mean equals the
// overall sampled rate, and variance/numSegments is the squared standard
// error of that rate (batch means).
func (st *adaptiveBlock) levelStats() (mean, s2 []float64) {
	n := len(st.segRates)
	levels := len(st.segRates[0])
	mean = make([]float64, levels)
	s2 = make([]float64, levels)
	for _, seg := range st.segRates {
		for l, r := range seg {
			mean[l] += r
		}
	}
	for l := range mean {
		mean[l] /= float64(n)
	}
	for _, seg := range st.segRates {
		for l, r := range seg {
			d := r - mean[l]
			s2[l] += d * d
		}
	}
	for l := range s2 {
		s2[l] /= float64(n - 1)
	}
	return mean, s2
}

// pfStats returns the mean and sample variance of the per-segment prefetch
// fills per reference.
func (st *adaptiveBlock) pfStats() (mean, s2 float64) {
	n := len(st.segPF)
	for _, v := range st.segPF {
		mean += v
	}
	mean /= float64(n)
	for _, v := range st.segPF {
		d := v - mean
		s2 += d * d
	}
	s2 /= float64(n - 1)
	return mean, s2
}

// needRefs returns the sample size the block's current variance estimate
// demands: for each level, enough batch-means segments that the standard
// error of the cumulative hit rate, relative to max(miss rate,
// missRateFloor), falls under the policy target — and never less than the
// policy floor, never more than the block cap.
func (st *adaptiveBlock) needRefs(pol SamplingPolicy) int {
	mean, s2 := st.levelStats()
	need := pol.MinRefs
	for l := range mean {
		denom := 1 - mean[l]
		if denom < missRateFloor {
			denom = missRateFloor
		}
		target := pol.TargetRelErr * denom
		segs := math.Ceil(s2[l] / (target * target))
		refs := int(segs) * st.segL
		if refs > need {
			need = refs
		}
	}
	if need > st.maxRefs {
		need = st.maxRefs
	}
	return need
}

// streamRecordRefs is streamRefs with a reuse-distance tap: every slab also
// feeds the recorder so the pilot yields the reuse histogram clustering
// operates on.
func streamRecordRefs(ctx context.Context, sim *cache.Simulator, gen addrgen.Generator, rec *cache.ReuseRecorder, hist *trace.ReuseHistogram, buf []uint64, n int) (uint64, error) {
	var flushes uint64
	for n > 0 {
		if err := ctx.Err(); err != nil {
			return flushes, err
		}
		k := len(buf)
		if k > n {
			k = n
		}
		addrgen.FillBatch(gen, buf[:k])
		sim.AccessBatch(buf[:k])
		rec.Record(buf[:k], hist)
		n -= k
		flushes++
	}
	return flushes, nil
}

// warmAndPilot runs one block's warm-up and pilot pass (one arena unit).
func (st *adaptiveBlock) warmAndPilot(ctx context.Context, w *synthapp.Work, target machine.Config, cfg CollectorConfig, s *scratch) error {
	m := obs.From(ctx)
	sim, err := cache.NewSimulatorOpts(target.Caches, cache.Options{NextLinePrefetch: target.Prefetch})
	if err != nil {
		return err
	}
	st.sim = sim
	st.lastCum = make([]uint64, len(target.Caches))
	buf := s.slab(cfg.BatchSize)
	pol := cfg.Sampling

	// Warm-up: stream doubling windows until the hierarchy is filled AND
	// consecutive windows show stable hit rates, capped at one pass over
	// the working set (the fixed policy's budget). On an early stop, the
	// remaining drift is bounded by the tolerance per skipped doubling;
	// that bound is carried as warmBias into the reported variances.
	warmCap := int(w.WorkingSetBytes / 8)
	if warmCap > DefaultMaxWarmRefs {
		warmCap = DefaultMaxWarmRefs
	}
	// fillFloor guards against stopping while the stream is still
	// cold-filling: window hit rates can sit perfectly flat while every
	// miss is a first touch, with capacity behavior only appearing once
	// the last level fills (or the whole working set has been touched,
	// whichever is smaller). Until the simulator has installed that many
	// lines, stability is not evidence of steady state.
	llc := target.Caches[len(target.Caches)-1]
	fillFloor := uint64(llc.SizeBytes / llc.LineSize)
	if wsLines := uint64(w.WorkingSetBytes / float64(llc.LineSize)); wsLines < fillFloor {
		fillFloor = wsLines
	}
	warmStart := time.Now()
	var prev []float64
	window := adaptiveWarmChunk
	transitioned := false
	for st.warm < warmCap {
		n := window
		if rem := warmCap - st.warm; n > rem {
			n = rem
		}
		flushes, err := streamRefs(ctx, sim, w.Gen, buf, n)
		st.flushes += flushes
		if err != nil {
			return err
		}
		st.warm += n
		rates, _ := st.boundary(n)
		c := sim.Counters()
		// The fill floor can also be waived once a capacity transition has
		// been observed: a delta spike means the stream outgrew a level's
		// capacity and started evicting, so a later window that re-
		// stabilizes across a doubling has seen steady-state churn — the
		// "flat while still cold-filling" trap no longer applies.
		filled := c.MemAccesses+c.PrefetchFills >= fillFloor
		if prev != nil {
			delta := maxAbsDelta(rates, prev)
			if delta >= adaptiveWarmTransition {
				transitioned = true
			}
			if (filled || transitioned) && delta <= adaptiveWarmTol {
				break
			}
		}
		prev = rates
		window = st.warm // double: the next window spans the stream so far
	}
	if st.warm < warmCap {
		st.warmBias = adaptiveWarmTol * math.Log2(float64(warmCap)/float64(st.warm))
	}
	m.Histogram("pebil.block_warm_seconds").Observe(time.Since(warmStart).Seconds())
	sim.ResetCounters()
	for i := range st.lastCum {
		st.lastCum[i] = 0
	}
	st.lastPF = 0

	// Pilot: blocks whose full stream fits in the pilot budget are
	// simulated exactly; the rest stream pilotSegments equal segments.
	sampleStart := time.Now()
	defer func() {
		m.Histogram("pebil.block_sample_seconds").Observe(time.Since(sampleStart).Seconds())
	}()
	st.full = int(w.Refs)
	if st.full < 1 {
		st.full = 1
	}
	if st.full <= pol.PilotRefs {
		st.exact = true
		flushes, err := streamRefs(ctx, sim, w.Gen, buf, st.full)
		st.flushes += flushes
		return err
	}
	st.maxRefs = pol.MaxRefs
	if st.full < st.maxRefs {
		st.maxRefs = st.full
	}
	st.segL = pol.PilotRefs / pilotSegments
	if st.segL < 1 {
		st.segL = 1
	}
	var rec *cache.ReuseRecorder
	var hist trace.ReuseHistogram
	if pol.ClusterBlocks {
		if rec, err = s.recorder(ReuseLineSize, pilotSegments*st.segL); err != nil {
			return err
		}
		hist.LineSize = ReuseLineSize
	}
	for seg := 0; seg < pilotSegments; seg++ {
		var flushes uint64
		if rec != nil {
			flushes, err = streamRecordRefs(ctx, sim, w.Gen, rec, &hist, buf, st.segL)
		} else {
			flushes, err = streamRefs(ctx, sim, w.Gen, buf, st.segL)
		}
		st.flushes += flushes
		if err != nil {
			return err
		}
		st.record(st.segL)
	}
	st.pilotRates, _ = st.levelStats()
	st.pilotPF, _ = st.pfStats()
	if pol.ClusterBlocks {
		st.feat = reuseFeatures(&hist, w.WorkingSetBytes)
	}
	return nil
}

// refine streams addRefs more references (a whole number of batch-means
// segments) through the block's simulator.
func (st *adaptiveBlock) refine(ctx context.Context, w *synthapp.Work, cfg CollectorConfig, s *scratch) error {
	buf := s.slab(cfg.BatchSize)
	start := time.Now()
	segs := st.pendingSegs
	st.pendingSegs = 0
	for i := 0; i < segs; i++ {
		flushes, err := streamRefs(ctx, st.sim, w.Gen, buf, st.segL)
		st.flushes += flushes
		if err != nil {
			return err
		}
		st.record(st.segL)
	}
	obs.From(ctx).Histogram("pebil.block_sample_seconds").Observe(time.Since(start).Seconds())
	return nil
}

// maxAbsDelta returns the largest absolute elementwise difference.
func maxAbsDelta(a, b []float64) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// reuseFeatures summarizes a pilot reuse histogram into the clustering
// feature point: the stack-distance CDF at reuseFeatureEdges, the cold
// fraction, and the log-scaled working-set size.
func reuseFeatures(h *trace.ReuseHistogram, workingSetBytes float64) []float64 {
	total := float64(h.Refs)
	if total <= 0 {
		total = 1
	}
	out := make([]float64, 0, len(reuseFeatureEdges)+2)
	for _, edge := range reuseFeatureEdges {
		var cum uint64
		for b, cnt := range h.Counts {
			if trace.ReuseBucketDistance(b) <= edge {
				cum += cnt
			}
		}
		out = append(out, float64(cum)/total)
	}
	out = append(out, float64(h.Cold)/total)
	out = append(out, math.Log2(workingSetBytes+1)/40)
	return out
}

// clusterAssign runs deterministic k-means over the pilot reuse features
// and marks members whose pilot behavior matches their cluster
// representative (the member with the most references) as skipped. It
// returns the cluster count and the number of skipped blocks.
func clusterAssign(states []adaptiveBlock) (clusters, skipped int) {
	var idx []int
	for i := range states {
		if !states[i].exact && states[i].feat != nil {
			idx = append(idx, i)
		}
	}
	if len(idx) < minClusterBlocks {
		return 0, 0
	}
	points := make([][]float64, len(idx))
	for j, i := range idx {
		points[j] = states[i].feat
	}
	k := int(math.Round(math.Sqrt(float64(len(idx)))))
	if k < 1 {
		k = 1
	}
	if k > len(idx) {
		k = len(idx)
	}
	res, err := cluster.KMeans(points, k, clusterMaxIter, clusterSeed)
	if err != nil {
		return 0, 0 // clustering is an optimization; fall back to refining every block
	}
	reps := make([]int, k)
	for c := range reps {
		reps[c] = -1
	}
	for j, i := range idx {
		c := res.Assignments[j]
		if reps[c] < 0 || states[i].full > states[reps[c]].full {
			reps[c] = i
		}
	}
	for j, i := range idx {
		rep := reps[res.Assignments[j]]
		if rep == i || rep < 0 {
			continue
		}
		st, rs := &states[i], &states[rep]
		if maxAbsDelta(st.pilotRates, rs.pilotRates) > clusterRateTol ||
			math.Abs(st.pilotPF-rs.pilotPF) > clusterRateTol {
			continue
		}
		st.skipped = true
		st.rep = rep
		skipped++
	}
	return k, skipped
}

// planRefine computes one Neyman refinement round: every unconverged block
// requests the segments its variance estimate demands (capped at doubling
// its current sample and at the block cap), and the round budget is split
// proportionally to stratum size × estimated per-reference stddev. It
// returns the number of blocks with work scheduled (in their pendingSegs).
func planRefine(states []adaptiveBlock, pol SamplingPolicy) int {
	n := len(states)
	caps := make([]int, n)
	weights := make([]float64, n)
	var budget int
	var wsum float64
	for i := range states {
		st := &states[i]
		if st.exact || st.skipped || st.segL == 0 {
			continue
		}
		cur := st.sampled()
		avail := st.maxRefs/st.segL - len(st.segRates)
		if avail <= 0 {
			continue
		}
		need := st.needRefs(pol)
		if need <= cur {
			continue
		}
		segs := (need - cur + st.segL - 1) / st.segL
		if segs > len(st.segRates) {
			segs = len(st.segRates) // at most double per round
		}
		if segs > avail {
			segs = avail
		}
		caps[i] = segs
		budget += segs
		_, s2 := st.levelStats()
		var sigma float64
		for _, v := range s2 {
			if v > sigma {
				sigma = v
			}
		}
		// s2 is the variance of segment means; × segL rescales to the
		// per-reference stddev Neyman allocation weighs by.
		weights[i] = float64(st.full) * (math.Sqrt(sigma*float64(st.segL)) + 1e-12)
		wsum += weights[i]
	}
	if budget == 0 {
		return 0
	}
	active := 0
	for i := range states {
		if caps[i] == 0 {
			continue
		}
		share := int(float64(budget) * weights[i] / wsum)
		if share < 1 {
			share = 1
		}
		if share > caps[i] {
			share = caps[i]
		}
		states[i].pendingSegs = share
		active++
	}
	return active
}

// adaptiveCollect runs an adaptive collection: warm-up + pilot per block
// (parallel on the arena), cluster-skip assignment (serial), Neyman
// refinement rounds (planned serially, streamed in parallel), and assembly
// of per-block counters plus measurement uncertainty. cfg must be resolved
// (Validate + withDefaults) with an adaptive policy. Results are
// bit-identical for any Workers/BatchSize: per-block simulator and
// generator state lives in block-indexed state, segment boundaries are
// fixed counts, and all allocation decisions are serial.
func (c *Collector) adaptiveCollect(ctx context.Context, app *synthapp.App, p int, target machine.Config, cfg CollectorConfig) ([]BlockCounters, *trace.SignatureUncertainty, error) {
	pol := cfg.Sampling
	if !pol.IsAdaptive() {
		return nil, nil, fmt.Errorf("pebil: adaptiveCollect with %q sampling", pol.Mode)
	}
	m := obs.From(ctx)
	sp := m.StartSpan("pebil.collect", fmt.Sprintf("%s@%d", app.Name(), p))
	defer sp.End()
	works, err := app.Work(p)
	if err != nil {
		return nil, nil, err
	}
	concurrency := cfg.Workers
	if concurrency > c.arena.Workers() {
		concurrency = c.arena.Workers()
	}
	if concurrency > len(works) {
		concurrency = len(works)
	}
	if concurrency < 1 {
		concurrency = 1
	}
	m.Gauge("pebil.workers").Set(float64(concurrency))

	states := make([]adaptiveBlock, len(works))
	err = c.arena.run(ctx, concurrency, len(works), func(i int, s *scratch) error {
		return states[i].warmAndPilot(ctx, &works[i], target, cfg, s)
	})
	if err != nil {
		return nil, nil, err
	}
	var warmTotal, pilotTotal uint64
	for i := range states {
		warmTotal += uint64(states[i].warm)
		if !states[i].exact {
			pilotTotal += uint64(states[i].sampled())
		}
	}
	m.Counter("pebil.warm_refs").Add(warmTotal)
	m.Counter("pebil.sampling.pilot_refs").Add(pilotTotal)

	if pol.ClusterBlocks {
		clusters, skipped := clusterAssign(states)
		m.Counter("pebil.sampling.clusters").Add(uint64(clusters))
		m.Counter("pebil.sampling.skipped_blocks").Add(uint64(skipped))
	}

	var refinedTotal uint64
	for round := 0; round < maxRefineRounds; round++ {
		if planRefine(states, pol) == 0 {
			break
		}
		var active []int
		for i := range states {
			if states[i].pendingSegs > 0 {
				active = append(active, i)
				refinedTotal += uint64(states[i].pendingSegs * states[i].segL)
			}
		}
		err = c.arena.run(ctx, concurrency, len(active), func(j int, s *scratch) error {
			i := active[j]
			return states[i].refine(ctx, &works[i], cfg, s)
		})
		if err != nil {
			return nil, nil, err
		}
	}
	m.Counter("pebil.sampling.refined_refs").Add(refinedTotal)

	out := make([]BlockCounters, len(works))
	var uncBlocks []trace.BlockUncertainty
	dof := 0
	var sampleTotal, flushTotal uint64
	for i := range works {
		st := &states[i]
		flushTotal += st.flushes
		src := st
		if st.skipped {
			src = &states[st.rep]
		} else if st.exact {
			// Measured references for non-exact blocks are already counted
			// under sampling.pilot_refs / sampling.refined_refs; only the
			// exactly-simulated full streams land here, so that warm_refs +
			// sample_refs + pilot_refs + refined_refs is the true number of
			// simulated references with nothing counted twice.
			sampleTotal += uint64(st.full)
		}
		out[i] = BlockCounters{
			Spec:            works[i].Spec,
			Refs:            works[i].Refs,
			WorkingSetBytes: works[i].WorkingSetBytes,
			Counters:        src.sim.Counters(),
		}
		if src.exact {
			continue // simulated in full: zero measurement variance
		}
		nSeg := float64(len(src.segRates))
		_, s2 := src.levelStats()
		_, pfS2 := src.pfStats()
		bias2 := src.warmBias * src.warmBias // truncated warm-up allowance
		vars := make([]float64, trace.NumScalarElements+len(target.Caches))
		for l := range s2 {
			se2 := s2[l]/nSeg + bias2
			if st.skipped {
				gap := st.pilotRates[l] - src.pilotRates[l]
				se2 = se2*clusterVarInflation + gap*gap
			}
			vars[trace.NumScalarElements+l] = se2
		}
		pfVar := pfS2/nSeg + bias2
		if st.skipped {
			gap := st.pilotPF - src.pilotPF
			pfVar = pfVar*clusterVarInflation + gap*gap
		}
		vars[trace.NumScalarElements-1] = pfVar // prefetch_per_ref
		uncBlocks = append(uncBlocks, trace.BlockUncertainty{ID: works[i].Spec.ID, Vars: vars})
		if d := len(src.segRates) - 1; dof == 0 || d < dof {
			dof = d
		}
	}
	m.Counter("pebil.sample_refs").Add(sampleTotal)
	m.Counter("pebil.batch_flushes").Add(flushTotal)
	m.Counter("pebil.blocks").Add(uint64(len(works)))
	if len(uncBlocks) == 0 {
		return out, nil, nil
	}
	sort.Slice(uncBlocks, func(a, b int) bool { return uncBlocks[a].ID < uncBlocks[b].ID })
	if dof < 1 {
		dof = 1
	}
	return out, &trace.SignatureUncertainty{Dof: dof, Blocks: uncBlocks}, nil
}
