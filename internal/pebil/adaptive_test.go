package pebil

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"tracex/internal/cache"
	"tracex/internal/machine"
	"tracex/internal/obs"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

func TestParseSamplingPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SamplingPolicy
	}{
		{"", SamplingPolicy{}},
		{"fixed", SamplingPolicy{Mode: SamplingModeFixed}},
		{"fixed:400000", SamplingPolicy{Mode: SamplingModeFixed, SampleRefs: 400_000}},
		{"fixed:100000,warm=50000", SamplingPolicy{Mode: SamplingModeFixed, SampleRefs: 100_000, MaxWarmRefs: 50_000}},
		{"adaptive", SamplingPolicy{Mode: SamplingModeAdaptive, ClusterBlocks: true}},
		{"adaptive:0.1", SamplingPolicy{Mode: SamplingModeAdaptive, TargetRelErr: 0.1, ClusterBlocks: true}},
		{"adaptive:0.05,pilot=5000,min=5000,max=50000,cluster=off",
			SamplingPolicy{Mode: SamplingModeAdaptive, TargetRelErr: 0.05, PilotRefs: 5000, MinRefs: 5000, MaxRefs: 50_000}},
		{"adaptive,cluster=on", SamplingPolicy{Mode: SamplingModeAdaptive, ClusterBlocks: true}},
	}
	for _, tc := range cases {
		got, err := ParseSamplingPolicy(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if tc.in == "" {
			continue
		}
		// String renders the canonical normalized form, and parsing it back
		// lands on the same normalized policy (the wire echo contract).
		s := got.String()
		back, err := ParseSamplingPolicy(s)
		if err != nil {
			t.Errorf("Parse(%q.String() = %q): %v", tc.in, s, err)
			continue
		}
		if back.Normalized() != got.Normalized() {
			t.Errorf("round trip of %q via %q: %+v != %+v", tc.in, s, back.Normalized(), got.Normalized())
		}
		if back.String() != s {
			t.Errorf("String not a fixed point: %q then %q", s, back.String())
		}
	}

	bad := []string{
		"bogus", "fixed:0", "fixed:-5", "fixed:x", "fixed,warm", "fixed,warm=0",
		"fixed,pilot=5", "adaptive:0", "adaptive:2", "adaptive:x",
		"adaptive,cluster=maybe", "adaptive,warm=5",
		"adaptive,min=100000,max=50000", "adaptive,pilot=60000,max=50000",
	}
	for _, s := range bad {
		if _, err := ParseSamplingPolicy(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestSamplingPolicyValidate(t *testing.T) {
	invalid := []SamplingPolicy{
		{SampleRefs: 1}, // fields without a mode
		{Mode: SamplingModeFixed, TargetRelErr: 0.1},   // adaptive field in fixed mode
		{Mode: SamplingModeFixed, ClusterBlocks: true}, // adaptive field in fixed mode
		{Mode: SamplingModeFixed, SampleRefs: -1},
		{Mode: SamplingModeAdaptive, SampleRefs: 1}, // fixed field in adaptive mode
		{Mode: SamplingModeAdaptive, TargetRelErr: -0.1},
		{Mode: SamplingModeAdaptive, TargetRelErr: 1.5},
		{Mode: SamplingModeAdaptive, MinRefs: 500_000},   // exceeds default MaxRefs
		{Mode: SamplingModeAdaptive, PilotRefs: 500_000}, // exceeds default MaxRefs
		{Mode: "stratified"},
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %+v accepted", p)
		}
	}
	valid := []SamplingPolicy{
		{}, FixedSampling(0, 0), FixedSampling(123, 456), AdaptiveSampling(0), AdaptiveSampling(0.2),
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("policy %+v rejected: %v", p, err)
		}
	}

	// Config-level combination rules.
	if err := (CollectorConfig{Sampling: FixedSampling(1000, 0), SampleRefs: 500}).Validate(); err == nil {
		t.Error("Sampling + deprecated SampleRefs accepted")
	}
	if err := (CollectorConfig{Sampling: AdaptiveSampling(0), MaxWarmRefs: 10}).Validate(); err == nil {
		t.Error("Sampling + deprecated MaxWarmRefs accepted")
	}
	if err := (CollectorConfig{Sampling: AdaptiveSampling(0), SharedHierarchy: true}).Validate(); err == nil {
		t.Error("adaptive + SharedHierarchy accepted")
	}
	err := (CollectorConfig{Sampling: AdaptiveSampling(0), Model: ModelAnalytical}).Validate()
	if !errors.Is(err, cache.ErrModelUnsupported) {
		t.Errorf("adaptive + analytical: got %v, want ErrModelUnsupported", err)
	}
	if _, err := DefaultCollector().CollectReuse(context.Background(), synthapp.UH3D(), 64,
		CollectorConfig{Sampling: AdaptiveSampling(0)}); !errors.Is(err, cache.ErrModelUnsupported) {
		t.Errorf("CollectReuse with adaptive policy: got %v, want ErrModelUnsupported", err)
	}
}

// TestEffectiveSampling pins the truthful wire echo: what a configuration
// reports must be the policy it actually resolves to.
func TestEffectiveSampling(t *testing.T) {
	cases := []struct {
		cfg  CollectorConfig
		want string
	}{
		{CollectorConfig{}, "fixed:400000,warm=2000000"},
		{CollectorConfig{SampleRefs: 50_000}, "fixed:50000,warm=2000000"},
		{CollectorConfig{Sampling: FixedSampling(50_000, 100_000)}, "fixed:50000,warm=100000"},
		{CollectorConfig{Sampling: AdaptiveSampling(0)}, "adaptive:0.05,pilot=20000,min=20000,max=400000,cluster=on"},
		{CollectorConfig{Sampling: AdaptiveSampling(0.1)}, "adaptive:0.1,pilot=20000,min=20000,max=400000,cluster=on"},
	}
	for _, tc := range cases {
		if got := tc.cfg.EffectiveSampling().String(); got != tc.want {
			t.Errorf("EffectiveSampling of %+v: %q, want %q", tc.cfg, got, tc.want)
		}
	}
}

// TestFixedPolicyMatchesLegacyConfig is the golden compatibility gate of
// the SamplingPolicy redesign: a Fixed policy must produce bit-identical
// output to the deprecated SampleRefs/MaxWarmRefs fields, and the two must
// normalize to the same configuration (same memoization and store keys).
func TestFixedPolicyMatchesLegacyConfig(t *testing.T) {
	legacy := CollectorConfig{SampleRefs: 50_000, MaxWarmRefs: 150_000}
	policy := CollectorConfig{Sampling: FixedSampling(50_000, 150_000)}
	if legacy.Normalized() != policy.Normalized() {
		t.Fatalf("normalized forms differ:\nlegacy %+v\npolicy %+v", legacy.Normalized(), policy.Normalized())
	}
	if d := (CollectorConfig{}).Normalized(); d != (CollectorConfig{Sampling: FixedSampling(0, 0)}).Normalized() {
		t.Fatalf("zero config and zero Fixed policy normalize differently: %+v", d)
	}

	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	col, err := NewCollector(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	want, err := col.Counters(context.Background(), app, 1024, bw, legacy)
	if err != nil {
		t.Fatal(err)
	}
	got, err := col.Counters(context.Background(), app, 1024, bw, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("Fixed policy counters diverge from legacy fields")
	}
	sigL, err := col.Collect(context.Background(), app, 1024, bw, nil, legacy)
	if err != nil {
		t.Fatal(err)
	}
	sigP, err := col.Collect(context.Background(), app, 1024, bw, nil, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sigL, sigP) {
		t.Error("Fixed policy signature diverges from legacy fields")
	}
	if sigP.Uncertainty != nil {
		t.Error("fixed collection carries uncertainty")
	}
}

// adaptiveTestPolicy keeps the adaptive unit tests fast while exercising
// the pilot, refinement and clustering paths.
const adaptiveTestPolicy = "adaptive:0.05,pilot=8000,min=8000,max=80000,cluster=on"

// TestAdaptiveDeterministicAcrossScheduling pins the adaptive collection's
// scheduling independence: Workers and BatchSize must not change a single
// bit of the signature or its uncertainty.
func TestAdaptiveDeterministicAcrossScheduling(t *testing.T) {
	pol, err := ParseSamplingPolicy(adaptiveTestPolicy)
	if err != nil {
		t.Fatal(err)
	}
	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	col, err := NewCollector(WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	var sigs []*trace.Signature
	for _, run := range []CollectorConfig{
		{Sampling: pol, Workers: 8, BatchSize: 4096},
		{Sampling: pol, Workers: 2, BatchSize: 1009},
		{Sampling: pol, Workers: 1, BatchSize: 1 << 15},
	} {
		sig, err := col.Collect(context.Background(), app, 1024, bw, nil, run)
		if err != nil {
			t.Fatalf("workers=%d batch=%d: %v", run.Workers, run.BatchSize, err)
		}
		sigs = append(sigs, sig)
	}
	for i := 1; i < len(sigs); i++ {
		if !reflect.DeepEqual(sigs[0], sigs[i]) {
			t.Errorf("adaptive collection differs between scheduling run 0 and %d", i)
		}
	}
	if sigs[0].Uncertainty == nil {
		t.Fatal("adaptive signature carries no uncertainty")
	}
}

// TestAdaptiveAccuracyAndErrorBounds compares an adaptive collection against
// the fixed default-budget collection on Table-1 applications: the hit
// rates must agree closely, and the advertised per-block standard errors
// must cover the observed deviations (the property the per-element
// confidence intervals rest on). Both collections are deterministic, so
// this is not a flaky statistical test.
func TestAdaptiveAccuracyAndErrorBounds(t *testing.T) {
	pol, err := ParseSamplingPolicy(adaptiveTestPolicy)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	cases := []struct {
		app   *synthapp.App
		cores int
	}{
		{synthapp.UH3D(), 1024},
		{synthapp.SPECFEM3D(), 96},
	}
	bw := machine.BlueWatersP1()
	for _, tc := range cases {
		truth, err := col.Collect(context.Background(), tc.app, tc.cores, bw, []int{0}, CollectorConfig{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := col.Collect(context.Background(), tc.app, tc.cores, bw, []int{0},
			CollectorConfig{Sampling: pol})
		if err != nil {
			t.Fatal(err)
		}
		unc := got.Uncertainty
		if unc == nil || unc.Dof < 1 {
			t.Fatalf("%s: missing or degenerate uncertainty (%+v)", tc.app.Name(), unc)
		}
		vars := map[uint64][]float64{}
		for i, b := range unc.Blocks {
			if i > 0 && unc.Blocks[i-1].ID >= b.ID {
				t.Fatalf("%s: uncertainty blocks not sorted by ID", tc.app.Name())
			}
			for _, v := range b.Vars {
				if v < 0 || math.IsNaN(v) {
					t.Fatalf("%s: block %d has invalid variance %g", tc.app.Name(), b.ID, v)
				}
			}
			vars[b.ID] = b.Vars
		}
		tb, gb := truth.DominantTrace().Blocks, got.DominantTrace().Blocks
		if len(tb) != len(gb) {
			t.Fatalf("%s: block count differs: %d vs %d", tc.app.Name(), len(tb), len(gb))
		}
		for j := range tb {
			for l := range tb[j].FV.HitRates {
				d := math.Abs(tb[j].FV.HitRates[l] - gb[j].FV.HitRates[l])
				if d > 0.02 {
					t.Errorf("%s block %d L%d: hit rate drifts %.4f (fixed %.4f adaptive %.4f)",
						tc.app.Name(), gb[j].ID, l+1, d, tb[j].FV.HitRates[l], gb[j].FV.HitRates[l])
				}
				v, ok := vars[gb[j].ID]
				if !ok {
					continue // exact block: simulated in full, no sampling error
				}
				se := math.Sqrt(v[trace.NumScalarElements+l])
				// The fixed reference is itself a sample; allow a small floor
				// on top of the adaptive standard error.
				if d > 5*se+0.01 {
					t.Errorf("%s block %d L%d: deviation %.4f outside 5×SE %.4f + 0.01",
						tc.app.Name(), gb[j].ID, l+1, d, 5*se)
				}
			}
		}
	}
}

// TestAdaptiveReducesSimulatedRefs is the in-tree speedup gate: on a
// Table-1 workload the adaptive policy must simulate at least 3× fewer
// references (warm-up included) than the fixed default budget. The CI
// bench target asserts the same on the full application set.
func TestAdaptiveReducesSimulatedRefs(t *testing.T) {
	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	col, err := NewCollector(WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	simulated := func(cfg CollectorConfig) uint64 {
		reg := obs.New()
		ctx := obs.Into(context.Background(), reg)
		if _, err := col.Collect(ctx, app, 1024, bw, []int{0}, cfg); err != nil {
			t.Fatal(err)
		}
		total := reg.Counter("pebil.warm_refs").Value() +
			reg.Counter("pebil.sample_refs").Value() +
			reg.Counter("pebil.sampling.pilot_refs").Value() +
			reg.Counter("pebil.sampling.refined_refs").Value()
		return total
	}
	fixed := simulated(CollectorConfig{})
	adaptive := simulated(CollectorConfig{Sampling: AdaptiveSampling(0)})
	if adaptive == 0 || fixed == 0 {
		t.Fatalf("counter totals fixed=%d adaptive=%d", fixed, adaptive)
	}
	if ratio := float64(fixed) / float64(adaptive); ratio < 3 {
		t.Errorf("adaptive simulated %d refs vs fixed %d (ratio %.2f, want ≥ 3)", adaptive, fixed, ratio)
	}

	// The subsystem counters must be populated truthfully.
	reg := obs.New()
	ctx := obs.Into(context.Background(), reg)
	if _, err := col.Collect(ctx, app, 1024, bw, []int{0}, CollectorConfig{Sampling: AdaptiveSampling(0)}); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("pebil.sampling.pilot_refs").Value() == 0 {
		t.Error("pilot_refs counter empty")
	}
	if reg.Counter("pebil.blocks").Value() == 0 {
		t.Error("blocks counter empty")
	}
}
