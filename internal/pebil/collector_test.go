package pebil

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"tracex/internal/machine"
	"tracex/internal/synthapp"
)

var fastCfg = CollectorConfig{SampleRefs: 60_000, MaxWarmRefs: 120_000}

func TestCollectorConfigValidate(t *testing.T) {
	good := []CollectorConfig{
		{},
		fastCfg,
		{Workers: 4, BatchSize: 1},
		{SharedHierarchy: true},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []CollectorConfig{
		{SampleRefs: -1},
		{MaxWarmRefs: -1},
		{Workers: -1},
		{BatchSize: -1},
		{BatchSize: maxBatchSize + 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
}

func TestCollectorConfigNormalized(t *testing.T) {
	a := CollectorConfig{Workers: 3, BatchSize: 17}.Normalized()
	b := CollectorConfig{Workers: 11, BatchSize: 4096}.Normalized()
	if a != b {
		t.Errorf("Normalized forms differ for execution-only knobs: %+v vs %+v", a, b)
	}
	if a.SampleRefs != DefaultSampleRefs || a.MaxWarmRefs != DefaultMaxWarmRefs {
		t.Errorf("Normalized did not fill defaults: %+v", a)
	}
	if a.Workers != 0 || a.BatchSize != 0 {
		t.Errorf("Normalized kept execution knobs: %+v", a)
	}
}

func TestNewCollectorConfigOptions(t *testing.T) {
	c, err := NewCollectorConfig(
		WithSampleRefs(123), WithMaxWarmRefs(456),
		WithWorkers(2), WithBatchSize(64), WithSharedHierarchy(true))
	if err != nil {
		t.Fatal(err)
	}
	want := CollectorConfig{SampleRefs: 123, MaxWarmRefs: 456, Workers: 2, BatchSize: 64, SharedHierarchy: true}
	if c != want {
		t.Errorf("NewCollectorConfig = %+v, want %+v", c, want)
	}
	if _, err := NewCollectorConfig(WithWorkers(-3)); err == nil {
		t.Error("invalid option accepted")
	}
}

// TestCountersDeterministicAcrossWorkersAndBatch is the tentpole
// determinism guarantee: workers and batch size are execution-only knobs.
func TestCountersDeterministicAcrossWorkersAndBatch(t *testing.T) {
	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	ctx := context.Background()
	col, err := NewCollector(WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	var base []BlockCounters
	for _, cfg := range []CollectorConfig{
		{SampleRefs: 40_000, MaxWarmRefs: 80_000, Workers: 1, BatchSize: 1},
		{SampleRefs: 40_000, MaxWarmRefs: 80_000, Workers: 1, BatchSize: 257},
		{SampleRefs: 40_000, MaxWarmRefs: 80_000, Workers: 8, BatchSize: 4096},
		{SampleRefs: 40_000, MaxWarmRefs: 80_000, Workers: 3, BatchSize: 1 << 15},
	} {
		got, err := col.Counters(ctx, app, 2048, bw, cfg)
		if err != nil {
			t.Fatalf("Counters(%+v): %v", cfg, err)
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("counters differ for %+v", cfg)
		}
	}
}

func TestCollectorRejectsInvalidConfig(t *testing.T) {
	app := synthapp.Stencil3D()
	bw := machine.BlueWatersP1()
	col, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if _, err := col.Counters(context.Background(), app, 64, bw, CollectorConfig{SampleRefs: -5}); err == nil {
		t.Error("negative SampleRefs accepted")
	}
	if _, err := NewCollector(WithBatchSize(-1)); err == nil {
		t.Error("NewCollector accepted invalid option")
	}
}

func TestCollectorCloseSemantics(t *testing.T) {
	app := synthapp.Stencil3D()
	bw := machine.BlueWatersP1()
	col, err := NewCollector(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Counters(context.Background(), app, 64, bw, fastCfg); err != nil {
		t.Fatalf("Counters before Close: %v", err)
	}
	col.Close()
	col.Close() // idempotent
	if _, err := col.Counters(context.Background(), app, 64, bw, fastCfg); !errors.Is(err, ErrArenaClosed) {
		t.Errorf("Counters after Close = %v, want ErrArenaClosed", err)
	}
	if _, err := col.Collect(context.Background(), app, 64, bw, nil, fastCfg); !errors.Is(err, ErrArenaClosed) {
		t.Errorf("Collect after Close = %v, want ErrArenaClosed", err)
	}
}

// TestCancellationPromptNoGoroutineLeak covers the satellite requirement:
// cancelling mid-collection returns well within 100ms and the collector's
// workers wind down completely on Close (goleak-style final-state check).
func TestCancellationPromptNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	col, err := NewCollector(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A sample far larger than any test budget: only cancellation ends it.
	huge := CollectorConfig{SampleRefs: 1 << 30, MaxWarmRefs: 1 << 30}
	errc := make(chan error, 1)
	go func() {
		_, err := col.Counters(ctx, app, 2048, bw, huge)
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond) // let workers enter the hot loop
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Errorf("cancellation took %v, want <100ms", elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collection did not return after cancellation")
	}
	col.Close()
	// Final-state goroutine check: allow the runtime a moment to retire
	// the worker goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestArenaRunOrderIndependentReduction(t *testing.T) {
	a := NewArena(4)
	defer a.Close()
	out := make([]int, 100)
	err := a.run(context.Background(), 4, len(out), func(i int, _ *scratch) error {
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestArenaRunPrefersRealErrorOverCancellation(t *testing.T) {
	a := NewArena(2)
	defer a.Close()
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := a.run(ctx, 2, 8, func(i int, _ *scratch) error {
		if i == 3 {
			cancel()
			return boom
		}
		return ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Errorf("run = %v, want the real error", err)
	}
}

// TestStreamRefsAllocationFree is the per-reference zero-allocation claim:
// once a worker's scratch is warm, streaming any number of references
// through the simulator allocates nothing.
func TestStreamRefsAllocationFree(t *testing.T) {
	app := synthapp.UH3D()
	works, err := app.Work(2048)
	if err != nil {
		t.Fatal(err)
	}
	var s scratch
	bw := machine.BlueWatersP1()
	sim, err := s.simulator(bw)
	if err != nil {
		t.Fatal(err)
	}
	buf := s.slab(DefaultBatchSize)
	ctx := context.Background()
	for i := range works {
		gen := works[i].Gen
		streamRefs(ctx, sim, gen, buf, 8192) // warm the batch path
		if allocs := testing.AllocsPerRun(5, func() {
			if _, err := streamRefs(ctx, sim, gen, buf, 65536); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("block %s: streamRefs allocated %.1f objects per 65536 refs, want 0", works[i].Spec.Func, allocs)
		}
	}
}

// TestScratchSimulatorReuse checks the geometry-keyed reuse: same hierarchy
// reuses (and flushes) the worker simulator, a different one rebuilds it.
func TestScratchSimulatorReuse(t *testing.T) {
	var s scratch
	bw := machine.BlueWatersP1()
	sim1, err := s.simulator(bw)
	if err != nil {
		t.Fatal(err)
	}
	sim1.Access(0)
	sim2, err := s.simulator(bw)
	if err != nil {
		t.Fatal(err)
	}
	if sim1 != sim2 {
		t.Error("same geometry did not reuse the simulator")
	}
	if c := sim2.Counters(); c.Refs != 0 {
		t.Errorf("reused simulator not flushed: %d refs", c.Refs)
	}
	kr := machine.Kraken()
	sim3, err := s.simulator(kr)
	if err != nil {
		t.Fatal(err)
	}
	if sim3 == sim1 {
		t.Error("different geometry reused the simulator")
	}
	if got, want := len(sim3.Levels()), len(kr.Caches); got != want {
		t.Errorf("rebuilt simulator has %d levels, want %d", got, want)
	}
	// Same geometry as bw but with the prefetcher: must rebuild, not reuse.
	sim4, err := s.simulator(bw)
	if err != nil {
		t.Fatal(err)
	}
	sim5, err := s.simulator(machine.WithPrefetch(bw))
	if err != nil {
		t.Fatal(err)
	}
	if sim5 == sim4 {
		t.Error("prefetch variant reused the non-prefetching simulator")
	}
}
