package pebil

import (
	"fmt"
	"runtime"

	"tracex/internal/cache"
)

// Default tuning constants for CollectorConfig. Zero-valued fields take
// these at execution time, so the zero CollectorConfig is the paper's
// default collection.
const (
	// DefaultSampleRefs is the per-block sample length.
	DefaultSampleRefs = 400_000
	// DefaultMaxWarmRefs caps the per-block cache warm-up stream.
	DefaultMaxWarmRefs = 2_000_000
	// DefaultBatchSize is the address-slab length streamed between the
	// generators and the cache simulator. 4096 addresses (32 KiB) amortizes
	// interface dispatch while staying L1-resident.
	DefaultBatchSize = 4096
	// maxBatchSize bounds per-worker scratch buffers.
	maxBatchSize = 1 << 22
)

// CacheModel selects how per-block cache hit rates are produced: by the
// exact multi-level simulator (the fidelity oracle) or analytically from a
// machine-independent reuse-distance signature. The zero value selects
// ModelExact.
type CacheModel string

const (
	// ModelExact streams every block's sampled addresses through the
	// multi-level cache simulator of the target geometry.
	ModelExact CacheModel = "exact"
	// ModelAnalytical collects one geometry-free reuse-distance signature
	// and derives per-level hit rates for the target geometry from the
	// stack-distance CDF with an associativity correction
	// (cache.Analytical). Unsupported for prefetcher-enabled targets and
	// shared-hierarchy collection; those fail with
	// cache.ErrModelUnsupported.
	ModelAnalytical CacheModel = "analytical"
)

// ParseCacheModel maps a user-facing model name ("", "exact",
// "analytical") to its CacheModel.
func ParseCacheModel(s string) (CacheModel, error) {
	switch CacheModel(s) {
	case "", ModelExact:
		return ModelExact, nil
	case ModelAnalytical:
		return ModelAnalytical, nil
	default:
		return "", fmt.Errorf("pebil: unknown cache model %q (want %q or %q)", s, ModelExact, ModelAnalytical)
	}
}

// CollectorConfig tunes signature collection. It is validated like
// tracex.ExtrapOptions: construct it directly or through
// NewCollectorConfig with functional options, and call Validate before use
// (the Collector does so on every collection). The zero value selects all
// defaults.
//
// Sampling, SharedHierarchy and Model shape the result; Workers and
// BatchSize only schedule the same simulations differently. Determinism
// does not depend on either: every (rank, block) work unit draws from its
// own generator seeded by the block identity, and results are reduced into
// positions indexed by unit, so any worker interleaving produces
// bit-identical BlockCounters.
type CollectorConfig struct {
	// Sampling is the reference-budget policy (see SamplingPolicy). The
	// zero value defers to the deprecated SampleRefs/MaxWarmRefs fields
	// below, which behave as a fixed policy; setting both the policy and
	// the deprecated fields is a validation error.
	Sampling SamplingPolicy
	// SampleRefs is the number of references simulated per block
	// (default DefaultSampleRefs).
	//
	// Deprecated: set Sampling to FixedSampling(n, 0) instead. This field
	// remains as a one-release shim and is rejected when Sampling is set.
	SampleRefs int
	// MaxWarmRefs caps the cache warm-up stream per block (default
	// DefaultMaxWarmRefs; random patterns over multi-megabyte regions need
	// a long warm-up before the last-level cache reaches steady state).
	//
	// Deprecated: set Sampling to FixedSampling(0, n) instead. This field
	// remains as a one-release shim and is rejected when Sampling is set.
	MaxWarmRefs int
	// Workers bounds concurrent work units for one collection; ≤0 means one
	// worker per CPU. The collector's arena caps the effective value.
	Workers int
	// BatchSize is the number of addresses generated and simulated per
	// slab (default DefaultBatchSize). Any positive value yields the same
	// results; it only changes amortization and cancellation granularity.
	BatchSize int
	// SharedHierarchy interleaves every block's address stream through one
	// cache simulator (the paper's Figure 2 processes the task's single
	// address stream on the fly), so blocks contend for cache capacity.
	// The default simulates each block against a private hierarchy, which
	// measures steady-state per-kernel rates. Shared collection is
	// sequential (one simulator).
	SharedHierarchy bool
	// Model selects the cache model hit rates come from (default
	// ModelExact). See CacheModel.
	Model CacheModel
}

// Validate checks the configuration. Zero values are valid (they select
// defaults); negative tuning values and oversized batches are not.
func (c CollectorConfig) Validate() error {
	if err := c.Sampling.Validate(); err != nil {
		return err
	}
	if c.Sampling.Mode != "" && (c.SampleRefs != 0 || c.MaxWarmRefs != 0) {
		return fmt.Errorf("pebil: both Sampling (%s) and the deprecated SampleRefs/MaxWarmRefs fields are set", c.Sampling.Mode)
	}
	if c.SampleRefs < 0 {
		return fmt.Errorf("pebil: negative SampleRefs %d", c.SampleRefs)
	}
	if c.MaxWarmRefs < 0 {
		return fmt.Errorf("pebil: negative MaxWarmRefs %d", c.MaxWarmRefs)
	}
	if c.Workers < 0 {
		return fmt.Errorf("pebil: negative Workers %d", c.Workers)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("pebil: negative BatchSize %d", c.BatchSize)
	}
	if c.BatchSize > maxBatchSize {
		return fmt.Errorf("pebil: BatchSize %d exceeds maximum %d", c.BatchSize, maxBatchSize)
	}
	if _, err := ParseCacheModel(string(c.Model)); err != nil {
		return err
	}
	if c.Model == ModelAnalytical && c.SharedHierarchy {
		return fmt.Errorf("pebil: shared-hierarchy collection %w (blocks contend for one cache; use the exact model)",
			cache.ErrModelUnsupported)
	}
	if c.Sampling.IsAdaptive() {
		if c.SharedHierarchy {
			return fmt.Errorf("pebil: adaptive sampling is incompatible with SharedHierarchy (interleaved blocks share one stream; use a fixed policy)")
		}
		if c.Model == ModelAnalytical {
			return fmt.Errorf("pebil: adaptive sampling %w (per-block error bounds need the exact simulator)",
				cache.ErrModelUnsupported)
		}
	}
	return nil
}

// withDefaults fills unset fields. Fixed sampling policies (and the
// unset policy with its deprecated int fields) collapse into the resolved
// SampleRefs/MaxWarmRefs ints with a zero Sampling — the canonical form
// is the pre-redesign one, so memoization and store keys for every
// non-adaptive configuration are byte-identical to before the
// SamplingPolicy API existed. Adaptive policies keep their normalized
// Sampling and leave the deprecated ints zero.
func (c CollectorConfig) withDefaults() CollectorConfig {
	switch c.Sampling.Mode {
	case SamplingModeAdaptive:
		c.Sampling = c.Sampling.normalizedAdaptive()
	case SamplingModeFixed:
		c.SampleRefs = c.Sampling.SampleRefs
		c.MaxWarmRefs = c.Sampling.MaxWarmRefs
		c.Sampling = SamplingPolicy{}
	}
	if !c.Sampling.IsAdaptive() {
		if c.SampleRefs <= 0 {
			c.SampleRefs = DefaultSampleRefs
		}
		if c.MaxWarmRefs <= 0 {
			c.MaxWarmRefs = DefaultMaxWarmRefs
		}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.Model == "" {
		c.Model = ModelExact
	}
	return c
}

// Normalized returns the configuration with defaults filled and
// execution-only knobs cleared: Workers and BatchSize schedule the same
// simulations differently without changing any result, so both are zeroed.
// Two configurations with equal Normalized forms produce identical
// signatures, which makes the normalized value a safe memoization key
// component.
func (c CollectorConfig) Normalized() CollectorConfig {
	c = c.withDefaults()
	c.Workers = 0
	c.BatchSize = 0
	return c
}

// EffectiveSampling returns the sampling policy the configuration
// resolves to: the normalized adaptive policy, or a fixed policy carrying
// the resolved sample length and warm cap (whether they came from a
// Fixed policy, the deprecated fields, or defaults). Use it for truthful
// reporting of what a collection ran with.
func (c CollectorConfig) EffectiveSampling() SamplingPolicy {
	n := c.Normalized()
	if n.Sampling.IsAdaptive() {
		return n.Sampling
	}
	return SamplingPolicy{Mode: SamplingModeFixed, SampleRefs: n.SampleRefs, MaxWarmRefs: n.MaxWarmRefs}
}

// CollectorOption configures a CollectorConfig, mirroring the Engine's
// functional-option style.
type CollectorOption func(*CollectorConfig)

// WithSampleRefs sets the per-block sample length.
func WithSampleRefs(n int) CollectorOption {
	return func(c *CollectorConfig) { c.SampleRefs = n }
}

// WithMaxWarmRefs sets the per-block warm-up cap.
func WithMaxWarmRefs(n int) CollectorOption {
	return func(c *CollectorConfig) { c.MaxWarmRefs = n }
}

// WithWorkers bounds concurrent work units (and sizes the arena of a
// Collector built with this option).
func WithWorkers(n int) CollectorOption {
	return func(c *CollectorConfig) { c.Workers = n }
}

// WithBatchSize sets the address-slab length.
func WithBatchSize(n int) CollectorOption {
	return func(c *CollectorConfig) { c.BatchSize = n }
}

// WithSharedHierarchy selects interleaved collection through one shared
// cache simulator.
func WithSharedHierarchy(on bool) CollectorOption {
	return func(c *CollectorConfig) { c.SharedHierarchy = on }
}

// WithCacheModel selects the cache model hit rates come from.
func WithCacheModel(m CacheModel) CollectorOption {
	return func(c *CollectorConfig) { c.Model = m }
}

// WithSamplingPolicy sets the reference-budget policy (see SamplingPolicy,
// FixedSampling, AdaptiveSampling).
func WithSamplingPolicy(p SamplingPolicy) CollectorOption {
	return func(c *CollectorConfig) { c.Sampling = p }
}

// NewCollectorConfig applies the options to a zero CollectorConfig and
// validates the result.
func NewCollectorConfig(opts ...CollectorOption) (CollectorConfig, error) {
	var c CollectorConfig
	for _, o := range opts {
		o(&c)
	}
	if err := c.Validate(); err != nil {
		return CollectorConfig{}, err
	}
	return c, nil
}
