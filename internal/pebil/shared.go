package pebil

import (
	"context"
	"time"

	"tracex/internal/addrgen"
	"tracex/internal/cache"
	"tracex/internal/machine"
	"tracex/internal/obs"
	"tracex/internal/synthapp"
)

// sharedLookahead bounds the per-block refill buffers of the shared-
// hierarchy path. The interleave consumes one address at a time, so the
// buffers only amortize generator dispatch; a small slab keeps the total
// lookahead footprint below the batch size of a single private-path worker.
const sharedLookahead = 256

// blockStream feeds one block's addresses through a refill buffer so the
// interleaved consumer pays the generator's batch cost once per
// sharedLookahead references instead of one interface dispatch each.
// Addresses are handed out in exactly generator order; buffering is
// invisible to the simulation.
type blockStream struct {
	gen     addrgen.Generator
	buf     []uint64
	pos     int
	flushes uint64
}

func (b *blockStream) next() uint64 {
	if b.pos == len(b.buf) {
		addrgen.FillBatch(b.gen, b.buf)
		b.pos = 0
		b.flushes++
	}
	a := b.buf[b.pos]
	b.pos++
	return a
}

// collectShared runs every block's sampled stream through ONE cache
// simulator, interleaving references in proportion to each block's share of
// the task's total references — the closest sampled analog of processing
// the task's single interleaved address stream on the fly (Figure 2 of the
// paper). Per-block accounting is attributed access by access, so the pass
// stays sequential; batching enters through per-block lookahead buffers.
func collectShared(ctx context.Context, works []synthapp.Work, target machine.Config, cfg CollectorConfig) ([]BlockCounters, error) {
	sim, err := cache.NewSimulatorOpts(target.Caches, cache.Options{NextLinePrefetch: target.Prefetch})
	if err != nil {
		return nil, err
	}
	levels := len(target.Caches)

	// Interleave with per-block Bresenham accumulators weighted by each
	// block's full reference count, so the sampled mix matches the task's
	// real instruction mix.
	var totalRefs float64
	for i := range works {
		totalRefs += works[i].Refs
	}
	if totalRefs <= 0 {
		return nil, ErrEmptyWorkload
	}
	weights := make([]float64, len(works))
	for i := range works {
		weights[i] = works[i].Refs / totalRefs
	}
	acc := make([]float64, len(works))
	nextBlock := func() int {
		best, bestAcc := 0, -1.0
		for i := range acc {
			acc[i] += weights[i]
			if acc[i] > bestAcc {
				best, bestAcc = i, acc[i]
			}
		}
		acc[best]--
		return best
	}

	look := cfg.BatchSize
	if look > sharedLookahead {
		look = sharedLookahead
	}
	streams := make([]blockStream, len(works))
	for i := range streams {
		streams[i] = blockStream{gen: works[i].Gen, buf: make([]uint64, look)}
		streams[i].pos = look // force a fill on first use
	}

	// Warm-up: one interleaved pass sized like the per-block warm cap.
	// Metric updates are batched per phase, as in simulateBlock.
	m := obs.From(ctx)
	warm := cfg.MaxWarmRefs
	warmStart := time.Now()
	for i := 0; i < warm; i++ {
		if i&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		b := nextBlock()
		sim.Access(streams[b].next())
	}
	m.Counter("pebil.warm_refs").Add(uint64(warm))
	m.Histogram("pebil.block_warm_seconds").Observe(time.Since(warmStart).Seconds())
	sim.ResetCounters()

	// Measured sample: SampleRefs per block on average, attributed per
	// access.
	type perBlock struct {
		refs      uint64
		levelHits []uint64
		mem       uint64
		pf        uint64
	}
	stats := make([]perBlock, len(works))
	for i := range stats {
		stats[i].levelHits = make([]uint64, levels)
	}
	total := cfg.SampleRefs * len(works)
	sampleStart := time.Now()
	lastPF := sim.PrefetchFillCount()
	for i := 0; i < total; i++ {
		if i&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		b := nextBlock()
		lvl := sim.Access(streams[b].next())
		st := &stats[b]
		st.refs++
		if lvl < levels {
			st.levelHits[lvl]++
		} else {
			st.mem++
		}
		if pf := sim.PrefetchFillCount(); pf != lastPF {
			st.pf += pf - lastPF
			lastPF = pf
		}
	}

	var flushes uint64
	for i := range streams {
		flushes += streams[i].flushes
	}
	m.Counter("pebil.batch_flushes").Add(flushes)
	m.Counter("pebil.sample_refs").Add(uint64(total))
	m.Histogram("pebil.block_sample_seconds").Observe(time.Since(sampleStart).Seconds())
	m.Counter("pebil.blocks").Add(uint64(len(works)))

	out := make([]BlockCounters, len(works))
	var fb scratch
	for i := range works {
		st := &stats[i]
		if st.refs == 0 {
			// A vanishingly small block may receive no interleaved slots;
			// give it a private steady-state measurement instead. Its
			// generator has been drained into the lookahead buffer, so
			// rewind it first.
			works[i].Gen.Reset()
			bc, err := simulateBlock(ctx, &works[i], target, cfg, &fb)
			if err != nil {
				return nil, err
			}
			out[i] = bc
			continue
		}
		out[i] = BlockCounters{
			Spec:            works[i].Spec,
			Refs:            works[i].Refs,
			WorkingSetBytes: works[i].WorkingSetBytes,
			Counters: cache.Counters{
				Refs:          st.refs,
				LevelHits:     st.levelHits,
				MemAccesses:   st.mem,
				PrefetchFills: st.pf,
			},
		}
	}
	return out, nil
}
