package uncert

import (
	"math"
	"math/rand"
	"testing"

	"tracex/internal/stats"
)

func TestTQuantileKnownValues(t *testing.T) {
	cases := []struct {
		dof   int
		level float64
		want  float64
	}{
		{1, 0.90, 6.3138},
		{1, 0.50, 1.0000},
		{2, 0.90, 2.9200},
		{2, 0.95, 4.3027},
		{3, 0.90, 2.3534},
		{5, 0.95, 2.5706},
		{10, 0.95, 2.2281},
		{30, 0.90, 1.6973},
		{1000, 0.90, 1.6464},
	}
	for _, c := range cases {
		got := TQuantile(c.dof, c.level)
		if math.Abs(got-c.want) > 2e-3*c.want {
			t.Errorf("TQuantile(%d, %g) = %g, want %g", c.dof, c.level, got, c.want)
		}
	}
	// Monotone in level, shrinking toward the normal quantile in dof.
	if TQuantile(1, 0.95) <= TQuantile(1, 0.9) {
		t.Errorf("quantile not monotone in level")
	}
	z90 := math.Sqrt2 * math.Erfinv(0.90)
	if q := TQuantile(500, 0.90); math.Abs(q-z90) > 0.01 {
		t.Errorf("large-dof quantile %g should approach normal %g", q, z90)
	}
}

func TestAverageWeightsSumToOne(t *testing.T) {
	xs := []float64{4, 8, 16, 32}
	ys := []float64{10.1, 19.8, 40.3, 79.9} // noisy linear
	est, err := Average(nil, xs, ys, 128)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, f := range est.Forms {
		if f.Weight < 0 {
			t.Errorf("negative weight %g for %s", f.Weight, f.Form)
		}
		sum += f.Weight
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %g, want 1", sum)
	}
}

func TestAverageLinearSeriesFavorsLinear(t *testing.T) {
	xs := []float64{4, 8, 16, 32, 64}
	ys := make([]float64, len(xs))
	rng := rand.New(rand.NewSource(7))
	for i, x := range xs {
		ys[i] = 3 + 2*x + rng.NormFloat64()*0.05
	}
	est, err := Average(nil, xs, ys, 256)
	if err != nil {
		t.Fatal(err)
	}
	if est.Top() != "linear" {
		t.Fatalf("top form %q, want linear (forms %+v)", est.Top(), est.Forms)
	}
	want := 3 + 2*256.0
	if math.Abs(est.Mean-want) > 0.05*want {
		t.Errorf("mixture mean %g far from truth %g", est.Mean, want)
	}
	if est.Var <= 0 {
		t.Errorf("predictive variance %g must be positive", est.Var)
	}
}

func TestAverageConstantSeries(t *testing.T) {
	xs := []float64{4, 8, 16}
	ys := []float64{5, 5, 5}
	est, err := Average(nil, xs, ys, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if est.Top() != "constant" {
		t.Fatalf("exact constant series should favor the constant form, got %q", est.Top())
	}
	if math.Abs(est.Mean-5) > 1e-6 {
		t.Errorf("mean %g, want 5", est.Mean)
	}
	// The variance floor keeps even an exact fit from claiming certainty.
	if est.Var <= 0 {
		t.Errorf("variance %g must stay positive under the floor", est.Var)
	}
}

func TestAverageOrderInvariant(t *testing.T) {
	xs := []float64{4, 8, 16, 32}
	ys := []float64{2.2, 3.1, 3.9, 5.2}
	a, err := Average(stats.ExtendedForms(), xs, ys, 512)
	if err != nil {
		t.Fatal(err)
	}
	rev := stats.ExtendedForms()
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	b, err := Average(rev, xs, ys, 512)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.Var != b.Var || a.Dof != b.Dof || len(a.Forms) != len(b.Forms) {
		t.Fatalf("form order changed the estimate: %+v vs %+v", a, b)
	}
	for i := range a.Forms {
		if a.Forms[i] != b.Forms[i] {
			t.Errorf("form %d differs: %+v vs %+v", i, a.Forms[i], b.Forms[i])
		}
	}
}

func TestIntervalsShape(t *testing.T) {
	ivs := Intervals(100, 10, 3, nil)
	if len(ivs) != len(DefaultLevels) {
		t.Fatalf("got %d intervals, want %d", len(ivs), len(DefaultLevels))
	}
	for i, iv := range ivs {
		if iv.Level != DefaultLevels[i] {
			t.Errorf("interval %d level %g, want %g", i, iv.Level, DefaultLevels[i])
		}
		if iv.Lo >= 100 || iv.Hi <= 100 {
			t.Errorf("interval %v does not bracket the mean", iv)
		}
		if math.Abs((100-iv.Lo)-(iv.Hi-100)) > 1e-9 {
			t.Errorf("interval %v not symmetric about the mean", iv)
		}
		if i > 0 && (iv.Lo > ivs[i-1].Lo || iv.Hi < ivs[i-1].Hi) {
			t.Errorf("interval %v not nested inside %v", iv, ivs[i-1])
		}
	}
	// Degenerate and out-of-range levels are skipped.
	if got := Intervals(0, 1, 1, []float64{0, 1, -3, 0.9}); len(got) != 1 {
		t.Errorf("expected only the 0.9 level to survive, got %v", got)
	}
}

func TestAverageBetweenModelSpreadWidens(t *testing.T) {
	// A series that linear and logarithmic explain almost equally well:
	// the mixture variance at a far target must exceed either form's own
	// predictive variance because the two disagree there.
	xs := []float64{8, 16, 32}
	ys := []float64{3.0, 3.6, 4.25}
	est, err := Average(nil, xs, ys, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Forms) < 2 {
		t.Skipf("posterior concentrated on one form: %+v", est.Forms)
	}
	spread := 0.0
	for _, f := range est.Forms {
		d := f.Mean - est.Mean
		spread += f.Weight * d * d
	}
	if spread <= 0 {
		t.Fatalf("no between-model spread despite %d live forms", len(est.Forms))
	}
	if est.Var < spread {
		t.Errorf("mixture variance %g below between-model spread %g", est.Var, spread)
	}
}
