// Package uncert replaces the paper's winner-takes-all canonical-form
// selection with Bayesian posterior model averaging, following the
// Bayesian-inference performance-prediction line of work (PAPERS.md).
//
// For each feature-vector element series the package fits every canonical
// form, converts each fit's residuals into an approximate marginal
// likelihood via the BIC/Laplace approximation, and weights the forms by
// their posterior probability. The extrapolated element becomes the
// weighted mixture mean, and the mixture's predictive variance — the
// weighted sum of each form's own predictive variance plus the
// between-form disagreement — quantifies how wrong the point estimate can
// be at the target count. Quantiles of a Student-t with the residual
// degrees of freedom turn that variance into prediction intervals; with
// the paper's three input counts the dof is 1, which correctly yields the
// very wide tails a two-point residual estimate deserves.
package uncert

import (
	"fmt"
	"math"
	"sort"

	"tracex/internal/stats"
)

// DefaultLevels are the central interval levels reported when a caller
// does not choose its own: the 50%, 90% and 95% bands.
var DefaultLevels = []float64{0.5, 0.9, 0.95}

// MinWeight is the posterior weight below which a form is dropped from
// the mixture (and the rest renormalized). A discarded form's predictive
// divergence at the extrapolation target can be astronomically large
// (e.g. an exponential at 64k cores); letting a 1e-9-probability model
// contribute (f_m - mu)^2 would swamp the variance with noise the
// posterior has already rejected.
const MinWeight = 1e-4

// minRelSD floors each form's predictive standard deviation at this
// fraction of the predicted magnitude. Synthetic or heavily-averaged
// series can fit a canonical form to machine precision, collapsing the
// residual variance to zero; a zero-width interval claims impossible
// certainty about an extrapolation.
const minRelSD = 1e-4

// Interval is one central prediction interval: the true value lies in
// [Lo, Hi] with probability Level under the posterior predictive
// distribution.
type Interval struct {
	Level float64 `json:"level"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
}

// FormPosterior is one canonical form's contribution to the mixture.
type FormPosterior struct {
	// Form is the canonical form's name.
	Form string
	// Weight is the posterior probability of the form given the series
	// (BIC approximation, uniform prior). Weights sum to 1 across the
	// kept forms.
	Weight float64
	// Mean is the form's own prediction at the target.
	Mean float64
	// Var is the form's own predictive variance at the target.
	Var float64
}

// Estimate is the model-averaged prediction for one element series at one
// target count.
type Estimate struct {
	// Mean is the posterior-weighted mixture mean at the target.
	Mean float64
	// Var is the mixture's predictive variance: the weighted within-form
	// predictive variances plus the between-form spread.
	Var float64
	// Dof is the residual degrees of freedom of the dominant form
	// (n - k, floored at 1) — the Student-t dof for interval quantiles.
	Dof int
	// Forms lists the kept forms by descending weight (name-ordered on
	// ties, so the output is independent of the input form order).
	Forms []FormPosterior
}

// SD returns the mixture predictive standard deviation.
func (e *Estimate) SD() float64 { return math.Sqrt(e.Var) }

// Top returns the highest-weight form's name ("" for an empty estimate).
func (e *Estimate) Top() string {
	if len(e.Forms) == 0 {
		return ""
	}
	return e.Forms[0].Form
}

// Average fits every form to the series and returns the posterior
// model-averaged prediction at x. The forms slice may be nil (the
// paper's four canonical forms). At least two observations are required;
// forms not applicable to the data are skipped, and an error is returned
// only when no form fits at all.
func Average(forms []stats.Form, xs, ys []float64, x float64) (*Estimate, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nil, fmt.Errorf("uncert: need at least 2 paired observations, have %d/%d", len(xs), len(ys))
	}
	sel := stats.NewSelector(forms)
	all, err := sel.FitAll(xs, ys)
	if err != nil {
		return nil, err
	}
	n := float64(len(xs))

	// BIC per form from the original-space SSE: n*ln(SSE/n) + k*ln(n).
	// The SSE floor keeps exact interpolants (SSE = 0) finite; because
	// every exact fit hits the same floor, ties then resolve purely on
	// the k*ln(n) parsimony penalty.
	var scale float64
	for _, y := range ys {
		scale += y * y
	}
	sseFloor := 1e-12*scale + 1e-300

	type cand struct {
		name string
		fit  stats.FitResult
		bic  float64
	}
	cands := make([]cand, 0, len(all))
	minBIC := math.Inf(1)
	for name, fit := range all {
		pred := fit.Model.Eval(x)
		if math.IsNaN(pred) || math.IsInf(pred, 0) {
			continue
		}
		k := float64(len(fit.Model.Params()))
		sse := fit.SSE
		if sse < sseFloor {
			sse = sseFloor
		}
		bic := n*math.Log(sse/n) + k*math.Log(n)
		cands = append(cands, cand{name: name, fit: fit, bic: bic})
		if bic < minBIC {
			minBIC = bic
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("uncert: no form yields a finite prediction at x=%g", x)
	}
	// Posterior weights with a uniform prior: w ∝ exp(-ΔBIC/2).
	total := 0.0
	weights := make([]float64, len(cands))
	for i, c := range cands {
		weights[i] = math.Exp(-(c.bic - minBIC) / 2)
		total += weights[i]
	}
	kept := make([]FormPosterior, 0, len(cands))
	for i, c := range cands {
		w := weights[i] / total
		if w < MinWeight {
			continue
		}
		mean := c.fit.Model.Eval(x)
		kept = append(kept, FormPosterior{
			Form:   c.name,
			Weight: w,
			Mean:   mean,
			Var:    predictiveVar(c.name, c.fit, xs, ys, x, mean),
		})
	}
	// Renormalize after the cut and order by weight (name on ties) so the
	// result is deterministic and independent of form order.
	total = 0
	for _, f := range kept {
		total += f.Weight
	}
	for i := range kept {
		kept[i].Weight /= total
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Weight != kept[j].Weight {
			return kept[i].Weight > kept[j].Weight
		}
		return kept[i].Form < kept[j].Form
	})

	est := &Estimate{Forms: kept}
	for _, f := range kept {
		est.Mean += f.Weight * f.Mean
	}
	for _, f := range kept {
		d := f.Mean - est.Mean
		est.Var += f.Weight * (f.Var + d*d)
	}
	kTop := len(all[kept[0].Form].Model.Params())
	est.Dof = len(xs) - kTop
	if est.Dof < 1 {
		est.Dof = 1
	}
	return est, nil
}

// predictiveVar approximates one form's predictive variance at x using the
// classic OLS prediction-variance formula s^2*(1 + 1/n + (t-tbar)^2/Stt)
// in the form's own regressor domain t (x for linear-family forms, ln x
// for the logarithmic family). Multiplicative forms (exponential, power)
// are linear in log space, so their residual scale is estimated there and
// mapped back with the delta method (var[f] ≈ f^2 var[ln f]).
func predictiveVar(name string, fit stats.FitResult, xs, ys []float64, x, mean float64) float64 {
	n := float64(len(xs))
	k := float64(len(fit.Model.Params()))
	dof := n - k
	if dof < 1 {
		dof = 1
	}

	// Regressor domain and residual space per form.
	logX := name == "logarithmic" || name == "power"
	logY := name == "exponential" || name == "power"
	t := x
	if logX {
		if x <= 0 {
			logX, t = false, x
		} else {
			t = math.Log(x)
		}
	}

	// Leverage term (0 for the constant form, which has no regressor).
	lev := 0.0
	if name != "constant" {
		var tbar float64
		ts := make([]float64, 0, len(xs))
		ok := true
		for _, xi := range xs {
			ti := xi
			if logX {
				if xi <= 0 {
					ok = false
					break
				}
				ti = math.Log(xi)
			}
			ts = append(ts, ti)
			tbar += ti
		}
		if ok {
			tbar /= n
			var stt float64
			for _, ti := range ts {
				d := ti - tbar
				stt += d * d
			}
			if stt > 0 {
				d := t - tbar
				lev = d * d / stt
			}
		}
	}
	factor := 1 + 1/n + lev

	if logY {
		// Residual scale in log space; delta method back to the original.
		var sse float64
		ok := true
		for i, xi := range xs {
			p := fit.Model.Eval(xi)
			if p == 0 || ys[i] == 0 || (p > 0) != (ys[i] > 0) {
				ok = false
				break
			}
			r := math.Log(math.Abs(ys[i])) - math.Log(math.Abs(p))
			sse += r * r
		}
		if ok {
			s2 := sse / dof
			v := mean * mean * s2 * factor
			return floorVar(v, mean)
		}
	}
	s2 := fit.SSE / dof
	return floorVar(s2*factor, mean)
}

// floorVar applies the minRelSD floor to a predictive variance.
func floorVar(v, mean float64) float64 {
	min := minRelSD * math.Abs(mean)
	if minV := min * min; v < minV {
		return minV
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Intervals converts a posterior predictive mean, standard deviation and
// Student-t dof into central prediction intervals at the given levels
// (DefaultLevels when nil). Levels outside (0, 1) are skipped.
func Intervals(mean, sd float64, dof int, levels []float64) []Interval {
	if levels == nil {
		levels = DefaultLevels
	}
	out := make([]Interval, 0, len(levels))
	for _, lv := range levels {
		if !(lv > 0 && lv < 1) {
			continue
		}
		q := TQuantile(dof, lv) * sd
		out = append(out, Interval{Level: lv, Lo: mean - q, Hi: mean + q})
	}
	return out
}

// TQuantile returns the two-sided Student-t quantile q with
// P(|T_dof| <= q) = level: the half-width multiplier of a central
// prediction interval. Closed forms cover dof 1 and 2; larger dof invert
// the CDF numerically, and very large dof fall back to the normal
// quantile.
func TQuantile(dof int, level float64) float64 {
	if !(level > 0 && level < 1) {
		return 0
	}
	if dof < 1 {
		dof = 1
	}
	p := (1 + level) / 2 // one-sided probability
	switch {
	case dof == 1:
		return math.Tan(math.Pi * (p - 0.5))
	case dof == 2:
		a := 2*p - 1
		return a * math.Sqrt(2/(1-a*a))
	case dof >= 200:
		return math.Sqrt2 * math.Erfinv(level)
	}
	// Bisection on the CDF expressed through the regularized incomplete
	// beta function: P(|T| <= t) = 1 - I_{v/(v+t^2)}(v/2, 1/2).
	v := float64(dof)
	cdf2 := func(t float64) float64 {
		return 1 - betaInc(v/2, 0.5, v/(v+t*t))
	}
	lo, hi := 0.0, 2.0
	for cdf2(hi) < level && hi < 1e8 {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if cdf2(mid) < level {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// betaInc is the regularized incomplete beta function I_x(a, b) via the
// standard continued-fraction expansion (modified Lentz).
func betaInc(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction of the incomplete beta function
// (modified Lentz's method).
func betaCF(a, b, x float64) float64 {
	const tiny = 1e-300
	const eps = 1e-14
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 300; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
