// Package memo provides a bounded, concurrency-safe memoization cache with
// singleflight deduplication: concurrent requests for the same key share one
// computation, and successful results are retained in an LRU store. The
// pipeline's expensive artifacts — machine profiles from MultiMAPS sweeps
// and application signatures from cache simulation — are deterministic
// functions of their inputs, which makes them ideal memoization targets; the
// Engine in the root package keys them by machine fingerprint and
// collection parameters.
package memo

import (
	"container/list"
	"context"
	"sync"
)

// flight is one in-progress computation; waiters block on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache memoizes the results of a keyed computation. The zero value is not
// usable; construct with New. A Cache with capacity 0 stores nothing but
// still deduplicates concurrent computations of the same key.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // most-recent first; elements hold *stored[K, V]
	byKey    map[K]*list.Element
	inflight map[K]*flight[V]
	hits     uint64
	misses   uint64
	evicted  uint64
}

// stored is one retained cache entry.
type stored[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache retaining up to capacity entries (least recently used
// evicted first). A capacity of 0 disables retention — every Do runs the
// function (deduplicating concurrent callers); a negative capacity means
// unbounded retention.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{
		capacity: capacity,
		order:    list.New(),
		byKey:    map[K]*list.Element{},
		inflight: map[K]*flight[V]{},
	}
}

// Do returns the value for key, computing it with fn on a miss. Concurrent
// calls for the same key share a single fn invocation. Successful results
// are cached (subject to capacity); errors are returned to every sharing
// caller and never cached. A caller whose ctx is cancelled while waiting on
// another caller's computation returns ctx.Err() immediately; the
// computation itself keeps running for the callers that remain. hit reports
// whether the value was served without running fn.
func (c *Cache[K, V]) Do(ctx context.Context, key K, fn func() (V, error)) (val V, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		v := el.Value.(*stored[K, V]).val
		c.mu.Unlock()
		return v, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-fl.done:
			return fl.val, true, fl.err
		case <-ctx.Done():
			var zero V
			return zero, false, ctx.Err()
		}
	}
	fl := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.val, fl.err = fn()
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil && c.capacity != 0 {
		c.insert(key, fl.val)
	}
	c.mu.Unlock()
	return fl.val, false, fl.err
}

// insert adds an entry and evicts beyond capacity. Caller holds mu.
func (c *Cache[K, V]) insert(key K, val V) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*stored[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&stored[K, V]{key: key, val: val})
	for c.capacity > 0 && c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*stored[K, V]).key)
		c.evicted++
	}
}

// Get returns the cached value for key without computing anything.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*stored[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Len returns the number of retained entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the cumulative hit and miss counts. A call that joins an
// in-flight computation counts as a hit (no new work was started).
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns how many retained entries LRU eviction has discarded.
func (c *Cache[K, V]) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}
