package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesSuccess(t *testing.T) {
	c := New[string, int](4)
	calls := 0
	fn := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, hit, err := c.Do(context.Background(), "k", fn)
		if err != nil || v != 42 {
			t.Fatalf("Do #%d: %d, %v", i, v, err)
		}
		if wantHit := i > 0; hit != wantHit {
			t.Errorf("Do #%d hit = %v", i, hit)
		}
	}
	if calls != 1 {
		t.Errorf("fn ran %d times", calls)
	}
	if hits, misses := c.Stats(); hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestDoDoesNotCacheErrors(t *testing.T) {
	c := New[string, int](4)
	calls := 0
	boom := errors.New("boom")
	fn := func() (int, error) { calls++; return 0, boom }
	for i := 0; i < 2; i++ {
		if _, _, err := c.Do(context.Background(), "k", fn); !errors.Is(err, boom) {
			t.Fatalf("Do #%d err = %v", i, err)
		}
	}
	if calls != 2 {
		t.Errorf("error was cached: fn ran %d times", calls)
	}
	if c.Len() != 0 {
		t.Errorf("cache retained a failed entry")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int, int](2)
	for k := 0; k < 3; k++ {
		k := k
		c.Do(context.Background(), k, func() (int, error) { return k * 10, nil })
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Get(0); ok {
		t.Error("oldest entry survived eviction")
	}
	if v, ok := c.Get(2); !ok || v != 20 {
		t.Errorf("newest entry lost: %d, %v", v, ok)
	}
}

func TestZeroCapacityDisablesRetention(t *testing.T) {
	c := New[string, int](0)
	calls := 0
	fn := func() (int, error) { calls++; return 1, nil }
	c.Do(context.Background(), "k", fn)
	c.Do(context.Background(), "k", fn)
	if calls != 2 {
		t.Errorf("zero-capacity cache retained: fn ran %d times", calls)
	}
}

func TestSingleflightDeduplicates(t *testing.T) {
	c := New[string, int](4)
	var calls atomic.Int64
	gate := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "k", func() (int, error) {
				calls.Add(1)
				<-gate // hold the flight open until all workers have joined
				return 7, nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times for %d concurrent callers", got, workers)
	}
	for i, v := range results {
		if v != 7 {
			t.Errorf("worker %d got %d", i, v)
		}
	}
}

func TestWaiterHonoursContext(t *testing.T) {
	c := New[string, int](4)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter returned %v", err)
	}
	close(release)
}

func TestDistinctKeysComputeIndependently(t *testing.T) {
	c := New[int, string](-1) // unbounded
	for k := 0; k < 50; k++ {
		k := k
		v, _, err := c.Do(context.Background(), k, func() (string, error) {
			return fmt.Sprint(k), nil
		})
		if err != nil || v != fmt.Sprint(k) {
			t.Fatalf("key %d: %q, %v", k, v, err)
		}
	}
	if c.Len() != 50 {
		t.Errorf("unbounded cache len = %d", c.Len())
	}
}

func TestEvictionCount(t *testing.T) {
	c := New[int, int](2)
	for k := 0; k < 5; k++ {
		k := k
		if _, _, err := c.Do(context.Background(), k, func() (int, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Evictions(); got != 3 {
		t.Errorf("evictions = %d, want 3 (5 inserts into capacity 2)", got)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}
