package fleet

import (
	"sync"
	"time"

	"tracex/internal/obs"
)

// Probation tuning. After probationAfter consecutive failures a peer is
// benched for probationBase, doubling per further failed probe up to
// probationMax, each interval jittered ±50% so a fleet of clients does not
// re-probe a recovering peer in lockstep.
const (
	probationAfter = 3
	probationBase  = 500 * time.Millisecond
	probationMax   = 30 * time.Second
	// healthAlpha weights the per-peer EWMA error rate: ~0.3 means the
	// last ~10 exchanges dominate.
	healthAlpha = 0.3
)

// peerHealth tracks one peer's observed quality: an EWMA error rate over
// recent exchanges, a consecutive-failure streak, and the probation
// (circuit-breaker) window during which the fleet skips the peer entirely
// and lets the engine collect locally.
type peerHealth struct {
	mu sync.Mutex
	// rate observes 1 per failure, 0 per success.
	rate *obsEWMA
	// streak counts consecutive failures; any success resets it.
	streak int
	// until is the probation deadline (zero when not on probation);
	// backoff is the current probation interval before jitter.
	until   time.Time
	backoff time.Duration
	// Cumulative counters, surfaced per peer in FleetStatus.
	fetches, hits, errors, probations uint64
}

// obsEWMA aliases the observability EWMA so health.go reads on its own.
type obsEWMA = obs.EWMA

func newPeerHealth() *peerHealth {
	return &peerHealth{rate: obs.NewEWMA(healthAlpha)}
}

// available reports whether the peer may be tried now: true unless a
// probation window is open. It does not count as a probe.
func (h *peerHealth) available(now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.until.IsZero() || !now.Before(h.until)
}

// observe records the outcome of one exchange with the peer, reporting
// whether it opened a probation window. A success clears any probation; a
// failure extends the streak and, past probationAfter, opens (or doubles)
// a probation window jittered by the caller-supplied jitter function.
func (h *peerHealth) observe(ok bool, now time.Time, jitter func(time.Duration) time.Duration) (benched bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fetches++
	if ok {
		h.hits++
		h.rate.Observe(0)
		h.streak = 0
		h.until = time.Time{}
		h.backoff = 0
		return false
	}
	h.errors++
	h.rate.Observe(1)
	h.streak++
	if h.streak < probationAfter {
		return false
	}
	if h.backoff == 0 {
		h.backoff = probationBase
	} else if h.backoff < probationMax {
		h.backoff *= 2
		if h.backoff > probationMax {
			h.backoff = probationMax
		}
	}
	h.until = now.Add(jitter(h.backoff))
	h.probations++
	return true
}

// healthSnapshot is a point-in-time copy for FleetStatus.
type healthSnapshot struct {
	healthy                           bool
	errorRate                         float64
	fetches, hits, errors, probations uint64
}

// snapshot returns the peer's current state. A peer with no observations
// yet is healthy with error rate 0.
func (h *peerHealth) snapshot(now time.Time) healthSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	rate := h.rate.Value()
	if rate != rate { // NaN before the first observation
		rate = 0
	}
	return healthSnapshot{
		healthy:    h.until.IsZero() || !now.Before(h.until),
		errorRate:  rate,
		fetches:    h.fetches,
		hits:       h.hits,
		errors:     h.errors,
		probations: h.probations,
	}
}
