package fleet

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testPeers builds n synthetic peer URLs.
func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://10.0.0.%d:8581", i+1)
	}
	return peers
}

// testKeys builds n synthetic signature keys shaped like real triples.
func testKeys(n int) []string {
	apps := []string{"stencil3d", "uh3d", "gups", "milc", "hycom"}
	machines := []string{"bluewaters", "gordon", "trestles"}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s@%d@%s", apps[i%len(apps)], 1<<(uint(i)%12), machines[i%len(machines)])
	}
	// Real fleets key far more identities than app×machine combinations;
	// add a synthetic spread so balance statistics are meaningful.
	for i := range keys {
		keys[i] = fmt.Sprintf("%s#%d", keys[i], i)
	}
	return keys
}

// TestRingNormalization pins peer canonicalization: scheme default,
// trailing slash, whitespace, duplicates and ordering all collapse to one
// membership.
func TestRingNormalization(t *testing.T) {
	a := NewRing([]string{"http://a:1/", " b:2 ", "http://a:1", "b:2"})
	b := NewRing([]string{"http://b:2", "a:1"})
	ap, bp := a.Peers(), b.Peers()
	if len(ap) != 2 || len(bp) != 2 || ap[0] != bp[0] || ap[1] != bp[1] {
		t.Fatalf("normalized memberships differ: %v vs %v", ap, bp)
	}
	if !a.Contains("a:1/") || !a.Contains("http://b:2") {
		t.Error("Contains must normalize its argument")
	}
}

// TestRingBalance pins the balance acceptance bound: at 100k keys over 3–9
// peers, every peer's share is within ±15% of 1/n.
func TestRingBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-key distribution in -short mode")
	}
	keys := testKeys(100_000)
	for n := 3; n <= 9; n++ {
		ring := NewRing(testPeers(n))
		counts := map[string]int{}
		for _, k := range keys {
			counts[ring.Owner(k)]++
		}
		ideal := float64(len(keys)) / float64(n)
		for _, p := range ring.Peers() {
			share := float64(counts[p]) / ideal
			if share < 0.85 || share > 1.15 {
				t.Errorf("%d peers: %s owns %.3f of ideal share, want within ±15%%", n, p, share)
			}
		}
	}
}

// TestRingMinimalRemapping pins the rendezvous guarantee: removing a peer
// moves only that peer's keys (every move lands elsewhere, nothing
// shuffles between survivors), and adding one steals at most ~1/n plus
// statistical noise.
func TestRingMinimalRemapping(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-key remapping in -short mode")
	}
	keys := testKeys(100_000)
	peers := testPeers(6)
	full := NewRing(peers)
	removed := peers[2]
	smaller := NewRing(append(append([]string{}, peers[:2]...), peers[3:]...))

	moved := 0
	for _, k := range keys {
		before, after := full.Owner(k), smaller.Owner(k)
		if before == after {
			continue
		}
		moved++
		// Strict HRW property: a key only moves because its owner left.
		if before != removed {
			t.Fatalf("key %s moved %s → %s though %s left the ring", k, before, after, removed)
		}
	}
	// The departed peer's keys (~1/6 of the space) must move, nothing more.
	bound := int(float64(len(keys)) / 6 * 1.15)
	if moved == 0 || moved > bound {
		t.Errorf("removal moved %d keys, want (0, %d]", moved, bound)
	}

	// Adding the peer back restores the original ownership exactly.
	restored := NewRing(append(append([]string{}, smaller.Peers()...), removed))
	for _, k := range keys[:1000] {
		if restored.Owner(k) != full.Owner(k) {
			t.Fatalf("re-adding %s did not restore ownership of %s", removed, k)
		}
	}
}

// TestRingGolden pins cross-process determinism: ownership of a fixed key
// set under a fixed membership matches a golden file byte for byte, so two
// builds (or two machines) can never disagree about who owns a key.
func TestRingGolden(t *testing.T) {
	ring := NewRing(testPeers(5))
	owners := map[string]string{}
	for _, k := range testKeys(64) {
		owners[k] = ring.Owner(k)
	}
	got, err := json.MarshalIndent(owners, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "ring_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("ring ownership diverged from golden file %s (run with -update if the hash changed intentionally)", golden)
	}
}

// TestRingEmptyAndSingle pins the degenerate rings.
func TestRingEmptyAndSingle(t *testing.T) {
	if owner := NewRing(nil).Owner("k"); owner != "" {
		t.Errorf("empty ring owner = %q, want empty", owner)
	}
	one := NewRing([]string{"http://solo:1"})
	if owner := one.Owner("k"); owner != "http://solo:1" {
		t.Errorf("single ring owner = %q", owner)
	}
	if share := one.OwnedShare("solo:1", 64); share != 1 {
		t.Errorf("single-ring self share = %v, want 1", share)
	}
	if share := one.OwnedShare("other:9", 64); share != 0 {
		t.Errorf("single-ring foreign share = %v, want 0", share)
	}
}

// TestRingOwnedShare pins the share estimate against the balance bound.
func TestRingOwnedShare(t *testing.T) {
	peers := testPeers(4)
	ring := NewRing(peers)
	total := 0.0
	for _, p := range peers {
		s := ring.OwnedShare(p, 4096)
		if s < 0.25*0.85 || s > 0.25*1.15 {
			t.Errorf("share of %s = %.3f, want 0.25 ±15%%", p, s)
		}
		total += s
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("shares sum to %v, want 1", total)
	}
}
