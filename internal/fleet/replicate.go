package fleet

import (
	"context"
	"fmt"

	"tracex"
	"tracex/client"
	"tracex/internal/store"
	"tracex/wire"
)

// Replicate warm-starts the engine's store from the fleet: it asks every
// peer for the signature keys it holds beyond this node's own manifest
// (POST /v1/fleet/sync), keeps the ones the ring assigns to this node, and
// pulls each over the store read path into the local disk store. A node
// that restarts with an empty disk — or joins a ring whose keys it now
// owns — thereby serves its share from disk instead of re-collecting.
//
// The pull is strictly best-effort and bounded: peers are visited one at a
// time, each GET rides the fleet's fetch semaphore and timeout, an
// unreachable peer is skipped (its keys stay collectable on demand), and
// ctx cancellation stops the sweep between keys. It returns the number of
// signatures pulled and the first error seen, and records progress in the
// fleet.replication.{pulled,errors} counters either way.
func (f *Fleet) Replicate(ctx context.Context, eng *tracex.Engine) (pulled int, firstErr error) {
	defer f.replDone.Store(true)
	st := eng.Store()
	if st == nil {
		return 0, nil
	}
	fail := func(err error) {
		f.replErrors.Inc()
		if firstErr == nil {
			firstErr = err
		}
	}

	have, haveSet := manifestTriples(st)
	for _, peer := range f.Ring().Peers() {
		if peer == f.self {
			continue
		}
		if err := ctx.Err(); err != nil {
			fail(err)
			return pulled, firstErr
		}
		rem, health := f.peer(peer)
		if rem == nil || health == nil || !health.available(f.now()) {
			continue
		}
		resp, err := rem.FleetSync(ctx, &wire.FleetSyncRequest{Have: have})
		if err != nil {
			health.observe(false, f.now(), f.jitter)
			fail(fmt.Errorf("fleet: sync with %s: %w", peer, err))
			continue
		}
		health.observe(true, f.now(), f.jitter)
		for _, e := range resp.Entries {
			key := client.Key(e.App, e.Cores, e.Machine)
			if haveSet[key] || !f.Owns(key) {
				continue
			}
			if err := ctx.Err(); err != nil {
				fail(err)
				return pulled, firstErr
			}
			if err := f.pullOne(ctx, rem, st, key, e); err != nil {
				fail(fmt.Errorf("fleet: pulling %s from %s: %w", key, peer, err))
				continue
			}
			haveSet[key] = true
			have = append(have, key)
			pulled++
			f.replPulled.Inc()
		}
	}
	return pulled, firstErr
}

// pullOne fetches one owned signature from a peer and files it in the
// local store under the canonical key for its identity.
func (f *Fleet) pullOne(ctx context.Context, rem remote, st *tracex.SignatureStore, key string, e wire.FleetSyncEntry) error {
	select {
	case f.sem <- struct{}{}:
		defer func() { <-f.sem }()
	case <-ctx.Done():
		return ctx.Err()
	}
	ctx, cancel := context.WithTimeout(ctx, f.fetchTimeout)
	defer cancel()
	stored, err := rem.GetSignature(ctx, key)
	if err != nil {
		return err
	}
	sig, err := validated(stored.Signature, e.App, e.Cores, e.Machine)
	if err != nil {
		return err
	}
	m, err := tracex.LoadMachine(e.Machine)
	if err != nil {
		return err
	}
	_, err = st.Put(sig, tracex.StoreKey(e.App, e.Cores, m, tracex.CollectOptions{}))
	return err
}

// manifestTriples lists the wire-level signature keys (app@cores@machine)
// the local store already resolves, as a slice for the sync request and a
// set for pull filtering. Reuse profiles are excluded: they are
// machine-independent and cheap to re-record relative to a signature.
func manifestTriples(st *tracex.SignatureStore) ([]string, map[string]bool) {
	set := map[string]bool{}
	var list []string
	for _, e := range st.Entries() {
		if e.Kind != store.KindSignature {
			continue
		}
		key := client.Key(e.App, e.Cores, e.Machine)
		if !set[key] {
			set[key] = true
			list = append(list, key)
		}
	}
	return list, set
}
