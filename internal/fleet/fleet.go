package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tracex"
	"tracex/client"
	"tracex/internal/obs"
	"tracex/wire"
)

// Shard modes: how a node handles a key the ring assigns to a peer. The
// strings are the wire vocabulary (shared with the -shard-mode flag and
// FleetStatusResponse.Mode).
const (
	// ModeFetch (default): the non-owner delegates collection to the owner
	// and fetches the result over the store API, serving it locally with
	// provenance "peer".
	ModeFetch = wire.FleetModeFetch
	// ModeRedirect: like fetch on the predict path, but a direct
	// GET /v1/signatures/{key} for a remote-owned, locally-missing key
	// answers 307 to the owner instead of proxying the bytes.
	ModeRedirect = wire.FleetModeRedirect
)

// Sentinel errors callers branch on.
var (
	// ErrOwnedLocally reports a key the ring assigns to this node: there
	// is no remote to fetch from, the local engine should collect.
	ErrOwnedLocally = errors.New("fleet: key owned locally")
	// ErrPeerUnavailable reports an owner currently on probation; the
	// engine falls back to a local collection.
	ErrPeerUnavailable = errors.New("fleet: owner on probation")
	// ErrNoPeers reports an empty ring.
	ErrNoPeers = errors.New("fleet: no peers")
)

// remote is the slice of the HTTP client the fleet uses, injectable so unit
// tests can script peers without sockets. *client.Client implements it.
type remote interface {
	GetSignature(ctx context.Context, key string) (*wire.StoredSignatureResponse, error)
	Collect(ctx context.Context, req *wire.SignatureRequest) (*wire.SignatureResponse, error)
	FleetSync(ctx context.Context, req *wire.FleetSyncRequest) (*wire.FleetSyncResponse, error)
}

// Config configures a Fleet.
type Config struct {
	// Self is this node's advertised base URL — its identity on the ring.
	// Required; it is added to Peers if absent.
	Self string
	// Peers is the full static membership (comma list / file contents
	// already split). See ParsePeers and LoadPeers.
	Peers []string
	// Mode is ModeFetch (default) or ModeRedirect.
	Mode string
	// MaxFetches bounds concurrent peer fetches so a slow peer cannot
	// starve local work. Default 4.
	MaxFetches int
	// FetchTimeout bounds one peer exchange, including a delegated
	// collection on the owner. Default 2 minutes.
	FetchTimeout time.Duration
	// Registry receives fleet.* metrics; nil disables them. Share it with
	// the engine (tracex.WithRegistry) so one /metrics page shows both.
	Registry *obs.Registry

	// newRemote constructs the per-peer client; tests inject fakes. The
	// default dials base with the shared client package.
	newRemote func(base string) remote
	// now and jitter are injectable for deterministic probation tests.
	now    func() time.Time
	jitter func(time.Duration) time.Duration
}

// Fleet is one node's view of the signature-sharing cluster: the current
// ring, a health tracker and client per peer, and the bounded fetch
// semaphore. It implements tracex.RemoteTier, so plugging it into an
// engine (tracex.WithRemoteTier) inserts the peer tier between disk and
// collection. All methods are safe for concurrent use; SetPeers may be
// called at any time (SIGHUP / poll reload).
type Fleet struct {
	self         string
	mode         string
	fetchTimeout time.Duration
	sem          chan struct{}
	newRemote    func(base string) remote
	now          func() time.Time
	jitter       func(time.Duration) time.Duration

	mu      sync.RWMutex
	ring    *Ring
	health  map[string]*peerHealth
	remotes map[string]remote

	ownedShare atomic.Uint64 // float64 bits, recomputed on SetPeers

	fetches    *obs.Counter
	hits       *obs.Counter
	errors     *obs.Counter
	probations *obs.Counter
	replPulled *obs.Counter
	replErrors *obs.Counter
	replDone   atomic.Bool
}

// New builds a Fleet from cfg. The returned fleet is ready to serve as a
// remote tier; call SetPeers later to apply membership reloads.
func New(cfg Config) (*Fleet, error) {
	self := NormalizePeer(cfg.Self)
	if self == "" {
		return nil, fmt.Errorf("fleet: empty self URL")
	}
	mode := cfg.Mode
	if mode == "" {
		mode = ModeFetch
	}
	if mode != ModeFetch && mode != ModeRedirect {
		return nil, fmt.Errorf("fleet: unknown shard mode %q (want %q or %q)", cfg.Mode, ModeFetch, ModeRedirect)
	}
	maxFetches := cfg.MaxFetches
	if maxFetches <= 0 {
		maxFetches = 4
	}
	timeout := cfg.FetchTimeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	f := &Fleet{
		self:         self,
		mode:         mode,
		fetchTimeout: timeout,
		sem:          make(chan struct{}, maxFetches),
		newRemote:    cfg.newRemote,
		now:          cfg.now,
		jitter:       cfg.jitter,
		health:       map[string]*peerHealth{},
		remotes:      map[string]remote{},
		fetches:      cfg.Registry.Counter("fleet.peer.fetches"),
		hits:         cfg.Registry.Counter("fleet.peer.hits"),
		errors:       cfg.Registry.Counter("fleet.peer.errors"),
		probations:   cfg.Registry.Counter("fleet.peer.probations"),
		replPulled:   cfg.Registry.Counter("fleet.replication.pulled"),
		replErrors:   cfg.Registry.Counter("fleet.replication.errors"),
	}
	if f.newRemote == nil {
		// A couple of polite retries: a delegated collection can land while
		// the owner's admission queue is briefly full, and honoring its
		// Retry-After beats falling back to a redundant local collection.
		f.newRemote = func(base string) remote { return client.New(base, client.WithRetries(2)) }
	}
	if f.now == nil {
		f.now = time.Now
	}
	if f.jitter == nil {
		// ±50% full jitter: d/2 + U[0, d).
		f.jitter = func(d time.Duration) time.Duration {
			return d/2 + time.Duration(rand.Int63n(int64(d)))
		}
	}
	f.SetPeers(append([]string{self}, cfg.Peers...))
	cfg.Registry.GaugeFunc("fleet.ring.peers", func() float64 {
		f.mu.RLock()
		defer f.mu.RUnlock()
		return float64(f.ring.Len())
	})
	cfg.Registry.GaugeFunc("fleet.ring.owned_share", func() float64 {
		return f.OwnedShare()
	})
	return f, nil
}

// SetPeers replaces the ring membership (self is always included) and
// reports whether it actually changed. Health state and clients for
// surviving peers are preserved — a reload must not reset probation
// windows — and departed peers' state is dropped. The owned-share gauge
// is resampled under the new ring.
func (f *Fleet) SetPeers(peers []string) (changed bool) {
	ring := NewRing(append(append([]string{}, peers...), f.self))
	share := ring.OwnedShare(f.self, 0)
	f.mu.Lock()
	defer f.mu.Unlock()
	changed = f.ring == nil || !slices.Equal(ring.Peers(), f.ring.Peers())
	f.ring = ring
	for _, p := range ring.Peers() {
		if f.health[p] == nil {
			f.health[p] = newPeerHealth()
		}
		if f.remotes[p] == nil && p != f.self {
			f.remotes[p] = f.newRemote(p)
		}
	}
	for p := range f.health {
		if !ring.Contains(p) {
			delete(f.health, p)
			delete(f.remotes, p)
		}
	}
	f.ownedShare.Store(math.Float64bits(share))
	return changed
}

// Self returns this node's normalized ring identity.
func (f *Fleet) Self() string { return f.self }

// Mode returns the shard mode (ModeFetch or ModeRedirect).
func (f *Fleet) Mode() string { return f.mode }

// Ring returns the current ring snapshot.
func (f *Fleet) Ring() *Ring {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ring
}

// Owner returns the peer owning the signature key ("" on an empty ring).
func (f *Fleet) Owner(key string) string { return f.Ring().Owner(key) }

// Owns reports whether this node owns the key.
func (f *Fleet) Owns(key string) bool { return f.Owner(key) == f.self }

// OwnedShare returns the sampled fraction of the key space this node owns.
func (f *Fleet) OwnedShare() float64 { return math.Float64frombits(f.ownedShare.Load()) }

// peer returns the remote and health tracker for the given ring member.
func (f *Fleet) peer(url string) (remote, *peerHealth) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.remotes[url], f.health[url]
}

// FetchSignature implements tracex.RemoteTier: resolve the key's owner on
// the ring and retrieve the signature from it — first via the store read
// path, then (fetch mode and redirect mode alike; redirect only changes
// the HTTP store API) by delegating the collection to the owner. Every
// error return means "collect locally": ownership by self, probation,
// transport trouble or an invalid payload never fail the caller's request.
func (f *Fleet) FetchSignature(ctx context.Context, app string, cores int, machine string, opt tracex.CollectOptions) (*tracex.Signature, error) {
	key := client.Key(app, cores, machine)
	owner := f.Owner(key)
	if owner == "" {
		return nil, ErrNoPeers
	}
	if owner == f.self {
		return nil, ErrOwnedLocally
	}
	rem, health := f.peer(owner)
	if rem == nil || health == nil {
		return nil, fmt.Errorf("fleet: owner %s left the ring", owner)
	}
	if !health.available(f.now()) {
		return nil, fmt.Errorf("%w: %s", ErrPeerUnavailable, owner)
	}
	// Bounded concurrency: block in line for a fetch slot, but never past
	// the caller's deadline.
	select {
	case f.sem <- struct{}{}:
		defer func() { <-f.sem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithTimeout(ctx, f.fetchTimeout)
	defer cancel()

	f.fetches.Inc()
	sig, err := f.fetchFrom(ctx, rem, key, app, cores, machine, opt)
	benched := health.observe(err == nil, f.now(), f.jitter)
	if err != nil {
		f.errors.Inc()
		if benched {
			f.probations.Inc()
		}
		return nil, err
	}
	f.hits.Inc()
	return sig, nil
}

// fetchFrom performs the two-step exchange with the owner: GET the stored
// signature; on a miss (404) or a storeless owner (501), delegate the
// collection (Delegated=true so the owner collects strictly locally) and
// use the returned signature. The result is validated against the
// requested identity before it is trusted.
func (f *Fleet) fetchFrom(ctx context.Context, rem remote, key, app string, cores int, machine string, opt tracex.CollectOptions) (*tracex.Signature, error) {
	stored, err := rem.GetSignature(ctx, key)
	switch {
	case err == nil:
		return validated(stored.Signature, app, cores, machine)
	case errors.Is(err, client.ErrNotFound), errors.Is(err, client.ErrNoStore):
		// Owner doesn't hold it yet: claim the cluster-wide collection by
		// delegating to the owner. Its engine memo deduplicates concurrent
		// claims from every non-owner, so the key is simulated once.
		req := &wire.SignatureRequest{
			App:        app,
			Cores:      cores,
			Machine:    machine,
			SampleRefs: opt.SampleRefs,
			Model:      string(opt.Model),
			Delegated:  true,
		}
		switch {
		case opt.Sampling.IsAdaptive():
			// Forward the adaptive policy so the owner collects under the
			// same identity the requester memoizes.
			req.Sampling = opt.Sampling.String()
		case opt.Sampling.Mode == tracex.SamplingModeFixed:
			// A fixed policy collapses into the legacy sample_refs shim —
			// the owner's store key stays byte-identical either way.
			req.SampleRefs = opt.Sampling.SampleRefs
		}
		resp, err := rem.Collect(ctx, req)
		if err != nil {
			return nil, err
		}
		return validated(resp.Signature, app, cores, machine)
	default:
		return nil, err
	}
}

// validated sanity-checks a peer-supplied signature before the engine
// caches and persists it: identity fields must match the request and the
// signature must be structurally valid.
func validated(sig *tracex.Signature, app string, cores int, machine string) (*tracex.Signature, error) {
	if sig == nil {
		return nil, fmt.Errorf("fleet: peer returned no signature")
	}
	if sig.App != app || sig.CoreCount != cores || sig.Machine != machine {
		return nil, fmt.Errorf("fleet: peer returned %s@%d on %s, want %s@%d on %s",
			sig.App, sig.CoreCount, sig.Machine, app, cores, machine)
	}
	if err := sig.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: peer signature invalid: %w", err)
	}
	return sig, nil
}

// Status snapshots the fleet for GET /v1/fleet/status: membership with
// per-peer health, this node's key-space share, and replication progress.
func (f *Fleet) Status() *wire.FleetStatusResponse {
	now := f.now()
	f.mu.RLock()
	peers := f.ring.Peers()
	snaps := make([]healthSnapshot, len(peers))
	for i, p := range peers {
		snaps[i] = f.health[p].snapshot(now)
	}
	f.mu.RUnlock()
	resp := &wire.FleetStatusResponse{
		Self:       f.self,
		Mode:       f.mode,
		OwnedShare: f.OwnedShare(),
		Peers:      make([]wire.FleetPeerStatus, len(peers)),
		Replication: wire.FleetReplication{
			Done:   f.replDone.Load(),
			Pulled: f.replPulled.Value(),
			Errors: f.replErrors.Value(),
		},
	}
	for i, p := range peers {
		resp.Peers[i] = wire.FleetPeerStatus{
			URL:        p,
			Self:       p == f.self,
			Healthy:    snaps[i].healthy,
			ErrorRate:  snaps[i].errorRate,
			Fetches:    snaps[i].fetches,
			Hits:       snaps[i].hits,
			Errors:     snaps[i].errors,
			Probations: snaps[i].probations,
		}
	}
	return resp
}

// ParsePeers splits a comma-separated peer list, dropping empty elements.
func ParsePeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// LoadPeers resolves the -peers flag: if arg names a readable file, each
// non-empty, non-#-comment line is one peer (so membership can live in a
// config file and be reloaded on SIGHUP or poll); otherwise arg itself is
// parsed as a comma-separated list.
func LoadPeers(arg string) ([]string, error) {
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return nil, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		// A comma or non-path shape means the argument was the list
		// itself; an unreadable path-shaped argument is a real error, not
		// a one-element peer list.
		if strings.Contains(arg, ",") || !looksLikePath(arg) {
			return ParsePeers(arg), nil
		}
		return nil, fmt.Errorf("fleet: reading peers file %s: %w", arg, err)
	}
	var peers []string
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		peers = append(peers, line)
	}
	return peers, nil
}

// looksLikePath reports an argument that can only be a file reference.
func looksLikePath(arg string) bool {
	return strings.HasPrefix(arg, "/") || strings.HasPrefix(arg, "./") || strings.HasPrefix(arg, "../")
}
