// Package fleet turns a set of independent tracexd daemons into one
// signature cache: a consistent-hash ring assigns every signature key an
// owning node, the owner collects it exactly once cluster-wide, and the
// other nodes fetch the result over the existing store API instead of
// re-simulating. The package provides the engine's remote tier
// (tracex.WithRemoteTier), per-peer health tracking with probation, and a
// warm-start replicator that pulls a restarted node's owned keys from its
// peers.
package fleet

import (
	"fmt"
	"sort"
	"strings"
)

// Ring is an immutable rendezvous-hash (highest-random-weight) view of the
// fleet membership. Rendezvous hashing is preferred over a ketama-style
// virtual-node circle because it is balanced without tuning (every key
// considers every peer, so no vnode count to size) and exactly minimal on
// membership change: a key moves if and only if the peer joining or leaving
// is its owner. Fleet swaps in a fresh Ring on every peers reload; methods
// never mutate.
type Ring struct {
	peers []string // normalized, deduplicated, sorted
}

// NewRing builds a ring over the given peer URLs. Peers are normalized
// (whitespace and trailing slash trimmed, scheme defaulted to http://),
// deduplicated and sorted, so any ordering of the same membership yields an
// identical ring on every node.
func NewRing(peers []string) *Ring {
	seen := make(map[string]bool, len(peers))
	norm := make([]string, 0, len(peers))
	for _, p := range peers {
		p = NormalizePeer(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		norm = append(norm, p)
	}
	sort.Strings(norm)
	return &Ring{peers: norm}
}

// NormalizePeer canonicalizes one peer URL: surrounding whitespace and any
// trailing slash are trimmed, and a bare host:port gains the http://
// scheme. Ring identity is the normalized string, so "http://a:1/" and
// "a:1" name the same node.
func NormalizePeer(p string) string {
	p = strings.TrimSpace(p)
	p = strings.TrimRight(p, "/")
	if p == "" {
		return ""
	}
	if !strings.Contains(p, "://") {
		p = "http://" + p
	}
	return p
}

// Peers returns the normalized, sorted membership. The slice is shared;
// treat it as read-only.
func (r *Ring) Peers() []string { return r.peers }

// Len returns the number of ring members.
func (r *Ring) Len() int { return len(r.peers) }

// Contains reports whether the (normalized) peer is a ring member.
func (r *Ring) Contains(peer string) bool {
	peer = NormalizePeer(peer)
	i := sort.SearchStrings(r.peers, peer)
	return i < len(r.peers) && r.peers[i] == peer
}

// Owner returns the peer that owns key under rendezvous hashing: the member
// with the highest hash of (peer, key), ties broken toward the
// lexicographically smaller peer so every process agrees. An empty ring
// owns nothing ("").
func (r *Ring) Owner(key string) string {
	var best string
	var bestScore uint64
	for _, p := range r.peers {
		s := rendezvousScore(p, key)
		if best == "" || s > bestScore || (s == bestScore && p < best) {
			best, bestScore = p, s
		}
	}
	return best
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// rendezvousScore hashes one (peer, key) pair with FNV-1a 64 — a NUL
// separating the two strings so ("ab","c") and ("a","bc") differ —
// finished with a 64-bit avalanche mix: raw FNV is visibly biased on the
// near-sequential key suffixes real triples produce, and rendezvous
// balance is only as good as the hash's uniformity. The construction is
// fast, dependency-free and stable across architectures, which is all the
// ring needs — ownership must be deterministic across processes, not
// adversary-proof.
func rendezvousScore(peer, key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(peer); i++ {
		h ^= uint64(peer[i])
		h *= fnvPrime64
	}
	h ^= 0 // NUL separator
	h *= fnvPrime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return mix64(h)
}

// mix64 is the 64-bit finalizer (fmix64): full avalanche, bijective, so it
// costs nothing in determinism and fixes FNV's low-entropy tail.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// OwnedShare estimates the fraction of the key space owned by self under
// this ring by hashing samples synthetic keys (exact for the 1-peer ring).
// The estimate backs the fleet.ring.owned_share gauge; with a balanced ring
// it approaches 1/Len.
func (r *Ring) OwnedShare(self string, samples int) float64 {
	if r.Len() == 0 {
		return 0
	}
	if r.Len() == 1 {
		if r.peers[0] == NormalizePeer(self) {
			return 1
		}
		return 0
	}
	if samples <= 0 {
		samples = 2048
	}
	self = NormalizePeer(self)
	owned := 0
	for i := 0; i < samples; i++ {
		if r.Owner(fmt.Sprintf("share-sample-%d", i)) == self {
			owned++
		}
	}
	return float64(owned) / float64(samples)
}
