package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"tracex"
	"tracex/client"
	"tracex/internal/obs"
	"tracex/wire"
)

var bg = context.Background()

// Signatures the fakes serve are real collections, lazily cached per core
// count; the app and machine are fixed while cores is chosen per test so
// the key lands on whichever ring side the test needs.
const (
	sigApp     = "stencil3d"
	sigMachine = "bluewaters"
)

var sigOpt = tracex.CollectOptions{SampleRefs: 20_000, MaxWarmRefs: 60_000}

var testSigs struct {
	mu   sync.Mutex
	byCC map[int]*tracex.Signature
}

func collectSigAt(t *testing.T, cores int) *tracex.Signature {
	t.Helper()
	testSigs.mu.Lock()
	defer testSigs.mu.Unlock()
	if sig := testSigs.byCC[cores]; sig != nil {
		return sig
	}
	app, err := tracex.LoadApp(sigApp)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tracex.LoadMachine(sigMachine)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := tracex.CollectSignature(app, cores, m, sigOpt)
	if err != nil {
		t.Fatal(err)
	}
	if testSigs.byCC == nil {
		testSigs.byCC = map[int]*tracex.Signature{}
	}
	testSigs.byCC[cores] = sig
	return sig
}

// fakeRemote scripts one peer: each method delegates to the corresponding
// handler, nil handlers fail the test if reached.
type fakeRemote struct {
	t       *testing.T
	get     func(key string) (*wire.StoredSignatureResponse, error)
	collect func(req *wire.SignatureRequest) (*wire.SignatureResponse, error)
	sync    func(req *wire.FleetSyncRequest) (*wire.FleetSyncResponse, error)
}

func (f *fakeRemote) GetSignature(_ context.Context, key string) (*wire.StoredSignatureResponse, error) {
	if f.get == nil {
		f.t.Fatal("unexpected GetSignature")
	}
	return f.get(key)
}

func (f *fakeRemote) Collect(_ context.Context, req *wire.SignatureRequest) (*wire.SignatureResponse, error) {
	if f.collect == nil {
		f.t.Fatal("unexpected Collect")
	}
	return f.collect(req)
}

func (f *fakeRemote) FleetSync(_ context.Context, req *wire.FleetSyncRequest) (*wire.FleetSyncResponse, error) {
	if f.sync == nil {
		f.t.Fatal("unexpected FleetSync")
	}
	return f.sync(req)
}

// newTestFleet builds a two-node fleet — self plus one scripted peer —
// with deterministic time and jitter. It returns the fleet, the fake, and
// the registry.
func newTestFleet(t *testing.T, fake *fakeRemote, opts ...func(*Config)) (*Fleet, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	cfg := Config{
		Self:      "http://self:1",
		Peers:     []string{"http://peer:2"},
		Registry:  reg,
		newRemote: func(base string) remote { return fake },
		now:       func() time.Time { return time.Unix(1000, 0) },
		jitter:    noJitter,
	}
	for _, o := range opts {
		o(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, reg
}

// fetchKey returns an identity (cores value) the given node does NOT own,
// so FetchSignature must go to the peer — or the reverse with owned=true.
func fetchCores(f *Fleet, owned bool) (int, bool) {
	for cores := 8; cores <= 16384; cores *= 2 {
		if f.Owns(client.Key(sigApp, cores, sigMachine)) == owned {
			return cores, true
		}
	}
	return 0, false
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty Self accepted")
	}
	if _, err := New(Config{Self: "a:1", Mode: "mirror"}); err == nil {
		t.Error("unknown shard mode accepted")
	}
	f, err := New(Config{Self: "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Mode() != ModeFetch {
		t.Errorf("default mode = %q, want %q", f.Mode(), ModeFetch)
	}
	if f.Self() != "http://a:1" {
		t.Errorf("self not normalized: %q", f.Self())
	}
}

// TestFetchOwnedLocally pins the owner's path: the remote tier declines
// (ErrOwnedLocally) so the engine collects — the cluster-wide "owner
// collects" rule.
func TestFetchOwnedLocally(t *testing.T) {
	f, _ := newTestFleet(t, &fakeRemote{t: t})
	cores, ok := fetchCores(f, true)
	if !ok {
		t.Fatal("no self-owned identity found")
	}
	_, err := f.FetchSignature(bg, sigApp, cores, sigMachine, sigOpt)
	if !errors.Is(err, ErrOwnedLocally) {
		t.Fatalf("err = %v, want ErrOwnedLocally", err)
	}
}

// TestFetchFromOwnerStore pins the happy path: the owner already holds the
// signature, the fetch validates it and the counters move.
func TestFetchFromOwnerStore(t *testing.T) {
	fake := &fakeRemote{t: t}
	f, reg := newTestFleet(t, fake)
	cores, ok := fetchCores(f, false)
	if !ok {
		t.Fatal("no peer-owned identity found")
	}
	sig := collectSigAt(t, cores)
	fake.get = func(key string) (*wire.StoredSignatureResponse, error) {
		want := client.Key(sigApp, cores, sigMachine)
		if key != want {
			t.Errorf("fetched key %q, want %q", key, want)
		}
		return &wire.StoredSignatureResponse{App: sigApp, Cores: cores, Machine: sigMachine, Signature: sig}, nil
	}
	got, err := f.FetchSignature(bg, sigApp, cores, sigMachine, sigOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got != sig {
		t.Error("fetched signature not returned")
	}
	if v := reg.Counter("fleet.peer.fetches").Value(); v != 1 {
		t.Errorf("fleet.peer.fetches = %d, want 1", v)
	}
	if v := reg.Counter("fleet.peer.hits").Value(); v != 1 {
		t.Errorf("fleet.peer.hits = %d, want 1", v)
	}
}

// TestFetchDelegates pins the claim path: the owner misses (404), the
// non-owner delegates the collection with Delegated=true and serves the
// result.
func TestFetchDelegates(t *testing.T) {
	fake := &fakeRemote{t: t}
	f, _ := newTestFleet(t, fake)
	cores, ok := fetchCores(f, false)
	if !ok {
		t.Fatal("no peer-owned identity found")
	}
	sig := collectSigAt(t, cores)
	fake.get = func(string) (*wire.StoredSignatureResponse, error) {
		return nil, fmt.Errorf("%w", client.ErrNotFound)
	}
	var delegated *wire.SignatureRequest
	fake.collect = func(req *wire.SignatureRequest) (*wire.SignatureResponse, error) {
		delegated = req
		return &wire.SignatureResponse{Signature: sig}, nil
	}
	got, err := f.FetchSignature(bg, sigApp, cores, sigMachine, sigOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got != sig {
		t.Error("delegated signature not returned")
	}
	if delegated == nil || !delegated.Delegated {
		t.Fatalf("delegation request = %+v, want Delegated=true", delegated)
	}
	if delegated.App != sigApp || delegated.Cores != cores || delegated.SampleRefs != sigOpt.SampleRefs {
		t.Errorf("delegation identity = %+v", delegated)
	}
}

// TestFetchRejectsMismatch pins validation: a peer answering with the
// wrong identity is an error, never cached.
func TestFetchRejectsMismatch(t *testing.T) {
	fake := &fakeRemote{t: t}
	f, reg := newTestFleet(t, fake)
	cores, ok := fetchCores(f, false)
	if !ok {
		t.Fatal("no peer-owned identity found")
	}
	// The peer answers with a signature for a different core count than
	// the one requested.
	sig := collectSigAt(t, cores)
	fake.get = func(string) (*wire.StoredSignatureResponse, error) {
		return &wire.StoredSignatureResponse{Signature: sig}, nil
	}
	wrong, ok := nextPeerCores(f, cores)
	if !ok {
		t.Fatal("only one peer-owned identity under this ring")
	}
	if _, err := f.FetchSignature(bg, sigApp, wrong, sigMachine, sigOpt); err == nil {
		t.Fatal("mismatched signature accepted")
	}
	if v := reg.Counter("fleet.peer.errors").Value(); v != 1 {
		t.Errorf("fleet.peer.errors = %d, want 1", v)
	}
}

// nextPeerCores finds a second peer-owned core count.
func nextPeerCores(f *Fleet, not int) (int, bool) {
	for cores := 8; cores <= 16384; cores *= 2 {
		if cores != not && !f.Owns(client.Key(sigApp, cores, sigMachine)) {
			return cores, true
		}
	}
	return 0, false
}

// TestFetchProbation pins the circuit breaker: after probationAfter
// consecutive failures the peer is benched and further fetches fail fast
// with ErrPeerUnavailable, without touching the peer.
func TestFetchProbation(t *testing.T) {
	fake := &fakeRemote{t: t}
	calls := 0
	fake.get = func(string) (*wire.StoredSignatureResponse, error) {
		calls++
		return nil, errors.New("connection refused")
	}
	f, reg := newTestFleet(t, fake)
	cores, ok := fetchCores(f, false)
	if !ok {
		t.Fatal("no peer-owned identity found")
	}
	for i := 0; i < probationAfter; i++ {
		if _, err := f.FetchSignature(bg, sigApp, cores, sigMachine, sigOpt); err == nil {
			t.Fatal("failing peer reported success")
		}
	}
	if calls != probationAfter {
		t.Fatalf("peer saw %d calls, want %d", calls, probationAfter)
	}
	_, err := f.FetchSignature(bg, sigApp, cores, sigMachine, sigOpt)
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("benched fetch err = %v, want ErrPeerUnavailable", err)
	}
	if calls != probationAfter {
		t.Errorf("benched fetch still reached the peer (%d calls)", calls)
	}
	if v := reg.Counter("fleet.peer.probations").Value(); v != 1 {
		t.Errorf("fleet.peer.probations = %d, want 1", v)
	}
	status := f.Status()
	var peerStat *wire.FleetPeerStatus
	for i := range status.Peers {
		if !status.Peers[i].Self {
			peerStat = &status.Peers[i]
		}
	}
	if peerStat == nil || peerStat.Healthy || peerStat.Probations != 1 || peerStat.ErrorRate == 0 {
		t.Errorf("benched peer status = %+v", peerStat)
	}
}

// TestSetPeersPreservesHealth pins reload semantics: surviving peers keep
// their probation state, departed peers are forgotten.
func TestSetPeersPreservesHealth(t *testing.T) {
	fake := &fakeRemote{t: t}
	fake.get = func(string) (*wire.StoredSignatureResponse, error) {
		return nil, errors.New("down")
	}
	f, _ := newTestFleet(t, fake)
	cores, ok := fetchCores(f, false)
	if !ok {
		t.Fatal("no peer-owned identity found")
	}
	for i := 0; i < probationAfter; i++ {
		f.FetchSignature(bg, sigApp, cores, sigMachine, sigOpt)
	}

	// Reload with the same membership plus a newcomer: the benched peer
	// stays benched.
	f.SetPeers([]string{"http://peer:2", "http://new:3"})
	if f.Ring().Len() != 3 {
		t.Fatalf("ring size = %d, want 3", f.Ring().Len())
	}
	_, health := f.peer("http://peer:2")
	if health.available(time.Unix(1000, 0)) {
		t.Error("reload reset the peer's probation")
	}

	// Dropping the peer forgets it entirely.
	f.SetPeers([]string{"http://new:3"})
	if rem, h := f.peer("http://peer:2"); rem != nil || h != nil {
		t.Error("departed peer's state retained")
	}
}

// TestStatusShape pins the status document: self flagged, share sampled,
// mode echoed.
func TestStatusShape(t *testing.T) {
	f, _ := newTestFleet(t, &fakeRemote{t: t}, func(c *Config) { c.Mode = ModeRedirect })
	st := f.Status()
	if st.Self != "http://self:1" || st.Mode != ModeRedirect {
		t.Errorf("status header = %+v", st)
	}
	if len(st.Peers) != 2 {
		t.Fatalf("status lists %d peers, want 2", len(st.Peers))
	}
	selfSeen := false
	for _, p := range st.Peers {
		if p.Self {
			selfSeen = true
			if p.URL != "http://self:1" {
				t.Errorf("self URL = %q", p.URL)
			}
		}
		if !p.Healthy {
			t.Errorf("fresh peer %s unhealthy", p.URL)
		}
	}
	if !selfSeen {
		t.Error("self not flagged in status")
	}
	if st.OwnedShare <= 0 || st.OwnedShare >= 1 {
		t.Errorf("owned share = %v, want in (0, 1) for a 2-ring", st.OwnedShare)
	}
}

func TestParsePeers(t *testing.T) {
	got := ParsePeers(" a:1, ,b:2,,")
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Errorf("ParsePeers = %v", got)
	}
	if got := ParsePeers(""); got != nil {
		t.Errorf("ParsePeers(empty) = %v", got)
	}
}

func TestLoadPeers(t *testing.T) {
	// Comma form passes through.
	peers, err := LoadPeers("a:1,b:2")
	if err != nil || len(peers) != 2 {
		t.Fatalf("comma form: %v, %v", peers, err)
	}
	// File form reads lines, skipping blanks and comments.
	dir := t.TempDir()
	file := dir + "/peers.txt"
	if err := writeFile(file, "# fleet\nhttp://a:1\n\nhttp://b:2\n"); err != nil {
		t.Fatal(err)
	}
	peers, err = LoadPeers(file)
	if err != nil || len(peers) != 2 || peers[0] != "http://a:1" {
		t.Fatalf("file form: %v, %v", peers, err)
	}
	// A path-looking argument that doesn't exist is an error, not an
	// accidental one-element peer list.
	if _, err := LoadPeers(dir + "/missing.txt"); err == nil {
		t.Error("missing peers file accepted")
	}
}

// TestReplicate pins warm-start replication: a node with an empty store
// pulls exactly the keys it owns from a peer's manifest — one self-owned
// entry is pulled, one peer-owned entry is left alone.
func TestReplicate(t *testing.T) {
	fake := &fakeRemote{t: t}
	f, reg := newTestFleet(t, fake)
	mine, ok := fetchCores(f, true)
	if !ok {
		t.Fatal("no self-owned identity found")
	}
	theirs, ok := fetchCores(f, false)
	if !ok {
		t.Fatal("no peer-owned identity found")
	}
	sig := collectSigAt(t, mine)
	key := client.Key(sigApp, mine, sigMachine)

	fake.sync = func(req *wire.FleetSyncRequest) (*wire.FleetSyncResponse, error) {
		if len(req.Have) != 0 {
			t.Errorf("empty store advertised %v", req.Have)
		}
		return &wire.FleetSyncResponse{Entries: []wire.FleetSyncEntry{
			{App: sigApp, Cores: mine, Machine: sigMachine, Hash: "x", Bytes: 1},
			{App: sigApp, Cores: theirs, Machine: sigMachine, Hash: "y", Bytes: 1},
		}}, nil
	}
	fake.get = func(k string) (*wire.StoredSignatureResponse, error) {
		if k != key {
			t.Errorf("pulled %q, want only the owned key %q", k, key)
		}
		return &wire.StoredSignatureResponse{App: sigApp, Cores: mine, Machine: sigMachine, Signature: sig}, nil
	}

	eng := tracex.NewEngine(tracex.WithStore(t.TempDir()))
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pulled, err := f.Replicate(bg, eng)
	if err != nil {
		t.Fatal(err)
	}
	if pulled != 1 {
		t.Fatalf("pulled %d, want 1", pulled)
	}
	if v := reg.Counter("fleet.replication.pulled").Value(); v != 1 {
		t.Errorf("fleet.replication.pulled = %d, want 1", v)
	}
	if !f.Status().Replication.Done {
		t.Error("replication not marked done")
	}
	// The pulled signature must now resolve from the local store.
	m, err := tracex.LoadMachine(sigMachine)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := eng.Store().Get(tracex.StoreKey(sigApp, mine, m, tracex.CollectOptions{}))
	if err != nil || !ok || got == nil {
		t.Fatalf("pulled signature not in store: ok=%v err=%v", ok, err)
	}

	// A second pass with the now-populated store advertises the key and
	// pulls nothing.
	fake.sync = func(req *wire.FleetSyncRequest) (*wire.FleetSyncResponse, error) {
		if len(req.Have) != 1 || req.Have[0] != key {
			t.Errorf("second sync advertised %v, want [%s]", req.Have, key)
		}
		return &wire.FleetSyncResponse{}, nil
	}
	if pulled, err = f.Replicate(bg, eng); err != nil || pulled != 0 {
		t.Fatalf("second replicate pulled %d, %v, want 0", pulled, err)
	}
}

// writeFile is a tiny helper (os.WriteFile with fixed mode).
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
