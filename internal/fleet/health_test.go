package fleet

import (
	"testing"
	"time"
)

// noJitter makes probation windows deterministic.
func noJitter(d time.Duration) time.Duration { return d }

// TestHealthProbation walks one peer through failure, probation, backoff
// doubling and recovery.
func TestHealthProbation(t *testing.T) {
	h := newPeerHealth()
	now := time.Unix(1000, 0)

	// Below the streak threshold: failing but still available.
	for i := 0; i < probationAfter-1; i++ {
		if h.observe(false, now, noJitter) {
			t.Fatalf("failure %d opened probation before the threshold", i+1)
		}
	}
	if !h.available(now) {
		t.Fatal("peer benched before the failure threshold")
	}

	// Threshold failure benches the peer for the base window.
	if !h.observe(false, now, noJitter) {
		t.Fatal("threshold failure did not open probation")
	}
	if h.available(now) || h.available(now.Add(probationBase-1)) {
		t.Error("peer available inside the probation window")
	}
	if !h.available(now.Add(probationBase)) {
		t.Error("peer still benched after the window expired")
	}

	// A failed re-probe doubles the window.
	now = now.Add(probationBase)
	h.observe(false, now, noJitter)
	if h.available(now.Add(2*probationBase - 1)) {
		t.Error("second probation did not double")
	}

	// Backoff saturates at probationMax.
	for i := 0; i < 20; i++ {
		now = now.Add(probationMax)
		h.observe(false, now, noJitter)
	}
	if !h.available(now.Add(probationMax)) {
		t.Error("probation exceeded its cap")
	}

	// One success clears everything.
	now = now.Add(probationMax)
	h.observe(true, now, noJitter)
	if !h.available(now) {
		t.Error("success did not lift probation")
	}
	snap := h.snapshot(now)
	if !snap.healthy || snap.hits != 1 {
		t.Errorf("post-recovery snapshot: %+v", snap)
	}
	if snap.probations == 0 {
		t.Error("probation count lost")
	}
}

// TestHealthEWMA pins the error-rate direction: failures raise it toward
// 1, successes decay it toward 0, and the empty tracker reads 0.
func TestHealthEWMA(t *testing.T) {
	h := newPeerHealth()
	now := time.Unix(1000, 0)
	if rate := h.snapshot(now).errorRate; rate != 0 {
		t.Errorf("fresh error rate = %v, want 0", rate)
	}
	for i := 0; i < 10; i++ {
		h.observe(false, now, noJitter)
	}
	high := h.snapshot(now).errorRate
	if high < 0.9 {
		t.Errorf("after 10 failures rate = %v, want > 0.9", high)
	}
	for i := 0; i < 10; i++ {
		h.observe(true, now, noJitter)
	}
	if low := h.snapshot(now).errorRate; low >= high || low > 0.1 {
		t.Errorf("after 10 successes rate = %v (was %v)", low, high)
	}
}
