package addrgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkBiased(t *testing.T, frac float64) *Biased {
	t.Helper()
	hot, err := NewRandom(0, 64<<10, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewRandom(1<<30, 16<<20, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBiased(hot, cold, frac)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBiasedFractionExact(t *testing.T) {
	// Bresenham accumulation delivers the hot fraction exactly over long
	// streams, without randomness.
	for _, frac := range []float64{0.0, 0.125, 0.33, 0.5, 0.875, 1.0} {
		b := mkBiased(t, frac)
		const n = 100_000
		hot := 0
		for i := 0; i < n; i++ {
			if b.Next() < 1<<30 {
				hot++
			}
		}
		got := float64(hot) / n
		if math.Abs(got-frac) > 1.0/n*2 {
			t.Errorf("frac %.3f: measured %.5f", frac, got)
		}
	}
}

func TestBiasedValidation(t *testing.T) {
	hot, _ := NewStride(0, 8, 64)
	cold, _ := NewStride(1<<20, 8, 64)
	if _, err := NewBiased(hot, cold, -0.1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := NewBiased(hot, cold, 1.1); err == nil {
		t.Error("fraction above 1 accepted")
	}
	if _, err := NewBiased(nil, cold, 0.5); err == nil {
		t.Error("nil hot accepted")
	}
	if _, err := NewBiased(hot, nil, 0.5); err == nil {
		t.Error("nil cold accepted")
	}
}

func TestBiasedResetReplays(t *testing.T) {
	b := mkBiased(t, 0.37)
	first := Fill(b, nil, 500)
	b.Reset()
	second := Fill(b, nil, 500)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestBiasedAccessors(t *testing.T) {
	b := mkBiased(t, 0.25)
	if b.HotFraction() != 0.25 {
		t.Errorf("HotFraction = %g", b.HotFraction())
	}
	if b.Name() != "biased(random,random)" {
		t.Errorf("Name = %q", b.Name())
	}
	if got, want := b.WorkingSet(), uint64(64<<10+16<<20); got != want {
		t.Errorf("WorkingSet = %d, want %d", got, want)
	}
}

// Property: the measured hot fraction matches the configured one within
// 1/n for any fraction, and every address belongs to exactly one region.
func TestBiasedPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		frac := r.Float64()
		hot, err := NewRandom(0, 8<<10, 8, seed)
		if err != nil {
			return false
		}
		cold, err := NewRandom(1<<30, 8<<10, 8, seed+1)
		if err != nil {
			return false
		}
		b, err := NewBiased(hot, cold, frac)
		if err != nil {
			return false
		}
		const n = 10_000
		hotCount := 0
		for i := 0; i < n; i++ {
			a := b.Next()
			inHot := a < 8<<10
			inCold := a >= 1<<30 && a < 1<<30+8<<10
			if inHot == inCold {
				return false // must be in exactly one region
			}
			if inHot {
				hotCount++
			}
		}
		return math.Abs(float64(hotCount)/n-frac) < 2.0/100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
