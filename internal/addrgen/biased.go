package addrgen

import "fmt"

// Biased interleaves a "hot" and a "cold" generator with a continuously
// tunable hot fraction, using deterministic Bresenham-style error
// accumulation (no randomness, so streams replay exactly). It models
// computations whose locality concentrates as an application strong-scales:
// a growing fraction of references land in a small resident region.
type Biased struct {
	hot, cold Generator
	hotFrac   float64
	acc       float64
}

// NewBiased returns a generator drawing hotFrac of references from hot and
// the rest from cold. hotFrac must lie in [0,1].
func NewBiased(hot, cold Generator, hotFrac float64) (*Biased, error) {
	if hotFrac < 0 || hotFrac > 1 {
		return nil, fmt.Errorf("addrgen: hot fraction %g outside [0,1]", hotFrac)
	}
	if hot == nil || cold == nil {
		return nil, fmt.Errorf("addrgen: nil sub-generator")
	}
	return &Biased{hot: hot, cold: cold, hotFrac: hotFrac}, nil
}

// Name implements Generator.
func (b *Biased) Name() string { return "biased(" + b.hot.Name() + "," + b.cold.Name() + ")" }

// WorkingSet implements Generator.
func (b *Biased) WorkingSet() uint64 { return b.hot.WorkingSet() + b.cold.WorkingSet() }

// HotFraction returns the configured hot fraction.
func (b *Biased) HotFraction() float64 { return b.hotFrac }

// Next implements Generator.
func (b *Biased) Next() uint64 {
	b.acc += b.hotFrac
	if b.acc >= 1 {
		b.acc--
		return b.hot.Next()
	}
	return b.cold.Next()
}

// NextBatch implements BatchGenerator. The Bresenham accumulator decides
// hot/cold per reference, so the sub-streams are drawn one address at a
// time, but the accumulator itself stays in a register for the batch.
func (b *Biased) NextBatch(dst []uint64) {
	acc, frac := b.acc, b.hotFrac
	for i := range dst {
		acc += frac
		if acc >= 1 {
			acc--
			dst[i] = b.hot.Next()
		} else {
			dst[i] = b.cold.Next()
		}
	}
	b.acc = acc
}

// Reset implements Generator.
func (b *Biased) Reset() {
	b.hot.Reset()
	b.cold.Reset()
	b.acc = 0
}
