// Package addrgen generates synthetic memory address streams. It stands in
// for the address streams that PEBIL instrumentation would extract from a
// real executable: each generator models the access pattern of one kind of
// computational kernel (unit-stride sweeps, strided sweeps, random gathers,
// 3D stencils, particle gather/scatter) over a working set whose size is the
// quantity that changes under strong scaling.
//
// Generators are deterministic: the same construction parameters produce the
// same stream, which keeps every experiment in the repository reproducible.
package addrgen

import (
	"fmt"
	"math/rand"
)

// Generator produces an infinite, deterministic address stream.
type Generator interface {
	// Name identifies the pattern for reports and trace metadata.
	Name() string
	// Next returns the next address in the stream.
	Next() uint64
	// Reset rewinds the stream to its initial state.
	Reset()
	// WorkingSet returns the number of distinct bytes the stream touches.
	WorkingSet() uint64
}

// BatchGenerator is implemented by generators that can fill a slab of
// addresses in one call, amortizing the per-reference interface dispatch of
// Next across a whole batch. NextBatch must produce exactly the stream that
// len(dst) consecutive Next calls would, advancing the generator state
// identically — batching is an execution detail, never a semantic one.
type BatchGenerator interface {
	Generator
	// NextBatch fills dst entirely with the next len(dst) addresses.
	NextBatch(dst []uint64)
}

// Fill appends n addresses from g to dst and returns the extended slice.
func Fill(g Generator, dst []uint64, n int) []uint64 {
	for i := 0; i < n; i++ {
		dst = append(dst, g.Next())
	}
	return dst
}

// FillBatch fills dst entirely with the next len(dst) addresses from g,
// using the generator's NextBatch fast path when it has one and falling
// back to repeated Next calls otherwise. Both paths yield the same stream.
func FillBatch(g Generator, dst []uint64) {
	if b, ok := g.(BatchGenerator); ok {
		b.NextBatch(dst)
		return
	}
	for i := range dst {
		dst[i] = g.Next()
	}
}

// Stride sweeps a working set with a fixed byte stride, wrapping at the end.
// Stride 8 with 8-byte elements is the classic unit-stride (stride-one)
// pattern; larger strides model column-major or strided array accesses.
type Stride struct {
	base   uint64
	stride uint64
	ws     uint64
	cur    uint64
}

// NewStride returns a stride generator over ws bytes starting at base.
// stride and ws must be positive; ws is rounded up to a multiple of stride.
func NewStride(base, stride, ws uint64) (*Stride, error) {
	if stride == 0 {
		return nil, fmt.Errorf("addrgen: zero stride")
	}
	if ws == 0 {
		return nil, fmt.Errorf("addrgen: zero working set")
	}
	if rem := ws % stride; rem != 0 {
		ws += stride - rem
	}
	return &Stride{base: base, stride: stride, ws: ws}, nil
}

// Name implements Generator.
func (s *Stride) Name() string { return "stride" }

// WorkingSet implements Generator.
func (s *Stride) WorkingSet() uint64 { return s.ws }

// Next implements Generator.
func (s *Stride) Next() uint64 {
	a := s.base + s.cur
	s.cur += s.stride
	if s.cur >= s.ws {
		s.cur = 0
	}
	return a
}

// NextBatch implements BatchGenerator with pure register arithmetic: the
// stream position is carried in a local and written back once per batch.
func (s *Stride) NextBatch(dst []uint64) {
	base, stride, ws, cur := s.base, s.stride, s.ws, s.cur
	for i := range dst {
		dst[i] = base + cur
		cur += stride
		if cur >= ws {
			cur = 0
		}
	}
	s.cur = cur
}

// Reset implements Generator.
func (s *Stride) Reset() { s.cur = 0 }

// Random produces uniformly random element-aligned addresses within a
// working set: the pathological random-stride load pattern from main memory
// described in Section III-A of the paper.
type Random struct {
	base uint64
	ws   uint64
	elem uint64
	n    int64 // element count ws/elem, hoisted out of the per-address path
	seed int64
	rng  *rand.Rand
}

// NewRandom returns a random-access generator over ws bytes of elem-byte
// elements starting at base, seeded deterministically.
func NewRandom(base, ws, elem uint64, seed int64) (*Random, error) {
	if elem == 0 || ws < elem {
		return nil, fmt.Errorf("addrgen: working set %d smaller than element %d", ws, elem)
	}
	return &Random{base: base, ws: ws, elem: elem, n: int64(ws / elem), seed: seed, rng: rand.New(rand.NewSource(seed))}, nil
}

// Name implements Generator.
func (r *Random) Name() string { return "random" }

// WorkingSet implements Generator.
func (r *Random) WorkingSet() uint64 { return r.ws }

// Next implements Generator.
func (r *Random) Next() uint64 {
	return r.base + uint64(r.rng.Int63n(r.n))*r.elem
}

// NextBatch implements BatchGenerator, keeping the rand.Rand pointer and
// geometry in locals across the batch.
func (r *Random) NextBatch(dst []uint64) {
	base, elem, n, rng := r.base, r.elem, r.n, r.rng
	for i := range dst {
		dst[i] = base + uint64(rng.Int63n(n))*elem
	}
}

// Reset implements Generator.
func (r *Random) Reset() { r.rng = rand.New(rand.NewSource(r.seed)) }

// Stencil3D sweeps an Nx×Ny×Nz grid of elem-byte cells issuing a 7-point
// stencil (center plus the six face neighbors) per cell, the canonical
// access pattern of finite-difference and spectral-element codes such as
// SPECFEM3D.
type Stencil3D struct {
	base       uint64
	nx, ny, nz uint64
	elem       uint64
	i, j, k    uint64
	point      int
}

// NewStencil3D returns a stencil generator over the given grid.
func NewStencil3D(base uint64, nx, ny, nz, elem uint64) (*Stencil3D, error) {
	if nx == 0 || ny == 0 || nz == 0 || elem == 0 {
		return nil, fmt.Errorf("addrgen: degenerate stencil grid %dx%dx%d elem %d", nx, ny, nz, elem)
	}
	return &Stencil3D{base: base, nx: nx, ny: ny, nz: nz, elem: elem}, nil
}

// Name implements Generator.
func (s *Stencil3D) Name() string { return "stencil3d" }

// WorkingSet implements Generator.
func (s *Stencil3D) WorkingSet() uint64 { return s.nx * s.ny * s.nz * s.elem }

func (s *Stencil3D) addr(i, j, k uint64) uint64 {
	return s.base + ((k*s.ny+j)*s.nx+i)*s.elem
}

// Next implements Generator. It emits the 7 stencil points of the current
// cell (clamped at grid boundaries) before advancing to the next cell in
// row-major order.
func (s *Stencil3D) Next() uint64 {
	i, j, k := s.i, s.j, s.k
	var a uint64
	switch s.point {
	case 0:
		a = s.addr(i, j, k)
	case 1:
		if i > 0 {
			a = s.addr(i-1, j, k)
		} else {
			a = s.addr(i, j, k)
		}
	case 2:
		if i+1 < s.nx {
			a = s.addr(i+1, j, k)
		} else {
			a = s.addr(i, j, k)
		}
	case 3:
		if j > 0 {
			a = s.addr(i, j-1, k)
		} else {
			a = s.addr(i, j, k)
		}
	case 4:
		if j+1 < s.ny {
			a = s.addr(i, j+1, k)
		} else {
			a = s.addr(i, j, k)
		}
	case 5:
		if k > 0 {
			a = s.addr(i, j, k-1)
		} else {
			a = s.addr(i, j, k)
		}
	case 6:
		if k+1 < s.nz {
			a = s.addr(i, j, k+1)
		} else {
			a = s.addr(i, j, k)
		}
	}
	s.point++
	if s.point == 7 {
		s.point = 0
		s.i++
		if s.i == s.nx {
			s.i = 0
			s.j++
			if s.j == s.ny {
				s.j = 0
				s.k++
				if s.k == s.nz {
					s.k = 0
				}
			}
		}
	}
	return a
}

// NextBatch implements BatchGenerator. The per-point switch stays, but the
// calls devirtualize to the concrete method so the batch loop avoids one
// interface dispatch per reference.
func (s *Stencil3D) NextBatch(dst []uint64) {
	for i := range dst {
		dst[i] = s.Next()
	}
}

// Reset implements Generator.
func (s *Stencil3D) Reset() { s.i, s.j, s.k, s.point = 0, 0, 0, 0 }

// GatherScatter models particle-in-cell codes such as UH3D: a unit-stride
// walk over a particle list interleaved with random accesses into a grid
// array (field gather / charge deposit).
type GatherScatter struct {
	particles *Stride
	grid      *Random
	// gridRefsPerParticle random grid touches follow each particle touch.
	gridRefs int
	phase    int
}

// NewGatherScatter builds a gather/scatter generator: particleWS bytes of
// sequential particle data at particleBase, gridWS bytes of randomly
// accessed grid data at gridBase, with gridRefs grid references per
// particle reference.
func NewGatherScatter(particleBase, particleWS, gridBase, gridWS uint64, gridRefs int, seed int64) (*GatherScatter, error) {
	if gridRefs < 1 {
		return nil, fmt.Errorf("addrgen: gridRefs must be ≥1, got %d", gridRefs)
	}
	p, err := NewStride(particleBase, 8, particleWS)
	if err != nil {
		return nil, fmt.Errorf("addrgen: particle stream: %w", err)
	}
	g, err := NewRandom(gridBase, gridWS, 8, seed)
	if err != nil {
		return nil, fmt.Errorf("addrgen: grid stream: %w", err)
	}
	return &GatherScatter{particles: p, grid: g, gridRefs: gridRefs}, nil
}

// Name implements Generator.
func (g *GatherScatter) Name() string { return "gatherscatter" }

// WorkingSet implements Generator.
func (g *GatherScatter) WorkingSet() uint64 {
	return g.particles.WorkingSet() + g.grid.WorkingSet()
}

// Next implements Generator.
func (g *GatherScatter) Next() uint64 {
	if g.phase == 0 {
		g.phase++
		return g.particles.Next()
	}
	g.phase++
	if g.phase > g.gridRefs {
		g.phase = 0
	}
	return g.grid.Next()
}

// NextBatch implements BatchGenerator; the particle and grid sub-streams are
// concrete types, so their Next calls devirtualize inside the loop.
func (g *GatherScatter) NextBatch(dst []uint64) {
	for i := range dst {
		if g.phase == 0 {
			g.phase++
			dst[i] = g.particles.Next()
			continue
		}
		g.phase++
		if g.phase > g.gridRefs {
			g.phase = 0
		}
		dst[i] = g.grid.Next()
	}
}

// Reset implements Generator.
func (g *GatherScatter) Reset() {
	g.particles.Reset()
	g.grid.Reset()
	g.phase = 0
}

// Mix interleaves two generators with a deterministic duty cycle: aRefs
// addresses from A, then bRefs from B, repeating.
type Mix struct {
	a, b         Generator
	aRefs, bRefs int
	pos          int
}

// NewMix builds an interleaving generator.
func NewMix(a, b Generator, aRefs, bRefs int) (*Mix, error) {
	if aRefs < 1 || bRefs < 1 {
		return nil, fmt.Errorf("addrgen: mix duty cycle must be ≥1/≥1, got %d/%d", aRefs, bRefs)
	}
	return &Mix{a: a, b: b, aRefs: aRefs, bRefs: bRefs}, nil
}

// Name implements Generator.
func (m *Mix) Name() string { return "mix(" + m.a.Name() + "," + m.b.Name() + ")" }

// WorkingSet implements Generator.
func (m *Mix) WorkingSet() uint64 { return m.a.WorkingSet() + m.b.WorkingSet() }

// Next implements Generator.
func (m *Mix) Next() uint64 {
	var a uint64
	if m.pos < m.aRefs {
		a = m.a.Next()
	} else {
		a = m.b.Next()
	}
	m.pos++
	if m.pos == m.aRefs+m.bRefs {
		m.pos = 0
	}
	return a
}

// NextBatch implements BatchGenerator by emitting whole duty-cycle runs:
// each run of consecutive A (or B) references becomes one sub-batch filled
// through the sub-generator's own batch path.
func (m *Mix) NextBatch(dst []uint64) {
	for len(dst) > 0 {
		var g Generator
		var run int
		if m.pos < m.aRefs {
			g, run = m.a, m.aRefs-m.pos
		} else {
			g, run = m.b, m.aRefs+m.bRefs-m.pos
		}
		if run > len(dst) {
			run = len(dst)
		}
		FillBatch(g, dst[:run])
		dst = dst[run:]
		m.pos += run
		if m.pos == m.aRefs+m.bRefs {
			m.pos = 0
		}
	}
}

// Reset implements Generator.
func (m *Mix) Reset() {
	m.a.Reset()
	m.b.Reset()
	m.pos = 0
}
