package addrgen

import (
	"testing"
)

// batchCases builds, per invocation, a fresh pair of identically-constructed
// generators for every concrete type in the package.
func batchCases(t *testing.T) map[string][2]Generator {
	t.Helper()
	mk := func() []Generator {
		stride, err := NewStride(1<<12, 24, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		random, err := NewRandom(1<<20, 1<<14, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		stencil, err := NewStencil3D(1<<24, 13, 7, 5, 8)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := NewGatherScatter(0, 1<<12, 1<<20, 1<<14, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		ma, _ := NewStride(0, 8, 1<<12)
		mb, _ := NewRandom(1<<20, 1<<12, 8, 9)
		mix, err := NewMix(ma, mb, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		bh, _ := NewStride(0, 8, 4<<10)
		bc, _ := NewRandom(1<<20, 1<<14, 8, 11)
		biased, err := NewBiased(bh, bc, 0.37)
		if err != nil {
			t.Fatal(err)
		}
		return []Generator{stride, random, stencil, gs, mix, biased}
	}
	a, b := mk(), mk()
	out := make(map[string][2]Generator, len(a))
	for i := range a {
		out[a[i].Name()] = [2]Generator{a[i], b[i]}
	}
	return out
}

// TestNextBatchMatchesNext is the batching contract: NextBatch must emit
// exactly the stream repeated Next calls would, for every generator and for
// awkward batch sizes (1, primes, sizes spanning duty-cycle boundaries).
func TestNextBatchMatchesNext(t *testing.T) {
	for name, pair := range batchCases(t) {
		serial, batched := pair[0], pair[1]
		if _, ok := batched.(BatchGenerator); !ok {
			t.Errorf("%s does not implement BatchGenerator", name)
			continue
		}
		var got []uint64
		for _, n := range []int{1, 3, 7, 64, 129, 1000, 4096} {
			buf := make([]uint64, n)
			FillBatch(batched, buf)
			got = append(got, buf...)
		}
		for i := range got {
			if want := serial.Next(); got[i] != want {
				t.Fatalf("%s: batched stream diverged at ref %d: got %#x, want %#x", name, i, got[i], want)
			}
		}
	}
}

// TestFillBatchFallback drives a Generator that lacks NextBatch through the
// repeated-Next fallback.
func TestFillBatchFallback(t *testing.T) {
	a, _ := NewStride(0, 8, 1<<10)
	b, _ := NewStride(0, 8, 1<<10)
	buf := make([]uint64, 100)
	FillBatch(plainGenerator{a}, buf)
	for i, got := range buf {
		if want := b.Next(); got != want {
			t.Fatalf("fallback diverged at %d: got %#x, want %#x", i, got, want)
		}
	}
}

// plainGenerator hides the embedded generator's NextBatch by wrapping it in
// a type that only satisfies Generator.
type plainGenerator struct{ g *Stride }

func (p plainGenerator) Name() string       { return p.g.Name() }
func (p plainGenerator) Next() uint64       { return p.g.Next() }
func (p plainGenerator) Reset()             { p.g.Reset() }
func (p plainGenerator) WorkingSet() uint64 { return p.g.WorkingSet() }

// TestNextBatchResumesMidCycle interleaves Next and NextBatch calls on one
// generator: batching must pick up exactly where scalar calls left off.
func TestNextBatchResumesMidCycle(t *testing.T) {
	for name, pair := range batchCases(t) {
		serial, mixed := pair[0], pair[1]
		var got []uint64
		for round := 0; round < 5; round++ {
			got = append(got, mixed.Next(), mixed.Next(), mixed.Next())
			buf := make([]uint64, 17)
			FillBatch(mixed, buf)
			got = append(got, buf...)
		}
		for i := range got {
			if want := serial.Next(); got[i] != want {
				t.Fatalf("%s: mixed scalar/batch stream diverged at ref %d", name, i)
			}
		}
		_ = name
	}
}

func TestFillBatchAllocationFree(t *testing.T) {
	g, _ := NewStride(0, 8, 1<<16)
	buf := make([]uint64, 4096)
	allocs := testing.AllocsPerRun(20, func() { FillBatch(g, buf) })
	if allocs != 0 {
		t.Errorf("FillBatch allocated %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkStrideNextBatch(b *testing.B) {
	g, _ := NewStride(0, 8, 1<<20)
	buf := make([]uint64, 4096)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf) * 8))
	for i := 0; i < b.N; i++ {
		g.NextBatch(buf)
	}
}

func BenchmarkRandomNextBatch(b *testing.B) {
	g, _ := NewRandom(0, 1<<20, 8, 1)
	buf := make([]uint64, 4096)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf) * 8))
	for i := 0; i < b.N; i++ {
		g.NextBatch(buf)
	}
}
