package addrgen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStrideSequence(t *testing.T) {
	g, err := NewStride(1000, 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1000, 1008, 1016, 1000, 1008}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Errorf("addr %d = %d, want %d", i, got, w)
		}
	}
}

func TestStrideRoundsWorkingSetUp(t *testing.T) {
	g, err := NewStride(0, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.WorkingSet(); got != 128 {
		t.Errorf("WorkingSet = %d, want 128 (rounded to stride)", got)
	}
}

func TestStrideErrors(t *testing.T) {
	if _, err := NewStride(0, 0, 100); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := NewStride(0, 8, 0); err == nil {
		t.Error("zero working set accepted")
	}
}

func TestStrideReset(t *testing.T) {
	g, _ := NewStride(0, 8, 64)
	first := g.Next()
	g.Next()
	g.Reset()
	if got := g.Next(); got != first {
		t.Errorf("after Reset: %d, want %d", got, first)
	}
}

func TestRandomDeterministicAndBounded(t *testing.T) {
	a, err := NewRandom(4096, 1024, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRandom(4096, 1024, 8, 42)
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, x, y)
		}
		if x < 4096 || x >= 4096+1024 {
			t.Fatalf("address %d out of working set", x)
		}
		if (x-4096)%8 != 0 {
			t.Fatalf("address %d not element aligned", x)
		}
	}
}

func TestRandomResetReplays(t *testing.T) {
	g, _ := NewRandom(0, 4096, 8, 7)
	var first []uint64
	for i := 0; i < 10; i++ {
		first = append(first, g.Next())
	}
	g.Reset()
	for i := 0; i < 10; i++ {
		if got := g.Next(); got != first[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestRandomErrors(t *testing.T) {
	if _, err := NewRandom(0, 4, 8, 1); err == nil {
		t.Error("working set smaller than element accepted")
	}
	if _, err := NewRandom(0, 8, 0, 1); err == nil {
		t.Error("zero element size accepted")
	}
}

func TestStencil3DCoversGrid(t *testing.T) {
	const nx, ny, nz, elem = 4, 3, 2, 8
	g, err := NewStencil3D(0, nx, ny, nz, elem)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.WorkingSet(); got != nx*ny*nz*elem {
		t.Errorf("WorkingSet = %d", got)
	}
	seen := map[uint64]bool{}
	// One full sweep: 7 refs per cell.
	for i := 0; i < nx*ny*nz*7; i++ {
		a := g.Next()
		if a >= nx*ny*nz*elem {
			t.Fatalf("address %d outside grid", a)
		}
		if a%elem != 0 {
			t.Fatalf("address %d unaligned", a)
		}
		seen[a] = true
	}
	if len(seen) != nx*ny*nz {
		t.Errorf("sweep touched %d distinct cells, want %d", len(seen), nx*ny*nz)
	}
}

func TestStencil3DCenterAndNeighbors(t *testing.T) {
	// Interior cell (1,1,1) of a 3x3x3 grid: its 7 points are distinct.
	g, _ := NewStencil3D(0, 3, 3, 3, 8)
	// Advance to cell (1,1,1): row-major index = (1*3+1)*3+1 = 13 cells.
	for i := 0; i < 13*7; i++ {
		g.Next()
	}
	pts := map[uint64]bool{}
	for i := 0; i < 7; i++ {
		pts[g.Next()] = true
	}
	if len(pts) != 7 {
		t.Errorf("interior stencil has %d distinct points, want 7", len(pts))
	}
}

func TestStencil3DErrors(t *testing.T) {
	if _, err := NewStencil3D(0, 0, 1, 1, 8); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestGatherScatterDutyCycle(t *testing.T) {
	const pBase, pWS = 0, 1 << 10
	const gBase, gWS = 1 << 20, 1 << 12
	g, err := NewGatherScatter(pBase, pWS, gBase, gWS, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Pattern repeats 1 particle ref then 3 grid refs.
	for cycle := 0; cycle < 50; cycle++ {
		a := g.Next()
		if a >= pBase+pWS {
			t.Fatalf("cycle %d: expected particle address, got %#x", cycle, a)
		}
		for r := 0; r < 3; r++ {
			a := g.Next()
			if a < gBase || a >= gBase+gWS {
				t.Fatalf("cycle %d ref %d: expected grid address, got %#x", cycle, r, a)
			}
		}
	}
	if got, want := g.WorkingSet(), uint64(pWS+gWS); got != want {
		t.Errorf("WorkingSet = %d, want %d", got, want)
	}
}

func TestGatherScatterErrors(t *testing.T) {
	if _, err := NewGatherScatter(0, 1024, 0, 1024, 0, 1); err == nil {
		t.Error("zero gridRefs accepted")
	}
	if _, err := NewGatherScatter(0, 0, 0, 1024, 1, 1); err == nil {
		t.Error("zero particle WS accepted")
	}
	if _, err := NewGatherScatter(0, 1024, 0, 4, 1, 1); err == nil {
		t.Error("tiny grid WS accepted")
	}
}

func TestMixDutyCycle(t *testing.T) {
	a, _ := NewStride(0, 8, 1<<10)
	b, _ := NewStride(1<<20, 8, 1<<10)
	m, err := NewMix(a, b, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 20; cycle++ {
		for i := 0; i < 2; i++ {
			if addr := m.Next(); addr >= 1<<20 {
				t.Fatalf("expected A address, got %#x", addr)
			}
		}
		if addr := m.Next(); addr < 1<<20 {
			t.Fatalf("expected B address, got %#x", addr)
		}
	}
}

func TestMixErrors(t *testing.T) {
	a, _ := NewStride(0, 8, 64)
	b, _ := NewStride(0, 8, 64)
	if _, err := NewMix(a, b, 0, 1); err == nil {
		t.Error("zero duty cycle accepted")
	}
}

func TestMixResetAndName(t *testing.T) {
	a, _ := NewStride(0, 8, 64)
	b, _ := NewRandom(1<<20, 1<<10, 8, 3)
	m, _ := NewMix(a, b, 1, 1)
	var first []uint64
	for i := 0; i < 8; i++ {
		first = append(first, m.Next())
	}
	m.Reset()
	for i := 0; i < 8; i++ {
		if got := m.Next(); got != first[i] {
			t.Fatalf("Mix replay diverged at %d", i)
		}
	}
	if m.Name() != "mix(stride,random)" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestFill(t *testing.T) {
	g, _ := NewStride(0, 8, 1<<10)
	buf := Fill(g, nil, 100)
	if len(buf) != 100 {
		t.Fatalf("Fill produced %d addrs", len(buf))
	}
	buf = Fill(g, buf, 50)
	if len(buf) != 150 {
		t.Fatalf("Fill append produced %d addrs", len(buf))
	}
}

// Property: every generator is deterministic — Reset replays the identical
// prefix — and never emits addresses outside [base, base+WS) for the
// single-region generators.
func TestGeneratorDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ws := uint64(64 * (1 + r.Intn(1024)))
		gens := []Generator{}
		if g, err := NewStride(0, 8*uint64(1+r.Intn(16)), ws); err == nil {
			gens = append(gens, g)
		}
		if g, err := NewRandom(0, ws, 8, seed); err == nil {
			gens = append(gens, g)
		}
		if g, err := NewStencil3D(0, uint64(1+r.Intn(16)), uint64(1+r.Intn(16)), uint64(1+r.Intn(8)), 8); err == nil {
			gens = append(gens, g)
		}
		for _, g := range gens {
			first := Fill(g, nil, 200)
			g.Reset()
			second := Fill(g, nil, 200)
			for i := range first {
				if first[i] != second[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStrideNext(b *testing.B) {
	g, _ := NewStride(0, 8, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkStencilNext(b *testing.B) {
	g, _ := NewStencil3D(0, 64, 64, 64, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
