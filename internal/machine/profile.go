package machine

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"tracex/internal/stats"
)

// SurfacePoint is one measurement of the MultiMAPS bandwidth surface: the
// sustained bandwidth observed for a probe with the given working set and
// stride, together with the cumulative cache hit rates that probe achieved
// on the machine. The (hit rates → bandwidth) mapping is what the
// convolution consults (Figure 1 of the paper).
type SurfacePoint struct {
	WorkingSetBytes uint64    `json:"working_set_bytes"`
	StrideBytes     uint64    `json:"stride_bytes"`
	HitRates        []float64 `json:"hit_rates"`
	BandwidthGBs    float64   `json:"bandwidth_gbs"`
	// ResidentFraction is non-zero for mixed-locality probes: the fraction
	// of references served from a cache-resident region, with the rest
	// streaming from memory. These probes populate the surface between the
	// all-resident and all-streaming extremes.
	ResidentFraction float64 `json:"resident_fraction,omitempty"`
	// PrefetchPerRef is the hardware-prefetcher traffic the probe incurred
	// (lines installed per demand reference). On prefetching machines the
	// demand hit rates alone no longer determine bandwidth — prefetched
	// streams show near-perfect hit rates while still paying full memory
	// traffic — so the lookup must see this dimension.
	PrefetchPerRef float64 `json:"prefetch_per_ref,omitempty"`
}

// Interpolation selects how LookupBandwidth maps a hit-rate vector onto the
// measured surface.
type Interpolation int

const (
	// InterpModel (the default) fits a linear cycles-per-reference model
	// over every surface probe — one coefficient per locality class (each
	// cache level plus main memory) — and evaluates it at the query,
	// bounded by the machine's sustained-memory-bandwidth floor. This is
	// the fitted-memory-model approach of the PMaC framework (Tikir et
	// al., the paper's reference [27]).
	InterpModel Interpolation = iota
	// InterpIDW uses inverse-distance weighting over the four nearest
	// probes in latency-weighted hit-rate space, interpolating reciprocal
	// bandwidths.
	InterpIDW
)

// Profile is a machine profile: the description of the rates at which a
// machine performs fundamental operations, derived from benchmark probes.
type Profile struct {
	Machine Config         `json:"machine"`
	Surface []SurfacePoint `json:"surface"`

	// interp selects the lookup strategy (InterpModel by default).
	interp Interpolation
	// mu guards the lazily fitted coef so profiles can be shared across
	// goroutines (the Engine caches and hands out one *Profile per
	// machine).
	mu sync.Mutex
	// coef caches the fitted per-class cycles-per-reference coefficients
	// (levels+1 entries, memory last); nil until first fit.
	coef []float64
}

// SetInterpolation selects the bandwidth-lookup strategy.
func (p *Profile) SetInterpolation(i Interpolation) {
	p.mu.Lock()
	p.interp = i
	p.coef = nil
	p.mu.Unlock()
}

// Validate checks profile consistency.
func (p *Profile) Validate() error {
	if err := p.Machine.Validate(); err != nil {
		return err
	}
	if len(p.Surface) == 0 {
		return fmt.Errorf("machine: profile for %s has an empty surface", p.Machine.Name)
	}
	nl := len(p.Machine.Caches)
	for i, sp := range p.Surface {
		if len(sp.HitRates) != nl {
			return fmt.Errorf("machine: surface point %d has %d hit rates, machine has %d levels", i, len(sp.HitRates), nl)
		}
		if sp.BandwidthGBs <= 0 {
			return fmt.Errorf("machine: surface point %d has non-positive bandwidth", i)
		}
		for j := range sp.HitRates {
			if sp.HitRates[j] < 0 || sp.HitRates[j] > 1 {
				return fmt.Errorf("machine: surface point %d hit rate %d out of [0,1]", i, j)
			}
			if j > 0 && sp.HitRates[j] < sp.HitRates[j-1]-1e-9 {
				return fmt.Errorf("machine: surface point %d has non-monotone cumulative hit rates", i)
			}
		}
	}
	return nil
}

// levelWeights returns the lookup-space weight of each cumulative hit-rate
// dimension: the cost (cycle) difference between serving a reference at
// that level versus the next one, normalized by the memory latency. A
// difference in the last-level rate — references that fall out to main
// memory — dominates the distance, matching how strongly it shifts the
// achievable bandwidth.
func (p *Profile) levelWeights() []float64 {
	n := len(p.Machine.CacheLatency)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		next := p.Machine.MemLatencyCycles
		if i+1 < n {
			next = p.Machine.CacheLatency[i+1]
		}
		w[i] = (next - p.Machine.CacheLatency[i]) / p.Machine.MemLatencyCycles
	}
	return w
}

// surfaceDistance is the squared distance between a query and a probe point
// in the lookup space: latency-weighted cumulative hit rates (dominant)
// plus the log-ratio of working set sizes (mild tie-breaker between probes
// with equal rates).
func surfaceDistance(hr []float64, pfPerRef, ws float64, weights []float64, sp SurfacePoint) float64 {
	var d float64
	for i := range hr {
		diff := (hr[i] - sp.HitRates[i]) * weights[i]
		d += diff * diff
	}
	// Prefetch traffic carries the memory-cost weight: it moves lines.
	pfd := (pfPerRef - sp.PrefetchPerRef) * weights[len(weights)-1]
	d += pfd * pfd
	if ws > 0 && sp.WorkingSetBytes > 0 {
		lr := math.Log(ws/float64(sp.WorkingSetBytes)) / math.Log(1024)
		d += 1e-6 * lr * lr
	}
	return d
}

// LookupBandwidth interpolates the MultiMAPS surface at the given cumulative
// hit-rate vector and working-set size, returning the expected sustained
// memory bandwidth in GB/s. It uses inverse-distance weighting over the four
// nearest surface points (an exact match returns that point's bandwidth),
// interpolating in reciprocal-bandwidth space: time per byte is what adds
// linearly as locality degrades, so 1/bandwidth is the quantity to average.
// This is the "find where the block falls on the MultiMAPS curve" step of
// the paper's Equation 1 (the memory_BW_j denominator).
func (p *Profile) LookupBandwidth(hitRates []float64, wsBytes float64) (float64, error) {
	return p.LookupBandwidthPF(hitRates, 0, wsBytes)
}

// LookupBandwidthPF is LookupBandwidth for blocks that also carry hardware
// prefetch traffic (lines per demand reference); on machines without a
// prefetcher pass 0.
func (p *Profile) LookupBandwidthPF(hitRates []float64, prefetchPerRef, wsBytes float64) (float64, error) {
	if len(p.Surface) == 0 {
		return 0, fmt.Errorf("machine: empty surface")
	}
	if len(hitRates) != len(p.Machine.Caches) {
		return 0, fmt.Errorf("machine: %d hit rates for %d cache levels", len(hitRates), len(p.Machine.Caches))
	}
	if p.interp == InterpModel {
		return p.lookupModel(hitRates, prefetchPerRef)
	}
	type cand struct {
		d  float64
		bw float64
	}
	weights := p.levelWeights()
	cands := make([]cand, 0, len(p.Surface))
	for _, sp := range p.Surface {
		d := surfaceDistance(hitRates, prefetchPerRef, wsBytes, weights, sp)
		if d == 0 {
			return sp.BandwidthGBs, nil
		}
		cands = append(cands, cand{d, sp.BandwidthGBs})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	k := 4
	if k > len(cands) {
		k = len(cands)
	}
	var wsum, invsum float64
	for _, c := range cands[:k] {
		w := 1 / c.d
		wsum += w
		invsum += w / c.bw
	}
	return wsum / invsum, nil
}

// ProbeElemBytes is the payload size of one MultiMAPS probe reference;
// surface bandwidths are payload rates for references of this size.
const ProbeElemBytes = 8

// localFractions converts cumulative hit rates into per-class local
// fractions: the share of references served by each cache level, with the
// main-memory share last. Entries sum to 1.
func localFractions(hitRates []float64) []float64 {
	fr := make([]float64, len(hitRates)+1)
	prev := 0.0
	for i, h := range hitRates {
		f := h - prev
		if f < 0 {
			f = 0
		}
		fr[i] = f
		prev = h
	}
	mem := 1 - prev
	if mem < 0 {
		mem = 0
	}
	fr[len(hitRates)] = mem
	return fr
}

// modelFeatures builds the regression feature vector for one observation:
// per-class local fractions plus the prefetch traffic per reference.
func modelFeatures(hitRates []float64, prefetchPerRef float64) []float64 {
	fr := localFractions(hitRates)
	return append(fr, prefetchPerRef)
}

// fitModel least-squares fits cycles-per-reference against the per-class
// local fractions (plus prefetch traffic) over every surface probe. The
// coefficients are the measured effective cost of serving a reference from
// each locality class — the machine profile's memory model.
func (p *Profile) fitModel() error {
	n := len(p.Machine.Caches) + 2 // locality classes + memory + prefetch
	ata := make([][]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	atb := make([]float64, n)
	clockHz := p.Machine.ClockGHz * 1e9
	pfSeen := false
	for _, sp := range p.Surface {
		if sp.PrefetchPerRef > 0 {
			pfSeen = true
		}
		ft := modelFeatures(sp.HitRates, sp.PrefetchPerRef)
		// cycles per probe reference implied by the measured bandwidth.
		cpr := ProbeElemBytes * clockHz / (sp.BandwidthGBs * 1e9)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ata[i][j] += ft[i] * ft[j]
			}
			atb[i] += ft[i] * cpr
		}
	}
	if !pfSeen {
		// No prefetch traffic anywhere on the surface: the prefetch column
		// is all zeros and would make the system singular. Pin its
		// coefficient with a unit ridge row.
		ata[n-1][n-1] += 1
	}
	coef, err := stats.SolveLinear(ata, atb)
	if err != nil {
		return fmt.Errorf("machine: fitting memory model: %w", err)
	}
	for i, c := range coef {
		if c < 0 {
			coef[i] = 0 // numerical artifacts from near-collinear probes
		}
	}
	p.coef = coef
	return nil
}

// lookupModel evaluates the fitted memory model at a hit-rate vector (plus
// prefetch traffic) and applies the machine's sustained-bandwidth ceiling
// for the implied total memory traffic.
func (p *Profile) lookupModel(hitRates []float64, prefetchPerRef float64) (float64, error) {
	p.mu.Lock()
	if p.coef == nil {
		if err := p.fitModel(); err != nil {
			p.mu.Unlock()
			return 0, err
		}
	}
	coef := p.coef
	p.mu.Unlock()
	ft := modelFeatures(hitRates, prefetchPerRef)
	var cpr float64
	for i, f := range ft {
		cpr += f * coef[i]
	}
	if cpr <= 0 {
		return 0, fmt.Errorf("machine: memory model gave non-positive cost for rates %v", hitRates)
	}
	clockHz := p.Machine.ClockGHz * 1e9
	bw := ProbeElemBytes * clockHz / cpr / 1e9
	// Bandwidth ceiling: demand misses and prefetch fills both move whole
	// lines and cannot exceed the sustained memory bandwidth.
	fr := localFractions(hitRates)
	if traffic := fr[len(fr)-1] + prefetchPerRef; traffic > 0 {
		ceiling := p.Machine.MemBandwidthGBs * ProbeElemBytes /
			(traffic * float64(p.Machine.Caches[0].LineSize))
		if bw > ceiling {
			bw = ceiling
		}
	}
	return bw, nil
}

// FPRate returns the achievable floating-point rate in FLOP/s for a basic
// block exhibiting the given instruction-level parallelism: peak throughput
// scaled by how much of the issue width the block's ILP can fill.
func (p *Profile) FPRate(ilp float64) float64 {
	eff := ilp / p.Machine.IssueWidth
	if eff > 1 {
		eff = 1
	}
	if eff < 0.05 {
		eff = 0.05 // serial dependency floor: one op in flight
	}
	return p.Machine.FLOPSPerSecond() * eff
}

// WriteJSON serializes the profile.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadProfileJSON deserializes and validates a profile.
func ReadProfileJSON(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("machine: decoding profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// SaveProfile writes the profile to a file.
func SaveProfile(p *Profile, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	defer f.Close()
	if err := p.WriteJSON(f); err != nil {
		return fmt.Errorf("machine: writing %s: %w", path, err)
	}
	return f.Close()
}

// LoadProfile reads a profile from a file.
func LoadProfile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	defer f.Close()
	return ReadProfileJSON(f)
}
