package machine

import (
	"math"
	"testing"
)

// pfSurface builds a synthetic surface mixing prefetch-free and prefetching
// probes generated from a known cost model:
// cycles/ref = Σ local_i·cost_i + pfPerRef·pfCost.
func pfSurface(cfg Config, cost []float64, pfCost float64) *Profile {
	clockHz := cfg.ClockGHz * 1e9
	p := &Profile{Machine: cfg}
	mk := func(h1, h2, pf float64) SurfacePoint {
		fr := localFractions([]float64{h1, h2})
		cpr := fr[0]*cost[0] + fr[1]*cost[1] + fr[2]*cost[2] + pf*pfCost
		return SurfacePoint{
			HitRates:       []float64{h1, h2},
			PrefetchPerRef: pf,
			BandwidthGBs:   ProbeElemBytes * clockHz / cpr / 1e9,
		}
	}
	for _, pt := range [][3]float64{
		{1, 1, 0}, {0.875, 1, 0}, {0.5, 0.75, 0}, {0.2, 0.3, 0},
		// Prefetching probes: near-perfect demand rates but real traffic.
		{0.99, 1, 0.125}, {1, 1, 0.125}, {0.95, 0.97, 0.06}, {0.9, 0.9, 0.03},
	} {
		p.Surface = append(p.Surface, mk(pt[0], pt[1], pt[2]))
	}
	return p
}

func TestModelLookupDistinguishesPrefetchTraffic(t *testing.T) {
	cfg := Opteron2L()
	cfg.MemBandwidthGBs = 1000 // keep the ceiling out of play
	cost := []float64{1.0, 4.0, 60.0}
	const pfCost = 57.0
	p := pfSurface(cfg, cost, pfCost)
	clockHz := cfg.ClockGHz * 1e9

	// Two queries with identical demand hit rates but different prefetch
	// traffic must get very different bandwidths.
	resident, err := p.LookupBandwidthPF([]float64{1, 1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := p.LookupBandwidthPF([]float64{1, 1}, 0.125, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantResident := ProbeElemBytes * clockHz / cost[0] / 1e9
	wantStreamed := ProbeElemBytes * clockHz / (cost[0] + 0.125*pfCost) / 1e9
	if e := math.Abs(resident-wantResident) / wantResident; e > 0.02 {
		t.Errorf("resident bw %g, want %g", resident, wantResident)
	}
	if e := math.Abs(streamed-wantStreamed) / wantStreamed; e > 0.02 {
		t.Errorf("streamed bw %g, want %g", streamed, wantStreamed)
	}
	if streamed >= resident {
		t.Errorf("prefetch traffic did not reduce bandwidth: %g vs %g", streamed, resident)
	}
}

func TestModelLookupPrefetchCeiling(t *testing.T) {
	// Prefetch traffic counts against the sustained-bandwidth ceiling.
	cfg := Opteron2L()
	cfg.MemBandwidthGBs = 0.5
	p := pfSurface(cfg, []float64{1, 2, 4}, 3)
	bw, err := p.LookupBandwidthPF([]float64{1, 1}, 1.0, 0) // one line per ref
	if err != nil {
		t.Fatal(err)
	}
	ceiling := cfg.MemBandwidthGBs * ProbeElemBytes / float64(cfg.Caches[0].LineSize)
	if bw > ceiling+1e-9 {
		t.Errorf("bw %g exceeds prefetch-traffic ceiling %g", bw, ceiling)
	}
}

func TestModelLookupZeroPrefetchBackwardCompatible(t *testing.T) {
	// On a surface with no prefetching probes, LookupBandwidth (pf=0) must
	// behave exactly as before the schema extension.
	p := testProfile()
	a, err := p.LookupBandwidth([]float64{0.9, 0.95}, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.LookupBandwidthPF([]float64{0.9, 0.95}, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("LookupBandwidth %g != LookupBandwidthPF(0) %g", a, b)
	}
}

func TestIDWLookupSeesPrefetchDimension(t *testing.T) {
	cfg := Opteron2L()
	cfg.MemBandwidthGBs = 1000
	p := pfSurface(cfg, []float64{1.0, 4.0, 60.0}, 57.0)
	p.SetInterpolation(InterpIDW)
	resident, err := p.LookupBandwidthPF([]float64{1, 1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := p.LookupBandwidthPF([]float64{1, 1}, 0.125, 0)
	if err != nil {
		t.Fatal(err)
	}
	if streamed >= resident {
		t.Errorf("IDW ignored prefetch dimension: %g vs %g", streamed, resident)
	}
}
