package machine

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"tracex/internal/cache"
)

func TestPredefinedConfigsValidate(t *testing.T) {
	for _, name := range Names() {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		if cfg.Name != name {
			t.Errorf("ByName(%s) returned %s", name, cfg.Name)
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestTableIIISystemsShareDeepCaches(t *testing.T) {
	a, b := SystemA12KB(), SystemB56KB()
	if a.Caches[0].SizeBytes != 12<<10 || b.Caches[0].SizeBytes != 56<<10 {
		t.Fatalf("L1 sizes: %d, %d", a.Caches[0].SizeBytes, b.Caches[0].SizeBytes)
	}
	for i := 1; i < len(a.Caches); i++ {
		if a.Caches[i] != b.Caches[i] {
			t.Errorf("level %d differs between Table III systems", i)
		}
	}
	// Building the modified configs must not mutate the base config.
	if BlueWatersP1().Caches[0].SizeBytes != 32<<10 {
		t.Error("SystemA/B construction corrupted BlueWatersP1")
	}
}

func TestConfigValidateRejectsBadConfigs(t *testing.T) {
	base := Kraken()
	mutations := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.ClockGHz = 0 },
		func(c *Config) { c.Caches = nil },
		func(c *Config) { c.CacheLatency = c.CacheLatency[:1] },
		func(c *Config) { c.CacheLatency = []float64{3, 2, 1} },
		func(c *Config) { c.CacheLatency = []float64{0, 15, 40} },
		func(c *Config) { c.MemLatencyCycles = 5 },
		func(c *Config) { c.MemBandwidthGBs = 0 },
		func(c *Config) { c.FLOPsPerCycle = 0 },
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.MLP = 0.5 },
		func(c *Config) { c.Network.BandwidthGBs = 0 },
		func(c *Config) { c.Network.LatencyUS = -1 },
	}
	for i, mut := range mutations {
		c := base
		c.Caches = append([]cache.LevelConfig(nil), base.Caches...)
		c.CacheLatency = append([]float64(nil), base.CacheLatency...)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestConfigDerivedRates(t *testing.T) {
	c := Kraken()
	if got, want := c.FLOPSPerSecond(), 2.6e9*4; got != want {
		t.Errorf("FLOPSPerSecond = %g, want %g", got, want)
	}
	if got := c.CycleSeconds() * c.ClockGHz * 1e9; got < 0.999 || got > 1.001 {
		t.Errorf("CycleSeconds inconsistent: %g", got)
	}
}

func testProfile() *Profile {
	cfg := Opteron2L()
	return &Profile{
		Machine: cfg,
		Surface: []machine2Point{
			{HitRates: []float64{1.0, 1.0}, WorkingSetBytes: 16 << 10, StrideBytes: 8, BandwidthGBs: 20},
			{HitRates: []float64{0.5, 1.0}, WorkingSetBytes: 128 << 10, StrideBytes: 8, BandwidthGBs: 8},
			{HitRates: []float64{0.1, 0.9}, WorkingSetBytes: 512 << 10, StrideBytes: 8, BandwidthGBs: 4},
			{HitRates: []float64{0.05, 0.1}, WorkingSetBytes: 8 << 20, StrideBytes: 8, BandwidthGBs: 1.5},
		},
	}
}

// machine2Point aliases SurfacePoint to keep the literal table compact.
type machine2Point = SurfacePoint

func TestProfileValidate(t *testing.T) {
	p := testProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := testProfile()
	bad.Surface[0].HitRates = []float64{1.0}
	if err := bad.Validate(); err == nil {
		t.Error("wrong hit-rate arity accepted")
	}
	bad = testProfile()
	bad.Surface[1].BandwidthGBs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = testProfile()
	bad.Surface[2].HitRates = []float64{0.9, 0.1} // non-monotone cumulative
	if err := bad.Validate(); err == nil {
		t.Error("non-monotone hit rates accepted")
	}
	bad = testProfile()
	bad.Surface = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty surface accepted")
	}
}

func TestLookupBandwidthExactMatch(t *testing.T) {
	p := testProfile()
	p.SetInterpolation(InterpIDW)
	bw, err := p.LookupBandwidth([]float64{0.5, 1.0}, 128<<10)
	if err != nil {
		t.Fatalf("LookupBandwidth: %v", err)
	}
	if bw != 8 {
		t.Errorf("exact match bandwidth = %g, want 8", bw)
	}
}

func TestLookupBandwidthInterpolates(t *testing.T) {
	p := testProfile()
	p.SetInterpolation(InterpIDW)
	// Between the 0.5 and 1.0 L1 hit-rate points: bandwidth between 8 and 20.
	bw, err := p.LookupBandwidth([]float64{0.75, 1.0}, 64<<10)
	if err != nil {
		t.Fatalf("LookupBandwidth: %v", err)
	}
	if bw <= 8 || bw >= 20 {
		t.Errorf("interpolated bandwidth %g outside (8, 20)", bw)
	}
}

func TestLookupBandwidthMonotoneInLastLevelRate(t *testing.T) {
	// The lookup distance weights the last-level rate heaviest (it decides
	// how many references fall out to memory), so bandwidth must be
	// monotone along that axis.
	p := testProfile()
	prev := 0.0
	for _, hr := range []float64{0.1, 0.4, 0.7, 0.95, 1.0} {
		l1 := hr * 0.5
		bw, err := p.LookupBandwidth([]float64{l1, hr}, 64<<10)
		if err != nil {
			t.Fatalf("LookupBandwidth(%g): %v", hr, err)
		}
		if bw < prev-1e-9 {
			t.Errorf("bandwidth not monotone in last-level rate at %g: %g < %g", hr, bw, prev)
		}
		prev = bw
	}
}

func TestLookupBandwidthErrors(t *testing.T) {
	p := testProfile()
	if _, err := p.LookupBandwidth([]float64{0.5}, 0); err == nil {
		t.Error("wrong arity accepted")
	}
	empty := &Profile{Machine: Opteron2L()}
	if _, err := empty.LookupBandwidth([]float64{0.5, 0.5}, 0); err == nil {
		t.Error("empty surface accepted")
	}
}

func TestModelLookupRecoversLatencyStructure(t *testing.T) {
	// Build a synthetic surface directly from a known per-class cost model
	// and verify the fitted-model lookup reproduces held-out queries.
	cfg := Opteron2L()
	cfg.MemBandwidthGBs = 1000 // keep the sustained-bandwidth ceiling out of play
	clockHz := cfg.ClockGHz * 1e9
	cost := []float64{1.0, 4.0, 60.0} // cycles/ref served by L1, L2, memory
	mkPoint := func(h1, h2 float64) SurfacePoint {
		fr := localFractions([]float64{h1, h2})
		var cpr float64
		for i, f := range fr {
			cpr += f * cost[i]
		}
		return SurfacePoint{
			HitRates:     []float64{h1, h2},
			BandwidthGBs: ProbeElemBytes * clockHz / cpr / 1e9,
		}
	}
	p := &Profile{Machine: cfg}
	for _, h := range [][2]float64{
		{1, 1}, {0.875, 1}, {0.875, 0.875}, {0.5, 0.5}, {0.9, 0.95},
		{0.99, 0.99}, {0.7, 0.9}, {0.2, 0.3},
	} {
		p.Surface = append(p.Surface, mkPoint(h[0], h[1]))
	}
	// Held-out queries: the fitted model must reproduce the generating
	// cost model (ceiling never binds with these coefficients).
	for _, q := range [][2]float64{{0.95, 0.97}, {0.6, 0.8}, {0.875, 0.98}} {
		want := mkPoint(q[0], q[1]).BandwidthGBs
		got, err := p.LookupBandwidth([]float64{q[0], q[1]}, 0)
		if err != nil {
			t.Fatalf("LookupBandwidth(%v): %v", q, err)
		}
		if e := math.Abs(got-want) / want; e > 0.02 {
			t.Errorf("query %v: bw %g, want %g (%.1f%% off)", q, got, want, 100*e)
		}
	}
}

func TestModelLookupAppliesBandwidthCeiling(t *testing.T) {
	// A machine with huge MLP-equivalent latency coefficients but a tiny
	// sustained memory bandwidth: streaming queries must be capped.
	cfg := Opteron2L()
	cfg.MemBandwidthGBs = 0.5
	clockHz := cfg.ClockGHz * 1e9
	p := &Profile{Machine: cfg}
	// Latency-only surface implying ~4 cycles per memory reference (far
	// faster than 0.5 GB/s allows for 64-byte lines).
	for _, h := range [][2]float64{{1, 1}, {0.5, 0.75}, {0, 0}} {
		fr := localFractions([]float64{h[0], h[1]})
		cpr := fr[0]*1 + fr[1]*2 + fr[2]*4
		p.Surface = append(p.Surface, SurfacePoint{
			HitRates:     []float64{h[0], h[1]},
			BandwidthGBs: ProbeElemBytes * clockHz / cpr / 1e9,
		})
	}
	bw, err := p.LookupBandwidth([]float64{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ceiling := cfg.MemBandwidthGBs * ProbeElemBytes / float64(cfg.Caches[0].LineSize)
	if math.Abs(bw-ceiling) > 1e-9 {
		t.Errorf("streaming bw %g, want ceiling %g", bw, ceiling)
	}
}

func TestLocalFractions(t *testing.T) {
	fr := localFractions([]float64{0.5, 0.8, 0.9})
	want := []float64{0.5, 0.3, 0.1, 0.1}
	for i := range want {
		if math.Abs(fr[i]-want[i]) > 1e-12 {
			t.Errorf("fr[%d] = %g, want %g", i, fr[i], want[i])
		}
	}
	// Degenerate (non-monotone) input is clamped, never negative.
	fr = localFractions([]float64{0.9, 0.5})
	for i, f := range fr {
		if f < 0 {
			t.Errorf("fr[%d] = %g negative", i, f)
		}
	}
}

func TestSetInterpolationInvalidatesModelCache(t *testing.T) {
	p := testProfile()
	if _, err := p.LookupBandwidth([]float64{0.9, 0.95}, 0); err != nil {
		t.Fatal(err)
	}
	p.SetInterpolation(InterpIDW)
	p.SetInterpolation(InterpModel)
	if _, err := p.LookupBandwidth([]float64{0.9, 0.95}, 0); err != nil {
		t.Fatalf("after toggling interpolation: %v", err)
	}
}

func TestFPRate(t *testing.T) {
	p := testProfile()
	peak := p.Machine.FLOPSPerSecond()
	if got := p.FPRate(p.Machine.IssueWidth * 2); got != peak {
		t.Errorf("saturated ILP rate = %g, want peak %g", got, peak)
	}
	if got := p.FPRate(p.Machine.IssueWidth / 2); got != peak/2 {
		t.Errorf("half ILP rate = %g, want %g", got, peak/2)
	}
	if got := p.FPRate(0); got != peak*0.05 {
		t.Errorf("zero ILP rate = %g, want floor %g", got, peak*0.05)
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p := testProfile()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	q, err := ReadProfileJSON(&buf)
	if err != nil {
		t.Fatalf("ReadProfileJSON: %v", err)
	}
	if q.Machine.Name != p.Machine.Name || len(q.Surface) != len(p.Surface) {
		t.Errorf("round trip mismatch: %s/%d vs %s/%d",
			q.Machine.Name, len(q.Surface), p.Machine.Name, len(p.Surface))
	}
	for i := range p.Surface {
		if q.Surface[i].BandwidthGBs != p.Surface[i].BandwidthGBs {
			t.Errorf("surface point %d bandwidth mismatch", i)
		}
	}
}

func TestReadProfileJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadProfileJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadProfileJSON(bytes.NewBufferString(`{"machine":{"Name":""},"surface":[]}`)); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestSaveLoadProfile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profile.json")
	p := testProfile()
	if err := SaveProfile(p, path); err != nil {
		t.Fatalf("SaveProfile: %v", err)
	}
	q, err := LoadProfile(path)
	if err != nil {
		t.Fatalf("LoadProfile: %v", err)
	}
	if q.Machine.Name != p.Machine.Name {
		t.Errorf("loaded machine %s, want %s", q.Machine.Name, p.Machine.Name)
	}
	if _, err := LoadProfile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := SaveProfile(p, filepath.Join(dir, "no/such/dir/p.json")); err == nil {
		t.Error("bad path accepted")
	}
}

// Property: interpolated bandwidth always lies within the surface's
// [min, max] bandwidth range (inverse-distance weighting is a convex
// combination).
func TestLookupBandwidthBoundedProperty(t *testing.T) {
	p := testProfile()
	p.SetInterpolation(InterpIDW)
	lo, hi := 1.5, 20.0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h1 := r.Float64()
		h2 := h1 + (1-h1)*r.Float64()
		ws := float64(1<<10) * (1 + r.Float64()*1e4)
		bw, err := p.LookupBandwidth([]float64{h1, h2}, ws)
		if err != nil {
			return false
		}
		return bw >= lo-1e-9 && bw <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelWeightsStructure(t *testing.T) {
	p := &Profile{Machine: BlueWatersP1()}
	w := p.levelWeights()
	if len(w) != len(p.Machine.Caches) {
		t.Fatalf("got %d weights", len(w))
	}
	// Weights sum to (memLat - L1lat)/memLat and the last (memory-side)
	// weight dominates.
	var sum float64
	for i, wi := range w {
		if wi <= 0 {
			t.Errorf("weight %d = %g", i, wi)
		}
		sum += wi
	}
	cfg := p.Machine
	want := (cfg.MemLatencyCycles - cfg.CacheLatency[0]) / cfg.MemLatencyCycles
	if math.Abs(sum-want) > 1e-12 {
		t.Errorf("weights sum %g, want %g", sum, want)
	}
	if w[len(w)-1] < 0.8 {
		t.Errorf("memory-side weight %g should dominate", w[len(w)-1])
	}
}

func TestProfileJSONPreservesPrefetchFields(t *testing.T) {
	p := &Profile{
		Machine: WithPrefetch(Opteron2L()),
		Surface: []SurfacePoint{{
			HitRates: []float64{0.99, 0.99}, BandwidthGBs: 5,
			ResidentFraction: 0.5, PrefetchPerRef: 0.125,
		}},
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProfileJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Machine.Prefetch {
		t.Error("Prefetch flag lost in round trip")
	}
	if q.Surface[0].PrefetchPerRef != 0.125 || q.Surface[0].ResidentFraction != 0.5 {
		t.Errorf("probe fields lost: %+v", q.Surface[0])
	}
}
