// Package machine describes target systems for the PMaC-style prediction
// framework: the hardware configuration (cache geometry, core clock, memory
// and network parameters) and the machine profile — the set of benchmark-
// derived rates (the MultiMAPS bandwidth surface, floating-point issue
// rates, network latency/bandwidth) that the convolution maps application
// signatures onto.
package machine

import (
	"fmt"
	"strings"

	"tracex/internal/cache"
)

// NetworkConfig parameterizes the interconnect model used when replaying
// communication events (a LogGP-style latency/bandwidth model).
type NetworkConfig struct {
	// LatencyUS is the one-way small-message latency in microseconds.
	LatencyUS float64
	// BandwidthGBs is the per-link sustained bandwidth in GB/s.
	BandwidthGBs float64
	// OverheadUS is the per-message CPU send/receive overhead in
	// microseconds (the "o" of LogGP).
	OverheadUS float64
}

// Validate checks the network parameters.
func (n NetworkConfig) Validate() error {
	if n.LatencyUS < 0 || n.BandwidthGBs <= 0 || n.OverheadUS < 0 {
		return fmt.Errorf("machine: bad network config %+v", n)
	}
	return nil
}

// Config is the full hardware description of a system. It plays the role of
// the system parameters that the paper's machine profile is measured on: the
// cache simulator mimics Caches, and MultiMAPS probes the timing model
// parameterized by the latency/bandwidth fields.
type Config struct {
	// Name identifies the system ("kraken", "bluewaters", ...).
	Name string
	// ClockGHz is the core clock.
	ClockGHz float64
	// Caches lists the cache levels nearest-first.
	Caches []cache.LevelConfig
	// CacheLatency[i] is the load-to-use latency of Caches[i] in cycles.
	CacheLatency []float64
	// MemLatencyCycles is the main-memory access latency in cycles.
	MemLatencyCycles float64
	// MemBandwidthGBs is the sustained main-memory bandwidth per core.
	MemBandwidthGBs float64
	// FLOPsPerCycle is the peak floating-point throughput per core.
	FLOPsPerCycle float64
	// IssueWidth is the maximum instructions issued per cycle; together
	// with a block's measured ILP it bounds achievable arithmetic rates.
	IssueWidth float64
	// MLP is the memory-level parallelism: the average number of
	// outstanding misses the core sustains, which divides effective
	// memory latency.
	MLP float64
	// Prefetch enables the hardware next-line prefetcher in the simulated
	// memory system (a design knob for hardware exploration, like the
	// Table III L1-size candidates).
	Prefetch bool
	// Network describes the interconnect.
	Network NetworkConfig
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("machine: empty name")
	}
	if c.ClockGHz <= 0 {
		return fmt.Errorf("machine %s: non-positive clock %g", c.Name, c.ClockGHz)
	}
	if len(c.Caches) == 0 {
		return fmt.Errorf("machine %s: no cache levels", c.Name)
	}
	if len(c.CacheLatency) != len(c.Caches) {
		return fmt.Errorf("machine %s: %d latencies for %d cache levels", c.Name, len(c.CacheLatency), len(c.Caches))
	}
	for i, lv := range c.Caches {
		if err := lv.Validate(); err != nil {
			return fmt.Errorf("machine %s: %w", c.Name, err)
		}
		if c.CacheLatency[i] <= 0 {
			return fmt.Errorf("machine %s: non-positive latency for %s", c.Name, lv.Name)
		}
		if i > 0 && c.CacheLatency[i] < c.CacheLatency[i-1] {
			return fmt.Errorf("machine %s: latency decreases from %s to %s", c.Name, c.Caches[i-1].Name, lv.Name)
		}
	}
	if c.MemLatencyCycles <= c.CacheLatency[len(c.CacheLatency)-1] {
		return fmt.Errorf("machine %s: memory latency %g not beyond last cache level", c.Name, c.MemLatencyCycles)
	}
	if c.MemBandwidthGBs <= 0 {
		return fmt.Errorf("machine %s: non-positive memory bandwidth", c.Name)
	}
	if c.FLOPsPerCycle <= 0 || c.IssueWidth <= 0 {
		return fmt.Errorf("machine %s: non-positive FP throughput or issue width", c.Name)
	}
	if c.MLP < 1 {
		return fmt.Errorf("machine %s: MLP %g must be ≥1", c.Name, c.MLP)
	}
	return c.Network.Validate()
}

// Fingerprint returns a stable identity string covering every field of the
// configuration. Two configs with equal fingerprints drive identical
// simulations and therefore produce identical profiles and signatures,
// which makes the fingerprint a safe memoization key — unlike Name alone,
// which ad-hoc configs may share while differing in geometry.
func (c Config) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%g|%v|%g|%g|%g|%g|%g|%t|%+v",
		c.Name, c.ClockGHz, c.CacheLatency, c.MemLatencyCycles, c.MemBandwidthGBs,
		c.FLOPsPerCycle, c.IssueWidth, c.MLP, c.Prefetch, c.Network)
	for _, lv := range c.Caches {
		fmt.Fprintf(&sb, "|%+v", lv)
	}
	return sb.String()
}

// FLOPSPerSecond returns the peak floating-point rate per core in FLOP/s.
func (c Config) FLOPSPerSecond() float64 { return c.ClockGHz * 1e9 * c.FLOPsPerCycle }

// CycleSeconds returns the duration of one cycle in seconds.
func (c Config) CycleSeconds() float64 { return 1 / (c.ClockGHz * 1e9) }

// Kraken approximates the Cray XT5 (AMD Opteron Istanbul) base system the
// paper collected all application characterizations on.
func Kraken() Config {
	return Config{
		Name:     "kraken",
		ClockGHz: 2.6,
		Caches: []cache.LevelConfig{
			{Name: "L1", SizeBytes: 64 << 10, Assoc: 2, LineSize: 64},
			{Name: "L2", SizeBytes: 512 << 10, Assoc: 16, LineSize: 64},
			{Name: "L3", SizeBytes: 6 << 20, Assoc: 48, LineSize: 64},
		},
		CacheLatency:     []float64{3, 15, 40},
		MemLatencyCycles: 220,
		MemBandwidthGBs:  2.1, // per-core share of socket bandwidth
		FLOPsPerCycle:    4,
		IssueWidth:       3,
		MLP:              4,
		Network:          NetworkConfig{LatencyUS: 6.5, BandwidthGBs: 2.0, OverheadUS: 1.2},
	}
}

// BlueWatersP1 approximates the Phase I NCSA Blue Waters node (POWER7) used
// as the paper's prediction target system.
func BlueWatersP1() Config {
	return Config{
		Name:     "bluewaters",
		ClockGHz: 3.8,
		Caches: []cache.LevelConfig{
			{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, LineSize: 64},
			{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, LineSize: 64},
			{Name: "L3", SizeBytes: 4 << 20, Assoc: 8, LineSize: 64},
		},
		CacheLatency:     []float64{2, 8, 25},
		MemLatencyCycles: 350,
		MemBandwidthGBs:  4.0,
		FLOPsPerCycle:    8,
		IssueWidth:       6,
		MLP:              6,
		Network:          NetworkConfig{LatencyUS: 2.5, BandwidthGBs: 4.0, OverheadUS: 0.8},
	}
}

// Opteron2L is the two-cache-level Opteron processor whose MultiMAPS
// surface appears as Figure 1 in the paper.
func Opteron2L() Config {
	return Config{
		Name:     "opteron2",
		ClockGHz: 2.2,
		Caches: []cache.LevelConfig{
			{Name: "L1", SizeBytes: 64 << 10, Assoc: 2, LineSize: 64},
			{Name: "L2", SizeBytes: 1 << 20, Assoc: 16, LineSize: 64},
		},
		CacheLatency:     []float64{3, 12},
		MemLatencyCycles: 180,
		MemBandwidthGBs:  1.8,
		FLOPsPerCycle:    2,
		IssueWidth:       3,
		MLP:              3,
		Network:          NetworkConfig{LatencyUS: 8, BandwidthGBs: 1.0, OverheadUS: 2},
	}
}

// XE6 approximates a Cray XE6 node (AMD Interlagos): small L1, large L2
// slice, modest clock.
func XE6() Config {
	return Config{
		Name:     "xe6",
		ClockGHz: 2.3,
		Caches: []cache.LevelConfig{
			{Name: "L1", SizeBytes: 16 << 10, Assoc: 4, LineSize: 64},
			{Name: "L2", SizeBytes: 1 << 20, Assoc: 16, LineSize: 64},
			{Name: "L3", SizeBytes: 2 << 20, Assoc: 16, LineSize: 64},
		},
		CacheLatency:     []float64{4, 21, 45},
		MemLatencyCycles: 195,
		MemBandwidthGBs:  2.6,
		FLOPsPerCycle:    4,
		IssueWidth:       4,
		MLP:              5,
		Network:          NetworkConfig{LatencyUS: 1.8, BandwidthGBs: 3.0, OverheadUS: 0.6},
	}
}

// SandyBridge approximates an Intel Sandy Bridge-EP core (the commodity
// cluster node of the paper's era): fast caches and a strong memory system.
func SandyBridge() Config {
	return Config{
		Name:     "sandybridge",
		ClockGHz: 2.6,
		Caches: []cache.LevelConfig{
			{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, LineSize: 64},
			{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, LineSize: 64},
			{Name: "L3", SizeBytes: 2560 << 10, Assoc: 20, LineSize: 64},
		},
		CacheLatency:     []float64{4, 12, 30},
		MemLatencyCycles: 200,
		MemBandwidthGBs:  5.0,
		FLOPsPerCycle:    8,
		IssueWidth:       6,
		MLP:              10,
		Network:          NetworkConfig{LatencyUS: 1.5, BandwidthGBs: 5.0, OverheadUS: 0.5},
	}
}

// SystemA12KB is the Table III exploration target with a small (12 KB) L1;
// its L2 and L3 are identical to SystemB56KB's.
func SystemA12KB() Config {
	c := BlueWatersP1()
	c.Name = "systemA-12KB-L1"
	c.Caches = append([]cache.LevelConfig(nil), c.Caches...)
	c.Caches[0] = cache.LevelConfig{Name: "L1", SizeBytes: 12 << 10, Assoc: 3, LineSize: 64}
	return c
}

// SystemB56KB is the Table III exploration target with a large (56 KB) L1.
func SystemB56KB() Config {
	c := BlueWatersP1()
	c.Name = "systemB-56KB-L1"
	c.Caches = append([]cache.LevelConfig(nil), c.Caches...)
	c.Caches[0] = cache.LevelConfig{Name: "L1", SizeBytes: 56 << 10, Assoc: 7, LineSize: 64}
	return c
}

// WithPrefetch returns a copy of cfg with the hardware next-line
// prefetcher enabled and "+pf" appended to the name.
func WithPrefetch(cfg Config) Config {
	cfg.Prefetch = true
	cfg.Name += "+pf"
	return cfg
}

// ByName returns a predefined configuration by name. Appending "+pf" to any
// predefined name selects the prefetching variant.
func ByName(name string) (Config, error) {
	base := name
	pf := false
	if strings.HasSuffix(name, "+pf") {
		base = strings.TrimSuffix(name, "+pf")
		pf = true
	}
	for _, c := range []Config{
		Kraken(), BlueWatersP1(), Opteron2L(), XE6(), SandyBridge(),
		SystemA12KB(), SystemB56KB(),
	} {
		if c.Name == base {
			if pf {
				return WithPrefetch(c), nil
			}
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("machine: unknown system %q", name)
}

// Names lists the predefined configuration names.
func Names() []string {
	return []string{
		"kraken", "bluewaters", "opteron2", "xe6", "sandybridge",
		"systemA-12KB-L1", "systemB-56KB-L1",
	}
}
