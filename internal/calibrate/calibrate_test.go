package calibrate

import (
	"math"
	"math/rand"
	"testing"

	"tracex/internal/cache"
	"tracex/internal/machine"
	"tracex/internal/memsim"
)

// synthObservations generates observations from a "true" machine so the
// calibrator has a known answer to recover.
func synthObservations(t *testing.T, truth machine.Config, n int, seed int64) []Observation {
	t.Helper()
	model, err := memsim.New(truth)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var obs []Observation
	for i := 0; i < n; i++ {
		refs := uint64(100_000 + rng.Intn(900_000))
		l1 := uint64(float64(refs) * (0.5 + 0.45*rng.Float64()))
		rem := refs - l1
		l2 := uint64(float64(rem) * rng.Float64())
		rem -= l2
		l3 := uint64(float64(rem) * rng.Float64())
		mem := rem - l3
		c := cache.Counters{Refs: refs, LevelHits: []uint64{l1, l2, l3}, MemAccesses: mem}
		cy, err := model.Cycles(c)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, Observation{Counters: c, Seconds: model.Seconds(cy)})
	}
	return obs
}

func TestCalibrateRecoversMLP(t *testing.T) {
	truth := machine.BlueWatersP1() // MLP 6
	obs := synthObservations(t, truth, 30, 1)
	start := truth
	start.MLP = 2 // wrong prior
	res, err := Calibrate(start, obs, []Parameter{MLP}, nil)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if res.After > 0.02 {
		t.Errorf("post-calibration error %.3f", res.After)
	}
	if math.Abs(res.Config.MLP-truth.MLP) > 0.2 {
		t.Errorf("recovered MLP %.2f, want %.2f", res.Config.MLP, truth.MLP)
	}
	if res.Before <= res.After {
		t.Errorf("calibration did not improve: %.3f → %.3f", res.Before, res.After)
	}
}

func TestCalibrateRecoversTwoParameters(t *testing.T) {
	truth := machine.Kraken() // MLP 4, 2.1 GB/s
	obs := synthObservations(t, truth, 40, 2)
	start := truth
	start.MLP = 10
	start.MemBandwidthGBs = 8
	res, err := Calibrate(start, obs, []Parameter{MLP, MemBandwidth}, nil)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if res.After > 0.03 {
		t.Errorf("post-calibration error %.3f (MLP %.2f, BW %.2f)",
			res.After, res.Config.MLP, res.Config.MemBandwidthGBs)
	}
}

func TestCalibrateAgainstDifferentLatency(t *testing.T) {
	truth := machine.BlueWatersP1()
	truth.MemLatencyCycles = 500 // a slower-memory variant
	obs := synthObservations(t, truth, 30, 3)
	start := machine.BlueWatersP1() // 350 cycles prior
	res, err := Calibrate(start, obs, []Parameter{MemLatency}, nil)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if math.Abs(res.Config.MemLatencyCycles-500) > 25 {
		t.Errorf("recovered latency %.0f, want ≈500", res.Config.MemLatencyCycles)
	}
}

func TestCalibrateValidation(t *testing.T) {
	cfg := machine.Kraken()
	obs := synthObservations(t, cfg, 5, 4)
	if _, err := Calibrate(cfg, nil, []Parameter{MLP}, nil); err == nil {
		t.Error("no observations accepted")
	}
	if _, err := Calibrate(cfg, obs, nil, nil); err == nil {
		t.Error("no parameters accepted")
	}
	if _, err := Calibrate(cfg, obs, []Parameter{"bogus"}, nil); err == nil {
		t.Error("unknown parameter accepted")
	}
	bad := append([]Observation(nil), obs...)
	bad[0].Seconds = 0
	if _, err := Calibrate(cfg, bad, []Parameter{MLP}, nil); err == nil {
		t.Error("zero observed time accepted")
	}
	bad = append([]Observation(nil), obs...)
	bad[0].Counters.Refs = 0
	if _, err := Calibrate(cfg, bad, []Parameter{MLP}, nil); err == nil {
		t.Error("empty counters accepted")
	}
	if _, err := Calibrate(cfg, obs, []Parameter{MLP},
		map[Parameter]Bounds{MLP: {5, 5}}); err == nil {
		t.Error("degenerate bounds accepted")
	}
}

func TestCalibrateAlreadyOptimal(t *testing.T) {
	truth := machine.Kraken()
	obs := synthObservations(t, truth, 20, 5)
	res, err := Calibrate(truth, obs, []Parameter{MLP, MemBandwidth, MemLatency}, nil)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	// Starting at the truth: error stays ≈0 and parameters stay close.
	if res.After > 0.01 {
		t.Errorf("error grew from an optimal start: %.4f", res.After)
	}
}

func TestDefaultBoundsCoverPredefinedMachines(t *testing.T) {
	b := DefaultBounds()
	for _, name := range machine.Names() {
		cfg, _ := machine.ByName(name)
		if cfg.MLP < b[MLP].Lo || cfg.MLP > b[MLP].Hi {
			t.Errorf("%s MLP %.1f outside default bounds", name, cfg.MLP)
		}
		if cfg.MemBandwidthGBs < b[MemBandwidth].Lo || cfg.MemBandwidthGBs > b[MemBandwidth].Hi {
			t.Errorf("%s bandwidth outside default bounds", name)
		}
		if cfg.MemLatencyCycles < b[MemLatency].Lo || cfg.MemLatencyCycles > b[MemLatency].Hi {
			t.Errorf("%s latency outside default bounds", name)
		}
	}
}
