// Package calibrate solves the machine-profile inverse problem: given
// observed block timings on a real (here: detailed-simulated) system, tune
// the uncertain machine parameters — memory-level parallelism, sustained
// memory bandwidth, memory latency — so the timing model reproduces the
// observations. The PMaC framework obtains such fits with a genetic
// algorithm (the paper's reference [27], Tikir et al.); this package uses
// deterministic coordinate descent with golden-section line search, which
// converges for the smooth single-basin objectives these parameters give.
package calibrate

import (
	"fmt"
	"math"

	"tracex/internal/cache"
	"tracex/internal/machine"
	"tracex/internal/memsim"
)

// Observation pairs a workload's cache accounting with its observed time.
type Observation struct {
	// Counters is the workload's cache-simulator accounting.
	Counters cache.Counters
	// Seconds is the measured execution time of those references.
	Seconds float64
}

// Parameter names a tunable machine parameter.
type Parameter string

// Tunable machine parameters.
const (
	MLP          Parameter = "mlp"
	MemBandwidth Parameter = "mem_bandwidth_gbs"
	MemLatency   Parameter = "mem_latency_cycles"
)

// Bounds gives a parameter's legal search interval.
type Bounds struct{ Lo, Hi float64 }

// DefaultBounds returns the search intervals used when none are supplied.
func DefaultBounds() map[Parameter]Bounds {
	return map[Parameter]Bounds{
		MLP:          {1, 32},
		MemBandwidth: {0.25, 64},
		MemLatency:   {50, 1000},
	}
}

// Result reports a calibration.
type Result struct {
	// Config is the calibrated machine configuration.
	Config machine.Config
	// Before and After are the mean absolute relative timing errors of the
	// model against the observations, pre- and post-calibration.
	Before, After float64
	// Iterations is the number of coordinate-descent sweeps performed.
	Iterations int
}

// get/set accessors for the tunable parameters.
func getParam(cfg *machine.Config, p Parameter) float64 {
	switch p {
	case MLP:
		return cfg.MLP
	case MemBandwidth:
		return cfg.MemBandwidthGBs
	case MemLatency:
		return cfg.MemLatencyCycles
	}
	return math.NaN()
}

func setParam(cfg *machine.Config, p Parameter, v float64) {
	switch p {
	case MLP:
		cfg.MLP = v
	case MemBandwidth:
		cfg.MemBandwidthGBs = v
	case MemLatency:
		cfg.MemLatencyCycles = v
	}
}

// objective is the mean absolute relative error of the memory timing model
// over the observations for a candidate configuration.
func objective(cfg machine.Config, obs []Observation) (float64, error) {
	model, err := memsim.New(cfg)
	if err != nil {
		return math.Inf(1), nil // out-of-bounds candidates are just bad
	}
	var sum float64
	for _, o := range obs {
		cy, err := model.Cycles(o.Counters)
		if err != nil {
			return 0, err
		}
		pred := model.Seconds(cy)
		sum += math.Abs(pred-o.Seconds) / o.Seconds
	}
	return sum / float64(len(obs)), nil
}

// bracketMinimum evaluates f on n log-spaced points over [lo, hi] and
// returns the sub-interval surrounding the best point.
func bracketMinimum(f func(float64) (float64, error), lo, hi float64, n int) (float64, float64, error) {
	if n < 3 {
		n = 3
	}
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	pts := make([]float64, n)
	v := lo
	for i := range pts {
		pts[i] = v
		v *= ratio
	}
	pts[n-1] = hi
	bestIdx, bestVal := 0, math.Inf(1)
	for i, x := range pts {
		fx, err := f(x)
		if err != nil {
			return 0, 0, err
		}
		if fx < bestVal {
			bestIdx, bestVal = i, fx
		}
	}
	a, b := lo, hi
	if bestIdx > 0 {
		a = pts[bestIdx-1]
	}
	if bestIdx < n-1 {
		b = pts[bestIdx+1]
	}
	return a, b, nil
}

// goldenSection minimizes f over [lo, hi] with golden-section search.
func goldenSection(f func(float64) (float64, error), lo, hi float64) (float64, error) {
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, err := f(c)
	if err != nil {
		return 0, err
	}
	fd, err := f(d)
	if err != nil {
		return 0, err
	}
	for i := 0; i < 60 && (b-a) > 1e-6*(hi-lo); i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			if fc, err = f(c); err != nil {
				return 0, err
			}
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			if fd, err = f(d); err != nil {
				return 0, err
			}
		}
	}
	return (a + b) / 2, nil
}

// Calibrate tunes the given parameters of cfg to minimize the timing
// model's error against the observations. Unlisted parameters stay fixed.
// A nil bounds map uses DefaultBounds.
func Calibrate(cfg machine.Config, obs []Observation, params []Parameter, bounds map[Parameter]Bounds) (*Result, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("calibrate: no observations")
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("calibrate: no parameters to tune")
	}
	for _, o := range obs {
		if o.Seconds <= 0 {
			return nil, fmt.Errorf("calibrate: non-positive observed time %g", o.Seconds)
		}
		if o.Counters.Refs == 0 {
			return nil, fmt.Errorf("calibrate: observation with no references")
		}
	}
	if bounds == nil {
		bounds = DefaultBounds()
	}
	for _, p := range params {
		b, ok := bounds[p]
		if !ok {
			return nil, fmt.Errorf("calibrate: no bounds for parameter %q", p)
		}
		if b.Lo >= b.Hi {
			return nil, fmt.Errorf("calibrate: degenerate bounds for %q", p)
		}
		if math.IsNaN(getParam(&cfg, p)) {
			return nil, fmt.Errorf("calibrate: unknown parameter %q", p)
		}
	}
	before, err := objective(cfg, obs)
	if err != nil {
		return nil, err
	}
	res := &Result{Config: cfg, Before: before, After: before}
	cur := cfg
	curErr := before
	for sweep := 0; sweep < 20; sweep++ {
		res.Iterations = sweep + 1
		improved := false
		for _, p := range params {
			b := bounds[p]
			f := func(v float64) (float64, error) {
				cand := cur
				setParam(&cand, p, v)
				return objective(cand, obs)
			}
			// Coarse log-spaced grid first: objectives like the sustained-
			// bandwidth error are flat wherever the bandwidth floor never
			// binds, which strands a bare golden-section search on the
			// plateau. The grid finds the active basin; golden section then
			// refines inside it.
			lo, hi, err := bracketMinimum(f, b.Lo, b.Hi, 17)
			if err != nil {
				return nil, err
			}
			best, err := goldenSection(f, lo, hi)
			if err != nil {
				return nil, err
			}
			cand := cur
			setParam(&cand, p, best)
			candErr, err := objective(cand, obs)
			if err != nil {
				return nil, err
			}
			if candErr < curErr-1e-12 {
				cur, curErr = cand, candErr
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	res.Config = cur
	res.After = curErr
	return res, nil
}
