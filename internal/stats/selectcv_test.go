package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSelectCVRejectsOverfittingQuadratic(t *testing.T) {
	// Three points from a noisy logarithmic law: plain SSE selection with
	// extended forms picks the quadratic (exact interpolation), which
	// extrapolates wildly; LOOCV must reject it.
	xs := []float64{1024, 2048, 4096}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = (1e9 + 4e8*math.Log(x)) * (1 + 0.01*math.Sin(x))
	}
	sel := NewSelector(ExtendedForms())
	plain, err := sel.Select(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Model.Name() != "quadratic" {
		t.Logf("note: plain selection picked %s (quadratic not strictly best here)", plain.Model.Name())
	}
	cv, err := sel.SelectCV(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Model.Name() == "quadratic" {
		t.Errorf("LOOCV selected the overfitting quadratic")
	}
	// The CV choice must extrapolate sanely: within 25 % of the generating
	// law at 4× beyond the inputs.
	truth := 1e9 + 4e8*math.Log(16384)
	if e := AbsRelErr(cv.Model.Eval(16384), truth); e > 0.25 {
		t.Errorf("CV extrapolation error %.1f%% at 16384", 100*e)
	}
}

func TestSelectCVRecoversTrueForm(t *testing.T) {
	// Four exact points per generating law: LOOCV must recover it (or an
	// equally-predictive simpler alternative).
	xs := []float64{96, 384, 1536, 6144}
	gens := map[string]func(float64) float64{
		"constant":    func(x float64) float64 { return 42 },
		"linear":      func(x float64) float64 { return 5 + 0.01*x },
		"logarithmic": func(x float64) float64 { return 3 + 2*math.Log(x) },
		"exponential": func(x float64) float64 { return 4 * math.Exp(-x/4096) },
	}
	sel := NewSelector(nil)
	for want, gen := range gens {
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = gen(x)
		}
		r, err := sel.SelectCV(xs, ys)
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if r.Model.Name() != want {
			t.Errorf("generating law %s: LOOCV selected %s", want, r.Model.Name())
		}
	}
}

func TestSelectCVFallsBackOnTwoPoints(t *testing.T) {
	sel := NewSelector(nil)
	r, err := sel.SelectCV([]float64{1, 2}, []float64{3, 3})
	if err != nil {
		t.Fatalf("SelectCV: %v", err)
	}
	if r.Model.Name() != "constant" {
		t.Errorf("selected %s", r.Model.Name())
	}
}

func TestSelectCVErrors(t *testing.T) {
	sel := NewSelector(nil)
	if _, err := sel.SelectCV(nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := sel.SelectCV([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched series accepted")
	}
}

// Property: on exact canonical data with ≥4 points, LOOCV never selects a
// model whose held-out error exceeds the true form's (which is ~0), and the
// returned model reproduces the inputs.
func TestSelectCVSelfConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := []float64{128, 512, 2048, 8192}
		a := 1 + r.Float64()*10
		b := 1e-4 + r.Float64()*1e-3
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a + b*x // linear law
		}
		sel := NewSelector(ExtendedForms())
		res, err := sel.SelectCV(xs, ys)
		if err != nil {
			return false
		}
		for i, x := range xs {
			if AbsRelErr(res.Model.Eval(x), ys[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
