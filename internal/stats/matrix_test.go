package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSolveLinearIdentity(t *testing.T) {
	a := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	b := []float64{3, -7, 2.5}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	for i, want := range []float64{3, -7, 2.5} {
		if !almostEqual(x[i], want, 1e-12) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5; x - 3y = -8  =>  x = 1, y = 3.
	a := [][]float64{{2, 1}, {1, -3}}
	b := []float64{5, -8}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("got %v, want [1 3]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the first diagonal entry forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Errorf("got %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveLinearShapeErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("empty system: want error")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square: want error")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("rhs length mismatch: want error")
	}
}

// Property: for random well-conditioned systems, A·x reproduces b.
func TestSolveLinearRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := make([][]float64, n)
		orig := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.NormFloat64()
			}
			a[i][i] += float64(n) * 4 // diagonally dominant => well conditioned
			copy(orig[i], a[i])
		}
		b := make([]float64, n)
		origB := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
			origB[i] = b[i]
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += orig[i][j] * x[j]
			}
			if !almostEqual(s, origB[i], 1e-8) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPolyFitExact(t *testing.T) {
	// y = 2 - 3x + 0.5x² fitted through 5 exact samples.
	xs := []float64{-2, -1, 0, 1, 2}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 - 3*x + 0.5*x*x
	}
	c, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatalf("PolyFit: %v", err)
	}
	want := []float64{2, -3, 0.5}
	for i := range want {
		if !almostEqual(c[i], want[i], 1e-9) {
			t.Errorf("c[%d] = %g, want %g", i, c[i], want[i])
		}
	}
}

func TestPolyFitDegreeZeroIsMean(t *testing.T) {
	c, err := PolyFit([]float64{1, 2, 3}, []float64{4, 6, 8}, 0)
	if err != nil {
		t.Fatalf("PolyFit: %v", err)
	}
	if !almostEqual(c[0], 6, 1e-12) {
		t.Errorf("c[0] = %g, want 6", c[0])
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative degree: want error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Error("underdetermined: want error")
	}
	// Duplicate x values make the quadratic normal equations singular.
	if _, err := PolyFit([]float64{1, 1, 1}, []float64{1, 2, 3}, 2); !errors.Is(err, ErrSingular) {
		t.Errorf("duplicate x: want ErrSingular, got %v", err)
	}
}

func TestOLSExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, err := OLS(xs, ys)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	if !almostEqual(a, 3, 1e-12) || !almostEqual(b, 2, 1e-12) {
		t.Errorf("got a=%g b=%g, want 3, 2", a, b)
	}
}

func TestOLSDegenerate(t *testing.T) {
	if _, _, err := OLS([]float64{2, 2, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("identical x: want ErrSingular, got %v", err)
	}
	if _, _, err := OLS([]float64{1}, []float64{1}); err == nil {
		t.Error("single point: want error")
	}
}

// Property: OLS residuals are orthogonal to the regressor (normal equations).
func TestOLSNormalEquationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + r.Float64()
			ys[i] = r.NormFloat64() * 5
		}
		a, b, err := OLS(xs, ys)
		if err != nil {
			return false
		}
		var sumR, sumRX float64
		for i := range xs {
			res := ys[i] - (a + b*xs[i])
			sumR += res
			sumRX += res * xs[i]
		}
		return math.Abs(sumR) < 1e-6 && math.Abs(sumRX) < 1e-5*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolyFitCubicExact(t *testing.T) {
	// y = 1 + 2x - x² + 0.5x³ through 6 exact samples.
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 2*x - x*x + 0.5*x*x*x
	}
	c, err := PolyFit(xs, ys, 3)
	if err != nil {
		t.Fatalf("PolyFit: %v", err)
	}
	want := []float64{1, 2, -1, 0.5}
	for i := range want {
		if !almostEqual(c[i], want[i], 1e-8) {
			t.Errorf("c[%d] = %g, want %g", i, c[i], want[i])
		}
	}
}

func TestPolyFitOverdeterminedLeastSquares(t *testing.T) {
	// Noisy line with many samples: degree-1 PolyFit must agree with OLS.
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3 + 0.5*xs[i] + rng.NormFloat64()
	}
	c, err := PolyFit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c[0], a, 1e-9) || !almostEqual(c[1], b, 1e-9) {
		t.Errorf("PolyFit(deg 1) = %v, OLS = (%g, %g)", c, a, b)
	}
}
