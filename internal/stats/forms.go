package stats

import (
	"errors"
	"fmt"
	"math"
)

// Model is a fitted scaling model y = f(x), where x is a core count and y is
// one element of a basic block's feature vector.
type Model interface {
	// Name identifies the canonical form that produced the model.
	Name() string
	// Eval returns the modeled value at x.
	Eval(x float64) float64
	// Params returns the fitted parameters (form-specific ordering).
	Params() []float64
}

// Form is a family of canonical functions that can be fitted to a series.
// The paper uses constant, linear, logarithmic and exponential; power and
// quadratic implement the paper's future-work extension.
type Form interface {
	// Name is the canonical form's identifier ("constant", "linear", ...).
	Name() string
	// Fit fits the form to the paired series. It returns an error when the
	// form is not applicable to the data (for example, an exponential fit
	// over non-positive values) or the system is degenerate.
	Fit(xs, ys []float64) (Model, error)
}

// ErrNotApplicable reports that a canonical form cannot represent the given
// data (for example a logarithmic fit with x ≤ 0).
var ErrNotApplicable = errors.New("stats: form not applicable to data")

func checkSeries(xs, ys []float64, minN int) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("stats: mismatched series lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < minN {
		return fmt.Errorf("stats: need at least %d points, have %d", minN, len(xs))
	}
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return fmt.Errorf("stats: non-finite value at index %d", i)
		}
	}
	return nil
}

// paramModel is the shared implementation of Model.
type paramModel struct {
	name   string
	params []float64
	eval   func(p []float64, x float64) float64
}

func (m *paramModel) Name() string           { return m.name }
func (m *paramModel) Eval(x float64) float64 { return m.eval(m.params, x) }
func (m *paramModel) Params() []float64      { return append([]float64(nil), m.params...) }

func (m *paramModel) String() string {
	return fmt.Sprintf("%s%v", m.name, m.params)
}

// Constant fits y = a where a is the sample mean.
type Constant struct{}

// Name implements Form.
func (Constant) Name() string { return "constant" }

// Fit implements Form.
func (Constant) Fit(xs, ys []float64) (Model, error) {
	if err := checkSeries(xs, ys, 1); err != nil {
		return nil, err
	}
	return &paramModel{
		name:   "constant",
		params: []float64{Mean(ys)},
		eval:   func(p []float64, _ float64) float64 { return p[0] },
	}, nil
}

// Linear fits y = a + b·x by ordinary least squares.
type Linear struct{}

// Name implements Form.
func (Linear) Name() string { return "linear" }

// Fit implements Form.
func (Linear) Fit(xs, ys []float64) (Model, error) {
	if err := checkSeries(xs, ys, 2); err != nil {
		return nil, err
	}
	a, b, err := OLS(xs, ys)
	if err != nil {
		return nil, err
	}
	return &paramModel{
		name:   "linear",
		params: []float64{a, b},
		eval:   func(p []float64, x float64) float64 { return p[0] + p[1]*x },
	}, nil
}

// Logarithmic fits y = a + b·ln(x). All x must be positive.
type Logarithmic struct{}

// Name implements Form.
func (Logarithmic) Name() string { return "logarithmic" }

// Fit implements Form.
func (Logarithmic) Fit(xs, ys []float64) (Model, error) {
	if err := checkSeries(xs, ys, 2); err != nil {
		return nil, err
	}
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return nil, fmt.Errorf("%w: logarithmic form requires x > 0, got %g", ErrNotApplicable, x)
		}
		lx[i] = math.Log(x)
	}
	a, b, err := OLS(lx, ys)
	if err != nil {
		return nil, err
	}
	return &paramModel{
		name:   "logarithmic",
		params: []float64{a, b},
		eval: func(p []float64, x float64) float64 {
			if x <= 0 {
				return math.NaN()
			}
			return p[0] + p[1]*math.Log(x)
		},
	}, nil
}

// Exponential fits y = a·e^(b·x). It seeds the parameters with a
// log-transform linear fit (requires all y of one sign) and refines them
// with a few Gauss-Newton iterations on the untransformed residuals, which
// removes most of the log-domain bias.
type Exponential struct{}

// Name implements Form.
func (Exponential) Name() string { return "exponential" }

// Fit implements Form.
func (Exponential) Fit(xs, ys []float64) (Model, error) {
	if err := checkSeries(xs, ys, 2); err != nil {
		return nil, err
	}
	sign := 1.0
	if ys[0] < 0 {
		sign = -1
	}
	ly := make([]float64, len(ys))
	for i, y := range ys {
		v := y * sign
		if v <= 0 {
			return nil, fmt.Errorf("%w: exponential form requires same-sign nonzero y", ErrNotApplicable)
		}
		ly[i] = math.Log(v)
	}
	la, b, err := OLS(xs, ly)
	if err != nil {
		return nil, err
	}
	a := sign * math.Exp(la)
	a, b = refineExponential(xs, ys, a, b)
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return nil, ErrSingular
	}
	return &paramModel{
		name:   "exponential",
		params: []float64{a, b},
		eval:   func(p []float64, x float64) float64 { return p[0] * math.Exp(p[1]*x) },
	}, nil
}

// refineExponential runs Gauss-Newton on y = a·e^(bx), keeping the best
// parameters seen. It is deliberately conservative: a handful of iterations,
// rejecting steps that increase the SSE.
func refineExponential(xs, ys []float64, a, b float64) (float64, float64) {
	sse := func(a, b float64) float64 {
		var s float64
		for i, x := range xs {
			d := ys[i] - a*math.Exp(b*x)
			s += d * d
		}
		return s
	}
	bestA, bestB, bestS := a, b, sse(a, b)
	for iter := 0; iter < 12; iter++ {
		// Jacobian columns: ∂f/∂a = e^(bx), ∂f/∂b = a·x·e^(bx).
		var j11, j12, j22, g1, g2 float64
		for i, x := range xs {
			e := math.Exp(b * x)
			r := ys[i] - a*e
			da := e
			db := a * x * e
			j11 += da * da
			j12 += da * db
			j22 += db * db
			g1 += da * r
			g2 += db * r
		}
		sol, err := SolveLinear([][]float64{{j11, j12}, {j12, j22}}, []float64{g1, g2})
		if err != nil {
			break
		}
		// Damped step with simple backtracking.
		step := 1.0
		improved := false
		for t := 0; t < 4; t++ {
			na, nb := a+step*sol[0], b+step*sol[1]
			if s := sse(na, nb); s < bestS {
				a, b, bestA, bestB, bestS = na, nb, na, nb, s
				improved = true
				break
			}
			step /= 4
		}
		if !improved || bestS == 0 {
			break
		}
	}
	return bestA, bestB
}

// Power fits y = a·x^b via log-log least squares (future-work form).
// Requires x > 0 and y of one sign.
type Power struct{}

// Name implements Form.
func (Power) Name() string { return "power" }

// Fit implements Form.
func (Power) Fit(xs, ys []float64) (Model, error) {
	if err := checkSeries(xs, ys, 2); err != nil {
		return nil, err
	}
	sign := 1.0
	if ys[0] < 0 {
		sign = -1
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 {
			return nil, fmt.Errorf("%w: power form requires x > 0", ErrNotApplicable)
		}
		v := ys[i] * sign
		if v <= 0 {
			return nil, fmt.Errorf("%w: power form requires same-sign nonzero y", ErrNotApplicable)
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(v)
	}
	la, b, err := OLS(lx, ly)
	if err != nil {
		return nil, err
	}
	a := sign * math.Exp(la)
	return &paramModel{
		name:   "power",
		params: []float64{a, b},
		eval: func(p []float64, x float64) float64 {
			if x <= 0 {
				return math.NaN()
			}
			return p[0] * math.Pow(x, p[1])
		},
	}, nil
}

// Quadratic fits y = a + b·x + c·x² (the paper's future-work polynomial
// form). It needs at least three points.
type Quadratic struct{}

// Name implements Form.
func (Quadratic) Name() string { return "quadratic" }

// Fit implements Form.
func (Quadratic) Fit(xs, ys []float64) (Model, error) {
	if err := checkSeries(xs, ys, 3); err != nil {
		return nil, err
	}
	c, err := PolyFit(xs, ys, 2)
	if err != nil {
		return nil, err
	}
	return &paramModel{
		name:   "quadratic",
		params: c,
		eval:   func(p []float64, x float64) float64 { return p[0] + x*(p[1]+x*p[2]) },
	}, nil
}

// CanonicalForms returns the four forms used in the paper, in selection
// tie-break order (simplest first).
func CanonicalForms() []Form {
	return []Form{Constant{}, Linear{}, Logarithmic{}, Exponential{}}
}

// ExtendedForms returns the canonical forms plus the future-work extensions
// (power law and quadratic).
func ExtendedForms() []Form {
	return append(CanonicalForms(), Power{}, Quadratic{})
}
