// Package stats provides the statistical machinery used by the trace
// extrapolation methodology: ordinary least squares, the canonical scaling
// forms from the paper (constant, linear, logarithmic, exponential) plus the
// future-work extensions (power law, quadratic), model selection, and error
// metrics. Everything is implemented from scratch on the standard library.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution,
// typically because the design matrix is rank deficient (for example, all
// x values identical when fitting a line).
var ErrSingular = errors.New("stats: singular system")

// SolveLinear solves the n×n system a·x = b in place using Gaussian
// elimination with partial pivoting. The inputs are overwritten. It returns
// ErrSingular when a pivot is (numerically) zero.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: bad system shape %dx%d vs %d", n, n, len(b))
	}
	for _, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("stats: non-square matrix row length %d, want %d", len(row), n)
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot: bring the largest magnitude entry to the diagonal.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// PolyFit fits a polynomial of the given degree to (xs, ys) by solving the
// normal equations. It returns the coefficients lowest order first, so
// y = c[0] + c[1]*x + ... + c[degree]*x^degree.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if degree < 0 {
		return nil, fmt.Errorf("stats: negative polynomial degree %d", degree)
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: mismatched series lengths %d vs %d", len(xs), len(ys))
	}
	n := degree + 1
	if len(xs) < n {
		return nil, fmt.Errorf("stats: need at least %d points for degree %d, have %d", n, degree, len(xs))
	}
	// Accumulate the normal equations: sum x^(i+j) and sum y x^i.
	ata := make([][]float64, n)
	atb := make([]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	for k, x := range xs {
		pow := make([]float64, 2*n-1)
		pow[0] = 1
		for p := 1; p < len(pow); p++ {
			pow[p] = pow[p-1] * x
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ata[i][j] += pow[i+j]
			}
			atb[i] += ys[k] * pow[i]
		}
	}
	return SolveLinear(ata, atb)
}

// OLS performs simple ordinary least squares y ≈ intercept + slope*x.
func OLS(xs, ys []float64) (intercept, slope float64, err error) {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: OLS needs ≥2 paired points, have %d/%d", len(xs), len(ys))
	}
	var sx, sy, sxx, sxy float64
	for i, x := range xs {
		sx += x
		sy += ys[i]
		sxx += x * x
		sxy += x * ys[i]
	}
	det := n*sxx - sx*sx
	if math.Abs(det) < 1e-300*math.Max(1, n*sxx) {
		return 0, 0, ErrSingular
	}
	slope = (n*sxy - sx*sy) / det
	intercept = (sy - slope*sx) / n
	if math.IsNaN(slope) || math.IsInf(slope, 0) || math.IsNaN(intercept) || math.IsInf(intercept, 0) {
		return 0, 0, ErrSingular
	}
	return intercept, slope, nil
}
