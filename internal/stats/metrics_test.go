package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAbsRelErr(t *testing.T) {
	cases := []struct {
		pred, actual, want float64
	}{
		{100, 100, 0},
		{110, 100, 0.10},
		{90, 100, 0.10},
		{-5, -10, 0.5},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := AbsRelErr(c.pred, c.actual); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("AbsRelErr(%g,%g) = %g, want %g", c.pred, c.actual, got, c.want)
		}
	}
	if got := AbsRelErr(1, 0); !math.IsInf(got, 1) {
		t.Errorf("AbsRelErr(1,0) = %g, want +Inf", got)
	}
}

func TestSSEAndRMSE(t *testing.T) {
	p := []float64{1, 2, 3}
	a := []float64{1, 4, 3}
	if got := SSE(p, a); got != 4 {
		t.Errorf("SSE = %g, want 4", got)
	}
	if got := RMSE(p, a); !almostEqual(got, math.Sqrt(4.0/3.0), 1e-12) {
		t.Errorf("RMSE = %g", got)
	}
	if got := RMSE(nil, nil); got != 0 {
		t.Errorf("RMSE(empty) = %g, want 0", got)
	}
}

func TestMAPE(t *testing.T) {
	p := []float64{110, 90, 5}
	a := []float64{100, 100, 0} // zero actual skipped
	if got := MAPE(p, a); !almostEqual(got, 0.10, 1e-12) {
		t.Errorf("MAPE = %g, want 0.10", got)
	}
	if got := MAPE([]float64{1}, []float64{0}); got != 0 {
		t.Errorf("MAPE with all-zero actuals = %g, want 0", got)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestR2(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := R2(a, a); got != 1 {
		t.Errorf("perfect fit R2 = %g, want 1", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(mean, a); !almostEqual(got, 0, 1e-12) {
		t.Errorf("mean predictor R2 = %g, want 0", got)
	}
	// Constant actuals: exact match is 1, anything else 0.
	if got := R2([]float64{3, 3}, []float64{3, 3}); got != 1 {
		t.Errorf("constant exact R2 = %g, want 1", got)
	}
	if got := R2([]float64{3, 4}, []float64{3, 3}); got != 0 {
		t.Errorf("constant mismatch R2 = %g, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {-5, 15}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %g, want 0", got)
	}
	// Percentile must not mutate its input.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Errorf("Percentile mutated input: %v", orig)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("bad summary: %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String should be non-empty")
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary N = %d", empty.N)
	}
}

// Property: MAPE is scale invariant — scaling both series by the same
// positive factor leaves it unchanged.
func TestMAPEScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		p := make([]float64, n)
		a := make([]float64, n)
		for i := range p {
			p[i] = r.Float64()*100 + 1
			a[i] = r.Float64()*100 + 1
		}
		k := r.Float64()*9 + 1
		ps := make([]float64, n)
		as := make([]float64, n)
		for i := range p {
			ps[i], as[i] = p[i]*k, a[i]*k
		}
		return almostEqual(MAPE(p, a), MAPE(ps, as), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
