package stats

import (
	"fmt"
	"math"
	"sort"
)

// AbsRelErr returns |predicted-actual| / |actual|. When actual is zero the
// error is defined as 0 if predicted is also zero and +Inf otherwise, which
// matches how the paper treats "absolute relative error" for count data.
func AbsRelErr(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// SSE returns the sum of squared residuals between predictions and
// observations. The slices must have equal length.
func SSE(predicted, actual []float64) float64 {
	var sse float64
	for i := range predicted {
		d := predicted[i] - actual[i]
		sse += d * d
	}
	return sse
}

// RMSE returns the root mean squared error. It returns 0 for empty input.
func RMSE(predicted, actual []float64) float64 {
	if len(predicted) == 0 {
		return 0
	}
	return math.Sqrt(SSE(predicted, actual) / float64(len(predicted)))
}

// MAPE returns the mean absolute percentage error over the pairs, skipping
// pairs whose actual value is zero. It returns 0 when every pair is skipped.
func MAPE(predicted, actual []float64) float64 {
	var sum float64
	var n int
	for i := range predicted {
		if actual[i] == 0 {
			continue
		}
		sum += AbsRelErr(predicted[i], actual[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, or 0 for fewer than two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// R2 returns the coefficient of determination for predictions against
// observations. A constant observation series yields R2 = 1 when matched
// exactly and 0 otherwise (total variance is zero, so the usual definition
// degenerates).
func R2(predicted, actual []float64) float64 {
	if len(actual) == 0 {
		return 0
	}
	m := Mean(actual)
	var sst float64
	for _, y := range actual {
		d := y - m
		sst += d * d
	}
	sse := SSE(predicted, actual)
	if sst == 0 {
		if sse == 0 {
			return 1
		}
		return 0
	}
	return 1 - sse/sst
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
	Median, P95  float64
}

// Summarize computes descriptive statistics for xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Median = Percentile(xs, 50)
	s.P95 = Percentile(xs, 95)
	return s
}

// String renders the summary compactly for logs and experiment reports.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}
