package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSelectorPrefersConstantForFlatSeries(t *testing.T) {
	s := NewSelector(nil)
	r, err := s.Select(paperCounts, []float64{87.4, 87.4, 87.4})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if r.Model.Name() != "constant" {
		t.Errorf("selected %s, want constant", r.Model.Name())
	}
}

func TestSelectorPicksLinearForFigure4Series(t *testing.T) {
	// Figure 4: L2 hit rate rises roughly linearly with core count. Add a
	// pinch of deterministic noise so the 2-parameter fits are not all
	// exact through 4 points.
	xs := []float64{1024, 2048, 4096, 8192}
	ys := []float64{0.105, 0.148, 0.238, 0.412}
	s := NewSelector(nil)
	r, err := s.Select(xs, ys)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if name := r.Model.Name(); name != "linear" && name != "exponential" {
		// The series is convex-ish; linear must at least beat log/constant.
		t.Errorf("selected %s for a rising convex series", name)
	}
	all, err := s.FitAll(xs, ys)
	if err != nil {
		t.Fatalf("FitAll: %v", err)
	}
	if all["linear"].SSE >= all["constant"].SSE {
		t.Error("linear should beat constant on a trending series")
	}
	if all["linear"].SSE >= all["logarithmic"].SSE {
		t.Error("linear should beat logarithmic on this series")
	}
}

func TestSelectorPicksLogForFigure5Series(t *testing.T) {
	// Figure 5: memory operation count follows a logarithmic curve. Sample
	// an exact a+b·ln(P) at four counts: log must win outright.
	xs := []float64{1024, 2048, 4096, 8192}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2e9 + 1.4e9*math.Log(x)
	}
	r, err := NewSelector(nil).Select(xs, ys)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if r.Model.Name() != "logarithmic" {
		t.Errorf("selected %s, want logarithmic", r.Model.Name())
	}
	if r.SSE > 1 {
		t.Errorf("log fit SSE = %g, want ~0", r.SSE)
	}
}

func TestSelectorTieBreakSimplestFirst(t *testing.T) {
	// A perfectly flat series is fit exactly by constant, linear (slope 0)
	// and log (slope 0): the tolerance must resolve to constant.
	s := NewSelector(nil)
	r, err := s.Select([]float64{1, 2, 4}, []float64{5, 5, 5})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if r.Model.Name() != "constant" {
		t.Errorf("selected %s, want constant (parsimony tie-break)", r.Model.Name())
	}
}

func TestSelectorTieToleranceDisabled(t *testing.T) {
	s := NewSelector(nil)
	s.SetTieTolerance(0)
	// Still selects *some* model without error.
	if _, err := s.Select([]float64{1, 2, 4}, []float64{5, 5, 5}); err != nil {
		t.Fatalf("Select: %v", err)
	}
}

func TestSelectorSkipsInapplicableForms(t *testing.T) {
	// Mixed-sign series: exponential and power are inapplicable but the
	// selection must still succeed with the remaining forms.
	s := NewSelector(ExtendedForms())
	r, err := s.Select([]float64{1, 2, 3}, []float64{-1, 0, 1})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if r.Model.Name() != "linear" {
		t.Errorf("selected %s, want linear for exact line", r.Model.Name())
	}
}

func TestSelectorErrorOnEmptySeries(t *testing.T) {
	if _, err := NewSelector(nil).Select(nil, nil); err == nil {
		t.Error("want error for empty series")
	}
	if _, err := NewSelector(nil).FitAll([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("want error for mismatched series")
	}
}

func TestSelectorFormsAccessorCopies(t *testing.T) {
	s := NewSelector(nil)
	forms := s.Forms()
	forms[0] = nil
	if s.Forms()[0] == nil {
		t.Error("Forms() must return a copy")
	}
}

func TestMustSelectPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSelect should panic on empty input")
		}
	}()
	NewSelector(nil).MustSelect(nil, nil)
}

func TestSelectorExtendedFormsQuadraticWins(t *testing.T) {
	// A true parabola sampled at 5 points: with extended forms enabled the
	// quadratic should be selected; with canonical forms only, something
	// else is chosen and has worse SSE.
	xs := []float64{100, 200, 400, 800, 1600}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 50 + 0.1*x - 4e-5*x*x
	}
	ext, err := NewSelector(ExtendedForms()).Select(xs, ys)
	if err != nil {
		t.Fatalf("Select(extended): %v", err)
	}
	if ext.Model.Name() != "quadratic" {
		t.Errorf("extended selected %s, want quadratic", ext.Model.Name())
	}
	can, err := NewSelector(nil).Select(xs, ys)
	if err != nil {
		t.Fatalf("Select(canonical): %v", err)
	}
	if can.SSE < ext.SSE {
		t.Errorf("canonical SSE %g beat quadratic %g on a parabola", can.SSE, ext.SSE)
	}
}

// Property: the selected model never has larger SSE than any individual fit.
func TestSelectorOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := []float64{96, 384, 1536, 6144}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = r.Float64()*100 + 1
		}
		s := NewSelector(nil)
		s.SetTieTolerance(0)
		best, err := s.Select(xs, ys)
		if err != nil {
			return false
		}
		all, err := s.FitAll(xs, ys)
		if err != nil {
			return false
		}
		for _, fr := range all {
			if fr.SSE < best.SSE-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: selection is invariant under permutation of the forms slice.
// The old sequential "beats the incumbent by more than tol" walk failed
// this whenever three or more forms clustered within multiples of the
// tolerance (the winner drifted with declaration order); the tied-set
// selection makes the winner a pure function of the fits.
func TestSelectorFormOrderInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := []float64{64, 256, 1024, 4096}
		ys := make([]float64, len(xs))
		base := r.Float64() * 50
		slope := r.Float64()
		for i := range ys {
			// Trending series with noise small enough that several forms
			// fit comparably — the regime where near-ties happen.
			ys[i] = base + slope*math.Log(xs[i]) + r.NormFloat64()*1e-6
		}
		forms := ExtendedForms()
		r.Shuffle(len(forms), func(i, j int) { forms[i], forms[j] = forms[j], forms[i] })
		a, err1 := NewSelector(ExtendedForms()).Select(xs, ys)
		b, err2 := NewSelector(forms).Select(xs, ys)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		if a.Model.Name() != b.Model.Name() {
			return false
		}
		ca, err1 := NewSelector(ExtendedForms()).SelectCV(xs, ys)
		cb, err2 := NewSelector(forms).SelectCV(xs, ys)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return ca.Model.Name() == cb.Model.Name()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectorNearTieOrderIndependence pins the exact regression: three
// forms with SSEs A, A-1.5tol, A-2.5tol. The sequential walk selected a
// different winner for the orders (A,B,C) and (A,C,B); the tied-set rule
// must pick the global minimum's tie group regardless of order.
func TestSelectorNearTieOrderIndependence(t *testing.T) {
	// ys chosen so constant/linear/log SSEs land within ~2 tolerances of
	// each other: scale the tolerance up to force the clustered regime.
	xs := []float64{2, 4, 8, 16}
	ys := []float64{10, 10.001, 10.0018, 10.0025}
	orders := [][]Form{
		{Constant{}, Linear{}, Logarithmic{}},
		{Logarithmic{}, Linear{}, Constant{}},
		{Linear{}, Constant{}, Logarithmic{}},
		{Linear{}, Logarithmic{}, Constant{}},
	}
	var names []string
	for _, fs := range orders {
		s := NewSelector(fs)
		s.SetTieTolerance(0.5) // huge: everything ties, tie-break decides
		r, err := s.Select(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, r.Model.Name())
	}
	for _, n := range names[1:] {
		if n != names[0] {
			t.Fatalf("winner depends on form order: %v", names)
		}
	}
	if names[0] != "constant" {
		t.Errorf("all-tied selection should favor the simplest form, got %s", names[0])
	}
}

// Property: with the parsimony tolerance enabled, selection is deterministic
// across repeated calls on the same data.
func TestSelectorDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := []float64{96, 384, 1536}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = r.Float64() * 10
		}
		s := NewSelector(nil)
		a, err1 := s.Select(xs, ys)
		b, err2 := s.Select(xs, ys)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return a.Model.Name() == b.Model.Name()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
