package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The core counts used throughout the paper's examples.
var paperCounts = []float64{1024, 2048, 4096}

func TestConstantFit(t *testing.T) {
	m, err := Constant{}.Fit(paperCounts, []float64{87.4, 87.4, 87.4})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := m.Eval(8192); !almostEqual(got, 87.4, 1e-12) {
		t.Errorf("Eval(8192) = %g, want 87.4", got)
	}
	if m.Name() != "constant" {
		t.Errorf("Name = %q", m.Name())
	}
	if len(m.Params()) != 1 {
		t.Errorf("Params = %v", m.Params())
	}
}

func TestConstantFitIsMean(t *testing.T) {
	m, err := Constant{}.Fit([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := m.Eval(100); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Eval = %g, want mean 2", got)
	}
}

func TestLinearFitExactRecovery(t *testing.T) {
	// L2 hit rate rising linearly with core count (Figure 4's behaviour).
	ys := make([]float64, len(paperCounts))
	for i, x := range paperCounts {
		ys[i] = 0.05 + 3e-5*x
	}
	m, err := Linear{}.Fit(paperCounts, ys)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got, want := m.Eval(8192), 0.05+3e-5*8192; !almostEqual(got, want, 1e-9) {
		t.Errorf("Eval(8192) = %g, want %g", got, want)
	}
	p := m.Params()
	if !almostEqual(p[0], 0.05, 1e-9) || !almostEqual(p[1], 3e-5, 1e-9) {
		t.Errorf("params = %v", p)
	}
}

func TestLogarithmicFitExactRecovery(t *testing.T) {
	// Memory operation counts following a + b·ln(P) (Figure 5's behaviour).
	a, b := 2e9, 1.5e9
	ys := make([]float64, len(paperCounts))
	for i, x := range paperCounts {
		ys[i] = a + b*math.Log(x)
	}
	m, err := Logarithmic{}.Fit(paperCounts, ys)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got, want := m.Eval(8192), a+b*math.Log(8192); !almostEqual(got, want, 1e-9) {
		t.Errorf("Eval(8192) = %g, want %g", got, want)
	}
}

func TestLogarithmicRejectsNonPositiveX(t *testing.T) {
	_, err := Logarithmic{}.Fit([]float64{0, 1, 2}, []float64{1, 2, 3})
	if !errors.Is(err, ErrNotApplicable) {
		t.Errorf("want ErrNotApplicable, got %v", err)
	}
}

func TestLogarithmicEvalOutOfDomain(t *testing.T) {
	m, err := Logarithmic{}.Fit(paperCounts, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := m.Eval(-1); !math.IsNaN(got) {
		t.Errorf("Eval(-1) = %g, want NaN", got)
	}
}

func TestExponentialFitExactRecovery(t *testing.T) {
	a, b := 3.0, 0.0004
	xs := []float64{96, 384, 1536}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = a * math.Exp(b*x)
	}
	m, err := Exponential{}.Fit(xs, ys)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got, want := m.Eval(6144), a*math.Exp(b*6144); AbsRelErr(got, want) > 1e-6 {
		t.Errorf("Eval(6144) = %g, want %g", got, want)
	}
}

func TestExponentialFitNegativeSeries(t *testing.T) {
	// Whole series negative: the sign is factored out and restored.
	xs := []float64{1, 2, 3}
	ys := []float64{-2, -4, -8} // -2·e^(ln2·(x-1)) = -e^(ln2·x)
	m, err := Exponential{}.Fit(xs, ys)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := m.Eval(4); AbsRelErr(got, -16) > 1e-6 {
		t.Errorf("Eval(4) = %g, want -16", got)
	}
}

func TestExponentialRejectsMixedSign(t *testing.T) {
	_, err := Exponential{}.Fit([]float64{1, 2, 3}, []float64{1, -1, 1})
	if !errors.Is(err, ErrNotApplicable) {
		t.Errorf("want ErrNotApplicable, got %v", err)
	}
	_, err = Exponential{}.Fit([]float64{1, 2, 3}, []float64{1, 0, 2})
	if !errors.Is(err, ErrNotApplicable) {
		t.Errorf("zero y: want ErrNotApplicable, got %v", err)
	}
}

func TestExponentialGaussNewtonImprovesOverLogFit(t *testing.T) {
	// Noisy exponential where the log-domain fit is biased; the refined fit
	// must not be worse in SSE than the pure log-domain seed.
	rng := rand.New(rand.NewSource(7))
	xs := []float64{100, 200, 400, 800, 1600}
	ys := make([]float64, len(xs))
	ly := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Exp(0.002*x) * (1 + 0.05*rng.NormFloat64())
		ly[i] = math.Log(ys[i])
	}
	la, b, err := OLS(xs, ly)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	seedSSE := 0.0
	for i, x := range xs {
		d := ys[i] - math.Exp(la)*math.Exp(b*x)
		seedSSE += d * d
	}
	m, err := Exponential{}.Fit(xs, ys)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = m.Eval(x)
	}
	if got := SSE(pred, ys); got > seedSSE+1e-9 {
		t.Errorf("refined SSE %g worse than log-domain seed %g", got, seedSSE)
	}
}

func TestPowerFitExactRecovery(t *testing.T) {
	// Halo-exchange style scaling: y = a·P^(-2/3).
	a, b := 1e8, -2.0/3.0
	ys := make([]float64, len(paperCounts))
	for i, x := range paperCounts {
		ys[i] = a * math.Pow(x, b)
	}
	m, err := Power{}.Fit(paperCounts, ys)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got, want := m.Eval(8192), a*math.Pow(8192, b); AbsRelErr(got, want) > 1e-9 {
		t.Errorf("Eval(8192) = %g, want %g", got, want)
	}
	if got := m.Eval(0); !math.IsNaN(got) {
		t.Errorf("Eval(0) = %g, want NaN", got)
	}
}

func TestPowerRejectsBadDomain(t *testing.T) {
	if _, err := (Power{}).Fit([]float64{-1, 1, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("negative x: want ErrNotApplicable, got %v", err)
	}
	if _, err := (Power{}).Fit([]float64{1, 2, 3}, []float64{1, -2, 3}); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("mixed-sign y: want ErrNotApplicable, got %v", err)
	}
}

func TestQuadraticFitExactRecovery(t *testing.T) {
	ys := make([]float64, len(paperCounts))
	for i, x := range paperCounts {
		ys[i] = 10 + 0.5*x - 1e-5*x*x
	}
	m, err := Quadratic{}.Fit(paperCounts, ys)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got, want := m.Eval(8192), 10+0.5*8192-1e-5*8192*8192; AbsRelErr(got, want) > 1e-6 {
		t.Errorf("Eval(8192) = %g, want %g", got, want)
	}
}

func TestQuadraticNeedsThreePoints(t *testing.T) {
	if _, err := (Quadratic{}).Fit([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("want error for 2 points")
	}
}

func TestFormsRejectNonFinite(t *testing.T) {
	forms := ExtendedForms()
	bad := [][2][]float64{
		{{1, 2, math.NaN()}, {1, 2, 3}},
		{{1, 2, 3}, {1, math.Inf(1), 3}},
	}
	for _, f := range forms {
		for _, series := range bad {
			if _, err := f.Fit(series[0], series[1]); err == nil {
				t.Errorf("%s accepted non-finite data", f.Name())
			}
		}
	}
}

func TestFormsRejectLengthMismatch(t *testing.T) {
	for _, f := range ExtendedForms() {
		if _, err := f.Fit([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
			t.Errorf("%s accepted mismatched lengths", f.Name())
		}
	}
}

func TestCanonicalAndExtendedFormSets(t *testing.T) {
	c := CanonicalForms()
	if len(c) != 4 {
		t.Fatalf("CanonicalForms: %d forms, want 4", len(c))
	}
	wantOrder := []string{"constant", "linear", "logarithmic", "exponential"}
	for i, f := range c {
		if f.Name() != wantOrder[i] {
			t.Errorf("form %d = %s, want %s", i, f.Name(), wantOrder[i])
		}
	}
	e := ExtendedForms()
	if len(e) != 6 {
		t.Fatalf("ExtendedForms: %d forms, want 6", len(e))
	}
}

// Property: every form's Eval reproduces the training points when those
// points were generated exactly from the same family.
func TestFormsSelfConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := []float64{96, 384, 1536, 6144}
		a := r.Float64()*10 + 0.5
		b := r.Float64()*0.001 + 1e-5
		gens := map[string]func(x float64) float64{
			"constant":    func(_ float64) float64 { return a },
			"linear":      func(x float64) float64 { return a + b*x },
			"logarithmic": func(x float64) float64 { return a + b*math.Log(x) },
			"exponential": func(x float64) float64 { return a * math.Exp(b*x) },
		}
		for _, form := range CanonicalForms() {
			gen := gens[form.Name()]
			ys := make([]float64, len(xs))
			for i, x := range xs {
				ys[i] = gen(x)
			}
			m, err := form.Fit(xs, ys)
			if err != nil {
				return false
			}
			for i, x := range xs {
				if AbsRelErr(m.Eval(x), ys[i]) > 1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
