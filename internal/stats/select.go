package stats

import (
	"errors"
	"fmt"
	"math"
)

// FitResult pairs a fitted model with its goodness of fit on the training
// series.
type FitResult struct {
	Model Model
	SSE   float64
	RMSE  float64
	R2    float64
}

// Selector fits a set of canonical forms to a series and picks the best one.
// The zero value is not usable; construct with NewSelector.
type Selector struct {
	forms []Form
	// relTol is the relative SSE slack within which competing forms are
	// considered tied. Ties resolve toward parsimony (fewest parameters)
	// and then lexicographic form name — a total order independent of the
	// forms-slice order, so shuffling the forms cannot change the winner.
	relTol float64
}

// NewSelector returns a Selector over the given forms (ordered simplest
// first for tie-breaking). A nil or empty forms slice selects the paper's
// four canonical forms.
func NewSelector(forms []Form) *Selector {
	if len(forms) == 0 {
		forms = CanonicalForms()
	}
	return &Selector{forms: append([]Form(nil), forms...), relTol: 1e-9}
}

// SetTieTolerance overrides the relative SSE tolerance used to prefer
// simpler forms. Values ≤ 0 restrict the preference to exact SSE ties.
func (s *Selector) SetTieTolerance(tol float64) { s.relTol = tol }

// Forms returns the forms the selector considers, in tie-break order.
func (s *Selector) Forms() []Form { return append([]Form(nil), s.forms...) }

// FitAll fits every applicable form and returns the results keyed by form
// name. Forms that are not applicable to the data are silently skipped;
// an error is returned only when no form at all could be fitted.
func (s *Selector) FitAll(xs, ys []float64) (map[string]FitResult, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil, fmt.Errorf("stats: bad series lengths %d vs %d", len(xs), len(ys))
	}
	out := make(map[string]FitResult, len(s.forms))
	for _, f := range s.forms {
		m, err := f.Fit(xs, ys)
		if err != nil {
			if errors.Is(err, ErrNotApplicable) || errors.Is(err, ErrSingular) {
				continue
			}
			return nil, fmt.Errorf("stats: fitting %s: %w", f.Name(), err)
		}
		pred := make([]float64, len(xs))
		bad := false
		for i, x := range xs {
			pred[i] = m.Eval(x)
			if math.IsNaN(pred[i]) || math.IsInf(pred[i], 0) {
				bad = true
				break
			}
		}
		if bad {
			continue
		}
		out[f.Name()] = FitResult{
			Model: m,
			SSE:   SSE(pred, ys),
			RMSE:  RMSE(pred, ys),
			R2:    R2(pred, ys),
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("stats: no canonical form applicable to series")
	}
	return out, nil
}

// Select fits every form and returns the best fit: the lowest SSE, with
// ties within the tolerance resolved toward the simpler form. This mirrors
// the paper's "the best of those fits is used" rule (Section IV) with a
// parsimony tie-break for the degenerate exact-fit case that arises when
// only three observations are available.
func (s *Selector) Select(xs, ys []float64) (FitResult, error) {
	all, err := s.FitAll(xs, ys)
	if err != nil {
		return FitResult{}, err
	}
	scale := 0.0
	for _, y := range ys {
		scale += y * y
	}
	if scale == 0 {
		scale = 1
	}
	// Two-pass selection: find the global minimum SSE, then pick the
	// winner among every form within the tolerance of it. A sequential
	// "better than the incumbent minus tol" walk is order-dependent when
	// three or more forms cluster within multiples of the tolerance; the
	// tied-set form makes the result a pure function of the fits.
	minSSE := math.Inf(1)
	for _, r := range all {
		if r.SSE < minSSE {
			minSSE = r.SSE
		}
	}
	tol := s.relTol * scale
	if tol < 0 {
		tol = 0
	}
	best := FitResult{}
	for _, r := range all {
		if r.SSE <= minSSE+tol && (best.Model == nil || simplerModel(r.Model, best.Model)) {
			best = r
		}
	}
	return best, nil
}

// simplerModel reports whether a should win a tie against b: fewer
// parameters first (parsimony), then the canonical complexity rank of the
// form name, then the name itself. This is a strict total order that is a
// pure function of the competing forms, so tie resolution cannot depend
// on iteration or declaration order.
func simplerModel(a, b Model) bool {
	ka, kb := len(a.Params()), len(b.Params())
	if ka != kb {
		return ka < kb
	}
	return formNameLess(a.Name(), b.Name())
}

// formNameLess orders form names for tie-breaking: the in-tree forms rank
// by their documented simplest-first complexity (the CanonicalForms /
// ExtendedForms order), and unknown user forms fall back to lexicographic
// order after them.
func formNameLess(a, b string) bool {
	ra, rb := formRank(a), formRank(b)
	if ra != rb {
		return ra < rb
	}
	return a < b
}

func formRank(name string) int {
	switch name {
	case "constant":
		return 0
	case "linear":
		return 1
	case "logarithmic":
		return 2
	case "exponential":
		return 3
	case "power":
		return 4
	case "quadratic":
		return 5
	}
	return 6
}

// MustSelect is Select but panics on error; convenient in experiment code
// where the series is known to be fittable.
func (s *Selector) MustSelect(xs, ys []float64) FitResult {
	r, err := s.Select(xs, ys)
	if err != nil {
		panic(err)
	}
	return r
}

// SelectCV selects by leave-one-out cross-validation instead of training
// SSE: each form is refitted with one observation held out and scored by
// its squared error at the held-out point. This penalizes forms that can
// interpolate the training points exactly but extrapolate wildly — the
// failure mode of high-parameter forms (e.g. a quadratic through three
// points). A form that cannot be fitted on some leave-one-out subset is
// excluded. Ties within the tolerance resolve toward the simpler form; the
// final returned model is refitted on the full series. SelectCV needs at
// least three observations; with fewer it falls back to Select.
func (s *Selector) SelectCV(xs, ys []float64) (FitResult, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return FitResult{}, fmt.Errorf("stats: bad series lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 3 {
		return s.Select(xs, ys)
	}
	scale := 0.0
	for _, y := range ys {
		scale += y * y
	}
	if scale == 0 {
		scale = 1
	}
	type scored struct {
		form Form
		cv   float64
		k    int // fitted parameter count, for the parsimony tie-break
		ok   bool
	}
	scores := make([]scored, 0, len(s.forms))
	subX := make([]float64, 0, len(xs)-1)
	subY := make([]float64, 0, len(ys)-1)
	for _, f := range s.forms {
		sc := scored{form: f, ok: true}
		for hold := 0; hold < len(xs) && sc.ok; hold++ {
			subX = subX[:0]
			subY = subY[:0]
			for i := range xs {
				if i != hold {
					subX = append(subX, xs[i])
					subY = append(subY, ys[i])
				}
			}
			m, err := f.Fit(subX, subY)
			if err != nil {
				sc.ok = false
				break
			}
			sc.k = len(m.Params())
			pred := m.Eval(xs[hold])
			if math.IsNaN(pred) || math.IsInf(pred, 0) {
				sc.ok = false
				break
			}
			d := pred - ys[hold]
			sc.cv += d * d
		}
		if sc.ok {
			scores = append(scores, sc)
		}
	}
	if len(scores) == 0 {
		// No form survives cross-validation (tiny or degenerate series):
		// fall back to training-error selection.
		return s.Select(xs, ys)
	}
	// Same two-pass tied-set selection as Select: global minimum CV score,
	// then parsimony/name order among the forms within tolerance of it.
	minCV := math.Inf(1)
	for _, sc := range scores {
		if sc.cv < minCV {
			minCV = sc.cv
		}
	}
	tol := s.relTol * scale
	if tol < 0 {
		tol = 0
	}
	best := scores[0]
	haveBest := false
	for _, sc := range scores {
		simpler := !haveBest || sc.k < best.k ||
			(sc.k == best.k && formNameLess(sc.form.Name(), best.form.Name()))
		if sc.cv <= minCV+tol && simpler {
			best = sc
			haveBest = true
		}
	}
	m, err := best.form.Fit(xs, ys)
	if err != nil {
		return FitResult{}, fmt.Errorf("stats: refitting %s on full series: %w", best.form.Name(), err)
	}
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = m.Eval(x)
	}
	return FitResult{
		Model: m,
		SSE:   SSE(pred, ys),
		RMSE:  RMSE(pred, ys),
		R2:    R2(pred, ys),
	}, nil
}
