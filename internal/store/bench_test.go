package store

import (
	"bytes"
	"math/rand"
	"testing"
)

// benchSignature builds one representative signature for the codec
// benchmarks (deterministic seed, so runs are comparable).
func benchSignature(b *testing.B) ([]byte, int) {
	b.Helper()
	sig := genSignature(rand.New(rand.NewSource(99)))
	var buf bytes.Buffer
	if err := Encode(&buf, sig); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), len(buf.Bytes())
}

// BenchmarkStoreEncode measures codec write throughput (bytes/s via
// SetBytes) and the encoded size per signature.
func BenchmarkStoreEncode(b *testing.B) {
	sig := genSignature(rand.New(rand.NewSource(99)))
	encoded, size := benchSignature(b)
	_ = encoded
	b.SetBytes(int64(size))
	b.ReportMetric(float64(size), "encoded_bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreDecode measures codec read throughput, CRC verification
// included.
func BenchmarkStoreDecode(b *testing.B) {
	encoded, size := benchSignature(b)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(encoded)); err != nil {
			b.Fatal(err)
		}
	}
}
