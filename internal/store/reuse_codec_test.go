package store

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"tracex/internal/trace"
)

// genReuse builds a random valid reuse-distance signature. Distances span
// the exact and log-linear bucket ranges; function and file names repeat to
// exercise interning.
func genReuse(r *rand.Rand) *trace.ReuseSignature {
	funcs := []string{"kernel_a", "kernel_b", "halo_pack", "reduce"}
	files := []string{"solver.f90", "comm.f90"}
	rs := &trace.ReuseSignature{
		App:       "synthetic",
		CoreCount: 1 << (3 + r.Intn(6)),
		LineSize:  64,
	}
	var id uint64
	for b, n := 0, 1+r.Intn(12); b < n; b++ {
		id += 1 + uint64(r.Intn(1000))
		h := trace.ReuseHistogram{LineSize: 64}
		for i, k := 0, 1+r.Intn(200); i < k; i++ {
			h.Add(uint64(r.Intn(1 << uint(1+r.Intn(40)))))
		}
		for i, k := 0, r.Intn(8); i < k; i++ {
			h.AddCold()
		}
		rs.Blocks = append(rs.Blocks, trace.ReuseBlock{
			ID:   id,
			Func: funcs[r.Intn(len(funcs))],
			File: files[r.Intn(len(files))],
			Line: r.Intn(5000),
			Refs: 1 + float64(r.Intn(1_000_000)),

			WorkingSetBytes: float64(r.Intn(1 << 24)),
			FPPerRef:        r.Float64() * 4,
			AddFrac:         0.5 * r.Float64(),
			MulFrac:         0.4 * r.Float64(),
			DivFrac:         0.1 * r.Float64(),
			LoadFrac:        r.Float64(),
			BytesPerRef:     8,
			ILP:             1 + r.Float64()*3,
			Hist:            h,
		})
	}
	return rs
}

// encodeReuseToBytes is a test helper asserting EncodeReuse succeeds.
func encodeReuseToBytes(t *testing.T, rs *trace.ReuseSignature) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeReuse(&buf, rs); err != nil {
		t.Fatalf("EncodeReuse: %v", err)
	}
	return buf.Bytes()
}

func TestReuseCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		want := genReuse(r)
		got, err := DecodeReuse(bytes.NewReader(encodeReuseToBytes(t, want)))
		if err != nil {
			t.Fatalf("iteration %d: DecodeReuse: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("iteration %d: round trip diverged\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

// TestV1SignatureObjectsStillDecode pins backward compatibility: a codec
// version-1 trace-signature object (exactly today's encoding with the
// version byte rewritten to 1 — version 2 changed nothing about signature
// records, it only added the reuse kind) must still decode, so stores
// written before the reuse redesign keep serving their signatures.
func TestV1SignatureObjectsStillDecode(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	want := genSignature(r)
	v1 := encodeToBytes(t, want)
	if v1[4] != Version {
		t.Fatalf("version byte at offset 4 is %d, want %d", v1[4], Version)
	}
	v1[4] = 1
	got, err := Decode(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("Decode of v1 object: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("v1 object decoded differently")
	}
	// Reuse objects did not exist before version 2: a v1-stamped reuse
	// object is corrupt, not merely old.
	rv := encodeReuseToBytes(t, genReuse(r))
	rv[4] = 1
	if _, err := DecodeReuse(bytes.NewReader(rv)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("v1-stamped reuse object: %v, want ErrCorrupt", err)
	}
}

// TestReuseDecodeKindMismatch pins the cross-kind decode contract: each
// decoder identifies a healthy object of the other kind as ErrWrongKind —
// distinct from ErrCorrupt, so the store never quarantines it.
func TestReuseDecodeKindMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sigBytes := encodeToBytes(t, genSignature(r))
	reuseBytes := encodeReuseToBytes(t, genReuse(r))
	if _, err := DecodeReuse(bytes.NewReader(sigBytes)); !errors.Is(err, ErrWrongKind) {
		t.Errorf("DecodeReuse(signature): %v, want ErrWrongKind", err)
	}
	if _, err := Decode(bytes.NewReader(reuseBytes)); !errors.Is(err, ErrWrongKind) {
		t.Errorf("Decode(reuse): %v, want ErrWrongKind", err)
	}
	for _, err := range []error{
		func() error { _, err := DecodeReuse(bytes.NewReader(sigBytes)); return err }(),
		func() error { _, err := Decode(bytes.NewReader(reuseBytes)); return err }(),
	} {
		if errors.Is(err, ErrCorrupt) {
			t.Errorf("kind mismatch also wraps ErrCorrupt (%v): would quarantine a healthy object", err)
		}
	}
}

// TestReuseDecodeTruncated checks every proper prefix of a valid reuse
// encoding is rejected (the torn-write case).
func TestReuseDecodeTruncated(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	full := encodeReuseToBytes(t, genReuse(r))
	for n := 0; n < len(full); n++ {
		if _, err := DecodeReuse(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", n, len(full))
		}
	}
}

func TestEncodeReuseRejectsNil(t *testing.T) {
	if err := EncodeReuse(&bytes.Buffer{}, nil); err == nil {
		t.Error("EncodeReuse(nil) succeeded")
	}
}
