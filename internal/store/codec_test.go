package store

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"tracex/internal/trace"
)

// genFV builds a random feature vector that satisfies trace validation:
// non-negative finite elements, FP composition within FPOps, loads+stores
// within MemOps, monotone cumulative hit rates in [0,1]. Values mix
// integral counts and fractions so every codec tag is exercised.
func genFV(r *rand.Rand, levels int) trace.FeatureVector {
	count := func() float64 { return float64(r.Intn(1_000_000)) }
	add, mul, div := count(), count(), count()
	loads, stores := count(), count()
	fv := trace.FeatureVector{
		FPAdd: add, FPMul: mul, FPDivSqrt: div,
		FPOps: add + mul + div + count(),
		Loads: loads, Stores: stores,
		MemOps:          loads + stores + count(),
		BytesPerRef:     r.Float64() * 64,
		WorkingSetBytes: count() * 8,
		ILP:             r.Float64() * 4,
		HitRates:        make([]float64, levels),
	}
	if r.Intn(2) == 0 {
		fv.PrefetchPerRef = r.Float64()
	}
	h := r.Float64()
	for i := range fv.HitRates {
		fv.HitRates[i] = h
		h += (1 - h) * r.Float64()
	}
	return fv
}

// genSignature builds a random valid signature. Function and file names
// repeat across blocks to exercise string interning.
func genSignature(r *rand.Rand) *trace.Signature {
	funcs := []string{"kernel_a", "kernel_b", "halo_pack", "reduce"}
	files := []string{"solver.f90", "comm.f90"}
	cores := 1 << (3 + r.Intn(6))
	levels := 1 + r.Intn(3)
	s := &trace.Signature{
		App:       "synthetic",
		CoreCount: cores,
		Machine:   "testmachine",
	}
	nTraces := 1 + r.Intn(3)
	for t := 0; t < nTraces; t++ {
		tr := trace.Trace{
			App: s.App, CoreCount: cores, Machine: s.Machine,
			Rank: t, Levels: levels,
		}
		var id uint64
		for b, n := 0, r.Intn(20); b < n; b++ {
			id += 1 + uint64(r.Intn(1000))
			tr.Blocks = append(tr.Blocks, trace.Block{
				ID:   id,
				Func: funcs[r.Intn(len(funcs))],
				File: files[r.Intn(len(files))],
				Line: r.Intn(5000),
				FV:   genFV(r, levels),
			})
		}
		s.Traces = append(s.Traces, tr)
	}
	return s
}

// encodeToBytes is a test helper asserting Encode succeeds.
func encodeToBytes(t *testing.T, s *trace.Signature) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		want := genSignature(r)
		got, err := Decode(bytes.NewReader(encodeToBytes(t, want)))
		if err != nil {
			t.Fatalf("iteration %d: Decode: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("iteration %d: round trip diverged\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

// TestCodecValueTags pins the tag selection edge cases: exact zero, signed
// negative zero, the 2^53 integral-precision boundary and fractions must
// all survive a round trip bit-exactly.
func TestCodecValueTags(t *testing.T) {
	for _, v := range []float64{
		0, math.Copysign(0, -1), 1, 0.5, 1 << 53, float64(1<<53) + 2,
		1e300, 1.0 / 3.0,
	} {
		s := &trace.Signature{
			App: "a", CoreCount: 2, Machine: "m",
			Traces: []trace.Trace{{
				App: "a", CoreCount: 2, Machine: "m", Rank: 0, Levels: 1,
				Blocks: []trace.Block{{
					ID: 7, Func: "f", File: "g",
					FV: trace.FeatureVector{BytesPerRef: v, ILP: v, HitRates: []float64{1}},
				}},
			}},
		}
		got, err := Decode(bytes.NewReader(encodeToBytes(t, s)))
		if err != nil {
			t.Fatalf("value %g: Decode: %v", v, err)
		}
		if b := got.Traces[0].Blocks[0].FV.BytesPerRef; math.Float64bits(b) != math.Float64bits(v) {
			t.Errorf("value %g: bits changed: % x → % x", v, math.Float64bits(v), math.Float64bits(b))
		}
	}
}

// TestDecodeTruncated checks that every proper prefix of a valid encoding
// is rejected as corrupt — the torn-write case.
func TestDecodeTruncated(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	full := encodeToBytes(t, genSignature(r))
	for n := 0; n < len(full); n++ {
		if _, err := Decode(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", n, len(full))
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: error does not wrap ErrCorrupt: %v", n, err)
		}
	}
}

// TestDecodeByteFlips checks that corrupting any single byte of a valid
// encoding is detected (the magic/version are checked structurally; every
// other byte is either CRC-covered or a CRC byte itself).
func TestDecodeByteFlips(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	full := encodeToBytes(t, genSignature(r))
	for i := range full {
		corrupt := append([]byte(nil), full...)
		corrupt[i] ^= 0xFF
		if _, err := Decode(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("decode with byte %d flipped succeeded", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte %d: error does not wrap ErrCorrupt: %v", i, err)
		}
	}
}

func TestDecodeRejectsBadHeader(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"short magic":     []byte("TX"),
		"wrong magic":     []byte("NOPE\x01"),
		"future version":  []byte("TXSG\x63"),
		"header only":     []byte("TXSG\x01"),
		"string bomb":     append([]byte("TXSG\x01H"), 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
		"bad record type": append([]byte("TXSG\x01"), 'Z'),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}

// TestEncodeRejectsNil pins the nil-signature guard.
func TestEncodeRejectsNil(t *testing.T) {
	if err := Encode(&bytes.Buffer{}, nil); err == nil {
		t.Error("Encode(nil) succeeded")
	}
}
