package store

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzSignatureDecode throws arbitrary bytes at the codec. The decoder must
// never panic or allocate unboundedly; every failure must wrap ErrCorrupt
// (so the store quarantines instead of crashing); and anything that does
// decode must re-encode and decode back to the same value.
func FuzzSignatureDecode(f *testing.F) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 4; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, genSignature(r)); err != nil {
			f.Fatalf("seeding: %v", err)
		}
		f.Add(buf.Bytes())
		// A truncated and a bit-flipped variant seed the corrupt paths.
		f.Add(buf.Bytes()[:buf.Len()/2])
		flipped := append([]byte(nil), buf.Bytes()...)
		flipped[buf.Len()/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("TXSG\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sig, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, sig); err != nil {
			t.Fatalf("re-encoding a decoded signature: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decoding a re-encoded signature: %v", err)
		}
		if !reflect.DeepEqual(sig, again) {
			t.Fatalf("re-encode round trip diverged:\nfirst  %+v\nsecond %+v", sig, again)
		}
	})
}
