// Package store persists application signatures on disk: a compact binary
// codec plus a content-addressed, crash-safe object store with an
// append-only manifest index. The expensive artifact of the methodology is
// the signature collected at small core counts — extrapolation and
// prediction are cheap replays over it — so signatures are the natural
// unit of durable reuse: a process that finds one on disk skips the whole
// cache simulation (the Engine's "warm start").
//
// The codec (this file) is a streaming format: the writer emits one record
// at a time and the reader consumes one record at a time, so a signature
// is never resident twice (once as structs, once as encoded bytes). Each
// record carries its own CRC-32C, which localizes corruption: a torn write
// or flipped bit fails that record's checksum instead of silently decoding
// into garbage.
//
// Layout of a trace-signature object (all integers unsigned varints unless
// noted):
//
//	magic "TXSG" | version (1 byte)
//	'H' app machine core_count trace_count           | crc32c (4 bytes LE)
//	'T' rank levels block_count { block... }         | crc32c   ×trace_count
//	'E' total_blocks                                 | crc32c
//
// Each block is: a zigzag varint delta of its ID against the previous
// block's, interned func and file strings (first use inlines the literal,
// later uses are a table index), a zigzag varint line number, and the
// flattened feature vector. Feature values are tagged per value: 0 encodes
// the common 0.0 in one byte, 1 encodes non-negative integral counts as a
// varint (most feature elements are operation counts), 2 falls back to the
// raw IEEE-754 bits (hit rates, ILP, averages).
//
// Version 2 adds a second object kind, the machine-independent
// reuse-distance signature, distinguished by its first record marker:
//
//	magic "TXSG" | 2
//	'R' app core_count line_size block_count         | crc32c
//	'B' id_delta func file line refs working_set
//	    fp_per_ref add mul div load bytes_per_ref ilp
//	    cold hist_refs bucket_count {bucket_delta count}... | crc32c  ×block_count
//	'E' total_buckets                                | crc32c
//
// Histograms are sparse: only non-zero buckets are written, as (ascending
// delta-encoded bucket index, count) pairs. Trace-signature objects encode
// byte-identically under version 1 and 2 except the version byte, so v1
// objects written before the bump keep decoding.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"tracex/internal/trace"
)

// Magic identifies a tracex signature object file.
var Magic = [4]byte{'T', 'X', 'S', 'G'}

// Version is the current codec version. Decoders reject later versions and
// accept every earlier one they can represent: version 1 (trace signatures
// only) decodes unchanged, since v2 only added the reuse-signature object
// kind.
const Version = 2

// minVersion is the oldest version Decode accepts.
const minVersion = 1

// ErrCorrupt reports an object that failed structural or checksum
// validation. Every decode failure wraps it, so callers can distinguish
// corruption (quarantine the record, treat as a miss) from I/O errors.
var ErrCorrupt = errors.New("store: corrupt signature record")

// ErrWrongKind reports a structurally valid object of the other kind (a
// reuse signature where a trace signature was expected, or vice versa). It
// does not wrap ErrCorrupt: the object is healthy and must not be
// quarantined.
var ErrWrongKind = errors.New("store: object kind mismatch")

// Record type markers.
const (
	recHeader     = 'H'
	recTrace      = 'T'
	recEnd        = 'E'
	recReuse      = 'R'
	recReuseBlock = 'B'
)

// Feature-value tags.
const (
	tagZero  = 0 // the value 0.0, no payload
	tagUint  = 1 // non-negative integral value, uvarint payload
	tagFloat = 2 // raw IEEE-754 bits, 8-byte little-endian payload
)

// Decoder resource bounds. The codec is exposed to untrusted bytes (import,
// HTTP PUT, fuzzing); these caps turn allocation bombs into ErrCorrupt.
const (
	maxStringLen = 1 << 16
	maxLevels    = 64
	maxCores     = 1 << 26
	maxBlocks    = 1 << 22
	maxLineSize  = 1 << 16
)

// castagnoli is the CRC-32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encoder streams a signature into w, maintaining the running per-record
// checksum.
type encoder struct {
	w   *bufio.Writer
	rec hash.Hash32
	buf [binary.MaxVarintLen64]byte
}

// write appends b to the output and the current record's checksum.
func (e *encoder) write(b []byte) error {
	e.rec.Write(b)
	_, err := e.w.Write(b)
	return err
}

func (e *encoder) writeByte(b byte) error { return e.write([]byte{b}) }

func (e *encoder) writeUvarint(v uint64) error {
	n := binary.PutUvarint(e.buf[:], v)
	return e.write(e.buf[:n])
}

func (e *encoder) writeVarint(v int64) error {
	n := binary.PutVarint(e.buf[:], v)
	return e.write(e.buf[:n])
}

func (e *encoder) writeString(s string) error {
	if err := e.writeUvarint(uint64(len(s))); err != nil {
		return err
	}
	return e.write([]byte(s))
}

// endRecord emits the current record's CRC and resets it for the next one.
func (e *encoder) endRecord() error {
	sum := e.rec.Sum32()
	binary.LittleEndian.PutUint32(e.buf[:4], sum)
	if _, err := e.w.Write(e.buf[:4]); err != nil {
		return err
	}
	e.rec.Reset()
	return nil
}

// intern writes s as a reference into the incremental string table: a
// known string is a table index; a new one is the index one past the end
// followed by the literal, and joins the table.
func (e *encoder) intern(table map[string]uint64, s string) error {
	if idx, ok := table[s]; ok {
		return e.writeUvarint(idx)
	}
	idx := uint64(len(table))
	if err := e.writeUvarint(idx); err != nil {
		return err
	}
	if err := e.writeString(s); err != nil {
		return err
	}
	table[s] = idx
	return nil
}

// writeValue encodes one feature-vector element.
func (e *encoder) writeValue(v float64) error {
	switch {
	case v == 0 && !math.Signbit(v):
		return e.writeByte(tagZero)
	case v == math.Trunc(v) && v > 0 && v <= 1<<53:
		if err := e.writeByte(tagUint); err != nil {
			return err
		}
		return e.writeUvarint(uint64(v))
	default:
		if err := e.writeByte(tagFloat); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(e.buf[:8], math.Float64bits(v))
		return e.write(e.buf[:8])
	}
}

// Encode writes the signature to w in the compact binary format. It
// streams: one block is in flight at a time, so memory stays O(1) in the
// signature size beyond the signature itself.
func Encode(w io.Writer, s *trace.Signature) error {
	if s == nil {
		return fmt.Errorf("store: encoding nil signature")
	}
	e := &encoder{w: bufio.NewWriter(w), rec: crc32.New(castagnoli)}
	if _, err := e.w.Write(Magic[:]); err != nil {
		return err
	}
	if err := e.w.WriteByte(Version); err != nil {
		return err
	}
	// Header record.
	if err := e.writeByte(recHeader); err != nil {
		return err
	}
	if err := e.writeString(s.App); err != nil {
		return err
	}
	if err := e.writeString(s.Machine); err != nil {
		return err
	}
	if err := e.writeUvarint(uint64(s.CoreCount)); err != nil {
		return err
	}
	if err := e.writeUvarint(uint64(len(s.Traces))); err != nil {
		return err
	}
	if err := e.endRecord(); err != nil {
		return err
	}
	// Trace records.
	var totalBlocks uint64
	for i := range s.Traces {
		tr := &s.Traces[i]
		if err := e.encodeTrace(tr); err != nil {
			return fmt.Errorf("store: encoding trace %d: %w", i, err)
		}
		totalBlocks += uint64(len(tr.Blocks))
	}
	// End record: a truncated file is missing it, and its block total
	// cross-checks the per-trace counts.
	if err := e.writeByte(recEnd); err != nil {
		return err
	}
	if err := e.writeUvarint(totalBlocks); err != nil {
		return err
	}
	if err := e.endRecord(); err != nil {
		return err
	}
	return e.w.Flush()
}

// encodeTrace writes one trace record.
func (e *encoder) encodeTrace(tr *trace.Trace) error {
	if err := e.writeByte(recTrace); err != nil {
		return err
	}
	if err := e.writeUvarint(uint64(tr.Rank)); err != nil {
		return err
	}
	if err := e.writeUvarint(uint64(tr.Levels)); err != nil {
		return err
	}
	if err := e.writeUvarint(uint64(len(tr.Blocks))); err != nil {
		return err
	}
	table := make(map[string]uint64)
	var prevID uint64
	for i := range tr.Blocks {
		b := &tr.Blocks[i]
		if err := e.writeVarint(int64(b.ID - prevID)); err != nil {
			return err
		}
		prevID = b.ID
		if err := e.intern(table, b.Func); err != nil {
			return err
		}
		if err := e.intern(table, b.File); err != nil {
			return err
		}
		if err := e.writeVarint(int64(b.Line)); err != nil {
			return err
		}
		vals, err := b.FV.Values(tr.Levels)
		if err != nil {
			return err
		}
		for _, v := range vals {
			if err := e.writeValue(v); err != nil {
				return err
			}
		}
	}
	return e.endRecord()
}

// decoder streams a signature out of r, verifying per-record checksums.
type decoder struct {
	r   *bufio.Reader
	rec hash.Hash32
	buf [8]byte
}

// corruptf wraps a structural failure as ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// readFull reads exactly len(b) bytes into the record checksum.
func (d *decoder) readFull(b []byte) error {
	if _, err := io.ReadFull(d.r, b); err != nil {
		return corruptf("unexpected end of data: %v", err)
	}
	d.rec.Write(b)
	return nil
}

func (d *decoder) readByte() (byte, error) {
	if err := d.readFull(d.buf[:1]); err != nil {
		return 0, err
	}
	return d.buf[0], nil
}

func (d *decoder) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(byteReader{d})
	if err != nil {
		return 0, corruptf("reading varint: %v", err)
	}
	return v, nil
}

func (d *decoder) readVarint() (int64, error) {
	v, err := binary.ReadVarint(byteReader{d})
	if err != nil {
		return 0, corruptf("reading varint: %v", err)
	}
	return v, nil
}

// byteReader adapts the checksummed reader to io.ByteReader for the varint
// helpers.
type byteReader struct{ d *decoder }

func (br byteReader) ReadByte() (byte, error) {
	if err := br.d.readFull(br.d.buf[:1]); err != nil {
		return 0, err
	}
	return br.d.buf[0], nil
}

func (d *decoder) readString() (string, error) {
	n, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", corruptf("string length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if err := d.readFull(b); err != nil {
		return "", err
	}
	return string(b), nil
}

// endRecord reads the stored CRC (outside the checksum) and compares it to
// the record's computed one.
func (d *decoder) endRecord() error {
	if _, err := io.ReadFull(d.r, d.buf[:4]); err != nil {
		return corruptf("missing record checksum: %v", err)
	}
	want := binary.LittleEndian.Uint32(d.buf[:4])
	got := d.rec.Sum32()
	d.rec.Reset()
	if got != want {
		return corruptf("record checksum mismatch: %08x != %08x", got, want)
	}
	return nil
}

// unintern resolves a string-table reference, growing the table on first
// use exactly as the encoder did.
func (d *decoder) unintern(table *[]string) (string, error) {
	idx, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	switch {
	case idx < uint64(len(*table)):
		return (*table)[idx], nil
	case idx == uint64(len(*table)):
		s, err := d.readString()
		if err != nil {
			return "", err
		}
		*table = append(*table, s)
		return s, nil
	default:
		return "", corruptf("string index %d beyond table of %d", idx, len(*table))
	}
}

// readValue decodes one feature-vector element.
func (d *decoder) readValue() (float64, error) {
	tag, err := d.readByte()
	if err != nil {
		return 0, err
	}
	switch tag {
	case tagZero:
		return 0, nil
	case tagUint:
		u, err := d.readUvarint()
		if err != nil {
			return 0, err
		}
		if u > 1<<53 {
			return 0, corruptf("integral value %d exceeds float precision", u)
		}
		return float64(u), nil
	case tagFloat:
		if err := d.readFull(d.buf[:8]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(d.buf[:8])), nil
	default:
		return 0, corruptf("unknown value tag %d", tag)
	}
}

// Decode reads one signature in the compact binary format and validates
// it. Any structural, checksum or semantic failure wraps ErrCorrupt.
func Decode(r io.Reader) (*trace.Signature, error) {
	d := &decoder{r: bufio.NewReader(r), rec: crc32.New(castagnoli)}
	var magic [5]byte
	if _, err := io.ReadFull(d.r, magic[:]); err != nil {
		return nil, corruptf("reading magic: %v", err)
	}
	if [4]byte(magic[:4]) != Magic {
		return nil, corruptf("bad magic %q", magic[:4])
	}
	if magic[4] < minVersion || magic[4] > Version {
		return nil, corruptf("unsupported codec version %d (have %d)", magic[4], Version)
	}
	// Header record.
	marker, err := d.readByte()
	if err != nil {
		return nil, err
	}
	if marker == recReuse {
		return nil, fmt.Errorf("%w: object is a reuse signature, not a trace signature", ErrWrongKind)
	}
	if marker != recHeader {
		return nil, corruptf("expected header record, found %q", marker)
	}
	s := &trace.Signature{}
	if s.App, err = d.readString(); err != nil {
		return nil, err
	}
	if s.Machine, err = d.readString(); err != nil {
		return nil, err
	}
	cores, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if cores == 0 || cores > maxCores {
		return nil, corruptf("core count %d out of range", cores)
	}
	s.CoreCount = int(cores)
	nTraces, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if nTraces > cores {
		return nil, corruptf("%d traces for %d cores", nTraces, cores)
	}
	if err := d.endRecord(); err != nil {
		return nil, err
	}
	// Trace records. Capacity grows with the data actually read, so a
	// forged count cannot allocate ahead of the bytes backing it.
	var totalBlocks uint64
	for i := uint64(0); i < nTraces; i++ {
		tr, err := d.decodeTrace(s.CoreCount)
		if err != nil {
			return nil, fmt.Errorf("store: trace %d: %w", i, err)
		}
		totalBlocks += uint64(len(tr.Blocks))
		tr.App, tr.Machine = s.App, s.Machine
		s.Traces = append(s.Traces, *tr)
	}
	// End record.
	if marker, err = d.readByte(); err != nil {
		return nil, err
	}
	if marker != recEnd {
		return nil, corruptf("expected end record, found %q", marker)
	}
	gotBlocks, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if gotBlocks != totalBlocks {
		return nil, corruptf("end record counts %d blocks, decoded %d", gotBlocks, totalBlocks)
	}
	if err := d.endRecord(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return s, nil
}

// decodeTrace reads one trace record.
func (d *decoder) decodeTrace(coreCount int) (*trace.Trace, error) {
	marker, err := d.readByte()
	if err != nil {
		return nil, err
	}
	if marker != recTrace {
		return nil, corruptf("expected trace record, found %q", marker)
	}
	tr := &trace.Trace{CoreCount: coreCount}
	rank, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if rank >= uint64(coreCount) {
		return nil, corruptf("rank %d of %d cores", rank, coreCount)
	}
	tr.Rank = int(rank)
	levels, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if levels == 0 || levels > maxLevels {
		return nil, corruptf("level count %d out of range", levels)
	}
	tr.Levels = int(levels)
	nBlocks, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if nBlocks > maxBlocks {
		return nil, corruptf("block count %d exceeds limit", nBlocks)
	}
	var table []string
	var prevID uint64
	nVals := trace.NumScalarElements + tr.Levels
	vals := make([]float64, nVals)
	for i := uint64(0); i < nBlocks; i++ {
		var b trace.Block
		delta, err := d.readVarint()
		if err != nil {
			return nil, err
		}
		b.ID = prevID + uint64(delta)
		prevID = b.ID
		if b.Func, err = d.unintern(&table); err != nil {
			return nil, err
		}
		if b.File, err = d.unintern(&table); err != nil {
			return nil, err
		}
		line, err := d.readVarint()
		if err != nil {
			return nil, err
		}
		b.Line = int(line)
		for j := 0; j < nVals; j++ {
			if vals[j], err = d.readValue(); err != nil {
				return nil, err
			}
		}
		if b.FV, err = trace.FromValues(vals, tr.Levels); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		tr.Blocks = append(tr.Blocks, b)
	}
	if err := d.endRecord(); err != nil {
		return nil, err
	}
	return tr, nil
}
