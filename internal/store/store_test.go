package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tracex/internal/obs"
)

// testKey is a fixed logical identity for store tests.
var testKey = Key{App: "synthetic", Machine: "testmachine", MachineFP: "aabbccdd", Cores: 64, Opt: "deadbeef"}

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir, obs.New())
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestStorePutGetRoundTrip(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	sig := genSignature(rand.New(rand.NewSource(3)))
	entry, err := st.Put(sig, testKey)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if entry.Hash == "" || entry.Bytes <= 0 {
		t.Fatalf("entry lacks content identity: %+v", entry)
	}
	got, ok, err := st.Get(testKey)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%t err=%v", ok, err)
	}
	if !reflect.DeepEqual(sig, got) {
		t.Fatal("stored signature differs from the original")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d", st.Len())
	}
	// Unknown keys are clean misses.
	other := testKey
	other.Cores = 128
	if _, ok, err := st.Get(other); ok || err != nil {
		t.Errorf("miss returned ok=%t err=%v", ok, err)
	}
	// The object is fetchable by content hash alone.
	byHash, err := st.GetHash(entry.Hash)
	if err != nil {
		t.Fatalf("GetHash: %v", err)
	}
	if !reflect.DeepEqual(sig, byHash) {
		t.Error("hash fetch differs from the original")
	}
}

// TestStoreSurvivesReopen is the durability contract: a new process (a new
// Store over the same directory) sees everything a previous one put.
func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	sig := genSignature(rand.New(rand.NewSource(4)))
	st := openTestStore(t, dir)
	if _, err := st.Put(sig, testKey); err != nil {
		t.Fatalf("Put: %v", err)
	}
	st.Close()

	st2 := openTestStore(t, dir)
	got, ok, err := st2.Get(testKey)
	if err != nil || !ok {
		t.Fatalf("Get after reopen: ok=%t err=%v", ok, err)
	}
	if !reflect.DeepEqual(sig, got) {
		t.Fatal("signature changed across reopen")
	}
}

// TestStoreVersioning: re-putting a key supersedes the old entry while the
// old object survives until GC (it remains fetchable by hash).
func TestStoreVersioning(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	r := rand.New(rand.NewSource(5))
	first := genSignature(r)
	second := genSignature(r)
	e1, err := st.Put(first, testKey)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := st.Put(second, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Hash == e2.Hash {
		t.Fatal("distinct signatures share a content hash")
	}
	got, ok, _ := st.Get(testKey)
	if !ok || !reflect.DeepEqual(second, got) {
		t.Fatal("Get does not return the latest version")
	}
	if st.Len() != 1 {
		t.Errorf("superseded entry still live: Len = %d", st.Len())
	}
	if _, err := st.GetHash(e1.Hash); err != nil {
		t.Errorf("superseded object gone before GC: %v", err)
	}

	stats, err := st.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if stats.LiveEntries != 1 || stats.RemovedObjects != 1 {
		t.Errorf("GC stats: %+v", stats)
	}
	if _, err := st.GetHash(e1.Hash); err == nil {
		t.Error("GC kept the unreferenced object")
	}
	if _, ok, _ := st.Get(testKey); !ok {
		t.Error("GC broke the live entry")
	}
}

// TestStoreQuarantinesCorruptObject: a bit flip in a stored object turns
// the next Get into a miss, moves the bad bytes to quarantine and bumps the
// corruption counters — it never returns garbage.
func TestStoreQuarantinesCorruptObject(t *testing.T) {
	reg := obs.New()
	dir := t.TempDir()
	st, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	entry, err := st.Put(genSignature(rand.New(rand.NewSource(6))), testKey)
	if err != nil {
		t.Fatal(err)
	}
	objPath := filepath.Join(dir, "objects", entry.Hash[:2], entry.Hash+".sig")
	raw, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(objPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	sig, ok, err := st.Get(testKey)
	if ok || sig != nil {
		t.Fatal("corrupt object served as a hit")
	}
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not reported: %v", err)
	}
	if _, err := os.Stat(objPath); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt object left in place")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", entry.Hash+".sig")); err != nil {
		t.Errorf("corrupt object not quarantined: %v", err)
	}
	if got := reg.Counter("store.corruptions").Value(); got != 1 {
		t.Errorf("store.corruptions = %d", got)
	}
	// The entry is dropped: the next Get is a clean miss.
	if _, ok, err := st.Get(testKey); ok || err != nil {
		t.Errorf("post-quarantine Get: ok=%t err=%v", ok, err)
	}
	// GC purges the quarantine.
	stats, err := st.GC()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PurgedQuarantine != 1 {
		t.Errorf("GC purged %d quarantined files", stats.PurgedQuarantine)
	}
}

// TestStoreTornWriteRecovery: a truncated object (the classic torn write)
// is detected on read and treated as a miss, and the store keeps working.
func TestStoreTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	sig := genSignature(rand.New(rand.NewSource(8)))
	entry, err := st.Put(sig, testKey)
	if err != nil {
		t.Fatal(err)
	}
	objPath := filepath.Join(dir, "objects", entry.Hash[:2], entry.Hash+".sig")
	if err := os.Truncate(objPath, entry.Bytes/2); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(testKey); ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn object: ok=%t err=%v", ok, err)
	}
	// Re-putting repairs the key.
	if _, err := st.Put(sig, testKey); err != nil {
		t.Fatalf("Put after torn write: %v", err)
	}
	if _, ok, err := st.Get(testKey); !ok || err != nil {
		t.Fatalf("Get after repair: ok=%t err=%v", ok, err)
	}
}

// TestStoreManifestCorruptLineSkipped: one torn manifest append must not
// take down the store — the bad line is skipped and counted.
func TestStoreManifestCorruptLineSkipped(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	if _, err := st.Put(genSignature(rand.New(rand.NewSource(9))), testKey); err != nil {
		t.Fatal(err)
	}
	st.Close()
	mf, err := os.OpenFile(filepath.Join(dir, "manifest.log"), os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mf.WriteString(`{"app":"torn`); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	reg := obs.New()
	st2, err := Open(dir, reg)
	if err != nil {
		t.Fatalf("Open over a torn manifest: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Errorf("Len = %d after torn manifest line", st2.Len())
	}
	if got := reg.Counter("store.corruptions").Value(); got != 1 {
		t.Errorf("store.corruptions = %d", got)
	}
}

func TestStoreLatestAndEntries(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	r := rand.New(rand.NewSource(10))
	// Two entries for the same human identity under different option
	// hashes, plus one unrelated.
	k1, k2 := testKey, testKey
	k2.Opt = "feedface"
	other := testKey
	other.App = "elsewhere"
	for _, k := range []Key{k1, k2, other} {
		sig := genSignature(r)
		sig.App = k.App
		for i := range sig.Traces {
			sig.Traces[i].App = k.App
		}
		sig.CoreCount = k.Cores
		for i := range sig.Traces {
			sig.Traces[i].CoreCount = k.Cores
			sig.Traces[i].Rank = i
		}
		if _, err := st.Put(sig, k); err != nil {
			t.Fatal(err)
		}
	}
	sig, entry, ok, err := st.Latest(testKey.App, testKey.Machine, testKey.Cores)
	if err != nil || !ok {
		t.Fatalf("Latest: ok=%t err=%v", ok, err)
	}
	if sig.App != testKey.App || entry.App != testKey.App {
		t.Errorf("Latest returned %s/%s", sig.App, entry.App)
	}
	if _, _, ok, _ := st.Latest("nope", "nope", 1); ok {
		t.Error("Latest found a nonexistent identity")
	}
	if got := len(st.Entries()); got != 3 {
		t.Errorf("Entries: %d", got)
	}
}

// TestOpenErrors pins the failure modes: empty directory argument, and an
// uncreatable path whose error names the path.
func TestOpenErrors(t *testing.T) {
	if _, err := Open("", nil); err == nil {
		t.Error("Open(\"\") succeeded")
	}
	file := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(file, "store")
	_, err := Open(bad, nil)
	if err == nil {
		t.Fatal("Open through a plain file succeeded")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("error does not name the path: %v", err)
	}
}

// TestOpenCreatesPrivateDirs checks the 0700 permission contract.
func TestOpenCreatesPrivateDirs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st := openTestStore(t, dir)
	_ = st
	for _, d := range []string{dir, filepath.Join(dir, "objects"), filepath.Join(dir, "quarantine")} {
		fi, err := os.Stat(d)
		if err != nil {
			t.Fatal(err)
		}
		if perm := fi.Mode().Perm(); perm != 0o700 {
			t.Errorf("%s has mode %o, want 700", d, perm)
		}
	}
}

// TestStoreClosedOperations: a closed store fails writes cleanly.
func TestStoreClosedOperations(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	st.Close()
	if _, err := st.Put(genSignature(rand.New(rand.NewSource(12))), testKey); err == nil {
		t.Error("Put on a closed store succeeded")
	}
	if _, err := st.GC(); err == nil {
		t.Error("GC on a closed store succeeded")
	}
}
