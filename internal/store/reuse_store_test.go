package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tracex/internal/obs"
)

// reuseTestKey is a machine-independent logical identity: reuse keys carry
// no machine fields.
var reuseTestKey = Key{App: "synthetic", Cores: 64, Opt: "deadbeef"}

func TestStoreReusePutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	rs := genReuse(rand.New(rand.NewSource(3)))
	entry, err := st.PutReuse(rs, reuseTestKey)
	if err != nil {
		t.Fatalf("PutReuse: %v", err)
	}
	if entry.Kind != KindReuse {
		t.Errorf("entry kind = %q, want %q", entry.Kind, KindReuse)
	}
	got, ok, err := st.GetReuse(reuseTestKey)
	if err != nil || !ok {
		t.Fatalf("GetReuse: ok=%t err=%v", ok, err)
	}
	if !reflect.DeepEqual(rs, got) {
		t.Fatal("stored reuse signature differs from the original")
	}
	// The kinds are separate namespaces: the same key fields under
	// KindSignature are a clean miss.
	if _, ok, err := st.Get(reuseTestKey); ok || err != nil {
		t.Errorf("Get of a reuse key: ok=%t err=%v, want clean miss", ok, err)
	}

	// Durability: a reopened store still serves the reuse signature.
	st.Close()
	st2 := openTestStore(t, dir)
	got, ok, err = st2.GetReuse(reuseTestKey)
	if err != nil || !ok {
		t.Fatalf("GetReuse after reopen: ok=%t err=%v", ok, err)
	}
	if !reflect.DeepEqual(rs, got) {
		t.Fatal("reuse signature changed across reopen")
	}
}

// TestStoreWrongKindNoQuarantine: fetching a healthy object as the wrong
// kind reports ErrWrongKind but leaves the object in place — unlike
// corruption, which quarantines.
func TestStoreWrongKindNoQuarantine(t *testing.T) {
	reg := obs.New()
	dir := t.TempDir()
	st, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	entry, err := st.PutReuse(genReuse(rand.New(rand.NewSource(6))), reuseTestKey)
	if err != nil {
		t.Fatal(err)
	}
	// GetHash decodes as a trace signature: wrong kind for this object.
	if _, err := st.GetHash(entry.Hash); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("GetHash of reuse object: %v, want ErrWrongKind", err)
	}
	objPath := filepath.Join(dir, "objects", entry.Hash[:2], entry.Hash+".sig")
	if _, err := os.Stat(objPath); err != nil {
		t.Errorf("healthy object quarantined on kind mismatch: %v", err)
	}
	if got := reg.Counter("store.corruptions").Value(); got != 0 {
		t.Errorf("store.corruptions = %d after kind mismatch, want 0", got)
	}
	// The object is still perfectly servable under its true kind.
	if _, ok, err := st.GetReuse(reuseTestKey); !ok || err != nil {
		t.Errorf("GetReuse after mismatch: ok=%t err=%v", ok, err)
	}
}

// TestStoreReuseCorruptionQuarantines: the quarantine contract holds for
// reuse objects exactly as for signatures.
func TestStoreReuseCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	entry, err := st.PutReuse(genReuse(rand.New(rand.NewSource(7))), reuseTestKey)
	if err != nil {
		t.Fatal(err)
	}
	objPath := filepath.Join(dir, "objects", entry.Hash[:2], entry.Hash+".sig")
	raw, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(objPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if rs, ok, err := st.GetReuse(reuseTestKey); ok || rs != nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt reuse object: rs=%v ok=%t err=%v", rs, ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, entry.Hash+".sig")); err != nil {
		t.Errorf("corrupt reuse object not quarantined: %v", err)
	}
	if _, ok, err := st.GetReuse(reuseTestKey); ok || err != nil {
		t.Errorf("post-quarantine GetReuse: ok=%t err=%v", ok, err)
	}
}
