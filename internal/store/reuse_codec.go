package store

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"

	"tracex/internal/trace"
)

// This file is the reuse-signature half of the codec (version 2): the
// machine-independent object kind whose histograms the analytical cache
// model converts into hit rates for any geometry. The framing, checksums,
// interning and value tagging are shared with the trace-signature codec.

// EncodeReuse writes the reuse-distance signature to w in the compact
// binary format (codec version 2). Like Encode it streams one block at a
// time.
func EncodeReuse(w io.Writer, rs *trace.ReuseSignature) error {
	if rs == nil {
		return fmt.Errorf("store: encoding nil reuse signature")
	}
	e := &encoder{w: bufio.NewWriter(w), rec: crc32.New(castagnoli)}
	if _, err := e.w.Write(Magic[:]); err != nil {
		return err
	}
	if err := e.w.WriteByte(Version); err != nil {
		return err
	}
	// Reuse header record.
	if err := e.writeByte(recReuse); err != nil {
		return err
	}
	if err := e.writeString(rs.App); err != nil {
		return err
	}
	if err := e.writeUvarint(uint64(rs.CoreCount)); err != nil {
		return err
	}
	if err := e.writeUvarint(uint64(rs.LineSize)); err != nil {
		return err
	}
	if err := e.writeUvarint(uint64(len(rs.Blocks))); err != nil {
		return err
	}
	if err := e.endRecord(); err != nil {
		return err
	}
	// Block records.
	table := make(map[string]uint64)
	var prevID uint64
	var totalBuckets uint64
	for i := range rs.Blocks {
		b := &rs.Blocks[i]
		n, err := e.encodeReuseBlock(b, table, prevID)
		if err != nil {
			return fmt.Errorf("store: encoding reuse block %d: %w", i, err)
		}
		prevID = b.ID
		totalBuckets += n
	}
	// End record cross-checks the per-block bucket totals.
	if err := e.writeByte(recEnd); err != nil {
		return err
	}
	if err := e.writeUvarint(totalBuckets); err != nil {
		return err
	}
	if err := e.endRecord(); err != nil {
		return err
	}
	return e.w.Flush()
}

// encodeReuseBlock writes one block record, returning its non-zero bucket
// count.
func (e *encoder) encodeReuseBlock(b *trace.ReuseBlock, table map[string]uint64, prevID uint64) (uint64, error) {
	if err := e.writeByte(recReuseBlock); err != nil {
		return 0, err
	}
	if err := e.writeVarint(int64(b.ID - prevID)); err != nil {
		return 0, err
	}
	if err := e.intern(table, b.Func); err != nil {
		return 0, err
	}
	if err := e.intern(table, b.File); err != nil {
		return 0, err
	}
	if err := e.writeVarint(int64(b.Line)); err != nil {
		return 0, err
	}
	for _, v := range []float64{
		b.Refs, b.WorkingSetBytes, b.FPPerRef, b.AddFrac, b.MulFrac,
		b.DivFrac, b.LoadFrac, b.BytesPerRef, b.ILP,
	} {
		if err := e.writeValue(v); err != nil {
			return 0, err
		}
	}
	if err := e.writeUvarint(b.Hist.Cold); err != nil {
		return 0, err
	}
	if err := e.writeUvarint(b.Hist.Refs); err != nil {
		return 0, err
	}
	var nonzero uint64
	for _, c := range b.Hist.Counts {
		if c != 0 {
			nonzero++
		}
	}
	if err := e.writeUvarint(nonzero); err != nil {
		return 0, err
	}
	prev := -1
	for bk, c := range b.Hist.Counts {
		if c == 0 {
			continue
		}
		if err := e.writeUvarint(uint64(bk - prev)); err != nil {
			return 0, err
		}
		prev = bk
		if err := e.writeUvarint(c); err != nil {
			return 0, err
		}
	}
	return nonzero, e.endRecord()
}

// DecodeReuse reads one reuse-distance signature and validates it. A
// structurally valid trace-signature object fails with ErrWrongKind; every
// other failure wraps ErrCorrupt.
func DecodeReuse(r io.Reader) (*trace.ReuseSignature, error) {
	d := &decoder{r: bufio.NewReader(r), rec: crc32.New(castagnoli)}
	var magic [5]byte
	if _, err := io.ReadFull(d.r, magic[:]); err != nil {
		return nil, corruptf("reading magic: %v", err)
	}
	if [4]byte(magic[:4]) != Magic {
		return nil, corruptf("bad magic %q", magic[:4])
	}
	if magic[4] < 2 || magic[4] > Version {
		return nil, corruptf("unsupported codec version %d for reuse signature (have %d)", magic[4], Version)
	}
	marker, err := d.readByte()
	if err != nil {
		return nil, err
	}
	if marker == recHeader {
		return nil, fmt.Errorf("%w: object is a trace signature, not a reuse signature", ErrWrongKind)
	}
	if marker != recReuse {
		return nil, corruptf("expected reuse header record, found %q", marker)
	}
	rs := &trace.ReuseSignature{}
	if rs.App, err = d.readString(); err != nil {
		return nil, err
	}
	cores, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if cores == 0 || cores > maxCores {
		return nil, corruptf("core count %d out of range", cores)
	}
	rs.CoreCount = int(cores)
	lineSize, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if lineSize == 0 || lineSize > maxLineSize || bits.OnesCount64(lineSize) != 1 {
		return nil, corruptf("line size %d out of range", lineSize)
	}
	rs.LineSize = int(lineSize)
	nBlocks, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if nBlocks > maxBlocks {
		return nil, corruptf("block count %d exceeds limit", nBlocks)
	}
	if err := d.endRecord(); err != nil {
		return nil, err
	}
	var table []string
	var prevID uint64
	var totalBuckets uint64
	for i := uint64(0); i < nBlocks; i++ {
		b, n, err := d.decodeReuseBlock(&table, prevID, rs.LineSize)
		if err != nil {
			return nil, fmt.Errorf("store: reuse block %d: %w", i, err)
		}
		prevID = b.ID
		totalBuckets += n
		rs.Blocks = append(rs.Blocks, *b)
	}
	if marker, err = d.readByte(); err != nil {
		return nil, err
	}
	if marker != recEnd {
		return nil, corruptf("expected end record, found %q", marker)
	}
	gotBuckets, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if gotBuckets != totalBuckets {
		return nil, corruptf("end record counts %d buckets, decoded %d", gotBuckets, totalBuckets)
	}
	if err := d.endRecord(); err != nil {
		return nil, err
	}
	if err := rs.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return rs, nil
}

// decodeReuseBlock reads one block record, returning it and its non-zero
// bucket count.
func (d *decoder) decodeReuseBlock(table *[]string, prevID uint64, lineSize int) (*trace.ReuseBlock, uint64, error) {
	marker, err := d.readByte()
	if err != nil {
		return nil, 0, err
	}
	if marker != recReuseBlock {
		return nil, 0, corruptf("expected reuse block record, found %q", marker)
	}
	b := &trace.ReuseBlock{}
	delta, err := d.readVarint()
	if err != nil {
		return nil, 0, err
	}
	b.ID = prevID + uint64(delta)
	if b.Func, err = d.unintern(table); err != nil {
		return nil, 0, err
	}
	if b.File, err = d.unintern(table); err != nil {
		return nil, 0, err
	}
	line, err := d.readVarint()
	if err != nil {
		return nil, 0, err
	}
	b.Line = int(line)
	for _, dst := range []*float64{
		&b.Refs, &b.WorkingSetBytes, &b.FPPerRef, &b.AddFrac, &b.MulFrac,
		&b.DivFrac, &b.LoadFrac, &b.BytesPerRef, &b.ILP,
	} {
		if *dst, err = d.readValue(); err != nil {
			return nil, 0, err
		}
	}
	b.Hist.LineSize = lineSize
	if b.Hist.Cold, err = d.readUvarint(); err != nil {
		return nil, 0, err
	}
	if b.Hist.Refs, err = d.readUvarint(); err != nil {
		return nil, 0, err
	}
	nonzero, err := d.readUvarint()
	if err != nil {
		return nil, 0, err
	}
	if nonzero > trace.MaxReuseBuckets {
		return nil, 0, corruptf("bucket count %d exceeds limit %d", nonzero, trace.MaxReuseBuckets)
	}
	prev := -1
	for i := uint64(0); i < nonzero; i++ {
		bdelta, err := d.readUvarint()
		if err != nil {
			return nil, 0, err
		}
		if bdelta == 0 || bdelta > uint64(trace.MaxReuseBuckets) {
			return nil, 0, corruptf("bucket delta %d out of range", bdelta)
		}
		bk := prev + int(bdelta)
		if bk >= trace.MaxReuseBuckets {
			return nil, 0, corruptf("bucket index %d out of range", bk)
		}
		prev = bk
		c, err := d.readUvarint()
		if err != nil {
			return nil, 0, err
		}
		if c == 0 {
			return nil, 0, corruptf("zero count for bucket %d", bk)
		}
		if bk >= len(b.Hist.Counts) {
			b.Hist.Counts = append(b.Hist.Counts, make([]uint64, bk+1-len(b.Hist.Counts))...)
		}
		b.Hist.Counts[bk] = c
	}
	return b, nonzero, d.endRecord()
}
