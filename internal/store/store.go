package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"tracex/internal/obs"
	"tracex/internal/trace"
)

// This file is the object store over the codec: content-addressed object
// files, an append-only manifest mapping logical keys to content hashes,
// atomic write-then-rename durability, and corruption quarantine.
//
// On-disk layout under the store directory (created 0700 — signatures can
// reveal what a user is running):
//
//	manifest.log            append-only JSON lines, one Entry per line
//	objects/<aa>/<hash>.sig encoded signatures, named by SHA-256
//	quarantine/<name>.sig   objects that failed decoding, kept for autopsy
//
// The manifest is the index: the last line for a logical key wins, so a
// Put is one encode + one rename + one appended line, never a rewrite.
// Corrupt manifest lines are skipped (counted, not fatal); corrupt objects
// are moved to quarantine on first read and their keys become misses. GC
// compacts the manifest to the live entries and deletes unreferenced
// objects.

const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	manifestName  = "manifest.log"
	objectExt     = ".sig"
	// dirPerm keeps the store private to the owning user.
	dirPerm  = 0o700
	filePerm = 0o600
)

// Object kinds. Trace signatures predate the Kind field, so their kind is
// the empty string — v1 manifests load unchanged.
const (
	// KindSignature marks a machine-specific trace signature (the
	// default).
	KindSignature = ""
	// KindReuse marks a machine-independent reuse-distance signature;
	// such entries carry no machine name or fingerprint.
	KindReuse = "reuse"
)

// Key is the logical identity of a stored signature: what the Engine keys
// its in-memory cache by, flattened to strings. Machine is the
// configuration's display name; MachineFP and Opt are short fingerprint
// hashes discriminating ad-hoc configurations that share a name and
// differing collection options (see tracex.StoreKey). Kind separates the
// object kinds; reuse-signature keys (tracex.ReuseStoreKey) leave Machine
// and MachineFP empty — machine independence is the point.
type Key struct {
	App       string
	Machine   string
	MachineFP string
	Cores     int
	Opt       string
	Kind      string
}

// Entry is one manifest line: a Key bound to a content hash.
type Entry struct {
	App       string `json:"app"`
	Machine   string `json:"machine"`
	MachineFP string `json:"machine_fp,omitempty"`
	Cores     int    `json:"cores"`
	Opt       string `json:"opt,omitempty"`
	// Kind is the object kind (KindSignature or KindReuse). Omitted for
	// trace signatures, so manifests written before the field existed
	// decode to the same keys.
	Kind string `json:"kind,omitempty"`
	// Hash is the SHA-256 of the encoded object, hex-encoded; it names
	// the object file.
	Hash string `json:"hash"`
	// Bytes is the encoded object's size.
	Bytes int64 `json:"bytes"`
	// Unix is the Put time in seconds since the epoch.
	Unix int64 `json:"unix"`
}

// key extracts the entry's logical key.
func (e *Entry) key() Key {
	return Key{App: e.App, Machine: e.Machine, MachineFP: e.MachineFP, Cores: e.Cores, Opt: e.Opt, Kind: e.Kind}
}

// GCStats summarizes one garbage collection.
type GCStats struct {
	// LiveEntries and LiveBytes describe the store after collection.
	LiveEntries int
	LiveBytes   int64
	// RemovedObjects and ReclaimedBytes count deleted unreferenced object
	// files (superseded versions, orphans from interrupted Puts).
	RemovedObjects int
	ReclaimedBytes int64
	// DroppedEntries counts manifest entries discarded because they were
	// superseded or their object file had vanished.
	DroppedEntries int
	// PurgedQuarantine counts quarantined files deleted.
	PurgedQuarantine int
}

// Store is a persistent signature store rooted at one directory. It is
// safe for concurrent use by multiple goroutines within one process;
// cross-process safety relies on the atomicity of rename and O_APPEND
// manifest writes (concurrent writers may duplicate work, never corrupt).
type Store struct {
	dir string

	mu       sync.Mutex
	index    map[Key]Entry
	manifest *os.File

	reg         *obs.Registry
	hits        *obs.Counter
	misses      *obs.Counter
	puts        *obs.Counter
	bytesRead   *obs.Counter
	bytesWrit   *obs.Counter
	corruptions *obs.Counter
	quarantined *obs.Counter
}

// Open opens (creating if needed, with 0700 permissions) the store rooted
// at dir and loads its manifest index. Counters land in reg under the
// store.* namespace; a nil registry disables them.
func Open(dir string, reg *obs.Registry) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty store directory")
	}
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, dirPerm); err != nil {
			return nil, fmt.Errorf("store: creating store directory %s: %w", d, err)
		}
	}
	s := &Store{
		dir:         dir,
		index:       map[Key]Entry{},
		reg:         reg,
		hits:        reg.Counter("store.hits"),
		misses:      reg.Counter("store.misses"),
		puts:        reg.Counter("store.puts"),
		bytesRead:   reg.Counter("store.bytes_read"),
		bytesWrit:   reg.Counter("store.bytes_written"),
		corruptions: reg.Counter("store.corruptions"),
		quarantined: reg.Counter("store.quarantined"),
	}
	reg.GaugeFunc("store.entries", func() float64 { return float64(s.Len()) })
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	mf, err := os.OpenFile(s.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, filePerm)
	if err != nil {
		return nil, fmt.Errorf("store: opening manifest %s: %w", s.manifestPath(), err)
	}
	s.manifest = mf
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the manifest handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest == nil {
		return nil
	}
	err := s.manifest.Close()
	s.manifest = nil
	return err
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, manifestName) }

// objectPath returns the object file path for a content hash, fanned out
// over 256 subdirectories to keep listings fast at scale.
func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, objectsDir, hash[:2], hash+objectExt)
}

// loadManifest replays the manifest into the in-memory index. Undecodable
// lines are counted as corruptions and skipped — one torn append must not
// take down the whole store.
func (s *Store) loadManifest() error {
	f, err := os.Open(s.manifestPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening manifest %s: %w", s.manifestPath(), err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.Hash == "" || e.App == "" {
			s.corruptions.Inc()
			continue
		}
		s.index[e.key()] = e // later lines win
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: reading manifest %s: %w", s.manifestPath(), err)
	}
	return nil
}

// appendManifest durably appends one entry. Caller holds mu.
func (s *Store) appendManifest(e Entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding manifest entry: %w", err)
	}
	b = append(b, '\n')
	if _, err := s.manifest.Write(b); err != nil {
		return fmt.Errorf("store: appending manifest %s: %w", s.manifestPath(), err)
	}
	return s.manifest.Sync()
}

// Put encodes the signature, writes it as a content-addressed object
// (write to a temp file, fsync, rename — a crash leaves either the old
// state or the new, never a half-written visible object) and appends a
// manifest entry binding key to it. Re-putting identical content is
// deduplicated at the object layer. The key's Kind is forced to
// KindSignature.
func (s *Store) Put(sig *trace.Signature, key Key) (Entry, error) {
	if err := sig.Validate(); err != nil {
		return Entry{}, err
	}
	key.Kind = KindSignature
	return s.putObject(key, func(w io.Writer) error { return Encode(w, sig) })
}

// PutReuse stores a machine-independent reuse-distance signature under key
// (Kind forced to KindReuse), with the same durability guarantees as Put.
func (s *Store) PutReuse(rs *trace.ReuseSignature, key Key) (Entry, error) {
	if err := rs.Validate(); err != nil {
		return Entry{}, err
	}
	key.Kind = KindReuse
	return s.putObject(key, func(w io.Writer) error { return EncodeReuse(w, rs) })
}

// putObject writes one encoded object and its manifest entry.
func (s *Store) putObject(key Key, encode func(io.Writer) error) (Entry, error) {
	tmp, err := os.CreateTemp(filepath.Join(s.dir, objectsDir), "tmp-*")
	if err != nil {
		return Entry{}, fmt.Errorf("store: creating temp object in %s: %w", filepath.Join(s.dir, objectsDir), err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	h := sha256.New()
	cw := &countWriter{w: io.MultiWriter(tmp, h)}
	if err := encode(cw); err != nil {
		tmp.Close()
		return Entry{}, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return Entry{}, fmt.Errorf("store: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return Entry{}, fmt.Errorf("store: closing %s: %w", tmp.Name(), err)
	}
	hash := hex.EncodeToString(h.Sum(nil))
	dst := s.objectPath(hash)
	if err := os.MkdirAll(filepath.Dir(dst), dirPerm); err != nil {
		return Entry{}, fmt.Errorf("store: creating %s: %w", filepath.Dir(dst), err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return Entry{}, fmt.Errorf("store: publishing object %s: %w", dst, err)
	}
	e := Entry{
		App: key.App, Machine: key.Machine, MachineFP: key.MachineFP,
		Cores: key.Cores, Opt: key.Opt, Kind: key.Kind,
		Hash: hash, Bytes: cw.n, Unix: time.Now().Unix(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest == nil {
		return Entry{}, errors.New("store: closed")
	}
	if err := s.appendManifest(e); err != nil {
		return Entry{}, err
	}
	s.index[e.key()] = e
	s.puts.Inc()
	s.bytesWrit.Add(uint64(cw.n))
	return e, nil
}

// Get returns the signature stored under key (Kind forced to
// KindSignature). ok reports whether the key resolved to a readable,
// uncorrupted object; a corrupt object is quarantined, its manifest entry
// dropped, and (nil, false, err) returned — callers treat that exactly
// like a miss and re-collect.
func (s *Store) Get(key Key) (*trace.Signature, bool, error) {
	key.Kind = KindSignature
	s.mu.Lock()
	e, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		s.misses.Inc()
		return nil, false, nil
	}
	sig, err := s.readObject(e.Hash)
	if err != nil {
		s.dropEntry(key)
		s.misses.Inc()
		return nil, false, err
	}
	s.hits.Inc()
	return sig, true, nil
}

// GetReuse returns the reuse-distance signature stored under key (Kind
// forced to KindReuse), with Get's miss and quarantine semantics.
func (s *Store) GetReuse(key Key) (*trace.ReuseSignature, bool, error) {
	key.Kind = KindReuse
	s.mu.Lock()
	e, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		s.misses.Inc()
		return nil, false, nil
	}
	var rs *trace.ReuseSignature
	err := s.readInto(e.Hash, func(r io.Reader) error {
		var err error
		rs, err = DecodeReuse(r)
		return err
	})
	if err != nil {
		s.dropEntry(key)
		s.misses.Inc()
		return nil, false, err
	}
	s.hits.Inc()
	return rs, true, nil
}

// GetHash returns the signature stored under a content hash, regardless of
// any manifest entry.
func (s *Store) GetHash(hash string) (*trace.Signature, error) {
	if len(hash) != 2*sha256.Size {
		return nil, fmt.Errorf("store: malformed content hash %q", hash)
	}
	sig, err := s.readObject(hash)
	if err != nil {
		return nil, err
	}
	s.hits.Inc()
	return sig, nil
}

// readObject opens, decodes and checks one trace-signature object file,
// quarantining it on corruption.
func (s *Store) readObject(hash string) (*trace.Signature, error) {
	var sig *trace.Signature
	err := s.readInto(hash, func(r io.Reader) error {
		var err error
		sig, err = Decode(r)
		return err
	})
	if err != nil {
		return nil, err
	}
	return sig, nil
}

// readInto opens one object file and runs decode over it, quarantining the
// object when decode reports corruption. An ErrWrongKind failure (a healthy
// object of the other kind) is an error but never quarantines.
func (s *Store) readInto(hash string, decode func(io.Reader) error) error {
	path := s.objectPath(hash)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: opening object %s: %w", path, err)
	}
	defer f.Close()
	cr := &countReader{r: f}
	err = decode(cr)
	s.bytesRead.Add(uint64(cr.n))
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			s.quarantine(path)
		}
		return fmt.Errorf("store: object %s: %w", path, err)
	}
	return nil
}

// quarantine moves a corrupt object out of the objects tree so the next
// request is a clean miss and the bad bytes stay available for inspection.
func (s *Store) quarantine(path string) {
	s.corruptions.Inc()
	dst := filepath.Join(s.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err == nil {
		s.quarantined.Inc()
	}
}

// dropEntry removes a key from the in-memory index (the manifest keeps its
// history; GC compacts it).
func (s *Store) dropEntry(key Key) {
	s.mu.Lock()
	delete(s.index, key)
	s.mu.Unlock()
}

// Lookup returns the manifest entry for key without touching the object.
func (s *Store) Lookup(key Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	return e, ok
}

// LatestEntry returns the manifest entry of the most recently stored
// signature matching (app, machine name, cores) across all machine
// fingerprints and collection options, without reading the object. It is
// the index half of Latest, split out so the server's read fast path can
// resolve a triple key to a content hash (its cache key) before deciding
// whether the object bytes are needed at all.
func (s *Store) LatestEntry(app, machine string, cores int) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best Entry
	found := false
	for _, e := range s.index {
		if e.Kind != KindSignature || e.App != app || e.Machine != machine || e.Cores != cores {
			continue
		}
		if !found || e.Unix > best.Unix || (e.Unix == best.Unix && e.Hash > best.Hash) {
			best, found = e, true
		}
	}
	return best, found
}

// FindHash returns the manifest entry referencing the given content hash,
// if any (an object can outlive its manifest entries; such hashes are
// still readable via GetHash but carry no metadata).
func (s *Store) FindHash(hash string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.index {
		if e.Hash == hash {
			return e, true
		}
	}
	return Entry{}, false
}

// Latest returns the most recently stored signature matching (app,
// machine name, cores) across all machine fingerprints and collection
// options — the human-facing lookup behind the HTTP GET and CLI export,
// where callers name machines, not fingerprints.
func (s *Store) Latest(app, machine string, cores int) (*trace.Signature, Entry, bool, error) {
	best, found := s.LatestEntry(app, machine, cores)
	if !found {
		s.misses.Inc()
		return nil, Entry{}, false, nil
	}
	sig, err := s.readObject(best.Hash)
	if err != nil {
		s.dropEntry(best.key())
		s.misses.Inc()
		return nil, Entry{}, false, err
	}
	s.hits.Inc()
	return sig, best, true, nil
}

// Entries returns the live manifest entries sorted by (app, machine,
// cores, time).
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	out := make([]Entry, 0, len(s.index))
	for _, e := range s.index {
		out = append(out, e)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		if a.Unix != b.Unix {
			return a.Unix < b.Unix
		}
		return a.Hash < b.Hash
	})
	return out
}

// Len returns the number of live manifest entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// GC compacts the store: drops index entries whose objects vanished,
// rewrites the manifest to exactly the live entries (atomically, via
// temp-and-rename), deletes object files no live entry references
// (superseded versions, leftovers of interrupted Puts) and purges the
// quarantine. The store remains usable throughout and after.
func (s *Store) GC() (GCStats, error) {
	sp := s.reg.StartSpan("store.gc", s.dir)
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest == nil {
		return GCStats{}, errors.New("store: closed")
	}
	var st GCStats

	// Live set: entries whose object file still exists.
	referenced := map[string]bool{}
	for k, e := range s.index {
		if _, err := os.Stat(s.objectPath(e.Hash)); err != nil {
			delete(s.index, k)
			st.DroppedEntries++
			continue
		}
		referenced[e.Hash] = true
		st.LiveEntries++
		st.LiveBytes += e.Bytes
	}

	// Rewrite the manifest to the live entries.
	tmp, err := os.CreateTemp(s.dir, "manifest-*")
	if err != nil {
		return st, fmt.Errorf("store: creating temp manifest in %s: %w", s.dir, err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	for _, e := range s.index {
		b, err := json.Marshal(e)
		if err != nil {
			tmp.Close()
			return st, fmt.Errorf("store: encoding manifest entry: %w", err)
		}
		b = append(b, '\n')
		if _, err := bw.Write(b); err != nil {
			tmp.Close()
			return st, fmt.Errorf("store: writing compacted manifest: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return st, fmt.Errorf("store: writing compacted manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return st, fmt.Errorf("store: syncing compacted manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return st, fmt.Errorf("store: closing compacted manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.manifestPath()); err != nil {
		return st, fmt.Errorf("store: publishing compacted manifest %s: %w", s.manifestPath(), err)
	}
	old := s.manifest
	mf, err := os.OpenFile(s.manifestPath(), os.O_WRONLY|os.O_APPEND, filePerm)
	if err != nil {
		return st, fmt.Errorf("store: reopening manifest %s: %w", s.manifestPath(), err)
	}
	s.manifest = mf
	old.Close()

	// Delete unreferenced objects (and stray temp files).
	objRoot := filepath.Join(s.dir, objectsDir)
	_ = filepath.WalkDir(objRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		name := d.Name()
		hash := strings.TrimSuffix(name, objectExt)
		if strings.HasSuffix(name, objectExt) && referenced[hash] {
			return nil
		}
		if fi, err := d.Info(); err == nil {
			st.ReclaimedBytes += fi.Size()
		}
		if os.Remove(path) == nil {
			st.RemovedObjects++
		}
		return nil
	})

	// Purge the quarantine: by GC time the autopsy window has passed.
	qRoot := filepath.Join(s.dir, quarantineDir)
	if ents, err := os.ReadDir(qRoot); err == nil {
		for _, de := range ents {
			if os.Remove(filepath.Join(qRoot, de.Name())) == nil {
				st.PurgedQuarantine++
			}
		}
	}
	return st, nil
}

// countWriter tracks bytes written through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.n += int64(n)
	return n, err
}

// countReader tracks bytes read through it.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(b []byte) (int, error) {
	n, err := c.r.Read(b)
	c.n += int64(n)
	return n, err
}
