// Package psins reimplements the role of the PSiNS simulator in the PMaC
// framework: it replays a parallel application's event trace against a
// target machine model to produce a predicted runtime. The package provides
// three pieces: a LogGP-style network model, a discrete-event replay engine
// for mpi.Program event traces, and the convolution that maps an
// application signature onto a machine profile (Equation 1 of the paper)
// to obtain per-basic-block computation times.
package psins

import (
	"fmt"
	"math"

	"tracex/internal/machine"
	"tracex/internal/mpi"
)

// Network is a LogGP-style interconnect model built from a machine's
// network configuration.
type Network struct {
	latency  float64 // seconds, one-way wire latency (L)
	overhead float64 // seconds, per-message CPU overhead (o)
	perByte  float64 // seconds per payload byte (1/BW)
}

// NewNetwork builds the network model for cfg.
func NewNetwork(cfg machine.NetworkConfig) (Network, error) {
	if err := cfg.Validate(); err != nil {
		return Network{}, err
	}
	return Network{
		latency:  cfg.LatencyUS * 1e-6,
		overhead: cfg.OverheadUS * 1e-6,
		perByte:  1 / (cfg.BandwidthGBs * 1e9),
	}, nil
}

// SendOverhead is the time the sending CPU is busy injecting a message.
func (n Network) SendOverhead(bytes uint64) float64 {
	return n.overhead
}

// RecvOverhead is the time the receiving CPU spends completing a message.
func (n Network) RecvOverhead() float64 { return n.overhead }

// TransitTime is the wire time from injection to availability at the
// receiver: latency plus serialization of the payload.
func (n Network) TransitTime(bytes uint64) float64 {
	return n.latency + float64(bytes)*n.perByte
}

// Latency is the one-way wire latency.
func (n Network) Latency() float64 { return n.latency }

// SerializationTime is the time the sender's NIC is occupied injecting the
// payload; consecutive sends from one rank serialize behind it.
func (n Network) SerializationTime(bytes uint64) float64 {
	return float64(bytes) * n.perByte
}

// RingThresholdBytes is the payload size above which allreduce and bcast
// switch from latency-optimal binomial trees to bandwidth-optimal ring
// algorithms, mirroring production MPI implementations.
const RingThresholdBytes = 64 << 10

// CollectiveCost returns the completion time of a collective over p ranks
// with the given per-rank payload, measured from the moment the last rank
// arrives. Small payloads use latency-optimal binomial trees; large
// payloads use bandwidth-optimal ring algorithms (reduce-scatter +
// allgather for allreduce, pipelined ring for bcast), the algorithm switch
// production MPI libraries perform.
func (n Network) CollectiveCost(kind mpi.EventKind, p int, bytes uint64) (float64, error) {
	if p <= 0 {
		return 0, fmt.Errorf("psins: collective over %d ranks", p)
	}
	if p == 1 {
		return 0, nil
	}
	steps := math.Ceil(math.Log2(float64(p)))
	hop := n.latency + n.overhead
	ser := float64(bytes) * n.perByte
	pf := float64(p)
	switch kind {
	case mpi.Barrier:
		return steps * hop, nil
	case mpi.Bcast:
		if bytes > RingThresholdBytes {
			// Pipelined ring: p-1 hops of latency, each rank forwards the
			// full payload once.
			return (pf-1)*hop + ser, nil
		}
		return steps * (hop + ser), nil
	case mpi.Allreduce:
		if bytes > RingThresholdBytes {
			// Ring reduce-scatter + allgather: 2(p-1) steps, each moving
			// bytes/p; total wire time ≈ 2·bytes·(p-1)/p per rank.
			return 2*(pf-1)*hop + 2*ser*(pf-1)/pf, nil
		}
		// Reduce up the tree, broadcast down: two tree traversals.
		return 2 * steps * (hop + ser), nil
	case mpi.Reduce:
		// One binomial tree traversal toward the root.
		return steps * (hop + ser), nil
	case mpi.Allgather:
		// Ring allgather: p-1 steps each forwarding the per-rank payload;
		// total wire time ≈ bytes·(p-1).
		return (pf-1)*hop + ser*(pf-1), nil
	case mpi.Alltoall:
		// p-1 pairwise exchanges, each carrying the per-pair payload.
		return (pf - 1) * (hop + ser), nil
	default:
		return 0, fmt.Errorf("psins: %s is not a collective", kind)
	}
}
