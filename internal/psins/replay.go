package psins

import (
	"context"
	"fmt"

	"tracex/internal/mpi"
	"tracex/internal/obs"
)

// ComputeCost converts one compute event into seconds: the time rank spends
// executing the given share of basic block blockID. Implementations come
// from either the convolution (predicted per-block times from a signature
// and machine profile) or the detailed execution simulator (cycle-accurate
// per-block times), making the replay engine common to both paths.
type ComputeCost func(rank int, blockID uint64, share float64) (float64, error)

// Result summarizes a replay: the predicted application runtime and the
// per-rank decomposition into computation and communication time.
type Result struct {
	// Runtime is the wall-clock prediction: the latest rank finish time.
	Runtime float64
	// RankEnd[r] is rank r's finish time.
	RankEnd []float64
	// ComputeTime[r] is the total time rank r spent in compute segments.
	ComputeTime []float64
	// CommTime[r] is the total time rank r spent in communication
	// (overheads plus blocking waits).
	CommTime []float64
	// Messages is the number of point-to-point messages delivered.
	Messages int
}

// chanKey identifies an ordered point-to-point message stream.
type chanKey struct{ src, dst, tag int }

// collState tracks one collective occurrence while ranks arrive at it.
type collState struct {
	kind    mpi.EventKind
	bytes   uint64
	arrived int
	maxT    float64
	done    bool
	endT    float64
}

// Segment is one interval of a rank's replayed timeline.
type Segment struct {
	// Rank is the MPI rank the segment belongs to.
	Rank int `json:"rank"`
	// Kind is the event kind ("compute", "recv", "allreduce", ...).
	Kind string `json:"kind"`
	// Start and End bound the segment in seconds of virtual time.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// BlockID is set for compute segments.
	BlockID uint64 `json:"block_id,omitempty"`
}

// Timeline collects the per-rank segments of a replay for visualization
// and prediction debugging. Zero-length segments (instantaneous events) are
// omitted.
type Timeline struct {
	Segments []Segment `json:"segments"`
}

// add appends a non-empty segment.
func (tl *Timeline) add(rank int, kind mpi.EventKind, start, end float64, blockID uint64) {
	if tl == nil || end <= start {
		return
	}
	tl.Segments = append(tl.Segments, Segment{
		Rank: rank, Kind: kind.String(), Start: start, End: end, BlockID: blockID,
	})
}

// Replay performs a discrete-event replay of prog: per-rank virtual clocks
// advance through each rank's event list, blocking receives wait for
// message arrival under the network model, and collectives synchronize all
// ranks. The cost callback supplies compute-segment durations. Replay
// returns an error for structurally invalid programs and for replays that
// deadlock (which cannot happen for programs produced by mpi.Builder).
func Replay(prog *mpi.Program, net Network, cost ComputeCost) (*Result, error) {
	return ReplayTraced(context.Background(), prog, net, cost, nil)
}

// ctxCheckMask throttles cancellation polling in the replay scheduler: the
// context is consulted every ctxCheckMask+1 replayed events.
const ctxCheckMask = 1<<12 - 1

// ReplayTraced is Replay with context cancellation and optional timeline
// recording: cancelling ctx stops the replay promptly mid-schedule and
// returns ctx.Err(); when tl is non-nil every rank's compute and
// communication intervals are appended to it (memory grows with the event
// count — use judiciously at large rank counts).
func ReplayTraced(ctx context.Context, prog *mpi.Program, net Network, cost ComputeCost, tl *Timeline) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if cost == nil {
		return nil, fmt.Errorf("psins: nil compute cost")
	}
	n := prog.NumRanks()
	sp := obs.From(ctx).StartSpan("psins.replay", fmt.Sprintf("%d ranks", n))
	defer sp.End()
	res := &Result{
		RankEnd:     make([]float64, n),
		ComputeTime: make([]float64, n),
		CommTime:    make([]float64, n),
	}
	clock := make([]float64, n)
	pc := make([]int, n)
	collIdx := make([]int, n) // next collective occurrence index per rank
	collReg := make([]int, n) // collectives rank r has registered arrival at
	// arrivals is append-only per channel; consumed counts the slots
	// claimed by executed Recvs and posted Irecvs (MPI matches receives to
	// messages in posting order).
	arrivals := map[chanKey][]float64{}
	consumed := map[chanKey]int{}
	// pendingReq[r][request] is an outstanding non-blocking operation.
	type reqState struct {
		key    chanKey
		idx    int // reserved arrival slot (receives only)
		isSend bool
	}
	pendingReq := make([]map[int]reqState, n)
	for r := range pendingReq {
		pendingReq[r] = map[int]reqState{}
	}
	// nicFree[r] is when rank r's NIC finishes injecting its previous
	// message: consecutive sends from one rank serialize at the NIC even
	// though the CPU only pays the per-message overhead.
	nicFree := make([]float64, n)
	inject := func(r int, sendTime float64, bytes uint64) float64 {
		start := sendTime
		if nicFree[r] > start {
			start = nicFree[r]
		}
		ser := net.SerializationTime(bytes)
		nicFree[r] = start + ser
		return start + ser + net.Latency()
	}
	var colls []collState

	done := func(r int) bool { return pc[r] >= len(prog.Ranks[r]) }
	allDone := func() bool {
		for r := 0; r < n; r++ {
			if !done(r) {
				return false
			}
		}
		return true
	}

	var replayed int
	for !allDone() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		progress := false
		for r := 0; r < n; r++ {
			// Drain as many events as possible for this rank before moving
			// on; only a blocked receive or collective stops it.
		rankLoop:
			for !done(r) {
				if replayed++; replayed&ctxCheckMask == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				e := prog.Ranks[r][pc[r]]
				switch e.Kind {
				case mpi.Compute:
					dt, err := cost(r, e.BlockID, e.Share)
					if err != nil {
						return nil, fmt.Errorf("psins: rank %d block %d: %w", r, e.BlockID, err)
					}
					if dt < 0 {
						return nil, fmt.Errorf("psins: negative compute cost %g for block %d", dt, e.BlockID)
					}
					tl.add(r, mpi.Compute, clock[r], clock[r]+dt, e.BlockID)
					clock[r] += dt
					res.ComputeTime[r] += dt
					pc[r]++
				case mpi.Send:
					o := net.SendOverhead(e.Bytes)
					arrival := inject(r, clock[r]+o, e.Bytes)
					k := chanKey{r, e.Peer, e.Tag}
					arrivals[k] = append(arrivals[k], arrival)
					tl.add(r, mpi.Send, clock[r], clock[r]+o, 0)
					clock[r] += o
					res.CommTime[r] += o
					pc[r]++
				case mpi.Recv:
					k := chanKey{e.Peer, r, e.Tag}
					idx := consumed[k]
					if idx >= len(arrivals[k]) {
						break rankLoop // blocked: matching send not yet executed
					}
					consumed[k] = idx + 1
					arrival := arrivals[k][idx]
					start := clock[r]
					end := arrival
					if end < start {
						end = start
					}
					end += net.RecvOverhead()
					tl.add(r, mpi.Recv, start, end, 0)
					res.CommTime[r] += end - start
					clock[r] = end
					pc[r]++
				case mpi.Isend:
					// Eager non-blocking send: the CPU pays the injection
					// overhead at post time; the Wait is then free.
					o := net.SendOverhead(e.Bytes)
					arrival := inject(r, clock[r]+o, e.Bytes)
					k := chanKey{r, e.Peer, e.Tag}
					arrivals[k] = append(arrivals[k], arrival)
					pendingReq[r][e.Request] = reqState{key: k, isSend: true}
					tl.add(r, mpi.Isend, clock[r], clock[r]+o, 0)
					clock[r] += o
					res.CommTime[r] += o
					pc[r]++
				case mpi.Irecv:
					// Posting reserves the next message slot on the channel
					// (MPI posting-order matching) and costs no time.
					k := chanKey{e.Peer, r, e.Tag}
					pendingReq[r][e.Request] = reqState{key: k, idx: consumed[k]}
					consumed[k]++
					pc[r]++
				case mpi.Wait:
					st, ok := pendingReq[r][e.Request]
					if !ok {
						return nil, fmt.Errorf("psins: rank %d waits on unknown request %d", r, e.Request)
					}
					if st.isSend {
						delete(pendingReq[r], e.Request) // eager send: already complete
						pc[r]++
						break
					}
					if st.idx >= len(arrivals[st.key]) {
						break rankLoop // message not yet injected by the sender
					}
					arrival := arrivals[st.key][st.idx]
					start := clock[r]
					end := arrival
					if end < start {
						end = start
					}
					end += net.RecvOverhead()
					tl.add(r, mpi.Wait, start, end, 0)
					res.CommTime[r] += end - start
					clock[r] = end
					delete(pendingReq[r], e.Request)
					pc[r]++
				default: // collective
					idx := collIdx[r]
					for len(colls) <= idx {
						colls = append(colls, collState{kind: e.Kind, bytes: e.Bytes})
					}
					st := &colls[idx]
					if st.kind != e.Kind || st.bytes != e.Bytes {
						return nil, fmt.Errorf("psins: rank %d collective %d is %s/%dB, others ran %s/%dB",
							r, idx, e.Kind, e.Bytes, st.kind, st.bytes)
					}
					if collReg[r] == idx {
						// First visit by this rank: register arrival.
						st.arrived++
						collReg[r] = idx + 1
						if clock[r] > st.maxT {
							st.maxT = clock[r]
						}
						if st.arrived == n {
							c, err := net.CollectiveCost(st.kind, n, st.bytes)
							if err != nil {
								return nil, err
							}
							st.done = true
							st.endT = st.maxT + c
						}
						progress = true
					}
					if !st.done {
						break rankLoop // wait for the other ranks
					}
					tl.add(r, e.Kind, clock[r], st.endT, 0)
					res.CommTime[r] += st.endT - clock[r]
					clock[r] = st.endT
					collIdx[r]++
					pc[r]++
				}
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("psins: replay deadlocked with %d/%d ranks incomplete",
				countUnfinished(pc, prog), n)
		}
	}
	for r := 0; r < n; r++ {
		res.RankEnd[r] = clock[r]
		if clock[r] > res.Runtime {
			res.Runtime = clock[r]
		}
	}
	res.Messages = prog.TotalMessages()
	// One batched metrics update per replay: events executed, messages
	// delivered, and the virtual compute vs communication-wait split summed
	// across ranks.
	m := obs.From(ctx)
	var events int
	for r := 0; r < n; r++ {
		events += len(prog.Ranks[r])
	}
	var compute, comm float64
	for r := 0; r < n; r++ {
		compute += res.ComputeTime[r]
		comm += res.CommTime[r]
	}
	m.Counter("psins.replays").Inc()
	m.Counter("psins.events").Add(uint64(events))
	m.Counter("psins.messages").Add(uint64(res.Messages))
	m.Gauge("psins.compute_seconds").Add(compute)
	m.Gauge("psins.comm_seconds").Add(comm)
	return res, nil
}

func countUnfinished(pc []int, prog *mpi.Program) int {
	var c int
	for r, p := range pc {
		if p < len(prog.Ranks[r]) {
			c++
		}
	}
	return c
}
