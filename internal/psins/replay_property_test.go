package psins

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tracex/internal/machine"
	"tracex/internal/mpi"
)

// testNetCfg is the network used by the replay property tests.
var testNetCfg = machine.NetworkConfig{LatencyUS: 5, BandwidthGBs: 2, OverheadUS: 1}

// randomProgram builds a structurally valid random program via the builder.
func randomProgram(seed int64) (*mpi.Program, error) {
	r := rand.New(rand.NewSource(seed))
	n := []int{2, 4, 8, 27}[r.Intn(4)]
	g, err := mpi.NewGrid3D(n)
	if err != nil {
		return nil, err
	}
	b := mpi.NewBuilder("prop", n)
	steps := 1 + r.Intn(4)
	for s := 0; s < steps; s++ {
		b.ComputeAll(uint64(r.Intn(3)+1), 1.0/float64(steps))
		switch r.Intn(3) {
		case 0:
			b.HaloExchange3D(g, uint64(r.Intn(1<<16)+1), s*100)
		case 1:
			b.HaloExchange3DNonblocking(g, uint64(r.Intn(1<<16)+1), s*100)
		case 2:
			b.Ring(uint64(r.Intn(1<<12)+1), s*100+7)
		}
		b.Allreduce(uint64(r.Intn(256) + 1))
	}
	return b.Build()
}

// Property: replay is deterministic and its runtime is bounded below by
// the maximum per-rank compute time and above by total compute plus total
// communication per rank.
func TestReplayInvariantsProperty(t *testing.T) {
	net, err := NewNetwork(testNetCfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		prog, err := randomProgram(seed)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed ^ 0x5eed))
		perBlock := map[uint64]float64{}
		cost := func(rank int, blockID uint64, share float64) (float64, error) {
			c, ok := perBlock[blockID]
			if !ok {
				c = r.Float64() * 0.1
				perBlock[blockID] = c
			}
			return c * share, nil
		}
		a, err := Replay(prog, net, cost)
		if err != nil {
			return false
		}
		b, err := Replay(prog, net, cost)
		if err != nil {
			return false
		}
		if a.Runtime != b.Runtime {
			return false // nondeterministic
		}
		var maxCompute float64
		for rk := range a.ComputeTime {
			if a.ComputeTime[rk] < 0 || a.CommTime[rk] < 0 {
				return false
			}
			if a.ComputeTime[rk] > maxCompute {
				maxCompute = a.ComputeTime[rk]
			}
			// Each rank's end time decomposes exactly.
			if math.Abs(a.RankEnd[rk]-(a.ComputeTime[rk]+a.CommTime[rk])) > 1e-9 {
				return false
			}
			if a.RankEnd[rk] > a.Runtime+1e-12 {
				return false
			}
		}
		return a.Runtime >= maxCompute-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: inflating every compute cost never reduces the replay runtime
// (monotonicity of the DES in compute time).
func TestReplayMonotoneInComputeProperty(t *testing.T) {
	net, err := NewNetwork(testNetCfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		prog, err := randomProgram(seed)
		if err != nil {
			return false
		}
		mk := func(scale float64) ComputeCost {
			return func(rank int, blockID uint64, share float64) (float64, error) {
				return scale * 0.01 * share * float64(blockID), nil
			}
		}
		small, err := Replay(prog, net, mk(1))
		if err != nil {
			return false
		}
		big, err := Replay(prog, net, mk(3))
		if err != nil {
			return false
		}
		return big.Runtime >= small.Runtime-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a faster network never increases the runtime.
func TestReplayMonotoneInNetworkProperty(t *testing.T) {
	slow, err := NewNetwork(testNetCfg)
	if err != nil {
		t.Fatal(err)
	}
	fastCfg := testNetCfg
	fastCfg.LatencyUS /= 10
	fastCfg.BandwidthGBs *= 10
	fastCfg.OverheadUS /= 10
	fast, err := NewNetwork(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		prog, err := randomProgram(seed)
		if err != nil {
			return false
		}
		rs, err := Replay(prog, slow, flatCost(0.001))
		if err != nil {
			return false
		}
		rf, err := Replay(prog, fast, flatCost(0.001))
		if err != nil {
			return false
		}
		return rf.Runtime <= rs.Runtime+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
