package psins

import (
	"math"
	"testing"

	"tracex/internal/mpi"
)

func TestReplayIsendWaitIsEager(t *testing.T) {
	// An Isend's Wait completes immediately: the sender never blocks on
	// the receiver.
	prog := &mpi.Program{App: "nb", Ranks: [][]mpi.Event{
		{
			{Kind: mpi.Isend, Peer: 1, Tag: 0, Bytes: 8, Request: 0},
			{Kind: mpi.Wait, Request: 0},
		},
		{
			{Kind: mpi.Compute, BlockID: 1, Share: 1},
			{Kind: mpi.Recv, Peer: 0, Tag: 0, Bytes: 8},
		},
	}}
	cost := func(rank int, blockID uint64, share float64) (float64, error) { return 3.0, nil }
	res, err := Replay(prog, testNet(t), cost)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// Sender finishes after just the injection overhead, long before the
	// receiver's 3 s compute.
	if res.RankEnd[0] > 0.001 {
		t.Errorf("eager sender blocked until %g", res.RankEnd[0])
	}
	if res.RankEnd[1] < 3.0 {
		t.Errorf("receiver end %g", res.RankEnd[1])
	}
}

func TestReplayIrecvOverlapsCompute(t *testing.T) {
	// Rank 1 posts an Irecv, computes 1 s while the (slow, big) message is
	// in flight, then Waits. Overlap means total time ≈ max(compute,
	// message flight), not the sum.
	const bigBytes = 2_000_000_000 // 1 s of serialization at 2 GB/s
	prog := &mpi.Program{App: "nb", Ranks: [][]mpi.Event{
		{
			{Kind: mpi.Send, Peer: 1, Tag: 0, Bytes: bigBytes},
		},
		{
			{Kind: mpi.Irecv, Peer: 0, Tag: 0, Bytes: bigBytes, Request: 7},
			{Kind: mpi.Compute, BlockID: 1, Share: 1},
			{Kind: mpi.Wait, Request: 7},
		},
	}}
	cost := func(rank int, blockID uint64, share float64) (float64, error) { return 1.0, nil }
	res, err := Replay(prog, testNet(t), cost)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	flight := 1e-6 + 5e-6 + float64(bigBytes)/2e9 // o + L + ser ≈ 1.000006 s
	want := flight + 1e-6                         // recv overhead at Wait
	if math.Abs(res.RankEnd[1]-want) > 1e-3 {
		t.Errorf("receiver end %g, want ≈%g (compute hidden under transfer)", res.RankEnd[1], want)
	}
	// The blocking-receive version would take compute + flight ≈ 2 s.
	if res.RankEnd[1] > 1.5 {
		t.Errorf("no communication/computation overlap: end %g", res.RankEnd[1])
	}
}

func TestReplayIrecvPostingOrderMatching(t *testing.T) {
	// Two messages, two Irecvs posted in order: first posted request gets
	// the first-sent message even if waited in reverse order.
	prog := &mpi.Program{App: "nb", Ranks: [][]mpi.Event{
		{
			{Kind: mpi.Send, Peer: 1, Tag: 0, Bytes: 8},
			{Kind: mpi.Compute, BlockID: 1, Share: 1},
			{Kind: mpi.Send, Peer: 1, Tag: 0, Bytes: 8},
		},
		{
			{Kind: mpi.Irecv, Peer: 0, Tag: 0, Bytes: 8, Request: 0},
			{Kind: mpi.Irecv, Peer: 0, Tag: 0, Bytes: 8, Request: 1},
			{Kind: mpi.Wait, Request: 1}, // second message: after the 2 s compute
			{Kind: mpi.Wait, Request: 0}, // first message: already there
		},
	}}
	cost := func(rank int, blockID uint64, share float64) (float64, error) { return 2.0, nil }
	res, err := Replay(prog, testNet(t), cost)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// Receiver completes shortly after the second send (t ≈ 2 s).
	if res.RankEnd[1] < 2.0 || res.RankEnd[1] > 2.1 {
		t.Errorf("receiver end %g, want ≈2 s", res.RankEnd[1])
	}
}

func TestReplayWaitUnknownRequest(t *testing.T) {
	prog := &mpi.Program{App: "nb", Ranks: [][]mpi.Event{
		{{Kind: mpi.Isend, Peer: 1, Tag: 0, Bytes: 8, Request: 0}, {Kind: mpi.Wait, Request: 0}},
		{{Kind: mpi.Recv, Peer: 0, Tag: 0, Bytes: 8}, {Kind: mpi.Wait, Request: 9}},
	}}
	// Program.Validate rejects this (wait on unposted request), so Replay
	// must too.
	if _, err := Replay(prog, testNet(t), flatCost(0)); err == nil {
		t.Error("wait on unposted request accepted")
	}
}

func TestReplayNonblockingHaloProgram(t *testing.T) {
	g, err := mpi.NewGrid3D(27)
	if err != nil {
		t.Fatal(err)
	}
	b := mpi.NewBuilder("nbhalo", 27)
	for step := 0; step < 3; step++ {
		b.ComputeAll(1, 1.0/3).HaloExchange3DNonblocking(g, 64<<10, step*100).Allreduce(8)
	}
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := Replay(prog, testNet(t), flatCost(0.05))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	for r := range res.ComputeTime {
		if math.Abs(res.ComputeTime[r]-0.05) > 1e-9 {
			t.Fatalf("rank %d compute %g", r, res.ComputeTime[r])
		}
	}
	if res.Runtime <= 0.05 {
		t.Errorf("runtime %g below pure compute", res.Runtime)
	}
}

func TestNonblockingMatchesBlockingVolumes(t *testing.T) {
	g, _ := mpi.NewGrid3D(8)
	blocking, err := mpi.NewBuilder("b", 8).HaloExchange3D(g, 4096, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	nonblocking, err := mpi.NewBuilder("nb", 8).HaloExchange3DNonblocking(g, 4096, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if blocking.TotalMessages() != nonblocking.TotalMessages() {
		t.Errorf("message counts differ: %d vs %d",
			blocking.TotalMessages(), nonblocking.TotalMessages())
	}
	if blocking.TotalBytes() != nonblocking.TotalBytes() {
		t.Errorf("byte volumes differ")
	}
}

func TestNonblockingHaloFasterThanBlocking(t *testing.T) {
	// With every rank exchanging simultaneously, posting all receives
	// before sending lets transfers overlap; the blocking version
	// serializes each rank's receives after its sends. Non-blocking must
	// not be slower.
	g, _ := mpi.NewGrid3D(64)
	mk := func(nb bool) *mpi.Program {
		b := mpi.NewBuilder("halo", 64)
		for step := 0; step < 4; step++ {
			b.ComputeAll(1, 0.25)
			if nb {
				b.HaloExchange3DNonblocking(g, 1<<20, step*100)
			} else {
				b.HaloExchange3D(g, 1<<20, step*100)
			}
		}
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	net := testNet(t)
	rb, err := Replay(mk(false), net, flatCost(0.01))
	if err != nil {
		t.Fatal(err)
	}
	rnb, err := Replay(mk(true), net, flatCost(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if rnb.Runtime > rb.Runtime*1.0001 {
		t.Errorf("non-blocking halo slower: %g vs %g", rnb.Runtime, rb.Runtime)
	}
}
