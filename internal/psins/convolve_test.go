package psins

import (
	"context"

	"math"
	"testing"

	"tracex/internal/machine"
	"tracex/internal/multimaps"
	"tracex/internal/trace"
)

// buildProfile runs a cheap MultiMAPS sweep for the Opteron config.
func buildProfile(t *testing.T) *machine.Profile {
	t.Helper()
	cfg := machine.Opteron2L()
	o := multimaps.DefaultOptions(cfg)
	o.RefsPerProbe = 20_000
	o.WarmupPasses = 1
	p, err := multimaps.Run(context.Background(), cfg, o)
	if err != nil {
		t.Fatalf("multimaps.Run: %v", err)
	}
	return p
}

func convTrace(levels int) *trace.Trace {
	mkFV := func(memOps, fpOps float64, hr []float64, ws float64) trace.FeatureVector {
		return trace.FeatureVector{
			FPOps: fpOps, FPAdd: fpOps / 2, FPMul: fpOps / 2,
			MemOps: memOps, Loads: memOps * 0.7, Stores: memOps * 0.3,
			BytesPerRef: 8, HitRates: hr, WorkingSetBytes: ws, ILP: 2,
		}
	}
	return &trace.Trace{
		App: "conv", CoreCount: 16, Rank: 0, Machine: "opteron2", Levels: levels,
		Blocks: []trace.Block{
			{ID: 1, Func: "hot", FV: mkFV(1e9, 5e8, []float64{0.99, 1.0}, 32<<10)},
			{ID: 2, Func: "cold", FV: mkFV(1e8, 2e7, []float64{0.875, 0.9}, 8<<20)},
			{ID: 3, Func: "fponly", FV: mkFV(0, 1e9, []float64{0, 0}, 0)},
		},
	}
}

func TestConvolveBasics(t *testing.T) {
	prof := buildProfile(t)
	tr := convTrace(2)
	comp, err := Convolve(tr, prof)
	if err != nil {
		t.Fatalf("Convolve: %v", err)
	}
	if len(comp.Blocks) != 3 {
		t.Fatalf("got %d block times", len(comp.Blocks))
	}
	if comp.Seconds <= 0 || comp.MemSeconds <= 0 || comp.FPSeconds <= 0 {
		t.Errorf("non-positive components: %+v", comp)
	}
	// Per-block consistency: total = Σ block seconds.
	var sum float64
	for _, bt := range comp.Blocks {
		sum += bt.Seconds
		if bt.Seconds < math.Max(bt.MemSeconds, bt.FPSeconds)-1e-15 {
			t.Errorf("block %d time %g below max(mem,fp)", bt.BlockID, bt.Seconds)
		}
		if bt.Seconds > bt.MemSeconds+bt.FPSeconds+1e-15 {
			t.Errorf("block %d time %g above mem+fp", bt.BlockID, bt.Seconds)
		}
	}
	if math.Abs(sum-comp.Seconds) > 1e-12 {
		t.Errorf("block sum %g != total %g", sum, comp.Seconds)
	}
	// The FP-only block has zero memory time.
	if comp.Blocks[2].MemSeconds != 0 || comp.Blocks[2].FPSeconds <= 0 {
		t.Errorf("fp-only block mistimed: %+v", comp.Blocks[2])
	}
}

func TestConvolveCacheResidencyMatters(t *testing.T) {
	// The same reference count takes longer with poor hit rates.
	prof := buildProfile(t)
	fast := convTrace(2)
	fast.Blocks = fast.Blocks[:1] // L1-resident block
	slow := convTrace(2)
	slow.Blocks = slow.Blocks[1:2] // memory-resident block
	slow.Blocks[0].FV.MemOps = fast.Blocks[0].FV.MemOps
	for _, tr := range []*trace.Trace{fast, slow} {
		fv := &tr.Blocks[0].FV
		fv.FPOps, fv.FPAdd, fv.FPMul, fv.FPDivSqrt = 0, 0, 0, 0
	}
	fc, err := Convolve(fast, prof)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Convolve(slow, prof)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seconds <= fc.Seconds {
		t.Errorf("memory-bound block (%g s) not slower than cache-resident (%g s)",
			sc.Seconds, fc.Seconds)
	}
}

func TestConvolveErrors(t *testing.T) {
	prof := buildProfile(t)
	bad := convTrace(3) // wrong level count vs the 2-level Opteron profile
	if _, err := Convolve(bad, prof); err == nil {
		t.Error("level mismatch accepted")
	}
	invalid := convTrace(2)
	invalid.Blocks[0].FV.MemOps = -1
	if _, err := Convolve(invalid, prof); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestCostFromComputation(t *testing.T) {
	prof := buildProfile(t)
	comp, err := Convolve(convTrace(2), prof)
	if err != nil {
		t.Fatal(err)
	}
	cost := CostFromComputation(comp, nil)
	got, err := cost(0, 1, 0.5)
	if err != nil {
		t.Fatalf("cost: %v", err)
	}
	if want := comp.Blocks[0].Seconds * 0.5; math.Abs(got-want) > 1e-15 {
		t.Errorf("cost = %g, want %g", got, want)
	}
	// Unknown block is an error.
	if _, err := cost(0, 999, 1); err == nil {
		t.Error("unknown block accepted")
	}
	// Load factor scales the cost.
	lf := func(rank int) float64 { return float64(rank + 1) }
	cost = CostFromComputation(comp, lf)
	a, _ := cost(0, 1, 1)
	b, _ := cost(3, 1, 1)
	if math.Abs(b-4*a) > 1e-15 {
		t.Errorf("load factor not applied: %g vs %g", a, b)
	}
	// Negative load factor is an error.
	neg := CostFromComputation(comp, func(int) float64 { return -1 })
	if _, err := neg(0, 1, 1); err == nil {
		t.Error("negative load factor accepted")
	}
}

func TestOverlapFactorBounds(t *testing.T) {
	if OverlapFactor <= 0 || OverlapFactor > 1 {
		t.Errorf("OverlapFactor = %g outside (0,1]", OverlapFactor)
	}
}
