package psins

import (
	"context"

	"math"
	"testing"

	"tracex/internal/machine"
	"tracex/internal/mpi"
)

func testNet(t *testing.T) Network {
	t.Helper()
	n, err := NewNetwork(machine.NetworkConfig{LatencyUS: 5, BandwidthGBs: 2, OverheadUS: 1})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n
}

func flatCost(perShare float64) ComputeCost {
	return func(rank int, blockID uint64, share float64) (float64, error) {
		return perShare * share, nil
	}
}

func TestNewNetworkRejectsBadConfig(t *testing.T) {
	if _, err := NewNetwork(machine.NetworkConfig{LatencyUS: 1, BandwidthGBs: 0, OverheadUS: 1}); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestNetworkP2PTimes(t *testing.T) {
	n := testNet(t)
	if got := n.SendOverhead(100); got != 1e-6 {
		t.Errorf("SendOverhead = %g", got)
	}
	if got := n.RecvOverhead(); got != 1e-6 {
		t.Errorf("RecvOverhead = %g", got)
	}
	// Transit = 5 µs + bytes / 2 GB/s.
	want := 5e-6 + 2e9/(2e9)
	if got := n.TransitTime(2e9); math.Abs(got-want) > 1e-12 {
		t.Errorf("TransitTime = %g, want %g", got, want)
	}
}

func TestCollectiveCosts(t *testing.T) {
	n := testNet(t)
	bar8, err := n.CollectiveCost(mpi.Barrier, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 tree steps of (L+o) = 3 × 6 µs.
	if math.Abs(bar8-18e-6) > 1e-12 {
		t.Errorf("barrier(8) = %g, want 18 µs", bar8)
	}
	// Costs grow with rank count.
	bar64, _ := n.CollectiveCost(mpi.Barrier, 64, 0)
	if bar64 <= bar8 {
		t.Error("barrier cost not increasing with ranks")
	}
	// Allreduce is two tree traversals: double bcast for equal payload.
	ar, _ := n.CollectiveCost(mpi.Allreduce, 8, 1024)
	bc, _ := n.CollectiveCost(mpi.Bcast, 8, 1024)
	if math.Abs(ar-2*bc) > 1e-12 {
		t.Errorf("allreduce %g != 2×bcast %g", ar, bc)
	}
	// Single-rank collectives are free.
	if c, _ := n.CollectiveCost(mpi.Allreduce, 1, 1024); c != 0 {
		t.Errorf("1-rank collective cost %g", c)
	}
	// Large payloads switch to the bandwidth-optimal ring: for a big
	// allreduce over many ranks the ring must beat the tree estimate
	// 2·log2(p)·(hop+ser).
	const big = 8 << 20
	ringAR, err := n.CollectiveCost(mpi.Allreduce, 256, big)
	if err != nil {
		t.Fatal(err)
	}
	treeAR := 2 * 8 * (6e-6 + float64(big)/2e9) // 2·log2(256)·(hop+ser)
	if ringAR >= treeAR {
		t.Errorf("large allreduce %g not below tree estimate %g", ringAR, treeAR)
	}
	// Ring wire time approaches 2×serialization for large p.
	if lower := 2 * float64(big) / 2e9 * 0.9; ringAR < lower {
		t.Errorf("ring allreduce %g implausibly below bandwidth bound %g", ringAR, lower)
	}
	// Large bcast likewise beats the tree.
	ringBC, _ := n.CollectiveCost(mpi.Bcast, 256, big)
	treeBC := 8 * (6e-6 + float64(big)/2e9)
	if ringBC >= treeBC {
		t.Errorf("large bcast %g not below tree estimate %g", ringBC, treeBC)
	}
	// Small payloads stay on the tree (latency-optimal): cost scales with
	// log p, not p.
	small64, _ := n.CollectiveCost(mpi.Allreduce, 64, 64)
	small1024, _ := n.CollectiveCost(mpi.Allreduce, 1024, 64)
	if small1024 > small64*2 {
		t.Errorf("small allreduce scaling looks linear: %g vs %g", small64, small1024)
	}
	if _, err := n.CollectiveCost(mpi.Send, 4, 8); err == nil {
		t.Error("non-collective kind accepted")
	}
	if _, err := n.CollectiveCost(mpi.Barrier, 0, 0); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestReplayComputeOnly(t *testing.T) {
	prog, err := mpi.NewBuilder("c", 4).ComputeAll(1, 1.0).ComputeAll(2, 0.5).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(prog, testNet(t), flatCost(2.0))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// Each rank: 2.0×1.0 + 2.0×0.5 = 3.0 s.
	if math.Abs(res.Runtime-3.0) > 1e-12 {
		t.Errorf("Runtime = %g, want 3.0", res.Runtime)
	}
	for r, ct := range res.ComputeTime {
		if math.Abs(ct-3.0) > 1e-12 {
			t.Errorf("rank %d compute time %g", r, ct)
		}
		if res.CommTime[r] != 0 {
			t.Errorf("rank %d comm time %g, want 0", r, res.CommTime[r])
		}
	}
}

func TestReplayPingMessage(t *testing.T) {
	prog, err := mpi.NewBuilder("p", 2).SendRecv(0, 1, 0, 2_000_000).Build()
	if err != nil {
		t.Fatal(err)
	}
	net := testNet(t)
	res, err := Replay(prog, net, flatCost(0))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// Receiver: arrival (o + L + bytes/BW) + recv overhead.
	want := 1e-6 + 5e-6 + 2e6/2e9 + 1e-6
	if math.Abs(res.RankEnd[1]-want) > 1e-12 {
		t.Errorf("receiver end = %g, want %g", res.RankEnd[1], want)
	}
	// Sender only pays overhead.
	if math.Abs(res.RankEnd[0]-1e-6) > 1e-15 {
		t.Errorf("sender end = %g, want 1 µs", res.RankEnd[0])
	}
	if res.Messages != 1 {
		t.Errorf("Messages = %d", res.Messages)
	}
}

func TestReplayRecvBeforeSendInProgramOrder(t *testing.T) {
	// Rank 1's recv appears before rank 1 ever could see rank 0's send if
	// replay were naive program-order; the engine must block and resume.
	prog := &mpi.Program{App: "x", Ranks: [][]mpi.Event{
		{{Kind: mpi.Compute, BlockID: 1, Share: 1}, {Kind: mpi.Send, Peer: 1, Tag: 0, Bytes: 8}},
		{{Kind: mpi.Recv, Peer: 0, Tag: 0, Bytes: 8}},
	}}
	res, err := Replay(prog, testNet(t), flatCost(1.0))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// Receiver waits out the sender's 1 s compute.
	if res.RankEnd[1] < 1.0 {
		t.Errorf("receiver finished at %g before message could arrive", res.RankEnd[1])
	}
	if res.CommTime[1] < 1.0 {
		t.Errorf("receiver comm (wait) time %g", res.CommTime[1])
	}
}

func TestReplayCollectiveSynchronizes(t *testing.T) {
	// Rank 0 computes 5 s before the barrier; everyone leaves the barrier
	// after rank 0 arrives.
	prog := &mpi.Program{App: "x", Ranks: [][]mpi.Event{
		{{Kind: mpi.Compute, BlockID: 1, Share: 1}, {Kind: mpi.Barrier}},
		{{Kind: mpi.Barrier}},
		{{Kind: mpi.Barrier}},
	}}
	cost := func(rank int, blockID uint64, share float64) (float64, error) { return 5.0, nil }
	res, err := Replay(prog, testNet(t), cost)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	for r := 0; r < 3; r++ {
		if res.RankEnd[r] < 5.0 {
			t.Errorf("rank %d left barrier at %g, before the laggard arrived", r, res.RankEnd[r])
		}
	}
	// Ranks 1 and 2 spent nearly all their time waiting.
	if res.CommTime[1] < 5.0 || res.CommTime[2] < 5.0 {
		t.Errorf("waiters' comm time = %g, %g", res.CommTime[1], res.CommTime[2])
	}
}

func TestReplayMultipleCollectives(t *testing.T) {
	prog, err := mpi.NewBuilder("c", 4).
		ComputeAll(1, 1).
		Allreduce(64).
		ComputeAll(1, 1).
		Barrier().
		ComputeAll(1, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(prog, testNet(t), flatCost(1.0))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Runtime < 3.0 {
		t.Errorf("Runtime = %g, want ≥ 3 s of compute", res.Runtime)
	}
	for r := range res.ComputeTime {
		if math.Abs(res.ComputeTime[r]-3.0) > 1e-9 {
			t.Errorf("rank %d compute = %g", r, res.ComputeTime[r])
		}
	}
}

func TestReplayMessageOrderFIFO(t *testing.T) {
	// Two messages on the same channel must be received in send order.
	prog := &mpi.Program{App: "x", Ranks: [][]mpi.Event{
		{
			{Kind: mpi.Send, Peer: 1, Tag: 0, Bytes: 1},
			{Kind: mpi.Compute, BlockID: 1, Share: 1},
			{Kind: mpi.Send, Peer: 1, Tag: 0, Bytes: 1_000_000_000},
		},
		{
			{Kind: mpi.Recv, Peer: 0, Tag: 0, Bytes: 1},
			{Kind: mpi.Recv, Peer: 0, Tag: 0, Bytes: 1_000_000_000},
		},
	}}
	res, err := Replay(prog, testNet(t), flatCost(1.0))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// Second message is injected at t≈1s and takes 0.5 s serialization.
	if res.RankEnd[1] < 1.5 {
		t.Errorf("receiver end %g; big second message not accounted", res.RankEnd[1])
	}
}

func TestReplayErrors(t *testing.T) {
	prog, _ := mpi.NewBuilder("c", 2).ComputeAll(1, 1).Build()
	if _, err := Replay(prog, testNet(t), nil); err == nil {
		t.Error("nil cost accepted")
	}
	bad := func(rank int, blockID uint64, share float64) (float64, error) {
		return -1, nil
	}
	if _, err := Replay(prog, testNet(t), bad); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := Replay(&mpi.Program{}, testNet(t), flatCost(1)); err == nil {
		t.Error("invalid program accepted")
	}
	// Mismatched collective kinds at the same occurrence.
	mismatch := &mpi.Program{App: "x", Ranks: [][]mpi.Event{
		{{Kind: mpi.Barrier}},
		{{Kind: mpi.Allreduce, Bytes: 8}},
	}}
	if _, err := Replay(mismatch, testNet(t), flatCost(0)); err == nil {
		t.Error("mismatched collectives accepted")
	}
}

func TestReplayDeadlockDetected(t *testing.T) {
	// Cross receives with no sends executed first: the validator's
	// multiset check passes (sends exist later), but both ranks block on
	// recv before reaching their sends — a real deadlock under
	// blocking-receive semantics.
	prog := &mpi.Program{App: "dl", Ranks: [][]mpi.Event{
		{{Kind: mpi.Recv, Peer: 1, Tag: 0, Bytes: 8}, {Kind: mpi.Send, Peer: 1, Tag: 0, Bytes: 8}},
		{{Kind: mpi.Recv, Peer: 0, Tag: 0, Bytes: 8}, {Kind: mpi.Send, Peer: 0, Tag: 0, Bytes: 8}},
	}}
	if _, err := Replay(prog, testNet(t), flatCost(0)); err == nil {
		t.Error("deadlock not detected")
	}
}

func TestReplayLargeHaloProgram(t *testing.T) {
	g, err := mpi.NewGrid3D(64)
	if err != nil {
		t.Fatal(err)
	}
	b := mpi.NewBuilder("halo", 64)
	for step := 0; step < 5; step++ {
		b.ComputeAll(1, 0.2).HaloExchange3D(g, 32<<10, step*10).Allreduce(8)
	}
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(prog, testNet(t), flatCost(0.1))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// Compute per rank: 5 × 0.1 × 0.2 = 0.1 s, plus communication.
	if res.Runtime <= 0.1 {
		t.Errorf("Runtime = %g, want > pure compute 0.1", res.Runtime)
	}
	for r := range res.ComputeTime {
		if math.Abs(res.ComputeTime[r]-0.1) > 1e-9 {
			t.Fatalf("rank %d compute %g", r, res.ComputeTime[r])
		}
	}
}

func TestReduceAndAllgatherCosts(t *testing.T) {
	n := testNet(t)
	// Reduce is one tree traversal: half an equal-payload small allreduce.
	red, err := n.CollectiveCost(mpi.Reduce, 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	ar, _ := n.CollectiveCost(mpi.Allreduce, 8, 1024)
	if math.Abs(red*2-ar) > 1e-12 {
		t.Errorf("reduce %g not half of small allreduce %g", red, ar)
	}
	// Allgather moves (p-1)× the per-rank payload: cost grows linearly
	// with rank count for fixed payload.
	ag8, _ := n.CollectiveCost(mpi.Allgather, 8, 4096)
	ag64, _ := n.CollectiveCost(mpi.Allgather, 64, 4096)
	if ag64 < ag8*7 {
		t.Errorf("allgather not scaling linearly: %g vs %g", ag8, ag64)
	}
	// Replay accepts the new collectives.
	prog, err := mpi.NewBuilder("c", 4).
		ComputeAll(1, 1).
		Collective(mpi.Reduce, 0, 64).
		Collective(mpi.Allgather, 0, 64).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(prog, n, flatCost(0.01)); err != nil {
		t.Fatalf("Replay with reduce/allgather: %v", err)
	}
}

func TestReplayTracedTimeline(t *testing.T) {
	prog, err := mpi.NewBuilder("tl", 2).
		ComputeAll(7, 1.0).
		SendRecv(0, 1, 0, 1_000_000).
		Allreduce(64).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var tl Timeline
	res, err := ReplayTraced(context.Background(), prog, testNet(t), flatCost(0.5), &tl)
	if err != nil {
		t.Fatalf("ReplayTraced: %v", err)
	}
	if len(tl.Segments) == 0 {
		t.Fatal("empty timeline")
	}
	kinds := map[string]int{}
	for _, seg := range tl.Segments {
		kinds[seg.Kind]++
		if seg.End <= seg.Start {
			t.Errorf("empty segment recorded: %+v", seg)
		}
		if seg.End > res.Runtime+1e-12 {
			t.Errorf("segment beyond runtime: %+v", seg)
		}
		if seg.Rank < 0 || seg.Rank >= 2 {
			t.Errorf("bad rank: %+v", seg)
		}
	}
	if kinds["compute"] != 2 {
		t.Errorf("compute segments: %d, want 2", kinds["compute"])
	}
	if kinds["recv"] != 1 {
		t.Errorf("recv segments: %d, want 1", kinds["recv"])
	}
	if kinds["allreduce"] == 0 {
		t.Error("no allreduce segments")
	}
	// Compute segments carry their block IDs and sum to the compute time.
	var computeSum float64
	for _, seg := range tl.Segments {
		if seg.Kind == "compute" {
			if seg.BlockID != 7 {
				t.Errorf("compute segment without block id: %+v", seg)
			}
			computeSum += seg.End - seg.Start
		}
	}
	if math.Abs(computeSum-res.ComputeTime[0]-res.ComputeTime[1]) > 1e-9 {
		t.Errorf("timeline compute %g != accounted %g",
			computeSum, res.ComputeTime[0]+res.ComputeTime[1])
	}
	// Per-rank segments are non-overlapping and ordered.
	for r := 0; r < 2; r++ {
		last := -1.0
		for _, seg := range tl.Segments {
			if seg.Rank != r {
				continue
			}
			if seg.Start < last-1e-12 {
				t.Errorf("rank %d segments overlap at %g", r, seg.Start)
			}
			last = seg.End
		}
	}
	// Plain Replay matches the traced run.
	plain, err := Replay(prog, testNet(t), flatCost(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Runtime != res.Runtime {
		t.Errorf("traced replay diverged: %g vs %g", res.Runtime, plain.Runtime)
	}
}

func TestNICInjectionSerializes(t *testing.T) {
	// One rank firing two large messages back-to-back: the second message's
	// arrival must wait for the first to clear the sender's NIC.
	const big = 1_000_000_000 // 0.5 s serialization at 2 GB/s
	prog := &mpi.Program{App: "nic", Ranks: [][]mpi.Event{
		{
			{Kind: mpi.Send, Peer: 1, Tag: 0, Bytes: big},
			{Kind: mpi.Send, Peer: 2, Tag: 0, Bytes: big},
		},
		{{Kind: mpi.Recv, Peer: 0, Tag: 0, Bytes: big}},
		{{Kind: mpi.Recv, Peer: 0, Tag: 0, Bytes: big}},
	}}
	res, err := Replay(prog, testNet(t), flatCost(0))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// Receiver 1 gets its message after ~0.5 s, receiver 2 only after ~1 s
	// (the two injections serialize on rank 0's NIC).
	if res.RankEnd[1] < 0.5 || res.RankEnd[1] > 0.51 {
		t.Errorf("first receiver end %.4f, want ≈0.5", res.RankEnd[1])
	}
	if res.RankEnd[2] < 1.0 || res.RankEnd[2] > 1.01 {
		t.Errorf("second receiver end %.4f, want ≈1.0 (NIC serialization)", res.RankEnd[2])
	}
	// Sends from DIFFERENT ranks do not serialize against each other.
	prog2 := &mpi.Program{App: "nic2", Ranks: [][]mpi.Event{
		{{Kind: mpi.Send, Peer: 2, Tag: 0, Bytes: big}},
		{{Kind: mpi.Send, Peer: 2, Tag: 1, Bytes: big}},
		{
			{Kind: mpi.Recv, Peer: 0, Tag: 0, Bytes: big},
			{Kind: mpi.Recv, Peer: 1, Tag: 1, Bytes: big},
		},
	}}
	res2, err := Replay(prog2, testNet(t), flatCost(0))
	if err != nil {
		t.Fatal(err)
	}
	if res2.RankEnd[2] > 0.52 {
		t.Errorf("independent senders serialized: receiver end %.4f", res2.RankEnd[2])
	}
}
