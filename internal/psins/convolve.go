package psins

import (
	"fmt"

	"tracex/internal/machine"
	"tracex/internal/trace"
)

// OverlapFactor is the fraction of the smaller of a block's memory and
// floating-point times that hides under the larger one. The paper notes the
// computation model allows "some overlap of memory and floating-point work";
// out-of-order cores overlap most but not all of the minority component.
const OverlapFactor = 0.8

// BlockTime is the convolution's per-basic-block timing decomposition.
type BlockTime struct {
	// BlockID identifies the basic block.
	BlockID uint64
	// MemSeconds is the Equation 1 memory time: refs × bytes / bandwidth.
	MemSeconds float64
	// FPSeconds is the floating-point time at the block's achievable rate.
	FPSeconds float64
	// Seconds is the block's total time after memory/FP overlap.
	Seconds float64
	// BandwidthGBs is the MultiMAPS surface bandwidth used for the block.
	BandwidthGBs float64
}

// Computation is the result of convolving one task's trace with a machine
// profile: the predicted computation time between communication events.
type Computation struct {
	// Seconds is the task's total predicted computation time.
	Seconds float64
	// MemSeconds and FPSeconds decompose Seconds before overlap.
	MemSeconds, FPSeconds float64
	// Blocks holds the per-block decomposition, in trace block order.
	Blocks []BlockTime
}

// blockTime applies Equation 1 to one basic block: memory time is the sum
// over reference types of refs×size/bandwidth, with the block's bandwidth
// found at its location on the MultiMAPS surface (its cache hit rates and
// working set); floating-point time uses the ILP-limited arithmetic rate.
func blockTime(fv *trace.FeatureVector, prof *machine.Profile) (BlockTime, error) {
	bw, err := prof.LookupBandwidthPF(fv.HitRates, fv.PrefetchPerRef, fv.WorkingSetBytes)
	if err != nil {
		return BlockTime{}, err
	}
	bt := BlockTime{BandwidthGBs: bw}
	if fv.MemOps > 0 {
		bt.MemSeconds = fv.MemOps * fv.BytesPerRef / (bw * 1e9)
	}
	if fv.FPOps > 0 {
		bt.FPSeconds = fv.FPOps / prof.FPRate(fv.ILP)
	}
	longer, shorter := bt.MemSeconds, bt.FPSeconds
	if shorter > longer {
		longer, shorter = shorter, longer
	}
	bt.Seconds = longer + (1-OverlapFactor)*shorter
	return bt, nil
}

// BlockCost applies Equation 1 to a single feature vector: the per-block
// convolution step exposed for sensitivity analysis (uncertainty
// propagation perturbs one element at a time and re-evaluates the block's
// time without paying for a full Convolve).
func BlockCost(fv *trace.FeatureVector, prof *machine.Profile) (BlockTime, error) {
	return blockTime(fv, prof)
}

// Convolve maps a single task's trace onto a machine profile, producing the
// predicted computation time for that task (the sum of Equation 1 over all
// basic blocks, plus overlapped floating-point time).
func Convolve(tr *trace.Trace, prof *machine.Profile) (*Computation, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if len(prof.Machine.Caches) != tr.Levels {
		return nil, fmt.Errorf("psins: trace simulated %d cache levels, profile machine %s has %d",
			tr.Levels, prof.Machine.Name, len(prof.Machine.Caches))
	}
	comp := &Computation{Blocks: make([]BlockTime, 0, len(tr.Blocks))}
	for i := range tr.Blocks {
		b := &tr.Blocks[i]
		bt, err := blockTime(&b.FV, prof)
		if err != nil {
			return nil, fmt.Errorf("psins: block %d (%s): %w", b.ID, b.Func, err)
		}
		bt.BlockID = b.ID
		comp.Blocks = append(comp.Blocks, bt)
		comp.Seconds += bt.Seconds
		comp.MemSeconds += bt.MemSeconds
		comp.FPSeconds += bt.FPSeconds
	}
	return comp, nil
}

// CostFromComputation builds a replay ComputeCost from a convolved task:
// each compute event costs the block's convolved time scaled by the event's
// share and by the rank's load factor relative to the convolved task.
// loadFactor may be nil, which treats all ranks as doing identical work
// (the paper's approach of scaling every trace file from the slowest task's
// prediction vector).
func CostFromComputation(comp *Computation, loadFactor func(rank int) float64) ComputeCost {
	byID := make(map[uint64]float64, len(comp.Blocks))
	for _, bt := range comp.Blocks {
		byID[bt.BlockID] = bt.Seconds
	}
	return func(rank int, blockID uint64, share float64) (float64, error) {
		t, ok := byID[blockID]
		if !ok {
			return 0, fmt.Errorf("psins: compute event references block %d absent from trace", blockID)
		}
		f := 1.0
		if loadFactor != nil {
			f = loadFactor(rank)
			if f < 0 {
				return 0, fmt.Errorf("psins: negative load factor %g for rank %d", f, rank)
			}
		}
		return t * share * f, nil
	}
}
