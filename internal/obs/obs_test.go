package obs

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Error("same name returned a distinct counter")
	}
	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Errorf("gauge = %g, want 1", got)
	}
	r.GaugeFunc("fn", func() float64 { return 7 })
	snap := r.Snapshot()
	byName := map[string]MetricSnapshot{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	if byName["c"].Value != 42 || byName["c"].Type != "counter" {
		t.Errorf("snapshot counter %+v", byName["c"])
	}
	if byName["fn"].Value != 7 || byName["fn"].Type != "gauge" {
		t.Errorf("snapshot gauge func %+v", byName["fn"])
	}
}

// TestHistogramBucketEdges pins the boundary semantics: a value exactly on
// a bound counts into that bound's bucket; values beyond the last bound go
// to the overflow bucket; NaN is dropped.
func TestHistogramBucketEdges(t *testing.T) {
	r := New()
	h := r.Histogram("h", 1, 10, 100)
	for _, v := range []float64{0, 1, 1.0000001, 10, 100, 100.5, math.Inf(1)} {
		h.Observe(v)
	}
	h.Observe(math.NaN())
	buckets, overflow := h.Buckets()
	want := []uint64{2, 2, 1} // {0,1}, {1.0000001,10}, {100}
	for i, b := range buckets {
		if b.Count != want[i] {
			t.Errorf("bucket le=%g count %d, want %d", b.UpperBound, b.Count, want[i])
		}
	}
	if overflow != 2 { // 100.5 and +Inf
		t.Errorf("overflow %d, want 2", overflow)
	}
	if h.Count() != 7 {
		t.Errorf("count %d, want 7 (NaN dropped)", h.Count())
	}
	if math.IsNaN(h.Sum()) {
		t.Error("NaN observation corrupted the sum")
	}
}

func TestHistogramBoundsNormalized(t *testing.T) {
	r := New()
	h := r.Histogram("h", 5, 1, 5, 3)
	h.Observe(2)
	buckets, _ := h.Buckets()
	if len(buckets) != 3 || buckets[0].UpperBound != 1 || buckets[2].UpperBound != 5 {
		t.Fatalf("bounds not sorted/deduplicated: %+v", buckets)
	}
	if buckets[1].Count != 1 {
		t.Errorf("value 2 landed in the wrong bucket: %+v", buckets)
	}
	// Later calls with different bounds return the existing histogram.
	if r.Histogram("h", 42) != h {
		t.Error("re-creation with new bounds returned a distinct histogram")
	}
	if empty := r.Histogram("deftime"); len(empty.bounds) != len(DefTimeBuckets()) {
		t.Error("empty bounds did not select DefTimeBuckets")
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; run
// under -race (the default `make test` does) to check the safety claim.
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", 1, 2, 4).Observe(float64(i % 5))
				sp := r.StartSpan("stage", "")
				sp.End()
				if i%100 == 0 {
					r.Snapshot()
					r.Spans()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*iters {
		t.Errorf("counter %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("g").Value(); got != workers*iters {
		t.Errorf("gauge %g, want %d", got, workers*iters)
	}
	if got := r.Histogram("h").Count(); got != workers*iters {
		t.Errorf("histogram count %d, want %d", got, workers*iters)
	}
	sums := r.SpanSummaries()
	if len(sums) != 1 || sums[0].Count != workers*iters {
		t.Errorf("span summaries %+v, want one stage with %d occurrences", sums, workers*iters)
	}
}

func TestNilRegistryDisabled(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1)
	r.GaugeFunc("fn", func() float64 { return 1 })
	r.Histogram("h").Observe(1)
	sp := r.StartSpan("s", "")
	sp.End()
	if c := r.Counter("c"); c.Value() != 0 {
		t.Error("nil registry counter retained a value")
	}
	if snap := r.Snapshot(); len(snap.Metrics) != 0 || len(snap.Spans) != 0 {
		t.Errorf("nil registry snapshot %+v", snap)
	}
	if r.Spans() != nil || r.SpanSummaries() != nil {
		t.Error("nil registry returned spans")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != Default() {
		t.Error("bare context did not fall back to Default")
	}
	r := New()
	if From(Into(ctx, r)) != r {
		t.Error("injected registry not returned")
	}
	if From(Into(ctx, nil)) != nil {
		t.Error("explicitly injected nil registry not honoured (disable path)")
	}
}

// TestSnapshotStableJSON pins the stable-encoding claim: equal registry
// states encode to byte-identical JSON.
func TestSnapshotStableJSON(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("b.count").Add(2)
		r.Counter("a.count").Add(1)
		r.Gauge("m.gauge").Set(3.5)
		r.Histogram("z.h", 1, 2).Observe(1.5)
		return r
	}
	j1, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("snapshots differ:\n%s\n%s", j1, j2)
	}
	var snap Snapshot
	if err := json.Unmarshal(j1, &snap); err != nil {
		t.Fatalf("snapshot JSON round-trip: %v", err)
	}
	for i := 1; i < len(snap.Metrics); i++ {
		if snap.Metrics[i-1].Name >= snap.Metrics[i].Name {
			t.Errorf("metrics not sorted: %q before %q", snap.Metrics[i-1].Name, snap.Metrics[i].Name)
		}
	}
}

func TestHandlerServesSnapshot(t *testing.T) {
	r := New()
	r.Counter("served").Add(5)
	sp := r.StartSpan("stage", "label")
	sp.End()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Snapshot
		RecentSpans []SpanRecord `json:"recent_spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range body.Metrics {
		if m.Name == "served" && m.Value == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("handler response missing counter: %+v", body.Metrics)
	}
	if len(body.RecentSpans) != 1 || body.RecentSpans[0].Name != "stage" {
		t.Errorf("handler response spans %+v", body.RecentSpans)
	}
}
