package obs

import (
	"math"
	"sync/atomic"
)

// This file holds the serving-path additions to the metrics layer: a
// latency-oriented bucket layout fine enough for tail quantiles, quantile
// estimation over histogram buckets, and an atomic exponentially weighted
// moving average used by the server's admission auto-tuner.

// DefLatencyBuckets is the histogram layout for client- and server-side
// request latencies in seconds: geometric ~1.25× steps from 50µs to 60s
// (62 buckets). The fine spacing keeps interpolated p999 estimates within
// ~12% of the true value, which DefTimeBuckets (decade steps) cannot do.
func DefLatencyBuckets() []float64 {
	buckets := make([]float64, 0, 64)
	for b := 50e-6; b < 60; b *= 1.25 {
		buckets = append(buckets, b)
	}
	return append(buckets, 60)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation within the containing bucket, the
// way Prometheus' histogram_quantile does. Observations in the overflow
// bucket clamp to the last bound. Returns NaN on a nil or empty histogram
// or an out-of-range q.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := uint64(0)
	lower := 0.0
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if c > 0 && float64(cum)+float64(c) >= rank {
			// Interpolate within [lower, bound] by the rank's position
			// inside this bucket's count.
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (bound-lower)*frac
		}
		cum += c
		lower = bound
	}
	// Rank falls in the overflow bucket: all we know is "beyond the last
	// bound", so clamp to it.
	return lower
}

// EWMA is an atomic exponentially weighted moving average. It starts
// empty (Value returns NaN until the first Observe), and each Observe
// moves the average by alpha toward the new value. All methods are no-ops
// on a nil receiver, matching the package's other handles.
type EWMA struct {
	alpha float64
	bits  atomic.Uint64
}

// NewEWMA returns an empty average with the given smoothing factor
// (0 < alpha ≤ 1; larger tracks faster).
func NewEWMA(alpha float64) *EWMA {
	e := &EWMA{alpha: alpha}
	e.bits.Store(math.Float64bits(math.NaN()))
	return e
}

// Observe folds v into the average (the first observation seeds it).
func (e *EWMA) Observe(v float64) {
	if e == nil || math.IsNaN(v) {
		return
	}
	for {
		old := e.bits.Load()
		cur := math.Float64frombits(old)
		next := v
		if !math.IsNaN(cur) {
			next = cur + e.alpha*(v-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the current average, or NaN before any observation (and on
// a nil receiver).
func (e *EWMA) Value() float64 {
	if e == nil {
		return math.NaN()
	}
	return math.Float64frombits(e.bits.Load())
}
