// Package obs is the pipeline's zero-dependency observability layer: an
// atomic metrics registry (counters, gauges, fixed-bucket histograms) plus
// lightweight stage spans recorded into a bounded ring buffer. It exists so
// the Engine, the simulators (pebil, multimaps, psins) and the extrapolation
// can report cache effectiveness, progress and wall-clock decomposition
// without taking a dependency on a metrics vendor.
//
// Instrumentation is compiled in but cheap by construction:
//
//   - every handle method is safe on a nil receiver, so a disabled registry
//     (a nil *Registry) reduces each instrumentation point to one branch;
//   - hot loops batch their updates (one Add per simulated block or probe,
//     never one per streamed address);
//   - handles are plain atomics — no maps or locks on the update path.
//
// A Registry travels through the pipeline on the context (Into/From): the
// Engine injects its own registry so per-engine statistics stay isolated,
// while direct calls into the internal packages fall back to the process-wide
// Default registry.
package obs

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. All methods are
// no-ops on a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move in both directions (pool depth,
// cumulative seconds). All methods are no-ops on a nil receiver.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds d (CAS loop on the float bits).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed bucket layout. Bucket i counts
// observations v with v <= bounds[i] (and v > bounds[i-1]); observations
// beyond the last bound land in an implicit overflow bucket. NaN
// observations are dropped so Sum stays meaningful. All methods are no-ops
// on a nil receiver.
type Histogram struct {
	bounds []float64       // ascending upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// DefTimeBuckets is the default histogram layout for durations in seconds:
// microseconds through a minute.
func DefTimeBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1, 5, 15, 60}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations at or below UpperBound (and above the previous bound).
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// Buckets returns the per-bucket counts; the overflow count (observations
// beyond the last bound) is returned separately so snapshots stay
// JSON-encodable (no +Inf bound).
func (h *Histogram) Buckets() (buckets []BucketCount, overflow uint64) {
	if h == nil {
		return nil, 0
	}
	buckets = make([]BucketCount, len(h.bounds))
	for i, b := range h.bounds {
		buckets[i] = BucketCount{UpperBound: b, Count: h.counts[i].Load()}
	}
	return buckets, h.counts[len(h.bounds)].Load()
}

// Registry holds named metrics and the span recorder. The nil *Registry is
// the disabled registry: every method is a cheap no-op and every handle it
// returns is the corresponding nil handle. Construct with New.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
	spans    spanStore
}

// DefaultSpanCapacity is the span ring-buffer size used by New.
const DefaultSpanCapacity = 256

// New returns an empty registry with the default span ring capacity.
func New() *Registry { return NewSized(DefaultSpanCapacity) }

// NewSized returns an empty registry retaining up to spanCap completed spans
// (older spans are overwritten; aggregate summaries are unbounded and
// unaffected). spanCap < 1 disables span retention but keeps summaries.
func NewSized(spanCap int) *Registry {
	r := &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() float64{},
		hists:    map[string]*Histogram{},
	}
	if spanCap > 0 {
		r.spans.buf = make([]SpanRecord, spanCap)
	}
	r.spans.aggs = map[string]*spanAgg{}
	return r
}

// defaultRegistry backs Default.
var defaultRegistry = New()

// Default returns the process-wide registry, used by pipeline code whose
// context carries no registry.
func Default() *Registry { return defaultRegistry }

// ctxKey keys the registry on a context.
type ctxKey struct{}

// Into returns a context carrying r. Carrying a nil registry explicitly
// disables metric collection for everything below it.
func Into(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// From returns the registry carried by ctx, or Default when ctx carries
// none. The result may be nil (disabled) if a nil registry was injected.
func From(ctx context.Context) *Registry {
	if r, ok := ctx.Value(ctxKey{}).(*Registry); ok {
		return r
	}
	return Default()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time (cache sizes, queue depths). Re-registering a name replaces the
// function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (sorted, deduplicated copies; empty bounds
// select DefTimeBuckets). Later calls return the existing histogram and
// ignore the bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h != nil {
		return h
	}
	if len(bounds) == 0 {
		bounds = DefTimeBuckets()
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	h = &Histogram{bounds: uniq, counts: make([]atomic.Uint64, len(uniq)+1)}
	r.hists[name] = h
	return h
}

// MetricSnapshot is one metric's state at snapshot time.
type MetricSnapshot struct {
	// Name and Type ("counter", "gauge", "histogram") identify the metric.
	Name string `json:"name"`
	Type string `json:"type"`
	// Value carries the counter or gauge value (counters are exact up to
	// 2^53 in the float64).
	Value float64 `json:"value"`
	// Count, Sum, Buckets and Overflow carry histogram state; Overflow
	// counts observations beyond the last bucket bound.
	Count    uint64        `json:"count,omitempty"`
	Sum      float64       `json:"sum,omitempty"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
	Overflow uint64        `json:"overflow,omitempty"`
}

// Snapshot is a point-in-time copy of a registry: metrics sorted by name
// and per-stage span summaries sorted by name, so the JSON encoding is
// stable for equal states.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
	Spans   []SpanSummary    `json:"spans,omitempty"`
}

// Snapshot captures every metric and span summary. Gauge functions are
// evaluated during the call.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	ms := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFns)+len(r.hists))
	for name, c := range r.counters {
		ms = append(ms, MetricSnapshot{Name: name, Type: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		ms = append(ms, MetricSnapshot{Name: name, Type: "gauge", Value: g.Value()})
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		fns[name] = fn
	}
	for name, h := range r.hists {
		buckets, overflow := h.Buckets()
		ms = append(ms, MetricSnapshot{
			Name: name, Type: "histogram",
			Count: h.Count(), Sum: h.Sum(), Buckets: buckets, Overflow: overflow,
		})
	}
	r.mu.RUnlock()
	// Gauge functions may take locks of their own (cache stats), so they
	// run outside the registry lock.
	for name, fn := range fns {
		ms = append(ms, MetricSnapshot{Name: name, Type: "gauge", Value: fn()})
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return Snapshot{Metrics: ms, Spans: r.SpanSummaries()}
}
