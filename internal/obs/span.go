package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed stage span.
type SpanRecord struct {
	// Name identifies the stage ("pebil.collect", "psins.replay", ...).
	Name string `json:"name"`
	// Label carries free-form per-occurrence detail ("uh3d@1024").
	Label string `json:"label,omitempty"`
	// Start and Duration bound the stage in wall-clock time.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
}

// SpanSummary aggregates every completed occurrence of one stage name. The
// aggregate is unbounded: it keeps counting after the ring buffer of
// individual records wraps.
type SpanSummary struct {
	Name         string  `json:"name"`
	Count        uint64  `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// spanAgg accumulates one stage name's summary with atomics.
type spanAgg struct {
	count   atomic.Uint64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

// spanStore is the registry's span state: a fixed ring of recent records
// plus per-name aggregates. Aggregate creation shares the registry mutex;
// ring writes take the dedicated ring mutex (spans complete at stage rate,
// not address rate, so a mutex is cheap enough).
type spanStore struct {
	mu   sync.Mutex
	buf  []SpanRecord        // fixed capacity; zero Name marks an unused slot
	next int                 // next write index
	aggs map[string]*spanAgg // guarded by Registry.mu
}

// Span is an in-progress stage measurement. The zero Span (from a nil
// registry) is inert: End is a no-op.
type Span struct {
	r     *Registry
	name  string
	label string
	start time.Time
}

// StartSpan begins measuring one occurrence of the named stage. The label
// carries per-occurrence detail and may be empty. Call End on the returned
// span (typically deferred) to record it.
func (r *Registry) StartSpan(name, label string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, label: label, start: time.Now()}
}

// End records the span into the registry's ring buffer and its stage
// aggregate.
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := time.Since(s.start)
	s.r.recordSpan(SpanRecord{Name: s.name, Label: s.label, Start: s.start, Duration: d})
}

// recordSpan updates the stage aggregate and appends to the ring.
func (r *Registry) recordSpan(rec SpanRecord) {
	r.mu.RLock()
	agg := r.spans.aggs[rec.Name]
	r.mu.RUnlock()
	if agg == nil {
		r.mu.Lock()
		if agg = r.spans.aggs[rec.Name]; agg == nil {
			agg = &spanAgg{}
			r.spans.aggs[rec.Name] = agg
		}
		r.mu.Unlock()
	}
	agg.count.Add(1)
	agg.totalNs.Add(int64(rec.Duration))
	for {
		old := agg.maxNs.Load()
		if int64(rec.Duration) <= old || agg.maxNs.CompareAndSwap(old, int64(rec.Duration)) {
			break
		}
	}
	st := &r.spans
	st.mu.Lock()
	if len(st.buf) > 0 {
		st.buf[st.next] = rec
		st.next = (st.next + 1) % len(st.buf)
	}
	st.mu.Unlock()
}

// Spans returns the retained span records, oldest first. At most the ring
// capacity of the most recent spans is available.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	st := &r.spans
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SpanRecord, 0, len(st.buf))
	for i := 0; i < len(st.buf); i++ {
		rec := st.buf[(st.next+i)%len(st.buf)]
		if rec.Name != "" {
			out = append(out, rec)
		}
	}
	return out
}

// SpanSummaries returns the per-stage aggregates sorted by name.
func (r *Registry) SpanSummaries() []SpanSummary {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]SpanSummary, 0, len(r.spans.aggs))
	for name, agg := range r.spans.aggs {
		out = append(out, SpanSummary{
			Name:         name,
			Count:        agg.count.Load(),
			TotalSeconds: time.Duration(agg.totalNs.Load()).Seconds(),
			MaxSeconds:   time.Duration(agg.maxNs.Load()).Seconds(),
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
