package obs

import (
	"testing"
	"time"
)

// The overhead benchmarks compare every instrumentation primitive against
// its disabled (nil-registry) path, which is what the pipeline pays when
// observability is turned off with WithRegistry(nil). Run via `make
// bench-obs`.

func BenchmarkObsCounterInc(b *testing.B) {
	c := New().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterIncDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterLookup(b *testing.B) {
	r := New()
	r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("c").Inc()
	}
}

func BenchmarkObsGaugeAdd(b *testing.B) {
	g := New().Gauge("g")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1.5)
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := New().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-4)
	}
}

func BenchmarkObsHistogramObserveDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-4)
	}
}

func BenchmarkObsSpan(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("stage", "")
		sp.End()
	}
}

func BenchmarkObsSpanDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("stage", "")
		sp.End()
	}
}

// BenchmarkObsInstrumentedBlock approximates one pebil block's whole
// metric cost (two counters batched, two histogram observations, amortized
// over the ~10^5 simulated references a block streams), demonstrating the
// per-reference overhead is far below the 2% acceptance bound.
func BenchmarkObsInstrumentedBlock(b *testing.B) {
	r := New()
	blocks := r.Counter("pebil.blocks")
	warm := r.Counter("pebil.warm_refs")
	hist := r.Histogram("pebil.block_sample_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blocks.Inc()
		warm.Add(100_000)
		hist.Observe(float64(i%100) * time.Millisecond.Seconds())
	}
}
