package obs

import (
	"encoding/json"
	"net/http"
)

// Handler returns an expvar-style HTTP handler that serves the registry's
// JSON snapshot (metrics sorted by name, span summaries, and the recent
// span ring under "recent_spans"). A nil registry serves an empty snapshot.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Errors past the header are the client's disconnect; nothing to do.
		_ = enc.Encode(struct {
			Snapshot
			RecentSpans []SpanRecord `json:"recent_spans,omitempty"`
		}{Snapshot: r.Snapshot(), RecentSpans: r.Spans()})
	})
}
