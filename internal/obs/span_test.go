package obs

import (
	"fmt"
	"testing"
	"time"
)

// TestSpanRingWraparound fills a small ring past capacity and checks that
// only the newest records survive, oldest first, while the aggregate keeps
// the full count.
func TestSpanRingWraparound(t *testing.T) {
	const cap = 4
	r := NewSized(cap)
	for i := 0; i < 10; i++ {
		r.recordSpan(SpanRecord{
			Name:     "stage",
			Label:    fmt.Sprintf("occ%d", i),
			Start:    time.Unix(int64(i), 0),
			Duration: time.Duration(i) * time.Millisecond,
		})
	}
	got := r.Spans()
	if len(got) != cap {
		t.Fatalf("retained %d spans, want %d", len(got), cap)
	}
	for i, rec := range got {
		want := fmt.Sprintf("occ%d", 10-cap+i)
		if rec.Label != want {
			t.Errorf("slot %d holds %s, want %s (oldest-first order)", i, rec.Label, want)
		}
	}
	sums := r.SpanSummaries()
	if len(sums) != 1 {
		t.Fatalf("summaries %+v", sums)
	}
	if sums[0].Count != 10 {
		t.Errorf("aggregate count %d survived wraparound, want 10", sums[0].Count)
	}
	if sums[0].MaxSeconds != 0.009 {
		t.Errorf("aggregate max %g, want 0.009", sums[0].MaxSeconds)
	}
}

// TestSpanRingPartialFill reads a ring that has not wrapped yet: unused
// slots must not surface as empty records.
func TestSpanRingPartialFill(t *testing.T) {
	r := NewSized(8)
	for i := 0; i < 3; i++ {
		sp := r.StartSpan("s", "")
		sp.End()
	}
	if got := r.Spans(); len(got) != 3 {
		t.Errorf("retained %d spans, want 3", len(got))
	}
}

// TestSpanDisabledRetention keeps aggregates when the ring capacity is 0.
func TestSpanDisabledRetention(t *testing.T) {
	r := NewSized(0)
	sp := r.StartSpan("s", "")
	sp.End()
	if got := r.Spans(); len(got) != 0 {
		t.Errorf("zero-capacity ring retained %d spans", len(got))
	}
	if sums := r.SpanSummaries(); len(sums) != 1 || sums[0].Count != 1 {
		t.Errorf("aggregate lost with zero-capacity ring: %+v", sums)
	}
}

func TestSpanDurations(t *testing.T) {
	r := New()
	sp := r.StartSpan("timed", "")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	sums := r.SpanSummaries()
	if len(sums) != 1 || sums[0].TotalSeconds <= 0 || sums[0].MaxSeconds < sums[0].TotalSeconds {
		t.Errorf("span summary %+v", sums)
	}
	recs := r.Spans()
	if len(recs) != 1 || recs[0].Duration < 2*time.Millisecond {
		t.Errorf("span record %+v", recs)
	}
}
