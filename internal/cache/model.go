package cache

import (
	"errors"
	"fmt"
	"math"

	"tracex/internal/trace"
)

// ErrModelUnsupported reports a (histogram, geometry) combination the
// analytical model cannot serve faithfully — mismatched line sizes,
// prefetcher-enabled targets, shared-hierarchy collection. Callers fall
// back to the exact simulator (errors.Is-matchable).
var ErrModelUnsupported = errors.New("cache: configuration unsupported by the analytical model")

// Model converts one block's reuse-distance histogram plus a cache
// hierarchy (nearest-first) into the block's per-level cumulative hit
// rates, the quantity exact simulation measures via Counters.
// Implementations must be safe for concurrent use.
type Model interface {
	// Name identifies the model ("analytical").
	Name() string
	// Rates returns cumulative hit rates, one per level, in [0,1] and
	// monotone non-decreasing with depth.
	Rates(h *trace.ReuseHistogram, levels []LevelConfig) ([]float64, error)
}

// Analytical derives hit rates from a reuse-distance histogram without
// simulating: a reference with stack distance D hits a fully-associative
// LRU cache of C lines iff D < C (the classic stack-distance CDF), and
// finite associativity is corrected per PPT-Multicore by treating the D
// intervening lines as uniformly distributed over the S sets — the
// reference hits iff fewer than A of them landed in its own set, i.e.
// P(hit | D) = P(X ≤ A−1) with X ~ Binomial(D, 1/S). Cold references
// (never-seen lines) miss every level.
//
// The uniform-placement assumption is the model's known weakness: strided
// patterns whose stride shares a large power-of-two factor with the set
// count concentrate on few sets and hit less than predicted. The exact
// simulator remains available as the fidelity oracle for such streams.
type Analytical struct{}

// Name implements Model.
func (Analytical) Name() string { return "analytical" }

// Rates implements Model. It fails with ErrModelUnsupported when any level's
// line size differs from the histogram's measurement granularity.
func (Analytical) Rates(h *trace.ReuseHistogram, levels []LevelConfig) ([]float64, error) {
	if h == nil {
		return nil, fmt.Errorf("cache: nil reuse histogram")
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one level")
	}
	rates := make([]float64, len(levels))
	for li, lv := range levels {
		if err := lv.Validate(); err != nil {
			return nil, err
		}
		if lv.LineSize != h.LineSize {
			return nil, fmt.Errorf("%w: level %s line size %d but histogram measured %d-byte lines",
				ErrModelUnsupported, lv.Name, lv.LineSize, h.LineSize)
		}
		if h.Refs == 0 {
			continue
		}
		sets := lv.Sets()
		var hits float64
		for b, n := range h.Counts {
			if n == 0 {
				continue
			}
			hits += float64(n) * hitProb(trace.ReuseBucketDistance(b), lv.Assoc, sets)
		}
		rates[li] = hits / float64(h.Refs)
	}
	// Deeper levels are strictly larger (inclusive hierarchy), so exact
	// rates are monotone; clamp out the sub-ulp violations the per-level
	// sums can accumulate, as trace.Validate requires monotonicity.
	for i := range rates {
		if rates[i] < 0 {
			rates[i] = 0
		}
		if rates[i] > 1 {
			rates[i] = 1
		}
		if i > 0 && rates[i] < rates[i-1] {
			rates[i] = rates[i-1]
		}
	}
	return rates, nil
}

// hitProb is P(hit) for one reference with reuse distance d (lines) in a
// cache of the given associativity and set count: P(X ≤ assoc−1) with
// X ~ Binomial(d, 1/sets).
func hitProb(d float64, assoc, sets int) float64 {
	a := float64(assoc)
	if d < a {
		return 1 // fewer intervening lines than ways: LRU cannot have evicted
	}
	if sets <= 1 {
		return 0 // fully associative with d ≥ capacity
	}
	p := 1.0 / float64(sets)
	lam := d * p
	// Far above the mean the CDF is numerically zero (Chernoff bound
	// < 1e-20 at this threshold); skipping the recurrence keeps the
	// per-bucket cost bounded for huge distances.
	if lam >= a+40*math.Sqrt(a)+50 {
		return 0
	}
	if assoc > 256 {
		// Degenerate geometries (hundreds of ways): the recurrence's
		// leading term underflows, so use the normal approximation — at
		// these sizes the CDF is effectively a step function anyway.
		sigma := math.Sqrt(lam * (1 - p))
		if sigma == 0 {
			return 0
		}
		return 0.5 * math.Erfc((lam-(a-0.5))/(sigma*math.Sqrt2))
	}
	// P(X=0) = (1−p)^d, then the stable pmf recurrence
	// P(k) = P(k−1)·(d−k+1)/k·p/(1−p), summed for k < assoc. When the
	// leading term underflows to zero here, λ exceeds the mean by ≥ 10σ
	// and the true CDF is below 1e-20, so the zero result is correct.
	term := math.Exp(d * math.Log1p(-p))
	cdf := term
	ratio := p / (1 - p)
	for k := 1.0; k < a; k++ {
		term *= (d - k + 1) / k * ratio
		cdf += term
	}
	if cdf > 1 {
		cdf = 1
	}
	return cdf
}
