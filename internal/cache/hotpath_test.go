package cache

import (
	"math/rand"
	"testing"
)

// TestAccessSteadyStateAllocationFree guards the hot loop: once a simulator
// is constructed, demand accesses (scalar and batched) must not allocate.
func TestAccessSteadyStateAllocationFree(t *testing.T) {
	sim, err := NewSimulator(threeLevel())
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 1024; i++ {
			sim.Access(uint64(i) * 64)
		}
	}); allocs != 0 {
		t.Errorf("Access allocated %.1f objects per run, want 0", allocs)
	}
	batch := make([]uint64, 4096)
	for i := range batch {
		batch[i] = uint64(i) * 64
	}
	if allocs := testing.AllocsPerRun(20, func() { sim.AccessBatch(batch) }); allocs != 0 {
		t.Errorf("AccessBatch allocated %.1f objects per run, want 0", allocs)
	}
}

// TestHoistedGeometryMatchesConfig checks the constructor-derived fields
// against the per-level config they were hoisted from.
func TestHoistedGeometryMatchesConfig(t *testing.T) {
	cfgs := []LevelConfig{
		{Name: "L1", SizeBytes: 48 << 10, Assoc: 12, LineSize: 64}, // 64 sets (pow2)
		{Name: "L2", SizeBytes: 96 << 10, Assoc: 8, LineSize: 64},  // 192 sets (non-pow2)
	}
	sim, err := NewSimulator(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, lv := range sim.levels {
		if lv.assoc != cfgs[i].Assoc {
			t.Errorf("level %d: hoisted assoc %d, config %d", i, lv.assoc, cfgs[i].Assoc)
		}
		if lv.sets64 != uint64(cfgs[i].Sets()) {
			t.Errorf("level %d: hoisted sets64 %d, config %d", i, lv.sets64, cfgs[i].Sets())
		}
		wantMask := uint64(0)
		if s := cfgs[i].Sets(); s&(s-1) == 0 {
			wantMask = uint64(s - 1)
		}
		if lv.setMask != wantMask {
			t.Errorf("level %d: setMask %#x, want %#x", i, lv.setMask, wantMask)
		}
	}
}

// BenchmarkAccessBatchStride is the regression guard for the batched hot
// loop: per-reference cost of AccessBatch on a streaming pattern.
func BenchmarkAccessBatchStride(b *testing.B) {
	sim, _ := NewSimulator(threeLevel())
	batch := make([]uint64, 4096)
	var next uint64
	b.ReportAllocs()
	b.SetBytes(int64(len(batch) * 8))
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = next
			next += 64
		}
		sim.AccessBatch(batch)
	}
}

// BenchmarkAccessBatchRandom measures the batched hot loop on a random
// stream, including the non-power-of-two set-index path.
func BenchmarkAccessBatchRandom(b *testing.B) {
	levels := []LevelConfig{
		{Name: "L1", SizeBytes: 48 << 10, Assoc: 12, LineSize: 64}, // 64 sets
		{Name: "L2", SizeBytes: 96 << 10, Assoc: 8, LineSize: 64},  // 192 sets (modulo path)
		{Name: "L3", SizeBytes: 2 << 20, Assoc: 16, LineSize: 64},
	}
	sim, _ := NewSimulator(levels)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(16 << 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * 4096) & (1<<16 - 1)
		sim.AccessBatch(addrs[off : off+4096])
	}
}
