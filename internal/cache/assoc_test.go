package cache

import (
	"math/rand"
	"testing"
)

// TestAssociativityResolvesConflicts: a pattern that ping-pongs between
// lines mapping to the same set thrashes a direct-mapped cache but lives
// happily in a 2-way one.
func TestAssociativityResolvesConflicts(t *testing.T) {
	mk := func(assoc int) *Simulator {
		sim, err := NewSimulator([]LevelConfig{{
			Name: "L1", SizeBytes: 4 << 10, Assoc: assoc, LineSize: 64,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	// Two addresses exactly one cache-size apart: same set, different tags.
	a, b := uint64(0), uint64(4<<10)
	direct := mk(1)
	twoWay := mk(2)
	for i := 0; i < 1000; i++ {
		direct.Access(a)
		direct.Access(b)
		twoWay.Access(a)
		twoWay.Access(b)
	}
	dRates := direct.Counters().CumulativeHitRates()
	wRates := twoWay.Counters().CumulativeHitRates()
	if dRates[0] > 0.01 {
		t.Errorf("direct-mapped ping-pong hit rate %.3f, want ≈0", dRates[0])
	}
	if wRates[0] < 0.99 {
		t.Errorf("2-way ping-pong hit rate %.3f, want ≈1", wRates[0])
	}
}

// TestAssociativityMonotoneForRandom: for a random working set around the
// cache size, higher associativity never hurts (fewer conflict misses).
func TestAssociativityMonotoneForRandom(t *testing.T) {
	addrs := make([]uint64, 200_000)
	rng := rand.New(rand.NewSource(9))
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(48<<10)) &^ 7 // 1.5× the cache size
	}
	var prev float64 = -1
	for _, assoc := range []int{1, 2, 4, 8} {
		sim, err := NewSimulator([]LevelConfig{{
			Name: "L1", SizeBytes: 32 << 10, Assoc: assoc, LineSize: 64,
		}})
		if err != nil {
			t.Fatal(err)
		}
		sim.AccessBatch(addrs)
		rate := sim.Counters().CumulativeHitRates()[0]
		// Allow a tiny tolerance: LRU with higher associativity is not
		// strictly better for every stream, but for uniform random it is.
		if rate < prev-0.01 {
			t.Errorf("assoc %d rate %.4f below assoc/2 rate %.4f", assoc, rate, prev)
		}
		prev = rate
	}
}

// TestFullyAssociativeEquivalent: a single-set cache behaves as pure LRU
// over capacity.
func TestFullyAssociativeEquivalent(t *testing.T) {
	const lines = 8
	sim, err := NewSimulator([]LevelConfig{{
		Name: "L1", SizeBytes: lines * 64, Assoc: lines, LineSize: 64,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Touch lines 0..7, then 8 (evicts 0, the LRU), then verify.
	for i := uint64(0); i < lines; i++ {
		sim.Access(i * 64)
	}
	sim.Access(lines * 64)
	// Line 0 was the LRU and must be gone; probing it misses and refills,
	// which in turn evicts line 1 (the new LRU). Line 2 must still be in.
	if lvl := sim.Access(0); lvl != 1 {
		t.Errorf("LRU line survived in fully associative cache (level %d)", lvl)
	}
	if lvl := sim.Access(2 * 64); lvl != 0 {
		t.Errorf("resident line evicted (level %d)", lvl)
	}
}
