package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func l1Only(sizeBytes, assoc, line int) []LevelConfig {
	return []LevelConfig{{Name: "L1", SizeBytes: sizeBytes, Assoc: assoc, LineSize: line}}
}

func threeLevel() []LevelConfig {
	return []LevelConfig{
		{Name: "L1", SizeBytes: 64 << 10, Assoc: 2, LineSize: 64},
		{Name: "L2", SizeBytes: 512 << 10, Assoc: 8, LineSize: 64},
		{Name: "L3", SizeBytes: 2 << 20, Assoc: 16, LineSize: 64},
	}
}

func TestLevelConfigValidate(t *testing.T) {
	good := LevelConfig{Name: "L1", SizeBytes: 32 << 10, Assoc: 4, LineSize: 64}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []LevelConfig{
		{Name: "a", SizeBytes: 0, Assoc: 1, LineSize: 64},
		{Name: "b", SizeBytes: 1024, Assoc: 1, LineSize: 48},   // not power of two
		{Name: "c", SizeBytes: 1024, Assoc: 0, LineSize: 64},   // no ways
		{Name: "d", SizeBytes: 1000, Assoc: 1, LineSize: 64},   // size % line != 0
		{Name: "e", SizeBytes: 64 * 3, Assoc: 2, LineSize: 64}, // lines % assoc != 0
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestNewSimulatorRejectsBadHierarchies(t *testing.T) {
	if _, err := NewSimulator(nil); err == nil {
		t.Error("empty hierarchy accepted")
	}
	// Differing line sizes.
	_, err := NewSimulator([]LevelConfig{
		{Name: "L1", SizeBytes: 32 << 10, Assoc: 4, LineSize: 64},
		{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, LineSize: 128},
	})
	if err == nil {
		t.Error("mismatched line sizes accepted")
	}
	// Shrinking hierarchy.
	_, err = NewSimulator([]LevelConfig{
		{Name: "L1", SizeBytes: 256 << 10, Assoc: 4, LineSize: 64},
		{Name: "L2", SizeBytes: 32 << 10, Assoc: 8, LineSize: 64},
	})
	if err == nil {
		t.Error("non-monotone hierarchy accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	sim, err := NewSimulator(l1Only(1<<10, 2, 64))
	if err != nil {
		t.Fatal(err)
	}
	if lvl := sim.Access(0x1000); lvl != 1 {
		t.Errorf("cold access hit level %d, want memory (1)", lvl)
	}
	if lvl := sim.Access(0x1000); lvl != 0 {
		t.Errorf("warm access hit level %d, want L1 (0)", lvl)
	}
	// Same line, different byte offset: still a hit.
	if lvl := sim.Access(0x1008); lvl != 0 {
		t.Errorf("same-line access hit level %d, want L1 (0)", lvl)
	}
	c := sim.Counters()
	if c.Refs != 3 || c.LevelHits[0] != 2 || c.MemAccesses != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped 2-line cache (2 sets × 1 way, 64 B lines): lines 0 and
	// 2 map to set 0 and evict each other; line 1 maps to set 1.
	sim, err := NewSimulator(l1Only(128, 1, 64))
	if err != nil {
		t.Fatal(err)
	}
	sim.Access(0 * 64) // miss, fill set 0
	sim.Access(1 * 64) // miss, fill set 1
	sim.Access(2 * 64) // miss, evict line 0 from set 0
	if lvl := sim.Access(0 * 64); lvl != 1 {
		t.Errorf("evicted line reported hit at level %d", lvl)
	}
	if lvl := sim.Access(1 * 64); lvl != 0 {
		t.Errorf("resident line missed (level %d)", lvl)
	}
}

func TestLRUWithinSetPrefersOldest(t *testing.T) {
	// One set, 2 ways: touching A,B then C must evict A, keeping B.
	sim, err := NewSimulator(l1Only(128, 2, 64))
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := uint64(0), uint64(64), uint64(128)
	sim.Access(a)
	sim.Access(b)
	sim.Access(c) // evicts a (LRU)
	if lvl := sim.Access(b); lvl != 0 {
		t.Errorf("b evicted but was MRU: level %d", lvl)
	}
	if lvl := sim.Access(a); lvl != 1 {
		t.Errorf("a should have been evicted: level %d", lvl)
	}
}

func TestInclusiveFillOnMiss(t *testing.T) {
	sim, err := NewSimulator(threeLevel())
	if err != nil {
		t.Fatal(err)
	}
	sim.Access(0x4000) // memory; fills all three levels
	c := sim.Counters()
	if c.MemAccesses != 1 {
		t.Fatalf("mem accesses = %d, want 1", c.MemAccesses)
	}
	if lvl := sim.Access(0x4000); lvl != 0 {
		t.Errorf("second access level %d, want 0", lvl)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	// Stream enough distinct lines through a small L1 to evict the first
	// line from L1 but not from the much larger L2.
	levels := []LevelConfig{
		{Name: "L1", SizeBytes: 512, Assoc: 1, LineSize: 64}, // 8 lines
		{Name: "L2", SizeBytes: 64 << 10, Assoc: 8, LineSize: 64},
	}
	sim, err := NewSimulator(levels)
	if err != nil {
		t.Fatal(err)
	}
	first := uint64(0)
	sim.Access(first)
	for i := 1; i <= 8; i++ {
		sim.Access(uint64(i * 512)) // all map to set 0 of L1
	}
	if lvl := sim.Access(first); lvl != 1 {
		t.Errorf("expected L2 hit (1), got level %d", lvl)
	}
}

func TestWorkingSetFitsGivesFullHitRate(t *testing.T) {
	sim, err := NewSimulator(threeLevel())
	if err != nil {
		t.Fatal(err)
	}
	// 32 KiB working set streamed 4 times through a 64 KiB L1.
	const ws = 32 << 10
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < ws; a += 64 {
			sim.Access(a)
		}
	}
	rates := sim.Counters().CumulativeHitRates()
	// 3 of 4 passes hit; first pass is cold misses: 75 % overall.
	if rates[0] < 0.74 || rates[0] > 0.76 {
		t.Errorf("L1 cumulative hit rate = %.3f, want ≈0.75", rates[0])
	}
}

func TestWorkingSetExceedsL1HitsInL2(t *testing.T) {
	sim, err := NewSimulator(threeLevel())
	if err != nil {
		t.Fatal(err)
	}
	// 256 KiB working set: too big for 64 KiB L1, fits 512 KiB L2.
	const ws = 256 << 10
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < ws; a += 64 {
			sim.Access(a)
		}
	}
	rates := sim.Counters().CumulativeHitRates()
	if rates[0] > 0.10 {
		t.Errorf("L1 rate %.3f unexpectedly high for thrashing stream", rates[0])
	}
	if rates[1] < 0.70 {
		t.Errorf("L2 cumulative rate %.3f, want ≥0.70 (working set fits L2)", rates[1])
	}
}

func TestResetCountersKeepsContents(t *testing.T) {
	sim, err := NewSimulator(l1Only(1<<10, 2, 64))
	if err != nil {
		t.Fatal(err)
	}
	sim.Access(0)
	sim.ResetCounters()
	if c := sim.Counters(); c.Refs != 0 || c.MemAccesses != 0 {
		t.Errorf("counters not reset: %+v", c)
	}
	if lvl := sim.Access(0); lvl != 0 {
		t.Errorf("cache contents lost on counter reset: level %d", lvl)
	}
}

func TestFlushClearsContents(t *testing.T) {
	sim, err := NewSimulator(l1Only(1<<10, 2, 64))
	if err != nil {
		t.Fatal(err)
	}
	sim.Access(0)
	sim.Flush()
	if lvl := sim.Access(0); lvl != 1 {
		t.Errorf("flushed cache still hit at level %d", lvl)
	}
}

func TestAccessBatchMatchesSequential(t *testing.T) {
	addrs := make([]uint64, 1000)
	rng := rand.New(rand.NewSource(3))
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 16))
	}
	a, _ := NewSimulator(threeLevel())
	b, _ := NewSimulator(threeLevel())
	a.AccessBatch(addrs)
	for _, x := range addrs {
		b.Access(x)
	}
	ca, cb := a.Counters(), b.Counters()
	if ca.Refs != cb.Refs || ca.MemAccesses != cb.MemAccesses {
		t.Errorf("batch %+v != sequential %+v", ca, cb)
	}
	for i := range ca.LevelHits {
		if ca.LevelHits[i] != cb.LevelHits[i] {
			t.Errorf("level %d hits differ: %d vs %d", i, ca.LevelHits[i], cb.LevelHits[i])
		}
	}
}

func TestCumulativeRatesMonotone(t *testing.T) {
	sim, _ := NewSimulator(threeLevel())
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50000; i++ {
		sim.Access(uint64(rng.Intn(4 << 20)))
	}
	rates := sim.Counters().CumulativeHitRates()
	for i := 1; i < len(rates); i++ {
		if rates[i] < rates[i-1] {
			t.Errorf("cumulative rates not monotone: %v", rates)
		}
	}
	if rates[len(rates)-1] > 1 {
		t.Errorf("cumulative rate exceeds 1: %v", rates)
	}
}

func TestLocalHitRates(t *testing.T) {
	c := Counters{Refs: 100, LevelHits: []uint64{50, 25, 20}, MemAccesses: 5}
	local := c.LocalHitRates()
	want := []float64{0.5, 0.5, 0.8}
	for i := range want {
		if diff := local[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("local[%d] = %g, want %g", i, local[i], want[i])
		}
	}
	empty := Counters{LevelHits: []uint64{0, 0}}
	for _, r := range empty.LocalHitRates() {
		if r != 0 {
			t.Errorf("empty counters produced rate %g", r)
		}
	}
	for _, r := range (Counters{}).CumulativeHitRates() {
		if r != 0 {
			t.Error("zero counters should give zero rates")
		}
	}
}

func TestNonPowerOfTwoSetCount(t *testing.T) {
	// 3 sets × 1 way: exercises the modulo (non-mask) indexing path.
	sim, err := NewSimulator(l1Only(3*64, 1, 64))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		sim.Access(i * 64)
	}
	for i := uint64(0); i < 3; i++ {
		if lvl := sim.Access(i * 64); lvl != 0 {
			t.Errorf("line %d: level %d, want 0", i, lvl)
		}
	}
}

// Property: hit counts never exceed references, and accounting balances:
// refs = Σ level hits + memory accesses.
func TestAccountingBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim, err := NewSimulator(threeLevel())
		if err != nil {
			return false
		}
		n := 100 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			sim.Access(uint64(rng.Intn(8 << 20)))
		}
		c := sim.Counters()
		var sum uint64
		for _, h := range c.LevelHits {
			sum += h
		}
		return c.Refs == uint64(n) && sum+c.MemAccesses == c.Refs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a repeated scan of a working set that fits in a level
// eventually gets a 100 % cumulative hit rate at that level for the last
// pass (steady state).
func TestSteadyStateResidencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim, err := NewSimulator(threeLevel())
		if err != nil {
			return false
		}
		// Working set 1..32 KiB always fits the 64 KiB L1.
		lines := 1 + rng.Intn(512)
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < lines; i++ {
				sim.Access(uint64(i) * 64)
			}
		}
		sim.ResetCounters()
		for i := 0; i < lines; i++ {
			sim.Access(uint64(i) * 64)
		}
		rates := sim.Counters().CumulativeHitRates()
		return rates[0] == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccessStride(b *testing.B) {
	sim, _ := NewSimulator(threeLevel())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Access(uint64(i) * 64)
	}
}

func BenchmarkAccessRandom(b *testing.B) {
	sim, _ := NewSimulator(threeLevel())
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(16 << 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Access(addrs[i&(1<<16-1)])
	}
}
