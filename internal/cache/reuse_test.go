package cache

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tracex/internal/trace"
)

// naiveStackDistance is the O(n²) reference implementation: the reuse
// distance of a reference is the number of distinct other lines touched
// since the line's previous access.
type naiveStackDistance struct {
	shift uint
	hist  []uint64 // access order, most recent last
}

func (n *naiveStackDistance) access(addr uint64) (dist uint64, cold bool) {
	blk := addr >> n.shift
	pos := -1
	for i := len(n.hist) - 1; i >= 0; i-- {
		if n.hist[i] == blk {
			pos = i
			break
		}
	}
	if pos < 0 {
		n.hist = append(n.hist, blk)
		return 0, true
	}
	distinct := map[uint64]bool{}
	for _, b := range n.hist[pos+1:] {
		distinct[b] = true
	}
	n.hist = append(n.hist[:pos], n.hist[pos+1:]...)
	n.hist = append(n.hist, blk)
	return uint64(len(distinct)), false
}

func TestReuseRecorderMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rec, err := NewReuseRecorder(64, 8) // tiny capacity: exercises compaction
	if err != nil {
		t.Fatal(err)
	}
	naive := &naiveStackDistance{shift: 6}
	for i := 0; i < 5000; i++ {
		// Mixture of hot lines, a strided scan and random far lines.
		var addr uint64
		switch rng.Intn(3) {
		case 0:
			addr = uint64(rng.Intn(16)) * 64
		case 1:
			addr = uint64(i%700) * 64
		default:
			addr = uint64(rng.Intn(1 << 20))
		}
		gd, gc := rec.access(addr)
		wd, wc := naive.access(addr)
		if gd != wd || gc != wc {
			t.Fatalf("ref %d addr %#x: got (%d,%v), want (%d,%v)", i, addr, gd, gc, wd, wc)
		}
	}
}

func TestReuseRecorderResetReuses(t *testing.T) {
	rec, err := NewReuseRecorder(64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	h1 := trace.ReuseHistogram{LineSize: 64}
	addrs := make([]uint64, 512)
	for i := range addrs {
		addrs[i] = uint64(i%37) * 64
	}
	rec.Record(addrs, &h1)
	rec.Reset(1024)
	h2 := trace.ReuseHistogram{LineSize: 64}
	rec.Record(addrs, &h2)
	if h1.Cold != h2.Cold || h1.Refs != h2.Refs {
		t.Fatalf("reset recorder drifted: %+v vs %+v", h1, h2)
	}
	for b := range h1.Counts {
		if b < len(h2.Counts) && h1.Counts[b] != h2.Counts[b] {
			t.Fatalf("bucket %d: %d vs %d after Reset", b, h1.Counts[b], h2.Counts[b])
		}
	}
}

func TestNewReuseRecorderRejectsBadLineSize(t *testing.T) {
	for _, ls := range []int{0, -64, 48, 65} {
		if _, err := NewReuseRecorder(ls, 16); err == nil {
			t.Errorf("line size %d accepted", ls)
		}
	}
}

// TestAnalyticalMatchesFullyAssociativeLRU pins the model's exact regime: on
// a fully-associative LRU cache a reference hits iff its stack distance is
// below the capacity in lines, so the analytical rates must match the
// simulator almost exactly (the only slack is histogram bucketing).
func TestAnalyticalMatchesFullyAssociativeLRU(t *testing.T) {
	levels := []LevelConfig{
		{Name: "L1", SizeBytes: 16 << 10, Assoc: 256, LineSize: 64},   // 256 lines, 1 set
		{Name: "L2", SizeBytes: 256 << 10, Assoc: 4096, LineSize: 64}, // 4096 lines, 1 set
	}
	sim, err := NewSimulator(levels)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewReuseRecorder(64, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	h := trace.ReuseHistogram{LineSize: 64}
	rng := rand.New(rand.NewSource(42))
	buf := make([]uint64, 1)
	for i := 0; i < 60_000; i++ {
		// Working set ~24k lines: spans both capacities.
		addr := uint64(rng.Intn(24_000)) * 64
		sim.Access(addr)
		buf[0] = addr
		rec.Record(buf, &h)
	}
	want := sim.Counters().CumulativeHitRates()
	got, err := Analytical{}.Rates(&h, levels)
	if err != nil {
		t.Fatal(err)
	}
	for l := range want {
		if diff := math.Abs(got[l] - want[l]); diff > 0.01 {
			t.Errorf("level %d: analytical %.4f vs exact %.4f (|Δ|=%.4f)", l, got[l], want[l], diff)
		}
	}
}

func TestAnalyticalRatesValidation(t *testing.T) {
	h := trace.ReuseHistogram{LineSize: 64}
	h.Add(1)
	h.AddCold()
	levels := []LevelConfig{{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, LineSize: 64}}
	if _, err := (Analytical{}).Rates(&h, levels); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if _, err := (Analytical{}).Rates(nil, levels); err == nil {
		t.Error("nil histogram accepted")
	}
	if _, err := (Analytical{}).Rates(&h, nil); err == nil {
		t.Error("empty hierarchy accepted")
	}
	mismatch := []LevelConfig{{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, LineSize: 128}}
	if _, err := (Analytical{}).Rates(&h, mismatch); !errors.Is(err, ErrModelUnsupported) {
		t.Errorf("line-size mismatch: %v, want ErrModelUnsupported", err)
	}
}

func TestAnalyticalRatesMonotoneAndBounded(t *testing.T) {
	h := trace.ReuseHistogram{LineSize: 64}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50_000; i++ {
		h.Add(uint64(rng.Intn(1 << 18)))
	}
	for i := 0; i < 1000; i++ {
		h.AddCold()
	}
	levels := []LevelConfig{
		{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, LineSize: 64},
		{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, LineSize: 64},
		{Name: "L3", SizeBytes: 4 << 20, Assoc: 16, LineSize: 64},
	}
	rates, err := Analytical{}.Rates(&h, levels)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for l, r := range rates {
		if r < prev || r > 1 {
			t.Fatalf("rates not monotone in [0,1]: %v (level %d)", rates, l)
		}
		prev = r
	}
}

// TestHitProbBinomialRegimes spot-checks the associativity correction
// against directly evaluated binomial CDFs and its asymptotic regimes.
func TestHitProbBinomialRegimes(t *testing.T) {
	// d < assoc always hits.
	if p := hitProb(3, 8, 64); p != 1 {
		t.Errorf("hitProb(3,8,64) = %g, want 1", p)
	}
	// Fully-associative: hard cutoff at assoc lines.
	if p := hitProb(500, 512, 1); p != 1 {
		t.Errorf("fully-assoc below capacity: %g, want 1", p)
	}
	if p := hitProb(513, 512, 1); p != 0 {
		t.Errorf("fully-assoc above capacity: %g, want 0", p)
	}
	// Direct-mapped with S sets: P(hit) = (1-1/S)^d.
	for _, d := range []float64{1, 10, 100} {
		want := math.Pow(1-1.0/64, d)
		if p := hitProb(d, 1, 64); math.Abs(p-want) > 1e-12 {
			t.Errorf("hitProb(%g,1,64) = %g, want %g", d, p, want)
		}
	}
	// Deep-distance early-out: probability indistinguishable from zero.
	if p := hitProb(1e9, 8, 64); p != 0 {
		t.Errorf("deep distance: %g, want 0", p)
	}
	// Monotone decreasing in distance.
	prev := 1.0
	for d := 1.0; d < 4000; d *= 1.4 {
		p := hitProb(d, 8, 64)
		if p > prev+1e-12 {
			t.Fatalf("hitProb not monotone at d=%g: %g > %g", d, p, prev)
		}
		prev = p
	}
	// Large-associativity normal branch stays in [0,1] and near the hard
	// cutoff semantics.
	if p := hitProb(100, 512, 4); p < 0.999 {
		t.Errorf("hitProb(100,512,4) = %g, want ≈1", p)
	}
	if p := hitProb(1e6, 512, 4); p != 0 {
		t.Errorf("hitProb(1e6,512,4) = %g, want 0", p)
	}
}
