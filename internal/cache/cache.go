// Package cache implements the multi-level set-associative cache simulator
// at the heart of the PMaC-style signature collection pipeline. Memory
// address streams are processed on the fly (Figure 2 of the paper) and the
// simulator accumulates per-level hit counters from which the per-basic-block
// cache hit rates in the application signature are derived.
//
// The hierarchy is modeled as inclusive with LRU replacement within each
// set, which is the structure the paper's cache simulator mimics for the
// Cray XT5 / Opteron targets.
package cache

import (
	"fmt"
	"math/bits"
)

// LevelConfig describes the geometry of one cache level.
type LevelConfig struct {
	// Name labels the level ("L1", "L2", ...), used in reports.
	Name string
	// SizeBytes is the total capacity of the level in bytes.
	SizeBytes int
	// Assoc is the set associativity (number of ways). It must divide
	// SizeBytes/LineSize.
	Assoc int
	// LineSize is the cache line size in bytes and must be a power of two.
	// All levels in a hierarchy must share the same line size.
	LineSize int
}

// Validate checks the level geometry for internal consistency.
func (c LevelConfig) Validate() error {
	if c.SizeBytes <= 0 {
		return fmt.Errorf("cache: level %s: non-positive size %d", c.Name, c.SizeBytes)
	}
	if c.LineSize <= 0 || bits.OnesCount(uint(c.LineSize)) != 1 {
		return fmt.Errorf("cache: level %s: line size %d must be a positive power of two", c.Name, c.LineSize)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: level %s: non-positive associativity %d", c.Name, c.Assoc)
	}
	lines := c.SizeBytes / c.LineSize
	if lines*c.LineSize != c.SizeBytes {
		return fmt.Errorf("cache: level %s: size %d not a multiple of line size %d", c.Name, c.SizeBytes, c.LineSize)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache: level %s: %d lines not divisible by associativity %d", c.Name, lines, c.Assoc)
	}
	return nil
}

// Sets returns the number of sets in the level.
func (c LevelConfig) Sets() int { return c.SizeBytes / c.LineSize / c.Assoc }

// level is the runtime state of one cache level. The geometry derived from
// cfg (set count, mask, associativity) is hoisted into flat fields at
// construction so the per-access probe never re-derives it from the config
// struct.
type level struct {
	cfg      LevelConfig
	sets     int
	sets64   uint64 // uint64(sets), hoisted for the non-power-of-two modulo
	setMask  uint64 // sets-1 when sets is a power of two, else 0
	assoc    int    // cfg.Assoc, hoisted out of the probe loop
	shift    uint   // log2(line size)
	tags     []uint64
	ages     []uint64
	valid    []bool
	hits     uint64
	accesses uint64
}

// Options tunes optional simulator hardware features.
type Options struct {
	// NextLinePrefetch enables a stream-following hardware prefetcher:
	// two consecutive demand misses to adjacent lines arm a stream, which
	// then stays ahead of the access pattern — each demand hit on a
	// prefetched line pulls in the next one. Random access patterns never
	// arm a stream, so they pay no prefetch traffic. Prefetch fills are
	// counted separately and never as hits or demand accesses.
	NextLinePrefetch bool
}

// Simulator is a multi-level inclusive cache simulator. It is not safe for
// concurrent use; create one Simulator per worker goroutine.
type Simulator struct {
	levels []*level
	tick   uint64
	opts   Options
	// memAccesses counts references that missed every level.
	memAccesses uint64
	// totalRefs counts all references issued to the hierarchy.
	totalRefs uint64
	// prefetchFills counts lines installed by the prefetcher.
	prefetchFills uint64
	// lastMissBlk detects back-to-back misses on adjacent lines (stream
	// detection); ^0 when no previous miss.
	lastMissBlk uint64
	// pfLines marks line addresses installed by the prefetcher but not yet
	// demanded; a demand hit on such a line keeps the stream running.
	pfLines map[uint64]bool
}

// NewSimulator builds a Simulator for the given hierarchy with default
// options (no prefetcher).
func NewSimulator(levels []LevelConfig) (*Simulator, error) {
	return NewSimulatorOpts(levels, Options{})
}

// NewSimulatorOpts builds a Simulator for the given hierarchy, ordered
// nearest (L1) first, with the given options. All levels must share the
// same line size and each level must be at least as large as the previous
// one (inclusive hierarchy).
func NewSimulatorOpts(levels []LevelConfig, opts Options) (*Simulator, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one level")
	}
	sim := &Simulator{levels: make([]*level, len(levels)), opts: opts, lastMissBlk: ^uint64(0)}
	if opts.NextLinePrefetch {
		sim.pfLines = make(map[uint64]bool)
	}
	for i, cfg := range levels {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if cfg.LineSize != levels[0].LineSize {
			return nil, fmt.Errorf("cache: level %s line size %d differs from L1's %d",
				cfg.Name, cfg.LineSize, levels[0].LineSize)
		}
		if i > 0 && cfg.SizeBytes < levels[i-1].SizeBytes {
			return nil, fmt.Errorf("cache: level %s (%d B) smaller than previous level (%d B); inclusive hierarchy requires monotone sizes",
				cfg.Name, cfg.SizeBytes, levels[i-1].SizeBytes)
		}
		lv := &level{
			cfg:   cfg,
			sets:  cfg.Sets(),
			assoc: cfg.Assoc,
			shift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		}
		lv.sets64 = uint64(lv.sets)
		if bits.OnesCount(uint(lv.sets)) == 1 {
			lv.setMask = uint64(lv.sets - 1)
		}
		n := lv.sets * cfg.Assoc
		lv.tags = make([]uint64, n)
		lv.ages = make([]uint64, n)
		lv.valid = make([]bool, n)
		sim.levels[i] = lv
	}
	return sim, nil
}

// Levels returns the configured level geometries nearest-first.
func (s *Simulator) Levels() []LevelConfig {
	out := make([]LevelConfig, len(s.levels))
	for i, lv := range s.levels {
		out[i] = lv.cfg
	}
	return out
}

// lookupFill probes one level for the line containing addr, fills it on a
// miss, and reports whether it hit. When countHit is false the probe is a
// prefetch install: it refreshes recency and fills but never counts.
func (s *Simulator) lookupFill(lv *level, addr uint64, countHit bool) bool {
	blk := addr >> lv.shift
	var set uint64
	if lv.setMask != 0 {
		set = blk & lv.setMask
	} else {
		set = blk % lv.sets64
	}
	base := int(set) * lv.assoc
	victim := base
	var victimAge uint64 = ^uint64(0)
	for w := base; w < base+lv.assoc; w++ {
		if lv.valid[w] && lv.tags[w] == blk {
			lv.ages[w] = s.tick
			if countHit {
				lv.hits++
			}
			return true
		}
		// Track LRU victim: invalid ways win immediately.
		if !lv.valid[w] {
			if victimAge != 0 {
				victim, victimAge = w, 0
			}
		} else if lv.ages[w] < victimAge {
			victim, victimAge = w, lv.ages[w]
		}
	}
	// Fill on miss.
	lv.tags[victim] = blk
	lv.ages[victim] = s.tick
	lv.valid[victim] = true
	return false
}

// Access simulates one memory reference to addr. It returns the zero-based
// index of the level that hit, or len(levels) if the reference went to main
// memory. Missing levels are filled (inclusive hierarchy), evicting the LRU
// way in each set.
func (s *Simulator) Access(addr uint64) int {
	s.tick++
	s.totalRefs++
	hitLevel := len(s.levels)
	for i, lv := range s.levels {
		lv.accesses++
		if s.lookupFill(lv, addr, true) {
			hitLevel = i
			break
		}
	}
	if !s.opts.NextLinePrefetch {
		if hitLevel == len(s.levels) {
			s.memAccesses++
		}
		return hitLevel
	}
	blk := addr >> s.levels[0].shift
	if hitLevel == len(s.levels) {
		s.memAccesses++
		// Stream detection: a second miss on the adjacent line arms the
		// stream and prefetches the line after it.
		if blk == s.lastMissBlk+1 {
			s.prefetchLine(blk + 1)
		}
		s.lastMissBlk = blk
	} else if s.pfLines[blk] {
		// Demand hit on a prefetched line: keep the stream ahead.
		delete(s.pfLines, blk)
		s.prefetchLine(blk + 1)
	}
	return hitLevel
}

// prefetchLine installs one line hierarchy-wide on behalf of the stream
// prefetcher, without touching demand accounting.
func (s *Simulator) prefetchLine(blk uint64) {
	addr := blk << s.levels[0].shift
	already := true
	for _, lv := range s.levels {
		if !s.lookupFill(lv, addr, false) {
			already = false
		}
	}
	if !already {
		s.prefetchFills++
		s.pfLines[blk] = true
	}
}

// AccessBatch simulates every address in addrs in order.
func (s *Simulator) AccessBatch(addrs []uint64) {
	for _, a := range addrs {
		s.Access(a)
	}
}

// PrefetchFillCount returns the number of prefetch fills since the last
// counter reset without allocating a full Counters snapshot.
func (s *Simulator) PrefetchFillCount() uint64 { return s.prefetchFills }

// Counters is a snapshot of the simulator's hit/miss accounting.
type Counters struct {
	// Refs is the total number of references issued.
	Refs uint64
	// LevelHits[i] is the number of references that hit at level i
	// (local, not cumulative).
	LevelHits []uint64
	// MemAccesses is the number of references that missed every level.
	MemAccesses uint64
	// PrefetchFills is the number of lines installed by the hardware
	// prefetcher (zero when disabled).
	PrefetchFills uint64
}

// Counters returns a snapshot of the accounting since the last reset.
func (s *Simulator) Counters() Counters {
	c := Counters{
		Refs:          s.totalRefs,
		LevelHits:     make([]uint64, len(s.levels)),
		MemAccesses:   s.memAccesses,
		PrefetchFills: s.prefetchFills,
	}
	for i, lv := range s.levels {
		c.LevelHits[i] = lv.hits
	}
	return c
}

// ResetCounters zeroes the hit/miss accounting without disturbing cache
// contents. Signature collection resets counters at basic-block boundaries
// while keeping the warmed hierarchy, matching on-the-fly processing.
func (s *Simulator) ResetCounters() {
	s.totalRefs = 0
	s.memAccesses = 0
	s.prefetchFills = 0
	for _, lv := range s.levels {
		lv.hits = 0
		lv.accesses = 0
	}
}

// Flush invalidates all cache contents and zeroes the counters.
func (s *Simulator) Flush() {
	s.ResetCounters()
	for _, lv := range s.levels {
		for i := range lv.valid {
			lv.valid[i] = false
			lv.tags[i] = 0
			lv.ages[i] = 0
		}
	}
	s.tick = 0
	s.lastMissBlk = ^uint64(0)
	if s.pfLines != nil {
		s.pfLines = make(map[uint64]bool)
	}
}

// CumulativeHitRates returns, for each level i, the fraction of all
// references that were resolved at level i or nearer (this is the "hit rate
// in all levels of the target system" convention used by the paper's Table
// II, where deeper levels always show rates at least as high as nearer
// ones). It returns zeros when no references were issued.
func (c Counters) CumulativeHitRates() []float64 {
	rates := make([]float64, len(c.LevelHits))
	if c.Refs == 0 {
		return rates
	}
	var cum uint64
	for i, h := range c.LevelHits {
		cum += h
		rates[i] = float64(cum) / float64(c.Refs)
	}
	return rates
}

// LocalHitRates returns, for each level, hits divided by the references
// that reached that level. A level that was never reached reports 0.
func (c Counters) LocalHitRates() []float64 {
	rates := make([]float64, len(c.LevelHits))
	remaining := c.Refs
	for i, h := range c.LevelHits {
		if remaining > 0 {
			rates[i] = float64(h) / float64(remaining)
		}
		remaining -= h
	}
	return rates
}
