package cache

import (
	"fmt"
	"math/bits"
	"sort"

	"tracex/internal/trace"
)

// ReuseRecorder measures LRU stack distances of an address stream at cache-
// line granularity using the Bennett–Kruskal algorithm: a hash map from line
// to its last access time plus a Fenwick tree of "most recent access" markers
// over time slots. Each reference costs O(log n) in the number of time slots.
//
// The recorder is the collection-side half of the analytical cache model: it
// replaces the per-geometry cache simulation with a single geometry-free
// measurement, from which Analytical derives hit rates for any hierarchy.
// Like Simulator, a ReuseRecorder is not safe for concurrent use; create one
// per worker goroutine (pebil's arena keeps one per scratch).
type ReuseRecorder struct {
	shift    uint
	lineSize int
	last     map[uint64]int32
	// tree is a 1-based Fenwick tree over time slots 1..size; slot t holds
	// a marker iff t is the most recent access time of some tracked line.
	tree []int32
	size int
	now  int32
}

// NewReuseRecorder builds a recorder for the given line size with initial
// capacity for the given number of references before a (rare) renumbering
// pass. Callers that know their stream length up front should pass it so
// the steady state allocates nothing.
func NewReuseRecorder(lineSize, capacity int) (*ReuseRecorder, error) {
	if lineSize <= 0 || bits.OnesCount(uint(lineSize)) != 1 {
		return nil, fmt.Errorf("cache: reuse recorder line size %d must be a positive power of two", lineSize)
	}
	if capacity < 1 {
		capacity = 1
	}
	r := &ReuseRecorder{
		shift:    uint(bits.TrailingZeros(uint(lineSize))),
		lineSize: lineSize,
		last:     make(map[uint64]int32),
		tree:     make([]int32, capacity+1),
		size:     capacity,
	}
	return r, nil
}

// LineSize returns the recorder's line granularity in bytes.
func (r *ReuseRecorder) LineSize() int { return r.lineSize }

// Reset clears all tracked state and ensures capacity for the given number
// of references, reusing the existing allocation when it suffices.
func (r *ReuseRecorder) Reset(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	if capacity > r.size {
		r.tree = make([]int32, capacity+1)
		r.size = capacity
	} else {
		for i := range r.tree {
			r.tree[i] = 0
		}
	}
	clear(r.last)
	r.now = 0
}

// add applies a delta at time slot t.
func (r *ReuseRecorder) add(t int32, delta int32) {
	for i := int(t); i <= r.size; i += i & -i {
		r.tree[i] += delta
	}
}

// sum returns the number of markers in slots [1, t].
func (r *ReuseRecorder) sum(t int32) int32 {
	var s int32
	for i := int(t); i > 0; i -= i & -i {
		s += r.tree[i]
	}
	return s
}

// compact renumbers the live markers to the lowest time slots, reclaiming
// the slots freed by marker moves. It grows the tree when the live set
// itself fills most of the index (a stream of mostly-distinct lines).
func (r *ReuseRecorder) compact() {
	lines := make([]uint64, 0, len(r.last))
	for blk := range r.last {
		lines = append(lines, blk)
	}
	sort.Slice(lines, func(i, j int) bool { return r.last[lines[i]] < r.last[lines[j]] })
	need := 2 * (len(lines) + 1)
	if need > r.size {
		r.tree = make([]int32, 2*need+1)
		r.size = 2 * need
	} else {
		for i := range r.tree {
			r.tree[i] = 0
		}
	}
	for i, blk := range lines {
		t := int32(i + 1)
		r.last[blk] = t
		r.add(t, 1)
	}
	r.now = int32(len(lines))
}

// access advances time by one reference to addr and returns the reference's
// reuse distance in lines, or cold=true for a line never seen before.
func (r *ReuseRecorder) access(addr uint64) (dist uint64, cold bool) {
	if int(r.now) >= r.size {
		r.compact()
	}
	blk := addr >> r.shift
	prev, seen := r.last[blk]
	if seen {
		// Markers strictly after prev are the distinct other lines
		// touched since blk's previous access (blk's own marker sits at
		// prev and is excluded).
		dist = uint64(r.sum(r.now) - r.sum(prev))
		r.add(prev, -1)
	} else {
		cold = true
	}
	r.now++
	r.add(r.now, 1)
	r.last[blk] = r.now
	return dist, cold
}

// Warm streams addrs through the recorder without recording distances,
// mirroring the cache-warming phase of exact collection: the tracked-line
// state reaches steady state before sampling begins.
func (r *ReuseRecorder) Warm(addrs []uint64) {
	for _, a := range addrs {
		r.access(a)
	}
}

// Record streams addrs through the recorder, accumulating each reference's
// reuse distance (or coldness) into h.
func (r *ReuseRecorder) Record(addrs []uint64, h *trace.ReuseHistogram) {
	for _, a := range addrs {
		d, cold := r.access(a)
		if cold {
			h.AddCold()
		} else {
			h.Add(d)
		}
	}
}
