package cache

import (
	"math/rand"
	"testing"
)

func prefetchSim(t *testing.T) *Simulator {
	t.Helper()
	sim, err := NewSimulatorOpts(threeLevel(), Options{NextLinePrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestStreamPrefetchHidesSequentialMisses(t *testing.T) {
	// Line-stride walk far beyond the LLC: without prefetch every access
	// misses to memory; the stream prefetcher arms after the second miss
	// and then stays ahead, so demand misses collapse to a handful.
	const ws = 16 << 20
	base, _ := NewSimulator(threeLevel())
	pf := prefetchSim(t)
	for a := uint64(0); a < ws; a += 64 {
		base.Access(a)
		pf.Access(a)
	}
	cb, cp := base.Counters(), pf.Counters()
	if cb.MemAccesses != cb.Refs {
		t.Fatalf("baseline expected all misses, got %d/%d", cb.MemAccesses, cb.Refs)
	}
	if cp.MemAccesses > 4 {
		t.Errorf("stream prefetcher left %d demand misses on a pure stream", cp.MemAccesses)
	}
	// Total memory traffic (demand + prefetch) matches the baseline's:
	// every line is still fetched exactly once (the stream may run one
	// line past the end of the walk).
	if got, want := cp.MemAccesses+cp.PrefetchFills, cb.MemAccesses; got < want || got > want+1 {
		t.Errorf("traffic %d, want %d (±1)", got, want)
	}
	// The prefetched lines count as L1 hits for demand accesses.
	if rates := cp.CumulativeHitRates(); rates[0] < 0.99 {
		t.Errorf("stream L1 rate %.4f with prefetcher, want ≈1", rates[0])
	}
}

func TestStreamPrefetchUselessForRandom(t *testing.T) {
	// Random access over a large region: adjacent-line miss pairs are
	// rare, so streams almost never arm and prefetch traffic stays
	// negligible — the defining advantage over a naive next-line scheme.
	rng := rand.New(rand.NewSource(5))
	base, _ := NewSimulator(threeLevel())
	pf := prefetchSim(t)
	const n = 200_000
	for i := 0; i < n; i++ {
		a := uint64(rng.Intn(64<<20)) &^ 7
		base.Access(a)
		pf.Access(a)
	}
	cp := pf.Counters()
	if frac := float64(cp.PrefetchFills) / float64(n); frac > 0.01 {
		t.Errorf("random stream issued %.2f%% prefetch traffic", 100*frac)
	}
	rb := base.Counters().CumulativeHitRates()
	rp := cp.CumulativeHitRates()
	if diff := rp[2] - rb[2]; diff < -0.02 || diff > 0.02 {
		t.Errorf("random-access L3 rate shifted by %.3f under prefetch", diff)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	sim, _ := NewSimulator(threeLevel())
	for a := uint64(0); a < 1<<20; a += 64 {
		sim.Access(a)
	}
	if c := sim.Counters(); c.PrefetchFills != 0 {
		t.Errorf("default simulator prefetched %d lines", c.PrefetchFills)
	}
}

func TestPrefetchResetCountersKeepsStreams(t *testing.T) {
	pf := prefetchSim(t)
	for a := uint64(0); a < 1<<20; a += 64 {
		pf.Access(a)
	}
	pf.ResetCounters()
	if c := pf.Counters(); c.PrefetchFills != 0 || c.Refs != 0 {
		t.Errorf("counters not reset: %+v", c)
	}
	// The armed stream keeps running across the counter reset: the next
	// sequential accesses still enjoy prefetched hits.
	pf.Access(1 << 20)
	if c := pf.Counters(); c.Refs != 1 {
		t.Errorf("post-reset accounting wrong: %+v", c)
	}
}

func TestPrefetchFlushDisarmsStreams(t *testing.T) {
	pf := prefetchSim(t)
	for a := uint64(0); a < 1<<20; a += 64 {
		pf.Access(a)
	}
	pf.Flush()
	// After a flush the first two accesses of a resumed stream must be
	// cold demand misses again (stream state cleared).
	pf.Access(1 << 20)
	pf.Access(1<<20 + 64)
	if c := pf.Counters(); c.MemAccesses != 2 {
		t.Errorf("flushed stream kept state: %+v", c)
	}
}

func TestPrefetchDoesNotEvictResidentSet(t *testing.T) {
	// A resident working set with prefetch enabled: demand hits on
	// non-prefetched lines never trigger traffic, so the set is stable.
	pf := prefetchSim(t)
	const lines = 256 // 16 KiB in a 64 KiB L1
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			pf.Access(uint64(i) * 64)
		}
	}
	pf.ResetCounters()
	for i := 0; i < lines; i++ {
		pf.Access(uint64(i) * 64)
	}
	if rates := pf.Counters().CumulativeHitRates(); rates[0] != 1.0 {
		t.Errorf("resident set disturbed: L1 rate %.3f", rates[0])
	}
}

func TestUnitStridePrefetchLiftsL1(t *testing.T) {
	// 8-byte-stride streaming (the MultiMAPS unit-stride probe): without
	// prefetch L1 sits at 87.5 % (spatial locality only); the stream
	// prefetcher lifts it to ≈100 %.
	base, _ := NewSimulator(threeLevel())
	pf := prefetchSim(t)
	const ws = 32 << 20
	for a := uint64(0); a < ws; a += 8 {
		base.Access(a)
		pf.Access(a)
	}
	rb := base.Counters().CumulativeHitRates()
	rp := pf.Counters().CumulativeHitRates()
	if rb[0] < 0.87 || rb[0] > 0.88 {
		t.Fatalf("baseline unit-stride L1 %.4f, want ≈0.875", rb[0])
	}
	if rp[0] < 0.99 {
		t.Errorf("prefetched unit-stride L1 %.4f, want ≈1", rp[0])
	}
}
