// Package cluster implements the paper's Future Work (§VI) extension: using
// a clustering algorithm to group MPI tasks with similar properties, so that
// per-cluster "centroid" trace files can serve as extrapolation bases
// instead of only the single slowest task. It provides a deterministic
// k-means (k-means++ seeding, Lloyd iterations) over per-rank feature
// vectors, plus helpers for clustering the traces of an application
// signature.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"tracex/internal/trace"
)

// Result describes a k-means clustering.
type Result struct {
	// Assignments[i] is the cluster index of point i.
	Assignments []int
	// Centroids are the final cluster centers.
	Centroids [][]float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans clusters points into k groups using k-means++ seeding and Lloyd
// iterations, deterministically for a given seed. It requires 1 ≤ k ≤
// len(points) and equal point dimensions.
func KMeans(points [][]float64, k int, maxIter int, seed int64) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: k=%d outside [1,%d]", k, n)
	}
	if maxIter < 1 {
		return nil, fmt.Errorf("cluster: maxIter %d < 1", maxIter)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
		for j, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("cluster: point %d coordinate %d non-finite", i, j)
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var idx int
		if total == 0 {
			idx = rng.Intn(n) // all points identical to chosen centers
		} else {
			target := rng.Float64() * total
			var cum float64
			for i, d := range d2 {
				cum += d
				if cum >= target {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}

	assign := make([]int, n)
	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids; empty clusters keep their previous center.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centroids[assign[i]])
	}
	res.Assignments = assign
	res.Centroids = centroids
	res.Inertia = inertia
	return res, nil
}

// RankClusters is the result of clustering an application signature's MPI
// tasks by their feature vectors.
type RankClusters struct {
	// Clusters maps cluster index to the ranks it contains.
	Clusters [][]int
	// Representative[c] is the rank closest to cluster c's centroid — the
	// "centroid file" the paper proposes as a per-cluster extrapolation
	// base.
	Representative []int
	// KMeans is the underlying clustering.
	KMeans *Result
}

// rankFeatures flattens a trace's per-block feature vectors into one point,
// normalizing each element across ranks to equalize scales.
func rankFeatures(sig *trace.Signature) ([][]float64, error) {
	points := make([][]float64, len(sig.Traces))
	for i := range sig.Traces {
		tr := &sig.Traces[i]
		var point []float64
		for j := range tr.Blocks {
			vals, err := tr.Blocks[j].FV.Values(tr.Levels)
			if err != nil {
				return nil, err
			}
			point = append(point, vals...)
		}
		points[i] = point
		if len(point) != len(points[0]) {
			return nil, fmt.Errorf("cluster: rank %d has %d features, rank %d has %d: traces must share a block set",
				tr.Rank, len(point), sig.Traces[0].Rank, len(points[0]))
		}
	}
	// Normalize each dimension by its max magnitude.
	if len(points) > 0 {
		dim := len(points[0])
		for j := 0; j < dim; j++ {
			var max float64
			for i := range points {
				if a := math.Abs(points[i][j]); a > max {
					max = a
				}
			}
			if max == 0 {
				continue
			}
			for i := range points {
				points[i][j] /= max
			}
		}
	}
	return points, nil
}

// ClusterRanks groups the signature's traces into k clusters of similar
// tasks and selects a representative rank for each.
func ClusterRanks(sig *trace.Signature, k int, seed int64) (*RankClusters, error) {
	if err := sig.Validate(); err != nil {
		return nil, err
	}
	points, err := rankFeatures(sig)
	if err != nil {
		return nil, err
	}
	km, err := KMeans(points, k, 100, seed)
	if err != nil {
		return nil, err
	}
	rc := &RankClusters{
		Clusters:       make([][]int, k),
		Representative: make([]int, k),
		KMeans:         km,
	}
	bestD := make([]float64, k)
	for c := range bestD {
		bestD[c] = math.Inf(1)
		rc.Representative[c] = -1
	}
	for i, c := range km.Assignments {
		rank := sig.Traces[i].Rank
		rc.Clusters[c] = append(rc.Clusters[c], rank)
		if d := sqDist(points[i], km.Centroids[c]); d < bestD[c] {
			bestD[c] = d
			rc.Representative[c] = rank
		}
	}
	return rc, nil
}
