package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs generates n points around three well-separated centers.
func threeBlobs(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	points := make([][]float64, n)
	truth := make([]int, n)
	for i := range points {
		c := i % 3
		truth[i] = c
		points[i] = []float64{
			centers[c][0] + rng.NormFloat64()*0.5,
			centers[c][1] + rng.NormFloat64()*0.5,
		}
	}
	return points, truth
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	points, truth := threeBlobs(90, 1)
	res, err := KMeans(points, 3, 100, 42)
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	// Every pair in the same true blob must share a cluster, and pairs in
	// different blobs must not.
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			same := res.Assignments[i] == res.Assignments[j]
			if (truth[i] == truth[j]) != same {
				t.Fatalf("points %d,%d: truth %d,%d but clusters %d,%d",
					i, j, truth[i], truth[j], res.Assignments[i], res.Assignments[j])
			}
		}
	}
	if res.Inertia > 90*2*1.0 {
		t.Errorf("inertia %g implausibly high for tight blobs", res.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	points, _ := threeBlobs(60, 2)
	a, err := KMeans(points, 3, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 3, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	points := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	// k = 1: single cluster containing everything.
	res, err := KMeans(points, 1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if a != 0 {
			t.Error("k=1 should assign all to cluster 0")
		}
	}
	if math.Abs(res.Centroids[0][0]-2) > 1e-12 {
		t.Errorf("centroid %v, want mean (2,2)", res.Centroids[0])
	}
	// k = n: zero inertia.
	res, err = KMeans(points, 3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("k=n inertia %g, want 0", res.Inertia)
	}
	// Identical points: must not spin or crash.
	same := [][]float64{{5}, {5}, {5}, {5}}
	if _, err := KMeans(same, 2, 10, 1); err != nil {
		t.Errorf("identical points: %v", err)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, 1, 10, 1); err == nil {
		t.Error("empty points accepted")
	}
	p := [][]float64{{1}, {2}}
	if _, err := KMeans(p, 0, 10, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(p, 3, 10, 1); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := KMeans(p, 1, 0, 1); err == nil {
		t.Error("maxIter=0 accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, 1, 10, 1); err == nil {
		t.Error("ragged dimensions accepted")
	}
	if _, err := KMeans([][]float64{{math.NaN()}}, 1, 10, 1); err == nil {
		t.Error("NaN coordinate accepted")
	}
}

// Property: inertia with k+1 clusters never exceeds inertia with k (both
// computed on the same data with the same seed family).
func TestKMeansInertiaMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		points, _ := threeBlobs(45, seed)
		prev := math.Inf(1)
		for k := 1; k <= 4; k++ {
			res, err := KMeans(points, k, 100, 9)
			if err != nil {
				return false
			}
			// Allow tiny numerical slack; k-means is a local optimizer so
			// strict monotonicity can rarely be violated — tolerate 5 %.
			if res.Inertia > prev*1.05 {
				return false
			}
			if res.Inertia < prev {
				prev = res.Inertia
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
