// External test package: these tests collect real signatures through
// pebil, which itself imports cluster (adaptive sampling's block
// clustering), so an in-package test would be an import cycle.
package cluster_test

import (
	"context"
	"testing"

	"tracex/internal/cluster"
	"tracex/internal/machine"
	"tracex/internal/pebil"
	"tracex/internal/synthapp"
)

func TestClusterRanksGroupsLoadClasses(t *testing.T) {
	// Collect a signature with one trace per load class plus duplicates;
	// clustering with k = classes must group identical-class ranks.
	app := synthapp.UH3D()
	bw := machine.BlueWatersP1()
	// Ranks 0..7 cover each of the 4 classes twice (round-robin).
	sig, err := pebil.DefaultCollector().Collect(context.Background(), app, 1024, bw, []int{0, 1, 2, 3, 4, 5, 6, 7},
		pebil.CollectorConfig{SampleRefs: 50_000, MaxWarmRefs: 100_000})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	rc, err := cluster.ClusterRanks(sig, app.NumClasses(), 3)
	if err != nil {
		t.Fatalf("ClusterRanks: %v", err)
	}
	// Ranks r and r+4 share a class and must share a cluster.
	cOf := map[int]int{}
	for c, ranks := range rc.Clusters {
		for _, r := range ranks {
			cOf[r] = c
		}
	}
	for r := 0; r < 4; r++ {
		if cOf[r] != cOf[r+4] {
			t.Errorf("ranks %d and %d in different clusters (%d, %d)", r, r+4, cOf[r], cOf[r+4])
		}
	}
	// Each representative belongs to its own cluster.
	for c, rep := range rc.Representative {
		if rep < 0 {
			t.Errorf("cluster %d has no representative", c)
			continue
		}
		if cOf[rep] != c {
			t.Errorf("representative %d not in cluster %d", rep, c)
		}
	}
}

func TestClusterRanksValidation(t *testing.T) {
	app := synthapp.Stencil3D()
	bw := machine.BlueWatersP1()
	sig, err := pebil.DefaultCollector().Collect(context.Background(), app, 64, bw, []int{0, 1},
		pebil.CollectorConfig{SampleRefs: 20_000, MaxWarmRefs: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.ClusterRanks(sig, 5, 1); err == nil {
		t.Error("k > rank count accepted")
	}
}
