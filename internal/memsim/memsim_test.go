package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tracex/internal/cache"
	"tracex/internal/machine"
)

func TestNewRejectsInvalidConfig(t *testing.T) {
	bad := machine.Kraken()
	bad.ClockGHz = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCyclesAllL1Hits(t *testing.T) {
	cfg := machine.Kraken()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cache.Counters{Refs: 1000, LevelHits: []uint64{1000, 0, 0}}
	cy, err := m.Cycles(c)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * cfg.CacheLatency[0] / cfg.MLP
	if cy != want {
		t.Errorf("Cycles = %g, want %g", cy, want)
	}
}

func TestCyclesMemoryLatencyBound(t *testing.T) {
	cfg := machine.Kraken()
	m, _ := New(cfg)
	// A handful of memory references: latency term dominates tiny traffic.
	c := cache.Counters{Refs: 10, LevelHits: []uint64{0, 0, 0}, MemAccesses: 10}
	cy, err := m.Cycles(c)
	if err != nil {
		t.Fatal(err)
	}
	latTerm := 10 * cfg.MemLatencyCycles / cfg.MLP
	if cy < latTerm*0.99 {
		t.Errorf("Cycles = %g, want ≥ latency term %g", cy, latTerm)
	}
}

func TestCyclesBandwidthFloorDominatesForStreams(t *testing.T) {
	// A machine with very high MLP makes the latency term tiny, exposing
	// the bandwidth floor for large streaming traffic.
	cfg := machine.Kraken()
	cfg.MLP = 64
	m, _ := New(cfg)
	const n = 1 << 20
	c := cache.Counters{Refs: n, LevelHits: []uint64{0, 0, 0}, MemAccesses: n}
	cy, err := m.Cycles(c)
	if err != nil {
		t.Fatal(err)
	}
	lineBytes := float64(cfg.Caches[0].LineSize)
	bwFloor := n * lineBytes * (cfg.ClockGHz * 1e9) / (cfg.MemBandwidthGBs * 1e9)
	if cy != bwFloor {
		t.Errorf("Cycles = %g, want bandwidth floor %g", cy, bwFloor)
	}
}

func TestCyclesLevelMismatch(t *testing.T) {
	m, _ := New(machine.Kraken())
	if _, err := m.Cycles(cache.Counters{Refs: 1, LevelHits: []uint64{1}}); err == nil {
		t.Error("level mismatch accepted")
	}
}

func TestBlockCyclesMatchesCycles(t *testing.T) {
	m, _ := New(machine.Kraken())
	cs := []cache.Counters{
		{Refs: 1000, LevelHits: []uint64{1000, 0, 0}},
		{Refs: 500, LevelHits: []uint64{100, 200, 100}, MemAccesses: 100},
		{Refs: 1 << 18, LevelHits: []uint64{0, 0, 0}, MemAccesses: 1 << 18},
	}
	got, err := m.BlockCycles(cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cs) {
		t.Fatalf("BlockCycles returned %d entries for %d blocks", len(got), len(cs))
	}
	for i, c := range cs {
		want, err := m.Cycles(c)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("block %d: BlockCycles %g, Cycles %g", i, got[i], want)
		}
	}
	cs[1].LevelHits = []uint64{1}
	if _, err := m.BlockCycles(cs); err == nil {
		t.Error("level mismatch inside batch accepted")
	}
}

func TestBandwidthOrdering(t *testing.T) {
	// Effective bandwidth must strictly decrease as the stream's hits move
	// from L1 to memory.
	m, _ := New(machine.Kraken())
	const n = 100_000
	mk := func(l1, l2, l3, mem uint64) cache.Counters {
		return cache.Counters{Refs: n, LevelHits: []uint64{l1, l2, l3}, MemAccesses: mem}
	}
	bwL1, err := m.BandwidthGBs(mk(n, 0, 0, 0), 8)
	if err != nil {
		t.Fatal(err)
	}
	bwL2, _ := m.BandwidthGBs(mk(0, n, 0, 0), 8)
	bwL3, _ := m.BandwidthGBs(mk(0, 0, n, 0), 8)
	bwMem, _ := m.BandwidthGBs(mk(0, 0, 0, n), 8)
	if !(bwL1 > bwL2 && bwL2 > bwL3 && bwL3 > bwMem) {
		t.Errorf("bandwidth not ordered: L1=%g L2=%g L3=%g mem=%g", bwL1, bwL2, bwL3, bwMem)
	}
	// Sanity: L1 bandwidth should be many GB/s, memory a small number.
	if bwL1 < 5 {
		t.Errorf("L1 bandwidth %g GB/s implausibly low", bwL1)
	}
	if bwMem > m.Config().MemBandwidthGBs {
		t.Errorf("memory-bound stream bandwidth %g exceeds sustained %g", bwMem, m.Config().MemBandwidthGBs)
	}
}

func TestBandwidthErrors(t *testing.T) {
	m, _ := New(machine.Kraken())
	if _, err := m.BandwidthGBs(cache.Counters{LevelHits: []uint64{0, 0, 0}}, 8); err == nil {
		t.Error("zero refs accepted")
	}
	c := cache.Counters{Refs: 10, LevelHits: []uint64{10, 0, 0}}
	if _, err := m.BandwidthGBs(c, 0); err == nil {
		t.Error("zero bytes per ref accepted")
	}
	if _, err := m.BandwidthGBs(cache.Counters{Refs: 1, LevelHits: []uint64{1}}, 8); err == nil {
		t.Error("level mismatch accepted")
	}
}

func TestSeconds(t *testing.T) {
	cfg := machine.Kraken()
	m, _ := New(cfg)
	if got, want := m.Seconds(cfg.ClockGHz*1e9), 1.0; got < 0.999 || got > 1.001 {
		t.Errorf("Seconds(1s of cycles) = %g, want %g", got, want)
	}
}

func TestFPCycles(t *testing.T) {
	cfg := machine.Kraken()
	m, _ := New(cfg)
	// Saturated ILP: peak throughput.
	if got, want := m.FPCycles(1000, cfg.IssueWidth), 1000/cfg.FLOPsPerCycle; got != want {
		t.Errorf("FPCycles = %g, want %g", got, want)
	}
	// Half ILP: twice the cycles.
	if got, want := m.FPCycles(1000, cfg.IssueWidth/2), 2*1000/cfg.FLOPsPerCycle; got != want {
		t.Errorf("FPCycles(half ILP) = %g, want %g", got, want)
	}
	if got := m.FPCycles(0, 1); got != 0 {
		t.Errorf("FPCycles(0 ops) = %g, want 0", got)
	}
	// ILP floor prevents division blowup.
	if got := m.FPCycles(1000, 0); got <= 0 {
		t.Errorf("FPCycles with zero ILP = %g, want positive finite", got)
	}
}

// Property: cycles are monotone — moving a hit from a near level to a
// farther level never decreases the cycle count.
func TestCyclesMonotoneInDepthProperty(t *testing.T) {
	m, _ := New(machine.Kraken())
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := uint64(1000 + r.Intn(100000))
		l1 := uint64(r.Int63n(int64(n)))
		l2 := uint64(r.Int63n(int64(n - l1 + 1)))
		l3 := uint64(r.Int63n(int64(n - l1 - l2 + 1)))
		mem := n - l1 - l2 - l3
		base := cache.Counters{Refs: n, LevelHits: []uint64{l1, l2, l3}, MemAccesses: mem}
		c0, err := m.Cycles(base)
		if err != nil {
			return false
		}
		if l1 == 0 {
			return true
		}
		// Demote one L1 hit to memory.
		worse := cache.Counters{Refs: n, LevelHits: []uint64{l1 - 1, l2, l3}, MemAccesses: mem + 1}
		c1, err := m.Cycles(worse)
		if err != nil {
			return false
		}
		return c1 >= c0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
