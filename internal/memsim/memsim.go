// Package memsim provides the cycle-level memory-hierarchy timing model.
// It converts cache-simulator hit/miss accounting into time on a target
// machine, combining a latency component (per-level load-to-use latencies
// overlapped by the machine's memory-level parallelism) with a main-memory
// bandwidth floor. MultiMAPS uses it to "measure" bandwidth surfaces, and
// the detailed execution simulator uses it to produce ground-truth runtimes.
package memsim

import (
	"fmt"

	"tracex/internal/cache"
	"tracex/internal/machine"
)

// Model computes memory timing for a specific machine configuration.
type Model struct {
	cfg machine.Config
	// cyclesPerMemByte converts memory traffic to cycles under the
	// sustained-bandwidth constraint.
	cyclesPerMemByte float64
}

// New builds a timing model for cfg.
func New(cfg machine.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clockHz := cfg.ClockGHz * 1e9
	bwBytes := cfg.MemBandwidthGBs * 1e9
	return &Model{cfg: cfg, cyclesPerMemByte: clockHz / bwBytes}, nil
}

// Config returns the machine configuration the model was built for.
func (m *Model) Config() machine.Config { return m.cfg }

// Cycles returns the simulated cycle cost of the references summarized in c.
// The cost is the maximum of a latency term — every reference pays the
// load-to-use latency of the level that served it, overlapped by the
// machine's MLP — and a bandwidth term: references that reached main memory
// move whole cache lines and cannot exceed sustained memory bandwidth.
func (m *Model) Cycles(c cache.Counters) (float64, error) {
	if len(c.LevelHits) != len(m.cfg.Caches) {
		return 0, fmt.Errorf("memsim: counters have %d levels, machine %s has %d",
			len(c.LevelHits), m.cfg.Name, len(m.cfg.Caches))
	}
	var latency float64
	for i, h := range c.LevelHits {
		latency += float64(h) * m.cfg.CacheLatency[i]
	}
	latency += float64(c.MemAccesses) * m.cfg.MemLatencyCycles
	latency /= m.cfg.MLP
	lineBytes := float64(m.cfg.Caches[0].LineSize)
	// Prefetch fills consume memory bandwidth alongside demand misses.
	bwFloor := float64(c.MemAccesses+c.PrefetchFills) * lineBytes * m.cyclesPerMemByte
	if bwFloor > latency {
		return bwFloor, nil
	}
	return latency, nil
}

// BlockCycles prices a batch of counter snapshots in one call — the memory
// cost of every block of a collection — returning one cycle count per
// snapshot. It fails on the first snapshot whose level count does not match
// the machine, identifying it by index.
func (m *Model) BlockCycles(cs []cache.Counters) ([]float64, error) {
	out := make([]float64, len(cs))
	for i := range cs {
		cycles, err := m.Cycles(cs[i])
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", i, err)
		}
		out[i] = cycles
	}
	return out, nil
}

// Seconds converts a cycle count on this machine to seconds.
func (m *Model) Seconds(cycles float64) float64 { return cycles * m.cfg.CycleSeconds() }

// BandwidthGBs returns the effective bandwidth in GB/s achieved by a stream
// whose accounting is c, where each reference moves bytesPerRef bytes of
// payload. This is the quantity MultiMAPS reports for each probe point.
func (m *Model) BandwidthGBs(c cache.Counters, bytesPerRef float64) (float64, error) {
	if c.Refs == 0 {
		return 0, fmt.Errorf("memsim: no references in counters")
	}
	if bytesPerRef <= 0 {
		return 0, fmt.Errorf("memsim: non-positive bytes per reference %g", bytesPerRef)
	}
	cycles, err := m.Cycles(c)
	if err != nil {
		return 0, err
	}
	if cycles == 0 {
		return 0, fmt.Errorf("memsim: zero-cycle stream")
	}
	seconds := m.Seconds(cycles)
	totalBytes := float64(c.Refs) * bytesPerRef
	return totalBytes / seconds / 1e9, nil
}

// FPCycles returns the cycle cost of executing fpOps floating-point
// operations in a block exhibiting the given ILP: the achievable throughput
// is the machine's peak scaled by how much of the issue width the ILP fills.
func (m *Model) FPCycles(fpOps, ilp float64) float64 {
	if fpOps <= 0 {
		return 0
	}
	eff := ilp / m.cfg.IssueWidth
	if eff > 1 {
		eff = 1
	}
	if eff < 0.05 {
		eff = 0.05
	}
	return fpOps / (m.cfg.FLOPsPerCycle * eff)
}
