// Package multimaps implements the MultiMAPS memory benchmark from the PMaC
// framework. MultiMAPS probes a system with memory access patterns across a
// range of working-set sizes and strides, recording the sustained bandwidth
// of each probe together with the cache hit rates the probe achieved. The
// resulting (hit rates → bandwidth) surface — Figure 1 of the paper — is the
// memory component of the machine profile.
//
// In this reproduction the "system" is the simulated memory hierarchy of a
// machine.Config: the probe streams run through the cache simulator and the
// memsim timing model instead of real silicon, producing a surface with the
// same qualitative structure (bandwidth plateaus at each cache level with
// cliffs between them).
package multimaps

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"tracex/internal/addrgen"
	"tracex/internal/cache"
	"tracex/internal/machine"
	"tracex/internal/memsim"
	"tracex/internal/obs"
)

// Options controls the probe sweep.
type Options struct {
	// WorkingSets lists the probe working-set sizes in bytes.
	WorkingSets []uint64
	// Strides lists probe strides in bytes. The special value 0 requests a
	// random-access probe at each working-set size.
	Strides []uint64
	// RefsPerProbe is the number of measured references per probe point.
	RefsPerProbe int
	// WarmupPasses is the number of full working-set passes executed
	// before measurement begins (cold-miss elimination).
	WarmupPasses int
	// Parallelism bounds the number of concurrent probe workers; ≤0 means
	// one worker per available CPU.
	Parallelism int
	// MixedFractions requests mixed-locality probes: for each fraction f,
	// a probe whose references go to an L1-resident region with
	// probability f and stream from a memory-sized region otherwise. They
	// fill in the bandwidth surface between the cache-resident plateau and
	// the streaming floor, which real applications occupy.
	MixedFractions []float64
}

// DefaultOptions builds a sweep that straddles every cache level of cfg:
// working sets from a quarter of L1 to four times the last-level cache, and
// strides covering unit, line-sized and random access.
func DefaultOptions(cfg machine.Config) Options {
	var ws []uint64
	first := uint64(cfg.Caches[0].SizeBytes) / 4
	last := uint64(cfg.Caches[len(cfg.Caches)-1].SizeBytes) * 4
	for s := first; s <= last; s *= 2 {
		ws = append(ws, s)
	}
	line := uint64(cfg.Caches[0].LineSize)
	return Options{
		WorkingSets:  ws,
		Strides:      []uint64{8, line / 2, line, 2 * line, 0},
		RefsPerProbe: 200_000,
		WarmupPasses: 2,
		MixedFractions: []float64{
			0.5, 0.75, 0.875, 0.9375, 0.96, 0.97, 0.98, 0.985,
			0.99, 0.995, 0.997, 0.999,
		},
	}
}

func (o Options) validate() error {
	if len(o.WorkingSets) == 0 {
		return fmt.Errorf("multimaps: no working sets")
	}
	if len(o.Strides) == 0 {
		return fmt.Errorf("multimaps: no strides")
	}
	if o.RefsPerProbe <= 0 {
		return fmt.Errorf("multimaps: non-positive refs per probe")
	}
	if o.WarmupPasses < 0 {
		return fmt.Errorf("multimaps: negative warmup passes")
	}
	for _, w := range o.WorkingSets {
		if w < 8 {
			return fmt.Errorf("multimaps: working set %d too small", w)
		}
	}
	return nil
}

// elem is the probe element size: 8-byte (double precision) values.
const elem = 8

// probeBatch is the address-slab length of the probe loops: addresses are
// generated and simulated in batches through a per-worker reusable buffer,
// mirroring the collection pipeline in internal/pebil. The context is
// consulted once per slab.
const probeBatch = 4096

// streamProbe drives n references from gen through sim in slabs of
// len(buf), checking for cancellation once per slab.
func streamProbe(ctx context.Context, sim *cache.Simulator, gen addrgen.Generator, buf []uint64, n int) error {
	for n > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		k := len(buf)
		if k > n {
			k = n
		}
		addrgen.FillBatch(gen, buf[:k])
		sim.AccessBatch(buf[:k])
		n -= k
	}
	return nil
}

// probe runs a single (working set, stride) measurement on a fresh cache
// simulator and returns the surface point, streaming addresses through the
// caller's reusable buffer. A zero stride requests the random-access probe;
// a negative resident fraction is ignored, a positive one requests a
// mixed-locality probe (stride is then unused).
func probe(ctx context.Context, cfg machine.Config, model *memsim.Model, ws, stride uint64, frac float64, opt Options, buf []uint64) (machine.SurfacePoint, error) {
	probeStart := time.Now()
	sim, err := cache.NewSimulatorOpts(cfg.Caches, cache.Options{NextLinePrefetch: cfg.Prefetch})
	if err != nil {
		return machine.SurfacePoint{}, err
	}
	var gen addrgen.Generator
	switch {
	case frac > 0:
		// Mixed probe: a quarter-of-L1 resident region against a
		// streaming region four times the last-level cache.
		hotWS := uint64(cfg.Caches[0].SizeBytes) / 4
		coldWS := uint64(cfg.Caches[len(cfg.Caches)-1].SizeBytes) * 4
		var hot, cold addrgen.Generator
		hot, err = addrgen.NewStride(0, elem, hotWS)
		if err == nil {
			cold, err = addrgen.NewStride(1<<40, uint64(cfg.Caches[0].LineSize), coldWS)
		}
		if err == nil {
			gen, err = addrgen.NewBiased(hot, cold, frac)
		}
		ws = hotWS + coldWS
	case stride == 0:
		gen, err = addrgen.NewRandom(0, ws, elem, int64(ws)^0x5eed)
	default:
		gen, err = addrgen.NewStride(0, stride, ws)
	}
	if err != nil {
		return machine.SurfacePoint{}, fmt.Errorf("multimaps: ws=%d stride=%d frac=%g: %w", ws, stride, frac, err)
	}
	// Warmup: walk the whole working set WarmupPasses times so steady-state
	// residency is established before measuring.
	effStride := stride
	if effStride == 0 || frac > 0 {
		effStride = elem
	}
	warmRefs := int(ws/effStride) * opt.WarmupPasses
	if max := 4 * opt.RefsPerProbe; warmRefs > max {
		warmRefs = max // beyond-LLC regions are miss-bound immediately
	}
	if err := streamProbe(ctx, sim, gen, buf, warmRefs); err != nil {
		return machine.SurfacePoint{}, err
	}
	sim.ResetCounters()
	if err := streamProbe(ctx, sim, gen, buf, opt.RefsPerProbe); err != nil {
		return machine.SurfacePoint{}, err
	}
	ctr := sim.Counters()
	bw, err := model.BandwidthGBs(ctr, elem)
	if err != nil {
		return machine.SurfacePoint{}, err
	}
	pfPerRef := 0.0
	if ctr.Refs > 0 {
		pfPerRef = float64(ctr.PrefetchFills) / float64(ctr.Refs)
	}
	// One batched update per probe point: which sweep family it belongs
	// to, how many addresses it streamed, and how long it took.
	m := obs.From(ctx)
	switch {
	case frac > 0:
		m.Counter("multimaps.points.mixed").Inc()
	case stride == 0:
		m.Counter("multimaps.points.random").Inc()
	default:
		m.Counter("multimaps.points.strided").Inc()
	}
	m.Counter("multimaps.refs").Add(uint64(warmRefs + opt.RefsPerProbe))
	m.Histogram("multimaps.probe_seconds").Observe(time.Since(probeStart).Seconds())
	return machine.SurfacePoint{
		WorkingSetBytes:  ws,
		StrideBytes:      stride,
		HitRates:         ctr.CumulativeHitRates(),
		BandwidthGBs:     bw,
		ResidentFraction: frac,
		PrefetchPerRef:   pfPerRef,
	}, nil
}

// Run executes the MultiMAPS sweep against cfg's simulated memory system and
// returns the machine profile containing the measured bandwidth surface.
// Probe points are independent, so they run concurrently. Cancelling ctx
// stops the sweep promptly and returns ctx.Err().
func Run(ctx context.Context, cfg machine.Config, opt Options) (*machine.Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	sp := obs.From(ctx).StartSpan("multimaps.sweep", cfg.Name)
	defer sp.End()
	model, err := memsim.New(cfg)
	if err != nil {
		return nil, err
	}
	type job struct {
		ws, stride uint64
		frac       float64
	}
	var jobs []job
	for _, ws := range opt.WorkingSets {
		for _, st := range opt.Strides {
			if st != 0 && st > ws {
				continue // stride beyond the working set is degenerate
			}
			jobs = append(jobs, job{ws, st, 0})
		}
	}
	for _, f := range opt.MixedFractions {
		if f <= 0 || f >= 1 {
			return nil, fmt.Errorf("multimaps: mixed fraction %g outside (0,1)", f)
		}
		jobs = append(jobs, job{0, 0, f})
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	points := make([]machine.SurfacePoint, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]uint64, probeBatch) // per-worker slab, reused across probes
			for i := range next {
				if errs[i] = ctx.Err(); errs[i] != nil {
					continue // cancelled: drain the remaining jobs cheaply
				}
				points[i], errs[i] = probe(ctx, cfg, model, jobs[i].ws, jobs[i].stride, jobs[i].frac, opt, buf)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	// Prefer a real probe failure over the cancellations it may have left
	// in sibling probes, falling back to the context error.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ctxErr = err
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].ResidentFraction != points[j].ResidentFraction {
			return points[i].ResidentFraction < points[j].ResidentFraction
		}
		if points[i].WorkingSetBytes != points[j].WorkingSetBytes {
			return points[i].WorkingSetBytes < points[j].WorkingSetBytes
		}
		return points[i].StrideBytes < points[j].StrideBytes
	})
	p := &machine.Profile{Machine: cfg, Surface: points}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("multimaps: produced invalid profile: %w", err)
	}
	return p, nil
}
