package multimaps

import (
	"context"

	"testing"

	"tracex/internal/machine"
)

// smallOptions keeps probe cost low for unit tests.
func smallOptions(cfg machine.Config) Options {
	o := DefaultOptions(cfg)
	o.RefsPerProbe = 20_000
	o.WarmupPasses = 1
	return o
}

func TestDefaultOptionsStraddleHierarchy(t *testing.T) {
	cfg := machine.Opteron2L()
	o := DefaultOptions(cfg)
	if len(o.WorkingSets) == 0 || len(o.Strides) == 0 {
		t.Fatal("empty sweep")
	}
	first := o.WorkingSets[0]
	last := o.WorkingSets[len(o.WorkingSets)-1]
	if first >= uint64(cfg.Caches[0].SizeBytes) {
		t.Errorf("smallest working set %d does not fit L1", first)
	}
	if last <= uint64(cfg.Caches[len(cfg.Caches)-1].SizeBytes) {
		t.Errorf("largest working set %d does not exceed LLC", last)
	}
	// Random probe requested.
	foundRandom := false
	for _, s := range o.Strides {
		if s == 0 {
			foundRandom = true
		}
	}
	if !foundRandom {
		t.Error("no random-access probe in default sweep")
	}
}

func TestRunProducesValidProfile(t *testing.T) {
	cfg := machine.Opteron2L()
	p, err := Run(context.Background(), cfg, smallOptions(cfg))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("profile invalid: %v", err)
	}
	if p.Machine.Name != cfg.Name {
		t.Errorf("profile machine %s", p.Machine.Name)
	}
}

func TestSurfaceShapeCacheCliffs(t *testing.T) {
	// The Figure 1 shape: unit-stride bandwidth is high while the working
	// set fits L1, lower when it only fits L2, lowest from memory.
	cfg := machine.Opteron2L()
	o := smallOptions(cfg)
	p, err := Run(context.Background(), cfg, o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bwAt := func(ws uint64) float64 {
		for _, sp := range p.Surface {
			if sp.WorkingSetBytes == ws && sp.StrideBytes == 8 {
				return sp.BandwidthGBs
			}
		}
		t.Fatalf("no unit-stride point at ws=%d", ws)
		return 0
	}
	inL1 := bwAt(16 << 10)  // fits 64 KiB L1
	inL2 := bwAt(512 << 10) // fits 1 MiB L2, not L1
	inMem := bwAt(4 << 20)  // exceeds 1 MiB L2
	if !(inL1 > inL2 && inL2 > inMem) {
		t.Errorf("no cache cliffs: L1=%.2f L2=%.2f mem=%.2f GB/s", inL1, inL2, inMem)
	}
	if ratio := inL1 / inMem; ratio < 2 {
		t.Errorf("L1:memory bandwidth ratio %.2f implausibly flat", ratio)
	}
}

func TestSurfaceHitRatesTrackWorkingSet(t *testing.T) {
	cfg := machine.Opteron2L()
	p, err := Run(context.Background(), cfg, smallOptions(cfg))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	line := uint64(cfg.Caches[0].LineSize)
	for _, sp := range p.Surface {
		fitsL1 := sp.WorkingSetBytes <= uint64(cfg.Caches[0].SizeBytes)
		if sp.StrideBytes == 8 && fitsL1 && sp.HitRates[0] < 0.95 {
			t.Errorf("ws=%d fits L1 but L1 rate %.3f", sp.WorkingSetBytes, sp.HitRates[0])
		}
		// At line-sized stride every reference opens a new line, so a
		// working set beyond 2×L2 must show a poor L2 cumulative rate.
		exceedsL2 := sp.WorkingSetBytes > 2*uint64(cfg.Caches[1].SizeBytes)
		if sp.StrideBytes == line && exceedsL2 && sp.HitRates[1] > 0.5 {
			t.Errorf("ws=%d exceeds 2×L2 but L2 cumulative rate %.3f at line stride", sp.WorkingSetBytes, sp.HitRates[1])
		}
		// Unit stride always enjoys spatial locality: 7 of 8 consecutive
		// 8-byte references share a 64-byte line, so the L1 rate never
		// drops below ~0.87 even from memory.
		if sp.StrideBytes == 8 && sp.HitRates[0] < 0.85 {
			t.Errorf("ws=%d unit-stride L1 rate %.3f below spatial-locality floor", sp.WorkingSetBytes, sp.HitRates[0])
		}
	}
}

func TestRandomProbeSlowerThanUnitStrideInMemory(t *testing.T) {
	cfg := machine.Opteron2L()
	p, err := Run(context.Background(), cfg, smallOptions(cfg))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var unit, random float64
	const ws = 4 << 20 // the largest working set in the default sweep
	for _, sp := range p.Surface {
		if sp.WorkingSetBytes != ws {
			continue
		}
		switch sp.StrideBytes {
		case 8:
			unit = sp.BandwidthGBs
		case 0:
			random = sp.BandwidthGBs
		}
	}
	if unit == 0 || random == 0 {
		t.Fatal("missing probes at 4 MiB")
	}
	if random >= unit {
		t.Errorf("random bandwidth %.3f ≥ unit-stride %.3f at 8 MiB", random, unit)
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	cfg := machine.Opteron2L()
	o := smallOptions(cfg)
	o.Parallelism = 1
	serial, err := Run(context.Background(), cfg, o)
	if err != nil {
		t.Fatalf("serial Run: %v", err)
	}
	o.Parallelism = 8
	parallel, err := Run(context.Background(), cfg, o)
	if err != nil {
		t.Fatalf("parallel Run: %v", err)
	}
	if len(serial.Surface) != len(parallel.Surface) {
		t.Fatalf("point counts differ: %d vs %d", len(serial.Surface), len(parallel.Surface))
	}
	for i := range serial.Surface {
		if serial.Surface[i].BandwidthGBs != parallel.Surface[i].BandwidthGBs {
			t.Errorf("point %d differs between serial and parallel runs", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	cfg := machine.Opteron2L()
	if _, err := Run(context.Background(), cfg, Options{}); err == nil {
		t.Error("empty options accepted")
	}
	bad := smallOptions(cfg)
	bad.RefsPerProbe = 0
	if _, err := Run(context.Background(), cfg, bad); err == nil {
		t.Error("zero refs accepted")
	}
	bad = smallOptions(cfg)
	bad.WarmupPasses = -1
	if _, err := Run(context.Background(), cfg, bad); err == nil {
		t.Error("negative warmup accepted")
	}
	bad = smallOptions(cfg)
	bad.WorkingSets = []uint64{4}
	if _, err := Run(context.Background(), cfg, bad); err == nil {
		t.Error("tiny working set accepted")
	}
	invalidCfg := cfg
	invalidCfg.ClockGHz = 0
	if _, err := Run(context.Background(), invalidCfg, smallOptions(cfg)); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestStrideLargerThanWorkingSetSkipped(t *testing.T) {
	cfg := machine.Opteron2L()
	o := Options{
		WorkingSets:  []uint64{1 << 10},
		Strides:      []uint64{8, 1 << 20}, // second exceeds the working set
		RefsPerProbe: 1000,
	}
	p, err := Run(context.Background(), cfg, o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(p.Surface) != 1 {
		t.Errorf("got %d surface points, want 1 (oversized stride skipped)", len(p.Surface))
	}
}

func BenchmarkProbeSweep(b *testing.B) {
	cfg := machine.Opteron2L()
	o := smallOptions(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), cfg, o); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMixedProbesFillTheSurface(t *testing.T) {
	cfg := machine.Opteron2L()
	p, err := Run(context.Background(), cfg, smallOptions(cfg))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var mixed []machine.SurfacePoint
	for _, sp := range p.Surface {
		if sp.ResidentFraction > 0 {
			mixed = append(mixed, sp)
		}
	}
	if len(mixed) != len(smallOptions(cfg).MixedFractions) {
		t.Fatalf("got %d mixed probes, want %d", len(mixed), len(smallOptions(cfg).MixedFractions))
	}
	// Bandwidth is monotone in the resident fraction (they are sorted by
	// fraction ascending).
	for i := 1; i < len(mixed); i++ {
		if mixed[i].ResidentFraction <= mixed[i-1].ResidentFraction {
			t.Fatalf("mixed probes not sorted by fraction")
		}
		if mixed[i].BandwidthGBs <= mixed[i-1].BandwidthGBs {
			t.Errorf("bandwidth not monotone in resident fraction: f=%.3f bw=%.2f vs f=%.3f bw=%.2f",
				mixed[i-1].ResidentFraction, mixed[i-1].BandwidthGBs,
				mixed[i].ResidentFraction, mixed[i].BandwidthGBs)
		}
		// The probe's cumulative last-level rate tracks its fraction.
		last := mixed[i].HitRates[len(mixed[i].HitRates)-1]
		if diff := last - mixed[i].ResidentFraction; diff < -0.05 || diff > 0.1 {
			t.Errorf("f=%.3f: last-level rate %.3f far from fraction", mixed[i].ResidentFraction, last)
		}
	}
}

func TestMixedFractionValidation(t *testing.T) {
	cfg := machine.Opteron2L()
	o := smallOptions(cfg)
	o.MixedFractions = []float64{1.5}
	if _, err := Run(context.Background(), cfg, o); err == nil {
		t.Error("fraction >1 accepted")
	}
	o.MixedFractions = []float64{0}
	if _, err := Run(context.Background(), cfg, o); err == nil {
		t.Error("zero fraction accepted")
	}
}

func TestPrefetchingMachineSurfaceRecordsTraffic(t *testing.T) {
	cfg := machine.WithPrefetch(machine.Opteron2L())
	p, err := Run(context.Background(), cfg, smallOptions(cfg))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var sawTraffic bool
	for _, sp := range p.Surface {
		if sp.PrefetchPerRef > 0 {
			sawTraffic = true
		}
		// Unit-stride beyond-LLC probes must show near-perfect demand L1
		// rates (the stream prefetcher stays ahead) with real traffic.
		if sp.StrideBytes == 8 && sp.WorkingSetBytes > 2<<20 && sp.ResidentFraction == 0 {
			if sp.HitRates[0] < 0.99 {
				t.Errorf("ws=%d: prefetched stream L1 rate %.3f", sp.WorkingSetBytes, sp.HitRates[0])
			}
			if sp.PrefetchPerRef < 0.1 {
				t.Errorf("ws=%d: prefetched stream shows no traffic", sp.WorkingSetBytes)
			}
		}
	}
	if !sawTraffic {
		t.Error("no probe recorded prefetch traffic on a prefetching machine")
	}
}
