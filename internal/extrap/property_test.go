package extrap

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tracex/internal/stats"
	"tracex/internal/trace"
)

// randomCanonicalSignature builds a signature at core count p whose block
// elements follow randomly-parameterized canonical laws drawn from rng's
// seed. The same seed must be used for every core count of a series.
func randomCanonicalSignature(seed int64, p int) *trace.Signature {
	rng := rand.New(rand.NewSource(seed))
	x := float64(p)
	nBlocks := 1 + rng.Intn(4)
	tr := trace.Trace{App: "prop", CoreCount: p, Rank: 0, Machine: "m", Levels: 2}
	for b := 0; b < nBlocks; b++ {
		// Per-block law: one of the four canonical families for the
		// count-valued elements; hit rates constant or offset+log.
		base := 1e8 * (1 + rng.Float64()*10)
		var refs float64
		switch rng.Intn(4) {
		case 0:
			refs = base
		case 1:
			refs = base + rng.Float64()*1e5*x
		case 2:
			refs = base + rng.Float64()*1e8*math.Log(x)
		case 3:
			refs = base * math.Exp(-x/(4096+rng.Float64()*8192))
		}
		loadFrac := 0.4 + rng.Float64()*0.5
		h1 := 0.3 + rng.Float64()*0.5
		h2 := h1 + (0.99-h1)*math.Min(1, 0.1+0.05*math.Log(x)*rng.Float64())
		if h2 > 1 {
			h2 = 1
		}
		fpPerRef := rng.Float64() * 3
		fv := trace.FeatureVector{
			FPOps: refs * fpPerRef, FPAdd: refs * fpPerRef,
			MemOps: refs, Loads: refs * loadFrac, Stores: refs * (1 - loadFrac),
			BytesPerRef: 8, WorkingSetBytes: 1e6 * (1 + rng.Float64()*100),
			ILP: 1 + rng.Float64()*3, HitRates: []float64{h1, h2},
		}
		tr.Blocks = append(tr.Blocks, trace.Block{ID: uint64(b + 1), Func: "blk", FV: fv})
	}
	return &trace.Signature{App: "prop", CoreCount: p, Machine: "m", Traces: []trace.Trace{tr}}
}

// Property: for signatures whose elements follow exact canonical laws, the
// extrapolated signature matches the law's value at the target within a
// small tolerance, for every influential element.
func TestExtrapolateRecoversRandomCanonicalLawsProperty(t *testing.T) {
	f := func(seed int64) bool {
		counts := []int{512, 1024, 2048, 4096}
		sigs := make([]*trace.Signature, len(counts))
		for i, p := range counts {
			sigs[i] = randomCanonicalSignature(seed, p)
		}
		const target = 8192
		res, err := Extrapolate(context.Background(), sigs, target, Options{})
		if err != nil {
			return false
		}
		truth := randomCanonicalSignature(seed, target)
		errs, err := Compare(&res.Signature.Traces[0], &truth.Traces[0])
		if err != nil {
			return false
		}
		// Exact canonical inputs: influential elements should land within
		// 0.5%. The selector's tied-set tie-break is deterministic and
		// order-independent, so the only residual slack is a genuinely
		// ambiguous near-tie resolving to a neighboring form (worst
		// observed over 500 seeds: 2.4e-4).
		return MaxInfluentialError(errs) < 0.005
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: extrapolation is deterministic — same inputs give identical
// outputs.
func TestExtrapolateDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		counts := []int{512, 1024, 2048}
		mk := func() []*trace.Signature {
			sigs := make([]*trace.Signature, len(counts))
			for i, p := range counts {
				sigs[i] = randomCanonicalSignature(seed, p)
			}
			return sigs
		}
		a, err1 := Extrapolate(context.Background(), mk(), 8192, Options{})
		b, err2 := Extrapolate(context.Background(), mk(), 8192, Options{})
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		av, err := a.Signature.Traces[0].Blocks[0].FV.Values(2)
		if err != nil {
			return false
		}
		bv, err := b.Signature.Traces[0].Blocks[0].FV.Values(2)
		if err != nil {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: input order never matters — Extrapolate sorts by core count.
func TestExtrapolateOrderInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		counts := []int{512, 1024, 2048}
		sigs := make([]*trace.Signature, len(counts))
		for i, p := range counts {
			sigs[i] = randomCanonicalSignature(seed, p)
		}
		shuffled := []*trace.Signature{sigs[2], sigs[0], sigs[1]}
		a, err1 := Extrapolate(context.Background(), sigs, 8192, Options{})
		b, err2 := Extrapolate(context.Background(), shuffled, 8192, Options{})
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		av, _ := a.Signature.Traces[0].Blocks[0].FV.Values(2)
		bv, _ := b.Signature.Traces[0].Blocks[0].FV.Values(2)
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: cross-validated selection on the same exact canonical data is
// never catastrophically worse than best-fit selection (both should recover
// the generating law).
func TestExtrapolateCVComparableProperty(t *testing.T) {
	f := func(seed int64) bool {
		counts := []int{512, 1024, 2048, 4096}
		sigs := make([]*trace.Signature, len(counts))
		for i, p := range counts {
			sigs[i] = randomCanonicalSignature(seed, p)
		}
		const target = 8192
		truth := randomCanonicalSignature(seed, target)
		plain, err := Extrapolate(context.Background(), sigs, target, Options{})
		if err != nil {
			return false
		}
		cv, err := Extrapolate(context.Background(), sigs, target, Options{Forms: stats.CanonicalForms(), CrossValidate: true})
		if err != nil {
			return false
		}
		pe, err := Compare(&plain.Signature.Traces[0], &truth.Traces[0])
		if err != nil {
			return false
		}
		ce, err := Compare(&cv.Signature.Traces[0], &truth.Traces[0])
		if err != nil {
			return false
		}
		return MaxInfluentialError(ce) < MaxInfluentialError(pe)+0.10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
