// Package extrap implements the paper's central contribution: trace
// extrapolation. Given application signatures collected at a series of
// small core counts, it fits each element of each basic block's feature
// vector independently against a set of canonical scaling forms (constant,
// linear, logarithmic, exponential — Section IV of the paper), selects the
// best fit per element, and synthesizes the application signature at a
// large core count that was never traced.
package extrap

import (
	"context"
	"fmt"
	"sort"

	"tracex/internal/obs"
	"tracex/internal/stats"
	"tracex/internal/trace"
	"tracex/internal/uncert"
)

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Options tunes the extrapolation.
type Options struct {
	// Forms are the canonical forms to fit; nil selects the paper's four.
	Forms []stats.Form
	// MinInputs is the minimum number of input core counts (default 3,
	// which the paper found generally adequate).
	MinInputs int
	// CrossValidate selects each element's form by leave-one-out
	// cross-validation instead of training error. It protects
	// high-parameter forms (the future-work polynomial extension) from
	// overfitting the handful of input counts.
	CrossValidate bool
	// Intervals additionally runs posterior model averaging over the
	// forms (internal/uncert): each element's extrapolated value becomes
	// the BIC-weighted mixture mean, its predictive variance is recorded
	// on the synthesized signature (Signature.Uncertainty), and the
	// per-element fits gain Mean/Var/Weights. With Intervals false the
	// point-selection path runs exactly as before, bit for bit.
	Intervals bool
}

func (o Options) withDefaults() Options {
	if o.MinInputs <= 0 {
		o.MinInputs = 3
	}
	return o
}

// Validate checks the option values so that bad inputs fail before any
// simulation or fitting runs. A zero Options is valid (the defaults).
func (o Options) Validate() error {
	if o.MinInputs != 0 && o.MinInputs < 2 {
		return fmt.Errorf("extrap: MinInputs %d below the 2 points a fit needs", o.MinInputs)
	}
	for i, f := range o.Forms {
		if f == nil {
			return fmt.Errorf("extrap: nil form at index %d", i)
		}
	}
	return nil
}

// ElementFit records the model selected for one feature-vector element of
// one basic block.
type ElementFit struct {
	// BlockID and Element identify the fitted series.
	BlockID uint64
	Element string
	// Form is the selected canonical form's name.
	Form string
	// Params are the fitted parameters.
	Params []float64
	// R2 and RMSE describe the fit quality on the input counts.
	R2, RMSE float64
	// Extrapolated is the (clamped) value produced at the target count.
	Extrapolated float64
	// Mean and Var are the posterior model-averaged prediction and its
	// predictive variance at the target count; Weights are the posterior
	// form weights. All three are populated only when Options.Intervals.
	Mean, Var float64
	Weights   map[string]float64
}

// Result is the product of an extrapolation.
type Result struct {
	// Signature is the synthesized application signature at the target
	// core count (a single trace file: the dominant task, per the paper).
	Signature *trace.Signature
	// Fits records every per-element model selection.
	Fits []ElementFit
	// SkippedBlocks lists blocks absent from at least one input signature
	// and therefore not extrapolated.
	SkippedBlocks []uint64
}

// FitsFor returns the element fits of one block, keyed by element name.
func (r *Result) FitsFor(blockID uint64) map[string]ElementFit {
	m := map[string]ElementFit{}
	for _, f := range r.Fits {
		if f.BlockID == blockID {
			m[f.Element] = f
		}
	}
	return m
}

// Extrapolate fits the scaling of every feature-vector element of the
// dominant task across the input signatures and generates the signature at
// targetCores. Input signatures must describe the same application and
// target machine at distinct core counts; at least opt.MinInputs are
// required, and the target must exceed the largest input (the methodology
// infers *larger*-scale behaviour). Cancelling ctx stops the fitting
// between blocks and returns ctx.Err().
func Extrapolate(ctx context.Context, inputs []*trace.Signature, targetCores int, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if len(inputs) < opt.MinInputs {
		return nil, fmt.Errorf("extrap: need at least %d input signatures, have %d", opt.MinInputs, len(inputs))
	}
	sorted := append([]*trace.Signature(nil), inputs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].CoreCount < sorted[j].CoreCount })
	first := sorted[0]
	if err := first.Validate(); err != nil {
		return nil, err
	}
	for _, s := range sorted[1:] {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if s.App != first.App || s.Machine != first.Machine {
			return nil, fmt.Errorf("extrap: %w: signature (%s on %s) mixed with (%s on %s)",
				trace.ErrMachineMismatch, s.App, s.Machine, first.App, first.Machine)
		}
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i].CoreCount == sorted[i-1].CoreCount {
			return nil, fmt.Errorf("extrap: duplicate input core count %d", sorted[i].CoreCount)
		}
	}
	if targetCores <= sorted[len(sorted)-1].CoreCount {
		return nil, fmt.Errorf("extrap: target %d not beyond largest input %d",
			targetCores, sorted[len(sorted)-1].CoreCount)
	}

	// The paper extrapolates the trace of the most computationally
	// demanding MPI task of each run.
	doms := make([]*trace.Trace, len(sorted))
	counts := make([]float64, len(sorted))
	levels := 0
	for i, s := range sorted {
		doms[i] = s.DominantTrace()
		counts[i] = float64(s.CoreCount)
		if i == 0 {
			levels = doms[i].Levels
		} else if doms[i].Levels != levels {
			return nil, fmt.Errorf("extrap: input at %d cores simulated %d cache levels, first input %d",
				s.CoreCount, doms[i].Levels, levels)
		}
	}

	// Align blocks: extrapolate those present in every input.
	maps := make([]map[uint64]*trace.Block, len(doms))
	for i, d := range doms {
		maps[i] = d.BlockByID()
	}
	var ids []uint64
	var skipped []uint64
	for id := range maps[0] {
		inAll := true
		for _, m := range maps[1:] {
			if _, ok := m[id]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			ids = append(ids, id)
		} else {
			skipped = append(skipped, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sort.Slice(skipped, func(i, j int) bool { return skipped[i] < skipped[j] })
	if len(ids) == 0 {
		return nil, fmt.Errorf("extrap: no common blocks across the input signatures")
	}

	m := obs.From(ctx)
	sp := m.StartSpan("extrap.fit", fmt.Sprintf("%s→%d", first.App, targetCores))
	defer sp.End()
	m.Counter("extrap.extrapolations").Inc()
	m.Counter("extrap.blocks").Add(uint64(len(ids)))
	m.Counter("extrap.blocks_skipped").Add(uint64(len(skipped)))
	fits := m.Counter("extrap.fits")

	sel := stats.NewSelector(opt.Forms)
	names := trace.ElementNames(levels)
	cons := trace.ElementConstraints(levels)
	res := &Result{SkippedBlocks: skipped}
	outTrace := trace.Trace{
		App:       first.App,
		CoreCount: targetCores,
		Rank:      0,
		Machine:   first.Machine,
		Levels:    levels,
	}
	var uc *trace.SignatureUncertainty
	if opt.Intervals {
		uc = &trace.SignatureUncertainty{Dof: maxInt(1, len(counts)-2)}
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Per-element series across the input counts.
		series := make([][]float64, len(names))
		for i := range doms {
			vals, err := maps[i][id].FV.Values(levels)
			if err != nil {
				return nil, fmt.Errorf("extrap: block %d at %d cores: %w", id, int(counts[i]), err)
			}
			for e, v := range vals {
				series[e] = append(series[e], v)
			}
		}
		outVals := make([]float64, len(names))
		var blockVars []float64
		if opt.Intervals {
			blockVars = make([]float64, len(names))
		}
		for e := range names {
			var fit stats.FitResult
			var err error
			if opt.CrossValidate {
				fit, err = sel.SelectCV(counts, series[e])
			} else {
				fit, err = sel.Select(counts, series[e])
			}
			if err != nil {
				return nil, fmt.Errorf("extrap: block %d element %s: %w", id, names[e], err)
			}
			v := fit.Model.Eval(float64(targetCores))
			ef := ElementFit{
				BlockID: id,
				Element: names[e],
				Form:    fit.Model.Name(),
				Params:  fit.Model.Params(),
				R2:      fit.R2,
				RMSE:    fit.RMSE,
			}
			if opt.Intervals {
				// Posterior model averaging: the element's value becomes
				// the BIC-weighted mixture mean and its predictive
				// variance rides on the synthesized signature. A series no
				// form can average (all predictions non-finite at the
				// target) falls back to the point selection with zero
				// recorded variance.
				est, uerr := uncert.Average(opt.Forms, counts, series[e], float64(targetCores))
				if uerr == nil {
					v = est.Mean
					ef.Mean, ef.Var = est.Mean, est.Var
					ef.Weights = make(map[string]float64, len(est.Forms))
					for _, fp := range est.Forms {
						ef.Weights[fp.Form] = fp.Weight
					}
					blockVars[e] = est.Var
					if est.Dof < uc.Dof {
						uc.Dof = est.Dof
					}
					m.Counter("uncert.weights." + est.Top()).Inc()
				}
			}
			if v < cons[e].Min {
				v = cons[e].Min
			}
			if v > cons[e].Max {
				v = cons[e].Max
			}
			outVals[e] = v
			ef.Extrapolated = v
			fits.Inc()
			m.Counter("extrap.form." + fit.Model.Name()).Inc()
			res.Fits = append(res.Fits, ef)
		}
		if opt.Intervals {
			uc.Blocks = append(uc.Blocks, trace.BlockUncertainty{ID: id, Vars: blockVars})
		}
		enforceConsistency(outVals, levels)
		fv, err := trace.FromValues(outVals, levels)
		if err != nil {
			return nil, fmt.Errorf("extrap: block %d: %w", id, err)
		}
		proto := maps[0][id]
		outTrace.Blocks = append(outTrace.Blocks, trace.Block{
			ID:   id,
			Func: proto.Func,
			File: proto.File,
			Line: proto.Line,
			FV:   fv,
		})
	}
	outTrace.SortBlocks()
	res.Signature = &trace.Signature{
		App:         first.App,
		CoreCount:   targetCores,
		Machine:     first.Machine,
		Traces:      []trace.Trace{outTrace},
		Uncertainty: uc,
	}
	if err := res.Signature.Validate(); err != nil {
		return nil, fmt.Errorf("extrap: synthesized signature invalid: %w", err)
	}
	return res, nil
}

// enforceConsistency repairs physical invariants that independent
// per-element extrapolation can violate: cumulative hit rates must be
// non-decreasing across levels, loads+stores cannot exceed total memory
// operations, and the FP composition cannot exceed total FP operations.
func enforceConsistency(vals []float64, levels int) {
	// Monotone cumulative hit rates.
	for i := trace.NumScalarElements + 1; i < trace.NumScalarElements+levels; i++ {
		if vals[i] < vals[i-1] {
			vals[i] = vals[i-1]
		}
	}
	// Loads+stores ≤ mem ops (rescale proportionally on violation).
	mem, loads, stores := vals[4], vals[5], vals[6]
	if sum := loads + stores; sum > mem && sum > 0 {
		scale := mem / sum
		vals[5] *= scale
		vals[6] *= scale
	}
	// FP composition ≤ FP ops.
	fp := vals[0]
	if sum := vals[1] + vals[2] + vals[3]; sum > fp && sum > 0 {
		scale := fp / sum
		vals[1] *= scale
		vals[2] *= scale
		vals[3] *= scale
	}
}
