package extrap

import (
	"fmt"

	"tracex/internal/stats"
	"tracex/internal/trace"
)

// ElementError compares one extrapolated feature-vector element against its
// collected (ground truth) counterpart.
type ElementError struct {
	// BlockID and Func identify the basic block.
	BlockID uint64
	Func    string
	// Element names the feature-vector element.
	Element string
	// Extrapolated and Collected are the two values.
	Extrapolated, Collected float64
	// AbsRelErr is |extrapolated-collected| / |collected|.
	AbsRelErr float64
	// Influence is the block's share of the task's memory (or FP)
	// operations, from the collected trace.
	Influence float64
	// Influential reports whether the block exceeds the paper's 0.1 %
	// influence threshold.
	Influential bool
}

// Compare evaluates an extrapolated trace against a collected trace at the
// same core count, element by element. Blocks present in only one trace are
// ignored (the extrapolation may legitimately skip blocks missing from some
// input counts).
func Compare(extrapolated, collected *trace.Trace) ([]ElementError, error) {
	if extrapolated.Levels != collected.Levels {
		return nil, fmt.Errorf("extrap: comparing traces with %d vs %d cache levels",
			extrapolated.Levels, collected.Levels)
	}
	if extrapolated.CoreCount != collected.CoreCount {
		return nil, fmt.Errorf("extrap: comparing traces at %d vs %d cores",
			extrapolated.CoreCount, collected.CoreCount)
	}
	names := trace.ElementNames(collected.Levels)
	colByID := collected.BlockByID()
	var out []ElementError
	for i := range extrapolated.Blocks {
		eb := &extrapolated.Blocks[i]
		cb, ok := colByID[eb.ID]
		if !ok {
			continue
		}
		ev, err := eb.FV.Values(extrapolated.Levels)
		if err != nil {
			return nil, err
		}
		cv, err := cb.FV.Values(collected.Levels)
		if err != nil {
			return nil, err
		}
		infl := collected.Influence(cb)
		for e := range names {
			out = append(out, ElementError{
				BlockID:      eb.ID,
				Func:         cb.Func,
				Element:      names[e],
				Extrapolated: ev[e],
				Collected:    cv[e],
				AbsRelErr:    stats.AbsRelErr(ev[e], cv[e]),
				Influence:    infl,
				Influential:  infl > trace.InfluenceThreshold,
			})
		}
	}
	return out, nil
}

// MaxInfluentialError returns the largest absolute relative error among
// elements of influential blocks — the quantity the paper reports as below
// 20 % for all its applications. It returns 0 when no influential elements
// are present.
func MaxInfluentialError(errs []ElementError) float64 {
	var max float64
	for _, e := range errs {
		if e.Influential && e.AbsRelErr > max {
			max = e.AbsRelErr
		}
	}
	return max
}

// InfluentialErrors filters the comparison down to influential blocks.
func InfluentialErrors(errs []ElementError) []ElementError {
	var out []ElementError
	for _, e := range errs {
		if e.Influential {
			out = append(out, e)
		}
	}
	return out
}
