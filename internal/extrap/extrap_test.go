package extrap

import (
	"context"

	"math"
	"testing"

	"tracex/internal/machine"
	"tracex/internal/pebil"
	"tracex/internal/stats"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

// synthSignature builds a hand-crafted signature at core count p whose
// single block's elements follow known canonical laws.
func synthSignature(p int) *trace.Signature {
	x := float64(p)
	fv := trace.FeatureVector{
		FPOps:           2e9 + 1e6*x,           // linear
		FPAdd:           1e9 + 5e5*x,           // linear
		FPMul:           1e9 + 5e5*x,           // linear
		FPDivSqrt:       0,                     // constant zero
		MemOps:          1e9 + 4e8*math.Log(x), // logarithmic
		Loads:           0.7 * (1e9 + 4e8*math.Log(x)),
		Stores:          0.3 * (1e9 + 4e8*math.Log(x)),
		BytesPerRef:     8,                         // constant
		WorkingSetBytes: 3.2e7 * math.Exp(-x/4096), // exponential decay
		ILP:             2.5,                       // constant
		HitRates:        []float64{0.875, 0.9 + 0.05*x/8192, math.Min(1, 0.9+0.1*x/8192)},
	}
	tr := trace.Trace{
		App: "synth", CoreCount: p, Rank: 0, Machine: "bluewaters", Levels: 3,
		Blocks: []trace.Block{{ID: 7, Func: "kern", File: "k.c", Line: 1, FV: fv}},
	}
	return &trace.Signature{App: "synth", CoreCount: p, Machine: "bluewaters", Traces: []trace.Trace{tr}}
}

func TestExtrapolateRecoversKnownLaws(t *testing.T) {
	inputs := []*trace.Signature{synthSignature(1024), synthSignature(2048), synthSignature(4096)}
	res, err := Extrapolate(context.Background(), inputs, 8192, Options{})
	if err != nil {
		t.Fatalf("Extrapolate: %v", err)
	}
	want := synthSignature(8192).Traces[0].Blocks[0].FV
	got := res.Signature.Traces[0].Blocks[0].FV
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"FPOps", got.FPOps, want.FPOps, 1e-6},
		{"MemOps", got.MemOps, want.MemOps, 1e-6},
		{"BytesPerRef", got.BytesPerRef, want.BytesPerRef, 1e-9},
		{"WorkingSet", got.WorkingSetBytes, want.WorkingSetBytes, 1e-6},
		{"ILP", got.ILP, want.ILP, 1e-9},
		{"HitRateL1", got.HitRates[0], want.HitRates[0], 1e-9},
		{"HitRateL2", got.HitRates[1], want.HitRates[1], 1e-6},
	}
	for _, c := range checks {
		if stats.AbsRelErr(c.got, c.want) > c.tol {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
	if res.Signature.CoreCount != 8192 {
		t.Errorf("core count = %d", res.Signature.CoreCount)
	}
}

func TestExtrapolateSelectsExpectedForms(t *testing.T) {
	inputs := []*trace.Signature{synthSignature(1024), synthSignature(2048), synthSignature(4096)}
	res, err := Extrapolate(context.Background(), inputs, 8192, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fits := res.FitsFor(7)
	expect := map[string]string{
		"bytes_per_ref":     "constant",
		"ilp":               "constant",
		"hit_rate_L1":       "constant",
		"mem_ops":           "logarithmic",
		"working_set_bytes": "exponential",
	}
	for el, form := range expect {
		f, ok := fits[el]
		if !ok {
			t.Fatalf("no fit recorded for %s", el)
		}
		if f.Form != form {
			t.Errorf("%s selected %s, want %s", el, f.Form, form)
		}
	}
	// Linear series: with three exact points both linear and log fit well,
	// but linear must win outright on exact linear data.
	if f := fits["fp_ops"]; f.Form != "linear" {
		t.Errorf("fp_ops selected %s, want linear", f.Form)
	}
}

func TestExtrapolateValidation(t *testing.T) {
	a, b, c := synthSignature(1024), synthSignature(2048), synthSignature(4096)
	if _, err := Extrapolate(context.Background(), []*trace.Signature{a, b}, 8192, Options{}); err == nil {
		t.Error("two inputs accepted with default MinInputs=3")
	}
	if _, err := Extrapolate(context.Background(), []*trace.Signature{a, b, c}, 4096, Options{}); err == nil {
		t.Error("target equal to largest input accepted")
	}
	if _, err := Extrapolate(context.Background(), []*trace.Signature{a, b, b}, 8192, Options{}); err == nil {
		t.Error("duplicate core counts accepted")
	}
	other := synthSignature(4096)
	other.App = "different"
	other.Traces[0].App = "different"
	if _, err := Extrapolate(context.Background(), []*trace.Signature{a, b, other}, 8192, Options{}); err == nil {
		t.Error("mixed applications accepted")
	}
	// Two inputs are fine when MinInputs permits.
	if _, err := Extrapolate(context.Background(), []*trace.Signature{a, b}, 8192, Options{MinInputs: 2}); err != nil {
		t.Errorf("MinInputs=2: %v", err)
	}
}

func TestExtrapolateSkipsPartialBlocks(t *testing.T) {
	a, b, c := synthSignature(1024), synthSignature(2048), synthSignature(4096)
	// Add a block that exists only at the first two counts.
	extra := a.Traces[0].Blocks[0]
	extra.ID = 99
	a.Traces[0].Blocks = append(a.Traces[0].Blocks, extra)
	b.Traces[0].Blocks = append(b.Traces[0].Blocks, extra)
	res, err := Extrapolate(context.Background(), []*trace.Signature{a, b, c}, 8192, Options{})
	if err != nil {
		t.Fatalf("Extrapolate: %v", err)
	}
	if len(res.SkippedBlocks) != 1 || res.SkippedBlocks[0] != 99 {
		t.Errorf("SkippedBlocks = %v, want [99]", res.SkippedBlocks)
	}
	if len(res.Signature.Traces[0].Blocks) != 1 {
		t.Errorf("extrapolated %d blocks, want 1", len(res.Signature.Traces[0].Blocks))
	}
}

func TestExtrapolateClampsHitRates(t *testing.T) {
	// A hit-rate series rising linearly would exceed 1 at the target;
	// the constraint clamps it and keeps monotonicity.
	mk := func(p int) *trace.Signature {
		s := synthSignature(p)
		fv := &s.Traces[0].Blocks[0].FV
		fv.HitRates = []float64{0.3, 0.3, math.Min(1, 0.5+float64(p)/8192.0)}
		return s
	}
	res, err := Extrapolate(context.Background(), []*trace.Signature{mk(1024), mk(2048), mk(4096)}, 16384, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hr := res.Signature.Traces[0].Blocks[0].FV.HitRates
	if hr[2] > 1 {
		t.Errorf("hit rate %g exceeds 1", hr[2])
	}
	for i := 1; i < len(hr); i++ {
		if hr[i] < hr[i-1] {
			t.Errorf("hit rates not monotone: %v", hr)
		}
	}
}

func TestEnforceConsistencyRepairs(t *testing.T) {
	levels := 2
	vals := make([]float64, trace.NumScalarElements+levels)
	vals[0] = 100                          // fp ops
	vals[1], vals[2], vals[3] = 80, 60, 10 // composition sums to 150 > 100
	vals[4] = 1000                         // mem ops
	vals[5], vals[6] = 900, 400            // loads+stores = 1300 > 1000
	vals[trace.NumScalarElements] = 0.9
	vals[trace.NumScalarElements+1] = 0.8 // non-monotone
	enforceConsistency(vals, levels)
	if sum := vals[1] + vals[2] + vals[3]; sum > vals[0]+1e-9 {
		t.Errorf("FP composition %g still exceeds %g", sum, vals[0])
	}
	if sum := vals[5] + vals[6]; sum > vals[4]+1e-9 {
		t.Errorf("loads+stores %g still exceed %g", sum, vals[4])
	}
	if vals[trace.NumScalarElements+1] < vals[trace.NumScalarElements] {
		t.Error("hit rates still non-monotone")
	}
}

func TestCompareAndInfluence(t *testing.T) {
	col := synthSignature(8192).Traces[0]
	ext := synthSignature(8192).Traces[0]
	ext.Blocks[0].FV.MemOps *= 1.1 // 10 % error
	errs, err := Compare(&ext, &col)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(errs) != trace.NumScalarElements+3 {
		t.Fatalf("got %d element errors", len(errs))
	}
	var memErr *ElementError
	for i := range errs {
		if errs[i].Element == "mem_ops" {
			memErr = &errs[i]
		}
	}
	if memErr == nil || math.Abs(memErr.AbsRelErr-0.1) > 1e-9 {
		t.Errorf("mem_ops error = %+v", memErr)
	}
	if !memErr.Influential {
		t.Error("single block should be influential")
	}
	if got := MaxInfluentialError(errs); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("MaxInfluentialError = %g", got)
	}
	if got := len(InfluentialErrors(errs)); got != len(errs) {
		t.Errorf("InfluentialErrors kept %d of %d", got, len(errs))
	}
}

func TestCompareMismatches(t *testing.T) {
	a := synthSignature(8192).Traces[0]
	b := synthSignature(4096).Traces[0]
	if _, err := Compare(&a, &b); err == nil {
		t.Error("core-count mismatch accepted")
	}
	c := synthSignature(8192).Traces[0]
	c.Levels = 2
	c.Blocks[0].FV.HitRates = c.Blocks[0].FV.HitRates[:2]
	if _, err := Compare(&a, &c); err == nil {
		t.Error("level mismatch accepted")
	}
}

// TestEndToEndInfluentialElementError reproduces the paper's Section IV
// claim on the full pipeline: collect signatures at three small counts with
// the instrumentation emulator, extrapolate to a larger count, collect the
// ground truth there, and verify that every element of every influential
// block lands within 20 % absolute relative error.
func TestEndToEndInfluentialElementError(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	opt := pebil.CollectorConfig{SampleRefs: 200_000, MaxWarmRefs: 1_000_000}
	bw := machine.BlueWatersP1()
	cases := []struct {
		app    *synthapp.App
		counts []int
		target int
	}{
		{synthapp.SPECFEM3D(), []int{96, 384, 1536}, 6144},
		{synthapp.UH3D(), []int{1024, 2048, 4096}, 8192},
	}
	for _, c := range cases {
		var inputs []*trace.Signature
		for _, p := range c.counts {
			sig, err := pebil.DefaultCollector().Collect(context.Background(), c.app, p, bw, []int{0}, opt)
			if err != nil {
				t.Fatalf("%s collect(%d): %v", c.app.Name(), p, err)
			}
			inputs = append(inputs, sig)
		}
		res, err := Extrapolate(context.Background(), inputs, c.target, Options{})
		if err != nil {
			t.Fatalf("%s extrapolate: %v", c.app.Name(), err)
		}
		truth, err := pebil.DefaultCollector().Collect(context.Background(), c.app, c.target, bw, []int{0}, opt)
		if err != nil {
			t.Fatalf("%s collect(%d): %v", c.app.Name(), c.target, err)
		}
		errs, err := Compare(&res.Signature.Traces[0], &truth.Traces[0])
		if err != nil {
			t.Fatalf("%s compare: %v", c.app.Name(), err)
		}
		if got := MaxInfluentialError(errs); got >= 0.20 {
			worst := ElementError{}
			for _, e := range InfluentialErrors(errs) {
				if e.AbsRelErr > worst.AbsRelErr {
					worst = e
				}
			}
			t.Errorf("%s: max influential element error %.1f%% (worst: %s/%s %g vs %g)",
				c.app.Name(), got*100, worst.Func, worst.Element, worst.Extrapolated, worst.Collected)
		}
	}
}
