package extrap

import (
	"context"
	"math"
	"testing"

	"tracex/internal/trace"
)

func TestExtrapolateIntervalsOffLeavesResultUnchanged(t *testing.T) {
	inputs := []*trace.Signature{synthSignature(1024), synthSignature(2048), synthSignature(4096)}
	res, err := Extrapolate(context.Background(), inputs, 8192, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Signature.Uncertainty != nil {
		t.Errorf("intervals off must not attach uncertainty")
	}
	for _, f := range res.Fits {
		if f.Weights != nil || f.Mean != 0 || f.Var != 0 {
			t.Errorf("intervals off must leave averaged fields zero: %+v", f)
		}
	}
}

func TestExtrapolateIntervalsAttachUncertainty(t *testing.T) {
	inputs := []*trace.Signature{synthSignature(1024), synthSignature(2048), synthSignature(4096)}
	res, err := Extrapolate(context.Background(), inputs, 8192, Options{Intervals: true})
	if err != nil {
		t.Fatal(err)
	}
	uc := res.Signature.Uncertainty
	if uc == nil {
		t.Fatal("intervals on must attach Signature.Uncertainty")
	}
	if uc.Dof < 1 {
		t.Errorf("dof %d must be >= 1", uc.Dof)
	}
	if len(uc.Blocks) != 1 || uc.Blocks[0].ID != 7 {
		t.Fatalf("uncertainty blocks %+v, want the single block 7", uc.Blocks)
	}
	vars := uc.VarsFor(7)
	if len(vars) != len(trace.ElementNames(3)) {
		t.Fatalf("got %d element variances, want %d", len(vars), len(trace.ElementNames(3)))
	}
	anyPositive := false
	for e, v := range vars {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("element %d variance %g invalid", e, v)
		}
		if v > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Error("no element carries positive predictive variance")
	}
	if uc.VarsFor(99) != nil {
		t.Error("VarsFor(unknown) must be nil")
	}

	// Averaged fits carry normalized weights and stay near the point path.
	point, err := Extrapolate(context.Background(), inputs, 8192, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf := point.FitsFor(7)
	for _, f := range res.FitsFor(7) {
		sum := 0.0
		for _, w := range f.Weights {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("element %s weights sum to %g", f.Element, sum)
		}
		// On exact canonical series the posterior concentrates and the
		// mixture mean tracks the winning form's point prediction.
		p := pf[f.Element].Extrapolated
		if p != 0 && math.Abs(f.Extrapolated-p)/math.Abs(p) > 0.05 {
			t.Errorf("element %s averaged %g far from point %g", f.Element, f.Extrapolated, p)
		}
	}
}
