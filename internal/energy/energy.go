// Package energy models the power and energy of application runs from the
// same per-block features the trace extrapolation methodology captures.
// The paper motivates its feature vector as "important for both performance
// and energy"; this package closes that loop the way the PMaC group's
// companion work does (the paper's references [23] and [24]): per-core
// power is a linear function of the block's activity rates — floating-point
// throughput and per-level memory access rates — and energy is power
// integrated over the convolved block times. A DVFS model (reference [23])
// rescales compute-bound time and dynamic power with core frequency,
// exposing the energy-optimal frequency of memory-bound phases.
package energy

import (
	"fmt"
	"math"

	"tracex/internal/machine"
	"tracex/internal/psins"
	"tracex/internal/trace"
)

// Model holds the linear power-model coefficients for one machine.
type Model struct {
	// BaseWatts is the static per-core power draw (leakage, uncore share).
	BaseWatts float64
	// FPWattsPerGops is dynamic power per 10⁹ floating-point ops/second.
	FPWattsPerGops float64
	// LevelWattsPerGaps[i] is dynamic power per 10⁹ accesses/second served
	// by cache level i; the last entry prices main-memory accesses.
	LevelWattsPerGaps []float64
	// DynamicFraction is the share of total power that scales with
	// frequency (the f·V² part); the rest is static.
	DynamicFraction float64
}

// DefaultModel returns plausible coefficients for cfg, scaled so a fully
// busy core draws on the order of 10–20 W (commodity HPC cores).
func DefaultModel(cfg machine.Config) Model {
	levels := len(cfg.Caches)
	lw := make([]float64, levels+1)
	// Deeper levels cost more energy per access: roughly the latency
	// ordering, normalized to ~0.5 W per 10⁹ L1 accesses/s.
	for i := 0; i < levels; i++ {
		lw[i] = 0.5 * cfg.CacheLatency[i] / cfg.CacheLatency[0]
	}
	lw[levels] = 0.5 * cfg.MemLatencyCycles / cfg.CacheLatency[0] * 0.25 // DRAM energy amortized over bursts
	return Model{
		BaseWatts:         5.0,
		FPWattsPerGops:    1.2,
		LevelWattsPerGaps: lw,
		DynamicFraction:   0.6,
	}
}

// Validate checks the model for a machine with the given cache level count.
func (m Model) Validate(levels int) error {
	if m.BaseWatts <= 0 || m.FPWattsPerGops < 0 {
		return fmt.Errorf("energy: non-positive base power or negative FP coefficient")
	}
	if len(m.LevelWattsPerGaps) != levels+1 {
		return fmt.Errorf("energy: %d level coefficients for %d cache levels (+memory)",
			len(m.LevelWattsPerGaps), levels)
	}
	for i, w := range m.LevelWattsPerGaps {
		if w < 0 {
			return fmt.Errorf("energy: negative level coefficient %d", i)
		}
	}
	if m.DynamicFraction < 0 || m.DynamicFraction > 1 {
		return fmt.Errorf("energy: dynamic fraction %g outside [0,1]", m.DynamicFraction)
	}
	return nil
}

// BlockEnergy is the power/energy estimate for one basic block.
type BlockEnergy struct {
	BlockID uint64
	// Seconds is the block's execution time from the convolution.
	Seconds float64
	// Watts is the average per-core power while executing the block.
	Watts float64
	// Joules is the block's energy.
	Joules float64
}

// Report is a per-task energy estimate.
type Report struct {
	// Joules is the task's total energy over its computation.
	Joules float64
	// Seconds is the total computation time.
	Seconds float64
	// AvgWatts is Joules/Seconds.
	AvgWatts float64
	// EDP is the energy-delay product (J·s).
	EDP float64
	// Blocks is the per-block decomposition.
	Blocks []BlockEnergy
}

// blockWatts computes the linear power model for one block given its
// feature vector and execution time.
func (m Model) blockWatts(fv *trace.FeatureVector, seconds float64) float64 {
	if seconds <= 0 {
		return m.BaseWatts
	}
	watts := m.BaseWatts
	watts += m.FPWattsPerGops * fv.FPOps / seconds / 1e9
	fr := make([]float64, len(fv.HitRates)+1)
	prev := 0.0
	for i, h := range fv.HitRates {
		fr[i] = math.Max(0, h-prev)
		prev = h
	}
	fr[len(fv.HitRates)] = math.Max(0, 1-prev)
	for i, f := range fr {
		watts += m.LevelWattsPerGaps[i] * f * fv.MemOps / seconds / 1e9
	}
	return watts
}

// Estimate prices a task's energy: every block's convolved execution time
// multiplied by its modeled power. The trace and computation must describe
// the same task (matching block sets).
func Estimate(tr *trace.Trace, comp *psins.Computation, m Model) (*Report, error) {
	if err := m.Validate(tr.Levels); err != nil {
		return nil, err
	}
	byID := tr.BlockByID()
	rep := &Report{}
	for _, bt := range comp.Blocks {
		blk, ok := byID[bt.BlockID]
		if !ok {
			return nil, fmt.Errorf("energy: computation references block %d absent from trace", bt.BlockID)
		}
		w := m.blockWatts(&blk.FV, bt.Seconds)
		be := BlockEnergy{
			BlockID: bt.BlockID,
			Seconds: bt.Seconds,
			Watts:   w,
			Joules:  w * bt.Seconds,
		}
		rep.Blocks = append(rep.Blocks, be)
		rep.Joules += be.Joules
		rep.Seconds += be.Seconds
	}
	if rep.Seconds > 0 {
		rep.AvgWatts = rep.Joules / rep.Seconds
		rep.EDP = rep.Joules * rep.Seconds
	}
	return rep, nil
}

// FrequencyPoint is one entry of a DVFS sweep.
type FrequencyPoint struct {
	// Scale is the frequency relative to nominal (1.0).
	Scale float64
	// Seconds, Joules and EDP are the task totals at that frequency.
	Seconds, Joules, EDP float64
}

// DVFSSweep evaluates the task at each relative frequency (the model of the
// paper's reference [23]): a block's floating-point time scales as 1/f
// while its memory time is frequency-invariant, and the dynamic share of
// power scales as f³ (frequency times voltage squared under conventional
// scaling). Memory-bound phases therefore have an energy-optimal frequency
// below nominal.
func DVFSSweep(tr *trace.Trace, comp *psins.Computation, m Model, scales []float64) ([]FrequencyPoint, error) {
	if err := m.Validate(tr.Levels); err != nil {
		return nil, err
	}
	if len(scales) == 0 {
		return nil, fmt.Errorf("energy: empty frequency sweep")
	}
	byID := tr.BlockByID()
	out := make([]FrequencyPoint, 0, len(scales))
	for _, f := range scales {
		if f <= 0 {
			return nil, fmt.Errorf("energy: non-positive frequency scale %g", f)
		}
		pt := FrequencyPoint{Scale: f}
		for _, bt := range comp.Blocks {
			blk, ok := byID[bt.BlockID]
			if !ok {
				return nil, fmt.Errorf("energy: computation references block %d absent from trace", bt.BlockID)
			}
			// Frequency rescaling: the CPU-side component stretches by
			// 1/f, the memory-side component is wall-clock invariant.
			longer, shorter := bt.MemSeconds, bt.FPSeconds/f
			if shorter > longer {
				longer, shorter = shorter, longer
			}
			secs := longer + (1-psins.OverlapFactor)*shorter
			wNominal := m.blockWatts(&blk.FV, bt.Seconds)
			w := wNominal*(1-m.DynamicFraction) + wNominal*m.DynamicFraction*f*f*f
			pt.Seconds += secs
			pt.Joules += w * secs
		}
		pt.EDP = pt.Joules * pt.Seconds
		out = append(out, pt)
	}
	return out, nil
}

// OptimalFrequency returns the sweep point with the lowest energy and the
// one with the lowest energy-delay product.
func OptimalFrequency(points []FrequencyPoint) (minEnergy, minEDP FrequencyPoint) {
	for i, p := range points {
		if i == 0 || p.Joules < minEnergy.Joules {
			minEnergy = p
		}
		if i == 0 || p.EDP < minEDP.EDP {
			minEDP = p
		}
	}
	return minEnergy, minEDP
}
