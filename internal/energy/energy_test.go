package energy

import (
	"context"

	"math"
	"sync"
	"testing"

	"tracex/internal/machine"
	"tracex/internal/multimaps"
	"tracex/internal/pebil"
	"tracex/internal/psins"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

var (
	setupOnce sync.Once
	setupTr   *trace.Trace
	setupComp *psins.Computation
	setupCfg  machine.Config
	setupErr  error
)

// testSetup builds (once) a convolved stencil3d task on the Blue Waters
// model; the individual tests only read from it.
func testSetup(t *testing.T) (*trace.Trace, *psins.Computation, machine.Config) {
	t.Helper()
	setupOnce.Do(func() {
		setupCfg = machine.BlueWatersP1()
		prof, err := multimaps.Run(context.Background(), setupCfg, multimaps.DefaultOptions(setupCfg))
		if err != nil {
			setupErr = err
			return
		}
		app := synthapp.Stencil3D()
		sig, err := pebil.DefaultCollector().Collect(context.Background(), app, 64, setupCfg, []int{0},
			pebil.CollectorConfig{SampleRefs: 60_000, MaxWarmRefs: 200_000})
		if err != nil {
			setupErr = err
			return
		}
		setupTr = &sig.Traces[0]
		setupComp, setupErr = psins.Convolve(setupTr, prof)
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return setupTr, setupComp, setupCfg
}

func TestDefaultModelValid(t *testing.T) {
	for _, name := range machine.Names() {
		cfg, _ := machine.ByName(name)
		m := DefaultModel(cfg)
		if err := m.Validate(len(cfg.Caches)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Deeper levels must cost at least as much per access.
		for i := 1; i < len(cfg.Caches); i++ {
			if m.LevelWattsPerGaps[i] < m.LevelWattsPerGaps[i-1] {
				t.Errorf("%s: level %d cheaper than level %d", name, i, i-1)
			}
		}
	}
}

func TestModelValidateRejectsBad(t *testing.T) {
	cfg := machine.BlueWatersP1()
	base := DefaultModel(cfg)
	muts := []func(*Model){
		func(m *Model) { m.BaseWatts = 0 },
		func(m *Model) { m.FPWattsPerGops = -1 },
		func(m *Model) { m.LevelWattsPerGaps = m.LevelWattsPerGaps[:2] },
		func(m *Model) { m.LevelWattsPerGaps[0] = -1 },
		func(m *Model) { m.DynamicFraction = 1.5 },
	}
	for i, mut := range muts {
		m := base
		m.LevelWattsPerGaps = append([]float64(nil), base.LevelWattsPerGaps...)
		mut(&m)
		if err := m.Validate(len(cfg.Caches)); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestEstimateBasics(t *testing.T) {
	tr, comp, cfg := testSetup(t)
	m := DefaultModel(cfg)
	rep, err := Estimate(tr, comp, m)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if len(rep.Blocks) != len(comp.Blocks) {
		t.Fatalf("got %d block energies", len(rep.Blocks))
	}
	if rep.Joules <= 0 || rep.AvgWatts <= m.BaseWatts {
		t.Errorf("implausible totals: %+v", rep)
	}
	if math.Abs(rep.EDP-rep.Joules*rep.Seconds) > 1e-9*rep.EDP {
		t.Errorf("EDP inconsistent")
	}
	// Energy decomposes exactly.
	var sum float64
	for _, b := range rep.Blocks {
		sum += b.Joules
		if b.Watts < m.BaseWatts {
			t.Errorf("block %d below base power", b.BlockID)
		}
	}
	if math.Abs(sum-rep.Joules) > 1e-9*rep.Joules {
		t.Errorf("block energies do not sum to total")
	}
}

func TestEstimateMismatchedBlocks(t *testing.T) {
	tr, comp, cfg := testSetup(t)
	orphan := *comp
	orphan.Blocks = append([]psins.BlockTime(nil), comp.Blocks...)
	orphan.Blocks[0].BlockID = 999
	if _, err := Estimate(tr, &orphan, DefaultModel(cfg)); err == nil {
		t.Error("orphan block accepted")
	}
}

func TestDVFSSweepShape(t *testing.T) {
	tr, comp, cfg := testSetup(t)
	m := DefaultModel(cfg)
	scales := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2}
	pts, err := DVFSSweep(tr, comp, m, scales)
	if err != nil {
		t.Fatalf("DVFSSweep: %v", err)
	}
	if len(pts) != len(scales) {
		t.Fatalf("got %d points", len(pts))
	}
	// Time is non-increasing in frequency.
	for i := 1; i < len(pts); i++ {
		if pts[i].Seconds > pts[i-1].Seconds+1e-12 {
			t.Errorf("time not non-increasing at f=%g", pts[i].Scale)
		}
	}
	// Nominal point matches Estimate's time closely.
	rep, err := Estimate(tr, comp, m)
	if err != nil {
		t.Fatal(err)
	}
	var nominal FrequencyPoint
	for _, p := range pts {
		if p.Scale == 1.0 {
			nominal = p
		}
	}
	if math.Abs(nominal.Seconds-rep.Seconds) > 1e-9*rep.Seconds {
		t.Errorf("nominal sweep time %g != estimate %g", nominal.Seconds, rep.Seconds)
	}
	// Energy at a very high frequency exceeds the nominal energy (cubic
	// dynamic power overwhelms the shrinking time).
	high, err := DVFSSweep(tr, comp, m, []float64{2.0})
	if err != nil {
		t.Fatal(err)
	}
	if high[0].Joules <= nominal.Joules {
		t.Errorf("2× frequency energy %g not above nominal %g", high[0].Joules, nominal.Joules)
	}
}

func TestDVFSMemoryBoundPrefersLowerFrequency(t *testing.T) {
	// A purely memory-bound task: lowering frequency cannot slow it down,
	// so the energy-optimal frequency is the lowest in the sweep.
	tr, comp, cfg := testSetup(t)
	memOnly := *comp
	memOnly.Blocks = append([]psins.BlockTime(nil), comp.Blocks...)
	for i := range memOnly.Blocks {
		memOnly.Blocks[i].FPSeconds = 0
		memOnly.Blocks[i].Seconds = memOnly.Blocks[i].MemSeconds
	}
	m := DefaultModel(cfg)
	pts, err := DVFSSweep(tr, &memOnly, m, []float64{0.5, 0.75, 1.0, 1.25})
	if err != nil {
		t.Fatal(err)
	}
	minE, _ := OptimalFrequency(pts)
	if minE.Scale != 0.5 {
		t.Errorf("memory-bound optimal frequency %g, want lowest (0.5)", minE.Scale)
	}
}

func TestDVFSSweepErrors(t *testing.T) {
	tr, comp, cfg := testSetup(t)
	m := DefaultModel(cfg)
	if _, err := DVFSSweep(tr, comp, m, nil); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := DVFSSweep(tr, comp, m, []float64{0}); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestOptimalFrequency(t *testing.T) {
	pts := []FrequencyPoint{
		{Scale: 0.5, Joules: 10, EDP: 100},
		{Scale: 1.0, Joules: 8, EDP: 40},
		{Scale: 1.5, Joules: 12, EDP: 36},
	}
	minE, minEDP := OptimalFrequency(pts)
	if minE.Scale != 1.0 {
		t.Errorf("min energy at %g, want 1.0", minE.Scale)
	}
	if minEDP.Scale != 1.5 {
		t.Errorf("min EDP at %g, want 1.5", minEDP.Scale)
	}
}
