// Reuse-distance signatures: the machine-independent form of an
// application signature. Where a Signature records the cache hit rates a
// block achieved on one simulated target hierarchy, a ReuseSignature
// records the block's LRU stack-distance distribution — for each sampled
// reference, how many distinct other cache lines were touched since the
// previous reference to its line. That distribution is a property of the
// address stream alone: any fully-associative LRU cache of C lines hits a
// reference exactly when its reuse distance is below C, and the analytical
// model in internal/cache corrects for finite associativity. One collected
// ReuseSignature therefore serves every cache geometry, where a Signature
// serves exactly one.
package trace

import (
	"fmt"
	"math"
	"math/bits"
)

// Reuse-distance histogram bucketing: distances below reuseLinearMax get
// one exact bucket each (the region where bucket width matters most —
// L1-sized caches), and each power-of-two octave above is split into
// reuseSubBuckets logarithmically-spaced sub-buckets (≤ ~3% relative
// distance error, far below the sampling noise of collection).
const (
	reuseLinearMax  = 256
	reuseSubBits    = 4
	reuseSubBuckets = 1 << reuseSubBits
)

// MaxReuseBuckets bounds ReuseBucket's range: exact buckets plus 16
// sub-buckets for every representable octave of a uint64 distance.
const MaxReuseBuckets = reuseLinearMax + (64-8)*reuseSubBuckets

// ReuseBucket maps a reuse distance (in cache lines) to its histogram
// bucket index in [0, MaxReuseBuckets).
func ReuseBucket(d uint64) int {
	if d < reuseLinearMax {
		return int(d)
	}
	o := uint(bits.Len64(d) - 1) // octave; ≥ 8 here
	sub := (d >> (o - reuseSubBits)) & (reuseSubBuckets - 1)
	return reuseLinearMax + int(o-8)*reuseSubBuckets + int(sub)
}

// ReuseBucketDistance returns the representative distance (bucket midpoint)
// of a histogram bucket, inverting ReuseBucket up to sub-bucket width.
func ReuseBucketDistance(b int) float64 {
	if b < reuseLinearMax {
		return float64(b)
	}
	o := uint(8 + (b-reuseLinearMax)/reuseSubBuckets)
	sub := (b - reuseLinearMax) % reuseSubBuckets
	width := float64(uint64(1) << (o - reuseSubBits))
	lo := float64(uint64(1)<<o) + float64(sub)*width
	return lo + (width-1)/2
}

// ReuseHistogram is one block's sampled stack-distance distribution at line
// granularity LineSize.
type ReuseHistogram struct {
	// LineSize is the cache-line granularity (bytes) distances were
	// measured at; the analytical model only serves hierarchies with a
	// matching line size.
	LineSize int `json:"line_size"`
	// Counts[b] is the number of sampled references whose reuse distance
	// fell in bucket b (see ReuseBucket). Trailing zero buckets are
	// trimmed.
	Counts []uint64 `json:"counts"`
	// Cold counts sampled references to lines never seen before (infinite
	// distance — a miss in every cache).
	Cold uint64 `json:"cold"`
	// Refs is the total number of sampled references: sum(Counts) + Cold.
	Refs uint64 `json:"refs"`
}

// Add records one sampled reference with the given reuse distance.
func (h *ReuseHistogram) Add(d uint64) {
	b := ReuseBucket(d)
	if b >= len(h.Counts) {
		h.Counts = append(h.Counts, make([]uint64, b+1-len(h.Counts))...)
	}
	h.Counts[b]++
	h.Refs++
}

// AddCold records one sampled reference to a never-seen line.
func (h *ReuseHistogram) AddCold() {
	h.Cold++
	h.Refs++
}

// Validate checks the histogram's internal consistency.
func (h *ReuseHistogram) Validate() error {
	if h.LineSize <= 0 || bits.OnesCount(uint(h.LineSize)) != 1 {
		return fmt.Errorf("trace: reuse histogram line size %d must be a positive power of two", h.LineSize)
	}
	if len(h.Counts) > MaxReuseBuckets {
		return fmt.Errorf("trace: reuse histogram has %d buckets, max %d", len(h.Counts), MaxReuseBuckets)
	}
	var sum uint64
	for _, c := range h.Counts {
		sum += c
	}
	if sum+h.Cold != h.Refs {
		return fmt.Errorf("trace: reuse histogram counts %d + cold %d != refs %d", sum, h.Cold, h.Refs)
	}
	return nil
}

// ReuseBlock is one basic block's entry in a reuse-distance signature: its
// identity and machine-independent workload scalars, plus the sampled
// distance distribution of its dominant-rank address stream. The scalar
// fields mirror the block's static description so a full per-rank trace can
// be assembled from the ReuseBlock plus a target geometry alone.
type ReuseBlock struct {
	// ID, Func, File and Line identify the block as in Block.
	ID   uint64 `json:"id"`
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
	// Refs is the dominant rank's full memory reference count;
	// WorkingSetBytes is the block's data footprint.
	Refs            float64 `json:"refs"`
	WorkingSetBytes float64 `json:"working_set_bytes"`
	// FPPerRef, AddFrac, MulFrac, DivFrac, LoadFrac, BytesPerRef and ILP
	// copy the block's static workload description.
	FPPerRef    float64 `json:"fp_per_ref"`
	AddFrac     float64 `json:"add_frac"`
	MulFrac     float64 `json:"mul_frac"`
	DivFrac     float64 `json:"div_frac"`
	LoadFrac    float64 `json:"load_frac"`
	BytesPerRef float64 `json:"bytes_per_ref"`
	ILP         float64 `json:"ilp"`
	// Hist is the block's sampled reuse-distance distribution.
	Hist ReuseHistogram `json:"hist"`
}

// Validate checks the block's plausibility.
func (b *ReuseBlock) Validate() error {
	if b.ID == 0 {
		return fmt.Errorf("trace: reuse block %q has zero ID", b.Func)
	}
	for _, v := range []float64{
		b.Refs, b.WorkingSetBytes, b.FPPerRef, b.AddFrac, b.MulFrac,
		b.DivFrac, b.LoadFrac, b.BytesPerRef, b.ILP,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("trace: reuse block %d (%s) has non-finite or negative scalar", b.ID, b.Func)
		}
	}
	if b.Refs <= 0 {
		return fmt.Errorf("trace: reuse block %d (%s) has non-positive refs", b.ID, b.Func)
	}
	if b.LoadFrac > 1 {
		return fmt.Errorf("trace: reuse block %d (%s) load fraction %g exceeds 1", b.ID, b.Func, b.LoadFrac)
	}
	if b.AddFrac+b.MulFrac+b.DivFrac > 1+1e-9 {
		return fmt.Errorf("trace: reuse block %d (%s) FP composition exceeds 1", b.ID, b.Func)
	}
	if err := b.Hist.Validate(); err != nil {
		return fmt.Errorf("trace: reuse block %d (%s): %w", b.ID, b.Func, err)
	}
	if b.Hist.Refs == 0 {
		return fmt.Errorf("trace: reuse block %d (%s) has an empty histogram", b.ID, b.Func)
	}
	return nil
}

// ReuseSignature is the machine-independent application signature: the
// dominant rank's per-block reuse-distance histograms at one core count.
// Non-dominant ranks execute the same blocks scaled by their load factor
// (exactly as in collected Signatures), so the dominant rank's histograms
// plus the application's load-class structure reconstruct every rank's
// trace for any target geometry.
type ReuseSignature struct {
	App       string `json:"app"`
	CoreCount int    `json:"core_count"`
	// LineSize is the line granularity shared by every block histogram.
	LineSize int          `json:"line_size"`
	Blocks   []ReuseBlock `json:"blocks"`
}

// Validate checks the signature and every contained block.
func (s *ReuseSignature) Validate() error {
	if s.App == "" {
		return fmt.Errorf("trace: reuse signature has empty application name")
	}
	if s.CoreCount <= 0 {
		return fmt.Errorf("trace: reuse signature has non-positive core count %d", s.CoreCount)
	}
	if s.LineSize <= 0 || bits.OnesCount(uint(s.LineSize)) != 1 {
		return fmt.Errorf("trace: reuse signature line size %d must be a positive power of two", s.LineSize)
	}
	if len(s.Blocks) == 0 {
		return fmt.Errorf("trace: reuse signature has no blocks")
	}
	var prev uint64
	for i := range s.Blocks {
		b := &s.Blocks[i]
		if i > 0 && b.ID <= prev {
			return fmt.Errorf("trace: reuse signature blocks not sorted by unique ID at index %d", i)
		}
		prev = b.ID
		if err := b.Validate(); err != nil {
			return err
		}
		if b.Hist.LineSize != s.LineSize {
			return fmt.Errorf("trace: reuse block %d line size %d differs from signature's %d",
				b.ID, b.Hist.LineSize, s.LineSize)
		}
	}
	return nil
}
