package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// Failure-injection tests: every consumer of on-disk trace data must reject
// truncated, corrupted, or physically-impossible inputs with an error
// rather than propagating garbage into predictions.

func TestLoadTruncatedJSON(t *testing.T) {
	dir := t.TempDir()
	s := sampleSignature()
	path := filepath.Join(dir, "sig.json")
	if err := Save(s, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		cut := int(float64(len(data)) * frac)
		trunc := filepath.Join(dir, "trunc.json")
		if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(trunc); err == nil {
			t.Errorf("truncation at %.0f%% accepted", frac*100)
		}
	}
}

func TestLoadTruncatedBinary(t *testing.T) {
	dir := t.TempDir()
	s := sampleSignature()
	path := filepath.Join(dir, "sig.bin")
	if err := Save(s, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.bin")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(trunc); err == nil {
		t.Error("truncated gob accepted")
	}
}

func TestLoadBitFlippedBinary(t *testing.T) {
	dir := t.TempDir()
	s := sampleSignature()
	path := filepath.Join(dir, "sig.bin")
	if err := Save(s, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle; either decoding fails or validation
	// catches an implausible value — silent acceptance of different data
	// is the only failure. (A flip may also land in padding and decode to
	// the identical signature, which is fine.)
	orig, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0xFF
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bad)
	if err != nil {
		return // rejected: good
	}
	// Accepted: must still be a *valid* signature; compare a few fields to
	// confirm it is at least self-consistent.
	if err := got.Validate(); err != nil {
		t.Errorf("Load returned an invalid signature without error: %v", err)
	}
	_ = orig
}

func TestLoadRejectsPhysicallyImpossibleValues(t *testing.T) {
	dir := t.TempDir()
	mutations := []func(*Signature){
		func(s *Signature) { s.Traces[0].Blocks[0].FV.HitRates[0] = 1.7 },
		func(s *Signature) { s.Traces[0].Blocks[0].FV.MemOps = -5 },
		func(s *Signature) { s.Traces[0].Blocks[0].FV.Loads = s.Traces[0].Blocks[0].FV.MemOps * 3 },
		func(s *Signature) { s.Traces[0].Rank = -1 },
		func(s *Signature) { s.Traces[0].Blocks[1].ID = s.Traces[0].Blocks[0].ID },
	}
	for i, mut := range mutations {
		s := sampleSignature()
		mut(s)
		// Write the raw JSON bypassing Save's validation.
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatalf("mutation %d: WriteJSON: %v", i, err)
		}
		path := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("mutation %d: impossible signature accepted", i)
		}
	}
}

func TestSaveRefusesInvalidSignature(t *testing.T) {
	s := sampleSignature()
	s.Traces[0].Blocks[0].FV.HitRates[0] = 2.0
	// JSON writer itself does not validate (it is a plain encoder), but
	// Save-dir does; file Save goes through WriteJSON without validation —
	// the Load side is the guard. Verify LoadDir's guard too.
	dir := t.TempDir()
	if err := SaveDir(s, filepath.Join(dir, "sig"), false); err == nil {
		t.Error("SaveDir accepted an invalid signature")
	}
}
