package trace

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveDirLoadDirRoundTrip(t *testing.T) {
	for _, binary := range []bool{false, true} {
		dir := filepath.Join(t.TempDir(), "sig")
		s := sampleSignature()
		if err := SaveDir(s, dir, binary); err != nil {
			t.Fatalf("SaveDir(binary=%v): %v", binary, err)
		}
		got, err := LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(binary=%v): %v", binary, err)
		}
		if got.App != s.App || got.CoreCount != s.CoreCount || len(got.Traces) != len(s.Traces) {
			t.Fatalf("round trip mismatch: %+v", got)
		}
		for i := range s.Traces {
			if got.Traces[i].Rank != s.Traces[i].Rank {
				t.Errorf("trace %d rank %d, want %d", i, got.Traces[i].Rank, s.Traces[i].Rank)
			}
			if got.Traces[i].Blocks[2].FV.MemOps != s.Traces[i].Blocks[2].FV.MemOps {
				t.Errorf("trace %d block data mismatch", i)
			}
		}
	}
}

func TestSaveDirProducesPerRankFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sig")
	s := sampleSignature()
	if err := SaveDir(s, dir, false); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// meta.json + one file per rank.
	if len(entries) != len(s.Traces)+1 {
		t.Fatalf("directory holds %d entries, want %d", len(entries), len(s.Traces)+1)
	}
	if !IsSignatureDir(dir) {
		t.Error("IsSignatureDir rejects a valid signature dir")
	}
	if IsSignatureDir(filepath.Join(dir, "rank_000000.json")) {
		t.Error("IsSignatureDir accepts a file")
	}
	if IsSignatureDir(t.TempDir()) {
		t.Error("IsSignatureDir accepts a dir without meta.json")
	}
}

func TestListRanksAndLoadRank(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sig")
	s := sampleSignature()
	if err := SaveDir(s, dir, true); err != nil {
		t.Fatal(err)
	}
	ranks, err := ListRanks(dir)
	if err != nil {
		t.Fatalf("ListRanks: %v", err)
	}
	if len(ranks) != len(s.Traces) {
		t.Fatalf("ListRanks = %v", ranks)
	}
	tr, err := LoadRank(dir, ranks[1])
	if err != nil {
		t.Fatalf("LoadRank: %v", err)
	}
	if tr.Rank != ranks[1] {
		t.Errorf("loaded rank %d, want %d", tr.Rank, ranks[1])
	}
	if _, err := LoadRank(dir, 999); err == nil {
		t.Error("missing rank accepted")
	}
}

func TestLoadDirRejectsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sig")
	s := sampleSignature()
	if err := SaveDir(s, dir, false); err != nil {
		t.Fatal(err)
	}
	// Missing rank file.
	if err := os.Remove(filepath.Join(dir, rankFile(1, false))); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("missing rank file accepted")
	}
	// Corrupt meta.
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("corrupt meta accepted")
	}
	// Missing directory entirely.
	if _, err := LoadDir(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing directory accepted")
	}
	// Rank file with mismatched metadata.
	dir2 := filepath.Join(t.TempDir(), "sig2")
	if err := SaveDir(s, dir2, false); err != nil {
		t.Fatal(err)
	}
	other := sampleSignature()
	other.App = "other"
	for i := range other.Traces {
		other.Traces[i].App = "other"
	}
	one := &Signature{App: "other", CoreCount: other.CoreCount, Machine: other.Machine,
		Traces: []Trace{other.Traces[0]}}
	if err := Save(one, filepath.Join(dir2, rankFile(0, false))); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir2); err == nil {
		t.Error("mismatched rank metadata accepted")
	}
}

func TestSaveDirRejectsInvalidSignature(t *testing.T) {
	if err := SaveDir(&Signature{}, t.TempDir(), false); err == nil {
		t.Error("invalid signature accepted")
	}
}
