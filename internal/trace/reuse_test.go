package trace

import (
	"math"
	"testing"
)

func TestReuseBucketExactBelowLinearMax(t *testing.T) {
	for d := uint64(0); d < reuseLinearMax; d++ {
		if b := ReuseBucket(d); b != int(d) {
			t.Fatalf("ReuseBucket(%d) = %d, want exact", d, b)
		}
		if got := ReuseBucketDistance(int(d)); got != float64(d) {
			t.Fatalf("ReuseBucketDistance(%d) = %g, want exact", d, got)
		}
	}
}

func TestReuseBucketMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, d := range []uint64{
		0, 1, 255, 256, 257, 300, 511, 512, 1000, 4096, 1 << 20, 1 << 40, math.MaxUint64,
	} {
		b := ReuseBucket(d)
		if b < prev {
			t.Fatalf("ReuseBucket(%d) = %d below previous %d", d, b, prev)
		}
		if b >= MaxReuseBuckets {
			t.Fatalf("ReuseBucket(%d) = %d out of range (max %d)", d, b, MaxReuseBuckets)
		}
		prev = b
	}
	if ReuseBucket(math.MaxUint64) != MaxReuseBuckets-1 {
		t.Errorf("max distance bucket = %d, want %d", ReuseBucket(math.MaxUint64), MaxReuseBuckets-1)
	}
}

func TestReuseBucketMidpointContained(t *testing.T) {
	// Each bucket's representative distance must map back to the bucket,
	// and the relative quantization error of the log-linear range is
	// bounded by half a sub-bucket width (≤ ~3.2 %).
	seen := map[int]bool{}
	for exp := 0; exp < 63; exp++ {
		for _, off := range []uint64{0, 1, (1 << exp) / 3, (1 << exp) / 2, (1 << exp) - 1} {
			d := (uint64(1) << exp) + off
			b := ReuseBucket(d)
			seen[b] = true
			mid := ReuseBucketDistance(b)
			if ReuseBucket(uint64(mid)) != b {
				t.Fatalf("midpoint %g of bucket %d (from d=%d) maps to bucket %d", mid, b, d, ReuseBucket(uint64(mid)))
			}
			if rel := math.Abs(mid-float64(d)) / float64(d); d >= reuseLinearMax && rel > 0.035 {
				t.Fatalf("bucket %d: midpoint %g vs distance %d: relative error %.3f", b, mid, d, rel)
			}
		}
	}
}

func TestReuseHistogramAddValidate(t *testing.T) {
	h := ReuseHistogram{LineSize: 64}
	h.Add(3)
	h.Add(3)
	h.Add(1 << 20)
	h.AddCold()
	if err := h.Validate(); err != nil {
		t.Fatalf("valid histogram rejected: %v", err)
	}
	if h.Refs != 4 || h.Cold != 1 {
		t.Errorf("accounting: refs=%d cold=%d", h.Refs, h.Cold)
	}
	if h.Counts[3] != 2 {
		t.Errorf("bucket 3 = %d, want 2", h.Counts[3])
	}
	bad := h
	bad.Refs++
	if err := bad.Validate(); err == nil {
		t.Error("unbalanced histogram accepted")
	}
	bad = h
	bad.LineSize = 48
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
}

func TestReuseSignatureValidate(t *testing.T) {
	mk := func() ReuseSignature {
		h := ReuseHistogram{LineSize: 64}
		h.Add(1)
		h.AddCold()
		return ReuseSignature{
			App: "x", CoreCount: 4, LineSize: 64,
			Blocks: []ReuseBlock{
				{ID: 1, Func: "a", Refs: 10, BytesPerRef: 8, LoadFrac: 0.5, ILP: 1, Hist: h},
				{ID: 2, Func: "b", Refs: 10, BytesPerRef: 8, LoadFrac: 0.5, ILP: 1, Hist: h},
			},
		}
	}
	good := mk()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	rs := mk()
	rs.Blocks[1].ID = 1
	if err := rs.Validate(); err == nil {
		t.Error("duplicate block IDs accepted")
	}
	rs = mk()
	rs.Blocks[0], rs.Blocks[1] = rs.Blocks[1], rs.Blocks[0]
	if err := rs.Validate(); err == nil {
		t.Error("unsorted blocks accepted")
	}
	rs = mk()
	rs.Blocks[0].Hist.LineSize = 128
	if err := rs.Validate(); err == nil {
		t.Error("line-size mismatch accepted")
	}
	rs = mk()
	rs.Blocks[0].LoadFrac = 1.5
	if err := rs.Validate(); err == nil {
		t.Error("LoadFrac > 1 accepted")
	}
}
