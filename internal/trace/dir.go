package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Directory layout: the paper's application signature is literally a set of
// trace files, one per MPI task (at 1024 cores, 1024 files). SaveDir/LoadDir
// store a Signature the same way — a meta.json with the run identity plus
// one rank_<NNNNNN>.json (or .bin) per contained trace — so per-rank files
// can be produced, inspected and consumed independently, exactly like the
// PMaC tooling's trace sets.

// dirMeta is the signature-level metadata file.
type dirMeta struct {
	App       string `json:"app"`
	CoreCount int    `json:"core_count"`
	Machine   string `json:"machine"`
	Binary    bool   `json:"binary"`
	Ranks     []int  `json:"ranks"`
}

const metaFile = "meta.json"

// rankFile names the per-rank trace file.
func rankFile(rank int, binary bool) string {
	ext := ".json"
	if binary {
		ext = ".bin"
	}
	return fmt.Sprintf("rank_%06d%s", rank, ext)
}

// SaveDir writes the signature as a directory of per-rank trace files. The
// directory is created if missing; existing rank files are overwritten.
// Binary selects the compact gob encoding for the rank files.
func SaveDir(s *Signature, dir string, binary bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	meta := dirMeta{App: s.App, CoreCount: s.CoreCount, Machine: s.Machine, Binary: binary}
	for i := range s.Traces {
		tr := &s.Traces[i]
		meta.Ranks = append(meta.Ranks, tr.Rank)
		// Wrap the single trace in a one-trace signature so the rank files
		// reuse the standard serialization (and stay independently
		// loadable with Load).
		one := &Signature{App: s.App, CoreCount: s.CoreCount, Machine: s.Machine,
			Traces: []Trace{*tr}}
		path := filepath.Join(dir, rankFile(tr.Rank, binary))
		if err := Save(one, path); err != nil {
			return err
		}
	}
	sort.Ints(meta.Ranks)
	f, err := os.Create(filepath.Join(dir, metaFile))
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("trace: writing %s: %w", metaFile, err)
	}
	return f.Close()
}

// LoadDir reads a signature directory written by SaveDir, reassembling the
// per-rank trace files into one Signature (traces sorted by rank).
func LoadDir(dir string) (*Signature, error) {
	f, err := os.Open(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var meta dirMeta
	err = json.NewDecoder(f).Decode(&meta)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("trace: decoding %s: %w", metaFile, err)
	}
	if len(meta.Ranks) == 0 {
		return nil, fmt.Errorf("trace: signature directory %s lists no ranks", dir)
	}
	sig := &Signature{App: meta.App, CoreCount: meta.CoreCount, Machine: meta.Machine}
	for _, rank := range meta.Ranks {
		one, err := Load(filepath.Join(dir, rankFile(rank, meta.Binary)))
		if err != nil {
			return nil, fmt.Errorf("trace: rank %d: %w", rank, err)
		}
		if len(one.Traces) != 1 {
			return nil, fmt.Errorf("trace: rank file for %d holds %d traces", rank, len(one.Traces))
		}
		if one.Traces[0].Rank != rank {
			return nil, fmt.Errorf("trace: rank file %d contains trace for rank %d", rank, one.Traces[0].Rank)
		}
		if one.App != meta.App || one.CoreCount != meta.CoreCount || one.Machine != meta.Machine {
			return nil, fmt.Errorf("trace: rank %d metadata disagrees with %s", rank, metaFile)
		}
		sig.Traces = append(sig.Traces, one.Traces[0])
	}
	if err := sig.Validate(); err != nil {
		return nil, err
	}
	return sig, nil
}

// ListRanks returns the ranks available in a signature directory without
// loading the trace files.
func ListRanks(dir string) ([]int, error) {
	f, err := os.Open(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var meta dirMeta
	if err := json.NewDecoder(f).Decode(&meta); err != nil {
		return nil, fmt.Errorf("trace: decoding %s: %w", metaFile, err)
	}
	return meta.Ranks, nil
}

// LoadRank loads one rank's trace from a signature directory.
func LoadRank(dir string, rank int) (*Trace, error) {
	f, err := os.Open(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var meta dirMeta
	err = json.NewDecoder(f).Decode(&meta)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("trace: decoding %s: %w", metaFile, err)
	}
	one, err := Load(filepath.Join(dir, rankFile(rank, meta.Binary)))
	if err != nil {
		return nil, err
	}
	if len(one.Traces) != 1 || one.Traces[0].Rank != rank {
		return nil, fmt.Errorf("trace: malformed rank file for rank %d", rank)
	}
	return &one.Traces[0], nil
}

// IsSignatureDir reports whether path looks like a signature directory
// (exists and contains meta.json).
func IsSignatureDir(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, metaFile))
	return err == nil
}
