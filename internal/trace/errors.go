package trace

import "errors"

// Sentinel errors shared across the pipeline. Producers wrap them with
// fmt.Errorf("...: %w", ...) so callers can branch with errors.Is while the
// message keeps its context; the root tracex package re-exports them.
var (
	// ErrNoTraces reports a signature with no trace files.
	ErrNoTraces = errors.New("signature has no traces")
	// ErrRankOutOfRange reports an MPI rank outside [0, cores).
	ErrRankOutOfRange = errors.New("rank out of range")
	// ErrMachineMismatch reports pipeline artifacts (signatures, profiles)
	// that describe different applications or target machines.
	ErrMachineMismatch = errors.New("application/machine mismatch")
)
