// Package trace defines the application-signature data model of the PMaC
// framework: per-basic-block feature vectors, per-MPI-task trace files, and
// whole-application signatures, together with JSON and compact binary
// serialization.
//
// An application signature (paper §III-A) is the set of trace files from all
// MPI ranks of a run at one core count. Each trace file carries, for every
// basic block the task executed: the block's source location, floating-point
// operation counts and composition, memory operation counts (loads/stores),
// reference sizes, the simulated cache hit rates for the target system, the
// block's working-set size, and its instruction-level parallelism. These are
// the "feature vector" elements that the extrapolation methodology models
// one at a time.
package trace

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// FeatureVector holds the measured features of one basic block on one MPI
// task (paper §III-B). Count-valued fields are float64 because extrapolated
// vectors hold fractional model outputs.
type FeatureVector struct {
	// FPOps is the total number of floating-point operations executed.
	FPOps float64 `json:"fp_ops"`
	// FPAdd, FPMul and FPDivSqrt break FPOps into add/sub, multiply and
	// divide/sqrt classes ("composition of floating point work").
	FPAdd     float64 `json:"fp_add"`
	FPMul     float64 `json:"fp_mul"`
	FPDivSqrt float64 `json:"fp_divsqrt"`
	// MemOps is the total number of memory references.
	MemOps float64 `json:"mem_ops"`
	// Loads and Stores split MemOps by direction.
	Loads  float64 `json:"loads"`
	Stores float64 `json:"stores"`
	// BytesPerRef is the average payload size of one reference in bytes.
	BytesPerRef float64 `json:"bytes_per_ref"`
	// HitRates are the simulated cumulative cache hit rates of the block's
	// references on the target system, one entry per cache level, in [0,1].
	HitRates []float64 `json:"hit_rates"`
	// WorkingSetBytes is the block's data footprint.
	WorkingSetBytes float64 `json:"working_set_bytes"`
	// ILP is the block's instruction-level parallelism (independent
	// operations available per cycle).
	ILP float64 `json:"ilp"`
	// PrefetchPerRef is the hardware-prefetcher traffic observed while
	// simulating the block: lines installed by the prefetcher per demand
	// reference. Zero on machines without a prefetcher.
	PrefetchPerRef float64 `json:"prefetch_per_ref"`
}

// NumScalarElements is the number of feature-vector elements that precede
// the per-level hit rates in the flattened element ordering.
const NumScalarElements = 11

// ElementNames returns the names of the flattened feature-vector elements
// for a target system with the given number of cache levels. The ordering
// matches Values and SetValues.
func ElementNames(levels int) []string {
	names := []string{
		"fp_ops", "fp_add", "fp_mul", "fp_divsqrt",
		"mem_ops", "loads", "stores", "bytes_per_ref",
		"working_set_bytes", "ilp", "prefetch_per_ref",
	}
	for i := 0; i < levels; i++ {
		names = append(names, fmt.Sprintf("hit_rate_L%d", i+1))
	}
	return names
}

// Values flattens the feature vector into the canonical element ordering.
// The vector's HitRates must have exactly `levels` entries.
func (fv *FeatureVector) Values(levels int) ([]float64, error) {
	if len(fv.HitRates) != levels {
		return nil, fmt.Errorf("trace: vector has %d hit rates, want %d", len(fv.HitRates), levels)
	}
	vals := make([]float64, 0, NumScalarElements+levels)
	vals = append(vals,
		fv.FPOps, fv.FPAdd, fv.FPMul, fv.FPDivSqrt,
		fv.MemOps, fv.Loads, fv.Stores, fv.BytesPerRef,
		fv.WorkingSetBytes, fv.ILP, fv.PrefetchPerRef)
	vals = append(vals, fv.HitRates...)
	return vals, nil
}

// FromValues reconstructs a feature vector from the canonical flattened
// element ordering.
func FromValues(vals []float64, levels int) (FeatureVector, error) {
	if len(vals) != NumScalarElements+levels {
		return FeatureVector{}, fmt.Errorf("trace: %d values for %d levels, want %d",
			len(vals), levels, NumScalarElements+levels)
	}
	fv := FeatureVector{
		FPOps: vals[0], FPAdd: vals[1], FPMul: vals[2], FPDivSqrt: vals[3],
		MemOps: vals[4], Loads: vals[5], Stores: vals[6], BytesPerRef: vals[7],
		WorkingSetBytes: vals[8], ILP: vals[9], PrefetchPerRef: vals[10],
		HitRates: append([]float64(nil), vals[NumScalarElements:]...),
	}
	return fv, nil
}

// Constraint bounds one flattened element's legal range; extrapolated
// values are clamped into it.
type Constraint struct {
	Min, Max float64
}

// ElementConstraints returns the physical bounds of each flattened element:
// counts, sizes and ILP are non-negative and unbounded above; hit rates lie
// in [0,1].
func ElementConstraints(levels int) []Constraint {
	cons := make([]Constraint, 0, NumScalarElements+levels)
	for i := 0; i < NumScalarElements; i++ {
		cons = append(cons, Constraint{Min: 0, Max: math.Inf(1)})
	}
	for i := 0; i < levels; i++ {
		cons = append(cons, Constraint{Min: 0, Max: 1})
	}
	return cons
}

// Validate checks the vector's physical plausibility for a target system
// with the given number of cache levels.
func (fv *FeatureVector) Validate(levels int) error {
	vals, err := fv.Values(levels)
	if err != nil {
		return err
	}
	names := ElementNames(levels)
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("trace: element %s is non-finite", names[i])
		}
		if v < 0 {
			return fmt.Errorf("trace: element %s is negative (%g)", names[i], v)
		}
	}
	for i, h := range fv.HitRates {
		if h > 1 {
			return fmt.Errorf("trace: hit rate L%d = %g exceeds 1", i+1, h)
		}
		if i > 0 && h < fv.HitRates[i-1]-1e-9 {
			return fmt.Errorf("trace: cumulative hit rates not monotone at L%d", i+1)
		}
	}
	if fv.Loads+fv.Stores > fv.MemOps*(1+1e-9)+1e-9 {
		return fmt.Errorf("trace: loads+stores (%g) exceed mem ops (%g)", fv.Loads+fv.Stores, fv.MemOps)
	}
	if fv.FPAdd+fv.FPMul+fv.FPDivSqrt > fv.FPOps*(1+1e-9)+1e-9 {
		return fmt.Errorf("trace: FP composition (%g) exceeds FP ops (%g)",
			fv.FPAdd+fv.FPMul+fv.FPDivSqrt, fv.FPOps)
	}
	return nil
}

// Block is one basic block's entry in a trace file: its identity, source
// location, and measured feature vector.
type Block struct {
	// ID is the basic-block identifier, stable across core counts (in the
	// real toolchain it is derived from the executable; here from the
	// synthetic application's kernel table).
	ID uint64 `json:"id"`
	// Func, File and Line locate the block in the source code.
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
	// FV is the block's measured feature vector.
	FV FeatureVector `json:"fv"`
}

// Trace is the summary trace file of one MPI task at one core count.
type Trace struct {
	// App is the application name.
	App string `json:"app"`
	// CoreCount is the total number of MPI tasks in the run.
	CoreCount int `json:"core_count"`
	// Rank is this task's MPI rank.
	Rank int `json:"rank"`
	// Machine names the target system whose cache structure was simulated.
	Machine string `json:"machine"`
	// Levels is the number of cache levels in the simulated target.
	Levels int `json:"levels"`
	// Blocks lists the basic blocks the task executed, sorted by ID.
	Blocks []Block `json:"blocks"`
}

// Validate checks trace consistency.
func (t *Trace) Validate() error {
	if t.App == "" {
		return fmt.Errorf("trace: empty application name")
	}
	if t.CoreCount <= 0 {
		return fmt.Errorf("trace: non-positive core count %d", t.CoreCount)
	}
	if t.Rank < 0 || t.Rank >= t.CoreCount {
		return fmt.Errorf("trace: %w: rank %d of %d cores", ErrRankOutOfRange, t.Rank, t.CoreCount)
	}
	if t.Levels <= 0 {
		return fmt.Errorf("trace: non-positive level count %d", t.Levels)
	}
	seen := make(map[uint64]bool, len(t.Blocks))
	for i := range t.Blocks {
		b := &t.Blocks[i]
		if seen[b.ID] {
			return fmt.Errorf("trace: duplicate block id %d", b.ID)
		}
		seen[b.ID] = true
		if err := b.FV.Validate(t.Levels); err != nil {
			return fmt.Errorf("trace: block %d (%s): %w", b.ID, b.Func, err)
		}
	}
	return nil
}

// SortBlocks orders the trace's blocks by ID, the canonical on-disk order.
func (t *Trace) SortBlocks() {
	sort.Slice(t.Blocks, func(i, j int) bool { return t.Blocks[i].ID < t.Blocks[j].ID })
}

// BlockByID returns a lookup map over the trace's blocks. The pointers
// alias the trace's storage.
func (t *Trace) BlockByID() map[uint64]*Block {
	m := make(map[uint64]*Block, len(t.Blocks))
	for i := range t.Blocks {
		m[t.Blocks[i].ID] = &t.Blocks[i]
	}
	return m
}

// TotalMemOps sums memory operations over all blocks.
func (t *Trace) TotalMemOps() float64 {
	var s float64
	for i := range t.Blocks {
		s += t.Blocks[i].FV.MemOps
	}
	return s
}

// TotalFPOps sums floating-point operations over all blocks.
func (t *Trace) TotalFPOps() float64 {
	var s float64
	for i := range t.Blocks {
		s += t.Blocks[i].FV.FPOps
	}
	return s
}

// Influence returns a block's influence ratio: its share of the task's
// memory operations, or of floating-point operations for blocks with no
// memory traffic (paper §IV). Blocks above the InfluenceThreshold are the
// ones whose extrapolation accuracy matters.
func (t *Trace) Influence(b *Block) float64 {
	if b.FV.MemOps > 0 {
		total := t.TotalMemOps()
		if total == 0 {
			return 0
		}
		return b.FV.MemOps / total
	}
	total := t.TotalFPOps()
	if total == 0 {
		return 0
	}
	return b.FV.FPOps / total
}

// InfluenceThreshold is the paper's cutoff: blocks contributing more than
// 0.1 % of the task's memory (or floating-point) operations are influential.
const InfluenceThreshold = 0.001

// Signature is an application signature: the collection of trace files from
// the MPI ranks of one run against one target machine.
type Signature struct {
	App       string  `json:"app"`
	CoreCount int     `json:"core_count"`
	Machine   string  `json:"machine"`
	Traces    []Trace `json:"traces"`
	// Uncertainty carries per-element predictive variances when the
	// signature was synthesized by an uncertainty-aware extrapolation
	// (extrap.Options.Intervals); nil for collected signatures. It rides
	// the JSON encoding (omitted when absent, so collected signatures
	// encode exactly as before) but not the binary store codec: stored
	// signatures are collected ones, which never carry it.
	Uncertainty *SignatureUncertainty `json:"uncertainty,omitempty"`
}

// BlockUncertainty holds one block's per-element predictive variances at
// the signature's core count, indexed like ElementNames.
type BlockUncertainty struct {
	ID   uint64    `json:"id"`
	Vars []float64 `json:"vars"`
}

// SignatureUncertainty summarizes the posterior predictive uncertainty of
// an extrapolated signature: per-block element variances plus the
// Student-t degrees of freedom the variances were estimated with (small
// input series ⇒ small dof ⇒ heavy tails).
type SignatureUncertainty struct {
	// Dof is the residual degrees of freedom for interval quantiles
	// (≥ 1).
	Dof int `json:"dof"`
	// Blocks holds per-block element variances, ascending by block ID.
	Blocks []BlockUncertainty `json:"blocks"`
}

// VarsFor returns the element variances of one block, or nil when the
// block is unknown.
func (u *SignatureUncertainty) VarsFor(id uint64) []float64 {
	if u == nil {
		return nil
	}
	for i := range u.Blocks {
		if u.Blocks[i].ID == id {
			return u.Blocks[i].Vars
		}
	}
	return nil
}

// Validate checks the signature and every contained trace.
func (s *Signature) Validate() error {
	if len(s.Traces) == 0 {
		return fmt.Errorf("trace: %w", ErrNoTraces)
	}
	for i := range s.Traces {
		tr := &s.Traces[i]
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("trace: signature trace %d: %w", i, err)
		}
		if tr.App != s.App || tr.CoreCount != s.CoreCount || tr.Machine != s.Machine {
			return fmt.Errorf("trace: trace %d metadata (%s,%d,%s) disagrees with signature (%s,%d,%s)",
				i, tr.App, tr.CoreCount, tr.Machine, s.App, s.CoreCount, s.Machine)
		}
	}
	return nil
}

// DominantTrace returns the trace of the most computationally demanding
// task: the one with the greatest memory-plus-FP operation weight. This is
// the task the paper extrapolates (identified there by a lightweight MPI
// profiling library). It returns nil for an empty signature.
func (s *Signature) DominantTrace() *Trace {
	var best *Trace
	var bestW float64
	for i := range s.Traces {
		tr := &s.Traces[i]
		w := tr.TotalMemOps() + tr.TotalFPOps()
		if best == nil || w > bestW {
			best, bestW = tr, w
		}
	}
	return best
}

// WriteJSON serializes the signature as indented JSON.
func (s *Signature) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON deserializes and validates a signature.
func ReadJSON(r io.Reader) (*Signature, error) {
	var s Signature
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("trace: decoding signature: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteBinary serializes the signature in the compact binary (gob) format
// used for large trace sets.
func (s *Signature) WriteBinary(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s)
}

// ReadBinary deserializes and validates a binary signature.
func ReadBinary(r io.Reader) (*Signature, error) {
	var s Signature
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("trace: decoding binary signature: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Save writes the signature to path, choosing the binary format when the
// filename ends in ".bin" and JSON otherwise.
func Save(s *Signature, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if isBinaryPath(path) {
		err = s.WriteBinary(f)
	} else {
		err = s.WriteJSON(f)
	}
	if err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a signature from path, choosing the format by extension as in
// Save.
func Load(path string) (*Signature, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if isBinaryPath(path) {
		return ReadBinary(f)
	}
	return ReadJSON(f)
}

func isBinaryPath(path string) bool {
	return len(path) > 4 && path[len(path)-4:] == ".bin"
}
