package trace

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func sampleFV(levels int) FeatureVector {
	hr := make([]float64, levels)
	for i := range hr {
		hr[i] = 0.8 + 0.05*float64(i)
	}
	return FeatureVector{
		FPOps: 1000, FPAdd: 500, FPMul: 450, FPDivSqrt: 50,
		MemOps: 2000, Loads: 1500, Stores: 500, BytesPerRef: 8,
		WorkingSetBytes: 1 << 20, ILP: 2.5,
		HitRates: hr,
	}
}

func sampleTrace() *Trace {
	tr := &Trace{App: "demo", CoreCount: 128, Rank: 3, Machine: "bluewaters", Levels: 3}
	for i := 0; i < 5; i++ {
		fv := sampleFV(3)
		fv.MemOps = float64(1000 * (i + 1))
		fv.Loads = fv.MemOps * 0.75
		fv.Stores = fv.MemOps * 0.25
		tr.Blocks = append(tr.Blocks, Block{
			ID: uint64(i + 1), Func: "kernel", File: "demo.f90", Line: 10 * (i + 1), FV: fv,
		})
	}
	return tr
}

func sampleSignature() *Signature {
	s := &Signature{App: "demo", CoreCount: 128, Machine: "bluewaters"}
	for r := 0; r < 3; r++ {
		tr := sampleTrace()
		tr.Rank = r
		// Rank 1 is the heavyweight.
		if r == 1 {
			for i := range tr.Blocks {
				tr.Blocks[i].FV.MemOps *= 3
				tr.Blocks[i].FV.Loads *= 3
				tr.Blocks[i].FV.Stores *= 3
			}
		}
		s.Traces = append(s.Traces, *tr)
	}
	return s
}

func TestValuesRoundTrip(t *testing.T) {
	fv := sampleFV(3)
	vals, err := fv.Values(3)
	if err != nil {
		t.Fatalf("Values: %v", err)
	}
	if len(vals) != NumScalarElements+3 {
		t.Fatalf("got %d values", len(vals))
	}
	back, err := FromValues(vals, 3)
	if err != nil {
		t.Fatalf("FromValues: %v", err)
	}
	if back.FPOps != fv.FPOps || back.MemOps != fv.MemOps || back.ILP != fv.ILP {
		t.Errorf("round trip mismatch: %+v vs %+v", back, fv)
	}
	for i := range fv.HitRates {
		if back.HitRates[i] != fv.HitRates[i] {
			t.Errorf("hit rate %d mismatch", i)
		}
	}
}

func TestValuesArityErrors(t *testing.T) {
	fv := sampleFV(3)
	if _, err := fv.Values(2); err == nil {
		t.Error("wrong level count accepted")
	}
	if _, err := FromValues(make([]float64, 5), 3); err == nil {
		t.Error("short value slice accepted")
	}
}

func TestElementNamesAndConstraints(t *testing.T) {
	names := ElementNames(3)
	if len(names) != NumScalarElements+3 {
		t.Fatalf("got %d names", len(names))
	}
	if names[0] != "fp_ops" || names[NumScalarElements] != "hit_rate_L1" {
		t.Errorf("unexpected names: %v", names)
	}
	cons := ElementConstraints(3)
	if len(cons) != len(names) {
		t.Fatalf("constraints/names length mismatch")
	}
	for i := 0; i < NumScalarElements; i++ {
		if cons[i].Min != 0 || !math.IsInf(cons[i].Max, 1) {
			t.Errorf("scalar constraint %d = %+v", i, cons[i])
		}
	}
	for i := NumScalarElements; i < len(cons); i++ {
		if cons[i].Min != 0 || cons[i].Max != 1 {
			t.Errorf("hit-rate constraint %d = %+v", i, cons[i])
		}
	}
}

func TestFeatureVectorValidate(t *testing.T) {
	fv := sampleFV(3)
	if err := fv.Validate(3); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
	mutations := []func(*FeatureVector){
		func(f *FeatureVector) { f.FPOps = math.NaN() },
		func(f *FeatureVector) { f.MemOps = -1 },
		func(f *FeatureVector) { f.HitRates[0] = 1.5 },
		func(f *FeatureVector) { f.HitRates = []float64{0.9, 0.5, 0.95} }, // non-monotone
		func(f *FeatureVector) { f.Loads = f.MemOps * 2 },
		func(f *FeatureVector) { f.FPAdd = f.FPOps * 2 },
		func(f *FeatureVector) { f.WorkingSetBytes = math.Inf(1) },
	}
	for i, mut := range mutations {
		f := sampleFV(3)
		f.HitRates = append([]float64(nil), f.HitRates...)
		mut(&f)
		if err := f.Validate(3); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTraceValidate(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := sampleTrace()
	bad.App = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty app accepted")
	}
	bad = sampleTrace()
	bad.Rank = bad.CoreCount
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range rank accepted")
	}
	bad = sampleTrace()
	bad.Blocks[1].ID = bad.Blocks[0].ID
	if err := bad.Validate(); err == nil {
		t.Error("duplicate block ID accepted")
	}
	bad = sampleTrace()
	bad.Levels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero levels accepted")
	}
}

func TestSortBlocksAndLookup(t *testing.T) {
	tr := sampleTrace()
	tr.Blocks[0], tr.Blocks[4] = tr.Blocks[4], tr.Blocks[0]
	tr.SortBlocks()
	for i := 1; i < len(tr.Blocks); i++ {
		if tr.Blocks[i].ID < tr.Blocks[i-1].ID {
			t.Fatal("blocks not sorted")
		}
	}
	m := tr.BlockByID()
	if len(m) != 5 {
		t.Fatalf("lookup has %d entries", len(m))
	}
	if m[3].ID != 3 {
		t.Errorf("lookup[3].ID = %d", m[3].ID)
	}
	// Pointers alias the trace: mutating through the map is visible.
	m[3].FV.FPOps = 777
	if tr.BlockByID()[3].FV.FPOps != 777 {
		t.Error("BlockByID does not alias trace storage")
	}
}

func TestTotalsAndInfluence(t *testing.T) {
	tr := sampleTrace()
	// MemOps are 1000..5000: total 15000.
	if got := tr.TotalMemOps(); got != 15000 {
		t.Errorf("TotalMemOps = %g", got)
	}
	if got := tr.TotalFPOps(); got != 5000 {
		t.Errorf("TotalFPOps = %g", got)
	}
	inf := tr.Influence(&tr.Blocks[4])
	if math.Abs(inf-5000.0/15000) > 1e-12 {
		t.Errorf("influence = %g, want 1/3", inf)
	}
	// A block with no memory ops falls back to FP share.
	fpOnly := sampleFV(3)
	fpOnly.MemOps, fpOnly.Loads, fpOnly.Stores = 0, 0, 0
	tr.Blocks = append(tr.Blocks, Block{ID: 99, FV: fpOnly})
	if got := tr.Influence(&tr.Blocks[5]); math.Abs(got-1000.0/6000) > 1e-12 {
		t.Errorf("FP fallback influence = %g, want 1/6", got)
	}
}

func TestInfluenceEmptyTrace(t *testing.T) {
	tr := &Trace{App: "x", CoreCount: 1, Levels: 1}
	b := Block{ID: 1}
	if got := tr.Influence(&b); got != 0 {
		t.Errorf("influence on empty trace = %g", got)
	}
}

func TestSignatureValidate(t *testing.T) {
	s := sampleSignature()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	bad := sampleSignature()
	bad.Traces = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty signature accepted")
	}
	bad = sampleSignature()
	bad.Traces[1].CoreCount = 64
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent metadata accepted")
	}
}

func TestDominantTrace(t *testing.T) {
	s := sampleSignature()
	d := s.DominantTrace()
	if d == nil || d.Rank != 1 {
		t.Fatalf("dominant rank = %v, want 1", d)
	}
	empty := &Signature{}
	if empty.DominantTrace() != nil {
		t.Error("empty signature should have nil dominant trace")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := sampleSignature()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.App != s.App || len(got.Traces) != len(s.Traces) {
		t.Errorf("round trip mismatch")
	}
	if got.Traces[1].Blocks[2].FV.MemOps != s.Traces[1].Blocks[2].FV.MemOps {
		t.Errorf("block data mismatch")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := sampleSignature()
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if got.App != s.App || got.Traces[1].Blocks[2].FV.MemOps != s.Traces[1].Blocks[2].FV.MemOps {
		t.Errorf("binary round trip mismatch")
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"app":"x","traces":[]}`)); err == nil {
		t.Error("invalid signature accepted")
	}
	if _, err := ReadBinary(bytes.NewBufferString("junk")); err == nil {
		t.Error("malformed gob accepted")
	}
}

func TestSaveLoadBothFormats(t *testing.T) {
	dir := t.TempDir()
	s := sampleSignature()
	for _, name := range []string{"sig.json", "sig.bin"} {
		path := filepath.Join(dir, name)
		if err := Save(s, path); err != nil {
			t.Fatalf("Save(%s): %v", name, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		if got.App != s.App || len(got.Traces) != len(s.Traces) {
			t.Errorf("%s: round trip mismatch", name)
		}
	}
	if err := Save(s, filepath.Join(dir, "no/dir/sig.json")); err == nil {
		t.Error("bad path accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// Property: Values/FromValues round-trips arbitrary non-negative vectors.
func TestValuesRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		levels := 1 + r.Intn(4)
		vals := make([]float64, NumScalarElements+levels)
		for i := range vals {
			vals[i] = r.Float64() * 1000
		}
		fv, err := FromValues(vals, levels)
		if err != nil {
			return false
		}
		back, err := fv.Values(levels)
		if err != nil {
			return false
		}
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: influence ratios over a trace sum to 1 when all blocks have
// memory operations.
func TestInfluenceSumsToOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := &Trace{App: "p", CoreCount: 4, Levels: 2}
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			fv := sampleFV(2)
			fv.MemOps = 1 + r.Float64()*1e6
			fv.Loads, fv.Stores = fv.MemOps, 0
			tr.Blocks = append(tr.Blocks, Block{ID: uint64(i), FV: fv})
		}
		var sum float64
		for i := range tr.Blocks {
			sum += tr.Influence(&tr.Blocks[i])
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
