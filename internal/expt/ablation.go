package expt

import (
	"fmt"
	"math"

	"tracex"
	"tracex/internal/cluster"
	"tracex/internal/extrap"
	"tracex/internal/psins"
	"tracex/internal/stats"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

// FormsAblationRow reports extrapolation quality for one canonical-form set
// on one application.
type FormsAblationRow struct {
	App      string
	FormSet  string
	MaxError float64 // max influential element error (fraction)
	MeanErr  float64
}

// cvFormSet names the ladder entry that pairs the extended forms with
// leave-one-out cross-validated selection.
const cvFormSet = "extended + LOOCV"

// FormSets returns the ablation ladder: growing subsets of the paper's
// canonical forms, the future-work extended set (power and quadratic), and
// the extended set selected by leave-one-out cross-validation.
func FormSets() map[string][]stats.Form {
	return map[string][]stats.Form{
		"constant":              {stats.Constant{}},
		"+linear":               {stats.Constant{}, stats.Linear{}},
		"+logarithmic":          {stats.Constant{}, stats.Linear{}, stats.Logarithmic{}},
		"paper (4 canonical)":   stats.CanonicalForms(),
		"extended (+pow,+quad)": stats.ExtendedForms(),
		cvFormSet:               stats.ExtendedForms(),
	}
}

// FormSetOrder returns the ladder in presentation order.
func FormSetOrder() []string {
	return []string{
		"constant", "+linear", "+logarithmic",
		"paper (4 canonical)", "extended (+pow,+quad)", cvFormSet,
	}
}

// AblationForms measures how extrapolation accuracy depends on the set of
// canonical forms available to the fitter (the paper's future work proposes
// adding polynomial forms to push the <20 % element error further down).
func AblationForms(cfg Config) ([]FormsAblationRow, error) {
	target := TargetMachine()
	sets := FormSets()
	var rows []FormsAblationRow
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		inputs, err := collectInputs(cfg.context(), app, spec.InputCounts, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		truth, err := collectSig(cfg.context(), app, spec.TargetCount, target, cfg.Collect, []int{0})
		if err != nil {
			return nil, err
		}
		for _, name := range FormSetOrder() {
			opt := extrap.Options{Forms: sets[name], CrossValidate: name == cvFormSet}
			res, err := tracex.Extrapolate(inputs, spec.TargetCount, opt)
			if err != nil {
				return nil, fmt.Errorf("expt: %s with forms %q: %w", spec.App, name, err)
			}
			errs, err := extrap.Compare(&res.Signature.Traces[0], &truth.Traces[0])
			if err != nil {
				return nil, err
			}
			infl := extrap.InfluentialErrors(errs)
			row := FormsAblationRow{App: spec.App, FormSet: name}
			var sum float64
			for _, e := range infl {
				sum += e.AbsRelErr
				if e.AbsRelErr > row.MaxError {
					row.MaxError = e.AbsRelErr
				}
			}
			if len(infl) > 0 {
				row.MeanErr = sum / float64(len(infl))
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// InputCountAblationRow reports extrapolation quality for one choice of
// input core-count series.
type InputCountAblationRow struct {
	App      string
	Inputs   []int
	MaxError float64
	MeanErr  float64
}

// AblationInputCounts measures the effect of the number of input core
// counts (the paper notes that three "generally provided adequate
// accuracy").
func AblationInputCounts(cfg Config) ([]InputCountAblationRow, error) {
	target := TargetMachine()
	series := map[string][][]int{
		"specfem3d": {
			{96, 384},
			{96, 384, 1536},
			{96, 192, 384, 1536},
			{96, 192, 384, 768, 1536},
		},
		"uh3d": {
			{1024, 2048},
			{1024, 2048, 4096},
			{1024, 1536, 2048, 4096},
			{1024, 1536, 2048, 3072, 4096},
		},
	}
	var rows []InputCountAblationRow
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		truth, err := collectSig(cfg.context(), app, spec.TargetCount, target, cfg.Collect, []int{0})
		if err != nil {
			return nil, err
		}
		for _, counts := range series[spec.App] {
			inputs, err := collectInputs(cfg.context(), app, counts, target, cfg.Collect)
			if err != nil {
				return nil, err
			}
			res, err := tracex.Extrapolate(inputs, spec.TargetCount, extrap.Options{MinInputs: 2})
			if err != nil {
				return nil, err
			}
			errs, err := extrap.Compare(&res.Signature.Traces[0], &truth.Traces[0])
			if err != nil {
				return nil, err
			}
			infl := extrap.InfluentialErrors(errs)
			row := InputCountAblationRow{App: spec.App, Inputs: counts}
			var sum float64
			for _, e := range infl {
				sum += e.AbsRelErr
				if e.AbsRelErr > row.MaxError {
					row.MaxError = e.AbsRelErr
				}
			}
			if len(infl) > 0 {
				row.MeanErr = sum / float64(len(infl))
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ClusteringAblationRow compares strategies for scaling the per-rank trace
// files when predicting from an extrapolated signature.
type ClusteringAblationRow struct {
	App      string
	Strategy string
	Runtime  float64
	Measured float64
	PctError float64
}

// AblationClustering evaluates the paper's Future Work proposal: instead of
// scaling every rank from the single slowest task's vector, cluster the
// ranks (k-means over their feature vectors), extrapolate each cluster's
// centroid trace, and price each rank from its own cluster. Three
// strategies are compared against the measured runtime:
//
//   - "uniform":   every rank priced from the dominant extrapolated trace
//     (the paper's current approach).
//   - "clustered": each rank priced from its cluster's extrapolated
//     centroid trace (the future-work proposal).
func AblationClustering(cfg Config) ([]ClusteringAblationRow, error) {
	target := TargetMachine()
	prof, err := buildProfile(cfg.context(), target)
	if err != nil {
		return nil, err
	}
	net, err := psins.NewNetwork(target.Network)
	if err != nil {
		return nil, err
	}
	var rows []ClusteringAblationRow
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		// Collect all load classes at every input count.
		inputs, err := collectInputs(cfg.context(), app, spec.InputCounts, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		// Cluster the ranks of the smallest-count signature; with one trace
		// per load class, k = class count recovers the classes.
		k := app.NumClasses()
		rc, err := cluster.ClusterRanks(inputs[0], k, 1)
		if err != nil {
			return nil, err
		}
		// Extrapolate each cluster representative's trace series.
		classComp := make(map[int]*psins.Computation) // cluster index → convolution
		rankCluster := func(rank int) int {
			// Cluster assignment generalizes by load class: find the
			// cluster containing any rank of the same class.
			for c, ranks := range rc.Clusters {
				for _, r := range ranks {
					if app.ClassOf(r) == app.ClassOf(rank) {
						return c
					}
				}
			}
			return 0
		}
		for c, rep := range rc.Representative {
			sub := make([]*trace.Signature, len(inputs))
			for i, sig := range inputs {
				for j := range sig.Traces {
					if sig.Traces[j].Rank == rep {
						sub[i] = &trace.Signature{
							App:       sig.App,
							CoreCount: sig.CoreCount,
							Machine:   sig.Machine,
							Traces:    []trace.Trace{sig.Traces[j]},
						}
					}
				}
				if sub[i] == nil {
					return nil, fmt.Errorf("expt: representative rank %d missing at %d cores", rep, sig.CoreCount)
				}
			}
			res, err := tracex.Extrapolate(sub, spec.TargetCount, extrap.Options{})
			if err != nil {
				return nil, err
			}
			comp, err := psins.Convolve(&res.Signature.Traces[0], prof)
			if err != nil {
				return nil, err
			}
			classComp[c] = comp
		}
		prog, err := app.Program(spec.TargetCount)
		if err != nil {
			return nil, err
		}
		measured, err := tracex.Measure(app, spec.TargetCount, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		// Uniform: dominant cluster's trace for every rank.
		domCluster := rankCluster(0)
		uniform := psins.CostFromComputation(classComp[domCluster], nil)
		// Clustered: per-rank cluster pricing.
		blockSeconds := make(map[int]map[uint64]float64, len(classComp))
		for c, comp := range classComp {
			m := make(map[uint64]float64, len(comp.Blocks))
			for _, bt := range comp.Blocks {
				m[bt.BlockID] = bt.Seconds
			}
			blockSeconds[c] = m
		}
		clustered := func(rank int, blockID uint64, share float64) (float64, error) {
			m := blockSeconds[rankCluster(rank)]
			t, ok := m[blockID]
			if !ok {
				return 0, fmt.Errorf("expt: block %d missing from cluster trace", blockID)
			}
			return t * share, nil
		}
		for _, s := range []struct {
			name string
			cost psins.ComputeCost
		}{
			{"uniform", uniform},
			{"clustered", clustered},
		} {
			res, err := psins.Replay(prog, net, s.cost)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ClusteringAblationRow{
				App:      spec.App,
				Strategy: s.name,
				Runtime:  res.Runtime,
				Measured: measured.Runtime,
				PctError: 100 * math.Abs(res.Runtime-measured.Runtime) / measured.Runtime,
			})
		}
	}
	return rows, nil
}

// DistanceAblationRow reports extrapolation quality as a function of how
// far beyond the largest input the target lies.
type DistanceAblationRow struct {
	App      string
	Target   int
	Factor   float64 // target / largest input
	MaxError float64
	MeanErr  float64
}

// AblationDistance measures how extrapolation accuracy degrades with
// extrapolation distance: the paper extrapolates 4× (SPECFEM3D) and 2×
// (UH3D) beyond the largest input; this ablation pushes to 8× and beyond.
func AblationDistance(cfg Config) ([]DistanceAblationRow, error) {
	target := TargetMachine()
	factors := []int{2, 4, 8}
	var rows []DistanceAblationRow
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		inputs, err := collectInputs(cfg.context(), app, spec.InputCounts, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		maxIn := spec.InputCounts[len(spec.InputCounts)-1]
		_, maxCores := app.CoreRange()
		for _, f := range factors {
			tgt := maxIn * f
			if tgt > maxCores {
				continue
			}
			res, err := tracex.Extrapolate(inputs, tgt, extrap.Options{})
			if err != nil {
				return nil, err
			}
			truth, err := collectSig(cfg.context(), app, tgt, target, cfg.Collect, []int{0})
			if err != nil {
				return nil, err
			}
			errs, err := extrap.Compare(&res.Signature.Traces[0], &truth.Traces[0])
			if err != nil {
				return nil, err
			}
			infl := extrap.InfluentialErrors(errs)
			row := DistanceAblationRow{App: spec.App, Target: tgt, Factor: float64(f)}
			var sum float64
			for _, e := range infl {
				sum += e.AbsRelErr
				if e.AbsRelErr > row.MaxError {
					row.MaxError = e.AbsRelErr
				}
			}
			if len(infl) > 0 {
				row.MeanErr = sum / float64(len(infl))
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// SampleAblationRow reports extrapolation quality for one collection sample
// size.
type SampleAblationRow struct {
	App        string
	SampleRefs int
	MaxError   float64
}

// AblationSampleSize measures how the per-block simulation sample length
// trades collection cost against extrapolated-element accuracy.
func AblationSampleSize(cfg Config, samples []int) ([]SampleAblationRow, error) {
	if len(samples) == 0 {
		samples = []int{25_000, 50_000, 100_000, 200_000, 400_000}
	}
	target := TargetMachine()
	var rows []SampleAblationRow
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		for _, s := range samples {
			opt := cfg.Collect
			opt.SampleRefs = s
			inputs, err := collectInputs(cfg.context(), app, spec.InputCounts, target, opt)
			if err != nil {
				return nil, err
			}
			res, err := tracex.Extrapolate(inputs, spec.TargetCount, extrap.Options{})
			if err != nil {
				return nil, err
			}
			truth, err := collectSig(cfg.context(), app, spec.TargetCount, target, opt, []int{0})
			if err != nil {
				return nil, err
			}
			errs, err := extrap.Compare(&res.Signature.Traces[0], &truth.Traces[0])
			if err != nil {
				return nil, err
			}
			rows = append(rows, SampleAblationRow{
				App:        spec.App,
				SampleRefs: s,
				MaxError:   extrap.MaxInfluentialError(errs),
			})
		}
	}
	return rows, nil
}

// CollectionModeRow compares the two signature-collection modes.
type CollectionModeRow struct {
	App  string
	Mode string // "private" or "shared"
	// MaxError is the max influential extrapolated-element error against
	// ground truth collected in the same mode.
	MaxError float64
	// PredErrPct is the extrapolated-trace runtime prediction error
	// against the detailed simulation (which always prices from private
	// steady-state counters).
	PredErrPct float64
}

// AblationCollectionMode compares private per-block cache simulation (this
// repository's default) against shared-hierarchy interleaved collection
// (the paper's Figure 2 pipeline shape, where blocks contend for capacity):
// does the extrapolation methodology care how the signatures were measured?
func AblationCollectionMode(cfg Config) ([]CollectionModeRow, error) {
	target := TargetMachine()
	prof, err := buildProfile(cfg.context(), target)
	if err != nil {
		return nil, err
	}
	var rows []CollectionModeRow
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		measured, err := tracex.Measure(app, spec.TargetCount, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		for _, mode := range []struct {
			name   string
			shared bool
		}{
			{"private", false},
			{"shared", true},
		} {
			opt := cfg.Collect
			opt.SharedHierarchy = mode.shared
			inputs, err := collectInputs(cfg.context(), app, spec.InputCounts, target, opt)
			if err != nil {
				return nil, err
			}
			res, err := tracex.Extrapolate(inputs, spec.TargetCount, extrap.Options{})
			if err != nil {
				return nil, err
			}
			truth, err := collectSig(cfg.context(), app, spec.TargetCount, target, opt, []int{0})
			if err != nil {
				return nil, err
			}
			errs, err := extrap.Compare(&res.Signature.Traces[0], &truth.Traces[0])
			if err != nil {
				return nil, err
			}
			pred, err := predictSig(cfg.context(), res.Signature, prof, app)
			if err != nil {
				return nil, err
			}
			rows = append(rows, CollectionModeRow{
				App:        spec.App,
				Mode:       mode.name,
				MaxError:   extrap.MaxInfluentialError(errs),
				PredErrPct: 100 * math.Abs(pred.Runtime-measured.Runtime) / measured.Runtime,
			})
		}
	}
	return rows, nil
}
