package expt

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"tracex"
	"tracex/internal/machine"
	"tracex/internal/multimaps"
	"tracex/internal/pebil"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

// Collection is deterministic — the same (application, core count, machine,
// options, ranks) always produces the identical signature — so the harness
// memoizes collections process-wide. Experiments share inputs heavily
// (Table I, the §IV claim and every ablation all trace the same paper-scale
// runs), and the cache turns those repeats into map lookups.

var collectMemo struct {
	sync.Mutex
	sigs     map[string]*trace.Signature
	counters map[string][]pebil.BlockCounters
}

func memoKey(app *synthapp.App, p int, target machine.Config, opt pebil.CollectorConfig, ranks []int) string {
	r := append([]int(nil), ranks...)
	sort.Ints(r)
	return fmt.Sprintf("%s|%d|%s|%d|%d|%v|%v", app.Name(), p, target.Name, opt.SampleRefs, opt.MaxWarmRefs, opt.SharedHierarchy, r)
}

// collectSig is Collector.Collect with process-wide memoization. Callers must
// treat the returned signature as read-only.
func collectSig(ctx context.Context, app *synthapp.App, p int, target machine.Config, opt pebil.CollectorConfig, ranks []int) (*trace.Signature, error) {
	key := memoKey(app, p, target, opt, ranks)
	collectMemo.Lock()
	if collectMemo.sigs == nil {
		collectMemo.sigs = map[string]*trace.Signature{}
	}
	if sig, ok := collectMemo.sigs[key]; ok {
		collectMemo.Unlock()
		return sig, nil
	}
	collectMemo.Unlock()
	sig, err := pebil.DefaultCollector().Collect(ctx, app, p, target, ranks, opt)
	if err != nil {
		return nil, err
	}
	collectMemo.Lock()
	collectMemo.sigs[key] = sig
	collectMemo.Unlock()
	return sig, nil
}

// collectInputs memoizes a series of collections.
func collectInputs(ctx context.Context, app *synthapp.App, counts []int, target machine.Config, opt pebil.CollectorConfig) ([]*trace.Signature, error) {
	out := make([]*trace.Signature, len(counts))
	for i, p := range counts {
		sig, err := collectSig(ctx, app, p, target, opt, nil)
		if err != nil {
			return nil, fmt.Errorf("expt: collecting at %d cores: %w", p, err)
		}
		out[i] = sig
	}
	return out, nil
}

// collectCounters is Collector.Counters with process-wide memoization.
// Callers must treat the returned slice as read-only.
func collectCounters(ctx context.Context, app *synthapp.App, p int, target machine.Config, opt pebil.CollectorConfig) ([]pebil.BlockCounters, error) {
	key := memoKey(app, p, target, opt, []int{-1})
	collectMemo.Lock()
	if collectMemo.counters == nil {
		collectMemo.counters = map[string][]pebil.BlockCounters{}
	}
	if cs, ok := collectMemo.counters[key]; ok {
		collectMemo.Unlock()
		return cs, nil
	}
	collectMemo.Unlock()
	cs, err := pebil.DefaultCollector().Counters(ctx, app, p, target, opt)
	if err != nil {
		return nil, err
	}
	collectMemo.Lock()
	collectMemo.counters[key] = cs
	collectMemo.Unlock()
	return cs, nil
}

// profileMemo caches MultiMAPS profiles per machine (deterministic too).
var profileMemo struct {
	sync.Mutex
	m map[string]*machine.Profile
}

// buildProfile memoizes tracex.BuildProfile-equivalent sweeps.
func buildProfile(ctx context.Context, cfg machine.Config) (*machine.Profile, error) {
	profileMemo.Lock()
	if profileMemo.m == nil {
		profileMemo.m = map[string]*machine.Profile{}
	}
	if p, ok := profileMemo.m[cfg.Name]; ok {
		profileMemo.Unlock()
		return p, nil
	}
	profileMemo.Unlock()
	p, err := buildProfileUncached(ctx, cfg)
	if err != nil {
		return nil, err
	}
	profileMemo.Lock()
	profileMemo.m[cfg.Name] = p
	profileMemo.Unlock()
	return p, nil
}

// buildProfileUncached runs the default MultiMAPS sweep.
func buildProfileUncached(ctx context.Context, cfg machine.Config) (*machine.Profile, error) {
	return multimaps.Run(ctx, cfg, multimaps.DefaultOptions(cfg))
}

// predictSig runs one Engine prediction from an existing signature and
// profile on the process-wide default engine.
func predictSig(ctx context.Context, sig *trace.Signature, prof *machine.Profile, app *synthapp.App) (*tracex.Prediction, error) {
	return tracex.DefaultEngine().Predict(ctx, tracex.PredictRequest{Signature: sig, Profile: prof, App: app})
}
