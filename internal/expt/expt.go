// Package expt is the experiment harness: one entry point per table and
// figure in the paper's evaluation, each returning structured rows that the
// cmd/experiments tool renders and the repository's benchmarks regenerate.
// Paper-vs-measured outcomes are recorded in EXPERIMENTS.md.
package expt

import (
	"context"
	"fmt"
	"math"

	"tracex"
	"tracex/internal/extrap"
	"tracex/internal/machine"
	"tracex/internal/pebil"
	"tracex/internal/stats"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
)

// Config tunes the harness. The zero value runs the paper-scale experiments
// with default collection settings.
type Config struct {
	// Collect tunes signature collection (sampling and warm-up sizes).
	Collect pebil.CollectorConfig
	// Ctx cancels long experiment pipelines mid-simulation; nil means
	// context.Background() (run to completion).
	Ctx context.Context
}

// context returns the configured context, defaulting to Background.
func (c Config) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// Spec pins the paper's experimental setup for one application.
type Spec struct {
	App         string
	InputCounts []int
	TargetCount int
}

// PaperSpecs returns the two applications exactly as the paper evaluates
// them: SPECFEM3D extrapolated from 96/384/1536 to 6144 cores and UH3D from
// 1024/2048/4096 to 8192 cores, both targeting the Phase-I Blue Waters
// model.
func PaperSpecs() []Spec {
	return []Spec{
		{App: "specfem3d", InputCounts: []int{96, 384, 1536}, TargetCount: 6144},
		{App: "uh3d", InputCounts: []int{1024, 2048, 4096}, TargetCount: 8192},
	}
}

// TargetMachine returns the prediction target used throughout the
// evaluation.
func TargetMachine() machine.Config { return machine.BlueWatersP1() }

// Table1Row is one line of Table I: the runtime predicted from one kind of
// trace, against the measured runtime.
type Table1Row struct {
	App       string
	CoreCount int
	TraceType string // "Extrap." or "Coll."
	Predicted float64
	Measured  float64
	PctError  float64
}

// Table1 reproduces Table I: for each application, predict the target-scale
// runtime twice — once from the extrapolated trace and once from the
// actually-collected trace — and compare both against the detailed
// simulation's measured runtime.
func Table1(cfg Config) ([]Table1Row, error) {
	target := TargetMachine()
	prof, err := buildProfile(cfg.context(), target)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		inputs, err := collectInputs(cfg.context(), app, spec.InputCounts, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		res, err := tracex.Extrapolate(inputs, spec.TargetCount, extrap.Options{})
		if err != nil {
			return nil, err
		}
		collected, err := collectSig(cfg.context(), app, spec.TargetCount, target, cfg.Collect, nil)
		if err != nil {
			return nil, err
		}
		measured, err := tracex.Measure(app, spec.TargetCount, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		for _, tc := range []struct {
			kind string
			sig  *trace.Signature
		}{
			{"Extrap.", res.Signature},
			{"Coll.", collected},
		} {
			pred, err := predictSig(cfg.context(), tc.sig, prof, app)
			if err != nil {
				return nil, fmt.Errorf("expt: predicting %s from %s trace: %w", spec.App, tc.kind, err)
			}
			rows = append(rows, Table1Row{
				App:       spec.App,
				CoreCount: spec.TargetCount,
				TraceType: tc.kind,
				Predicted: pred.Runtime,
				Measured:  measured.Runtime,
				PctError:  100 * math.Abs(pred.Runtime-measured.Runtime) / measured.Runtime,
			})
		}
	}
	return rows, nil
}

// Table2Row is one line of Table II: a basic block's cumulative cache hit
// rates on the target system at one core count.
type Table2Row struct {
	CoreCount  int
	L1, L2, L3 float64 // percent
}

// Table2 reproduces Table II: the target-system cache hit rates of the UH3D
// field_update block as the core count increases and its shrinking working
// set drains into the deeper cache levels.
func Table2(cfg Config) ([]Table2Row, error) {
	app, err := synthapp.ByName("uh3d")
	if err != nil {
		return nil, err
	}
	target := TargetMachine()
	var rows []Table2Row
	for _, p := range []int{1024, 2048, 4096, 8192} {
		counters, err := collectCounters(cfg.context(), app, p, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		found := false
		for _, bc := range counters {
			if bc.Spec.Func != "field_update" {
				continue
			}
			r := bc.Counters.CumulativeHitRates()
			rows = append(rows, Table2Row{CoreCount: p, L1: 100 * r[0], L2: 100 * r[1], L3: 100 * r[2]})
			found = true
		}
		if !found {
			return nil, fmt.Errorf("expt: field_update block missing at %d cores", p)
		}
	}
	return rows, nil
}

// Table3Row is one line of Table III: a block's L1 hit rate on two candidate
// systems at one core count.
type Table3Row struct {
	CoreCount        int
	SystemA, SystemB float64 // percent (12 KB and 56 KB L1)
}

// Table3 reproduces Table III: the L1 hit rate of the SPECFEM3D
// flux_lookup_table block on two target systems that differ only in L1 size
// (12 KB vs 56 KB), across the paper's SPECFEM3D core counts. The block's
// fixed per-rank footprint keeps the rate flat in core count but residency
// flips with the candidate L1 size.
func Table3(cfg Config) ([]Table3Row, error) {
	app, err := synthapp.ByName("specfem3d")
	if err != nil {
		return nil, err
	}
	sysA, sysB := machine.SystemA12KB(), machine.SystemB56KB()
	var rows []Table3Row
	for _, p := range []int{96, 384, 1536, 6144} {
		row := Table3Row{CoreCount: p}
		for _, sys := range []struct {
			cfg  machine.Config
			dest *float64
		}{
			{sysA, &row.SystemA},
			{sysB, &row.SystemB},
		} {
			counters, err := collectCounters(cfg.context(), app, p, sys.cfg, cfg.Collect)
			if err != nil {
				return nil, err
			}
			found := false
			for _, bc := range counters {
				if bc.Spec.Func == "flux_lookup_table" {
					*sys.dest = 100 * bc.Counters.CumulativeHitRates()[0]
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("expt: flux_lookup_table missing at %d cores on %s", p, sys.cfg.Name)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure1Row is one point of the MultiMAPS bandwidth surface (Figure 1).
type Figure1Row struct {
	WorkingSetBytes  uint64
	StrideBytes      uint64
	ResidentFraction float64
	HitRates         []float64
	BandwidthGBs     float64
}

// Figure1 reproduces Figure 1: the MultiMAPS surface of the two-cache-level
// Opteron — measured bandwidth as a function of the cache hit rates each
// probe achieves.
func Figure1() ([]Figure1Row, error) {
	cfg := machine.Opteron2L()
	prof, err := buildProfile(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]Figure1Row, 0, len(prof.Surface))
	for _, sp := range prof.Surface {
		rows = append(rows, Figure1Row{
			WorkingSetBytes:  sp.WorkingSetBytes,
			StrideBytes:      sp.StrideBytes,
			ResidentFraction: sp.ResidentFraction,
			HitRates:         sp.HitRates,
			BandwidthGBs:     sp.BandwidthGBs,
		})
	}
	return rows, nil
}

// FitSeries is a feature-element series across core counts with every
// canonical form's fit, as rendered in Figures 4 and 5.
type FitSeries struct {
	App      string
	Block    string
	Element  string
	Counts   []float64
	Measured []float64
	// FitValues[form][i] is form's fitted value at Counts[i].
	FitValues map[string][]float64
	// Selected is the winning canonical form.
	Selected string
}

// fitSeries collects one block element across counts and fits all forms.
func fitSeries(appName, blockFunc, element string, counts []int, cfg Config) (*FitSeries, error) {
	app, err := synthapp.ByName(appName)
	if err != nil {
		return nil, err
	}
	target := TargetMachine()
	names := trace.ElementNames(len(target.Caches))
	elemIdx := -1
	for i, n := range names {
		if n == element {
			elemIdx = i
		}
	}
	if elemIdx < 0 {
		return nil, fmt.Errorf("expt: unknown element %q", element)
	}
	fs := &FitSeries{App: appName, Block: blockFunc, Element: element, FitValues: map[string][]float64{}}
	for _, p := range counts {
		sig, err := collectSig(cfg.context(), app, p, target, cfg.Collect, []int{0})
		if err != nil {
			return nil, err
		}
		var blk *trace.Block
		for i := range sig.Traces[0].Blocks {
			if sig.Traces[0].Blocks[i].Func == blockFunc {
				blk = &sig.Traces[0].Blocks[i]
			}
		}
		if blk == nil {
			return nil, fmt.Errorf("expt: block %q missing at %d cores", blockFunc, p)
		}
		vals, err := blk.FV.Values(sig.Traces[0].Levels)
		if err != nil {
			return nil, err
		}
		fs.Counts = append(fs.Counts, float64(p))
		fs.Measured = append(fs.Measured, vals[elemIdx])
	}
	sel := stats.NewSelector(nil)
	all, err := sel.FitAll(fs.Counts, fs.Measured)
	if err != nil {
		return nil, err
	}
	for form, fr := range all {
		vals := make([]float64, len(fs.Counts))
		for i, x := range fs.Counts {
			vals[i] = fr.Model.Eval(x)
		}
		fs.FitValues[form] = vals
	}
	best, err := sel.Select(fs.Counts, fs.Measured)
	if err != nil {
		return nil, err
	}
	fs.Selected = best.Model.Name()
	return fs, nil
}

// Figure4 reproduces Figure 4: the linearly rising L2 hit rate of a single
// block (UH3D current_deposit) across core counts, with all four canonical
// fits; the linear model captures the behaviour.
func Figure4(cfg Config) (*FitSeries, error) {
	return fitSeries("uh3d", "current_deposit", "hit_rate_L2", []int{1024, 2048, 4096, 8192}, cfg)
}

// Figure5 reproduces Figure 5: the logarithmically growing memory-operation
// count of a single block (UH3D field_update) across core counts, with all
// four canonical fits; the logarithmic model captures the behaviour.
func Figure5(cfg Config) (*FitSeries, error) {
	return fitSeries("uh3d", "field_update", "mem_ops", []int{1024, 2048, 4096, 8192}, cfg)
}

// Figure3Row shows one extrapolated element of a single block — the
// per-element extrapolation of Figure 3.
type Figure3Row struct {
	Element      string
	Form         string
	Inputs       []float64
	Extrapolated float64
}

// Figure3 demonstrates Figure 3's principle on the SPECFEM3D dominant
// block: each element of the block's feature vector is fitted and
// extrapolated independently.
func Figure3(cfg Config) ([]Figure3Row, error) {
	app, err := synthapp.ByName("specfem3d")
	if err != nil {
		return nil, err
	}
	target := TargetMachine()
	spec := PaperSpecs()[0]
	inputs, err := collectInputs(cfg.context(), app, spec.InputCounts, target, cfg.Collect)
	if err != nil {
		return nil, err
	}
	res, err := tracex.Extrapolate(inputs, spec.TargetCount, extrap.Options{})
	if err != nil {
		return nil, err
	}
	const blockID = 1 // compute_element_forces
	fits := res.FitsFor(blockID)
	names := trace.ElementNames(len(target.Caches))
	var rows []Figure3Row
	for _, name := range names {
		f, ok := fits[name]
		if !ok {
			return nil, fmt.Errorf("expt: no fit for element %s", name)
		}
		var series []float64
		for _, sig := range inputs {
			blk := sig.DominantTrace().BlockByID()[blockID]
			vals, err := blk.FV.Values(len(target.Caches))
			if err != nil {
				return nil, err
			}
			for i, n := range names {
				if n == name {
					series = append(series, vals[i])
				}
			}
		}
		rows = append(rows, Figure3Row{
			Element:      name,
			Form:         f.Form,
			Inputs:       series,
			Extrapolated: f.Extrapolated,
		})
	}
	return rows, nil
}

// InfluentialErrorResult summarizes the paper's in-text Section IV claim
// for one application: the distribution of absolute relative errors over
// the extrapolated elements of influential blocks.
type InfluentialErrorResult struct {
	App          string
	TargetCount  int
	MaxError     float64 // fraction, paper claims < 0.20
	MeanError    float64
	NumElements  int
	NumInfluent  int
	WorstElement string
}

// InfluentialElementError reproduces the Section IV in-text claim: every
// extrapolated element of every influential block (>0.1 % of memory
// operations) has an absolute relative error below 20 %.
func InfluentialElementError(cfg Config) ([]InfluentialErrorResult, error) {
	target := TargetMachine()
	var out []InfluentialErrorResult
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		inputs, err := collectInputs(cfg.context(), app, spec.InputCounts, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		res, err := tracex.Extrapolate(inputs, spec.TargetCount, extrap.Options{})
		if err != nil {
			return nil, err
		}
		truth, err := collectSig(cfg.context(), app, spec.TargetCount, target, cfg.Collect, []int{0})
		if err != nil {
			return nil, err
		}
		errs, err := extrap.Compare(&res.Signature.Traces[0], &truth.Traces[0])
		if err != nil {
			return nil, err
		}
		infl := extrap.InfluentialErrors(errs)
		r := InfluentialErrorResult{
			App:         spec.App,
			TargetCount: spec.TargetCount,
			NumElements: len(errs),
			NumInfluent: len(infl),
		}
		var sum float64
		for _, e := range infl {
			sum += e.AbsRelErr
			if e.AbsRelErr > r.MaxError {
				r.MaxError = e.AbsRelErr
				r.WorstElement = e.Func + "/" + e.Element
			}
		}
		if len(infl) > 0 {
			r.MeanError = sum / float64(len(infl))
		}
		out = append(out, r)
	}
	return out, nil
}
