package expt

import "testing"

func TestWeakScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy in -short mode")
	}
	rows, err := WeakScaling(quickCfg)
	if err != nil {
		t.Fatalf("WeakScaling: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.MaxError >= 0.20 {
			t.Errorf("%s (%s): max element error %.1f%%", r.App, r.Regime, 100*r.MaxError)
		}
		if r.PredErrPct > 10 {
			t.Errorf("%s (%s): prediction error %.1f%%", r.App, r.Regime, r.PredErrPct)
		}
	}
	// Weak scaling should extrapolate at least as accurately on average.
	if rows[1].MeanErr > rows[0].MeanErr*3 {
		t.Errorf("weak-scaled mean error %.2f%% much worse than strong %.2f%%",
			100*rows[1].MeanErr, 100*rows[0].MeanErr)
	}
}

func TestCommExtrapShape(t *testing.T) {
	rows, err := CommExtrap(quickCfg)
	if err != nil {
		t.Fatalf("CommExtrap: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		for field, e := range r.FieldErrors {
			if e > 0.10 {
				t.Errorf("%s: field %s error %.1f%%", r.App, field, 100*e)
			}
		}
		if r.ActualCommSeconds <= 0 || r.SynthCommSeconds <= 0 {
			t.Errorf("%s: non-positive comm times", r.App)
		}
		rel := r.SynthCommSeconds/r.ActualCommSeconds - 1
		if rel < -0.5 || rel > 0.5 {
			t.Errorf("%s: synthesized comm time %.4f s vs actual %.4f s",
				r.App, r.SynthCommSeconds, r.ActualCommSeconds)
		}
	}
}

func TestCrossArchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy in -short mode")
	}
	rows, err := CrossArch(quickCfg)
	if err != nil {
		t.Fatalf("CrossArch: %v", err)
	}
	if len(rows) != 6 { // two apps × three machines
		t.Fatalf("got %d rows", len(rows))
	}
	byApp := map[string]map[string]CrossArchRow{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]CrossArchRow{}
		}
		byApp[r.App][r.Machine] = r
		if r.PctError > 15 {
			t.Errorf("%s on %s: %.1f%% error exceeds the framework's usual band", r.App, r.Machine, r.PctError)
		}
	}
	// The prediction must rank the machines the same way the detailed
	// simulation does (the cross-architectural use case).
	for app, ms := range byApp {
		k, b := ms["kraken"], ms["bluewaters"]
		predFaster := k.Predicted > b.Predicted
		measFaster := k.Measured > b.Measured
		if predFaster != measFaster {
			t.Errorf("%s: prediction ranks machines differently than measurement", app)
		}
	}
}

func TestAblationDistanceGrowsWithFactor(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy in -short mode")
	}
	rows, err := AblationDistance(quickCfg)
	if err != nil {
		t.Fatalf("AblationDistance: %v", err)
	}
	if len(rows) < 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Per app: mean error at the largest factor is at least the mean error
	// at the smallest (extrapolating further is never easier).
	perApp := map[string][]DistanceAblationRow{}
	for _, r := range rows {
		perApp[r.App] = append(perApp[r.App], r)
	}
	for app, rs := range perApp {
		first, last := rs[0], rs[len(rs)-1]
		if last.MeanErr+1e-9 < first.MeanErr {
			t.Errorf("%s: error shrank with distance: %.3f%% -> %.3f%%",
				app, 100*first.MeanErr, 100*last.MeanErr)
		}
	}
}

func TestPrefetchExplorationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy in -short mode")
	}
	rows, err := PrefetchExploration(quickCfg)
	if err != nil {
		t.Fatalf("PrefetchExploration: %v", err)
	}
	var specfem, uh3d PrefetchRow
	for _, r := range rows {
		switch r.App {
		case "specfem3d":
			specfem = r
		case "uh3d":
			uh3d = r
		}
	}
	// The streaming-heavy code benefits decisively more than the
	// random-access-heavy one.
	if specfem.SpeedupPct < 10 {
		t.Errorf("specfem3d prefetch speedup %.1f%%, want substantial", specfem.SpeedupPct)
	}
	if uh3d.SpeedupPct > specfem.SpeedupPct/2 {
		t.Errorf("uh3d speedup %.1f%% not clearly below specfem3d's %.1f%%",
			uh3d.SpeedupPct, specfem.SpeedupPct)
	}
}

func TestScalingCurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy in -short mode")
	}
	rows, err := ScalingCurve(quickCfg)
	if err != nil {
		t.Fatalf("ScalingCurve: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.PctError > 10 {
			t.Errorf("point %d (%d cores): error %.1f%%", i, r.CoreCount, r.PctError)
		}
		if i > 0 && r.Predicted >= rows[i-1].Predicted {
			t.Errorf("predicted runtime not decreasing under strong scaling at %d cores", r.CoreCount)
		}
		if r.Efficiency <= 0 || r.Efficiency > 1.2 {
			t.Errorf("implausible efficiency %.2f at %d cores", r.Efficiency, r.CoreCount)
		}
	}
}

func TestAblationCollectionModeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy in -short mode")
	}
	rows, err := AblationCollectionMode(quickCfg)
	if err != nil {
		t.Fatalf("AblationCollectionMode: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byApp := map[string]map[string]CollectionModeRow{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]CollectionModeRow{}
		}
		byApp[r.App][r.Mode] = r
	}
	for app, ms := range byApp {
		// Private collection matches the private-calibrated pricing; the
		// shared mode's prediction error must be visibly worse (the
		// measurement/calibration mismatch the ablation demonstrates).
		if ms["private"].PredErrPct > 10 {
			t.Errorf("%s: private prediction error %.1f%%", app, ms["private"].PredErrPct)
		}
		if ms["shared"].PredErrPct < ms["private"].PredErrPct {
			t.Errorf("%s: shared mode unexpectedly beats private (%.1f%% vs %.1f%%)",
				app, ms["shared"].PredErrPct, ms["private"].PredErrPct)
		}
	}
}

func TestCalibrationDemoRecoversTruth(t *testing.T) {
	rows, err := CalibrationDemo(quickCfg)
	if err != nil {
		t.Fatalf("CalibrationDemo: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.CalibratedErr > 0.01 {
			t.Errorf("%s: calibrated error %.3f", r.App, r.CalibratedErr)
		}
		if r.DistortedErr < r.CalibratedErr*10 {
			t.Errorf("%s: distorted prior not visibly worse (%.3f vs %.3f)",
				r.App, r.DistortedErr, r.CalibratedErr)
		}
		if d := r.RecoveredMLP - r.TrueMLP; d < -0.25 || d > 0.25 {
			t.Errorf("%s: recovered MLP %.2f, want %.1f", r.App, r.RecoveredMLP, r.TrueMLP)
		}
	}
}

func TestEnergyDVFSShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy in -short mode")
	}
	rows, err := EnergyDVFS(quickCfg)
	if err != nil {
		t.Fatalf("EnergyDVFS: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Joules <= 0 || r.AvgWatts <= 0 || r.NominalTime <= 0 {
			t.Errorf("%s: implausible energy row %+v", r.App, r)
		}
		// Both proxies are memory-bound: the energy optimum sits at the
		// bottom of the sweep.
		if r.OptEnergyF > 0.7 {
			t.Errorf("%s: energy-optimal frequency %.2f, want low", r.App, r.OptEnergyF)
		}
		if r.OptEnergyJ > r.Joules {
			t.Errorf("%s: optimal energy above nominal", r.App)
		}
	}
}
