package expt

import (
	"fmt"
	"math"
	"sort"

	"tracex"
	"tracex/internal/commx"
	"tracex/internal/extrap"
	"tracex/internal/machine"
	"tracex/internal/memsim"
	"tracex/internal/psins"
	"tracex/internal/synthapp"
)

// WeakScalingRow compares extrapolation quality between a strong-scaled and
// a weak-scaled variant of the same computation.
type WeakScalingRow struct {
	App      string
	Regime   string // "strong" or "weak"
	MaxError float64
	MeanErr  float64
	// PredErrPct is the runtime prediction error (extrapolated trace vs
	// detailed simulation) at the target count.
	PredErrPct float64
}

// WeakScaling addresses the paper's Future Work question about weak-scaled
// problems: extrapolate both stencil variants from 64/128/256 to 1024 cores
// and compare element errors and runtime prediction errors. Under weak
// scaling most per-rank elements are constant, so the methodology should do
// at least as well as under strong scaling.
func WeakScaling(cfg Config) ([]WeakScalingRow, error) {
	target := TargetMachine()
	prof, err := buildProfile(cfg.context(), target)
	if err != nil {
		return nil, err
	}
	inputCounts := []int{64, 128, 256}
	const targetCount = 1024
	var rows []WeakScalingRow
	for _, tc := range []struct {
		app    string
		regime string
	}{
		{"stencil3d", "strong"},
		{"stencil3dweak", "weak"},
	} {
		app, err := synthapp.ByName(tc.app)
		if err != nil {
			return nil, err
		}
		inputs, err := collectInputs(cfg.context(), app, inputCounts, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		res, err := tracex.Extrapolate(inputs, targetCount, extrap.Options{})
		if err != nil {
			return nil, err
		}
		truth, err := collectSig(cfg.context(), app, targetCount, target, cfg.Collect, []int{0})
		if err != nil {
			return nil, err
		}
		errs, err := extrap.Compare(&res.Signature.Traces[0], &truth.Traces[0])
		if err != nil {
			return nil, err
		}
		infl := extrap.InfluentialErrors(errs)
		row := WeakScalingRow{App: tc.app, Regime: tc.regime}
		var sum float64
		for _, e := range infl {
			sum += e.AbsRelErr
			if e.AbsRelErr > row.MaxError {
				row.MaxError = e.AbsRelErr
			}
		}
		if len(infl) > 0 {
			row.MeanErr = sum / float64(len(infl))
		}
		pred, err := predictSig(cfg.context(), res.Signature, prof, app)
		if err != nil {
			return nil, err
		}
		measured, err := tracex.Measure(app, targetCount, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		row.PredErrPct = 100 * math.Abs(pred.Runtime-measured.Runtime) / measured.Runtime
		rows = append(rows, row)
	}
	return rows, nil
}

// CrossArchRow compares one application's predicted vs measured runtime on
// one candidate machine.
type CrossArchRow struct {
	App       string
	Machine   string
	CoreCount int
	Predicted float64
	Measured  float64
	PctError  float64
}

// CrossArch exercises the paper's cross-architectural prediction claim
// (§III-A): the same application is characterized against several target
// machines — none of which it ever "ran" on — by simulating each target's
// cache structure, and the framework must predict each machine's runtime
// well enough to rank them correctly. Both headline applications are
// evaluated on the Kraken and Blue Waters models at a moderate scale.
func CrossArch(cfg Config) ([]CrossArchRow, error) {
	machines := []machine.Config{machine.Kraken(), machine.BlueWatersP1(), machine.SandyBridge()}
	var rows []CrossArchRow
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		p := spec.InputCounts[len(spec.InputCounts)-1] // largest traced count
		for _, sys := range machines {
			prof, err := buildProfile(cfg.context(), sys)
			if err != nil {
				return nil, err
			}
			sig, err := collectSig(cfg.context(), app, p, sys, cfg.Collect, nil)
			if err != nil {
				return nil, err
			}
			pred, err := predictSig(cfg.context(), sig, prof, app)
			if err != nil {
				return nil, err
			}
			measured, err := tracex.Measure(app, p, sys, cfg.Collect)
			if err != nil {
				return nil, err
			}
			rows = append(rows, CrossArchRow{
				App:       spec.App,
				Machine:   sys.Name,
				CoreCount: p,
				Predicted: pred.Runtime,
				Measured:  measured.Runtime,
				PctError:  100 * math.Abs(pred.Runtime-measured.Runtime) / measured.Runtime,
			})
		}
	}
	return rows, nil
}

// ScalingCurveRow is one point of a predicted strong-scaling curve.
type ScalingCurveRow struct {
	App       string
	CoreCount int
	// Predicted is the runtime from the extrapolated trace; Measured is
	// the detailed simulation at the same count.
	Predicted, Measured float64
	PctError            float64
	// Efficiency is the parallel efficiency relative to the smallest
	// point of the curve: T(P0)*P0 / (T(P)*P), from the prediction.
	Efficiency float64
}

// ScalingCurve is the framework's day-job use case: from one set of cheap
// small-count traces, predict the application's whole strong-scaling curve
// — one extrapolation per target count — and read off where parallel
// efficiency collapses, checking each point against the detailed
// simulation.
func ScalingCurve(cfg Config) ([]ScalingCurveRow, error) {
	target := TargetMachine()
	prof, err := buildProfile(cfg.context(), target)
	if err != nil {
		return nil, err
	}
	app, err := synthapp.ByName("uh3d")
	if err != nil {
		return nil, err
	}
	inputCounts := []int{1024, 2048, 4096}
	inputs, err := collectInputs(cfg.context(), app, inputCounts, target, cfg.Collect)
	if err != nil {
		return nil, err
	}
	targets := []int{5120, 6144, 8192, 12288, 16384}
	var rows []ScalingCurveRow
	for _, p := range targets {
		res, err := tracex.Extrapolate(inputs, p, extrap.Options{})
		if err != nil {
			return nil, err
		}
		pred, err := predictSig(cfg.context(), res.Signature, prof, app)
		if err != nil {
			return nil, err
		}
		measured, err := tracex.Measure(app, p, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingCurveRow{
			App:       app.Name(),
			CoreCount: p,
			Predicted: pred.Runtime,
			Measured:  measured.Runtime,
			PctError:  100 * math.Abs(pred.Runtime-measured.Runtime) / measured.Runtime,
		})
	}
	// Efficiency relative to the first curve point.
	base := rows[0]
	for i := range rows {
		r := &rows[i]
		r.Efficiency = base.Predicted * float64(base.CoreCount) /
			(r.Predicted * float64(r.CoreCount))
	}
	return rows, nil
}

// EnergyRow reports the energy estimate and DVFS optimum for one
// application at target scale, priced from the extrapolated trace.
type EnergyRow struct {
	App         string
	CoreCount   int
	Joules      float64
	AvgWatts    float64
	OptEnergyF  float64 // frequency scale minimizing energy
	OptEnergyJ  float64
	OptEDPF     float64 // frequency scale minimizing energy-delay product
	NominalTime float64
}

// EnergyDVFS prices the dominant task's energy at target scale from the
// *extrapolated* trace (never collected at that count) and sweeps core
// frequency for the energy- and EDP-optimal operating points — the energy
// use case the paper's feature-vector design anticipates.
func EnergyDVFS(cfg Config) ([]EnergyRow, error) {
	target := TargetMachine()
	prof, err := buildProfile(cfg.context(), target)
	if err != nil {
		return nil, err
	}
	model := tracex.DefaultEnergyModel(target)
	scales := []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2}
	var rows []EnergyRow
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		inputs, err := collectInputs(cfg.context(), app, spec.InputCounts, target, cfg.Collect)
		if err != nil {
			return nil, err
		}
		res, err := tracex.Extrapolate(inputs, spec.TargetCount, extrap.Options{})
		if err != nil {
			return nil, err
		}
		rep, err := tracex.EstimateEnergy(res.Signature, prof, model)
		if err != nil {
			return nil, err
		}
		pts, err := tracex.DVFSSweep(res.Signature, prof, model, scales)
		if err != nil {
			return nil, err
		}
		minE, minEDP := tracex.OptimalFrequency(pts)
		rows = append(rows, EnergyRow{
			App:         spec.App,
			CoreCount:   spec.TargetCount,
			Joules:      rep.Joules,
			AvgWatts:    rep.AvgWatts,
			OptEnergyF:  minE.Scale,
			OptEnergyJ:  minE.Joules,
			OptEDPF:     minEDP.Scale,
			NominalTime: rep.Seconds,
		})
	}
	return rows, nil
}

// PrefetchRow compares an application's predicted runtime on a target with
// and without a hardware next-line prefetcher.
type PrefetchRow struct {
	App        string
	CoreCount  int
	Baseline   float64 // predicted runtime, no prefetcher
	Prefetched float64 // predicted runtime with the prefetcher
	SpeedupPct float64
}

// PrefetchExploration extends Table III's design-exploration use case to a
// different hardware knob: would the target benefit from a stream hardware
// prefetcher? Signatures are collected against both memory-system variants
// (neither of which needs to exist), extrapolated to target scale, and
// convolved with each variant's own MultiMAPS profile. The study uses a
// latency-bound variant of the target (MLP 2 instead of 6): a prefetcher
// converts stream latency into bandwidth, so it pays off exactly when the
// core cannot keep enough misses in flight on its own. Streaming-heavy
// codes should speed up; random-access-heavy codes should barely move.
func PrefetchExploration(cfg Config) ([]PrefetchRow, error) {
	base := TargetMachine()
	base.MLP = 2
	base.Name = "bluewaters-mlp2"
	pf := machine.WithPrefetch(base)
	var rows []PrefetchRow
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		row := PrefetchRow{App: spec.App, CoreCount: spec.TargetCount}
		for _, tc := range []struct {
			sys  machine.Config
			dest *float64
		}{
			{base, &row.Baseline},
			{pf, &row.Prefetched},
		} {
			prof, err := buildProfile(cfg.context(), tc.sys)
			if err != nil {
				return nil, err
			}
			inputs, err := collectInputs(cfg.context(), app, spec.InputCounts, tc.sys, cfg.Collect)
			if err != nil {
				return nil, err
			}
			res, err := tracex.Extrapolate(inputs, spec.TargetCount, extrap.Options{})
			if err != nil {
				return nil, err
			}
			pred, err := predictSig(cfg.context(), res.Signature, prof, app)
			if err != nil {
				return nil, err
			}
			*tc.dest = pred.Runtime
		}
		row.SpeedupPct = 100 * (row.Baseline - row.Prefetched) / row.Baseline
		rows = append(rows, row)
	}
	return rows, nil
}

// CommExtrapRow reports communication-trace extrapolation quality for one
// application.
type CommExtrapRow struct {
	App string
	// FieldErrors maps each communication summary field to its absolute
	// relative extrapolation error at the target count.
	FieldErrors map[string]float64
	// SynthCommSeconds and ActualCommSeconds compare the replayed
	// communication time of the synthesized versus the actual program
	// (compute events zeroed out).
	SynthCommSeconds, ActualCommSeconds float64
}

// SortedFieldNames returns the row's field names in stable order.
func (r CommExtrapRow) SortedFieldNames() []string {
	names := make([]string, 0, len(r.FieldErrors))
	for n := range r.FieldErrors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CommExtrap runs the ScalaExtrap-style complement (paper §II, Wu et al.):
// summarize the communication of the three small-count runs, extrapolate
// the summary to the target count, synthesize a communication program, and
// compare it — structurally and under replay — against the actual
// target-count communication.
func CommExtrap(cfg Config) ([]CommExtrapRow, error) {
	target := TargetMachine()
	net, err := psins.NewNetwork(target.Network)
	if err != nil {
		return nil, err
	}
	zeroCost := func(rank int, blockID uint64, share float64) (float64, error) { return 0, nil }
	var rows []CommExtrapRow
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		var profiles []commx.Profile
		for _, p := range spec.InputCounts {
			prog, err := app.Program(p)
			if err != nil {
				return nil, err
			}
			cp, err := commx.Summarize(prog, 0)
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, cp)
		}
		ext, err := commx.Extrapolate(profiles, spec.TargetCount)
		if err != nil {
			return nil, err
		}
		actualProg, err := app.Program(spec.TargetCount)
		if err != nil {
			return nil, err
		}
		actual, err := commx.Summarize(actualProg, 0)
		if err != nil {
			return nil, err
		}
		row := CommExtrapRow{
			App:         spec.App,
			FieldErrors: commx.CompareProfiles(ext.Profile, actual),
		}
		synthProg, err := commx.Synthesize(spec.App+"-comm", ext.Profile)
		if err != nil {
			return nil, fmt.Errorf("expt: synthesizing %s comm: %w", spec.App, err)
		}
		synthRes, err := psins.Replay(synthProg, net, zeroCost)
		if err != nil {
			return nil, err
		}
		row.SynthCommSeconds = synthRes.Runtime
		// Replay the actual program with zeroed compute for a like-for-like
		// communication time.
		actualRes, err := psins.Replay(actualProg, net, zeroCost)
		if err != nil {
			return nil, err
		}
		row.ActualCommSeconds = actualRes.Runtime
		rows = append(rows, row)
	}
	return rows, nil
}

// CalibrationRow reports the machine-calibration demonstration.
type CalibrationRow struct {
	App string
	// DistortedErr and CalibratedErr are the timing-model errors before
	// and after calibration, starting from a deliberately wrong prior.
	DistortedErr, CalibratedErr float64
	// RecoveredMLP and TrueMLP compare the recovered parameter.
	RecoveredMLP, TrueMLP float64
}

// CalibrationDemo demonstrates the machine-profile inverse problem (the
// paper's reference [27] fits memory models to observations): block timings
// "measured" on the true target seed a calibration that starts from a
// machine description with a deliberately wrong memory-level parallelism
// and must recover it.
func CalibrationDemo(cfg Config) ([]CalibrationRow, error) {
	truth := TargetMachine()
	model, err := memsim.New(truth)
	if err != nil {
		return nil, err
	}
	var rows []CalibrationRow
	for _, spec := range PaperSpecs() {
		app, err := synthapp.ByName(spec.App)
		if err != nil {
			return nil, err
		}
		// Observed block timings on the true machine at every input count.
		var obs []tracex.Observation
		for _, p := range spec.InputCounts {
			counters, err := collectCounters(cfg.context(), app, p, truth, cfg.Collect)
			if err != nil {
				return nil, err
			}
			for _, bc := range counters {
				cy, err := model.Cycles(bc.Counters)
				if err != nil {
					return nil, err
				}
				obs = append(obs, tracex.Observation{
					Counters: bc.Counters,
					Seconds:  model.Seconds(cy),
				})
			}
		}
		distorted := truth
		distorted.MLP = 2 // wrong prior
		res, err := tracex.CalibrateMachine(distorted, obs,
			[]tracex.MachineParameter{tracex.ParamMLP}, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CalibrationRow{
			App:           spec.App,
			DistortedErr:  res.Before,
			CalibratedErr: res.After,
			RecoveredMLP:  res.Config.MLP,
			TrueMLP:       truth.MLP,
		})
	}
	return rows, nil
}
