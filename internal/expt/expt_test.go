package expt

import (
	"math"
	"testing"

	"tracex/internal/pebil"
)

// quickCfg trades a little steady-state fidelity for test speed; shape
// assertions below are tolerant of the reduced sampling.
var quickCfg = Config{Collect: pebil.CollectorConfig{SampleRefs: 100_000, MaxWarmRefs: 800_000}}

func TestPaperSpecs(t *testing.T) {
	specs := PaperSpecs()
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].App != "specfem3d" || specs[0].TargetCount != 6144 {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].App != "uh3d" || specs[1].TargetCount != 8192 {
		t.Errorf("spec 1 = %+v", specs[1])
	}
	for _, s := range specs {
		if len(s.InputCounts) != 3 {
			t.Errorf("%s has %d input counts, paper uses 3", s.App, len(s.InputCounts))
		}
		for _, p := range s.InputCounts {
			if p >= s.TargetCount {
				t.Errorf("%s input %d not below target %d", s.App, p, s.TargetCount)
			}
		}
	}
	if TargetMachine().Name != "bluewaters" {
		t.Errorf("target machine = %s", TargetMachine().Name)
	}
}

func TestTable1ShapeCriteria(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment in -short mode")
	}
	rows, err := Table1(quickCfg)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byApp := map[string]map[string]Table1Row{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]Table1Row{}
		}
		byApp[r.App][r.TraceType] = r
		if r.Predicted <= 0 || r.Measured <= 0 {
			t.Errorf("non-positive runtime in %+v", r)
		}
	}
	for app, kinds := range byApp {
		e, c := kinds["Extrap."], kinds["Coll."]
		// Core result: extrapolated and collected traces give near-equal
		// predictions (paper: identical to the second).
		if d := math.Abs(e.Predicted-c.Predicted) / c.Predicted; d > 0.05 {
			t.Errorf("%s: extrapolated vs collected predictions differ by %.1f%%", app, 100*d)
		}
		// Both within the paper's error band (generous slack for reduced
		// sampling).
		if e.PctError > 10 || c.PctError > 10 {
			t.Errorf("%s: errors %.1f%% / %.1f%% exceed band", app, e.PctError, c.PctError)
		}
	}
}

func TestTable2ShapeCriteria(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment in -short mode")
	}
	rows, err := Table2(Config{Collect: pebil.CollectorConfig{SampleRefs: 300_000, MaxWarmRefs: 2_000_000}})
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.L1 > r.L2 || r.L2 > r.L3 {
			t.Errorf("row %d: cumulative rates not ordered: %+v", i, r)
		}
		if i == 0 {
			continue
		}
		if math.Abs(r.L1-rows[0].L1) > 2 {
			t.Errorf("L1 not flat: %v vs %v", r.L1, rows[0].L1)
		}
		if r.L3 < rows[i-1].L3-0.5 {
			t.Errorf("L3 not rising at row %d: %v", i, rows)
		}
	}
	if rise := rows[3].L3 - rows[0].L3; rise < 2 {
		t.Errorf("L3 rise %.1f pts, want the Table II drain-into-L3 signal", rise)
	}
}

func TestTable3ShapeCriteria(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment in -short mode")
	}
	rows, err := Table3(quickCfg)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.SystemB < 99 {
			t.Errorf("56KB system not resident: %+v", r)
		}
		if r.SystemA > 93 {
			t.Errorf("12KB system not thrashing: %+v", r)
		}
		if i > 0 && math.Abs(r.SystemA-rows[0].SystemA) > 2 {
			t.Errorf("System A rate varies with cores: %v", rows)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	rows, err := Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if len(rows) < 20 {
		t.Fatalf("only %d surface points", len(rows))
	}
	var min, max float64 = math.Inf(1), 0
	mixed := 0
	for _, r := range rows {
		if r.BandwidthGBs < min {
			min = r.BandwidthGBs
		}
		if r.BandwidthGBs > max {
			max = r.BandwidthGBs
		}
		if r.ResidentFraction > 0 {
			mixed++
		}
	}
	if max/min < 10 {
		t.Errorf("surface dynamic range %.1f×, want pronounced cache cliffs", max/min)
	}
	if mixed == 0 {
		t.Error("no mixed-locality probes on the surface")
	}
}

func TestFigure4SelectsLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment in -short mode")
	}
	fs, err := Figure4(quickCfg)
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if fs.Selected != "linear" {
		t.Errorf("selected %s, want linear", fs.Selected)
	}
	if len(fs.FitValues) != 4 {
		t.Errorf("got fits for %d forms, want all 4 canonical", len(fs.FitValues))
	}
	for i := 1; i < len(fs.Measured); i++ {
		if fs.Measured[i] <= fs.Measured[i-1] {
			t.Errorf("measured series not rising: %v", fs.Measured)
		}
	}
}

func TestFigure5SelectsLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment in -short mode")
	}
	fs, err := Figure5(quickCfg)
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if fs.Selected != "logarithmic" {
		t.Errorf("selected %s, want logarithmic", fs.Selected)
	}
}

func TestFigure3CoversAllElements(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment in -short mode")
	}
	rows, err := Figure3(quickCfg)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(rows) != 14 { // 11 scalars + 3 hit rates on the 3-level target
		t.Fatalf("got %d element rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Inputs) != 3 {
			t.Errorf("%s has %d input values", r.Element, len(r.Inputs))
		}
		if r.Form == "" {
			t.Errorf("%s has no selected form", r.Element)
		}
	}
}

func TestInfluentialElementErrorClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment in -short mode")
	}
	rows, err := InfluentialElementError(quickCfg)
	if err != nil {
		t.Fatalf("InfluentialElementError: %v", err)
	}
	for _, r := range rows {
		if r.MaxError >= 0.20 {
			t.Errorf("%s: max influential error %.1f%% breaks the paper's <20%% claim (worst %s)",
				r.App, 100*r.MaxError, r.WorstElement)
		}
		if r.NumInfluent == 0 || r.NumInfluent > r.NumElements {
			t.Errorf("%s: influential count %d/%d implausible", r.App, r.NumInfluent, r.NumElements)
		}
	}
}

func TestFitSeriesUnknownInputs(t *testing.T) {
	if _, err := fitSeries("nope", "x", "mem_ops", []int{1, 2, 3}, quickCfg); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := fitSeries("uh3d", "field_update", "bogus_element", []int{1024}, quickCfg); err == nil {
		t.Error("unknown element accepted")
	}
	if _, err := fitSeries("uh3d", "no_such_block", "mem_ops", []int{1024}, quickCfg); err == nil {
		t.Error("unknown block accepted")
	}
}

func TestFormSetsLadder(t *testing.T) {
	sets := FormSets()
	order := FormSetOrder()
	if len(sets) != len(order) {
		t.Fatalf("sets %d vs order %d", len(sets), len(order))
	}
	prev := 0
	for _, name := range order {
		forms, ok := sets[name]
		if !ok {
			t.Fatalf("order entry %q missing from sets", name)
		}
		if len(forms) < prev {
			t.Errorf("ladder not non-decreasing at %q", name)
		}
		prev = len(forms)
	}
}
