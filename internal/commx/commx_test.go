package commx

import (
	"math"
	"testing"

	"tracex/internal/mpi"
	"tracex/internal/synthapp"
)

func uh3dProgram(t *testing.T, p int) *mpi.Program {
	t.Helper()
	app := synthapp.UH3D()
	prog, err := app.Program(p)
	if err != nil {
		t.Fatalf("Program(%d): %v", p, err)
	}
	return prog
}

func TestSummarizeUH3D(t *testing.T) {
	prog := uh3dProgram(t, 1024)
	p, err := Summarize(prog, 0)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if p.CoreCount != 1024 {
		t.Errorf("CoreCount = %d", p.CoreCount)
	}
	// Rank 0 is a 3D grid corner: 3 neighbors.
	if p.Neighbors != 3 {
		t.Errorf("Neighbors = %d, want 3", p.Neighbors)
	}
	// Two timesteps: two messages per neighbor, two allreduces.
	if p.MessagesPerNeighbor != 2 {
		t.Errorf("MessagesPerNeighbor = %g", p.MessagesPerNeighbor)
	}
	if p.Collectives != 2 {
		t.Errorf("Collectives = %d", p.Collectives)
	}
	if p.BytesPerMessage <= 0 || p.CollectiveBytes != 128 {
		t.Errorf("payloads: %g, %g", p.BytesPerMessage, p.CollectiveBytes)
	}
}

func TestSummarizeErrors(t *testing.T) {
	prog := uh3dProgram(t, 1024)
	if _, err := Summarize(prog, -1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := Summarize(prog, 1024); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := Summarize(&mpi.Program{}, 0); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestExtrapolateCommProfile(t *testing.T) {
	var profiles []Profile
	for _, p := range []int{1024, 2048, 4096} {
		prof, err := Summarize(uh3dProgram(t, p), 0)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, prof)
	}
	ext, err := Extrapolate(profiles, 8192)
	if err != nil {
		t.Fatalf("Extrapolate: %v", err)
	}
	actual, err := Summarize(uh3dProgram(t, 8192), 0)
	if err != nil {
		t.Fatal(err)
	}
	errs := CompareProfiles(ext.Profile, actual)
	for field, e := range errs {
		if e > 0.05 {
			t.Errorf("%s extrapolation error %.1f%%", field, 100*e)
		}
	}
	// Structure fields must be exact.
	if ext.Profile.Neighbors != actual.Neighbors {
		t.Errorf("neighbors %d vs %d", ext.Profile.Neighbors, actual.Neighbors)
	}
	if ext.Profile.Collectives != actual.Collectives {
		t.Errorf("collectives %d vs %d", ext.Profile.Collectives, actual.Collectives)
	}
	// Constant fields select the constant form.
	if ext.Forms["neighbors"] != "constant" {
		t.Errorf("neighbors form = %s", ext.Forms["neighbors"])
	}
}

func TestExtrapolateValidation(t *testing.T) {
	p1, _ := Summarize(uh3dProgram(t, 1024), 0)
	p2, _ := Summarize(uh3dProgram(t, 2048), 0)
	if _, err := Extrapolate([]Profile{p1}, 8192); err == nil {
		t.Error("single profile accepted")
	}
	if _, err := Extrapolate([]Profile{p1, p1}, 8192); err == nil {
		t.Error("duplicate counts accepted")
	}
	if _, err := Extrapolate([]Profile{p1, p2}, 2048); err == nil {
		t.Error("target not beyond inputs accepted")
	}
}

func TestSynthesizeMatchesActualVolumes(t *testing.T) {
	var profiles []Profile
	for _, p := range []int{1024, 2048, 4096} {
		prof, err := Summarize(uh3dProgram(t, p), 0)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, prof)
	}
	ext, err := Extrapolate(profiles, 8192)
	if err != nil {
		t.Fatal(err)
	}
	synth, err := Synthesize("uh3d-comm", ext.Profile)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := synth.Validate(); err != nil {
		t.Fatalf("synthesized program invalid: %v", err)
	}
	actual := uh3dProgram(t, 8192)
	if synth.TotalMessages() != actual.TotalMessages() {
		t.Errorf("messages: synth %d vs actual %d", synth.TotalMessages(), actual.TotalMessages())
	}
	rel := math.Abs(float64(synth.TotalBytes())-float64(actual.TotalBytes())) / float64(actual.TotalBytes())
	if rel > 0.05 {
		t.Errorf("total bytes off by %.1f%%: %d vs %d", 100*rel, synth.TotalBytes(), actual.TotalBytes())
	}
}

func TestSynthesizeTopologyMismatch(t *testing.T) {
	p := Profile{CoreCount: 64, Neighbors: 5, MessagesPerNeighbor: 1, BytesPerMessage: 64}
	if _, err := Synthesize("x", p); err == nil {
		t.Error("impossible corner degree accepted")
	}
}

func TestSynthesizeSingleRank(t *testing.T) {
	p := Profile{CoreCount: 1, MessagesPerNeighbor: 2, Collectives: 2, CollectiveBytes: 8}
	prog, err := Synthesize("solo", p)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if prog.TotalMessages() != 0 {
		t.Error("single rank generated messages")
	}
}

func TestCompareProfilesExactMatch(t *testing.T) {
	p, _ := Summarize(uh3dProgram(t, 1024), 0)
	for field, e := range CompareProfiles(p, p) {
		if e != 0 {
			t.Errorf("%s self-comparison error %g", field, e)
		}
	}
}
