// Package commx implements communication-trace extrapolation — the
// complement the paper points to in its related work (Wu & Mueller's
// ScalaExtrap): where internal/extrap scales an application's *computation*
// behaviour, commx scales its *communication* structure. The communication
// of a run is summarized from the event trace (neighbor topology, messages
// per neighbor, payload sizes, collective structure), each summary field is
// fitted against the same canonical forms, and a synthetic communication
// program is generated at the target core count.
package commx

import (
	"fmt"
	"math"

	"tracex/internal/mpi"
	"tracex/internal/stats"
)

// Profile summarizes the communication of one run at one core count, seen
// from a reference rank (the dominant/corner rank 0 by convention) plus the
// program-wide collective structure.
type Profile struct {
	// CoreCount is the run's size.
	CoreCount int
	// Neighbors is the number of distinct point-to-point peers of the
	// reference rank.
	Neighbors int
	// MessagesPerNeighbor is the reference rank's sends per peer.
	MessagesPerNeighbor float64
	// BytesPerMessage is the mean payload of the reference rank's sends.
	BytesPerMessage float64
	// Collectives is the number of collective operations per rank.
	Collectives int
	// CollectiveBytes is the mean collective payload.
	CollectiveBytes float64
}

// Summarize extracts the communication profile of prog from the given
// reference rank.
func Summarize(prog *mpi.Program, rank int) (Profile, error) {
	if err := prog.Validate(); err != nil {
		return Profile{}, err
	}
	if rank < 0 || rank >= prog.NumRanks() {
		return Profile{}, fmt.Errorf("commx: rank %d out of range", rank)
	}
	p := Profile{CoreCount: prog.NumRanks()}
	peers := map[int]bool{}
	var sends int
	var sendBytes uint64
	var collBytes uint64
	for _, e := range prog.Ranks[rank] {
		switch e.Kind {
		case mpi.Send, mpi.Isend:
			peers[e.Peer] = true
			sends++
			sendBytes += e.Bytes
		default:
			if e.Kind.IsCollective() {
				p.Collectives++
				collBytes += e.Bytes
			}
		}
	}
	p.Neighbors = len(peers)
	if p.Neighbors > 0 {
		p.MessagesPerNeighbor = float64(sends) / float64(p.Neighbors)
	}
	if sends > 0 {
		p.BytesPerMessage = float64(sendBytes) / float64(sends)
	}
	if p.Collectives > 0 {
		p.CollectiveBytes = float64(collBytes) / float64(p.Collectives)
	}
	return p, nil
}

// Extrapolated is the synthesized communication profile at a target count,
// with the canonical form selected for each field.
type Extrapolated struct {
	Profile Profile
	// Forms records the canonical form chosen per field.
	Forms map[string]string
}

// Extrapolate fits each profile field across the input core counts with the
// canonical forms and evaluates at targetCores. At least two input profiles
// at distinct counts are required; the target must exceed the largest.
func Extrapolate(profiles []Profile, targetCores int) (*Extrapolated, error) {
	if len(profiles) < 2 {
		return nil, fmt.Errorf("commx: need at least 2 input profiles, have %d", len(profiles))
	}
	xs := make([]float64, len(profiles))
	maxIn := 0
	for i, p := range profiles {
		xs[i] = float64(p.CoreCount)
		if p.CoreCount > maxIn {
			maxIn = p.CoreCount
		}
		for j := 0; j < i; j++ {
			if profiles[j].CoreCount == p.CoreCount {
				return nil, fmt.Errorf("commx: duplicate input core count %d", p.CoreCount)
			}
		}
	}
	if targetCores <= maxIn {
		return nil, fmt.Errorf("commx: target %d not beyond largest input %d", targetCores, maxIn)
	}
	fields := []struct {
		name string
		get  func(Profile) float64
		set  func(*Profile, float64)
	}{
		{"neighbors", func(p Profile) float64 { return float64(p.Neighbors) },
			func(p *Profile, v float64) { p.Neighbors = int(math.Round(math.Max(0, v))) }},
		{"messages_per_neighbor", func(p Profile) float64 { return p.MessagesPerNeighbor },
			func(p *Profile, v float64) { p.MessagesPerNeighbor = math.Max(0, v) }},
		{"bytes_per_message", func(p Profile) float64 { return p.BytesPerMessage },
			func(p *Profile, v float64) { p.BytesPerMessage = math.Max(0, v) }},
		{"collectives", func(p Profile) float64 { return float64(p.Collectives) },
			func(p *Profile, v float64) { p.Collectives = int(math.Round(math.Max(0, v))) }},
		{"collective_bytes", func(p Profile) float64 { return p.CollectiveBytes },
			func(p *Profile, v float64) { p.CollectiveBytes = math.Max(0, v) }},
	}
	sel := stats.NewSelector(nil)
	out := &Extrapolated{
		Profile: Profile{CoreCount: targetCores},
		Forms:   map[string]string{},
	}
	for _, f := range fields {
		ys := make([]float64, len(profiles))
		for i, p := range profiles {
			ys[i] = f.get(p)
		}
		fit, err := sel.Select(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("commx: fitting %s: %w", f.name, err)
		}
		f.set(&out.Profile, fit.Model.Eval(float64(targetCores)))
		out.Forms[f.name] = fit.Model.Name()
	}
	return out, nil
}

// Synthesize generates a pure-communication program at the profile's core
// count: the topology is inferred from the neighbor count (≤6 face
// neighbors ⇒ 3D cartesian halo exchange), message payloads and repetition
// come from the profile, and the collective structure is reproduced as
// allreduces of the profiled payload. The reference rank 0 is a grid corner,
// so its neighbor count is the corner degree of the inferred topology.
func Synthesize(app string, p Profile) (*mpi.Program, error) {
	if p.CoreCount < 1 {
		return nil, fmt.Errorf("commx: non-positive core count")
	}
	g, err := mpi.NewGrid3D(p.CoreCount)
	if err != nil {
		return nil, err
	}
	cornerDegree := 0
	for _, n := range []int{g.Px, g.Py, g.Pz} {
		if n > 1 {
			cornerDegree++
		}
	}
	if p.Neighbors > 0 && p.CoreCount > 1 && cornerDegree != p.Neighbors {
		return nil, fmt.Errorf("commx: profile has %d corner neighbors but a %dx%dx%d grid has %d — topology mismatch",
			p.Neighbors, g.Px, g.Py, g.Pz, cornerDegree)
	}
	b := mpi.NewBuilder(app, p.CoreCount)
	steps := int(math.Round(p.MessagesPerNeighbor))
	if steps < 0 {
		steps = 0
	}
	faceBytes := uint64(math.Round(p.BytesPerMessage))
	collPerStep := 0
	if steps > 0 {
		collPerStep = p.Collectives / steps
	}
	for s := 0; s < steps; s++ {
		if p.CoreCount > 1 && faceBytes > 0 {
			b.HaloExchange3D(g, faceBytes, 1000*s)
		}
		for c := 0; c < collPerStep; c++ {
			bytes := uint64(math.Round(p.CollectiveBytes))
			if bytes == 0 {
				bytes = 8
			}
			b.Allreduce(bytes)
		}
	}
	return b.Build()
}

// CompareProfiles returns per-field absolute relative errors between a
// synthesized profile and the ground truth.
func CompareProfiles(extrapolated, actual Profile) map[string]float64 {
	return map[string]float64{
		"neighbors":             stats.AbsRelErr(float64(extrapolated.Neighbors), float64(actual.Neighbors)),
		"messages_per_neighbor": stats.AbsRelErr(extrapolated.MessagesPerNeighbor, actual.MessagesPerNeighbor),
		"bytes_per_message":     stats.AbsRelErr(extrapolated.BytesPerMessage, actual.BytesPerMessage),
		"collectives":           stats.AbsRelErr(float64(extrapolated.Collectives), float64(actual.Collectives)),
		"collective_bytes":      stats.AbsRelErr(extrapolated.CollectiveBytes, actual.CollectiveBytes),
	}
}
