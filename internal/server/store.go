package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"tracex"
)

// This file implements the persistent signature store's HTTP surface:
//
//	GET /v1/signatures/{key}  — fetch a stored signature
//	PUT /v1/signatures/{key}  — import a signature into the store
//
// {key} is either a 64-hex content hash (exact object fetch) or the
// human-readable triple "app@cores@machine" (e.g. "uh3d@512@bluewaters"),
// which GET resolves to the most recently stored matching signature and
// PUT checks against the inline signature's own identity. Both routes
// answer 501 no_store on a daemon started without a store directory.

// storeKeySep separates the fields of a human-readable store key.
const storeKeySep = "@"

// parseTripleKey splits "app@cores@machine" into its fields.
func parseTripleKey(key string) (app string, cores int, machine string, err error) {
	parts := strings.Split(key, storeKeySep)
	if len(parts) != 3 {
		return "", 0, "", badRequestf("store key %q is neither a 64-hex content hash nor app@cores@machine", key)
	}
	cores, err = strconv.Atoi(parts[1])
	if err != nil || cores <= 0 {
		return "", 0, "", badRequestf("store key %q has a non-positive core count", key)
	}
	return parts[0], cores, parts[2], nil
}

// isContentHash reports whether key looks like a hex SHA-256.
func isContentHash(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// store returns the engine's persistent store or the errNoStore failure.
func (s *Server) store() (*tracex.SignatureStore, error) {
	st := s.eng.Store()
	if st == nil {
		return nil, fmt.Errorf("server: %w: the daemon was started without a store directory", errNoStore)
	}
	return st, nil
}

// storeGet implements GET /v1/signatures/{key}.
func (s *Server) storeGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.store()
	if err != nil {
		s.writeError(w, err)
		return
	}
	release, err := s.admit(r.Context())
	if err != nil {
		if errors.Is(err, errOverloaded) {
			s.rejected.Inc()
		}
		s.writeError(w, err)
		return
	}
	defer release()

	key := r.PathValue("key")
	resp := &StoredSignatureResponse{}
	switch {
	case isContentHash(key):
		sig, err := st.GetHash(key)
		if err != nil {
			s.writeError(w, notFoundf("no stored signature %s: %v", key, err))
			return
		}
		resp.Signature, resp.Hash = sig, key
		// Attach manifest metadata when the hash is still referenced.
		for _, e := range st.Entries() {
			if e.Hash == key {
				resp.Bytes, resp.Unix = e.Bytes, e.Unix
				break
			}
		}
	default:
		app, cores, machine, err := parseTripleKey(key)
		if err != nil {
			s.writeError(w, err)
			return
		}
		sig, entry, ok, err := st.Latest(app, machine, cores)
		if err != nil {
			s.writeError(w, fmt.Errorf("server: reading stored signature %s: %w", key, err))
			return
		}
		if !ok {
			s.writeError(w, notFoundf("no stored signature for %s", key))
			return
		}
		resp.Signature = sig
		resp.Hash, resp.Bytes, resp.Unix = entry.Hash, entry.Bytes, entry.Unix
	}
	resp.App = resp.Signature.App
	resp.Machine = resp.Signature.Machine
	resp.Cores = resp.Signature.CoreCount
	writeJSON(w, http.StatusOK, resp)
}

// storePut implements PUT /v1/signatures/{key}: import an inline signature
// (collected elsewhere, or extrapolated) into the store so later predicts
// warm-start from disk.
func (s *Server) storePut(w http.ResponseWriter, r *http.Request) {
	st, err := s.store()
	if err != nil {
		s.writeError(w, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, badRequestf("reading body: %v", err))
		return
	}
	var sig tracex.Signature
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sig); err != nil {
		s.writeError(w, badRequestf("decoding signature: %v", err))
		return
	}
	if err := sig.Validate(); err != nil {
		s.writeError(w, err)
		return
	}
	app, cores, machine, err := parseTripleKey(r.PathValue("key"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	if app != sig.App || cores != sig.CoreCount || machine != sig.Machine {
		s.writeError(w, badRequestf("store key %s does not match the signature (%s%s%d%s%s)",
			r.PathValue("key"), sig.App, storeKeySep, sig.CoreCount, storeKeySep, sig.Machine))
		return
	}
	cfg, err := lookupMachine(sig.Machine)
	if err != nil {
		s.writeError(w, err)
		return
	}
	release, err := s.admit(r.Context())
	if err != nil {
		if errors.Is(err, errOverloaded) {
			s.rejected.Inc()
		}
		s.writeError(w, err)
		return
	}
	defer release()
	// Imports are filed under the default collection options: the caller is
	// asserting this signature stands in for a default collection at that
	// identity, which is exactly what the engine's warm-start consults.
	entry, err := st.Put(&sig, tracex.StoreKey(sig.App, sig.CoreCount, cfg, tracex.CollectOptions{}))
	if err != nil {
		s.writeError(w, fmt.Errorf("server: storing signature: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, &StorePutResponse{
		App:     entry.App,
		Machine: entry.Machine,
		Cores:   entry.Cores,
		Hash:    entry.Hash,
		Bytes:   entry.Bytes,
	})
}
