package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"tracex"
	"tracex/internal/store"
	"tracex/wire"
)

// This file implements the persistent signature store's HTTP surface:
//
//	GET /v1/signatures/{key}  — fetch a stored signature
//	PUT /v1/signatures/{key}  — import a signature into the store
//
// {key} is either a 64-hex content hash (exact object fetch) or the
// human-readable triple "app@cores@machine" (e.g. "uh3d@512@bluewaters"),
// which GET resolves to the most recently stored matching signature and
// PUT checks against the inline signature's own identity. Both routes
// answer 501 no_store on a daemon started without a store directory.
//
// GET is the serving fast path: it never takes compute admission (a read
// must not queue behind a multi-second collection), resolves the key
// against the store index only, and serves marshalled bodies from a
// content-addressed LRU — objects are immutable per hash, so a cached
// body can never be stale for its key. Only cache misses touch the disk,
// bounded by their own small semaphore.

// storeKeySep separates the fields of a human-readable store key.
const storeKeySep = "@"

// parseTripleKey splits "app@cores@machine" into its fields.
func parseTripleKey(key string) (app string, cores int, machine string, err error) {
	parts := strings.Split(key, storeKeySep)
	if len(parts) != 3 {
		return "", 0, "", badRequestf("store key %q is neither a 64-hex content hash nor app@cores@machine", key)
	}
	cores, err = strconv.Atoi(parts[1])
	if err != nil || cores <= 0 {
		return "", 0, "", badRequestf("store key %q has a non-positive core count", key)
	}
	return parts[0], cores, parts[2], nil
}

// isContentHash reports whether key looks like a hex SHA-256.
func isContentHash(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// store returns the engine's persistent store or the errNoStore failure.
func (s *Server) store() (*tracex.SignatureStore, error) {
	st := s.eng.Store()
	if st == nil {
		return nil, fmt.Errorf("server: %w: the daemon was started without a store directory", errNoStore)
	}
	return st, nil
}

// storeGet implements GET /v1/signatures/{key} — the read fast path.
func (s *Server) storeGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.store()
	if err != nil {
		s.writeError(w, err)
		return
	}
	key := r.PathValue("key")

	// Resolve the key to its content identity via the index alone; no
	// object bytes move yet.
	var entry store.Entry
	hash := key
	if isContentHash(key) {
		// An object can outlive its manifest entries; such a fetch still
		// works, with zero metadata (entry stays unreferenced).
		entry, _ = st.FindHash(key)
		entry.Hash = key
	} else {
		app, cores, machine, err := parseTripleKey(key)
		if err != nil {
			s.writeError(w, err)
			return
		}
		var ok bool
		entry, ok = st.LatestEntry(app, machine, cores)
		if !ok {
			// Redirect shard mode: a remote-owned key this node has never
			// cached is the owner's to serve.
			if s.redirectToOwner(w, r, key) {
				return
			}
			s.writeError(w, notFoundf("no stored signature for %s", key))
			return
		}
		hash = entry.Hash
	}

	body, err := s.readSignatureBody(r, st, hash, entry)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeRaw(w, http.StatusOK, body)
}

// readSignatureBody returns the marshalled StoredSignatureResponse for one
// content hash, from the body LRU when possible. The cache key carries the
// manifest metadata (unix, bytes) alongside the hash so a re-Put of the
// same content under fresh metadata is a distinct entry.
func (s *Server) readSignatureBody(r *http.Request, st *tracex.SignatureStore, hash string, entry store.Entry) ([]byte, error) {
	read := func() ([]byte, error) {
		// Misses hit the disk; bound them separately from compute
		// admission so a burst of distinct keys cannot starve predicts,
		// and predicts cannot starve reads.
		select {
		case s.storeReads <- struct{}{}:
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
		defer func() { <-s.storeReads }()
		sig, err := st.GetHash(hash)
		if err != nil {
			return nil, notFoundf("no stored signature %s: %v", hash, err)
		}
		resp := &wire.StoredSignatureResponse{
			App:       sig.App,
			Machine:   sig.Machine,
			Cores:     sig.CoreCount,
			Hash:      hash,
			Bytes:     entry.Bytes,
			Unix:      entry.Unix,
			Signature: sig,
		}
		b, err := json.Marshal(resp)
		if err != nil {
			return nil, fmt.Errorf("server: encoding stored signature: %w", err)
		}
		return b, nil
	}
	if s.bodyCache == nil {
		s.readMisses.Inc()
		return read()
	}
	cacheKey := hash + "|" + strconv.FormatInt(entry.Unix, 10) + "|" + strconv.FormatInt(entry.Bytes, 10)
	body, hit, err := s.bodyCache.Do(r.Context(), cacheKey, read)
	if hit {
		s.readHits.Inc()
	} else {
		s.readMisses.Inc()
	}
	return body, err
}

// storePut implements PUT /v1/signatures/{key}: import an inline signature
// (collected elsewhere, or extrapolated) into the store so later predicts
// warm-start from disk.
func (s *Server) storePut(w http.ResponseWriter, r *http.Request) {
	st, err := s.store()
	if err != nil {
		s.writeError(w, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, badRequestf("reading body: %v", err))
		return
	}
	var sig tracex.Signature
	if err := wire.DecodeStrict(bytes.NewReader(body), &sig); err != nil {
		s.writeError(w, badRequestf("decoding signature: %v", err))
		return
	}
	if err := sig.Validate(); err != nil {
		s.writeError(w, err)
		return
	}
	app, cores, machine, err := parseTripleKey(r.PathValue("key"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	if app != sig.App || cores != sig.CoreCount || machine != sig.Machine {
		s.writeError(w, badRequestf("store key %s does not match the signature (%s%s%d%s%s)",
			r.PathValue("key"), sig.App, storeKeySep, sig.CoreCount, storeKeySep, sig.Machine))
		return
	}
	cfg, err := lookupMachine(sig.Machine)
	if err != nil {
		s.writeError(w, err)
		return
	}
	release, err := s.admit(r.Context())
	if err != nil {
		if errors.Is(err, errOverloaded) {
			s.rejected.Inc()
		}
		s.writeError(w, err)
		return
	}
	defer release()
	// Imports are filed under the default collection options: the caller is
	// asserting this signature stands in for a default collection at that
	// identity, which is exactly what the engine's warm-start consults.
	entry, err := st.Put(&sig, tracex.StoreKey(sig.App, sig.CoreCount, cfg, tracex.CollectOptions{}))
	if err != nil {
		s.writeError(w, fmt.Errorf("server: storing signature: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, &wire.StorePutResponse{
		App:     entry.App,
		Machine: entry.Machine,
		Cores:   entry.Cores,
		Hash:    entry.Hash,
		Bytes:   entry.Bytes,
	})
}
