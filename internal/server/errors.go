package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"tracex"
)

// This file classifies errors into the wire contract. The request and
// response bodies themselves live in the importable tracex/wire package
// (shared with the client, the CLI and the load generator); what stays
// here is the server-side mapping from pipeline and handler errors to the
// stable (status, code) pairs rendered as wire.ErrorBody.

// StatusClientClosedRequest reports a request abandoned by its client
// before a response was produced (nginx's conventional 499; there is no
// standard code).
const StatusClientClosedRequest = 499

// Server-side sentinels for request classification. Handlers wrap them so
// classify can map handler-level failures without string matching.
var (
	// errOverloaded reports admission-control rejection: no in-flight or
	// queue slot within the configured bounds. Mapped to 429.
	errOverloaded = errors.New("server overloaded")
	// errNotFound reports an unknown application, machine or route.
	errNotFound = errors.New("not found")
	// errBadRequest reports an unparseable or semantically invalid body.
	errBadRequest = errors.New("bad request")
	// errNoStore reports a store route on a daemon running without a
	// persistent store. Mapped to 501.
	errNoStore = errors.New("no signature store configured")
	// errNoFleet reports a fleet route on a daemon running without peers.
	// Mapped to 501.
	errNoFleet = errors.New("no fleet configured")
)

// badRequestf wraps a formatted message as a 400-classified error.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

// notFoundf wraps a formatted message as a 404-classified error.
func notFoundf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errNotFound, fmt.Sprintf(format, args...))
}

// classify maps an error from the handler or pipeline to its HTTP status
// and stable error code. Every exported tracex sentinel has a fixed
// mapping, so library refactors cannot silently change the API contract.
func classify(err error) (status int, code string) {
	switch {
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, errNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, errNoStore):
		return http.StatusNotImplemented, "no_store"
	case errors.Is(err, errNoFleet):
		return http.StatusNotImplemented, "no_fleet"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "client_closed_request"
	case errors.Is(err, tracex.ErrRankOutOfRange):
		return http.StatusBadRequest, "rank_out_of_range"
	case errors.Is(err, tracex.ErrMachineMismatch):
		return http.StatusConflict, "machine_mismatch"
	case errors.Is(err, tracex.ErrNoTraces):
		return http.StatusUnprocessableEntity, "no_traces"
	case errors.Is(err, tracex.ErrEmptyWorkload):
		return http.StatusUnprocessableEntity, "empty_workload"
	case errors.Is(err, tracex.ErrModelUnsupported):
		return http.StatusUnprocessableEntity, "model_unsupported"
	case errors.Is(err, tracex.ErrBadParallelism):
		return http.StatusInternalServerError, "bad_parallelism"
	default:
		return http.StatusInternalServerError, "internal"
	}
}
