package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tracex"
	"tracex/wire"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testSampleRefs keeps real-engine collections fast in tests.
const testSampleRefs = 20_000

// sharedEng backs the tests that exercise the real pipeline; sharing it
// lets the engine's caches carry collections across tests. Tests that
// assert exact engine counter values build their own engine instead.
var sharedEng = tracex.NewEngine()

// newTestServer starts a server on a loopback port and registers a
// drained shutdown for cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, "http://" + addr.String()
}

// post sends a JSON body and returns the response with its body read.
// Test-goroutine only (it can Fatal); concurrent senders use postStatus.
func post(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// postStatus is post's goroutine-safe sibling: it reports transport
// failures as status 0 instead of failing the test.
func postStatus(url, body string) int {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// get fetches a URL and returns the response with its body read.
func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// waitFor polls cond for up to d.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// inlineSig builds a minimal valid signature for shim-backed tests that
// never reach a real simulation.
func inlineSig(cores int) *tracex.Signature {
	return &tracex.Signature{
		App: "stencil3d", CoreCount: cores, Machine: "bluewaters",
		Traces: []tracex.Trace{{
			App: "stencil3d", CoreCount: cores, Rank: 0, Machine: "bluewaters", Levels: 3,
		}},
	}
}

// inlinePredictBody is the wire body predicting from inlineSig(cores).
func inlinePredictBody(t *testing.T, cores int) string {
	t.Helper()
	b, err := json.Marshal(&wire.PredictRequest{Signature: inlineSig(cores)})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// shimEngine wraps a real engine, interposing Predict when predict is
// set. It lets the tests hold requests in flight deterministically.
type shimEngine struct {
	Engine
	predict func(ctx context.Context, req tracex.PredictRequest) (*tracex.Prediction, error)
}

func (s *shimEngine) Predict(ctx context.Context, req tracex.PredictRequest) (*tracex.Prediction, error) {
	if s.predict != nil {
		return s.predict(ctx, req)
	}
	return s.Engine.Predict(ctx, req)
}

// blockingPredict is a Predict implementation that parks every call until
// release is closed (or its context ends), reporting entries on started.
// With a delegate, released calls complete through the real engine;
// without one they return a synthetic prediction.
type blockingPredict struct {
	started  chan struct{}
	release  chan struct{}
	cancels  chan error
	calls    atomic.Int64
	delegate Engine
}

func newBlockingPredict() *blockingPredict {
	return &blockingPredict{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
		cancels: make(chan error, 64),
	}
}

func (b *blockingPredict) fn(ctx context.Context, req tracex.PredictRequest) (*tracex.Prediction, error) {
	b.calls.Add(1)
	b.started <- struct{}{}
	select {
	case <-b.release:
		if b.delegate != nil {
			return b.delegate.Predict(ctx, req)
		}
		return &tracex.Prediction{
			App: req.Signature.App, CoreCount: req.Signature.CoreCount,
			Machine: req.Signature.Machine, Runtime: 1.5,
		}, nil
	case <-ctx.Done():
		b.cancels <- ctx.Err()
		return nil, ctx.Err()
	}
}

func TestBasicRoutes(t *testing.T) {
	eng := tracex.NewEngine()
	_, base := newTestServer(t, Config{Engine: eng})

	resp, body := get(t, base+"/healthz")
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, base+"/readyz")
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"ready"`)) {
		t.Errorf("readyz: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, base+"/v1/apps")
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"stencil3d"`)) {
		t.Errorf("apps: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, base+"/v1/machines")
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"bluewaters"`)) {
		t.Errorf("machines: %d %s", resp.StatusCode, body)
	}
	// The metrics snapshot answers /metrics and the legacy root path.
	for _, path := range []string{"/metrics", "/"} {
		resp, body = get(t, base+path)
		if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`server.requests`)) {
			t.Errorf("%s: %d %.200s", path, resp.StatusCode, body)
		}
	}
	// Unknown routes produce the structured error body.
	resp, body = get(t, base+"/v1/nope")
	var eb wire.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("404 body not structured: %s", body)
	}
	if resp.StatusCode != 404 || eb.Error.Code != "not_found" || eb.Error.Status != 404 {
		t.Errorf("unknown route: %d %+v", resp.StatusCode, eb)
	}
}

func TestRequestValidation(t *testing.T) {
	eng := tracex.NewEngine()
	_, base := newTestServer(t, Config{Engine: eng})

	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed JSON", `{"app":`, 400, "bad_request"},
		{"unknown field", `{"app":"stencil3d","coresx":64}`, 400, "bad_request"},
		{"no cores", `{"app":"stencil3d","machine":"bluewaters"}`, 400, "bad_request"},
		{"unknown app", `{"app":"nosuch","cores":64,"machine":"bluewaters"}`, 404, "not_found"},
		{"unknown machine", `{"app":"stencil3d","cores":64,"machine":"nosuch"}`, 404, "not_found"},
	}
	for _, c := range cases {
		resp, body := post(t, base+"/v1/predict", c.body)
		var eb wire.ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("%s: unstructured error body %s", c.name, body)
		}
		if resp.StatusCode != c.status || eb.Error.Code != c.code {
			t.Errorf("%s: got %d/%s, want %d/%s", c.name, resp.StatusCode, eb.Error.Code, c.status, c.code)
		}
	}

	// Sentinel mapping: an inline signature with no traces → no_traces.
	resp, body := post(t, base+"/v1/predict",
		`{"signature":{"app":"stencil3d","core_count":4,"machine":"bluewaters","traces":[]}}`)
	var eb wire.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 422 || eb.Error.Code != "no_traces" {
		t.Errorf("no-traces signature: %d %+v", resp.StatusCode, eb.Error)
	}
}

// TestPipelineRoutes drives signatures → extrapolate → predict over the
// wire against a real engine.
func TestPipelineRoutes(t *testing.T) {
	if testing.Short() {
		t.Skip("real collections in -short mode")
	}
	_, base := newTestServer(t, Config{Engine: sharedEng})

	var sigs []*tracex.Signature
	for _, cores := range []int{64, 128, 256} {
		resp, body := post(t, base+"/v1/signatures", fmt.Sprintf(
			`{"app":"stencil3d","cores":%d,"machine":"bluewaters","sample_refs":%d}`, cores, testSampleRefs))
		if resp.StatusCode != 200 {
			t.Fatalf("signatures@%d: %d %.300s", cores, resp.StatusCode, body)
		}
		var sr wire.SignatureResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Signature == nil || sr.Ranks == 0 || sr.Blocks == 0 {
			t.Fatalf("signatures@%d: empty response %.300s", cores, body)
		}
		sigs = append(sigs, sr.Signature)
	}

	ereq, err := json.Marshal(&wire.ExtrapolateRequest{Signatures: sigs, TargetCores: 512})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, base+"/v1/extrapolate", string(ereq))
	if resp.StatusCode != 200 {
		t.Fatalf("extrapolate: %d %.300s", resp.StatusCode, body)
	}
	var er wire.ExtrapolateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Signature == nil || er.Signature.CoreCount != 512 || er.Fits == 0 {
		t.Fatalf("extrapolate response: %.300s", body)
	}

	preq, err := json.Marshal(&wire.PredictRequest{Signature: er.Signature})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, base+"/v1/predict", string(preq))
	if resp.StatusCode != 200 {
		t.Fatalf("predict: %d %.300s", resp.StatusCode, body)
	}
	var pr wire.PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Cores != 512 || pr.RuntimeSeconds <= 0 {
		t.Errorf("predict response: %+v", pr)
	}
}

// TestStudyRoute runs the full pipeline through POST /v1/study.
func TestStudyRoute(t *testing.T) {
	if testing.Short() {
		t.Skip("study in -short mode")
	}
	_, base := newTestServer(t, Config{Engine: sharedEng})
	resp, body := post(t, base+"/v1/study", fmt.Sprintf(
		`{"app":"stencil3d","machine":"bluewaters","input_counts":[64,128,256],"target_cores":512,"sample_refs":%d}`,
		testSampleRefs))
	if resp.StatusCode != 200 {
		t.Fatalf("study: %d %.300s", resp.StatusCode, body)
	}
	var sr wire.StudyResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Rows) != 1 || sr.Rows[0].TargetCores != 512 || sr.Rows[0].PredictedSeconds <= 0 {
		t.Errorf("study rows: %+v", sr.Rows)
	}
}

// TestCoalescing is the tentpole acceptance test: N concurrent identical
// /v1/predict requests perform exactly one Engine computation, asserted
// three ways — the shim's call count, the server.coalesced counter, and
// the engine's own prediction/collection counters.
func TestCoalescing(t *testing.T) {
	if testing.Short() {
		t.Skip("real collection in -short mode")
	}
	const n = 8
	real := tracex.NewEngine()
	app, err := tracex.LoadApp("stencil3d")
	if err != nil {
		t.Fatal(err)
	}
	machine, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		t.Fatal(err)
	}
	sig, err := real.CollectSignature(context.Background(), app, 64, machine,
		tracex.CollectOptions{SampleRefs: testSampleRefs})
	if err != nil {
		t.Fatal(err)
	}
	reqBody, err := json.Marshal(&wire.PredictRequest{Signature: sig})
	if err != nil {
		t.Fatal(err)
	}

	bp := newBlockingPredict()
	bp.delegate = real // released calls run the real prediction
	shim := &shimEngine{Engine: real, predict: bp.fn}
	_, base := newTestServer(t, Config{Engine: shim, MaxInFlight: 2, MaxQueue: 2})

	var wg sync.WaitGroup
	type result struct {
		status    int
		coalesced bool
		body      string
	}
	results := make([]result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(reqBody))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			results[i] = result{
				status:    resp.StatusCode,
				coalesced: resp.Header.Get("Tracex-Coalesced") == "true",
				body:      string(b),
			}
		}(i)
	}
	// The leader is parked inside Predict. Wait until the server has seen
	// all n requests, give the followers a beat to join the flight, then
	// let the computation finish.
	<-bp.started
	waitFor(t, 10*time.Second, func() bool {
		return real.Registry().Counter("server.requests.predict").Value() == n
	}, "all requests to arrive")
	time.Sleep(200 * time.Millisecond)
	close(bp.release)
	wg.Wait()

	if calls := bp.calls.Load(); calls != 1 {
		t.Errorf("%d engine computations for %d identical requests, want exactly 1", calls, n)
	}
	var joined int
	for i, r := range results {
		if r.status != 200 {
			t.Errorf("request %d: status %d body %.200s", i, r.status, r.body)
		}
		if r.body != results[0].body {
			t.Errorf("request %d: body diverges from leader's", i)
		}
		if r.coalesced {
			joined++
		}
	}
	if joined != n-1 {
		t.Errorf("%d responses marked coalesced, want %d", joined, n-1)
	}
	if got := real.Registry().Counter("server.coalesced").Value(); got != n-1 {
		t.Errorf("server.coalesced = %d, want %d", got, n-1)
	}
	// The engine ran one prediction for the whole burst, over the one
	// signature collected during setup.
	if st := real.Stats(); st.Predictions != 1 || st.Collections != 1 {
		t.Errorf("engine ran %d predictions over %d collections, want 1 and 1", st.Predictions, st.Collections)
	}
}

// TestAdmissionControl verifies the bounded in-flight + queue admission:
// one request executes, one queues, the third is rejected with 429 and a
// jittered Retry-After header.
func TestAdmissionControl(t *testing.T) {
	real := tracex.NewEngine()
	bp := newBlockingPredict()
	shim := &shimEngine{Engine: real, predict: bp.fn}
	s, base := newTestServer(t, Config{
		Engine: shim, MaxInFlight: 1, MaxQueue: 1,
		QueueWait: 10 * time.Second, RetryAfter: 3 * time.Second,
		DisableCoalescing: true,
	})
	// Pin the jitter at its midpoint: ceil(3s × (0.5 + 0.5)) = 3.
	s.jitter = func() float64 { return 0.5 }

	// A: occupies the single in-flight slot.
	doneA := make(chan int, 1)
	bodyA := inlinePredictBody(t, 4)
	go func() { doneA <- postStatus(base+"/v1/predict", bodyA) }()
	<-bp.started

	// B: parks in the wait queue.
	doneB := make(chan int, 1)
	bodyB := inlinePredictBody(t, 8)
	go func() { doneB <- postStatus(base+"/v1/predict", bodyB) }()
	waitFor(t, 10*time.Second, func() bool { return len(s.queue) == 1 }, "request B to queue")

	// C: beyond in-flight + queue → immediate 429.
	resp, body := post(t, base+"/v1/predict", inlinePredictBody(t, 16))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d %.300s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	var eb wire.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "overloaded" || eb.Error.RetryAfterSeconds != 3 {
		t.Errorf("429 body: %+v", eb.Error)
	}
	if got := real.Registry().Counter("server.rejected").Value(); got != 1 {
		t.Errorf("server.rejected = %d, want 1", got)
	}

	// Release: A and B both complete.
	close(bp.release)
	if got := <-doneA; got != 200 {
		t.Errorf("request A finished %d", got)
	}
	if got := <-doneB; got != 200 {
		t.Errorf("request B finished %d", got)
	}
}

// TestQueueWaitTimeout verifies a queued request gives up with 429 once
// QueueWait elapses.
func TestQueueWaitTimeout(t *testing.T) {
	real := tracex.NewEngine()
	bp := newBlockingPredict()
	shim := &shimEngine{Engine: real, predict: bp.fn}
	_, base := newTestServer(t, Config{
		Engine: shim, MaxInFlight: 1, MaxQueue: 1,
		QueueWait: 50 * time.Millisecond, DisableCoalescing: true,
	})
	done := make(chan int, 1)
	bodyA := inlinePredictBody(t, 4)
	go func() { done <- postStatus(base+"/v1/predict", bodyA) }()
	<-bp.started
	resp, _ := post(t, base+"/v1/predict", inlinePredictBody(t, 8))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("queued request after QueueWait: %d, want 429", resp.StatusCode)
	}
	close(bp.release)
	if got := <-done; got != 200 {
		t.Errorf("request A finished %d", got)
	}
}

// TestClientDisconnectCancels verifies an in-flight request's engine
// context is cancelled when its client goes away.
func TestClientDisconnectCancels(t *testing.T) {
	real := tracex.NewEngine()
	bp := newBlockingPredict()
	shim := &shimEngine{Engine: real, predict: bp.fn}
	_, base := newTestServer(t, Config{Engine: shim})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/predict",
		bytes.NewReader([]byte(inlinePredictBody(t, 4))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-bp.started // the engine is now blocked inside the request
	cancel()     // client hangs up

	select {
	case err := <-bp.cancels:
		if err == nil {
			t.Error("engine context done with nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine context never cancelled after client disconnect")
	}
	if err := <-errc; err == nil {
		t.Error("client's Do returned no error after cancellation")
	}
}

// TestShutdownDrains verifies the graceful lifecycle: Shutdown stops
// accepting work, flips /readyz to not-ready, and returns only after
// in-flight requests complete.
func TestShutdownDrains(t *testing.T) {
	real := tracex.NewEngine()
	bp := newBlockingPredict()
	shim := &shimEngine{Engine: real, predict: bp.fn}
	s, err := New(Config{Engine: shim})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	inflight := make(chan int, 1)
	body := inlinePredictBody(t, 4)
	go func() { inflight <- postStatus(base+"/v1/predict", body) }()
	<-bp.started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Readiness flips immediately; the in-flight request is still running.
	waitFor(t, 10*time.Second, func() bool { return !s.ready.Load() }, "readiness to flip")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: %d, want 503", rec.Code)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before the in-flight request drained", err)
	case <-time.After(100 * time.Millisecond):
	}

	// The drained request still completes successfully.
	close(bp.release)
	if got := <-inflight; got != 200 {
		t.Errorf("in-flight request finished %d during drain", got)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	// The listener is closed: new connections fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting connections after Shutdown")
	}
}

// TestCoalescingDisabled verifies -no-coalesce semantics: identical
// concurrent requests each compute.
func TestCoalescingDisabled(t *testing.T) {
	real := tracex.NewEngine()
	bp := newBlockingPredict()
	shim := &shimEngine{Engine: real, predict: bp.fn}
	_, base := newTestServer(t, Config{Engine: shim, MaxInFlight: 4, DisableCoalescing: true})

	body := inlinePredictBody(t, 4)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := postStatus(base+"/v1/predict", body); got != 200 {
				t.Errorf("status %d", got)
			}
		}()
	}
	<-bp.started
	<-bp.started // both requests reach the engine
	close(bp.release)
	wg.Wait()
	if calls := bp.calls.Load(); calls != 2 {
		t.Errorf("%d computations with coalescing disabled, want 2", calls)
	}
	if got := real.Registry().Counter("server.coalesced").Value(); got != 0 {
		t.Errorf("server.coalesced = %d with coalescing disabled", got)
	}
}

// TestErrorBodyGolden change-detects the structured error wire format.
func TestErrorBodyGolden(t *testing.T) {
	s, err := New(Config{Engine: tracex.NewEngine(), RetryAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Pin the Retry-After jitter at its midpoint so the golden is stable:
	// ceil(2s × (0.5 + 0.5)) = 2.
	s.jitter = func() float64 { return 0.5 }
	cases := []struct {
		name string
		err  error
	}{
		{"overloaded", fmt.Errorf("server: %w: 4 in-flight and 16 queued requests", errOverloaded)},
		{"not_found", notFoundf(`unknown application "nosuch"`)},
		{"no_traces", fmt.Errorf("tracex: %w", tracex.ErrNoTraces)},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		s.writeError(rec, c.err)
		got := rec.Body.Bytes()
		path := filepath.Join("testdata", "error_"+c.name+".golden.json")
		if *update {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s (rerun with -update to regenerate): %v", c.name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s error body drifted:\n got: %s\nwant: %s", c.name, got, want)
		}
		if c.name == "overloaded" {
			if ra := rec.Header().Get("Retry-After"); ra != "2" {
				t.Errorf("overloaded Retry-After = %q, want \"2\"", ra)
			}
		}
	}
}

// TestRouteName pins the metric labels.
func TestRouteName(t *testing.T) {
	cases := map[string]string{
		"/v1/predict":     "predict",
		"/v1/study":       "study",
		"/v1/extrapolate": "extrapolate",
		"/v1/signatures":  "signatures",
		"/v1/apps":        "apps",
		"/v1/machines":    "machines",
		"/healthz":        "healthz",
		"/readyz":         "readyz",
		"/metrics":        "metrics",
		"/":               "root",
		"/v1/bogus":       "other",
		"/favicon.ico":    "other",
	}
	for path, want := range cases {
		if got := routeName(path); got != want {
			t.Errorf("routeName(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without an engine accepted")
	}
}
