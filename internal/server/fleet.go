package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"tracex/internal/store"
	"tracex/wire"
)

// This file implements the fleet coordination surface on a daemon
// configured with Config.Fleet:
//
//	GET  /v1/fleet/status — ring membership, per-peer health, replication
//	POST /v1/fleet/sync   — warm-start manifest diff
//
// Both answer 501 no_fleet on a single-node daemon (-peers unset), so a
// fleet-less deployment's wire surface is unchanged except for the two
// reserved paths. Neither route takes compute admission: status is a
// snapshot and sync is an index diff — cheap by construction, and a
// replicating peer must not queue behind multi-second collections.

// fleet returns the configured fleet or the errNoFleet failure.
func (s *Server) fleet() (Fleet, error) {
	if s.cfg.Fleet == nil {
		return nil, fmt.Errorf("server: %w: the daemon was started without -peers", errNoFleet)
	}
	return s.cfg.Fleet, nil
}

// fleetStatus implements GET /v1/fleet/status.
func (s *Server) fleetStatus(w http.ResponseWriter, r *http.Request) {
	flt, err := s.fleet()
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, flt.Status())
}

// fleetSync implements POST /v1/fleet/sync: given the signature keys the
// requester already has, answer with the store entries this node holds
// beyond them — the newest entry per (app, cores, machine) triple, reuse
// profiles excluded. The requester filters the response to the keys it
// owns and pulls each over GET /v1/signatures/{key}.
func (s *Server) fleetSync(w http.ResponseWriter, r *http.Request) {
	if _, err := s.fleet(); err != nil {
		s.writeError(w, err)
		return
	}
	st, err := s.store()
	if err != nil {
		s.writeError(w, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, badRequestf("reading body: %v", err))
		return
	}
	var req wire.FleetSyncRequest
	if err := wire.DecodeStrict(bytes.NewReader(body), &req); err != nil {
		s.writeError(w, badRequestf("decoding fleet sync request: %v", err))
		return
	}
	have := make(map[string]bool, len(req.Have))
	for _, k := range req.Have {
		have[k] = true
	}
	// Newest entry per triple: the manifest can hold several generations
	// of one identity, but the sync vocabulary (like the GET triple form)
	// is "latest per identity".
	latest := map[string]store.Entry{}
	var order []string
	for _, e := range st.Entries() {
		if e.Kind != store.KindSignature {
			continue
		}
		key := tripleKey(e.App, e.Cores, e.Machine)
		if have[key] {
			continue
		}
		prev, seen := latest[key]
		if !seen {
			order = append(order, key)
		}
		if !seen || e.Unix >= prev.Unix {
			latest[key] = e
		}
	}
	resp := &wire.FleetSyncResponse{Entries: make([]wire.FleetSyncEntry, 0, len(order))}
	for _, key := range order {
		e := latest[key]
		resp.Entries = append(resp.Entries, wire.FleetSyncEntry{
			App:     e.App,
			Machine: e.Machine,
			Cores:   e.Cores,
			Hash:    e.Hash,
			Bytes:   e.Bytes,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// tripleKey renders the wire-level signature key (client.Key without the
// import).
func tripleKey(app string, cores int, machine string) string {
	return fmt.Sprintf("%s%s%d%s%s", app, storeKeySep, cores, storeKeySep, machine)
}

// redirectToOwner reports whether storeGet should answer 307 for a triple
// key this node does not own: redirect shard mode only, and only when the
// key is absent locally (a locally cached copy is always served — it is
// byte-identical to the owner's, signatures being content-addressed).
func (s *Server) redirectToOwner(w http.ResponseWriter, r *http.Request, key string) bool {
	flt := s.cfg.Fleet
	if flt == nil || flt.Mode() != wire.FleetModeRedirect {
		return false
	}
	owner := flt.Owner(key)
	if owner == "" || owner == flt.Self() {
		return false
	}
	http.Redirect(w, r, owner+wire.PathSignaturePrefix+key, http.StatusTemporaryRedirect)
	return true
}
