package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"encoding/json"

	"tracex"
	"tracex/wire"
)

// TestRetryAfterJitter pins the jittered Retry-After contract: draws stay
// within [ceil(0.5×base), ceil(1.5×base)], actually vary, and the header
// always equals the body's retry_after_seconds.
func TestRetryAfterJitter(t *testing.T) {
	s, err := New(Config{Engine: tracex.NewEngine(), RetryAfter: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		secs := s.retryAfterSeconds()
		if secs < 2 || secs > 5 {
			t.Fatalf("retryAfterSeconds = %d, want within [2, 5] for a 3s base", secs)
		}
		seen[secs] = true
	}
	if len(seen) < 2 {
		t.Errorf("500 draws produced a single value %v; jitter is not applied", seen)
	}

	for i := 0; i < 20; i++ {
		rec := httptest.NewRecorder()
		s.writeError(rec, fmt.Errorf("server: %w: full", errOverloaded))
		var eb wire.ErrorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Fatal(err)
		}
		if got := rec.Header().Get("Retry-After"); got != strconv.Itoa(eb.Error.RetryAfterSeconds) {
			t.Fatalf("Retry-After header %q != body retry_after_seconds %d", got, eb.Error.RetryAfterSeconds)
		}
	}
}

// TestRetunePolicy pins the pure AIMD policy table.
func TestRetunePolicy(t *testing.T) {
	cases := []struct {
		name             string
		cur, floor, ceil int64
		prev, ewma       float64
		want             int64
	}{
		{"degraded shrinks 4/5", 10, 2, 16, 1.0, 1.3, 8},
		{"shrink clamps to floor", 3, 2, 16, 1.0, 10, 2},
		{"at floor stays", 2, 2, 16, 1.0, 10, 2},
		{"steady grows by one", 8, 2, 16, 1.0, 1.0, 9},
		{"improved grows by one", 8, 2, 16, 1.0, 0.5, 9},
		{"growth capped at ceiling", 16, 2, 16, 1.0, 1.0, 16},
		{"dead band holds", 8, 2, 16, 1.0, 1.15, 8},
	}
	for _, c := range cases {
		if got := retune(c.cur, c.floor, c.ceil, c.prev, c.ewma); got != c.want {
			t.Errorf("%s: retune(%d, %d, %d, %g, %g) = %d, want %d",
				c.name, c.cur, c.floor, c.ceil, c.prev, c.ewma, got, c.want)
		}
	}
}

// TestAutoTune drives the tuner through a full degrade-to-floor and
// recover-to-ceiling cycle using explicit clock ticks.
func TestAutoTune(t *testing.T) {
	s, err := New(Config{
		Engine: tracex.NewEngine(), AutoTune: true,
		MaxInFlight: 8, AutoTuneFloor: 2, TuneInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	tick := func(svcSeconds float64) {
		// Saturate the EWMA at the new service time, then let one tune
		// decision observe it.
		for i := 0; i < 60; i++ {
			s.svcEWMA.Observe(svcSeconds)
		}
		now = now.Add(10 * time.Millisecond)
		s.maybeTune(now)
	}

	if got := s.limit.Load(); got != 8 {
		t.Fatalf("initial limit = %d, want 8", got)
	}
	tick(0.1) // seeds tunePrev; no decision possible yet
	for i, want := range []int64{6, 4, 3, 2, 2} {
		tick(0.1 * math10(i+1)) // 10× worse every round
		if got := s.limit.Load(); got != want {
			t.Fatalf("limit after degradation round %d = %d, want %d", i+1, got, want)
		}
	}
	if got := s.reg.Counter("server.tune.down").Value(); got != 4 {
		t.Errorf("server.tune.down = %d, want 4", got)
	}

	// Latency stabilizes: the limit recovers one slot per interval, capped
	// at MaxInFlight.
	for i := 0; i < 10; i++ {
		tick(0.1)
	}
	if got := s.limit.Load(); got != 8 {
		t.Errorf("limit after recovery = %d, want 8", got)
	}
	if got := s.reg.Counter("server.tune.up").Value(); got == 0 {
		t.Error("server.tune.up never incremented during recovery")
	}
}

// math10 returns 10^n for small n.
func math10(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 10
	}
	return v
}

// TestQueueDeadlineExpiry covers admission under queue-full with mixed
// deadlines: a queued request whose deadline expires while waiting is
// rejected without ever occupying an in-flight slot, while a
// long-deadline request queued behind it still completes once the slot
// frees.
func TestQueueDeadlineExpiry(t *testing.T) {
	real := tracex.NewEngine()
	bp := newBlockingPredict()
	shim := &shimEngine{Engine: real, predict: bp.fn}
	s, base := newTestServer(t, Config{
		Engine: shim, MaxInFlight: 1, MaxQueue: 2,
		QueueWait: 30 * time.Second, DisableCoalescing: true,
	})

	// A: occupies the single in-flight slot.
	doneA := make(chan int, 1)
	bodyA := inlinePredictBody(t, 4)
	go func() { doneA <- postStatus(base+"/v1/predict", bodyA) }()
	<-bp.started

	// B: queues with a deadline far shorter than A will block.
	errB := make(chan error, 1)
	go func() {
		// Long enough for C to reliably queue behind B first, short enough
		// to expire well before A's release.
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/predict",
			strings.NewReader(inlinePredictBody(t, 8)))
		if err != nil {
			errB <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request B got status %d, want deadline expiry", resp.StatusCode)
		}
		errB <- err
	}()
	waitFor(t, 10*time.Second, func() bool { return len(s.queue) == 1 }, "request B to queue")

	// C: queues behind B with a generous deadline.
	doneC := make(chan int, 1)
	bodyC := inlinePredictBody(t, 16)
	go func() { doneC <- postStatus(base+"/v1/predict", bodyC) }()
	waitFor(t, 10*time.Second, func() bool { return len(s.queue) == 2 }, "request C to queue")

	// B's deadline fires while queued: its transport errors out and its
	// queue slot drains — without B ever reaching the engine.
	if err := <-errB; err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("request B: %v, want client deadline expiry", err)
	}
	waitFor(t, 10*time.Second, func() bool { return len(s.queue) == 1 }, "request B's queue slot to drain")
	if calls := bp.calls.Load(); calls != 1 {
		t.Fatalf("engine saw %d calls while A blocks; expired B must not run", calls)
	}
	if got := s.running.Load(); got != 1 {
		t.Fatalf("running = %d with only A admitted; expired B holds a slot", got)
	}

	// Release: A completes and C — not the expired B — takes the slot.
	close(bp.release)
	if got := <-doneA; got != 200 {
		t.Errorf("request A finished %d", got)
	}
	if got := <-doneC; got != 200 {
		t.Errorf("request C finished %d", got)
	}
	if calls := bp.calls.Load(); calls != 2 {
		t.Errorf("engine ran %d calls, want 2 (A and C)", calls)
	}
	waitFor(t, 10*time.Second, func() bool { return s.running.Load() == 0 && len(s.queue) == 0 }, "slots to drain")
}
