// Package server turns a tracex.Engine into a long-lived HTTP JSON
// service: the tracexd daemon's core. It layers onto the engine exactly
// what a shared deployment needs and the library deliberately does not
// have:
//
//   - admission control — a bounded in-flight limit plus a bounded wait
//     queue; requests beyond both bounds are answered 429 with a jittered
//     Retry-After header instead of piling onto the worker pool. With
//     AutoTune the in-flight limit follows the observed service-time EWMA
//     between a floor and MaxInFlight;
//   - request coalescing — identical in-flight /v1/predict and /v1/study
//     requests (keyed by tracex.CanonicalRequestKey over the decoded body)
//     share one computation and one marshalled response, on top of the
//     engine's memo singleflight;
//   - deadline and disconnect propagation — each request's context (plus
//     the optional per-request timeout) flows into the engine, so a client
//     hanging up cancels the simulations it asked for;
//   - structured errors — every failure renders a stable wire.ErrorBody
//     whose code is derived from the library's exported sentinel errors;
//   - lifecycle — Start serves in the background, Shutdown stops the
//     listener, flips /readyz to not-ready, drains in-flight requests and
//     flushes a final metrics snapshot.
//
// The request and response bodies are the tracex/wire types — the same
// definitions the typed client and the load generator compile against —
// and hot responses (predict, study) encode through their allocation-free
// AppendJSON fast path.
//
// Observability rides on the engine's obs.Registry under the server.*
// namespace (requests, per-route latency histograms, in-flight and queue
// gauges, coalesced/rejected counters) and is served at /metrics.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"math/rand/v2"

	"tracex"
	"tracex/internal/memo"
	"tracex/internal/obs"
	"tracex/internal/pebil"
	"tracex/wire"
)

// Engine is the slice of tracex.Engine the server drives. It is an
// interface so tests can interpose slow or blocking pipelines; a
// *tracex.Engine satisfies it directly.
type Engine interface {
	Predict(ctx context.Context, req tracex.PredictRequest) (*tracex.Prediction, error)
	Study(ctx context.Context, req tracex.StudyRequest) (*tracex.StudyResult, error)
	Extrapolate(ctx context.Context, inputs []*tracex.Signature, targetCores int, opt tracex.ExtrapOptions) (*tracex.ExtrapResult, error)
	CollectSignature(ctx context.Context, app *tracex.App, cores int, target tracex.MachineConfig, opt tracex.CollectOptions) (*tracex.Signature, error)
	CollectSignatureFrom(ctx context.Context, app *tracex.App, cores int, target tracex.MachineConfig, opt tracex.CollectOptions) (*tracex.Signature, tracex.Provenance, error)
	Store() *tracex.SignatureStore
	Registry() *obs.Registry
}

// Fleet is the sharding layer's server-facing surface, implemented by
// internal/fleet.Fleet. The server defines the interface (rather than
// importing the fleet package) so the dependency arrow keeps pointing
// outward: fleet builds on the client package, whose tests build on this
// server.
type Fleet interface {
	// Self is this node's advertised base URL (its ring identity).
	Self() string
	// Mode is the shard mode (wire.FleetModeFetch or
	// wire.FleetModeRedirect).
	Mode() string
	// Owner resolves a signature key's owning peer URL.
	Owner(key string) string
	// Status snapshots membership, health and replication progress for
	// GET /v1/fleet/status.
	Status() *wire.FleetStatusResponse
}

// Config parameterizes New. The zero value of every field except Engine is
// usable; defaults are documented per field.
type Config struct {
	// Engine executes the pipeline. Required.
	Engine Engine
	// Fleet, when non-nil, enables the distributed routes
	// (GET /v1/fleet/status, POST /v1/fleet/sync), honors delegated
	// collection requests, and — in redirect shard mode — answers
	// signature GETs for remote-owned missing keys with 307 to the owner.
	// Nil (the default) leaves single-node behavior untouched.
	Fleet Fleet
	// MaxInFlight bounds concurrently executing compute requests
	// (/v1/predict, /v1/study, /v1/extrapolate, /v1/signatures). Health,
	// listing and metrics routes are never gated; signature GETs take the
	// separate store-read path. Default: GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; arrivals
	// beyond the current limit plus MaxQueue are rejected immediately with
	// 429. Default: 4×MaxInFlight.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for an in-flight
	// slot before giving up with 429. Default: 2s.
	QueueWait time.Duration
	// RequestTimeout caps each compute request's wall-clock via its
	// context; 0 disables the cap (the client's disconnect still cancels).
	RequestTimeout time.Duration
	// RetryAfter is the base of the jittered Retry-After advertised on 429
	// responses (header and body): each rejection draws uniformly from
	// [0.5×, 1.5×] of it, rounded up to whole seconds, so a burst of
	// rejected clients does not retry in lockstep. Default: 1s.
	RetryAfter time.Duration
	// DisableCoalescing turns off identical-request coalescing on
	// /v1/predict and /v1/study.
	DisableCoalescing bool
	// DefaultCacheModel is the cache model used when a request omits
	// "model": "exact" (the default) or "analytical". Unknown names fail
	// New.
	DefaultCacheModel string
	// DefaultSampling is the sampling policy used when a request omits
	// "sampling", in tracex.ParseSamplingPolicy grammar (e.g.
	// "fixed:400000" or "adaptive:0.05"). Empty keeps the library default
	// (fixed). Malformed policies fail New.
	DefaultSampling string
	// DefaultIntervals enables prediction intervals on /v1/predict,
	// /v1/study and /v1/extrapolate when a request omits the tri-state
	// "intervals" knob. A request carrying the knob always wins.
	DefaultIntervals bool
	// AutoTune lets the server adjust the effective in-flight limit from
	// the observed service-time EWMA: sustained degradation shrinks the
	// limit (never below AutoTuneFloor), recovery grows it back toward
	// MaxInFlight. Off by default.
	AutoTune bool
	// AutoTuneFloor is the smallest limit AutoTune may shrink to.
	// Default: max(1, MaxInFlight/4).
	AutoTuneFloor int
	// TuneInterval is the minimum spacing between AutoTune adjustments.
	// Default: 250ms.
	TuneInterval time.Duration
	// StoreReadCache sizes the marshalled-body LRU on the signature-GET
	// fast path (entries are keyed by content hash, so a hit is always
	// byte-exact). 0 selects the default of 256; negative disables the
	// cache.
	StoreReadCache int
	// AccessLog, when non-nil, receives one line per completed request
	// (method, path, status, bytes, duration, coalesced).
	AccessLog *log.Logger
	// ErrorLog, when non-nil, receives lifecycle messages and the final
	// metrics snapshot flushed by Shutdown.
	ErrorLog *log.Logger
}

// withDefaults fills unset Config fields.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.AutoTuneFloor <= 0 {
		c.AutoTuneFloor = c.MaxInFlight / 4
		if c.AutoTuneFloor < 1 {
			c.AutoTuneFloor = 1
		}
	}
	if c.AutoTuneFloor > c.MaxInFlight {
		c.AutoTuneFloor = c.MaxInFlight
	}
	if c.TuneInterval <= 0 {
		c.TuneInterval = 250 * time.Millisecond
	}
	if c.StoreReadCache == 0 {
		c.StoreReadCache = 256
	}
	return c
}

// maxBodyBytes caps request bodies (inline signatures with many ranks are
// the large case).
const maxBodyBytes = 64 << 20

// flightOut is one computed response, shared verbatim between coalesced
// requests.
type flightOut struct {
	status int
	body   []byte
}

// Server is the HTTP service. Construct with New; it is ready to serve
// (Handler, Serve, Start) immediately and stops accepting work after
// Shutdown.
type Server struct {
	cfg      Config
	eng      Engine
	reg      *obs.Registry
	hs       *http.Server
	mux      *http.ServeMux
	model    tracex.CacheModel     // resolved DefaultCacheModel
	sampling tracex.SamplingPolicy // resolved DefaultSampling (zero: library default)
	ready    atomic.Bool

	// Admission state. The compute limit is an atomic (not a channel
	// capacity) so AutoTune can move it at runtime; running tracks
	// currently executing compute requests and slotFreed (capacity 1)
	// wakes one queued waiter per release, with waiters re-signalling
	// while capacity remains (a short poll backstops lost wakeups when
	// the limit grows).
	limit     atomic.Int64  // current in-flight limit, in [AutoTuneFloor, MaxInFlight]
	running   atomic.Int64  // executing compute requests
	slotFreed chan struct{} // release/retune wakeup, cap 1
	queue     chan struct{} // wait-queue slots; cap MaxQueue
	releaseFn func()        // bound once so admit's happy path does not allocate

	// Auto-tuning state (AutoTune only).
	svcEWMA  *obs.EWMA // service seconds, alpha 0.2
	tuneMu   sync.Mutex
	lastTune time.Time
	tunePrev float64 // EWMA at the previous tune decision

	// jitter draws the Retry-After factor in [0, 1); tests pin it.
	jitter func() float64

	flights *memo.Cache[string, *flightOut]

	// Store-read fast path: marshalled GET bodies keyed by content
	// identity, misses bounded by their own semaphore instead of compute
	// admission.
	bodyCache  *memo.Cache[string, []byte]
	storeReads chan struct{}

	requests   *obs.Counter
	coalesced  *obs.Counter
	rejected   *obs.Counter
	tuneUp     *obs.Counter
	tuneDown   *obs.Counter
	readHits   *obs.Counter
	readMisses *obs.Counter
}

// New returns a Server over cfg.Engine. The registry gains the server.*
// metrics; a nil registry (engine with observability disabled) is fine —
// instrumentation degrades to no-ops.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: config has no engine")
	}
	defaultModel, err := pebil.ParseCacheModel(cfg.DefaultCacheModel)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	defaultSampling, err := tracex.ParseSamplingPolicy(cfg.DefaultSampling)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		eng:       cfg.Engine,
		reg:       cfg.Engine.Registry(),
		model:     defaultModel,
		sampling:  defaultSampling,
		mux:       http.NewServeMux(),
		slotFreed: make(chan struct{}, 1),
		queue:     make(chan struct{}, cfg.MaxQueue),
		svcEWMA:   obs.NewEWMA(0.2),
		tunePrev:  math.NaN(),
		jitter:    rand.Float64,
		// Capacity 0: pure singleflight — responses are deduplicated while
		// in flight and never retained (the engine's caches already hold
		// the expensive artifacts; retaining marshalled bodies would buy
		// no extra hit rate for the memory).
		flights:    memo.New[string, *flightOut](0),
		storeReads: make(chan struct{}, maxInt(2, runtime.GOMAXPROCS(0))),
	}
	s.limit.Store(int64(cfg.MaxInFlight))
	s.releaseFn = s.releaseSlot
	if cfg.StoreReadCache > 0 {
		s.bodyCache = memo.New[string, []byte](cfg.StoreReadCache)
	}
	s.requests = s.reg.Counter("server.requests")
	s.coalesced = s.reg.Counter("server.coalesced")
	s.rejected = s.reg.Counter("server.rejected")
	s.tuneUp = s.reg.Counter("server.tune.up")
	s.tuneDown = s.reg.Counter("server.tune.down")
	s.readHits = s.reg.Counter("server.store.read_hits")
	s.readMisses = s.reg.Counter("server.store.read_misses")
	s.reg.GaugeFunc("server.in_flight", func() float64 { return float64(s.running.Load()) })
	s.reg.GaugeFunc("server.queue.depth", func() float64 { return float64(len(s.queue)) })
	s.reg.GaugeFunc("server.admit.limit", func() float64 { return float64(s.limit.Load()) })

	s.routes()
	s.hs = &http.Server{Handler: s.instrument(s.mux), ErrorLog: cfg.ErrorLog}
	s.ready.Store(true)
	return s, nil
}

// maxInt returns the larger of a and b.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// routes registers every endpoint on the server's mux. Paths come from the
// wire package so the server and its clients cannot drift.
func (s *Server) routes() {
	s.mux.Handle("POST "+wire.PathPredict, handleJSON(s, "predict", true, s.predict))
	s.mux.Handle("POST "+wire.PathStudy, handleJSON(s, "study", true, s.study))
	s.mux.Handle("POST "+wire.PathExtrapolate, handleJSON(s, "extrapolate", false, s.extrapolate))
	s.mux.Handle("POST "+wire.PathSignatures, handleJSON(s, "signatures", false, s.collect))
	s.mux.HandleFunc("GET "+wire.PathSignaturePrefix+"{key}", s.storeGet)
	s.mux.HandleFunc("PUT "+wire.PathSignaturePrefix+"{key}", s.storePut)
	s.mux.HandleFunc("GET "+wire.PathFleetStatus, s.fleetStatus)
	s.mux.HandleFunc("POST "+wire.PathFleetSync, s.fleetSync)
	s.mux.HandleFunc("GET "+wire.PathApps, func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, &wire.AppsResponse{Apps: tracex.Apps()})
	})
	s.mux.HandleFunc("GET "+wire.PathMachines, func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, &wire.MachinesResponse{Machines: tracex.Machines()})
	})
	s.mux.HandleFunc("GET "+wire.PathHealthz, func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, &wire.HealthResponse{Status: "ok"})
	})
	s.mux.HandleFunc("GET "+wire.PathReadyz, func(w http.ResponseWriter, _ *http.Request) {
		if s.ready.Load() {
			writeJSON(w, http.StatusOK, &wire.HealthResponse{Status: "ready"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, &wire.HealthResponse{Status: "draining"})
	})
	// The metrics snapshot answers both its canonical path and the root
	// (the pre-daemon `tracex -metrics-addr` endpoint served it at every
	// path; keeping "/" preserves scrapers pointed at the old URL).
	s.mux.Handle("GET "+wire.PathMetrics, s.reg.Handler())
	s.mux.Handle("GET /{$}", s.reg.Handler())
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, notFoundf("no route %s %s", r.Method, r.URL.Path))
	})
}

// Handler returns the server's full handler (instrumentation included),
// for tests and embedding.
func (s *Server) Handler() http.Handler { return s.hs.Handler }

// Start listens on addr and serves in the background, returning the bound
// address (useful with port 0). Serve errors other than a clean shutdown
// go to ErrorLog.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := s.hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.logf("serve error: %v", err)
		}
	}()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Shutdown (which returns nil here)
// or a listener error.
func (s *Server) Serve(ln net.Listener) error {
	if err := s.hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown gracefully stops the server: the listener closes, /readyz
// flips to not-ready, in-flight requests drain (bounded by ctx), and the
// final metrics snapshot is flushed to ErrorLog. If ctx expires before the
// drain completes, remaining connections are force-closed and ctx's error
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	err := s.hs.Shutdown(ctx)
	if err != nil {
		s.hs.Close()
	}
	if s.cfg.ErrorLog != nil && s.reg != nil {
		if b, merr := json.Marshal(s.reg.Snapshot()); merr == nil {
			s.cfg.ErrorLog.Printf("final metrics snapshot: %s", b)
		}
	}
	return err
}

// logf writes a lifecycle message to ErrorLog, if configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.ErrorLog != nil {
		s.cfg.ErrorLog.Printf(format, args...)
	}
}

// routeName maps a request path to its metric label.
func routeName(path string) string {
	switch path {
	case wire.PathHealthz:
		return "healthz"
	case wire.PathReadyz:
		return "readyz"
	case wire.PathMetrics:
		return "metrics"
	case "/":
		return "root"
	}
	if rest, ok := strings.CutPrefix(path, "/v1/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		switch rest {
		case "predict", "study", "extrapolate", "signatures", "apps", "machines", "fleet":
			return rest
		}
	}
	return "other"
}

// statusWriter captures the response status and size for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// instrument wraps the mux with request counting, per-route latency
// histograms and access logging.
func (s *Server) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeName(r.URL.Path)
		s.requests.Inc()
		s.reg.Counter("server.requests." + route).Inc()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		dur := time.Since(start)
		s.reg.Histogram("server.latency." + route).Observe(dur.Seconds())
		if s.cfg.AccessLog != nil {
			s.cfg.AccessLog.Printf("%s %s %d %dB %.3fms coalesced=%t",
				r.Method, r.URL.Path, sw.status, sw.bytes,
				float64(dur.Microseconds())/1000,
				sw.Header().Get("Tracex-Coalesced") == "true")
		}
	})
}

// tryAcquire claims an in-flight slot if the current limit allows it.
func (s *Server) tryAcquire() bool {
	for {
		cur := s.running.Load()
		if cur >= s.limit.Load() {
			return false
		}
		if s.running.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// releaseSlot returns an in-flight slot and wakes one queued waiter.
func (s *Server) releaseSlot() {
	s.running.Add(-1)
	s.wakeWaiter()
}

// wakeWaiter nudges one queued admit, if any is listening.
func (s *Server) wakeWaiter() {
	select {
	case s.slotFreed <- struct{}{}:
	default:
	}
}

// admitPollInterval backstops slot wakeups: a waiter that misses a signal
// (or is waiting out a limit increase) re-checks at this cadence.
const admitPollInterval = 10 * time.Millisecond

// admit acquires an in-flight slot, queueing within the configured bounds.
// The returned release must be called when the work completes. Arrivals
// beyond limit+MaxQueue, and queued requests that outwait QueueWait, fail
// with errOverloaded (→ 429); a ctx that ends while queued fails with its
// error without ever holding an in-flight slot.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if s.tryAcquire() {
		return s.releaseFn, nil
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, fmt.Errorf("server: %w: %d in-flight and %d queued requests",
			errOverloaded, s.limit.Load(), cap(s.queue))
	}
	defer func() { <-s.queue }()
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	poll := time.NewTicker(admitPollInterval)
	defer poll.Stop()
	for {
		if s.tryAcquire() {
			// Chain the wakeup: if capacity remains (several slots freed at
			// once, or the limit grew), the next waiter should run too.
			if s.running.Load() < s.limit.Load() {
				s.wakeWaiter()
			}
			return s.releaseFn, nil
		}
		select {
		case <-s.slotFreed:
		case <-poll.C:
		case <-timer.C:
			return nil, fmt.Errorf("server: %w: no free slot within %s", errOverloaded, s.cfg.QueueWait)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// observeService folds one compute request's service time into the
// auto-tuner.
func (s *Server) observeService(d time.Duration) {
	if !s.cfg.AutoTune {
		return
	}
	s.svcEWMA.Observe(d.Seconds())
	s.maybeTune(time.Now())
}

// maybeTune applies at most one retune decision per TuneInterval. It
// compares the service-time EWMA against its value at the previous
// decision: sustained degradation shrinks the in-flight limit toward the
// floor, recovery grows it back one slot at a time (AIMD).
func (s *Server) maybeTune(now time.Time) {
	if !s.tuneMu.TryLock() {
		return
	}
	defer s.tuneMu.Unlock()
	if now.Sub(s.lastTune) < s.cfg.TuneInterval {
		return
	}
	s.lastTune = now
	ewma := s.svcEWMA.Value()
	prev := s.tunePrev
	s.tunePrev = ewma
	if math.IsNaN(ewma) || math.IsNaN(prev) {
		return
	}
	cur := s.limit.Load()
	next := retune(cur, int64(s.cfg.AutoTuneFloor), int64(s.cfg.MaxInFlight), prev, ewma)
	if next == cur {
		return
	}
	s.limit.Store(next)
	if next > cur {
		s.tuneUp.Inc()
		// New capacity: wake a queued waiter that would otherwise sit out
		// a poll interval.
		s.wakeWaiter()
	} else {
		s.tuneDown.Inc()
	}
}

// retune is the pure AIMD policy: multiplicative decrease (×4/5, floored)
// when the service-time EWMA degraded by more than 25% since the last
// decision, additive increase (+1, capped) when it is within 5% of — or
// better than — the previous value. In the 5–25% band the limit holds.
func retune(cur, floor, ceil int64, prev, ewma float64) int64 {
	switch {
	case ewma > prev*1.25:
		next := cur * 4 / 5
		if next < floor {
			next = floor
		}
		return next
	case ewma <= prev*1.05 && cur < ceil:
		return cur + 1
	default:
		return cur
	}
}

// handleJSON adapts one typed compute handler into an http.Handler with
// the server's shared requirements: bounded body decoding with unknown
// -field rejection, per-request deadline, admission control, optional
// coalescing, and structured error rendering.
//
// When coalescing, the canonical key is computed from the decoded request
// value (not the raw bytes), so formatting differences between identical
// requests still coalesce. The first request leads: admission and the
// computation run on its goroutine and its context. Followers share the
// leader's marshalled response (marked by the Tracex-Coalesced header) —
// including an error response; a follower whose own context ends while
// waiting gets its context error instead.
func handleJSON[Req any](s *Server, route string, coalesce bool, impl func(ctx context.Context, req *Req) (any, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			s.writeError(w, badRequestf("reading body: %v", err))
			return
		}
		req := new(Req)
		if err := wire.DecodeStrict(bytes.NewReader(body), req); err != nil {
			s.writeError(w, badRequestf("decoding %s request: %v", route, err))
			return
		}
		run := func() (*flightOut, error) {
			release, err := s.admit(ctx)
			if err != nil {
				if errors.Is(err, errOverloaded) {
					s.rejected.Inc()
				}
				return nil, err
			}
			defer release()
			start := time.Now()
			v, err := impl(ctx, req)
			s.observeService(time.Since(start))
			if err != nil {
				return nil, err
			}
			b, err := encodeResponse(route, v)
			if err != nil {
				return nil, err
			}
			return &flightOut{status: http.StatusOK, body: b}, nil
		}
		var out *flightOut
		var joined bool
		if coalesce && !s.cfg.DisableCoalescing {
			key, kerr := tracex.CanonicalRequestKey(route, req)
			if kerr != nil {
				s.writeError(w, kerr)
				return
			}
			out, joined, err = s.flights.Do(ctx, key, run)
			if joined {
				s.coalesced.Inc()
				w.Header().Set("Tracex-Coalesced", "true")
			}
		} else {
			out, err = run()
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeRaw(w, out.status, out.body)
	})
}

// encodeResponse marshals a handler's response, preferring the wire
// package's allocation-free append encoder when the type has one (predict
// and study — the hot paths).
func encodeResponse(route string, v any) ([]byte, error) {
	if am, ok := v.(wire.AppendMarshaler); ok {
		return am.AppendJSON(make([]byte, 0, 512)), nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("server: encoding %s response: %w", route, err)
	}
	return b, nil
}

// writeError renders err as the structured wire.ErrorBody, attaching a
// jittered Retry-After on 429.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := classify(err)
	body := wire.ErrorBody{Error: wire.ErrorDetail{Code: code, Message: err.Error(), Status: status}}
	if status == http.StatusTooManyRequests {
		secs := s.retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		body.Error.RetryAfterSeconds = secs
	}
	writeJSON(w, status, body)
}

// retryAfterSeconds draws one jittered Retry-After value: uniform in
// [0.5×, 1.5×] of the configured base, rounded up to whole seconds,
// never below 1.
func (s *Server) retryAfterSeconds() int {
	secs := int(math.Ceil(s.cfg.RetryAfter.Seconds() * (0.5 + s.jitter())))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeJSON marshals v and writes it with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Wire types are marshal-safe by construction; this is a
		// programming error, not a request error.
		http.Error(w, `{"error":{"code":"internal","message":"encoding response","status":500}}`, http.StatusInternalServerError)
		return
	}
	writeRaw(w, status, b)
}

// writeRaw writes pre-marshalled JSON. Write errors are the client's
// disconnect; there is nothing left to do with them.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte{'\n'})
}

// collectOpt builds the collection options for a wire request: an omitted
// model or sampling policy selects the server's configured default, and an
// unknown name, malformed policy or invalid combination is a 400 (the
// fields are client-supplied).
func (s *Server) collectOpt(sampleRefs int, model, sampling string) (tracex.CollectOptions, error) {
	m := s.model
	if model != "" {
		var err error
		if m, err = pebil.ParseCacheModel(model); err != nil {
			return tracex.CollectOptions{}, badRequestf("%v", err)
		}
	}
	pol := s.sampling
	if sampling != "" {
		var err error
		if pol, err = tracex.ParseSamplingPolicy(sampling); err != nil {
			return tracex.CollectOptions{}, badRequestf("%v", err)
		}
	} else if sampleRefs != 0 {
		// The client chose the legacy sample_refs knob explicitly; the
		// server's default policy must not turn that into a conflict.
		pol = tracex.SamplingPolicy{}
	}
	opt := tracex.CollectOptions{SampleRefs: sampleRefs, Model: m, Sampling: pol}
	if err := opt.Validate(); err != nil {
		// A request combining "sample_refs" with a "sampling" policy, or an
		// adaptive policy with an unsupported model, is a client error.
		return tracex.CollectOptions{}, badRequestf("%v", err)
	}
	return opt, nil
}

// extrapOpt builds the extrapolation options for a wire request.
func extrapOpt(extended bool) tracex.ExtrapOptions {
	if extended {
		return tracex.ExtrapOptions{Forms: tracex.ExtendedForms()}
	}
	return tracex.ExtrapOptions{}
}

// intervalsFor resolves a request's tri-state intervals knob against the
// server default: an absent knob (nil) defers to Config.DefaultIntervals.
func (s *Server) intervalsFor(knob *bool) bool {
	if knob != nil {
		return *knob
	}
	return s.cfg.DefaultIntervals
}

// lookupApp resolves an application name to 404-classified errors.
func lookupApp(name string) (*tracex.App, error) {
	if name == "" {
		return nil, badRequestf("request names no application")
	}
	app, err := tracex.LoadApp(name)
	if err != nil {
		return nil, notFoundf("%v", err)
	}
	return app, nil
}

// lookupMachine resolves a machine name to 404-classified errors.
func lookupMachine(name string) (tracex.MachineConfig, error) {
	if name == "" {
		return tracex.MachineConfig{}, badRequestf("request names no machine")
	}
	cfg, err := tracex.LoadMachine(name)
	if err != nil {
		return tracex.MachineConfig{}, notFoundf("%v", err)
	}
	return cfg, nil
}

// predict implements POST /v1/predict.
func (s *Server) predict(ctx context.Context, req *wire.PredictRequest) (any, error) {
	sig := req.Signature
	// from records which tier produced the signature ("inline" when the
	// client sent it; otherwise the engine's provenance — memory, disk,
	// collected or analytical).
	from := "inline"
	model := ""
	sampling := ""
	if sig != nil {
		if err := sig.Validate(); err != nil {
			return nil, err
		}
	} else {
		if req.Cores <= 0 {
			return nil, badRequestf("predict requires cores > 0 (or an inline signature)")
		}
		app, err := lookupApp(req.App)
		if err != nil {
			return nil, err
		}
		cfg, err := lookupMachine(req.Machine)
		if err != nil {
			return nil, err
		}
		opt, err := s.collectOpt(req.SampleRefs, req.Model, req.Sampling)
		if err != nil {
			return nil, err
		}
		model = string(opt.Model)
		sampling = opt.EffectiveSampling().String()
		var prov tracex.Provenance
		sig, prov, err = s.eng.CollectSignatureFrom(ctx, app, req.Cores, cfg, opt)
		if err != nil {
			return nil, err
		}
		from = string(prov)
	}
	appName := req.App
	if appName == "" {
		appName = sig.App
	}
	app, err := lookupApp(appName)
	if err != nil {
		return nil, err
	}
	pred, err := s.eng.Predict(ctx, tracex.PredictRequest{
		Signature: sig,
		App:       app,
		Intervals: s.intervalsFor(req.Intervals),
	})
	if err != nil {
		return nil, err
	}
	resp := wire.PredictionResponse(pred)
	resp.From = from
	resp.Model = model
	resp.Sampling = sampling
	return resp, nil
}

// study implements POST /v1/study.
func (s *Server) study(ctx context.Context, req *wire.StudyRequest) (any, error) {
	app, err := lookupApp(req.App)
	if err != nil {
		return nil, err
	}
	cfg, err := lookupMachine(req.Machine)
	if err != nil {
		return nil, err
	}
	opt, err := s.collectOpt(req.SampleRefs, req.Model, req.Sampling)
	if err != nil {
		return nil, err
	}
	res, err := s.eng.Study(ctx, tracex.StudyRequest{
		App:          app,
		Machine:      cfg,
		InputCounts:  req.InputCounts,
		TargetCores:  req.TargetCores,
		TargetCounts: req.TargetCounts,
		Collect:      opt,
		Extrap:       extrapOpt(req.ExtendedForms),
		WithTruth:    req.WithTruth,
		Intervals:    s.intervalsFor(req.Intervals),
	})
	if err != nil {
		return nil, err
	}
	return &wire.StudyResponse{
		App:         req.App,
		Machine:     req.Machine,
		InputCounts: req.InputCounts,
		Rows:        res.Rows(),
	}, nil
}

// extrapolate implements POST /v1/extrapolate.
func (s *Server) extrapolate(ctx context.Context, req *wire.ExtrapolateRequest) (any, error) {
	if len(req.Signatures) < 2 {
		return nil, badRequestf("extrapolate requires at least 2 input signatures, got %d", len(req.Signatures))
	}
	if req.TargetCores <= 0 {
		return nil, badRequestf("extrapolate requires target_cores > 0")
	}
	exOpt := extrapOpt(req.ExtendedForms)
	exOpt.Intervals = s.intervalsFor(req.Intervals)
	res, err := s.eng.Extrapolate(ctx, req.Signatures, req.TargetCores, exOpt)
	if err != nil {
		return nil, err
	}
	return &wire.ExtrapolateResponse{
		Signature:     res.Signature,
		Fits:          len(res.Fits),
		SkippedBlocks: res.SkippedBlocks,
	}, nil
}

// collect implements POST /v1/signatures.
func (s *Server) collect(ctx context.Context, req *wire.SignatureRequest) (any, error) {
	if req.Cores <= 0 {
		return nil, badRequestf("signatures requires cores > 0")
	}
	app, err := lookupApp(req.App)
	if err != nil {
		return nil, err
	}
	cfg, err := lookupMachine(req.Machine)
	if err != nil {
		return nil, err
	}
	opt, err := s.collectOpt(req.SampleRefs, req.Model, req.Sampling)
	if err != nil {
		return nil, err
	}
	if req.Delegated {
		// A fleet peer delegated this collection because the ring names
		// this node the key's owner. Collect strictly locally — never via
		// our own peer tier — so momentarily disagreeing rings cannot
		// delegate in a cycle.
		ctx = tracex.ContextWithoutRemoteTier(ctx)
	}
	sig, err := s.eng.CollectSignature(ctx, app, req.Cores, cfg, opt)
	if err != nil {
		return nil, err
	}
	dom := sig.DominantTrace()
	return &wire.SignatureResponse{
		Ranks:        len(sig.Traces),
		Blocks:       len(dom.Blocks),
		DominantRank: dom.Rank,
		Signature:    sig,
	}, nil
}
