// Package server turns a tracex.Engine into a long-lived HTTP JSON
// service: the tracexd daemon's core. It layers onto the engine exactly
// what a shared deployment needs and the library deliberately does not
// have:
//
//   - admission control — a bounded in-flight limit plus a bounded wait
//     queue; requests beyond both bounds are answered 429 with a
//     Retry-After header instead of piling onto the worker pool;
//   - request coalescing — identical in-flight /v1/predict and /v1/study
//     requests (keyed by tracex.CanonicalRequestKey over the decoded body)
//     share one computation and one marshalled response, on top of the
//     engine's memo singleflight;
//   - deadline and disconnect propagation — each request's context (plus
//     the optional per-request timeout) flows into the engine, so a client
//     hanging up cancels the simulations it asked for;
//   - structured errors — every failure renders a stable JSON ErrorBody
//     whose code is derived from the library's exported sentinel errors;
//   - lifecycle — Start serves in the background, Shutdown stops the
//     listener, flips /readyz to not-ready, drains in-flight requests and
//     flushes a final metrics snapshot.
//
// Observability rides on the engine's obs.Registry under the server.*
// namespace (requests, per-route latency histograms, in-flight and queue
// gauges, coalesced/rejected counters) and is served at /metrics.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"tracex"
	"tracex/internal/memo"
	"tracex/internal/obs"
	"tracex/internal/pebil"
)

// Engine is the slice of tracex.Engine the server drives. It is an
// interface so tests can interpose slow or blocking pipelines; a
// *tracex.Engine satisfies it directly.
type Engine interface {
	Predict(ctx context.Context, req tracex.PredictRequest) (*tracex.Prediction, error)
	Study(ctx context.Context, req tracex.StudyRequest) (*tracex.StudyResult, error)
	Extrapolate(ctx context.Context, inputs []*tracex.Signature, targetCores int, opt tracex.ExtrapOptions) (*tracex.ExtrapResult, error)
	CollectSignature(ctx context.Context, app *tracex.App, cores int, target tracex.MachineConfig, opt tracex.CollectOptions) (*tracex.Signature, error)
	CollectSignatureFrom(ctx context.Context, app *tracex.App, cores int, target tracex.MachineConfig, opt tracex.CollectOptions) (*tracex.Signature, tracex.Provenance, error)
	Store() *tracex.SignatureStore
	Registry() *obs.Registry
}

// Config parameterizes New. The zero value of every field except Engine is
// usable; defaults are documented per field.
type Config struct {
	// Engine executes the pipeline. Required.
	Engine Engine
	// MaxInFlight bounds concurrently executing compute requests
	// (/v1/predict, /v1/study, /v1/extrapolate, /v1/signatures). Health,
	// listing and metrics routes are never gated. Default: GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; arrivals
	// beyond MaxInFlight+MaxQueue are rejected immediately with 429.
	// Default: 4×MaxInFlight.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for an in-flight
	// slot before giving up with 429. Default: 2s.
	QueueWait time.Duration
	// RequestTimeout caps each compute request's wall-clock via its
	// context; 0 disables the cap (the client's disconnect still cancels).
	RequestTimeout time.Duration
	// RetryAfter is advertised on 429 responses (header and body),
	// rounded up to whole seconds. Default: 1s.
	RetryAfter time.Duration
	// DisableCoalescing turns off identical-request coalescing on
	// /v1/predict and /v1/study.
	DisableCoalescing bool
	// DefaultCacheModel is the cache model used when a request omits
	// "model": "exact" (the default) or "analytical". Unknown names fail
	// New.
	DefaultCacheModel string
	// AccessLog, when non-nil, receives one line per completed request
	// (method, path, status, bytes, duration, coalesced).
	AccessLog *log.Logger
	// ErrorLog, when non-nil, receives lifecycle messages and the final
	// metrics snapshot flushed by Shutdown.
	ErrorLog *log.Logger
}

// withDefaults fills unset Config fields.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// maxBodyBytes caps request bodies (inline signatures with many ranks are
// the large case).
const maxBodyBytes = 64 << 20

// flightOut is one computed response, shared verbatim between coalesced
// requests.
type flightOut struct {
	status int
	body   []byte
}

// Server is the HTTP service. Construct with New; it is ready to serve
// (Handler, Serve, Start) immediately and stops accepting work after
// Shutdown.
type Server struct {
	cfg   Config
	eng   Engine
	reg   *obs.Registry
	hs    *http.Server
	mux   *http.ServeMux
	model tracex.CacheModel // resolved DefaultCacheModel
	ready atomic.Bool

	inflight chan struct{} // in-flight slots; cap MaxInFlight
	queue    chan struct{} // wait-queue slots; cap MaxQueue
	flights  *memo.Cache[string, *flightOut]

	requests  *obs.Counter
	coalesced *obs.Counter
	rejected  *obs.Counter
}

// New returns a Server over cfg.Engine. The registry gains the server.*
// metrics; a nil registry (engine with observability disabled) is fine —
// instrumentation degrades to no-ops.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: config has no engine")
	}
	defaultModel, err := pebil.ParseCacheModel(cfg.DefaultCacheModel)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		eng:      cfg.Engine,
		reg:      cfg.Engine.Registry(),
		model:    defaultModel,
		mux:      http.NewServeMux(),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		queue:    make(chan struct{}, cfg.MaxQueue),
		// Capacity 0: pure singleflight — responses are deduplicated while
		// in flight and never retained (the engine's caches already hold
		// the expensive artifacts; retaining marshalled bodies would buy
		// no extra hit rate for the memory).
		flights: memo.New[string, *flightOut](0),
	}
	s.requests = s.reg.Counter("server.requests")
	s.coalesced = s.reg.Counter("server.coalesced")
	s.rejected = s.reg.Counter("server.rejected")
	s.reg.GaugeFunc("server.in_flight", func() float64 { return float64(len(s.inflight)) })
	s.reg.GaugeFunc("server.queue.depth", func() float64 { return float64(len(s.queue)) })

	s.routes()
	s.hs = &http.Server{Handler: s.instrument(s.mux), ErrorLog: cfg.ErrorLog}
	s.ready.Store(true)
	return s, nil
}

// routes registers every endpoint on the server's mux.
func (s *Server) routes() {
	s.mux.Handle("POST /v1/predict", handleJSON(s, "predict", true, s.predict))
	s.mux.Handle("POST /v1/study", handleJSON(s, "study", true, s.study))
	s.mux.Handle("POST /v1/extrapolate", handleJSON(s, "extrapolate", false, s.extrapolate))
	s.mux.Handle("POST /v1/signatures", handleJSON(s, "signatures", false, s.collect))
	s.mux.HandleFunc("GET /v1/signatures/{key}", s.storeGet)
	s.mux.HandleFunc("PUT /v1/signatures/{key}", s.storePut)
	s.mux.HandleFunc("GET /v1/apps", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"apps": tracex.Apps()})
	})
	s.mux.HandleFunc("GET /v1/machines", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"machines": tracex.Machines()})
	})
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.ready.Load() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	})
	// The metrics snapshot answers both its canonical path and the root
	// (the pre-daemon `tracex -metrics-addr` endpoint served it at every
	// path; keeping "/" preserves scrapers pointed at the old URL).
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.Handle("GET /{$}", s.reg.Handler())
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, notFoundf("no route %s %s", r.Method, r.URL.Path))
	})
}

// Handler returns the server's full handler (instrumentation included),
// for tests and embedding.
func (s *Server) Handler() http.Handler { return s.hs.Handler }

// Start listens on addr and serves in the background, returning the bound
// address (useful with port 0). Serve errors other than a clean shutdown
// go to ErrorLog.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := s.hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.logf("serve error: %v", err)
		}
	}()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Shutdown (which returns nil here)
// or a listener error.
func (s *Server) Serve(ln net.Listener) error {
	if err := s.hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown gracefully stops the server: the listener closes, /readyz
// flips to not-ready, in-flight requests drain (bounded by ctx), and the
// final metrics snapshot is flushed to ErrorLog. If ctx expires before the
// drain completes, remaining connections are force-closed and ctx's error
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	err := s.hs.Shutdown(ctx)
	if err != nil {
		s.hs.Close()
	}
	if s.cfg.ErrorLog != nil && s.reg != nil {
		if b, merr := json.Marshal(s.reg.Snapshot()); merr == nil {
			s.cfg.ErrorLog.Printf("final metrics snapshot: %s", b)
		}
	}
	return err
}

// logf writes a lifecycle message to ErrorLog, if configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.ErrorLog != nil {
		s.cfg.ErrorLog.Printf(format, args...)
	}
}

// routeName maps a request path to its metric label.
func routeName(path string) string {
	switch path {
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	case "/metrics":
		return "metrics"
	case "/":
		return "root"
	}
	if rest, ok := strings.CutPrefix(path, "/v1/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		switch rest {
		case "predict", "study", "extrapolate", "signatures", "apps", "machines":
			return rest
		}
	}
	return "other"
}

// statusWriter captures the response status and size for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// instrument wraps the mux with request counting, per-route latency
// histograms and access logging.
func (s *Server) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeName(r.URL.Path)
		s.requests.Inc()
		s.reg.Counter("server.requests." + route).Inc()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		dur := time.Since(start)
		s.reg.Histogram("server.latency." + route).Observe(dur.Seconds())
		if s.cfg.AccessLog != nil {
			s.cfg.AccessLog.Printf("%s %s %d %dB %.3fms coalesced=%t",
				r.Method, r.URL.Path, sw.status, sw.bytes,
				float64(dur.Microseconds())/1000,
				sw.Header().Get("Tracex-Coalesced") == "true")
		}
	})
}

// admit acquires an in-flight slot, queueing within the configured bounds.
// The returned release must be called when the work completes. Arrivals
// beyond MaxInFlight+MaxQueue, and queued requests that outwait QueueWait,
// fail with errOverloaded (→ 429); a cancelled ctx fails with its error.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	release = func() { <-s.inflight }
	select {
	case s.inflight <- struct{}{}:
		return release, nil
	default:
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, fmt.Errorf("server: %w: %d in-flight and %d queued requests",
			errOverloaded, cap(s.inflight), cap(s.queue))
	}
	defer func() { <-s.queue }()
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.inflight <- struct{}{}:
		return release, nil
	case <-timer.C:
		return nil, fmt.Errorf("server: %w: no free slot within %s", errOverloaded, s.cfg.QueueWait)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// handleJSON adapts one typed compute handler into an http.Handler with
// the server's shared requirements: bounded body decoding with unknown
// -field rejection, per-request deadline, admission control, optional
// coalescing, and structured error rendering.
//
// When coalescing, the canonical key is computed from the decoded request
// value (not the raw bytes), so formatting differences between identical
// requests still coalesce. The first request leads: admission and the
// computation run on its goroutine and its context. Followers share the
// leader's marshalled response (marked by the Tracex-Coalesced header) —
// including an error response; a follower whose own context ends while
// waiting gets its context error instead.
func handleJSON[Req any](s *Server, route string, coalesce bool, impl func(ctx context.Context, req *Req) (any, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			s.writeError(w, badRequestf("reading body: %v", err))
			return
		}
		req := new(Req)
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(req); err != nil {
			s.writeError(w, badRequestf("decoding %s request: %v", route, err))
			return
		}
		run := func() (*flightOut, error) {
			release, err := s.admit(ctx)
			if err != nil {
				if errors.Is(err, errOverloaded) {
					s.rejected.Inc()
				}
				return nil, err
			}
			defer release()
			v, err := impl(ctx, req)
			if err != nil {
				return nil, err
			}
			b, err := json.Marshal(v)
			if err != nil {
				return nil, fmt.Errorf("server: encoding %s response: %w", route, err)
			}
			return &flightOut{status: http.StatusOK, body: b}, nil
		}
		var out *flightOut
		var joined bool
		if coalesce && !s.cfg.DisableCoalescing {
			key, kerr := tracex.CanonicalRequestKey(route, req)
			if kerr != nil {
				s.writeError(w, kerr)
				return
			}
			out, joined, err = s.flights.Do(ctx, key, run)
			if joined {
				s.coalesced.Inc()
				w.Header().Set("Tracex-Coalesced", "true")
			}
		} else {
			out, err = run()
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeRaw(w, out.status, out.body)
	})
}

// writeError renders err as the structured ErrorBody, attaching
// Retry-After on 429.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := classify(err)
	body := ErrorBody{Error: ErrorDetail{Code: code, Message: err.Error(), Status: status}}
	if status == http.StatusTooManyRequests {
		secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		body.Error.RetryAfterSeconds = secs
	}
	writeJSON(w, status, body)
}

// writeJSON marshals v and writes it with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Wire types are marshal-safe by construction; this is a
		// programming error, not a request error.
		http.Error(w, `{"error":{"code":"internal","message":"encoding response","status":500}}`, http.StatusInternalServerError)
		return
	}
	writeRaw(w, status, b)
}

// writeRaw writes pre-marshalled JSON. Write errors are the client's
// disconnect; there is nothing left to do with them.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte{'\n'})
}

// collectOpt builds the collection options for a wire request: an omitted
// model selects the server's configured default, and an unknown name is a
// 400 (the field is client-supplied).
func (s *Server) collectOpt(sampleRefs int, model string) (tracex.CollectOptions, error) {
	m := s.model
	if model != "" {
		var err error
		if m, err = pebil.ParseCacheModel(model); err != nil {
			return tracex.CollectOptions{}, badRequestf("%v", err)
		}
	}
	return tracex.CollectOptions{SampleRefs: sampleRefs, Model: m}, nil
}

// extrapOpt builds the extrapolation options for a wire request.
func extrapOpt(extended bool) tracex.ExtrapOptions {
	if extended {
		return tracex.ExtrapOptions{Forms: tracex.ExtendedForms()}
	}
	return tracex.ExtrapOptions{}
}

// lookupApp resolves an application name to 404-classified errors.
func lookupApp(name string) (*tracex.App, error) {
	if name == "" {
		return nil, badRequestf("request names no application")
	}
	app, err := tracex.LoadApp(name)
	if err != nil {
		return nil, notFoundf("%v", err)
	}
	return app, nil
}

// lookupMachine resolves a machine name to 404-classified errors.
func lookupMachine(name string) (tracex.MachineConfig, error) {
	if name == "" {
		return tracex.MachineConfig{}, badRequestf("request names no machine")
	}
	cfg, err := tracex.LoadMachine(name)
	if err != nil {
		return tracex.MachineConfig{}, notFoundf("%v", err)
	}
	return cfg, nil
}

// predict implements POST /v1/predict.
func (s *Server) predict(ctx context.Context, req *PredictRequest) (any, error) {
	sig := req.Signature
	// from records which tier produced the signature ("inline" when the
	// client sent it; otherwise the engine's provenance — memory, disk,
	// collected or analytical).
	from := "inline"
	model := ""
	if sig != nil {
		if err := sig.Validate(); err != nil {
			return nil, err
		}
	} else {
		if req.Cores <= 0 {
			return nil, badRequestf("predict requires cores > 0 (or an inline signature)")
		}
		app, err := lookupApp(req.App)
		if err != nil {
			return nil, err
		}
		cfg, err := lookupMachine(req.Machine)
		if err != nil {
			return nil, err
		}
		opt, err := s.collectOpt(req.SampleRefs, req.Model)
		if err != nil {
			return nil, err
		}
		model = string(opt.Model)
		var prov tracex.Provenance
		sig, prov, err = s.eng.CollectSignatureFrom(ctx, app, req.Cores, cfg, opt)
		if err != nil {
			return nil, err
		}
		from = string(prov)
	}
	appName := req.App
	if appName == "" {
		appName = sig.App
	}
	app, err := lookupApp(appName)
	if err != nil {
		return nil, err
	}
	pred, err := s.eng.Predict(ctx, tracex.PredictRequest{Signature: sig, App: app})
	if err != nil {
		return nil, err
	}
	return &PredictResponse{
		App:            pred.App,
		Cores:          pred.CoreCount,
		Machine:        pred.Machine,
		RuntimeSeconds: pred.Runtime,
		ComputeSeconds: pred.ComputeSeconds,
		CommSeconds:    pred.CommSeconds,
		MemSeconds:     pred.MemSeconds,
		FPSeconds:      pred.FPSeconds,
		From:           from,
		Model:          model,
	}, nil
}

// study implements POST /v1/study.
func (s *Server) study(ctx context.Context, req *StudyRequest) (any, error) {
	app, err := lookupApp(req.App)
	if err != nil {
		return nil, err
	}
	cfg, err := lookupMachine(req.Machine)
	if err != nil {
		return nil, err
	}
	opt, err := s.collectOpt(req.SampleRefs, req.Model)
	if err != nil {
		return nil, err
	}
	res, err := s.eng.Study(ctx, tracex.StudyRequest{
		App:          app,
		Machine:      cfg,
		InputCounts:  req.InputCounts,
		TargetCores:  req.TargetCores,
		TargetCounts: req.TargetCounts,
		Collect:      opt,
		Extrap:       extrapOpt(req.ExtendedForms),
		WithTruth:    req.WithTruth,
	})
	if err != nil {
		return nil, err
	}
	return &StudyResponse{
		App:         req.App,
		Machine:     req.Machine,
		InputCounts: req.InputCounts,
		Rows:        res.Rows(),
	}, nil
}

// extrapolate implements POST /v1/extrapolate.
func (s *Server) extrapolate(ctx context.Context, req *ExtrapolateRequest) (any, error) {
	if len(req.Signatures) < 2 {
		return nil, badRequestf("extrapolate requires at least 2 input signatures, got %d", len(req.Signatures))
	}
	if req.TargetCores <= 0 {
		return nil, badRequestf("extrapolate requires target_cores > 0")
	}
	res, err := s.eng.Extrapolate(ctx, req.Signatures, req.TargetCores, extrapOpt(req.ExtendedForms))
	if err != nil {
		return nil, err
	}
	return &ExtrapolateResponse{
		Signature:     res.Signature,
		Fits:          len(res.Fits),
		SkippedBlocks: res.SkippedBlocks,
	}, nil
}

// collect implements POST /v1/signatures.
func (s *Server) collect(ctx context.Context, req *SignatureRequest) (any, error) {
	if req.Cores <= 0 {
		return nil, badRequestf("signatures requires cores > 0")
	}
	app, err := lookupApp(req.App)
	if err != nil {
		return nil, err
	}
	cfg, err := lookupMachine(req.Machine)
	if err != nil {
		return nil, err
	}
	opt, err := s.collectOpt(req.SampleRefs, req.Model)
	if err != nil {
		return nil, err
	}
	sig, err := s.eng.CollectSignature(ctx, app, req.Cores, cfg, opt)
	if err != nil {
		return nil, err
	}
	dom := sig.DominantTrace()
	return &SignatureResponse{
		Ranks:        len(sig.Traces),
		Blocks:       len(dom.Blocks),
		DominantRank: dom.Rank,
		Signature:    sig,
	}, nil
}
