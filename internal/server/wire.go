package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"tracex"
)

// This file defines the service's wire formats: the JSON request and
// response bodies of every /v1 route, and the structured error body every
// failure path renders. Wire types are distinct from the library types so
// the HTTP contract can stay stable while the library evolves; field order
// is fixed by struct declaration, which makes the encodings golden-file
// testable.

// PredictRequest is the body of POST /v1/predict. Either an inline
// Signature or an (App, Cores, Machine) triple must be supplied; with the
// triple, the server collects the signature first (the engine memoizes it).
type PredictRequest struct {
	// App names the proxy application (see GET /v1/apps). Optional with an
	// inline signature, where it defaults to the signature's application.
	App string `json:"app,omitempty"`
	// Machine names the target system (see GET /v1/machines). Required
	// when collecting; ignored with an inline signature.
	Machine string `json:"machine,omitempty"`
	// Cores is the core count to collect at. Required without a signature.
	Cores int `json:"cores,omitempty"`
	// SampleRefs tunes collection (references simulated per block; 0 =
	// server default).
	SampleRefs int `json:"sample_refs,omitempty"`
	// Model selects the cache model for collection: "exact" (default)
	// simulates the target hierarchy, "analytical" derives hit rates from a
	// machine-independent reuse-distance signature. Ignored with an inline
	// signature.
	Model string `json:"model,omitempty"`
	// Signature predicts from an already-collected (or extrapolated)
	// signature instead of collecting one.
	Signature *tracex.Signature `json:"signature,omitempty"`
}

// PredictResponse is the body of a successful POST /v1/predict.
type PredictResponse struct {
	App            string  `json:"app"`
	Cores          int     `json:"cores"`
	Machine        string  `json:"machine"`
	RuntimeSeconds float64 `json:"runtime_seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	MemSeconds     float64 `json:"mem_seconds"`
	FPSeconds      float64 `json:"fp_seconds"`
	// From reports where the signature came from: "inline" when the client
	// supplied it, otherwise the engine cache tier that satisfied the
	// collection ("memory", "disk", "collected" or "analytical").
	From string `json:"from,omitempty"`
	// Model echoes the cache model that produced the signature's hit rates
	// ("exact" or "analytical"; empty for inline signatures).
	Model string `json:"model,omitempty"`
}

// StudyRequest is the body of POST /v1/study: the full
// collect → extrapolate → predict pipeline in one call.
type StudyRequest struct {
	App     string `json:"app"`
	Machine string `json:"machine"`
	// InputCounts are the small core counts to trace (the paper uses
	// three).
	InputCounts []int `json:"input_counts"`
	// TargetCores and TargetCounts name the extrapolation targets; the
	// study evaluates their sorted, deduplicated union.
	TargetCores  int   `json:"target_cores,omitempty"`
	TargetCounts []int `json:"target_counts,omitempty"`
	// SampleRefs tunes collection (0 = server default).
	SampleRefs int `json:"sample_refs,omitempty"`
	// Model selects the cache model for every collection in the study
	// ("exact" default, or "analytical").
	Model string `json:"model,omitempty"`
	// ExtendedForms adds the power-law and quadratic forms to the fit.
	ExtendedForms bool `json:"extended_forms,omitempty"`
	// WithTruth additionally collects at each target count and predicts
	// from it (the paper's Table I baseline). Expensive at scale.
	WithTruth bool `json:"with_truth,omitempty"`
}

// StudyResponse is the body of a successful POST /v1/study.
type StudyResponse struct {
	App         string            `json:"app"`
	Machine     string            `json:"machine"`
	InputCounts []int             `json:"input_counts"`
	Rows        []tracex.StudyRow `json:"rows"`
}

// ExtrapolateRequest is the body of POST /v1/extrapolate.
type ExtrapolateRequest struct {
	// Signatures are the input signatures (≥ 2, same app and machine,
	// distinct core counts).
	Signatures []*tracex.Signature `json:"signatures"`
	// TargetCores is the count to synthesize a signature for.
	TargetCores int `json:"target_cores"`
	// ExtendedForms adds the power-law and quadratic forms to the fit.
	ExtendedForms bool `json:"extended_forms,omitempty"`
}

// ExtrapolateResponse is the body of a successful POST /v1/extrapolate.
type ExtrapolateResponse struct {
	Signature     *tracex.Signature `json:"signature"`
	Fits          int               `json:"fits"`
	SkippedBlocks []uint64          `json:"skipped_blocks,omitempty"`
}

// SignatureRequest is the body of POST /v1/signatures: collect one
// application signature.
type SignatureRequest struct {
	App        string `json:"app"`
	Cores      int    `json:"cores"`
	Machine    string `json:"machine"`
	SampleRefs int    `json:"sample_refs,omitempty"`
	// Model selects the cache model ("exact" default, or "analytical").
	Model string `json:"model,omitempty"`
}

// SignatureResponse is the body of a successful POST /v1/signatures.
type SignatureResponse struct {
	Ranks        int               `json:"ranks"`
	Blocks       int               `json:"blocks"`
	DominantRank int               `json:"dominant_rank"`
	Signature    *tracex.Signature `json:"signature"`
}

// StoredSignatureResponse is the body of a successful
// GET /v1/signatures/{key}.
type StoredSignatureResponse struct {
	App     string `json:"app"`
	Machine string `json:"machine"`
	Cores   int    `json:"cores"`
	// Hash is the object's hex SHA-256 content hash.
	Hash string `json:"hash"`
	// Bytes and Unix carry the manifest entry's metadata when the object
	// is still referenced (zero for an unreferenced hash fetch).
	Bytes     int64             `json:"bytes,omitempty"`
	Unix      int64             `json:"unix,omitempty"`
	Signature *tracex.Signature `json:"signature"`
}

// StorePutResponse is the body of a successful PUT /v1/signatures/{key}.
type StorePutResponse struct {
	App     string `json:"app"`
	Machine string `json:"machine"`
	Cores   int    `json:"cores"`
	Hash    string `json:"hash"`
	Bytes   int64  `json:"bytes"`
}

// ErrorBody is the JSON rendering of every failed request. Codes are
// stable API: clients branch on Code, not Message.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries one error's machine-readable classification and
// human-readable context.
type ErrorDetail struct {
	// Code is the stable, snake_case error class (see classify).
	Code string `json:"code"`
	// Message is the underlying error text.
	Message string `json:"message"`
	// Status mirrors the HTTP status code for clients that only see the
	// body.
	Status int `json:"status"`
	// RetryAfterSeconds accompanies 429 responses (it mirrors the
	// Retry-After header).
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// StatusClientClosedRequest reports a request abandoned by its client
// before a response was produced (nginx's conventional 499; there is no
// standard code).
const StatusClientClosedRequest = 499

// Server-side sentinels for request classification. Handlers wrap them so
// classify can map handler-level failures without string matching.
var (
	// errOverloaded reports admission-control rejection: no in-flight or
	// queue slot within the configured bounds. Mapped to 429.
	errOverloaded = errors.New("server overloaded")
	// errNotFound reports an unknown application, machine or route.
	errNotFound = errors.New("not found")
	// errBadRequest reports an unparseable or semantically invalid body.
	errBadRequest = errors.New("bad request")
	// errNoStore reports a store route on a daemon running without a
	// persistent store. Mapped to 501.
	errNoStore = errors.New("no signature store configured")
)

// badRequestf wraps a formatted message as a 400-classified error.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

// notFoundf wraps a formatted message as a 404-classified error.
func notFoundf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errNotFound, fmt.Sprintf(format, args...))
}

// classify maps an error from the handler or pipeline to its HTTP status
// and stable error code. Every exported tracex sentinel has a fixed
// mapping, so library refactors cannot silently change the API contract.
func classify(err error) (status int, code string) {
	switch {
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, errNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, errNoStore):
		return http.StatusNotImplemented, "no_store"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "client_closed_request"
	case errors.Is(err, tracex.ErrRankOutOfRange):
		return http.StatusBadRequest, "rank_out_of_range"
	case errors.Is(err, tracex.ErrMachineMismatch):
		return http.StatusConflict, "machine_mismatch"
	case errors.Is(err, tracex.ErrNoTraces):
		return http.StatusUnprocessableEntity, "no_traces"
	case errors.Is(err, tracex.ErrEmptyWorkload):
		return http.StatusUnprocessableEntity, "empty_workload"
	case errors.Is(err, tracex.ErrModelUnsupported):
		return http.StatusUnprocessableEntity, "model_unsupported"
	case errors.Is(err, tracex.ErrBadParallelism):
		return http.StatusInternalServerError, "bad_parallelism"
	default:
		return http.StatusInternalServerError, "internal"
	}
}
