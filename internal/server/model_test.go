package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"tracex/wire"
)

// TestPredictCacheModel exercises the model field end to end: the response
// echoes the model a collection ran under, unknown names are 400s, and
// targets the analytical model cannot serve are 422 model_unsupported.
func TestPredictCacheModel(t *testing.T) {
	_, base := newTestServer(t, Config{Engine: sharedEng})
	decode := func(b []byte) (r wire.PredictResponse) {
		t.Helper()
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatalf("decoding %s: %v", b, err)
		}
		return
	}

	resp, body := post(t, base+"/v1/predict",
		`{"app":"stencil3d","cores":64,"machine":"bluewaters","sample_refs":20000,"model":"analytical"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analytical predict: %d %s", resp.StatusCode, body)
	}
	if r := decode(body); r.Model != "analytical" {
		t.Errorf("model echo = %q, want analytical", r.Model)
	}

	// An omitted model runs (and reports) the default exact simulation.
	resp, body = post(t, base+"/v1/predict",
		`{"app":"stencil3d","cores":64,"machine":"bluewaters","sample_refs":20000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default predict: %d %s", resp.StatusCode, body)
	}
	if r := decode(body); r.Model != "exact" {
		t.Errorf("model echo = %q, want exact", r.Model)
	}

	// Unknown model names are client errors.
	resp, _ = post(t, base+"/v1/predict",
		`{"app":"stencil3d","cores":64,"machine":"bluewaters","model":"quantum"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model: %d, want 400", resp.StatusCode)
	}

	// The analytical model cannot reproduce prefetch traffic: 422 with the
	// stable model_unsupported code.
	resp, body = post(t, base+"/v1/predict",
		`{"app":"stencil3d","cores":64,"machine":"bluewaters+pf","sample_refs":20000,"model":"analytical"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("prefetch target: %d %s, want 422", resp.StatusCode, body)
	}
	var e wire.ErrorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != "model_unsupported" {
		t.Errorf("error code %q, want model_unsupported", e.Error.Code)
	}
}

// TestServerDefaultCacheModel: -cache-model changes what an omitted model
// field means, and the response echo stays truthful.
func TestServerDefaultCacheModel(t *testing.T) {
	_, base := newTestServer(t, Config{Engine: sharedEng, DefaultCacheModel: "analytical"})
	resp, body := post(t, base+"/v1/predict",
		`{"app":"stencil3d","cores":64,"machine":"bluewaters","sample_refs":20000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict under default analytical: %d %s", resp.StatusCode, body)
	}
	var r wire.PredictResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Model != "analytical" {
		t.Errorf("model echo = %q, want analytical", r.Model)
	}
	// An explicit request-level model still wins over the server default.
	resp, body = post(t, base+"/v1/predict",
		`{"app":"stencil3d","cores":64,"machine":"bluewaters","sample_refs":20000,"model":"exact"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit exact: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Model != "exact" {
		t.Errorf("model echo = %q, want exact", r.Model)
	}

	if _, err := New(Config{Engine: sharedEng, DefaultCacheModel: "quantum"}); err == nil {
		t.Error("unknown DefaultCacheModel accepted")
	}
}
