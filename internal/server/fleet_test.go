package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tracex"
	"tracex/internal/fleet"
	"tracex/internal/obs"
	"tracex/wire"
)

// This file is the in-process fleet acceptance test: a real N-node cluster
// over loopback — one engine, store, fleet and server per node, wired the
// way cmd/tracexd wires them — exercised through the public HTTP surface.
// The cluster-wide collection-dedupe contract lives here: the same
// identity predicted at every node must be collected exactly once.

// fleetNode is one member of an in-process test cluster.
type fleetNode struct {
	srv *Server
	eng *tracex.Engine
	flt *fleet.Fleet
	url string
}

// startFleetCluster boots n fully wired nodes sharing one static
// membership. Listeners are reserved before any fleet exists so every
// node knows the full peer list (ring identity = listen address) up
// front, the same chicken-and-egg order a static -peers file gives
// tracexd deployments.
func startFleetCluster(t *testing.T, n int, mode string) []*fleetNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		reg := obs.New()
		flt, err := fleet.New(fleet.Config{
			Self:     urls[i],
			Peers:    urls,
			Mode:     mode,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := tracex.NewEngine(
			tracex.WithRegistry(reg),
			tracex.WithStore(t.TempDir()),
			tracex.WithRemoteTier(flt),
		)
		if err := eng.Err(); err != nil {
			t.Fatal(err)
		}
		// Explicit admission bounds: the defaults derive from NumCPU, and on
		// a small CI host an owner fielding its own predict plus two
		// delegated collections would 429 the overflow before the cluster
		// contract could be observed.
		srv, err := New(Config{Engine: eng, Fleet: flt, MaxInFlight: 8, QueueWait: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(lns[i]) //nolint:errcheck // Shutdown in cleanup surfaces errors
		nodes[i] = &fleetNode{srv: srv, eng: eng, flt: flt, url: urls[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = nd.srv.Shutdown(ctx)
			cancel()
			_ = nd.eng.Close()
		}
	})
	return nodes
}

// fleetIdentity finds a stencil3d core count whose triple key is owned by
// the wanted node, so tests can steer an identity onto (or off) a node.
func fleetIdentity(t *testing.T, nodes []*fleetNode, owner int) (cores int, key string) {
	t.Helper()
	for cores := 8; cores <= 16384; cores *= 2 {
		key := fmt.Sprintf("stencil3d@%d@bluewaters", cores)
		if nodes[0].flt.Owner(key) == nodes[owner].url {
			return cores, key
		}
	}
	t.Fatalf("no stencil3d identity owned by node %d in 8..16384 cores", owner)
	return 0, ""
}

// predictBody builds the predict request for one identity, with sampling
// turned down so real collections stay fast.
func predictBody(cores int) string {
	return fmt.Sprintf(`{"app":"stencil3d","cores":%d,"machine":"bluewaters","sample_refs":20000}`, cores)
}

// TestFleetExactlyOnce is the headline contract: the same identity
// predicted at every node of a 3-node cluster is collected exactly once
// cluster-wide — the ring owner collects, the others fetch from it and
// answer with provenance "peer" — with zero 5xx along the way.
func TestFleetExactlyOnce(t *testing.T) {
	nodes := startFleetCluster(t, 3, fleet.ModeFetch)
	cores, key := fleetIdentity(t, nodes, 0)

	// All three nodes race the same identity; delegation lands every
	// claim on node 0, whose engine memoizes them into one collection.
	type answer struct {
		status int
		resp   wire.PredictResponse
		body   string
	}
	answers := make([]answer, len(nodes))
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(nd.url+"/v1/predict", "application/json",
				strings.NewReader(predictBody(cores)))
			if err != nil {
				return // status stays 0
			}
			defer resp.Body.Close()
			answers[i].status = resp.StatusCode
			var raw json.RawMessage
			if err := json.NewDecoder(resp.Body).Decode(&raw); err == nil {
				answers[i].body = string(raw)
				_ = json.Unmarshal(raw, &answers[i].resp)
			}
		}()
	}
	wg.Wait()

	for i, a := range answers {
		if a.status != http.StatusOK {
			t.Fatalf("node %d predict: status %d, body %s", i, a.status, a.body)
		}
		if a.resp.RuntimeSeconds <= 0 {
			t.Errorf("node %d predict: non-positive runtime in %s", i, a.body)
		}
	}

	// Exactly one collection cluster-wide: only the owner's engine ran a
	// simulation. pebil.blocks counts simulated basic blocks, so it is
	// zero on any node whose request was satisfied without collecting —
	// the same signal the fleet-smoke script reads from /metrics.
	simulated := 0
	for i, nd := range nodes {
		if nd.eng.Registry().Counter("pebil.blocks").Value() > 0 {
			simulated++
			if i != 0 {
				t.Errorf("node %d simulated a collection; only the owner (node 0) should", i)
			}
		}
	}
	if simulated != 1 {
		t.Errorf("%d nodes simulated the collection, want exactly 1", simulated)
	}

	// The owner answered from its own tiers; the others answered "peer".
	if from := answers[0].resp.From; from == string(tracex.FromPeer) {
		t.Errorf("owner answered from %q; the owner must not peer-fetch", from)
	}
	for i := 1; i < len(nodes); i++ {
		if from := answers[i].resp.From; from != string(tracex.FromPeer) {
			t.Errorf("node %d answered from %q, want %q", i, from, tracex.FromPeer)
		}
		st := nodes[i].eng.Stats()
		if st.PeerFetches != 1 || st.PeerHits != 1 {
			t.Errorf("node %d peer fetches/hits = %d/%d, want 1/1", i, st.PeerFetches, st.PeerHits)
		}
	}

	// Peer hits write through to local disk: a restarted non-owner engine
	// over the same store directory would warm-start from disk, and the
	// running one answers the repeat from memory without another fetch.
	for i := 1; i < len(nodes); i++ {
		if st := nodes[i].eng.Store(); st != nil {
			if _, ok := st.LatestEntry("stencil3d", "bluewaters", cores); !ok {
				t.Errorf("node %d store missing the fetched signature", i)
			}
		}
		resp, body := post(t, nodes[i].url+"/v1/predict", predictBody(cores))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d repeat predict: %d %s", i, resp.StatusCode, body)
		}
		if st := nodes[i].eng.Stats(); st.PeerFetches != 1 {
			t.Errorf("node %d repeat predict fetched again (fetches=%d)", i, st.PeerFetches)
		}
	}

	// The stored copy is addressable over the wire on the owner.
	resp, err := http.Get(nodes[0].url + "/v1/signatures/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("owner GET %s: %d", key, resp.StatusCode)
	}
}

// TestFleetOwnerDownFallsBack kills the ring owner and checks a surviving
// node still answers — by collecting locally — rather than failing the
// predict. Peer trouble must degrade to single-node behavior.
func TestFleetOwnerDownFallsBack(t *testing.T) {
	nodes := startFleetCluster(t, 3, fleet.ModeFetch)
	cores, _ := fleetIdentity(t, nodes, 0)

	// Take the owner down hard: close its listener and sockets.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := nodes[0].srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, nodes[1].url+"/v1/predict", predictBody(cores))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with owner down: %d %s", resp.StatusCode, body)
	}
	var pr wire.PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.From != string(tracex.FromCollected) {
		t.Errorf("predict with owner down answered from %q, want %q", pr.From, tracex.FromCollected)
	}
	st := nodes[1].eng.Stats()
	if st.PeerFetches != 1 || st.PeerHits != 0 {
		t.Errorf("peer fetches/hits = %d/%d, want 1/0 (attempted, failed, fell back)", st.PeerFetches, st.PeerHits)
	}
	if st.Collections != 1 {
		t.Errorf("local collections = %d, want 1", st.Collections)
	}
}

// TestFleetRedirectMode checks the alternative shard mode: signature GETs
// for a remote-owned key this node has never cached answer 307 to the
// owner, and following the redirect lands on the owner's copy.
func TestFleetRedirectMode(t *testing.T) {
	nodes := startFleetCluster(t, 3, fleet.ModeRedirect)
	cores, key := fleetIdentity(t, nodes, 0)

	// Seed the owner via its own predict (local collect).
	resp, body := post(t, nodes[0].url+"/v1/predict", predictBody(cores))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner predict: %d %s", resp.StatusCode, body)
	}

	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	r, err := noFollow.Get(nodes[1].url + "/v1/signatures/" + key)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner GET in redirect mode: %d, want 307", r.StatusCode)
	}
	want := nodes[0].url + wire.PathSignaturePrefix + key
	if loc := r.Header.Get("Location"); loc != want {
		t.Errorf("redirect Location = %q, want %q", loc, want)
	}

	// A default client follows the hop to the owner's stored copy.
	r2, err := http.Get(nodes[1].url + "/v1/signatures/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("followed redirect: %d", r2.StatusCode)
	}

	// Redirect mode still peer-fetches on the predict path: predicts need
	// signature bytes in-process, so only raw GETs bounce to the owner.
	resp, body = post(t, nodes[2].url+"/v1/predict", predictBody(cores))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-owner predict in redirect mode: %d %s", resp.StatusCode, body)
	}
	var pr wire.PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.From != string(tracex.FromPeer) {
		t.Errorf("non-owner predict in redirect mode answered from %q, want %q", pr.From, tracex.FromPeer)
	}
}

// TestFleetStatusAndSyncRoutes exercises the two fleet routes end to end
// on a live cluster, plus their 501 on a fleet-less daemon.
func TestFleetStatusAndSyncRoutes(t *testing.T) {
	nodes := startFleetCluster(t, 3, fleet.ModeFetch)
	cores, key := fleetIdentity(t, nodes, 0)

	// Status: full membership, exactly one self, shares sum to ~1.
	r, err := http.Get(nodes[1].url + "/v1/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	var status wire.FleetStatusResponse
	err = json.NewDecoder(r.Body).Decode(&status)
	r.Body.Close()
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("fleet status: %d, %v", r.StatusCode, err)
	}
	if status.Self != nodes[1].url || status.Mode != wire.FleetModeFetch || len(status.Peers) != 3 {
		t.Errorf("status = self %q mode %q %d peers", status.Self, status.Mode, len(status.Peers))
	}
	selfs := 0
	for _, p := range status.Peers {
		if p.Self {
			selfs++
		}
	}
	if selfs != 1 {
		t.Errorf("status marks %d peers as self, want 1", selfs)
	}

	// Sync: after the owner collects, its manifest diff offers the entry,
	// and a have-set containing it empties the diff.
	if resp, body := post(t, nodes[0].url+"/v1/predict", predictBody(cores)); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner predict: %d %s", resp.StatusCode, body)
	}
	_, body := post(t, nodes[0].url+"/v1/fleet/sync", `{}`)
	var sync1 wire.FleetSyncResponse
	if err := json.Unmarshal(body, &sync1); err != nil {
		t.Fatal(err)
	}
	if len(sync1.Entries) != 1 || sync1.Entries[0].App != "stencil3d" || sync1.Entries[0].Cores != cores {
		t.Errorf("sync diff = %s, want the one collected entry", body)
	}
	_, body = post(t, nodes[0].url+"/v1/fleet/sync", fmt.Sprintf(`{"have":[%q]}`, key))
	var sync2 wire.FleetSyncResponse
	if err := json.Unmarshal(body, &sync2); err != nil {
		t.Fatal(err)
	}
	if len(sync2.Entries) != 0 {
		t.Errorf("sync diff with full have-set = %s, want empty", body)
	}

	// A single-node daemon answers 501 no_fleet on both routes; its wire
	// surface is otherwise unchanged.
	_, solo := newTestServer(t, Config{Engine: sharedEng})
	r, err = http.Get(solo + "/v1/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotImplemented {
		t.Errorf("fleet status without fleet: %d, want 501", r.StatusCode)
	}
	if resp, _ := post(t, solo+"/v1/fleet/sync", `{}`); resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("fleet sync without fleet: %d, want 501", resp.StatusCode)
	}
}

// TestFleetReplicationOverWire runs the warm-start replicator against a
// live peer: a fresh node whose ring assigns it an identity the peer
// already holds pulls exactly that signature into its own store.
func TestFleetReplicationOverWire(t *testing.T) {
	nodes := startFleetCluster(t, 3, fleet.ModeFetch)

	// Seed the cluster with one identity owned by node 0, collected on the
	// owner itself.
	cores, key := fleetIdentity(t, nodes, 0)
	resp, body := post(t, nodes[0].url+"/v1/predict", predictBody(cores))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed predict: %d %s", resp.StatusCode, body)
	}

	// Negative side first: node 2 owns none of the seeded keys, so its
	// replication pass over the live cluster must pull nothing.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	pulled, err := nodes[2].flt.Replicate(ctx, nodes[2].eng)
	if err != nil {
		t.Fatalf("replicate: %v", err)
	}
	if pulled != 0 {
		t.Errorf("node 2 pulled %d signatures it does not own, want 0", pulled)
	}

	// The positive path over real HTTP: node 0 re-pulls its own key after
	// losing its store. Simulate the loss with a fresh engine+fleet pair
	// sharing node 0's ring identity (a rebuilt node) and an empty store.
	reg := obs.New()
	flt, err := fleet.New(fleet.Config{
		Self:     nodes[0].url,
		Peers:    []string{nodes[0].url, nodes[1].url, nodes[2].url},
		Mode:     fleet.ModeFetch,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := tracex.NewEngine(tracex.WithRegistry(reg), tracex.WithStore(t.TempDir()), tracex.WithRemoteTier(flt))
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Node 1 must hold the owner's key for the rebuilt node to find: fetch
	// it there first (peer tier caches it on disk).
	if resp, body := post(t, nodes[1].url+"/v1/predict", predictBody(cores)); resp.StatusCode != http.StatusOK {
		t.Fatalf("warming node 1: %d %s", resp.StatusCode, body)
	}

	pulled, err = flt.Replicate(ctx, eng)
	if err != nil {
		t.Fatalf("rebuilt-node replicate: %v", err)
	}
	if pulled != 1 {
		t.Errorf("rebuilt node pulled %d signatures, want 1", pulled)
	}
	if _, ok := eng.Store().LatestEntry("stencil3d", "bluewaters", cores); !ok {
		t.Errorf("rebuilt node store missing %s after replication", key)
	}
}
