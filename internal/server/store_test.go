package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"tracex"
	"tracex/wire"
)

// storeEngine builds a real engine persisting to dir.
func storeEngine(t *testing.T, dir string) *tracex.Engine {
	t.Helper()
	eng := tracex.NewEngine(tracex.WithStore(dir))
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// collectBody is the predict body that collects stencil3d@64@bluewaters.
func collectBody() string {
	return fmt.Sprintf(`{"app":"stencil3d","cores":64,"machine":"bluewaters","sample_refs":%d}`, testSampleRefs)
}

// predictFrom POSTs the collecting predict body and returns the response's
// from field.
func predictFrom(t *testing.T, base string) string {
	t.Helper()
	resp, body := post(t, base+"/v1/predict", collectBody())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var pr wire.PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	return pr.From
}

// TestStoreRoutesWithoutStore: a daemon without -store-dir answers the
// store routes with the stable 501 no_store error.
func TestStoreRoutesWithoutStore(t *testing.T) {
	_, base := newTestServer(t, Config{Engine: sharedEng})
	for _, req := range []struct{ method, path string }{
		{"GET", "/v1/signatures/stencil3d@64@bluewaters"},
		{"PUT", "/v1/signatures/stencil3d@64@bluewaters"},
	} {
		hr, err := http.NewRequest(req.method, base+req.path, bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		var eb wire.ErrorBody
		err = json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotImplemented || eb.Error.Code != "no_store" {
			t.Errorf("%s %s: %d %q", req.method, req.path, resp.StatusCode, eb.Error.Code)
		}
	}
}

// TestStoreRestartWarmStart is the acceptance scenario: a daemon collects
// and persists; a second daemon over the same store directory (the killed
// -and-restarted process) serves its first repeat predict from disk — no
// re-collection — observable in both the from field and /metrics.
func TestStoreRestartWarmStart(t *testing.T) {
	dir := t.TempDir()

	s1, base1 := newTestServer(t, Config{Engine: storeEngine(t, dir)})
	if from := predictFrom(t, base1); from != string(tracex.FromCollected) {
		t.Fatalf("first daemon's first predict came from %q", from)
	}
	if from := predictFrom(t, base1); from != string(tracex.FromMemory) {
		t.Errorf("first daemon's repeat predict came from %q", from)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The restarted daemon: fresh engine, fresh caches, same directory.
	_, base2 := newTestServer(t, Config{Engine: storeEngine(t, dir)})
	if from := predictFrom(t, base2); from != string(tracex.FromDisk) {
		t.Fatalf("restarted daemon's predict came from %q, want disk", from)
	}
	// The warm start is visible in the metrics snapshot.
	resp, body := get(t, base2+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var snap struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
		Spans []struct {
			Name  string `json:"name"`
			Count uint64 `json:"count"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, m := range snap.Metrics {
		vals[m.Name] = m.Value
	}
	if vals["store.hits"] != 1 {
		t.Errorf("store.hits = %g after warm start", vals["store.hits"])
	}
	for _, sp := range snap.Spans {
		if sp.Name == "pebil.collect" && sp.Count != 0 {
			t.Errorf("restarted daemon ran %d collections", sp.Count)
		}
	}
}

// TestStoreGetPutRoutes exercises the full HTTP store surface: fetch by
// triple, fetch by content hash, import into a fresh store, and the
// validation failures.
func TestStoreGetPutRoutes(t *testing.T) {
	dir := t.TempDir()
	_, base := newTestServer(t, Config{Engine: storeEngine(t, dir)})
	if from := predictFrom(t, base); from != string(tracex.FromCollected) {
		t.Fatalf("collect came from %q", from)
	}

	// Fetch by human triple.
	resp, body := get(t, base+"/v1/signatures/stencil3d@64@bluewaters")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET by triple: %d %s", resp.StatusCode, body)
	}
	var sr wire.StoredSignatureResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.App != "stencil3d" || sr.Cores != 64 || sr.Machine != "bluewaters" {
		t.Errorf("triple fetch identity: %+v", sr)
	}
	if len(sr.Hash) != 64 || sr.Signature == nil || sr.Bytes <= 0 {
		t.Errorf("triple fetch incomplete: hash=%q bytes=%d", sr.Hash, sr.Bytes)
	}

	// Fetch the same object by its content hash.
	resp, body = get(t, base+"/v1/signatures/"+sr.Hash)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET by hash: %d %s", resp.StatusCode, body)
	}
	var hr wire.StoredSignatureResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Hash != sr.Hash || hr.Signature == nil {
		t.Errorf("hash fetch: %+v", hr)
	}

	// Misses and malformed keys.
	if resp, _ := get(t, base+"/v1/signatures/uh3d@4096@bluewaters"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET miss: %d", resp.StatusCode)
	}
	if resp, _ := get(t, base+"/v1/signatures/not-a-key"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET malformed key: %d", resp.StatusCode)
	}

	// Import the signature into a second, empty store via PUT; the next
	// collection there warm-starts from the imported object.
	dir2 := t.TempDir()
	eng2 := storeEngine(t, dir2)
	_, base2 := newTestServer(t, Config{Engine: eng2})
	sigJSON, err := json.Marshal(sr.Signature)
	if err != nil {
		t.Fatal(err)
	}
	putReq, err := http.NewRequest("PUT", base2+"/v1/signatures/stencil3d@64@bluewaters", bytes.NewReader(sigJSON))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	defer putResp.Body.Close()
	var pr wire.StorePutResponse
	if err := json.NewDecoder(putResp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if putResp.StatusCode != http.StatusOK || pr.Hash != sr.Hash {
		t.Fatalf("PUT: %d %+v (want hash %s)", putResp.StatusCode, pr, sr.Hash)
	}

	// Key/signature mismatch is rejected.
	badReq, err := http.NewRequest("PUT", base2+"/v1/signatures/uh3d@64@bluewaters", bytes.NewReader(sigJSON))
	if err != nil {
		t.Fatal(err)
	}
	badResp, err := http.DefaultClient.Do(badReq)
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT with mismatched key: %d", badResp.StatusCode)
	}
}
