package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"tracex"
)

// benchServer builds a server over an instant synthetic Predict, so the
// benchmarks measure the handler path (decode, canonical key, admission,
// coalescing, marshal) rather than the simulation.
func benchServer(b *testing.B, disableCoalescing bool) (*Server, []byte) {
	b.Helper()
	shim := &shimEngine{
		Engine: tracex.NewEngine(),
		predict: func(_ context.Context, req tracex.PredictRequest) (*tracex.Prediction, error) {
			return &tracex.Prediction{
				App: req.Signature.App, CoreCount: req.Signature.CoreCount,
				Machine: req.Signature.Machine, Runtime: 1.5,
			}, nil
		},
	}
	s, err := New(Config{Engine: shim, DisableCoalescing: disableCoalescing})
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(&PredictRequest{Signature: inlineSig(64)})
	if err != nil {
		b.Fatal(err)
	}
	return s, body
}

// benchPredict drives b.N parallel /v1/predict requests through the full
// handler stack in-process.
func benchPredict(b *testing.B, s *Server, body []byte) {
	b.Helper()
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %.200s", rec.Code, rec.Body.String())
			}
		}
	})
	b.StopTimer()
	reg := s.eng.Registry()
	b.ReportMetric(float64(reg.Counter("server.coalesced").Value())/float64(b.N), "coalesced/op")
	b.ReportMetric(float64(reg.Counter("server.rejected").Value())/float64(b.N), "rejected/op")
}

func BenchmarkServerPredict(b *testing.B) {
	s, body := benchServer(b, false)
	benchPredict(b, s, body)
}

func BenchmarkServerPredictNoCoalesce(b *testing.B) {
	s, body := benchServer(b, true)
	benchPredict(b, s, body)
}
