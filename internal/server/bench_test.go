package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"tracex"
	"tracex/wire"
)

// benchServer builds a server over an instant synthetic Predict, so the
// benchmarks measure the handler path (decode, canonical key, admission,
// coalescing, marshal) rather than the simulation.
func benchServer(b *testing.B, disableCoalescing bool) (*Server, []byte) {
	b.Helper()
	shim := &shimEngine{
		Engine: tracex.NewEngine(),
		predict: func(_ context.Context, req tracex.PredictRequest) (*tracex.Prediction, error) {
			return &tracex.Prediction{
				App: req.Signature.App, CoreCount: req.Signature.CoreCount,
				Machine: req.Signature.Machine, Runtime: 1.5,
			}, nil
		},
	}
	s, err := New(Config{Engine: shim, DisableCoalescing: disableCoalescing})
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(&wire.PredictRequest{Signature: inlineSig(64)})
	if err != nil {
		b.Fatal(err)
	}
	return s, body
}

// benchPredict drives b.N parallel /v1/predict requests through the full
// handler stack in-process.
func benchPredict(b *testing.B, s *Server, body []byte) {
	b.Helper()
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %.200s", rec.Code, rec.Body.String())
			}
		}
	})
	b.StopTimer()
	reg := s.eng.Registry()
	b.ReportMetric(float64(reg.Counter("server.coalesced").Value())/float64(b.N), "coalesced/op")
	b.ReportMetric(float64(reg.Counter("server.rejected").Value())/float64(b.N), "rejected/op")
}

func BenchmarkServerPredict(b *testing.B) {
	s, body := benchServer(b, false)
	benchPredict(b, s, body)
}

func BenchmarkServerPredictNoCoalesce(b *testing.B) {
	s, body := benchServer(b, true)
	benchPredict(b, s, body)
}

// BenchmarkStoreGet compares the signature-GET fast path (index-only key
// resolution plus the marshalled-body LRU) against the pre-change
// behavior (every GET reads and re-encodes the object, StoreReadCache
// disabled). The store holds one real collected signature.
func BenchmarkStoreGet(b *testing.B) {
	for _, bc := range []struct {
		name      string
		readCache int
	}{
		{"fastpath", 0},  // default: body LRU enabled
		{"baseline", -1}, // pre-change: decode + marshal every GET
	} {
		b.Run(bc.name, func(b *testing.B) {
			eng := tracex.NewEngine(tracex.WithStore(b.TempDir()))
			if err := eng.Err(); err != nil {
				b.Fatal(err)
			}
			s, err := New(Config{Engine: eng, StoreReadCache: bc.readCache})
			if err != nil {
				b.Fatal(err)
			}
			h := s.Handler()
			collect := httptest.NewRequest("POST", "/v1/predict",
				bytes.NewReader([]byte(`{"app":"stencil3d","cores":64,"machine":"bluewaters","sample_refs":20000}`)))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, collect)
			if rec.Code != 200 {
				b.Fatalf("collect: %d %.200s", rec.Code, rec.Body.String())
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := httptest.NewRequest("GET", "/v1/signatures/stencil3d@64@bluewaters", nil)
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != 200 {
						b.Fatalf("GET: %d %.200s", rec.Code, rec.Body.String())
					}
				}
			})
		})
	}
}
