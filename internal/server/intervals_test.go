package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"

	"tracex"
	"tracex/wire"
)

// TestDefaultIntervalsKnob pins the tri-state resolution of the request
// "intervals" field against Config.DefaultIntervals: an absent knob takes
// the server default, a present knob always wins.
func TestDefaultIntervalsKnob(t *testing.T) {
	var last atomic.Bool
	shim := &shimEngine{
		Engine: sharedEng,
		predict: func(ctx context.Context, req tracex.PredictRequest) (*tracex.Prediction, error) {
			last.Store(req.Intervals)
			return &tracex.Prediction{
				App: req.Signature.App, CoreCount: req.Signature.CoreCount,
				Machine: req.Signature.Machine, Runtime: 1.5,
			}, nil
		},
	}

	body := func(knob *bool) string {
		b, err := json.Marshal(&wire.PredictRequest{Signature: inlineSig(64), Intervals: knob})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	for _, tc := range []struct {
		name       string
		serverDflt bool
		knob       *bool
		wantEngine bool
	}{
		{"absent-defers-to-off", false, nil, false},
		{"absent-defers-to-on", true, nil, true},
		{"true-overrides-off", false, wire.Bool(true), true},
		{"false-overrides-on", true, wire.Bool(false), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// DisableCoalescing keeps each request's effective knob
			// observable: coalesced requests would share one engine call.
			_, base := newTestServer(t, Config{
				Engine: shim, DefaultIntervals: tc.serverDflt, DisableCoalescing: true,
			})
			resp, b := post(t, base+"/v1/predict", body(tc.knob))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("predict: %d %s", resp.StatusCode, b)
			}
			if got := last.Load(); got != tc.wantEngine {
				t.Errorf("engine saw Intervals=%v, want %v", got, tc.wantEngine)
			}
		})
	}
}
