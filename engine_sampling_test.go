package tracex

import "testing"

// These tests pin the store-key semantics of the SamplingPolicy redesign:
// a Fixed policy is the same identity as the legacy SampleRefs/MaxWarmRefs
// ints (stores written before the policy existed keep resolving), while an
// adaptive policy — which produces different hit rates — extends the
// identity string in a pinned, byte-stable way.

func TestOptIdentityFixedPolicyByteCompatible(t *testing.T) {
	// The default configuration renders exactly the pre-policy identity.
	def := CollectOptions{}
	const legacyDefault = "{SampleRefs:400000 MaxWarmRefs:2000000 Workers:0 BatchSize:0 SharedHierarchy:false}"
	if got := optIdentity(def.Normalized()); got != legacyDefault {
		t.Errorf("optIdentity(default) = %q, want %q", got, legacyDefault)
	}
	// A Fixed policy collapses to the same rendering as the equivalent
	// legacy ints: byte-identical identity, so byte-identical store keys.
	legacy := CollectOptions{SampleRefs: 20_000, MaxWarmRefs: 60_000}
	pol := CollectOptions{Sampling: FixedSampling(20_000, 60_000)}
	lid, pid := optIdentity(legacy.Normalized()), optIdentity(pol.Normalized())
	if lid != pid {
		t.Errorf("fixed policy identity %q != legacy identity %q", pid, lid)
	}
	m := testMachine(t, "bluewaters")
	if StoreKey("uh3d", 256, m, legacy) != StoreKey("uh3d", 256, m, pol) {
		t.Error("fixed policy and legacy ints produced different store keys")
	}
}

func TestOptIdentityAdaptiveExtendsIdentity(t *testing.T) {
	// The adaptive rendering is pinned: signatures persisted under it must
	// keep resolving across releases.
	opt := CollectOptions{Sampling: AdaptiveSampling(0)}
	// The legacy ints stay zero: adaptive budgeting never resolves them,
	// and the policy string alone carries the sampling identity.
	const want = "{SampleRefs:0 MaxWarmRefs:0 Workers:0 BatchSize:0 SharedHierarchy:false}" +
		" Sampling:adaptive:0.05,pilot=20000,min=20000,max=400000,cluster=on"
	if got := optIdentity(opt.Normalized()); got != want {
		t.Errorf("optIdentity(adaptive) = %q, want %q", got, want)
	}
	// Adaptive keys are distinct from fixed ones, and distinct between
	// policies that differ in any parameter.
	m := testMachine(t, "bluewaters")
	fixed := CollectOptions{}
	if StoreKey("uh3d", 256, m, fixed) == StoreKey("uh3d", 256, m, opt) {
		t.Error("adaptive policy shares the fixed policy's store key")
	}
	tighter := CollectOptions{Sampling: AdaptiveSampling(0.01)}
	if StoreKey("uh3d", 256, m, opt) == StoreKey("uh3d", 256, m, tighter) {
		t.Error("different relative-error targets share a store key")
	}
	noCluster := AdaptiveSampling(0)
	noCluster.ClusterBlocks = false
	if StoreKey("uh3d", 256, m, opt) == StoreKey("uh3d", 256, m, CollectOptions{Sampling: noCluster}) {
		t.Error("cluster=on and cluster=off share a store key")
	}
}
